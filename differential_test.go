package repro

// Differential test: independent implementations of the pruned fault
// space must agree point for point on the quickstart workload —
//
//  1. the offline replay (prune.MaskedGrid over the golden trace),
//  2. the sequential campaign controller (hafi.RunCampaign),
//  3. the 64-lane batched engine (hafi.RunCampaignBatched), and
//  4. the pooled batched engine with the convergence early-exit disabled
//     (hafi.RunCampaignBatchedPool + DisableEarlyExit) — the full-run
//     reference that proves the early-exit never changes a verdict.
//
// Every campaign engine journals every classified point; the journals are
// recovered and compared record by record (pruned flag AND outcome), so any
// divergence names the exact (FF, cycle) point. This is the strongest
// cheap consistency check the pipeline has: the replay and the engines
// share the MATE set but nothing of their execution machinery.

import (
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hafi"
	"repro/internal/journal"
	"repro/internal/prune"
)

func TestDifferentialPruneCampaignBatched(t *testing.T) {
	if testing.Short() {
		t.Skip("differential campaign comparison is not short")
	}
	c := experiments.PrepareAVR()
	prog := c.FibProg

	run := c.NewRun(prog)
	golden, err := hafi.RecordGolden(run, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	set := core.Search(c.NL, c.FaultAll, core.DefaultSearchParams()).Set

	// Every FF at every 1500th cycle, thinned to every 4th point: keeps
	// cycle and flip-flop diversity while the sequential engine (the slow
	// side of the comparison) stays test-suite friendly.
	const stride = 1500
	full := hafi.SampledFaultList(c.NL, golden.HaltCycle, stride)
	var points []hafi.FaultPoint
	for i := 0; i < len(full); i += 4 {
		points = append(points, full[i])
	}
	if len(points) < 100 {
		t.Fatalf("fault list too small for a meaningful comparison: %d points", len(points))
	}

	// Implementation 1: offline replay. MaskedGrid and the campaign's
	// online provedBenign check must make identical per-point decisions.
	grid := prune.MaskedGrid(set, golden.Trace, c.FaultAll)
	wantPruned := make([]bool, len(points))
	for i, p := range points {
		wantPruned[i] = grid[p.Cycle][p.FF] // FaultAll is in FF order
	}

	dir := t.TempDir()
	runJournaled := func(name string, exec func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error)) ([]journal.Record, *hafi.CampaignResult) {
		t.Helper()
		path := filepath.Join(dir, name+".journal")
		ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
		jw, err := journal.Create(path, ctl.JournalHeader(points))
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec(hafi.CampaignConfig{
			Points:  points,
			MATESet: set,
			Journal: jw,
		})
		if err != nil {
			t.Fatalf("%s campaign: %v", name, err)
		}
		if err := jw.Close(); err != nil {
			t.Fatal(err)
		}
		rec, err := journal.Recover(path)
		if err != nil {
			t.Fatalf("%s journal recovery: %v", name, err)
		}
		if len(rec.ByIndex) != len(points) {
			t.Fatalf("%s journal has %d records, want %d", name, len(rec.ByIndex), len(points))
		}
		out := make([]journal.Record, len(points))
		for idx, r := range rec.ByIndex {
			out[idx] = r
		}
		return out, res
	}

	// Implementation 2: sequential controller (sharded over a worker pool).
	seqRecs, seqRes := runJournaled("sequential", func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
		cfg.Workers = runtime.NumCPU()
		ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
		return ctl.RunCampaign(cfg)
	})

	// Implementation 3: 64-lane batched engine.
	batchRecs, batchRes := runJournaled("batched", func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
		ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
		run64, err := c.NewRun64(prog)
		if err != nil {
			return nil, err
		}
		return ctl.RunCampaignBatched(cfg, run64)
	})

	// Implementation 4: pooled batched engine with the convergence
	// early-exit disabled — every experiment runs to halt or timeout, so
	// agreement with the early-exiting engines proves the exit sound on
	// this fault list.
	fullRecs, fullRes := runJournaled("full-run", func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
		ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
		cfg.Workers = runtime.NumCPU()
		cfg.DisableEarlyExit = true
		return ctl.RunCampaignBatchedPool(cfg, func() (hafi.Run64, error) { return c.NewRun64(prog) })
	})
	if fullRes.Converged != 0 {
		t.Errorf("DisableEarlyExit run reports %d converged experiments, want 0", fullRes.Converged)
	}

	for i, p := range points {
		seq, bat, ful := seqRecs[i], batchRecs[i], fullRecs[i]
		if seq.Pruned != wantPruned[i] {
			t.Errorf("point %d (ff=%d cycle=%d): sequential pruned=%v, replay grid says %v",
				i, p.FF, p.Cycle, seq.Pruned, wantPruned[i])
		}
		if bat.Pruned != wantPruned[i] {
			t.Errorf("point %d (ff=%d cycle=%d): batched pruned=%v, replay grid says %v",
				i, p.FF, p.Cycle, bat.Pruned, wantPruned[i])
		}
		if seq.Pruned != bat.Pruned || (!seq.Pruned && seq.Outcome != bat.Outcome) {
			t.Errorf("point %d (ff=%d cycle=%d): sequential (pruned=%v outcome=%d) != batched (pruned=%v outcome=%d)",
				i, p.FF, p.Cycle, seq.Pruned, seq.Outcome, bat.Pruned, bat.Outcome)
		}
		if seq.Pruned != ful.Pruned || (!seq.Pruned && seq.Outcome != ful.Outcome) {
			t.Errorf("point %d (ff=%d cycle=%d): early-exit (pruned=%v outcome=%d) != full-run (pruned=%v outcome=%d)",
				i, p.FF, p.Cycle, seq.Pruned, seq.Outcome, ful.Pruned, ful.Outcome)
		}
		if t.Failed() && i > 20 {
			t.Fatal("aborting after repeated divergence")
		}
	}

	// Aggregate cross-check: identical totals, outcome histograms and
	// per-MATE attribution across all engines.
	for _, o := range []struct {
		name string
		res  *hafi.CampaignResult
	}{{"batched", batchRes}, {"full-run", fullRes}} {
		if seqRes.Total != o.res.Total || seqRes.Skipped != o.res.Skipped || seqRes.Executed != o.res.Executed {
			t.Errorf("aggregate mismatch: sequential %+v, %s %+v", seqRes, o.name, o.res)
		}
		for out, n := range seqRes.ByOutcome {
			if o.res.ByOutcome[out] != n {
				t.Errorf("outcome %s: sequential %d, %s %d", out, n, o.name, o.res.ByOutcome[out])
			}
		}
		if !reflect.DeepEqual(seqRes.PrunedByMATE, o.res.PrunedByMATE) {
			t.Errorf("per-MATE attribution: sequential %v, %s %v", seqRes.PrunedByMATE, o.name, o.res.PrunedByMATE)
		}
	}
	// The scalar and batched engines walk the same state/digest evolution
	// per experiment, so their convergence counts must agree exactly.
	if seqRes.Converged != batchRes.Converged || seqRes.CyclesSaved != batchRes.CyclesSaved {
		t.Errorf("convergence stats: sequential %d/%d, batched %d/%d",
			seqRes.Converged, seqRes.CyclesSaved, batchRes.Converged, batchRes.CyclesSaved)
	}
	t.Logf("%d points: %d pruned, %d executed, %d converged early (%d cycles saved), outcomes %v",
		seqRes.Total, seqRes.Skipped, seqRes.Executed, seqRes.Converged, seqRes.CyclesSaved, seqRes.ByOutcome)
}

// TestDifferentialEarlyExitNoPrune compares the early-exiting engines with
// the full-run reference without any MATE set attached: every point
// executes, so the early-exit soundness is probed on the complete sampled
// list (not just the points the MATEs leave behind). The pool engine's
// journal must additionally be byte-compatible with the single-instance
// engine's record stream.
func TestDifferentialEarlyExitNoPrune(t *testing.T) {
	if testing.Short() {
		t.Skip("differential campaign comparison is not short")
	}
	c := experiments.PrepareAVR()
	prog := c.FibProg

	run := c.NewRun(prog)
	golden, err := hafi.RecordGolden(run, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	points := hafi.SampledFaultList(c.NL, golden.HaltCycle, 2000)
	if len(points) < 100 {
		t.Fatalf("fault list too small: %d points", len(points))
	}

	dir := t.TempDir()
	runEngine := func(name string, disable bool, workers int) ([]journal.Record, *hafi.CampaignResult) {
		t.Helper()
		path := filepath.Join(dir, name+".journal")
		ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
		jw, err := journal.Create(path, ctl.JournalHeader(points))
		if err != nil {
			t.Fatal(err)
		}
		res, err := ctl.RunCampaignBatchedPool(hafi.CampaignConfig{
			Points:           points,
			Journal:          jw,
			DisableEarlyExit: disable,
			Workers:          workers,
		}, func() (hafi.Run64, error) { return c.NewRun64(prog) })
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := jw.Close(); err != nil {
			t.Fatal(err)
		}
		rec, err := journal.Recover(path)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]journal.Record, len(points))
		for idx, r := range rec.ByIndex {
			out[idx] = r
		}
		return out, res
	}

	earlyRecs, earlyRes := runEngine("early", false, 1)
	poolRecs, poolRes := runEngine("pool", false, runtime.NumCPU())
	fullRecs, fullRes := runEngine("full", true, runtime.NumCPU())

	if earlyRes.Converged == 0 {
		t.Error("early-exit campaign retired no experiments — the convergence check never fired (test lost its teeth)")
	}
	if fullRes.Converged != 0 {
		t.Errorf("DisableEarlyExit run reports %d converged, want 0", fullRes.Converged)
	}
	if earlyRes.Converged != poolRes.Converged || earlyRes.CyclesSaved != poolRes.CyclesSaved {
		t.Errorf("pool convergence stats diverge: single %d/%d, pool %d/%d",
			earlyRes.Converged, earlyRes.CyclesSaved, poolRes.Converged, poolRes.CyclesSaved)
	}
	for i, p := range points {
		e, pl, f := earlyRecs[i], poolRecs[i], fullRecs[i]
		if e != pl {
			t.Errorf("point %d (ff=%d cycle=%d): single-instance record %+v != pool record %+v", i, p.FF, p.Cycle, e, pl)
		}
		if e.Outcome != f.Outcome {
			t.Errorf("point %d (ff=%d cycle=%d): early-exit outcome %d != full-run outcome %d", i, p.FF, p.Cycle, e.Outcome, f.Outcome)
		}
		if t.Failed() && i > 20 {
			t.Fatal("aborting after repeated divergence")
		}
	}
	for o, n := range fullRes.ByOutcome {
		if earlyRes.ByOutcome[o] != n {
			t.Errorf("outcome %s: early-exit %d, full-run %d", o, earlyRes.ByOutcome[o], n)
		}
	}
	t.Logf("%d points, %d converged early (%d cycles saved), outcomes %v",
		earlyRes.Total, earlyRes.Converged, earlyRes.CyclesSaved, earlyRes.ByOutcome)
}
