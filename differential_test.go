package repro

// Differential test: three independent implementations of the pruned fault
// space must agree point for point on the quickstart workload —
//
//  1. the offline replay (prune.MaskedGrid over the golden trace),
//  2. the sequential campaign controller (hafi.RunCampaign), and
//  3. the 64-lane batched engine (hafi.RunCampaignBatched).
//
// Both campaign engines journal every classified point; the journals are
// recovered and compared record by record (pruned flag AND outcome), so any
// divergence names the exact (FF, cycle) point. This is the strongest
// cheap consistency check the pipeline has: the replay and the two engines
// share the MATE set but nothing of their execution machinery.

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hafi"
	"repro/internal/journal"
	"repro/internal/prune"
)

func TestDifferentialPruneCampaignBatched(t *testing.T) {
	if testing.Short() {
		t.Skip("differential campaign comparison is not short")
	}
	c := experiments.PrepareAVR()
	prog := c.FibProg

	run := c.NewRun(prog)
	golden, err := hafi.RecordGolden(run, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	set := core.Search(c.NL, c.FaultAll, core.DefaultSearchParams()).Set

	// Every FF at every 1500th cycle, thinned to every 4th point: keeps
	// cycle and flip-flop diversity while the sequential engine (the slow
	// side of the comparison) stays test-suite friendly.
	const stride = 1500
	full := hafi.SampledFaultList(c.NL, golden.HaltCycle, stride)
	var points []hafi.FaultPoint
	for i := 0; i < len(full); i += 4 {
		points = append(points, full[i])
	}
	if len(points) < 100 {
		t.Fatalf("fault list too small for a meaningful comparison: %d points", len(points))
	}

	// Implementation 1: offline replay. MaskedGrid and the campaign's
	// online provedBenign check must make identical per-point decisions.
	grid := prune.MaskedGrid(set, golden.Trace, c.FaultAll)
	wantPruned := make([]bool, len(points))
	for i, p := range points {
		wantPruned[i] = grid[p.Cycle][p.FF] // FaultAll is in FF order
	}

	dir := t.TempDir()
	runJournaled := func(name string, exec func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error)) ([]journal.Record, *hafi.CampaignResult) {
		t.Helper()
		path := filepath.Join(dir, name+".journal")
		ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
		jw, err := journal.Create(path, ctl.JournalHeader(points))
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec(hafi.CampaignConfig{
			Points:  points,
			MATESet: set,
			Journal: jw,
		})
		if err != nil {
			t.Fatalf("%s campaign: %v", name, err)
		}
		if err := jw.Close(); err != nil {
			t.Fatal(err)
		}
		rec, err := journal.Recover(path)
		if err != nil {
			t.Fatalf("%s journal recovery: %v", name, err)
		}
		if len(rec.ByIndex) != len(points) {
			t.Fatalf("%s journal has %d records, want %d", name, len(rec.ByIndex), len(points))
		}
		out := make([]journal.Record, len(points))
		for idx, r := range rec.ByIndex {
			out[idx] = r
		}
		return out, res
	}

	// Implementation 2: sequential controller (sharded over a worker pool).
	seqRecs, seqRes := runJournaled("sequential", func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
		cfg.Workers = runtime.NumCPU()
		ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
		return ctl.RunCampaign(cfg)
	})

	// Implementation 3: 64-lane batched engine.
	batchRecs, batchRes := runJournaled("batched", func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
		ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
		run64, err := c.NewRun64(prog)
		if err != nil {
			return nil, err
		}
		return ctl.RunCampaignBatched(cfg, run64)
	})

	for i, p := range points {
		seq, bat := seqRecs[i], batchRecs[i]
		if seq.Pruned != wantPruned[i] {
			t.Errorf("point %d (ff=%d cycle=%d): sequential pruned=%v, replay grid says %v",
				i, p.FF, p.Cycle, seq.Pruned, wantPruned[i])
		}
		if bat.Pruned != wantPruned[i] {
			t.Errorf("point %d (ff=%d cycle=%d): batched pruned=%v, replay grid says %v",
				i, p.FF, p.Cycle, bat.Pruned, wantPruned[i])
		}
		if seq.Pruned != bat.Pruned || (!seq.Pruned && seq.Outcome != bat.Outcome) {
			t.Errorf("point %d (ff=%d cycle=%d): sequential (pruned=%v outcome=%d) != batched (pruned=%v outcome=%d)",
				i, p.FF, p.Cycle, seq.Pruned, seq.Outcome, bat.Pruned, bat.Outcome)
		}
		if t.Failed() && i > 20 {
			t.Fatal("aborting after repeated divergence")
		}
	}

	// Aggregate cross-check: identical totals and outcome histograms.
	if seqRes.Total != batchRes.Total || seqRes.Skipped != batchRes.Skipped || seqRes.Executed != batchRes.Executed {
		t.Errorf("aggregate mismatch: sequential %+v, batched %+v", seqRes, batchRes)
	}
	for o, n := range seqRes.ByOutcome {
		if batchRes.ByOutcome[o] != n {
			t.Errorf("outcome %s: sequential %d, batched %d", o, n, batchRes.ByOutcome[o])
		}
	}
	t.Logf("%d points: %d pruned, %d executed, outcomes %v",
		seqRes.Total, seqRes.Skipped, seqRes.Executed, seqRes.ByOutcome)
}
