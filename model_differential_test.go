package repro

// Cross-model differential test: for every fault model, every campaign
// engine — sequential scalar, 64-lane batched, pooled batched — with the
// convergence early-exit on and off must journal record-for-record
// identical verdicts, and the pruned/early-exiting campaigns must classify
// point for point like an unpruned full-run scalar reference (a pruned
// point is sound only if the reference executed it to a benign verdict).
// The engines share the model's Inject implementation but nothing of their
// scheduling, batching or early-exit machinery, so agreement here pins the
// model semantics across the whole execution stack.

import (
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hafi"
	"repro/internal/journal"
)

func TestDifferentialFaultModels(t *testing.T) {
	if testing.Short() {
		t.Skip("differential campaign comparison is not short")
	}
	c := experiments.PrepareAVR()
	prog := c.FibProg

	golden, err := hafi.RecordGolden(c.NewRun(prog), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	set := core.Search(c.NL, c.FaultAll, core.DefaultSearchParams()).Set

	specs := []hafi.ModelSpec{
		{Model: hafi.ModelSEU},
		{Model: hafi.ModelMBU, Span: 2},
		{Model: hafi.ModelSET},
		{Model: hafi.ModelIntermittent, Period: 2, Window: 6},
		{Model: hafi.ModelStuckAt, Window: 3, StuckHigh: true},
	}
	totalPruned := 0
	for _, spec := range specs {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			// Thin the model's fault list to keep the scalar full-run
			// reference (the slow side) test-suite friendly while preserving
			// cycle and site diversity.
			const stride = 4000
			full := hafi.ModelFaultList(c.NL, golden.HaltCycle, stride, spec)
			var points []hafi.FaultPoint
			for i := 0; i < len(full); i += 5 {
				points = append(points, full[i])
			}
			if len(points) < 50 {
				t.Fatalf("fault list too small for a meaningful comparison: %d points", len(points))
			}

			dir := t.TempDir()
			runJournaled := func(name string, mates *core.MATESet, exec func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error)) []journal.Record {
				t.Helper()
				path := filepath.Join(dir, name+".journal")
				ctl := hafi.NewController(c.NewRun(prog), golden)
				jw, err := journal.Create(path, ctl.JournalHeader(points))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := exec(hafi.CampaignConfig{Points: points, MATESet: mates, Journal: jw}); err != nil {
					t.Fatalf("%s campaign: %v", name, err)
				}
				if err := jw.Close(); err != nil {
					t.Fatal(err)
				}
				rec, err := journal.Recover(path)
				if err != nil {
					t.Fatalf("%s journal recovery: %v", name, err)
				}
				if len(rec.ByIndex) != len(points) {
					t.Fatalf("%s journal has %d records, want %d", name, len(rec.ByIndex), len(points))
				}
				out := make([]journal.Record, len(points))
				for idx, r := range rec.ByIndex {
					out[idx] = r
				}
				return out
			}

			// The reference: scalar sequential, no pruning, no early-exit —
			// every point executed to halt or timeout.
			ref := runJournaled("reference", nil, func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
				cfg.DisableEarlyExit = true
				return hafi.NewController(c.NewRun(prog), golden).RunCampaign(cfg)
			})

			// Every engine × early-exit combination, all with pruning on.
			variants := []struct {
				name string
				exec func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error)
			}{
				{"sequential-early", func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
					return hafi.NewController(c.NewRun(prog), golden).RunCampaign(cfg)
				}},
				{"sequential-full", func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
					cfg.DisableEarlyExit = true
					return hafi.NewController(c.NewRun(prog), golden).RunCampaign(cfg)
				}},
				{"batched-early", func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
					ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
					run64, err := c.NewRun64(prog)
					if err != nil {
						return nil, err
					}
					return ctl.RunCampaignBatched(cfg, run64)
				}},
				{"batched-full", func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
					cfg.DisableEarlyExit = true
					ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
					run64, err := c.NewRun64(prog)
					if err != nil {
						return nil, err
					}
					return ctl.RunCampaignBatched(cfg, run64)
				}},
				{"pooled-early", func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
					cfg.Workers = runtime.NumCPU()
					ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
					return ctl.RunCampaignBatchedPool(cfg, func() (hafi.Run64, error) { return c.NewRun64(prog) })
				}},
				{"pooled-full", func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
					cfg.Workers = runtime.NumCPU()
					cfg.DisableEarlyExit = true
					ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
					return ctl.RunCampaignBatchedPool(cfg, func() (hafi.Run64, error) { return c.NewRun64(prog) })
				}},
			}

			var first []journal.Record
			for _, v := range variants {
				recs := runJournaled(v.name, set, v.exec)
				if first == nil {
					first = recs
					// Against the reference: a pruned point must have executed
					// benign in the unpruned run; an executed point must agree.
					for i, r := range recs {
						p := points[i]
						if r.Pruned {
							totalPruned++
							if ref[i].Outcome != 0 {
								t.Errorf("point %d (ff=%d cycle=%d): pruned, but the unpruned reference says outcome %d",
									i, p.FF, p.Cycle, ref[i].Outcome)
							}
							continue
						}
						if r.Outcome != ref[i].Outcome {
							t.Errorf("point %d (ff=%d cycle=%d): %s outcome %d != reference outcome %d",
								i, p.FF, p.Cycle, v.name, r.Outcome, ref[i].Outcome)
						}
					}
					continue
				}
				// Engines and early-exit settings must agree record for
				// record — journal.Record is comparable by design, so this
				// covers the model operand fields too.
				for i := range recs {
					if recs[i] != first[i] {
						t.Errorf("point %d (ff=%d cycle=%d): %s record %+v != %s record %+v",
							i, points[i].FF, points[i].Cycle, v.name, recs[i], variants[0].name, first[i])
					}
					if t.Failed() && i > 20 {
						t.Fatal("aborting after repeated divergence")
					}
				}
			}

			// Journaled model operands must identify the fault point.
			for i, r := range first {
				p := points[i]
				wantModel := uint8(p.Model)
				if spec.Model == hafi.ModelSEU {
					if r.Model != 0 || r.Span != 0 || r.Period != 0 {
						t.Fatalf("point %d: SEU record carries model fields: %+v", i, r)
					}
					continue
				}
				if r.Model != wantModel {
					t.Fatalf("point %d: journaled model %d, want %d", i, r.Model, wantModel)
				}
				if spec.Model == hafi.ModelSET && int(r.NumTargets) != len(p.Targets) {
					t.Fatalf("point %d: journaled %d targets, fault point has %d", i, r.NumTargets, len(p.Targets))
				}
			}

			// The non-SEU-equivalent models must never be pruned (their
			// shapes are outside the MATE masking argument).
			if spec.Model == hafi.ModelMBU || spec.Model == hafi.ModelStuckAt {
				for i, r := range first {
					if r.Pruned {
						t.Fatalf("point %d: %s point pruned", i, spec)
					}
				}
			}

			outcomes := map[uint8]int{}
			pruned := 0
			for _, r := range first {
				if r.Pruned {
					pruned++
				} else {
					outcomes[r.Outcome]++
				}
			}
			t.Logf("%s: %d points, %d pruned, outcomes %v", spec, len(points), pruned, fmt.Sprint(outcomes))
		})
	}
	if totalPruned == 0 {
		t.Error("no point pruned under any model — the pruned-vs-reference comparison never fired")
	}
}
