GO ?= go

.PHONY: check build vet test race lint-examples campaign-smoke fleet-smoke bench-snapshot bench-compare fuzz-smoke cover

# The CI gate: everything a PR must pass.
check: vet build test race lint-examples campaign-smoke fleet-smoke

build:
	$(GO) build ./...

# Static analysis: go vet always; staticcheck (pinned) when installed —
# the container-friendly gate. CI installs the pinned version and runs both.
STATICCHECK_VERSION ?= 2025.1.1
vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "vet: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

test:
	$(GO) test ./...

# The root package's end-to-end assertions take ~17 min under the race
# detector, past the default 10-minute per-package timeout.
race:
	$(GO) test -race -timeout 30m ./...

# Strict-lint the built-in cores and the bundled example netlists; the
# seeded-defect fixtures under cmd/netlistlint/testdata are exercised (and
# expected to fail) by that package's tests, not here.
lint-examples:
	$(GO) run ./cmd/netlistlint -strict -cpu avr
	$(GO) run ./cmd/netlistlint -strict -cpu msp430
	$(GO) run ./cmd/netlistlint -strict -verilog cmd/netlistlint/testdata/clean.v

# End-to-end crash-resume drill: interrupt a short campaign mid-flight,
# resume from its journal, and require the exact uninterrupted result.
# Also scrapes a live /metrics endpoint during a campaign.
campaign-smoke:
	./scripts/campaign_smoke.sh

# Distributed fault-tolerance drill: coordinator + workers with a zombie
# lease and a SIGKILLed worker; the merged journal must be diff-clean
# against an uninterrupted single-process run.
fleet-smoke:
	./scripts/fleet_smoke.sh

# Refresh a committed benchmark snapshot (default: the BENCH_0.json
# baseline; BENCH_OUT=BENCH_1.json snapshots the current tree next to it).
# Knobs: BENCH=regex BENCHTIME=10x COUNT=3 make bench-snapshot
BENCH_OUT ?= BENCH_0.json
bench-snapshot:
	./scripts/bench_snapshot.sh $(BENCH_OUT)

# Snapshot the current tree and compare it against the newest committed
# baseline (highest-numbered BENCH_N.json, so benchmarks added after
# BENCH_0 are compared too), warning on >15% ns/op regressions. The
# campaign hot-path benchmarks (BENCH_STRICT_RE) fail the run outright on
# regression; everything else stays advisory (STRICT=1 fails on any).
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
BENCH_STRICT_RE ?= ^BenchmarkCampaign
bench-compare:
	./scripts/bench_snapshot.sh /tmp/bench_now.json
	STRICT_RE='$(BENCH_STRICT_RE)' ./scripts/bench_compare.sh $(BENCH_BASELINE) /tmp/bench_now.json

# Short native-fuzzing smoke: each target gets a few seconds on top of its
# seeded corpus. Full fuzzing sessions use `go test -fuzz ... -fuzztime 5m`.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadRaw -fuzztime 10s ./internal/verilog
	$(GO) test -run '^$$' -fuzz FuzzMATESetRoundTrip -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzRecover -fuzztime 10s ./internal/journal
	$(GO) test -run '^$$' -fuzz FuzzBDDEval -fuzztime 10s ./internal/exact
	$(GO) test -run '^$$' -fuzz FuzzGatherScatterW -fuzztime 10s ./internal/sim

# Coverage over the library packages (the cmd/ mains are exercised by the
# smoke scripts, not unit tests).
cover:
	$(GO) test -short -coverprofile=cover.out -coverpkg=./internal/... ./...
	$(GO) tool cover -func=cover.out | tail -1
