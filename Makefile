GO ?= go

.PHONY: check build vet test race lint-examples campaign-smoke

# The CI gate: everything a PR must pass.
check: vet build test race lint-examples campaign-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The root package's end-to-end assertions take ~17 min under the race
# detector, past the default 10-minute per-package timeout.
race:
	$(GO) test -race -timeout 30m ./...

# Strict-lint the built-in cores and the bundled example netlists; the
# seeded-defect fixtures under cmd/netlistlint/testdata are exercised (and
# expected to fail) by that package's tests, not here.
lint-examples:
	$(GO) run ./cmd/netlistlint -strict -cpu avr
	$(GO) run ./cmd/netlistlint -strict -cpu msp430
	$(GO) run ./cmd/netlistlint -strict -verilog cmd/netlistlint/testdata/clean.v

# End-to-end crash-resume drill: interrupt a short campaign mid-flight,
# resume from its journal, and require the exact uninterrupted result.
campaign-smoke:
	./scripts/campaign_smoke.sh
