package repro

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus ablation benches for the heuristic knobs called out in
// DESIGN.md. Each benchmark regenerates its experiment from scratch per
// iteration (the per-CPU traces are prepared once and shared), so -bench
// output measures the cost of the reproduced pipeline stage itself:
//
//	BenchmarkFigure1a        — fault-cone + MATE search on the example circuit
//	BenchmarkTable1_*        — heuristic MATE search per CPU × fault set
//	BenchmarkTable2_AVR      — AVR fault-space reduction + top-N selection
//	BenchmarkTable3_MSP430   — MSP430 fault-space reduction + top-N selection
//	BenchmarkLUTCost         — Section 6.1 FPGA cost model
//	BenchmarkCampaign        — HAFI campaign with online pruning
//	BenchmarkCampaignBatched — batched engine, early-exit on vs off
//	BenchmarkCampaignPool    — parallel pool engine (GOMAXPROCS workers)
//	BenchmarkAblation*       — search-depth / term-count ablations
//	BenchmarkExactVerify     — BDD re-proof of the heuristic MATE set
//	BenchmarkExactFind       — exact prime-implicant term extraction
//
// Run everything with:  go test -bench=. -benchmem
import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/collapse"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/hafi"
	"repro/internal/intercycle"
	"repro/internal/journal"
	"repro/internal/netlist"
	"repro/internal/prune"
	"repro/internal/verilog"
)

// BenchmarkFigure1a regenerates the worked example of Figure 1: cone
// analysis and MATE search for all inputs of the example circuit.
func BenchmarkFigure1a(b *testing.B) {
	nl, w := experiments.Figure1Circuit()
	inputs := []netlist.WireID{w["a"], w["b"], w["c"], w["d"], w["e"], w["h"]}
	params := core.DefaultSearchParams()
	params.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Search(nl, inputs, params)
		if res.Set.Size() == 0 {
			b.Fatal("no MATEs")
		}
	}
}

func benchTable1(b *testing.B, c *experiments.CPUCase, noRF bool) {
	b.Helper()
	wires := c.FaultAll
	if noRF {
		wires = c.FaultNoRF
	}
	params := core.DefaultSearchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Search(c.NL, wires, params)
		if res.Set.Size() == 0 {
			b.Fatal("no MATEs")
		}
	}
}

// BenchmarkTable1_* regenerate the four columns of Table 1 (the heuristic
// MATE search itself; the paper reports its run time in this table).
func BenchmarkTable1_AVR_FF(b *testing.B)      { benchTable1(b, experiments.PrepareAVR(), false) }
func BenchmarkTable1_AVR_NoRF(b *testing.B)    { benchTable1(b, experiments.PrepareAVR(), true) }
func BenchmarkTable1_MSP430_FF(b *testing.B)   { benchTable1(b, experiments.PrepareMSP430(), false) }
func BenchmarkTable1_MSP430_NoRF(b *testing.B) { benchTable1(b, experiments.PrepareMSP430(), true) }

func benchPerf(b *testing.B, c *experiments.CPUCase) {
	b.Helper()
	params := core.DefaultSearchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := experiments.Perf(c, params)
		if t.Cells["fib"]["FF"].MaskedComplete <= 0 {
			b.Fatal("no reduction")
		}
	}
}

// BenchmarkTable2_AVR regenerates Table 2: complete-set evaluation, top-N
// hit-counter selection on both traces and cross-validation for the AVR.
func BenchmarkTable2_AVR(b *testing.B) { benchPerf(b, experiments.PrepareAVR()) }

// BenchmarkTable3_MSP430 regenerates Table 3 for the MSP430.
func BenchmarkTable3_MSP430(b *testing.B) { benchPerf(b, experiments.PrepareMSP430()) }

// BenchmarkReplayEvaluate isolates the per-cycle MATE evaluation that an
// online HAFI integration performs in hardware: one complete 8500-cycle
// replay of the full AVR MATE set.
func BenchmarkReplayEvaluate(b *testing.B) {
	c := experiments.PrepareAVR()
	set := core.Search(c.NL, c.FaultAll, core.DefaultSearchParams()).Set
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := prune.Evaluate(set, c.TraceFib, c.FaultAll)
		if res.MaskedPoints == 0 {
			b.Fatal("no masking")
		}
	}
}

// BenchmarkTopNSelection isolates the hit-counter selection step.
func BenchmarkTopNSelection(b *testing.B) {
	c := experiments.PrepareAVR()
	set := core.Search(c.NL, c.FaultAll, core.DefaultSearchParams()).Set
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := prune.SelectTopN(set, c.TraceFib, c.FaultAll, 50)
		if sel.Size() == 0 {
			b.Fatal("empty selection")
		}
	}
}

// BenchmarkLUTCost regenerates the Section 6.1 cost table.
func BenchmarkLUTCost(b *testing.B) {
	c := experiments.PrepareAVR()
	params := core.DefaultSearchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.LUTCosts(c, params)
		if len(rows) == 0 || rows[0].LUTs == 0 {
			b.Fatal("no cost")
		}
	}
}

// BenchmarkCampaign runs a sampled HAFI campaign with online MATE pruning
// on the AVR (the abstract's headline use case: fewer FI experiments).
func BenchmarkCampaign(b *testing.B) {
	c := experiments.PrepareAVR()
	params := core.DefaultSearchParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := experiments.Campaign(context.Background(), c, "fib", 500, params, false)
		if err != nil {
			b.Fatal(err)
		}
		if row.Result.Total == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkCampaignBatched isolates the 64-lane batched execution engine:
// golden run, MATE search and fault list are prepared once outside the
// loop, so the measured cost is experiment execution alone. The sub-bench
// pair toggles the golden-state convergence early-exit; the delta between
// them is the early-exit payoff on this workload.
func BenchmarkCampaignBatched(b *testing.B) {
	c := experiments.PrepareAVR()
	run := c.NewRun(c.FibProg)
	golden, err := hafi.RecordGolden(run, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	set := core.Search(c.NL, c.FaultAll, core.DefaultSearchParams()).Set
	ctl := hafi.NewController(run, golden)
	points := hafi.SampledFaultList(c.NL, golden.HaltCycle, 500)
	for _, bc := range []struct {
		name    string
		disable bool
	}{{"early-exit", false}, {"full-run", true}} {
		b.Run(bc.name, func(b *testing.B) {
			run64, err := c.NewRun64(c.FibProg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ctl.RunCampaignBatched(hafi.CampaignConfig{
					Points:           points,
					MATESet:          set,
					DisableEarlyExit: bc.disable,
				}, run64)
				if err != nil {
					b.Fatal(err)
				}
				if res.Total == 0 {
					b.Fatal("empty campaign")
				}
			}
		})
	}
}

// BenchmarkCampaignWide sweeps the wide-engine configuration matrix on the
// prepared inputs of BenchmarkCampaignBatched: lane width × evaluation
// mode (sparse cone-delta vs dense dispatch). The lanes=64/delta and
// lanes=256/delta rows are the W ablation EXPERIMENTS.md tracks; the
// dense rows isolate the cone-delta payoff at fixed width.
func BenchmarkCampaignWide(b *testing.B) {
	c := experiments.PrepareAVR()
	run := c.NewRun(c.FibProg)
	golden, err := hafi.RecordGolden(run, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	set := core.Search(c.NL, c.FaultAll, core.DefaultSearchParams()).Set
	ctl := hafi.NewController(run, golden)
	points := hafi.SampledFaultList(c.NL, golden.HaltCycle, 500)
	for _, bc := range []struct {
		name  string
		lanes int
		dense bool
	}{
		{"lanes=64/delta", 64, false},
		{"lanes=128/delta", 128, false},
		{"lanes=256/delta", 256, false},
		{"lanes=64/dense", 64, true},
		{"lanes=256/dense", 256, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			runw, err := c.NewRunW(c.FibProg, bc.lanes)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ctl.RunCampaignBatchedW(hafi.CampaignConfig{
					Points:       points,
					MATESet:      set,
					DisableDelta: bc.dense,
				}, runw)
				if err != nil {
					b.Fatal(err)
				}
				if res.Total == 0 {
					b.Fatal("empty campaign")
				}
			}
		})
	}
}

// BenchmarkCampaignMBU is BenchmarkCampaignBatched under the mbu:2 fault
// model: adjacent-pair bursts enumerated over the same workload, executed
// by the batched engine with pruning and early-exit enabled. Multi-flip
// points are outside the MATE masking argument (never pruned) and inject
// two flips per held cycle, so the delta against the SEU benchmark is the
// model-diversity overhead of the injection hot path.
func BenchmarkCampaignMBU(b *testing.B) {
	c := experiments.PrepareAVR()
	run := c.NewRun(c.FibProg)
	golden, err := hafi.RecordGolden(run, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	set := core.Search(c.NL, c.FaultAll, core.DefaultSearchParams()).Set
	ctl := hafi.NewController(run, golden)
	points := hafi.ModelFaultList(c.NL, golden.HaltCycle, 500, hafi.ModelSpec{Model: hafi.ModelMBU, Span: 2})
	run64, err := c.NewRun64(c.FibProg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ctl.RunCampaignBatched(hafi.CampaignConfig{
			Points:  points,
			MATESet: set,
		}, run64)
		if err != nil {
			b.Fatal(err)
		}
		if res.Total == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkCampaignPool measures the parallel batched scheduler with one
// 64-lane device instance per logical CPU (same prepared inputs as
// BenchmarkCampaignBatched; the delta is the multi-core scaling).
func BenchmarkCampaignPool(b *testing.B) {
	c := experiments.PrepareAVR()
	run := c.NewRun(c.FibProg)
	golden, err := hafi.RecordGolden(run, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	set := core.Search(c.NL, c.FaultAll, core.DefaultSearchParams()).Set
	ctl := hafi.NewController(run, golden)
	points := hafi.SampledFaultList(c.NL, golden.HaltCycle, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ctl.RunCampaignBatchedPool(hafi.CampaignConfig{
			Points:  points,
			MATESet: set,
			Workers: runtime.GOMAXPROCS(0),
		}, func() (hafi.Run64, error) { return c.NewRun64(c.FibProg) })
		if err != nil {
			b.Fatal(err)
		}
		if res.Total == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkCampaignJournal is BenchmarkCampaign with a durable journal
// attached: same golden run, MATE search and batched campaign, plus one
// crash-recovery record per classified point. The delta against
// BenchmarkCampaign is the journal write overhead (EXPERIMENTS.md tracks
// it; the resilience contract demands it stays within a few percent).
func BenchmarkCampaignJournal(b *testing.B) {
	c := experiments.PrepareAVR()
	params := core.DefaultSearchParams()
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := c.NewRun(c.FibProg)
		golden, err := hafi.RecordGolden(run, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		set := core.Search(c.NL, c.FaultAll, params).Set
		ctl := hafi.NewController(run, golden)
		run64, err := c.NewRun64(c.FibProg)
		if err != nil {
			b.Fatal(err)
		}
		points := hafi.SampledFaultList(c.NL, golden.HaltCycle, 500)
		jw, err := journal.Create(filepath.Join(dir, fmt.Sprintf("bench-%d.journal", i)), ctl.JournalHeader(points))
		if err != nil {
			b.Fatal(err)
		}
		res, err := ctl.RunCampaignBatched(hafi.CampaignConfig{
			Points:  points,
			MATESet: set,
			Journal: jw,
		}, run64)
		if err != nil {
			b.Fatal(err)
		}
		if err := jw.Close(); err != nil {
			b.Fatal(err)
		}
		if res.Total == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// --- ablation benches for the heuristic knobs (DESIGN.md §6) -------------

// BenchmarkAblationDepth sweeps the path-enumeration depth.
func BenchmarkAblationDepth(b *testing.B) {
	c := experiments.PrepareAVR()
	for _, depth := range []int{2, 4, 8, 12} {
		b.Run(benchName("depth", depth), func(b *testing.B) {
			params := core.DefaultSearchParams()
			params.Depth = depth
			for i := 0; i < b.N; i++ {
				core.Search(c.NL, c.FaultAll, params)
			}
		})
	}
}

// BenchmarkAblationTerms sweeps the maximum number of gate-masking terms.
func BenchmarkAblationTerms(b *testing.B) {
	c := experiments.PrepareAVR()
	for _, terms := range []int{1, 2, 4, 6} {
		b.Run(benchName("terms", terms), func(b *testing.B) {
			params := core.DefaultSearchParams()
			params.MaxTerms = terms
			for i := 0; i < b.N; i++ {
				core.Search(c.NL, c.FaultAll, params)
			}
		})
	}
}

// BenchmarkExactVerify measures the BDD-backed re-proof of the heuristic
// MATE set (internal/exact.VerifyMATESet) per CPU, at the node budget the
// tier-1 tests use and one tier up. Cones over the budget fall back to
// unproven, so the budget sweep doubles as a coverage-vs-cost ablation.
func BenchmarkExactVerify(b *testing.B) {
	for _, tc := range []struct {
		name string
		c    *experiments.CPUCase
	}{
		{"avr", experiments.PrepareAVR()},
		{"msp430", experiments.PrepareMSP430()},
	} {
		set := core.Search(tc.c.NL, tc.c.FaultAll, core.DefaultSearchParams()).Set
		for _, budget := range []int{1 << 14, 1 << 16} {
			b.Run(fmt.Sprintf("%s/budget=%d", tc.name, budget), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := exact.VerifyMATESet(tc.c.NL, set, exact.Options{NodeBudget: budget})
					if !res.Sound() {
						b.Fatal("heuristic set disproved")
					}
				}
			})
		}
	}
}

// BenchmarkExactFind measures the prime-implicant term extraction
// (internal/exact.FindExactTerms) over every faulty wire, same budget sweep.
func BenchmarkExactFind(b *testing.B) {
	for _, tc := range []struct {
		name string
		c    *experiments.CPUCase
	}{
		{"avr", experiments.PrepareAVR()},
		{"msp430", experiments.PrepareMSP430()},
	} {
		set := core.Search(tc.c.NL, tc.c.FaultAll, core.DefaultSearchParams()).Set
		for _, budget := range []int{1 << 14, 1 << 16} {
			b.Run(fmt.Sprintf("%s/budget=%d", tc.name, budget), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := exact.FindExactTerms(tc.c.NL, tc.c.FaultAll, set, exact.Options{NodeBudget: budget})
					if res.TermsFound == 0 {
						b.Fatal("no exact terms found")
					}
				}
			})
		}
	}
}

// BenchmarkInterCycle measures the offline inter-cycle analysis (DESIGN.md
// extension; paper §6.3 complement) over the AVR register file.
func BenchmarkInterCycle(b *testing.B) {
	c := experiments.PrepareAVR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := intercycle.Analyze(c.NL, c.TraceFib, c.FaultNoRF)
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalPoints == 0 {
			b.Fatal("empty analysis")
		}
	}
}

// BenchmarkFaultCollapse measures the structural stuck-at collapsing of
// the related-work complement on the AVR netlist.
func BenchmarkFaultCollapse(b *testing.B) {
	c := experiments.PrepareAVR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := collapse.Collapse(c.NL)
		if r.Classes == 0 {
			b.Fatal("no classes")
		}
	}
}

// BenchmarkVerilogRoundTrip measures netlist export + re-import.
func BenchmarkVerilogRoundTrip(b *testing.B) {
	c := experiments.PrepareAVR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := verilog.Write(&buf, c.NL); err != nil {
			b.Fatal(err)
		}
		if _, err := verilog.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGateLevelSim measures the raw simulation substrate: cycles per
// second of the AVR core under the fib workload (the cost HAFI platforms
// avoid by emulating in hardware).
func BenchmarkGateLevelSim(b *testing.B) {
	c := experiments.PrepareAVR()
	run := c.NewRun(c.FibProg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run.Step()
	}
}

func benchName(key string, v int) string {
	return key + "=" + strconv.Itoa(v)
}
