package repro

// Wide-engine differential matrix: for every fault model, the campaign must
// journal byte-identical streams across
//
//   - device width: 64-lane and 256-lane devices,
//   - evaluation mode: dense dispatch and the sparse cone-delta engine,
//   - scheduling: single-instance batched and pooled batched,
//   - early-exit: convergence retirement on and off,
//
// with the sequential scalar controller as the semantic anchor. The batch
// planner packs points identically regardless of lane count (stable
// cycle-major order, per-point record emission), so the journals are
// compared as raw bytes — any divergence in planning, packing, delta
// evaluation or classification breaks the equality.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/hafi"
	"repro/internal/journal"
)

func TestDifferentialWideDeltaMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("differential campaign comparison is not short")
	}
	c := experiments.PrepareAVR()
	prog := c.FibProg

	golden, err := hafi.RecordGolden(c.NewRun(prog), 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	specs := []hafi.ModelSpec{
		{Model: hafi.ModelSEU},
		{Model: hafi.ModelMBU, Span: 2},
		{Model: hafi.ModelSET},
		{Model: hafi.ModelIntermittent, Period: 2, Window: 6},
		{Model: hafi.ModelStuckAt, Window: 3, StuckHigh: true},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			const stride = 3000
			full := hafi.ModelFaultList(c.NL, golden.HaltCycle, stride, spec)
			var points []hafi.FaultPoint
			for i := 0; i < len(full); i += 3 {
				points = append(points, full[i])
			}
			if len(points) < 60 {
				t.Fatalf("fault list too small for a meaningful comparison: %d points", len(points))
			}

			dir := t.TempDir()
			runJournaled := func(name string, exec func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error)) ([]byte, []journal.Record) {
				t.Helper()
				path := filepath.Join(dir, name+".journal")
				ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
				jw, err := journal.Create(path, ctl.JournalHeader(points))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := exec(hafi.CampaignConfig{Points: points, Journal: jw}); err != nil {
					t.Fatalf("%s campaign: %v", name, err)
				}
				if err := jw.Close(); err != nil {
					t.Fatal(err)
				}
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				rec, err := journal.Recover(path)
				if err != nil {
					t.Fatalf("%s journal recovery: %v", name, err)
				}
				if len(rec.ByIndex) != len(points) {
					t.Fatalf("%s journal has %d records, want %d", name, len(rec.ByIndex), len(points))
				}
				out := make([]journal.Record, len(points))
				for idx, r := range rec.ByIndex {
					out[idx] = r
				}
				return raw, out
			}

			batched := func(lanes int, disableDelta, disableEarly bool) func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
				return func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
					cfg.DisableDelta = disableDelta
					cfg.DisableEarlyExit = disableEarly
					ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
					run, err := c.NewRunW(prog, lanes)
					if err != nil {
						return nil, err
					}
					return ctl.RunCampaignBatchedW(cfg, run)
				}
			}
			pooled := func(lanes int, disableDelta, disableEarly bool) func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
				return func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error) {
					cfg.DisableDelta = disableDelta
					cfg.DisableEarlyExit = disableEarly
					cfg.Workers = runtime.NumCPU()
					ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
					return ctl.RunCampaignBatchedPoolW(cfg, func() (hafi.RunW, error) { return c.NewRunW(prog, lanes) })
				}
			}

			variants := []struct {
				name string
				exec func(cfg hafi.CampaignConfig) (*hafi.CampaignResult, error)
			}{
				{"64-dense-early", batched(64, true, false)},
				{"256-dense-early", batched(256, true, false)},
				{"256-delta-early", batched(256, false, false)},
				{"64-delta-early", batched(64, false, false)},
				{"256-delta-full", batched(256, false, true)},
				{"256-dense-full", batched(256, true, true)},
				{"pooled-256-delta-early", pooled(256, false, false)},
				{"pooled-256-dense-full", pooled(256, true, true)},
			}

			var firstRaw []byte
			var firstRecs []journal.Record
			for _, v := range variants {
				raw, recs := runJournaled(v.name, v.exec)
				if firstRaw == nil {
					firstRaw, firstRecs = raw, recs
					continue
				}
				if !bytes.Equal(raw, firstRaw) {
					// Locate the first diverging record for a useful message.
					for i := range recs {
						if recs[i] != firstRecs[i] {
							t.Fatalf("%s journal diverges from %s at point %d (ff=%d cycle=%d): %+v != %+v",
								v.name, variants[0].name, i, points[i].FF, points[i].Cycle, recs[i], firstRecs[i])
						}
					}
					t.Fatalf("%s journal bytes differ from %s but records agree — header or framing drift", v.name, variants[0].name)
				}
			}

			// Semantic anchor: the sequential scalar controller (dense by
			// construction) must classify every point identically.
			ctl := hafi.NewController(c.NewRun(prog), golden)
			seq, err := ctl.RunCampaign(hafi.CampaignConfig{Points: points, DisableEarlyExit: true})
			if err != nil {
				t.Fatal(err)
			}
			byOutcome := map[uint8]int{}
			for _, r := range firstRecs {
				byOutcome[r.Outcome]++
			}
			for o, n := range seq.ByOutcome {
				if byOutcome[uint8(o)] != int(n) {
					t.Errorf("outcome %s: batched matrix %d, sequential scalar %d", o, byOutcome[uint8(o)], n)
				}
			}
			t.Logf("%s: %d points, outcomes %v", spec, len(points), fmt.Sprint(byOutcome))
		})
	}
}
