// hafi-campaign: fault-injection campaign on the modelled HAFI platform,
// with and without online MATE pruning.
//
// The controller records a golden run, walks a sampled (flip-flop × cycle)
// fault list, and classifies every experiment as benign, silent data
// corruption or hang. With MATEs attached, injections proven benign are
// skipped before execution; the example validates a sample of the skipped
// points against actual execution to demonstrate soundness, and reports
// the FPGA LUT budget of the MATE set (paper Section 6.1).
//
//	go run ./examples/hafi-campaign
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/cpu/avr"
	"repro/internal/hafi"
	"repro/internal/prune"
)

const workload = `
    ldi r1, 12      ; iterations
    ldi r2, 1
    ldi r3, 0
loop:
    add r3, r2
    add r2, r3
    lsr r3
    dec r1
    brne loop
    ldi r4, 32
    st (r4), r2
    st (r4), r3    ; overwrite — only the final store matters
    out r2
    halt
`

func main() {
	c := avr.NewCore()
	prog := avr.MustAssemble(workload)
	factory := func() hafi.Run { return hafi.NewAVRRun(avr.NewCore(), prog) }
	run := factory()

	golden, err := hafi.RecordGolden(run, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: %d cycles, result signature %016x\n", golden.HaltCycle, golden.Signature)

	points := hafi.FullFaultList(c.NL, golden.HaltCycle)
	fmt.Printf("fault space: %d flip-flops × %d cycles = %d points\n\n",
		len(c.NL.FFs), golden.HaltCycle, len(points))

	ctl := hafi.NewControllerPool(factory, golden)

	// --- baseline: no pruning ---------------------------------------------
	start := time.Now()
	base, err := ctl.RunCampaign(hafi.CampaignConfig{Points: points, Workers: runtime.NumCPU()})
	if err != nil {
		log.Fatal(err)
	}
	baseTime := time.Since(start)
	fmt.Printf("baseline campaign: %d experiments in %v\n", base.Executed, baseTime.Round(time.Millisecond))
	fmt.Printf("  benign=%d sdc=%d hang=%d\n\n",
		base.ByOutcome[hafi.OutcomeBenign], base.ByOutcome[hafi.OutcomeSDC], base.ByOutcome[hafi.OutcomeHang])

	// --- with online MATE pruning (validated) --------------------------------
	res := core.Search(c.NL, c.NL.FFQWires(), core.DefaultSearchParams())
	top := prune.SelectTopN(res.Set, golden.Trace, c.NL.FFQWires(), 100)
	fmt.Printf("MATE set: %d found, top-100 selected, %d LUTs (%.2f%% of a 1.5k-LUT FI controller)\n",
		res.Set.Size(), hafi.LUTCost(top), 100*hafi.OverheadVsController(top, hafi.FIControllerLUTsLow))

	start = time.Now()
	pruned, err := ctl.RunCampaign(hafi.CampaignConfig{
		Points:          points,
		Workers:         runtime.NumCPU(),
		MATESet:         top,
		ValidateSkipped: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pruned campaign: %d of %d points skipped (%.2f%%), %d executed in %v\n",
		pruned.Skipped, pruned.Total, 100*pruned.PrunedFraction(), pruned.Executed,
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("  benign=%d sdc=%d hang=%d\n",
		pruned.ByOutcome[hafi.OutcomeBenign], pruned.ByOutcome[hafi.OutcomeSDC], pruned.ByOutcome[hafi.OutcomeHang])
	fmt.Printf("  validation: every skipped point re-executed, %d violations\n", pruned.SkippedWrong)
	if pruned.SkippedWrong != 0 {
		log.Fatal("MATE soundness violated")
	}

	// --- consistency check ---------------------------------------------------
	if pruned.ByOutcome[hafi.OutcomeSDC] != base.ByOutcome[hafi.OutcomeSDC] ||
		pruned.ByOutcome[hafi.OutcomeHang] != base.ByOutcome[hafi.OutcomeHang] {
		log.Fatal("pruning changed the set of effective faults")
	}
	fmt.Println("\npruning removed only benign experiments: SDC and hang counts unchanged")
}
