// avr-fib: the full cross-layer flow on the AVR-class core.
//
// It assembles a Fibonacci workload, co-simulates the gate-level netlist
// against the architectural ISS, records the paper's 8500-cycle wire
// trace, runs the MATE search over all flip-flops and over the
// "FF w/o RF" set, quantifies the fault-space reduction, and performs the
// hit-counter top-50 selection with cross-validation against a second
// workload.
//
//	go run ./examples/avr-fib
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cpu/avr"
	"repro/internal/progs"
	"repro/internal/prune"
)

func main() {
	// --- build the core and assemble the workload ----------------------
	c := avr.NewCore()
	st := c.NL.Stats()
	fmt.Printf("AVR-class core: %s\n", st)
	prog, err := avr.Assemble(progs.AVRFibSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fib: %d instruction words\n\n", len(prog))

	// --- golden-model cross-check ---------------------------------------
	iss := avr.NewISS(prog)
	iss.Run(1 << 20)
	sys := avr.NewSystem(c, prog)
	cycles := sys.Run(1 << 20)
	if !iss.Halted || !sys.Halted() {
		log.Fatal("workload did not halt")
	}
	for r := 0; r < avr.NumRegs; r++ {
		if sys.Reg(r) != iss.Regs[r] {
			log.Fatalf("co-simulation mismatch in r%d", r)
		}
	}
	fmt.Printf("co-simulation: netlist matches ISS after %d cycles (%d instructions)\n",
		cycles, iss.Instructions)
	fmt.Printf("result checksum on port: %#02x\n\n", sys.PortValue())

	// --- record the evaluation trace -------------------------------------
	sys.M.Reset()
	sys.DMem = [256]uint8{}
	trace := sys.Record(progs.TraceCycles)
	fmt.Printf("recorded %d-cycle wire-level trace (%d wires)\n\n",
		trace.NumCycles(), trace.NumWires)

	// --- MATE search ------------------------------------------------------
	params := core.DefaultSearchParams()
	all := c.NL.FFQWires()
	noRF := c.NL.FFQWires(avr.GroupRegFile)
	resAll := core.Search(c.NL, all, params)
	resNoRF := core.Search(c.NL, noRF, params)
	fmt.Printf("MATE search FF:        %d MATEs (%d unmaskable of %d wires) in %v\n",
		resAll.Set.Size(), resAll.Unmaskable, len(all), resAll.Elapsed)
	fmt.Printf("MATE search FF w/o RF: %d MATEs (%d unmaskable of %d wires) in %v\n\n",
		resNoRF.Set.Size(), resNoRF.Unmaskable, len(noRF), resNoRF.Elapsed)

	// --- fault-space reduction --------------------------------------------
	evalAll := prune.Evaluate(resAll.Set, trace, all)
	evalNoRF := prune.Evaluate(resNoRF.Set, trace, noRF)
	fmt.Printf("fault space FF:        %s\n", evalAll)
	fmt.Printf("fault space FF w/o RF: %s\n\n", evalNoRF)

	// --- top-50 selection + cross-validation on conv ----------------------
	top50 := prune.SelectTopN(resNoRF.Set, trace, noRF, 50)
	self := prune.Evaluate(top50, trace, noRF)
	fmt.Printf("top-50 MATEs on fib:   %.2f%% (complete set %.2f%%)\n",
		100*self.Reduction(), 100*evalNoRF.Reduction())

	convSys := avr.NewSystem(avr.NewCore(), progs.AVRConv())
	convTrace := convSys.Record(progs.TraceCycles)
	cross := prune.Evaluate(top50, convTrace, noRF)
	fmt.Printf("same set on conv:      %.2f%% (transferability across workloads)\n",
		100*cross.Reduction())
}
