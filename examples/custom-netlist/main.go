// custom-netlist: the bring-your-own-design flow.
//
// The paper's tool consumes netlists produced by a synthesis flow; this
// example shows the equivalent path here without the built-in CPU cores:
//
//  1. build a small custom design (an accumulating checksum engine with a
//     command interface) with the structural synthesis API,
//
//  2. export it as structural Verilog and re-import it (the interchange
//     point for external designs),
//
//  3. run the MATE search, stuck-at fault collapsing and the offline
//     inter-cycle analysis on the imported netlist,
//
//  4. run a fault-injection campaign against it with the generic
//     netlist-level campaign target (hafi.NetlistRun) and online MATE
//     pruning, validating every pruned point.
//
//     go run ./examples/custom-netlist
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/cell"
	"repro/internal/collapse"
	"repro/internal/core"
	"repro/internal/hafi"
	"repro/internal/intercycle"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/verilog"
)

// buildEngine creates a small synchronous design: an 8-bit accumulator
// that, while `run` is high, folds a rotating data input into a checksum;
// a 6-bit cycle counter raises `done` after 40 cycles and freezes the
// machine. The structure (enable-muxed state, qualified output bus) gives
// the MATE search realistic masking opportunities.
func buildEngine() (*netlist.Netlist, synth.Bus, netlist.WireID, netlist.WireID) {
	b := netlist.NewBuilder("cksum_engine")
	c := synth.New(b)

	data := c.InputBus("data", 8)
	en := b.Input("en")

	done := c.RegisterPlaceholder("done", 1, 0, "ctrl")
	running := b.Gate(cell.INV, done[0])
	step := b.GateNamed("step", cell.AND2, en, running)

	// checksum: acc' = rotl1(acc) xor data
	acc := c.RegisterPlaceholder("acc", 8, 0, "acc")
	rot, _ := c.ShiftLeft1(acc, acc[7])
	next := c.Xor(rot, data)
	c.ConnectRegister(acc, next, step)

	// staging register only used every 4th cycle — inter-cycle fodder
	cnt := c.RegisterPlaceholder("cnt", 6, 0, "ctrl")
	c.ConnectRegister(cnt, c.Inc(cnt).Sum, step)
	every4 := c.EqualConst(synth.Bus{cnt[0], cnt[1]}, 3)
	stage := c.RegisterPlaceholder("stage", 8, 0, "stage")
	c.ConnectRegister(stage, acc, b.Gate(cell.AND2, step, every4))

	doneNow := c.EqualConst(cnt, 40)
	c.ConnectRegisterAlways(done, synth.Bus{b.Gate(cell.OR2, done[0], doneNow)})

	// output bus qualified by done: the result is visible once finished
	out := c.AndBit(stage, done[0])
	c.OutputBus(out)
	b.MarkOutput(done[0])

	return b.MustNetlist(), data, en, done[0]
}

func main() {
	nl, _, _, _ := buildEngine()
	fmt.Printf("designed %s: %s\n", nl.Name, nl.Stats())

	// --- Verilog round trip ------------------------------------------------
	var buf bytes.Buffer
	if err := verilog.Write(&buf, nl); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d bytes of structural Verilog\n", buf.Len())
	imported, err := verilog.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-imported: %s\n\n", imported.Stats())
	nl = imported

	// The port wires move with the round trip; resolve them by name.
	dataW := make(synth.Bus, 8)
	for i := range dataW {
		w, ok := nl.WireByName(fmt.Sprintf("data[%d]", i))
		if !ok {
			log.Fatal("data wire lost")
		}
		dataW[i] = w
	}
	enW, _ := nl.WireByName("en")
	doneW, _ := nl.WireByName("done[0]")

	// --- static + offline analyses ------------------------------------------
	col := collapse.Collapse(nl)
	fmt.Printf("fault collapsing:   %s\n", col)

	res := core.Search(nl, nl.FFQWires(), core.DefaultSearchParams())
	fmt.Printf("MATE search:        %d MATEs, %d unmaskable of %d FFs\n",
		res.Set.Size(), res.Unmaskable, len(nl.FFs))

	drive := func(cycle int, m *sim.Machine) {
		m.WriteBus(dataW, uint64(cycle*31+7)&0xFF)
		m.SetValue(enW, true)
	}
	run := hafi.NewNetlistRun(nl, doneW, drive)
	golden, err := hafi.RecordGolden(run, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run:         %d cycles, signature %016x\n", golden.HaltCycle, golden.Signature)

	inter, err := intercycle.Analyze(nl, golden.Trace, nl.FFQWires())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline analysis:   %s\n\n", inter)

	// --- campaign with online pruning -----------------------------------------
	points := hafi.FullFaultList(nl, golden.HaltCycle)
	ctl := hafi.NewController(run, golden)
	camp, err := ctl.RunCampaign(hafi.CampaignConfig{
		Points:          points,
		MATESet:         res.Set,
		ValidateSkipped: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign:           %d points, %d pruned online (%.1f%%), outcomes %v\n",
		camp.Total, camp.Skipped, 100*camp.PrunedFraction(), camp.ByOutcome)
	fmt.Printf("validation:         %d violations among pruned points\n", camp.SkippedWrong)
	if camp.SkippedWrong != 0 {
		log.Fatal("soundness violated")
	}
}
