// msp430-conv: the multi-cycle core under the convolution workload, with
// VCD export/import round-trip.
//
// This example shows the offline flavour of the flow: record a VCD trace
// (as the paper does with its netlist simulation), parse it back, and run
// the MATE selection on the parsed trace — demonstrating that the pruning
// pipeline also works from on-disk traces produced by external simulators.
//
//	go run ./examples/msp430-conv
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/cpu/msp430"
	"repro/internal/progs"
	"repro/internal/prune"
	"repro/internal/vcd"
)

func main() {
	c := msp430.NewCore()
	fmt.Printf("MSP430-class core: %s\n", c.NL.Stats())

	prog, err := msp430.Assemble(progs.MSP430ConvSrc)
	if err != nil {
		log.Fatal(err)
	}
	sys := msp430.NewSystem(c, prog)
	trace := sys.Record(progs.TraceCycles)
	fmt.Printf("simulated conv for %d cycles\n", trace.NumCycles())

	// --- VCD round trip ----------------------------------------------------
	path := filepath.Join(os.TempDir(), "msp430_conv.vcd")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := vcd.Write(f, c.NL, trace); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("wrote %s (%d KiB)\n", path, info.Size()/1024)

	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	parsed, err := vcd.Read(f, c.NL)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed back %d cycles\n\n", parsed.NumCycles())

	// --- MATE search + pruning from the parsed trace ------------------------
	noRF := c.NL.FFQWires(msp430.GroupRegFile)
	res := core.Search(c.NL, noRF, core.DefaultSearchParams())
	fmt.Printf("MATE search (FF w/o RF): %d MATEs in %v\n", res.Set.Size(), res.Elapsed)

	complete := prune.Evaluate(res.Set, parsed, noRF)
	fmt.Printf("complete set:  %s\n", complete)
	for _, n := range []int{10, 50, 100} {
		sel := prune.SelectTopN(res.Set, parsed, noRF, n)
		r := prune.Evaluate(sel, parsed, noRF)
		fmt.Printf("top-%-3d      : %.2f%% with %d MATEs\n", n, 100*r.Reduction(), sel.Size())
	}
}
