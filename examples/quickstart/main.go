// Quickstart: the paper's Figure 1 worked example, end to end.
//
// It builds the small example circuit, computes the fault cone of input d,
// runs the MATE search for every input wire, validates the discovered MATE
// for d against the exact cone-duplication oracle over all input
// combinations, and finally prints the pruned fault-space grid of
// Figure 1b.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func main() {
	// --- build the Figure 1a circuit -----------------------------------
	b := netlist.NewBuilder("fig1a")
	w := map[string]netlist.WireID{}
	for _, n := range []string{"a", "b", "c", "d", "e", "h"} {
		w[n] = b.Input(n)
	}
	w["j"] = b.GateNamed("j", cell.NAND2, w["a"], w["b"]) // gate A
	w["f"] = b.GateNamed("f", cell.OR2, w["j"], w["e"])   // gate C'
	w["g"] = b.GateNamed("g", cell.XOR2, w["c"], w["d"])  // gate B
	w["k"] = b.GateNamed("k", cell.AND2, w["g"], w["f"])  // gate D
	w["l"] = b.GateNamed("l", cell.OR2, w["g"], w["h"])   // gate E
	w["m"] = b.GateNamed("m", cell.XOR2, w["e"], w["c"])  // gate C
	b.MarkOutput(w["k"])
	b.MarkOutput(w["l"])
	b.MarkOutput(w["m"])
	nl, err := b.Netlist()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %s\n\n", nl.Stats())

	// --- fault cone of input d (paper: {d, g, k, l}) --------------------
	cone := core.ComputeCone(nl, w["d"])
	fmt.Printf("fault cone of d: %d gates, %d sinks, border wires:", cone.NumGates(), len(cone.Sinks))
	for _, bw := range cone.BorderWires(nl) {
		fmt.Printf(" %s", nl.WireName(bw))
	}
	fmt.Println()

	// --- MATE search over all inputs ------------------------------------
	inputs := []netlist.WireID{w["a"], w["b"], w["c"], w["d"], w["e"], w["h"]}
	res := core.Search(nl, inputs, core.DefaultSearchParams())
	fmt.Printf("\nMATE search: %d MATEs, %d unmaskable wires, %d candidates tried\n",
		res.Set.Size(), res.Unmaskable, res.TotalCandidates)
	for _, m := range res.Set.MATEs {
		var masks []string
		for _, mw := range m.Masks {
			masks = append(masks, nl.WireName(mw))
		}
		fmt.Printf("  %-14s masks %v\n", m.String(nl), masks)
	}

	// --- validate the border MATE for d exactly -------------------------
	var dMate *core.MATE
	for _, m := range res.Set.MATEs {
		for _, mw := range m.Masks {
			if mw == w["d"] {
				dMate = m
			}
		}
	}
	if dMate == nil {
		log.Fatal("no MATE found for d")
	}
	oracle := core.NewOracle(nl)
	machine := sim.New(nl)
	triggered, violations := 0, 0
	for v := uint64(0); v < 64; v++ {
		machine.WriteBus(inputs, v)
		machine.EvalComb()
		if !dMate.Eval(machine.Value) {
			continue
		}
		triggered++
		if !oracle.MaskedExact(cone, machine.Values()) {
			violations++
		}
	}
	fmt.Printf("\nexhaustive validation of %q: triggered in %d/64 input states, %d violations\n",
		dMate.String(nl), triggered, violations)

	// --- Figure 1b: pruned fault-space grid ------------------------------
	fmt.Println("\nfault-space grid (X = provably benign this cycle):")
	m := sim.New(nl)
	cnt := 0
	env := sim.EnvFunc(func(m *sim.Machine) {
		for i, in := range inputs {
			m.SetValue(in, (cnt>>uint(i))&1 == 1)
		}
		cnt++
	})
	tr := sim.Record(m, env, 8)
	for i, in := range inputs {
		fmt.Printf("  %s |", nl.WireName(in))
		for cyc := 0; cyc < tr.NumCycles(); cyc++ {
			benign := false
			for _, mate := range res.Set.MATEs {
				if !mate.EvalTrace(tr, cyc) {
					continue
				}
				for _, mw := range mate.Masks {
					if mw == in {
						benign = true
					}
				}
			}
			if benign {
				fmt.Print(" X")
			} else {
				fmt.Print(" .")
			}
		}
		fmt.Println()
		_ = i
	}
}
