// Package synth provides word-level structural synthesis on top of the
// netlist builder: buses, boolean operators, adders, comparators,
// multiplexer trees, decoders, registers and register files — everything
// needed to construct the two processor netlists gate by gate. It plays the
// role of the RTL-synthesis step (Synopsys Design Compiler in the paper):
// the output is a flattened netlist of standard cells from internal/cell.
package synth

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Bus is a multi-bit signal, least-significant bit first.
type Bus []netlist.WireID

// Ctx wraps a netlist builder with word-level helpers. All methods create
// gates in the underlying builder.
type Ctx struct {
	B *netlist.Builder
}

// New creates a synthesis context over the given builder.
func New(b *netlist.Builder) *Ctx { return &Ctx{B: b} }

// Scope returns a context whose builder prefixes names with the given
// scope.
func (c *Ctx) Scope(prefix string) *Ctx { return &Ctx{B: c.B.Scope(prefix)} }

// InputBus declares a primary-input bus named name[0..width).
func (c *Ctx) InputBus(name string, width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		bus[i] = c.B.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return bus
}

// OutputBus marks every bit of the bus as a primary output.
func (c *Ctx) OutputBus(bus Bus) {
	for _, w := range bus {
		c.B.MarkOutput(w)
	}
}

// ConstBus returns a bus of constant wires encoding value.
func (c *Ctx) ConstBus(value uint64, width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		bus[i] = c.B.Const(value>>i&1 == 1)
	}
	return bus
}

// ZeroExtend widens a bus with constant zeros (or truncates).
func (c *Ctx) ZeroExtend(b Bus, width int) Bus {
	if len(b) >= width {
		return b[:width]
	}
	out := make(Bus, width)
	copy(out, b)
	zero := c.B.Const(false)
	for i := len(b); i < width; i++ {
		out[i] = zero
	}
	return out
}

// SignExtend widens a bus replicating its MSB (or truncates).
func (c *Ctx) SignExtend(b Bus, width int) Bus {
	if len(b) >= width {
		return b[:width]
	}
	out := make(Bus, width)
	copy(out, b)
	msb := b[len(b)-1]
	for i := len(b); i < width; i++ {
		out[i] = msb
	}
	return out
}

// Not inverts every bit.
func (c *Ctx) Not(a Bus) Bus {
	out := make(Bus, len(a))
	for i, w := range a {
		out[i] = c.B.Gate(cell.INV, w)
	}
	return out
}

func (c *Ctx) bitwise(kind cell.Kind, a, b Bus) Bus {
	if len(a) != len(b) {
		panic(fmt.Sprintf("synth: width mismatch %d vs %d", len(a), len(b)))
	}
	out := make(Bus, len(a))
	for i := range a {
		out[i] = c.B.Gate(kind, a[i], b[i])
	}
	return out
}

// And, Or, Xor are bitwise operators over equal-width buses.
func (c *Ctx) And(a, b Bus) Bus { return c.bitwise(cell.AND2, a, b) }
func (c *Ctx) Or(a, b Bus) Bus  { return c.bitwise(cell.OR2, a, b) }
func (c *Ctx) Xor(a, b Bus) Bus { return c.bitwise(cell.XOR2, a, b) }

// AndBit masks every bit of a with the single wire s.
func (c *Ctx) AndBit(a Bus, s netlist.WireID) Bus {
	out := make(Bus, len(a))
	for i := range a {
		out[i] = c.B.Gate(cell.AND2, a[i], s)
	}
	return out
}

// Mux2 selects a (sel=0) or b (sel=1) per bit.
func (c *Ctx) Mux2(sel netlist.WireID, a, b Bus) Bus {
	if len(a) != len(b) {
		panic("synth: mux width mismatch")
	}
	out := make(Bus, len(a))
	for i := range a {
		out[i] = c.B.Gate(cell.MUX2, a[i], b[i], sel)
	}
	return out
}

// MuxTree selects options[sel] with a balanced MUX2 tree. The number of
// options must be a power of two... it is padded with the last option
// otherwise. sel is little-endian.
func (c *Ctx) MuxTree(sel Bus, options []Bus) Bus {
	if len(options) == 0 {
		panic("synth: empty mux tree")
	}
	n := 1
	for n < len(options) {
		n *= 2
	}
	opts := make([]Bus, n)
	copy(opts, options)
	for i := len(options); i < n; i++ {
		opts[i] = options[len(options)-1]
	}
	level := 0
	for len(opts) > 1 {
		if level >= len(sel) {
			panic("synth: mux tree select too narrow")
		}
		next := make([]Bus, len(opts)/2)
		for i := range next {
			next[i] = c.Mux2(sel[level], opts[2*i], opts[2*i+1])
		}
		opts = next
		level++
	}
	return opts[0]
}

// ReduceOr returns the OR of all bits (balanced tree).
func (c *Ctx) ReduceOr(a Bus) netlist.WireID { return c.reduce(cell.OR2, a) }

// ReduceAnd returns the AND of all bits (balanced tree).
func (c *Ctx) ReduceAnd(a Bus) netlist.WireID { return c.reduce(cell.AND2, a) }

func (c *Ctx) reduce(kind cell.Kind, a Bus) netlist.WireID {
	if len(a) == 0 {
		panic("synth: reduce over empty bus")
	}
	work := append(Bus(nil), a...)
	for len(work) > 1 {
		var next Bus
		for i := 0; i+1 < len(work); i += 2 {
			next = append(next, c.B.Gate(kind, work[i], work[i+1]))
		}
		if len(work)%2 == 1 {
			next = append(next, work[len(work)-1])
		}
		work = next
	}
	return work[0]
}

// IsZero returns a wire that is 1 iff the bus is all zeros.
func (c *Ctx) IsZero(a Bus) netlist.WireID {
	return c.B.Gate(cell.INV, c.ReduceOr(a))
}

// Equal returns a wire that is 1 iff a == b.
func (c *Ctx) Equal(a, b Bus) netlist.WireID {
	eq := make(Bus, len(a))
	for i := range a {
		eq[i] = c.B.Gate(cell.XNOR2, a[i], b[i])
	}
	return c.ReduceAnd(eq)
}

// EqualConst returns a wire that is 1 iff a == value, using INV/AND only.
func (c *Ctx) EqualConst(a Bus, value uint64) netlist.WireID {
	terms := make(Bus, len(a))
	for i := range a {
		if value>>i&1 == 1 {
			terms[i] = a[i]
		} else {
			terms[i] = c.B.Gate(cell.INV, a[i])
		}
	}
	return c.ReduceAnd(terms)
}

// AddResult carries the outputs of an adder.
type AddResult struct {
	Sum  Bus
	Cout netlist.WireID
}

// Adder builds a ripple-carry adder: sum = a + b + cin. Full adders are
// expanded to XOR2/MAJ3 cells as a technology mapper would.
func (c *Ctx) Adder(a, b Bus, cin netlist.WireID) AddResult {
	if len(a) != len(b) {
		panic("synth: adder width mismatch")
	}
	sum := make(Bus, len(a))
	carry := cin
	for i := range a {
		axb := c.B.Gate(cell.XOR2, a[i], b[i])
		sum[i] = c.B.Gate(cell.XOR2, axb, carry)
		carry = c.B.Gate(cell.MAJ3, a[i], b[i], carry)
	}
	return AddResult{Sum: sum, Cout: carry}
}

// Sub builds a - b via two's complement (a + ^b + 1). Cout is the NOT-borrow
// flag (1 when a >= b, unsigned).
func (c *Ctx) Sub(a, b Bus) AddResult {
	return c.Adder(a, c.Not(b), c.B.Const(true))
}

// SubBorrow builds a - b - borrowIn, matching SBC-style instructions:
// effective carry-in = NOT borrowIn.
func (c *Ctx) SubBorrow(a, b Bus, borrowIn netlist.WireID) AddResult {
	return c.Adder(a, c.Not(b), c.B.Gate(cell.INV, borrowIn))
}

// Inc builds a + 1.
func (c *Ctx) Inc(a Bus) AddResult {
	return c.Adder(a, c.ConstBus(0, len(a)), c.B.Const(true))
}

// ShiftRight1 shifts right by one, inserting `in` at the MSB; it returns
// the shifted bus and the bit shifted out (old LSB).
func (c *Ctx) ShiftRight1(a Bus, in netlist.WireID) (Bus, netlist.WireID) {
	out := make(Bus, len(a))
	copy(out, a[1:])
	out[len(a)-1] = in
	return out, a[0]
}

// ShiftLeft1 shifts left by one, inserting `in` at the LSB; it returns the
// shifted bus and the bit shifted out (old MSB).
func (c *Ctx) ShiftLeft1(a Bus, in netlist.WireID) (Bus, netlist.WireID) {
	out := make(Bus, len(a))
	copy(out[1:], a[:len(a)-1])
	out[0] = in
	return out, a[len(a)-1]
}

// Decoder builds a one-hot decoder of the select bus (2^len outputs).
func (c *Ctx) Decoder(sel Bus) Bus {
	n := 1 << len(sel)
	out := make(Bus, n)
	inv := make(Bus, len(sel))
	for i, w := range sel {
		inv[i] = c.B.Gate(cell.INV, w)
	}
	for v := 0; v < n; v++ {
		terms := make(Bus, len(sel))
		for i := range sel {
			if v>>i&1 == 1 {
				terms[i] = sel[i]
			} else {
				terms[i] = inv[i]
			}
		}
		out[v] = c.ReduceAnd(terms)
	}
	return out
}

// Register builds a bank of flip-flops with a write-enable: each bit's next
// state is MUX2(en, Q, d). The Q bus is returned. Name yields per-bit FF
// names name[i]; group tags the FFs for fault-set selection.
func (c *Ctx) Register(name string, d Bus, en netlist.WireID, init uint64, group string) Bus {
	q := make(Bus, len(d))
	for i := range d {
		q[i] = c.B.FFPlaceholder(fmt.Sprintf("%s[%d]", name, i), init>>i&1 == 1, group)
	}
	for i := range d {
		next := c.B.Gate(cell.MUX2, q[i], d[i], en)
		c.B.SetFFD(q[i], next)
	}
	return q
}

// RegisterAlways builds a register that loads every cycle (no enable mux).
func (c *Ctx) RegisterAlways(name string, d Bus, init uint64, group string) Bus {
	q := make(Bus, len(d))
	for i := range d {
		q[i] = c.B.FF(fmt.Sprintf("%s[%d]", name, i), d[i], init>>i&1 == 1, group)
	}
	return q
}

// RegFile is a synthesized register file with one write port and N read
// ports built from enable-muxed flip-flops, a write-address decoder and
// read multiplexer trees — the structure that makes the paper's mov/ld
// masking example work (a register's hold mux masks Q faults whenever the
// register is written).
type RegFile struct {
	Regs []Bus // Q wires per register
}

// RegFileConfig parameterises BuildRegFile.
type RegFileConfig struct {
	Name  string
	Num   int // number of registers (power of two for clean decoding)
	Width int
	Group string // FF group tag, e.g. "regfile"
	Inits []uint64
}

// BuildRegFile creates the storage plus write logic. wEn gates the write,
// wAddr selects the target register, wData is the value.
func (c *Ctx) BuildRegFile(cfg RegFileConfig, wEn netlist.WireID, wAddr Bus, wData Bus) *RegFile {
	dec := c.Decoder(wAddr)
	rf := &RegFile{}
	for r := 0; r < cfg.Num; r++ {
		en := c.B.Gate(cell.AND2, wEn, dec[r])
		var init uint64
		if r < len(cfg.Inits) {
			init = cfg.Inits[r]
		}
		q := c.Register(fmt.Sprintf("%s.r%d", cfg.Name, r), wData, en, init, cfg.Group)
		rf.Regs = append(rf.Regs, q)
	}
	return rf
}

// Read builds a read port: a mux tree over all registers.
func (rf *RegFile) Read(c *Ctx, addr Bus) Bus {
	return c.MuxTree(addr, rf.Regs)
}

// RegisterPlaceholder creates a bank of flip-flops whose D inputs are wired
// later with ConnectRegister/ConnectRegisterAlways. This enables feedback
// paths (state machines, register files read by the logic that computes
// their next value).
func (c *Ctx) RegisterPlaceholder(name string, width int, init uint64, group string) Bus {
	q := make(Bus, width)
	for i := range q {
		q[i] = c.B.FFPlaceholder(fmt.Sprintf("%s[%d]", name, i), init>>i&1 == 1, group)
	}
	return q
}

// ConnectRegister closes a placeholder register with a write-enable hold
// mux: D = MUX2(en, Q, d).
func (c *Ctx) ConnectRegister(q Bus, d Bus, en netlist.WireID) {
	if len(q) != len(d) {
		panic("synth: ConnectRegister width mismatch")
	}
	for i := range q {
		c.B.SetFFD(q[i], c.B.Gate(cell.MUX2, q[i], d[i], en))
	}
}

// ConnectRegisterAlways closes a placeholder register that loads every
// cycle: D = d.
func (c *Ctx) ConnectRegisterAlways(q Bus, d Bus) {
	if len(q) != len(d) {
		panic("synth: ConnectRegisterAlways width mismatch")
	}
	for i := range q {
		c.B.SetFFD(q[i], d[i])
	}
}

// RegFilePlaceholder creates the register-file storage with unconnected
// write logic, so read ports can feed the logic that computes the write
// data. Close it with ConnectWrite.
func (c *Ctx) RegFilePlaceholder(cfg RegFileConfig) *RegFile {
	rf := &RegFile{}
	for r := 0; r < cfg.Num; r++ {
		var init uint64
		if r < len(cfg.Inits) {
			init = cfg.Inits[r]
		}
		q := c.RegisterPlaceholder(fmt.Sprintf("%s.r%d", cfg.Name, r), cfg.Width, init, cfg.Group)
		rf.Regs = append(rf.Regs, q)
	}
	return rf
}

// ConnectWrite closes a placeholder register file: register r loads wData
// when wEn is high and wAddr decodes to r.
func (rf *RegFile) ConnectWrite(c *Ctx, wEn netlist.WireID, wAddr Bus, wData Bus) {
	dec := c.Decoder(wAddr)
	for r, q := range rf.Regs {
		if r >= len(dec) {
			panic("synth: ConnectWrite address too narrow")
		}
		en := c.B.Gate(cell.AND2, wEn, dec[r])
		c.ConnectRegister(q, wData, en)
	}
}
