package synth

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// evalComb builds a machine, drives the given input buses and settles the
// combinational logic once (no env, no clock).
func evalComb(m *sim.Machine, set func(m *sim.Machine)) {
	set(m)
	m.EvalComb()
}

func TestAdderExhaustive(t *testing.T) {
	b := netlist.NewBuilder("adder")
	c := New(b)
	a := c.InputBus("a", 4)
	bb := c.InputBus("b", 4)
	cin := c.B.Input("cin")
	res := c.Adder(a, bb, cin)
	c.OutputBus(res.Sum)
	b.MarkOutput(res.Cout)
	nl := b.MustNetlist()
	m := sim.New(nl)

	for av := uint64(0); av < 16; av++ {
		for bv := uint64(0); bv < 16; bv++ {
			for cv := uint64(0); cv < 2; cv++ {
				evalComb(m, func(m *sim.Machine) {
					m.WriteBus(a, av)
					m.WriteBus(bb, bv)
					m.SetValue(cin, cv == 1)
				})
				want := av + bv + cv
				got := m.ReadBus(res.Sum)
				if got != want&0xF {
					t.Fatalf("%d+%d+%d: sum=%d want %d", av, bv, cv, got, want&0xF)
				}
				if m.Value(res.Cout) != (want > 15) {
					t.Fatalf("%d+%d+%d: cout wrong", av, bv, cv)
				}
			}
		}
	}
}

func TestSubQuick(t *testing.T) {
	b := netlist.NewBuilder("sub")
	c := New(b)
	a := c.InputBus("a", 8)
	bb := c.InputBus("b", 8)
	res := c.Sub(a, bb)
	c.OutputBus(res.Sum)
	b.MarkOutput(res.Cout)
	nl := b.MustNetlist()
	m := sim.New(nl)

	f := func(av, bv uint8) bool {
		evalComb(m, func(m *sim.Machine) {
			m.WriteBus(a, uint64(av))
			m.WriteBus(bb, uint64(bv))
		})
		diff := uint8(av - bv)
		if uint8(m.ReadBus(res.Sum)) != diff {
			return false
		}
		// Cout = NOT borrow = 1 iff a >= b
		return m.Value(res.Cout) == (av >= bv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubBorrowChain(t *testing.T) {
	// 16-bit subtraction out of two 8-bit SubBorrow stages must match.
	b := netlist.NewBuilder("sbc")
	c := New(b)
	a := c.InputBus("a", 8)
	bb := c.InputBus("b", 8)
	bin := c.B.Input("bin")
	res := c.SubBorrow(a, bb, bin)
	c.OutputBus(res.Sum)
	b.MarkOutput(res.Cout)
	m := sim.New(b.MustNetlist())

	for av := 0; av < 256; av += 17 {
		for bv := 0; bv < 256; bv += 13 {
			for borrow := 0; borrow < 2; borrow++ {
				evalComb(m, func(m *sim.Machine) {
					m.WriteBus(a, uint64(av))
					m.WriteBus(bb, uint64(bv))
					m.SetValue(bin, borrow == 1)
				})
				want := uint8(av - bv - borrow)
				if uint8(m.ReadBus(res.Sum)) != want {
					t.Fatalf("%d-%d-%d: got %d want %d", av, bv, borrow, m.ReadBus(res.Sum), want)
				}
				noBorrowOut := av >= bv+borrow
				if m.Value(res.Cout) != noBorrowOut {
					t.Fatalf("%d-%d-%d: cout=%v want %v", av, bv, borrow, m.Value(res.Cout), noBorrowOut)
				}
			}
		}
	}
}

func TestBitwiseAndMux(t *testing.T) {
	b := netlist.NewBuilder("bitwise")
	c := New(b)
	a := c.InputBus("a", 8)
	bb := c.InputBus("b", 8)
	sel := c.B.Input("sel")
	and := c.And(a, bb)
	or := c.Or(a, bb)
	xor := c.Xor(a, bb)
	not := c.Not(a)
	mux := c.Mux2(sel, a, bb)
	for _, bus := range []Bus{and, or, xor, not, mux} {
		c.OutputBus(bus)
	}
	m := sim.New(b.MustNetlist())

	f := func(av, bv uint8, s bool) bool {
		evalComb(m, func(m *sim.Machine) {
			m.WriteBus(a, uint64(av))
			m.WriteBus(bb, uint64(bv))
			m.SetValue(sel, s)
		})
		ok := uint8(m.ReadBus(and)) == av&bv &&
			uint8(m.ReadBus(or)) == av|bv &&
			uint8(m.ReadBus(xor)) == av^bv &&
			uint8(m.ReadBus(not)) == ^av
		want := av
		if s {
			want = bv
		}
		return ok && uint8(m.ReadBus(mux)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMuxTreeAndDecoder(t *testing.T) {
	b := netlist.NewBuilder("muxtree")
	c := New(b)
	sel := c.InputBus("sel", 3)
	var opts []Bus
	for i := 0; i < 8; i++ {
		opts = append(opts, c.ConstBus(uint64(i*3+1), 8))
	}
	out := c.MuxTree(sel, opts)
	dec := c.Decoder(sel)
	c.OutputBus(out)
	c.OutputBus(dec)
	m := sim.New(b.MustNetlist())

	for s := uint64(0); s < 8; s++ {
		evalComb(m, func(m *sim.Machine) { m.WriteBus(sel, s) })
		if got := m.ReadBus(out); got != s*3+1 {
			t.Errorf("muxtree sel=%d: got %d want %d", s, got, s*3+1)
		}
		if got := m.ReadBus(dec); got != 1<<s {
			t.Errorf("decoder sel=%d: got %b", s, got)
		}
	}
}

func TestMuxTreeNonPowerOfTwo(t *testing.T) {
	b := netlist.NewBuilder("muxtree5")
	c := New(b)
	sel := c.InputBus("sel", 3)
	var opts []Bus
	for i := 0; i < 5; i++ {
		opts = append(opts, c.ConstBus(uint64(10+i), 8))
	}
	out := c.MuxTree(sel, opts)
	c.OutputBus(out)
	m := sim.New(b.MustNetlist())
	for s := uint64(0); s < 5; s++ {
		evalComb(m, func(m *sim.Machine) { m.WriteBus(sel, s) })
		if got := m.ReadBus(out); got != 10+s {
			t.Errorf("sel=%d: got %d", s, got)
		}
	}
}

func TestComparatorsAndReductions(t *testing.T) {
	b := netlist.NewBuilder("cmp")
	c := New(b)
	a := c.InputBus("a", 8)
	bb := c.InputBus("b", 8)
	eq := c.Equal(a, bb)
	eqc := c.EqualConst(a, 0x5A)
	isz := c.IsZero(a)
	rAnd := c.ReduceAnd(a)
	rOr := c.ReduceOr(a)
	for _, w := range []netlist.WireID{eq, eqc, isz, rAnd, rOr} {
		b.MarkOutput(w)
	}
	m := sim.New(b.MustNetlist())

	f := func(av, bv uint8) bool {
		evalComb(m, func(m *sim.Machine) {
			m.WriteBus(a, uint64(av))
			m.WriteBus(bb, uint64(bv))
		})
		return m.Value(eq) == (av == bv) &&
			m.Value(eqc) == (av == 0x5A) &&
			m.Value(isz) == (av == 0) &&
			m.Value(rAnd) == (av == 0xFF) &&
			m.Value(rOr) == (av != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShifts(t *testing.T) {
	b := netlist.NewBuilder("shift")
	c := New(b)
	a := c.InputBus("a", 8)
	in := c.B.Input("in")
	sr, srOut := c.ShiftRight1(a, in)
	sl, slOut := c.ShiftLeft1(a, in)
	c.OutputBus(sr)
	c.OutputBus(sl)
	b.MarkOutput(srOut)
	b.MarkOutput(slOut)
	m := sim.New(b.MustNetlist())

	f := func(av uint8, iv bool) bool {
		evalComb(m, func(m *sim.Machine) {
			m.WriteBus(a, uint64(av))
			m.SetValue(in, iv)
		})
		wantSR := av >> 1
		if iv {
			wantSR |= 0x80
		}
		wantSL := av << 1
		if iv {
			wantSL |= 1
		}
		return uint8(m.ReadBus(sr)) == wantSR && m.Value(srOut) == (av&1 == 1) &&
			uint8(m.ReadBus(sl)) == wantSL && m.Value(slOut) == (av&0x80 != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtends(t *testing.T) {
	b := netlist.NewBuilder("ext")
	c := New(b)
	a := c.InputBus("a", 4)
	ze := c.ZeroExtend(a, 8)
	se := c.SignExtend(a, 8)
	tr := c.ZeroExtend(a, 2)
	c.OutputBus(ze)
	c.OutputBus(se)
	c.OutputBus(tr)
	m := sim.New(b.MustNetlist())
	for av := uint64(0); av < 16; av++ {
		evalComb(m, func(m *sim.Machine) { m.WriteBus(a, av) })
		if got := m.ReadBus(ze); got != av {
			t.Errorf("zext(%d) = %d", av, got)
		}
		want := av
		if av&8 != 0 {
			want |= 0xF0
		}
		if got := m.ReadBus(se); got != want {
			t.Errorf("sext(%d) = %d want %d", av, m.ReadBus(se), want)
		}
		if got := m.ReadBus(tr); got != av&3 {
			t.Errorf("trunc(%d) = %d", av, got)
		}
	}
}

func TestRegisterWithEnable(t *testing.T) {
	b := netlist.NewBuilder("reg")
	c := New(b)
	d := c.InputBus("d", 8)
	en := c.B.Input("en")
	q := c.Register("r", d, en, 0xA5, "state")
	c.OutputBus(q)
	m := sim.New(b.MustNetlist())

	if got := m.ReadBus(q); got != 0xA5 {
		t.Fatalf("init = %#x", got)
	}
	// en=0 holds
	m.WriteBus(d, 0x3C)
	m.SetValue(en, false)
	m.Step(sim.NopEnv)
	if got := m.ReadBus(q); got != 0xA5 {
		t.Fatalf("hold failed: %#x", got)
	}
	// en=1 loads
	m.SetValue(en, true)
	m.Step(sim.NopEnv)
	if got := m.ReadBus(q); got != 0x3C {
		t.Fatalf("load failed: %#x", got)
	}
}

func TestRegFile(t *testing.T) {
	b := netlist.NewBuilder("rf")
	c := New(b)
	wEn := c.B.Input("we")
	wAddr := c.InputBus("waddr", 3)
	wData := c.InputBus("wdata", 8)
	rAddr1 := c.InputBus("raddr1", 3)
	rAddr2 := c.InputBus("raddr2", 3)
	rf := c.BuildRegFile(RegFileConfig{Name: "rf", Num: 8, Width: 8, Group: "regfile"}, wEn, wAddr, wData)
	r1 := rf.Read(c, rAddr1)
	r2 := rf.Read(c, rAddr2)
	c.OutputBus(r1)
	c.OutputBus(r2)
	nl := b.MustNetlist()
	m := sim.New(nl)

	// All regfile FFs must be tagged.
	n := 0
	for _, ff := range nl.FFs {
		if ff.Group == "regfile" {
			n++
		}
	}
	if n != 64 {
		t.Fatalf("regfile FF count = %d, want 64", n)
	}

	write := func(addr, val uint64) {
		m.SetValue(wEn, true)
		m.WriteBus(wAddr, addr)
		m.WriteBus(wData, val)
		m.Step(sim.NopEnv)
		m.SetValue(wEn, false)
	}
	read := func(port Bus, addrBus Bus, addr uint64) uint64 {
		m.WriteBus(addrBus, addr)
		m.EvalComb()
		return m.ReadBus(port)
	}
	for r := uint64(0); r < 8; r++ {
		write(r, r*7+1)
	}
	for r := uint64(0); r < 8; r++ {
		if got := read(r1, rAddr1, r); got != r*7+1 {
			t.Errorf("rf[%d] port1 = %d want %d", r, got, r*7+1)
		}
		if got := read(r2, rAddr2, r); got != r*7+1 {
			t.Errorf("rf[%d] port2 = %d", r, got)
		}
	}
	// Writing with we=0 must not change anything.
	m.WriteBus(wAddr, 3)
	m.WriteBus(wData, 0xFF)
	m.SetValue(wEn, false)
	m.Step(sim.NopEnv)
	if got := read(r1, rAddr1, 3); got != 3*7+1 {
		t.Errorf("write with we=0 changed rf[3] to %d", got)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	b := netlist.NewBuilder("panic")
	c := New(b)
	a := c.InputBus("a", 4)
	bb := c.InputBus("b", 5)
	for name, fn := range map[string]func(){
		"and":   func() { c.And(a, bb) },
		"adder": func() { c.Adder(a, bb, c.B.Const(false)) },
		"mux":   func() { c.Mux2(c.B.Const(false), a, bb) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConstBus(t *testing.T) {
	b := netlist.NewBuilder("const")
	c := New(b)
	k := c.ConstBus(0xC3, 8)
	c.OutputBus(k)
	m := sim.New(b.MustNetlist())
	m.EvalComb()
	if got := m.ReadBus(k); got != 0xC3 {
		t.Errorf("const bus = %#x", got)
	}
}

func ExampleCtx_Adder() {
	b := netlist.NewBuilder("example")
	c := New(b)
	a := c.InputBus("a", 8)
	bb := c.InputBus("b", 8)
	res := c.Adder(a, bb, c.B.Const(false))
	c.OutputBus(res.Sum)
	m := sim.New(b.MustNetlist())
	m.WriteBus(a, 100)
	m.WriteBus(bb, 23)
	m.EvalComb()
	fmt.Println(m.ReadBus(res.Sum))
	// Output: 123
}
