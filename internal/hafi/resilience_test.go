package hafi

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu/avr"
	"repro/internal/journal"
)

// --- configuration validation -------------------------------------------

func TestCampaignConfigValidation(t *testing.T) {
	c, _, g, r := goldenAVR(t)
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 29)[:2]
	for _, tf := range []float64{math.NaN(), -1, -0.001, 0.5, 0.999} {
		if _, err := ctl.RunCampaign(CampaignConfig{Points: points, TimeoutFactor: tf}); err == nil {
			t.Errorf("TimeoutFactor %v accepted", tf)
		}
	}
	for _, tf := range []float64{0, 1, 2, 3.5} {
		if _, err := ctl.RunCampaign(CampaignConfig{Points: points, TimeoutFactor: tf}); err != nil {
			t.Errorf("TimeoutFactor %v rejected: %v", tf, err)
		}
	}
}

// --- cancellation --------------------------------------------------------

// cancelAfter builds a campaign context that is cancelled once n points
// have been classified — the deterministic stand-in for SIGINT that the
// crash-resume tests and cmd/campaign -interruptafter share.
func cancelAfter(t *testing.T, n int) (context.Context, func(int)) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	return ctx, func(done int) {
		if done >= n {
			cancel()
		}
	}
}

func checkConsistent(t *testing.T, res *CampaignResult) {
	t.Helper()
	if res.Total != res.Skipped+res.Executed {
		t.Fatalf("inconsistent partial result: %+v", res)
	}
	sum := 0
	for _, n := range res.ByOutcome {
		sum += n
	}
	if sum != res.Executed {
		t.Fatalf("outcomes %d != executed %d", sum, res.Executed)
	}
}

func TestCampaignCancelledBeforeStart(t *testing.T) {
	c, _, g, r := goldenAVR(t)
	ctl := NewController(r, g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ctl.RunCampaign(CampaignConfig{
		Points:  SampledFaultList(c.NL, g.HaltCycle, 17),
		Context: ctx,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted || res.Total != 0 {
		t.Fatalf("pre-cancelled campaign ran: %+v", res)
	}
}

func TestCampaignGracefulDrain(t *testing.T) {
	c, _, g, r := goldenAVR(t)
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 17)
	if len(points) < 6 {
		t.Fatalf("fault list too small (%d)", len(points))
	}
	ctx, prog := cancelAfter(t, 4)
	res, err := ctl.RunCampaign(CampaignConfig{Points: points, Context: ctx, Progress: prog})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled campaign not marked interrupted")
	}
	if res.Total < 4 || res.Total >= len(points) {
		t.Fatalf("drain classified %d of %d points, want partial ≥4", res.Total, len(points))
	}
	checkConsistent(t, res)
}

// --- crash-resume equivalence -------------------------------------------

// runInterrupted runs the campaign against a fresh journal, cancelling
// after cut points, and returns the journal path plus the partial result.
func runInterrupted(t *testing.T, ctl *Controller, cfg CampaignConfig, run64 Run64, cut int) (string, *CampaignResult) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.journal")
	jw, err := journal.Create(path, ctl.JournalHeader(cfg.Points))
	if err != nil {
		t.Fatal(err)
	}
	defer jw.Close()
	ctx, prog := cancelAfter(t, cut)
	cfg.Journal, cfg.Context, cfg.Progress = jw, ctx, prog
	var res *CampaignResult
	if run64 != nil {
		res, err = ctl.RunCampaignBatched(cfg, run64)
	} else {
		res, err = ctl.RunCampaign(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatalf("cut=%d: campaign finished before the cancellation fired (%d points) — raise the fault-list size", cut, res.Total)
	}
	checkConsistent(t, res)
	return path, res
}

// dropConvergence copies a result with the convergence early-exit
// statistics zeroed. Converged/CyclesSaved describe how a run executed,
// not what it concluded: a resumed campaign replays journaled points
// without re-executing them, so it legitimately reports fewer early exits
// than the uninterrupted baseline while classifying identically.
func dropConvergence(r *CampaignResult) *CampaignResult {
	cp := *r
	cp.Converged, cp.CyclesSaved = 0, 0
	return &cp
}

// resumeAndFinish recovers the journal and completes the campaign.
func resumeAndFinish(t *testing.T, ctl *Controller, cfg CampaignConfig, run64 Run64, path string) *CampaignResult {
	t.Helper()
	jw, rec, err := journal.Resume(path, ctl.JournalHeader(cfg.Points))
	if err != nil {
		t.Fatal(err)
	}
	defer jw.Close()
	cfg.Journal, cfg.Resume = jw, rec
	var res *CampaignResult
	if run64 != nil {
		res, err = ctl.RunCampaignBatched(cfg, run64)
	} else {
		res, err = ctl.RunCampaign(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkResumeEquivalence(t *testing.T, ctl *Controller, cfg CampaignConfig, run64 Run64, cuts []int) {
	t.Helper()
	var baseline *CampaignResult
	var err error
	if run64 != nil {
		baseline, err = ctl.RunCampaignBatched(cfg, run64)
	} else {
		baseline, err = ctl.RunCampaign(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			path, partial := runInterrupted(t, ctl, cfg, run64, cut)

			// The journal must cover exactly the classified points: a
			// record for an experiment that never ran would fabricate
			// results on resume.
			rec, err := journal.Recover(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(rec.Records) != partial.Total {
				t.Fatalf("journal has %d records, partial result classified %d", len(rec.Records), partial.Total)
			}

			res := resumeAndFinish(t, ctl, cfg, run64, path)
			if !reflect.DeepEqual(dropConvergence(res), dropConvergence(baseline)) {
				t.Fatalf("resumed result diverges from uninterrupted run:\n  resumed:  %+v\n  baseline: %+v", res, baseline)
			}

			// After completion the journal holds every point once.
			fin, err := journal.Recover(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(fin.Records) != len(cfg.Points) || fin.Torn || fin.Corrupt {
				t.Fatalf("final journal: %d records (want %d), torn=%v corrupt=%v",
					len(fin.Records), len(cfg.Points), fin.Torn, fin.Corrupt)
			}
		})
	}
}

func TestCrashResumeSequential(t *testing.T) {
	c, _, g, r := goldenAVR(t)
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 13)
	checkResumeEquivalence(t, ctl, CampaignConfig{Points: points}, nil, []int{1, 5, len(points) / 2})
}

func TestCrashResumeSequentialPruned(t *testing.T) {
	c, _, g, r := goldenAVR(t)
	set := core.Search(c.NL, c.NL.FFQWires(), core.DefaultSearchParams()).Set
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 13)
	checkResumeEquivalence(t, ctl,
		CampaignConfig{Points: points, MATESet: set, ValidateSkipped: true},
		nil, []int{3, len(points) / 2})
}

func TestCrashResumeParallel(t *testing.T) {
	c := avr.NewCore()
	prog := avr.MustAssemble(smallAVRProgram)
	factory := func() Run { return NewAVRRun(avr.NewCore(), prog) }
	g, err := RecordGolden(factory(), 10000)
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewControllerPool(factory, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 13)
	checkResumeEquivalence(t, ctl,
		CampaignConfig{Points: points, Workers: 3},
		nil, []int{2, len(points) / 2})
}

func TestCrashResumeBatched(t *testing.T) {
	c, prog, g, r := goldenAVR(t)
	run64, err := NewAVRRun64(c, prog)
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 13)
	checkResumeEquivalence(t, ctl, CampaignConfig{Points: points}, run64, []int{1, len(points) / 2})
}

func TestCrashResumeBatchedPruned(t *testing.T) {
	c, prog, g, r := goldenAVR(t)
	run64, err := NewAVRRun64(c, prog)
	if err != nil {
		t.Fatal(err)
	}
	set := core.Search(c.NL, c.NL.FFQWires(), core.DefaultSearchParams()).Set
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 13)
	checkResumeEquivalence(t, ctl,
		CampaignConfig{Points: points, MATESet: set, ValidateSkipped: true},
		run64, []int{3, len(points) / 2})
}

// TestResumeCompletedCampaign resumes from a journal that already holds
// every record: nothing re-executes and the result is reproduced exactly.
func TestResumeCompletedCampaign(t *testing.T) {
	c, _, g, r := goldenAVR(t)
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 13)
	path := filepath.Join(t.TempDir(), "done.journal")
	jw, err := journal.Create(path, ctl.JournalHeader(points))
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := ctl.RunCampaign(CampaignConfig{Points: points, Journal: jw})
	if err != nil {
		t.Fatal(err)
	}
	jw.Close()

	executed := 0
	res := resumeAndFinish(t, ctl, CampaignConfig{
		Points:   points,
		Progress: func(int) { executed++ },
	}, nil, path)
	if executed != 0 {
		t.Fatalf("resume of a complete journal re-executed %d points", executed)
	}
	if !reflect.DeepEqual(dropConvergence(res), dropConvergence(baseline)) {
		t.Fatalf("replayed result diverges:\n  replayed: %+v\n  baseline: %+v", res, baseline)
	}
}

// TestResumeForeignJournalRejected: a journal recorded for a different
// fault list must not be merged into this campaign.
func TestResumeForeignJournalRejected(t *testing.T) {
	c, _, g, r := goldenAVR(t)
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 13)
	path := filepath.Join(t.TempDir(), "foreign.journal")
	jw, err := journal.Create(path, ctl.JournalHeader(points))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.RunCampaign(CampaignConfig{Points: points[:4], Journal: jw}); err != nil {
		t.Fatal(err)
	}
	jw.Close()
	rec, err := journal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.RunCampaign(CampaignConfig{Points: points[1:], Resume: rec}); err == nil {
		t.Fatal("foreign journal accepted as resume state")
	}
}

// --- panic isolation -----------------------------------------------------

// panicRun wraps a device instance and panics exactly once: the trip arms
// when the campaign restores the checkpoint of tripCycle and fires on the
// next Step. With a fault list of unique injection cycles this poisons
// exactly one experiment.
type panicRun struct {
	Run
	golden    *Golden
	tripCycle int
	tripped   *atomic.Bool
	armed     bool
}

func (p *panicRun) Restore(cp Checkpoint) {
	p.Run.Restore(cp)
	p.armed = !p.tripped.Load() && cp == p.golden.Checkpoints[p.tripCycle]
}

func (p *panicRun) Step() {
	if p.armed && p.tripped.CompareAndSwap(false, true) {
		p.armed = false
		panic("injected harness fault")
	}
	p.Run.Step()
}

// uniqueCyclePoints builds a fault list with one point per injection
// cycle so a cycle-keyed trip poisons exactly one experiment.
func uniqueCyclePoints(g *Golden, n, ffs int) []FaultPoint {
	if n > g.HaltCycle {
		n = g.HaltCycle
	}
	points := make([]FaultPoint, n)
	for i := range points {
		points[i] = FaultPoint{FF: i % ffs, Cycle: i}
	}
	return points
}

// journalByIndex runs the campaign with a journal and returns the
// per-point records (the ground truth for comparing verdicts).
func journalByIndex(t *testing.T, ctl *Controller, cfg CampaignConfig, run64 Run64) (map[uint64]journal.Record, *CampaignResult) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "verdicts.journal")
	jw, err := journal.Create(path, ctl.JournalHeader(cfg.Points))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = jw
	var res *CampaignResult
	if run64 != nil {
		res, err = ctl.RunCampaignBatched(cfg, run64)
	} else {
		res, err = ctl.RunCampaign(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	jw.Close()
	rec, err := journal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	return rec.ByIndex, res
}

func TestPanicIsolationSequential(t *testing.T) {
	c, prog, g, r := goldenAVR(t)
	points := uniqueCyclePoints(g, 12, len(c.NL.FFs))
	tripIdx := 7
	tripCycle := points[tripIdx].Cycle

	baseline, _ := journalByIndex(t, NewController(r, g), CampaignConfig{Points: points}, nil)

	pr := &panicRun{
		Run:       NewAVRRun(avr.NewCore(), prog),
		golden:    g,
		tripCycle: tripCycle,
		tripped:   new(atomic.Bool),
	}
	got, res := journalByIndex(t, NewController(pr, g), CampaignConfig{Points: points}, nil)

	if res.ByOutcome[OutcomeHarnessError] != 1 {
		t.Fatalf("harness errors = %d, want exactly 1 (%+v)", res.ByOutcome[OutcomeHarnessError], res)
	}
	if res.Total != len(points) || res.Executed != len(points) {
		t.Fatalf("campaign did not complete past the panic: %+v", res)
	}
	for idx, rec := range got {
		want := baseline[idx]
		if idx == uint64(tripIdx) {
			if Outcome(rec.Outcome) != OutcomeHarnessError {
				t.Fatalf("poisoned point %d classified %v, want harness-error", idx, Outcome(rec.Outcome))
			}
			continue
		}
		if rec != want {
			t.Fatalf("point %d disturbed by neighbouring panic: got %+v, want %+v", idx, rec, want)
		}
	}
}

func TestPanicIsolationParallel(t *testing.T) {
	c := avr.NewCore()
	prog := avr.MustAssemble(smallAVRProgram)
	g, err := RecordGolden(NewAVRRun(avr.NewCore(), prog), 10000)
	if err != nil {
		t.Fatal(err)
	}
	points := uniqueCyclePoints(g, 12, len(c.NL.FFs))
	tripped := new(atomic.Bool)
	factory := func() Run {
		return &panicRun{
			Run:       NewAVRRun(avr.NewCore(), prog),
			golden:    g,
			tripCycle: points[5].Cycle,
			tripped:   tripped,
		}
	}
	ctl := NewControllerPool(factory, g)
	res, err := ctl.RunCampaign(CampaignConfig{Points: points, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.ByOutcome[OutcomeHarnessError] != 1 {
		t.Fatalf("harness errors = %d, want 1 (%+v)", res.ByOutcome[OutcomeHarnessError], res)
	}
	if res.Total != len(points) || res.Executed != len(points) {
		t.Fatalf("other shards did not survive the panic: %+v", res)
	}
	checkConsistent(t, res)
}

// panicRun64 panics whenever the campaign injects into tripFF: the whole
// batch aborts, and only the lane-by-lane retry pins the harness error on
// the offending point.
type panicRun64 struct {
	Run64
	tripFF int
}

func (p *panicRun64) FlipLane(ff, lane int) {
	if ff == p.tripFF {
		panic("injected lane fault")
	}
	p.Run64.FlipLane(ff, lane)
}

func TestPanicIsolationBatched(t *testing.T) {
	c, prog, g, r := goldenAVR(t)
	// One batch: distinct FFs, shared injection cycle.
	nffs := len(c.NL.FFs)
	if nffs > 10 {
		nffs = 10
	}
	points := make([]FaultPoint, nffs)
	for i := range points {
		points[i] = FaultPoint{FF: i, Cycle: 3}
	}
	tripFF := nffs / 2

	clean64, err := NewAVRRun64(c, prog)
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(r, g)
	baseline, _ := journalByIndex(t, ctl, CampaignConfig{Points: points}, clean64)

	faulty64, err := NewAVRRun64(avr.NewCore(), prog)
	if err != nil {
		t.Fatal(err)
	}
	got, res := journalByIndex(t, ctl, CampaignConfig{Points: points},
		&panicRun64{Run64: faulty64, tripFF: tripFF})

	if res.ByOutcome[OutcomeHarnessError] != 1 {
		t.Fatalf("harness errors = %d, want exactly 1 (%+v)", res.ByOutcome[OutcomeHarnessError], res)
	}
	for idx, rec := range got {
		want := baseline[idx]
		if rec.FF == uint32(tripFF) {
			if Outcome(rec.Outcome) != OutcomeHarnessError {
				t.Fatalf("poisoned lane classified %v, want harness-error", Outcome(rec.Outcome))
			}
			continue
		}
		if rec != want {
			t.Fatalf("lane %d disturbed by batch-mate panic: got %+v, want %+v", idx, rec, want)
		}
	}
}
