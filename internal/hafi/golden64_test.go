package hafi

import (
	"testing"

	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
)

// TestRecordGoldenWMatchesScalar pins the contract RecordGoldenW claims:
// the Golden recorded on lane 0 of a wide device is identical, field for
// field, to the scalar recorder's — checkpoints (flip-flop state, inputs,
// data memory, digest, cycle), memory digests, trace rows, halt cycle and
// signature. Width 1 and width 4 both must match: lane 0's evolution is
// width-independent.
func TestRecordGoldenWMatchesScalar(t *testing.T) {
	const msp430Program = `
	    movi r1, 4
	    movi r2, 0
	loop:
	    add r1, r2
	    addi r1, -1
	    jne loop
	    out r2
	    halt
	`
	for _, lanes := range []int{64, 256} {
		t.Run("avr", func(t *testing.T) {
			c := avr.NewCore()
			prog := avr.MustAssemble(smallAVRProgram)
			want, err := RecordGolden(NewAVRRun(c, prog), 10000)
			if err != nil {
				t.Fatal(err)
			}
			rw, err := NewAVRRunW(c, prog, lanes)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RecordGoldenW(rw, 10000)
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, want, got, func(cyc int) {
				w := want.Checkpoints[cyc].(*avrCheckpoint)
				g := got.Checkpoints[cyc].(*avrCheckpoint)
				if w.dmem != g.dmem || w.digest != g.digest || w.cycle != g.cycle {
					t.Fatalf("cycle %d: checkpoint mem/digest/cycle differ", cyc)
				}
				compareBools(t, cyc, w.ffs, g.ffs, w.inputs, g.inputs)
			})
		})
		t.Run("msp430", func(t *testing.T) {
			c := msp430.NewCore()
			prog := msp430.MustAssemble(msp430Program)
			want, err := RecordGolden(NewMSP430Run(c, prog), 10000)
			if err != nil {
				t.Fatal(err)
			}
			rw, err := NewMSP430RunW(c, prog, lanes)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RecordGoldenW(rw, 10000)
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, want, got, func(cyc int) {
				w := want.Checkpoints[cyc].(*msp430Checkpoint)
				g := got.Checkpoints[cyc].(*msp430Checkpoint)
				if w.dmem != g.dmem || w.digest != g.digest || w.cycle != g.cycle {
					t.Fatalf("cycle %d: checkpoint mem/digest/cycle differ", cyc)
				}
				compareBools(t, cyc, w.ffs, g.ffs, w.inputs, g.inputs)
			})
		})
	}
}

func compareGolden(t *testing.T, want, got *Golden, checkpoint func(cyc int)) {
	t.Helper()
	if got.HaltCycle != want.HaltCycle {
		t.Fatalf("halt cycle: scalar %d, wide %d", want.HaltCycle, got.HaltCycle)
	}
	if got.Signature != want.Signature {
		t.Fatalf("signature: scalar %#x, wide %#x", want.Signature, got.Signature)
	}
	if len(got.Checkpoints) != len(want.Checkpoints) || len(got.MemDigests) != len(want.MemDigests) {
		t.Fatalf("lengths: scalar %d/%d, wide %d/%d",
			len(want.Checkpoints), len(want.MemDigests), len(got.Checkpoints), len(got.MemDigests))
	}
	if got.Trace.NumCycles() != want.Trace.NumCycles() {
		t.Fatalf("trace cycles: scalar %d, wide %d", want.Trace.NumCycles(), got.Trace.NumCycles())
	}
	for cyc := 0; cyc < want.HaltCycle; cyc++ {
		if got.MemDigests[cyc] != want.MemDigests[cyc] {
			t.Fatalf("cycle %d: digest scalar %#x, wide %#x", cyc, want.MemDigests[cyc], got.MemDigests[cyc])
		}
		wr, gr := want.Trace.Row(cyc), got.Trace.Row(cyc)
		for i := range wr {
			if wr[i] != gr[i] {
				t.Fatalf("cycle %d: trace word %d scalar %#x, wide %#x", cyc, i, wr[i], gr[i])
			}
		}
		checkpoint(cyc)
	}
}

func compareBools(t *testing.T, cyc int, wantFFs, gotFFs, wantIns, gotIns []bool) {
	t.Helper()
	for i := range wantFFs {
		if wantFFs[i] != gotFFs[i] {
			t.Fatalf("cycle %d: FF %d differs", cyc, i)
		}
	}
	for i := range wantIns {
		if wantIns[i] != gotIns[i] {
			t.Fatalf("cycle %d: input %d differs", cyc, i)
		}
	}
}
