package hafi

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/synth"
)

// buildConvergenceCircuit synthesises the smallest circuit whose
// convergence behaviour is fully controllable from the test:
//
//   - `a` is a self-healing flip-flop (D = const 0): a flip survives
//     exactly one cycle, then the state re-converges with the golden run.
//   - `b` is a sticky trap (D = b | (a & sel)) where sel pulses exactly
//     when the cycle counter equals selAt: a flip of `a` changes the final
//     result if and only if `a` is still high on cycle selAt.
//   - a 6-bit counter raises the sticky halt flag after cycle 40.
//
// Golden behaviour: a=0 and b=0 forever, halt at the start of cycle 41.
func buildConvergenceCircuit(t testing.TB, selAt uint64) (*netlist.Netlist, *NetlistRun, int) {
	t.Helper()
	b := netlist.NewBuilder("conv")
	c := synth.New(b)

	cnt := c.RegisterPlaceholder("cnt", 6, 0, "ctrl")
	c.ConnectRegisterAlways(cnt, c.Inc(cnt).Sum)
	sel := c.EqualConst(cnt, selAt)

	aq := b.FF("a", b.Const(false), false, "tgt")
	bq := c.RegisterPlaceholder("b", 1, 0, "trap")
	c.ConnectRegisterAlways(bq, synth.Bus{b.Gate(cell.OR2, bq[0], b.Gate(cell.AND2, aq, sel))})
	b.MarkOutput(bq[0])

	haltNow := c.EqualConst(cnt, 40)
	hlt := c.RegisterPlaceholder("halt", 1, 0, "ctrl")
	c.ConnectRegisterAlways(hlt, synth.Bus{b.Gate(cell.OR2, hlt[0], haltNow)})
	b.MarkOutput(hlt[0])

	nl := b.MustNetlist()
	run := NewNetlistRun(nl, hlt[0], nil)
	ffA := nl.FFByQ(aq)
	if ffA < 0 {
		t.Fatal("target FF not found")
	}
	return nl, run, ffA
}

func goldenConvergence(t testing.TB, selAt uint64) (*Controller, *NetlistRun, int, *Golden) {
	t.Helper()
	_, run, ffA := buildConvergenceCircuit(t, selAt)
	g, err := RecordGolden(run, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return NewController(run, g), run, ffA, g
}

// TestConvergenceEarlyExitBenign: a transient flip of the self-healing FF
// re-converges one cycle later, so the early-exit must retire it benign
// with the exact number of skipped cycles; with the exit disabled the same
// experiment runs to halt (same verdict, zero credit).
func TestConvergenceEarlyExitBenign(t *testing.T) {
	ctl, run, ffA, g := goldenConvergence(t, 10)
	timeout := 2 * g.HaltCycle

	p := FaultPoint{FF: ffA, Cycle: 5}
	out, saved := ctl.execute(run, p, timeout, true)
	if out != OutcomeBenign {
		t.Fatalf("transient flip: outcome %s, want benign", out)
	}
	if want := g.HaltCycle - 6; saved != want {
		t.Fatalf("transient flip: saved %d cycles, want %d (healed at start of cycle 6)", saved, want)
	}

	out, saved = ctl.execute(run, p, timeout, false)
	if out != OutcomeBenign || saved != 0 {
		t.Fatalf("full run: outcome %s saved %d, want benign with no credit", out, saved)
	}

	// The same flip landing on the sel pulse sets the trap: never benign,
	// never early-exited (b stays diverged from golden forever).
	out, saved = ctl.execute(run, FaultPoint{FF: ffA, Cycle: 10}, timeout, true)
	if out != OutcomeSDC || saved != 0 {
		t.Fatalf("flip on pulse cycle: outcome %s saved %d, want SDC with no credit", out, saved)
	}
}

// TestConvergenceHoldWindowNoEarlyExit: a multi-cycle upset whose hold
// window covers the sel pulse. Between re-flips the FF state transiently
// equals golden (a's D is const 0), so an implementation that checks
// convergence before the re-flip — or anywhere inside the hold window —
// would wrongly retire the experiment benign. The pulse at cycle 10 lands
// inside the [8,12) window and springs the trap: the verdict must be SDC.
func TestConvergenceHoldWindowNoEarlyExit(t *testing.T) {
	ctl, run, ffA, g := goldenConvergence(t, 10)
	timeout := 2 * g.HaltCycle

	out, saved := ctl.execute(run, FaultPoint{FF: ffA, Cycle: 8, Duration: 4}, timeout, true)
	if out != OutcomeSDC {
		t.Fatalf("held upset over pulse: outcome %s, want SDC (early-exit fired inside the hold window?)", out)
	}
	if saved != 0 {
		t.Fatalf("held upset over pulse: saved %d, want 0", saved)
	}

	// Control: the identical window with the pulse moved outside it is
	// harmless, and the exit fires on the first cycle AFTER the hold ends.
	ctl2, run2, ffA2, g2 := goldenConvergence(t, 20)
	out, saved = ctl2.execute(run2, FaultPoint{FF: ffA2, Cycle: 8, Duration: 4}, timeout, true)
	if out != OutcomeBenign {
		t.Fatalf("held upset, pulse outside window: outcome %s, want benign", out)
	}
	if want := g2.HaltCycle - 12; saved != want {
		t.Fatalf("held upset, pulse outside window: saved %d, want %d (converged at hold end)", saved, want)
	}
}

// TestConvergenceHaltBoundary probes the end of the golden reference: a
// flip on the final pre-halt cycle has no post-hold reference row left, so
// it must classify via the halt signature (no credit); a flip one cycle
// earlier converges on the very last recorded cycle and saves exactly 1.
func TestConvergenceHaltBoundary(t *testing.T) {
	ctl, run, ffA, g := goldenConvergence(t, 10)
	timeout := 2 * g.HaltCycle

	out, saved := ctl.execute(run, FaultPoint{FF: ffA, Cycle: g.HaltCycle - 1}, timeout, true)
	if out != OutcomeBenign || saved != 0 {
		t.Fatalf("flip on last cycle: outcome %s saved %d, want benign via halt signature with no credit", out, saved)
	}

	out, saved = ctl.execute(run, FaultPoint{FF: ffA, Cycle: g.HaltCycle - 2}, timeout, true)
	if out != OutcomeBenign || saved != 1 {
		t.Fatalf("flip on second-to-last cycle: outcome %s saved %d, want benign with exactly 1 cycle saved", out, saved)
	}
}

// memDivergedRun wraps a NetlistRun and reports a diverged memory digest
// from the flip cycle on, emulating a fault whose architectural FF state
// re-converges while its external-memory write history does not.
type memDivergedRun struct {
	*NetlistRun
	divergeFrom int
}

func (r *memDivergedRun) MemDigest() uint64 {
	if r.Machine().Cycle > r.divergeFrom {
		return ^sim.WriteDigestSeed
	}
	return r.NetlistRun.MemDigest()
}

// TestConvergenceMemoryDivergenceBlocksExit: FF convergence alone must not
// retire an experiment — if the memory write digest differs from golden,
// the run has to execute to completion even though every flip-flop already
// matches the reference.
func TestConvergenceMemoryDivergenceBlocksExit(t *testing.T) {
	ctl, run, ffA, g := goldenConvergence(t, 10)
	timeout := 2 * g.HaltCycle
	p := FaultPoint{FF: ffA, Cycle: 5}

	// Sanity: with a clean digest this exact point early-exits.
	if _, saved := ctl.execute(run, p, timeout, true); saved == 0 {
		t.Fatal("clean-digest control did not early-exit; memory test would prove nothing")
	}

	diverged := &memDivergedRun{NetlistRun: run, divergeFrom: p.Cycle}
	out, saved := ctl.execute(diverged, p, timeout, true)
	if out != OutcomeBenign {
		t.Fatalf("memory-diverged run: outcome %s, want benign (netlist signature ignores memory)", out)
	}
	if saved != 0 {
		t.Fatalf("memory-diverged run retired %d cycles early despite digest mismatch", saved)
	}
}

// TestConvergenceCampaignAccounting: at the campaign level, the early-exit
// changes Converged/CyclesSaved and nothing else — the full fault space of
// the convergence circuit classifies identically with the exit disabled.
func TestConvergenceCampaignAccounting(t *testing.T) {
	nl, run, _ := buildConvergenceCircuit(t, 10)
	g, err := RecordGolden(run, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(run, g)
	points := FullFaultList(nl, g.HaltCycle)

	early, err := ctl.RunCampaign(CampaignConfig{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	full, err := ctl.RunCampaign(CampaignConfig{Points: points, DisableEarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	if early.Converged == 0 || early.CyclesSaved == 0 {
		t.Fatal("self-healing circuit produced no convergence credit")
	}
	if full.Converged != 0 || full.CyclesSaved != 0 {
		t.Fatalf("DisableEarlyExit run reports credit: %d/%d", full.Converged, full.CyclesSaved)
	}
	if early.Total != full.Total || early.Executed != full.Executed {
		t.Fatalf("accounting differs: early %+v, full %+v", early, full)
	}
	for _, o := range []Outcome{OutcomeBenign, OutcomeSDC, OutcomeHang, OutcomeHarnessError} {
		if early.ByOutcome[o] != full.ByOutcome[o] {
			t.Errorf("%s: early-exit %d, full run %d", o, early.ByOutcome[o], full.ByOutcome[o])
		}
	}
}

// TestBatchedHoldWindowConvergence: multi-cycle upsets on the AVR model —
// the batched engine's per-lane hold-window gating and convergence
// retirement must reproduce the scalar engine's outcomes and credit
// exactly.
func TestBatchedHoldWindowConvergence(t *testing.T) {
	c, prog, g, r := goldenAVR(t)
	ctl := NewController(r, g)
	var points []FaultPoint
	for _, p := range SampledFaultList(c.NL, g.HaltCycle, 7) {
		if p.Cycle+5 < g.HaltCycle {
			points = append(points, FaultPoint{FF: p.FF, Cycle: p.Cycle, Duration: 5})
		}
	}
	if len(points) == 0 {
		t.Fatal("empty fault list")
	}

	seq, err := ctl.RunCampaign(CampaignConfig{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	run64, err := NewAVRRun64(c, prog)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := ctl.RunCampaignBatched(CampaignConfig{Points: points}, run64)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Outcome{OutcomeBenign, OutcomeSDC, OutcomeHang, OutcomeHarnessError} {
		if seq.ByOutcome[o] != bat.ByOutcome[o] {
			t.Errorf("%s: sequential %d, batched %d", o, seq.ByOutcome[o], bat.ByOutcome[o])
		}
	}
	if seq.Converged != bat.Converged || seq.CyclesSaved != bat.CyclesSaved {
		t.Errorf("convergence credit: sequential %d/%d, batched %d/%d",
			seq.Converged, seq.CyclesSaved, bat.Converged, bat.CyclesSaved)
	}
}
