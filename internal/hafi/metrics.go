package hafi

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
)

// campaignMetrics bundles the campaign's observability handles, hoisted
// out of the experiment loops so instrumentation costs one pointer check
// per classified point when disabled (m == nil). Every method is safe on
// a nil receiver.
type campaignMetrics struct {
	done         *obs.Counter // campaign_points_done_total
	executed     *obs.Counter // campaign_injections_total
	pruned       *obs.Counter // campaign_pruned_total
	replayed     *obs.Counter // campaign_replayed_total
	skippedWrong *obs.Counter // campaign_skipped_wrong_total
	outcomes     [4]*obs.Counter
	batches      *obs.Counter   // campaign_batches_total
	lanes        *obs.Histogram // campaign_batch_lanes
	batchSecs    *obs.Histogram // campaign_batch_seconds
	expSecs      *obs.Histogram // campaign_experiment_seconds
	workers      *obs.Gauge     // campaign_workers
	workersBusy  *obs.Gauge     // campaign_workers_busy
	laneWidth    *obs.Gauge     // campaign_lanes
	converged    *obs.Counter   // campaign_converged_total
	cyclesSaved  *obs.Counter   // campaign_cycles_saved_total
	deltaSkip    *obs.Counter   // sim_delta_gates_skipped_total
	deltaFall    *obs.Counter   // sim_frontier_fallback_total
	// reg backs the labeled per-MATE attribution counters, which cannot be
	// hoisted statically (one counter per MATE). mateCounters caches the
	// registry lookup per MATE index: crediting a pruned point is a hot
	// per-point operation and the label formatting plus registry lock were
	// measurable on heavily pruned campaigns.
	reg          *obs.Registry
	mateMu       sync.Mutex
	mateCounters map[int]*obs.Counter
}

func newCampaignMetrics(reg *obs.Registry, totalPoints int) *campaignMetrics {
	if reg == nil {
		return nil
	}
	reg.Gauge("campaign_points").Set(int64(totalPoints))
	m := &campaignMetrics{
		done:         reg.Counter("campaign_points_done_total"),
		executed:     reg.Counter("campaign_injections_total"),
		pruned:       reg.Counter("campaign_pruned_total"),
		replayed:     reg.Counter("campaign_replayed_total"),
		skippedWrong: reg.Counter("campaign_skipped_wrong_total"),
		batches:      reg.Counter("campaign_batches_total"),
		lanes:        reg.Histogram("campaign_batch_lanes", obs.LinearBuckets(32, 32, 8)),
		batchSecs:    reg.Histogram("campaign_batch_seconds", obs.ExpBuckets(1e-4, 2, 16)),
		expSecs:      reg.Histogram("campaign_experiment_seconds", obs.ExpBuckets(1e-6, 2, 18)),
		workers:      reg.Gauge("campaign_workers"),
		workersBusy:  reg.Gauge("campaign_workers_busy"),
		laneWidth:    reg.Gauge("campaign_lanes"),
		converged:    reg.Counter("campaign_converged_total"),
		cyclesSaved:  reg.Counter("campaign_cycles_saved_total"),
		deltaSkip:    reg.Counter("sim_delta_gates_skipped_total"),
		deltaFall:    reg.Counter("sim_frontier_fallback_total"),
		reg:          reg,
		mateCounters: map[int]*obs.Counter{},
	}
	for o := OutcomeBenign; o <= OutcomeHarnessError; o++ {
		m.outcomes[o] = reg.Counter("campaign_outcomes_total", "outcome", o.String())
	}
	return m
}

// point accounts one newly classified point (mirrors its journal record).
func (m *campaignMetrics) point(rec journal.Record) {
	if m == nil {
		return
	}
	m.done.Inc()
	if rec.Pruned {
		m.pruned.Inc()
		if rec.SkippedWrong {
			m.skippedWrong.Inc()
		}
		return
	}
	m.executed.Inc()
	if int(rec.Outcome) < len(m.outcomes) {
		m.outcomes[rec.Outcome].Inc()
	}
}

// matePruned credits one pruned point to the MATE that proved it benign on
// the labeled counter campaign_mate_pruned_total{mate,width}, so a live
// /metrics scrape can rank MATEs by cost/benefit mid-campaign.
func (m *campaignMetrics) matePruned(mate, width int) {
	if m == nil {
		return
	}
	m.mateMu.Lock()
	c, ok := m.mateCounters[mate]
	if !ok {
		c = m.reg.Counter("campaign_mate_pruned_total",
			"mate", strconv.Itoa(mate), "width", strconv.Itoa(width))
		m.mateCounters[mate] = c
	}
	m.mateMu.Unlock()
	c.Inc()
}

// convergedN accounts n experiments retired by the convergence early-exit
// and the simulation cycles that exit skipped.
func (m *campaignMetrics) convergedN(n int, saved int64) {
	if m == nil || n == 0 {
		return
	}
	m.converged.Add(int64(n))
	m.cyclesSaved.Add(saved)
}

// replay accounts one point merged from a recovered journal.
func (m *campaignMetrics) replay() {
	if m == nil {
		return
	}
	m.replayed.Inc()
}

// batch accounts one executed 64-lane batch and its lane occupancy.
func (m *campaignMetrics) batch(lanesUsed int) {
	if m == nil {
		return
	}
	m.batches.Inc()
	m.lanes.Observe(float64(lanesUsed))
}

// batchDone accounts one batch's wall-clock and the estimated
// per-experiment latency (batch wall-clock amortized over its lanes) —
// the histograms behind campaignreport's latency percentiles. Two
// Observe calls per ~64-experiment batch, so the hot-path budget holds.
func (m *campaignMetrics) batchDone(d time.Duration, lanesUsed int) {
	if m == nil || lanesUsed <= 0 {
		return
	}
	secs := d.Seconds()
	m.batchSecs.Observe(secs)
	m.expSecs.Observe(secs / float64(lanesUsed))
}

// setWorkers records the shard count of a parallel campaign.
func (m *campaignMetrics) setWorkers(n int) {
	if m == nil {
		return
	}
	m.workers.Set(int64(n))
}

// workerBusy tracks shard activity for the utilization column.
func (m *campaignMetrics) workerBusy(delta int64) {
	if m == nil {
		return
	}
	m.workersBusy.Add(delta)
}

// setLanes records the device lane width of the campaign's batched engine.
func (m *campaignMetrics) setLanes(n int) {
	if m == nil {
		return
	}
	m.laneWidth.Set(int64(n))
}

// deltaSkipped accounts gate evaluations the cone-delta engine avoided
// relative to dense stepping (accumulated per batch, not per cycle).
func (m *campaignMetrics) deltaSkipped(n uint64) {
	if m == nil || n == 0 {
		return
	}
	m.deltaSkip.Add(int64(n))
}

// frontierFallback accounts one mid-batch switch from cone-delta to dense
// dispatch (frontier occupancy over threshold or golden trace exhausted).
func (m *campaignMetrics) frontierFallback() {
	if m == nil {
		return
	}
	m.deltaFall.Inc()
}
