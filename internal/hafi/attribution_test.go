package hafi

import (
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
)

// sumCredits folds a per-MATE credit map.
func sumCredits(m map[int]int64) int64 {
	var n int64
	for _, v := range m {
		n += v
	}
	return n
}

// checkAttribution verifies the exact-partition invariant and that every
// credited MATE exists in the set.
func checkAttribution(t *testing.T, res *CampaignResult, set *core.MATESet) {
	t.Helper()
	if got := sumCredits(res.PrunedByMATE); got != int64(res.Skipped) {
		t.Fatalf("per-MATE credits sum to %d, skipped = %d (%v)", got, res.Skipped, res.PrunedByMATE)
	}
	for m, n := range res.PrunedByMATE {
		if m < 0 || m >= len(set.MATEs) {
			t.Fatalf("credit for MATE %d outside the %d-MATE set", m, len(set.MATEs))
		}
		if n <= 0 {
			t.Fatalf("non-positive credit for MATE %d: %d", m, n)
		}
	}
}

// TestAttributionSequential: sequential engine credits partition the skipped
// points, deterministically, and the journal carries one hit per pruned
// point.
func TestAttributionSequential(t *testing.T) {
	c, _, g, r := goldenAVR(t)
	set := core.Search(c.NL, c.NL.FFQWires(), core.DefaultSearchParams()).Set
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 5)

	path := filepath.Join(t.TempDir(), "attr.journal")
	jw, err := journal.Create(path, ctl.JournalHeader(points))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := CampaignConfig{Points: points, MATESet: set, Journal: jw, Obs: reg}
	res, err := ctl.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Skipped == 0 {
		t.Fatal("pruning did not fire; attribution untestable")
	}
	checkAttribution(t, res, set)

	// Journal: exactly one hit per pruned record, agreeing with the result.
	rec, err := journal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	fromJournal := map[int]int64{}
	for idx, jr := range rec.ByIndex {
		hit, ok := rec.HitByIndex[idx]
		if jr.Pruned != ok {
			t.Fatalf("point %d: pruned=%v but hit present=%v", idx, jr.Pruned, ok)
		}
		if ok {
			if hit.FF != jr.FF {
				t.Fatalf("point %d: hit FF %d, record FF %d", idx, hit.FF, jr.FF)
			}
			if int(hit.Width) != len(set.MATEs[hit.MATE].Literals) {
				t.Fatalf("point %d: hit width %d, MATE %d has %d literals",
					idx, hit.Width, hit.MATE, len(set.MATEs[hit.MATE].Literals))
			}
			fromJournal[int(hit.MATE)]++
		}
	}
	if !reflect.DeepEqual(fromJournal, res.PrunedByMATE) {
		t.Fatalf("journal attribution %v != result attribution %v", fromJournal, res.PrunedByMATE)
	}

	// Labeled live counters mirror the credits.
	var live int64
	for m := range res.PrunedByMATE {
		live += reg.Counter("campaign_mate_pruned_total",
			"mate", strconv.Itoa(m), "width", strconv.Itoa(len(set.MATEs[m].Literals))).Value()
	}
	if live != int64(res.Skipped) {
		t.Fatalf("labeled counters sum to %d, skipped = %d", live, res.Skipped)
	}

	// Determinism: a second run credits identically.
	res2, err := ctl.RunCampaign(CampaignConfig{Points: points, MATESet: set})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.PrunedByMATE, res2.PrunedByMATE) {
		t.Fatalf("attribution not deterministic: %v vs %v", res.PrunedByMATE, res2.PrunedByMATE)
	}
}

// TestAttributionBatchedMatchesSequential: both engines and the validated
// path credit identically (the rule depends only on the MATE set and golden
// trace, not the execution strategy).
func TestAttributionBatchedMatchesSequential(t *testing.T) {
	c, prog, g, r := goldenAVR(t)
	set := core.Search(c.NL, c.NL.FFQWires(), core.DefaultSearchParams()).Set
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 5)

	seq, err := ctl.RunCampaign(CampaignConfig{Points: points, MATESet: set})
	if err != nil {
		t.Fatal(err)
	}
	run64, err := NewAVRRun64(c, prog)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := ctl.RunCampaignBatched(CampaignConfig{Points: points, MATESet: set}, run64)
	if err != nil {
		t.Fatal(err)
	}
	val, err := ctl.RunCampaignBatched(CampaignConfig{Points: points, MATESet: set, ValidateSkipped: true}, run64)
	if err != nil {
		t.Fatal(err)
	}
	checkAttribution(t, seq, set)
	if !reflect.DeepEqual(seq.PrunedByMATE, bat.PrunedByMATE) {
		t.Fatalf("batched attribution %v != sequential %v", bat.PrunedByMATE, seq.PrunedByMATE)
	}
	if !reflect.DeepEqual(seq.PrunedByMATE, val.PrunedByMATE) {
		t.Fatalf("validated attribution %v != sequential %v", val.PrunedByMATE, seq.PrunedByMATE)
	}
}

// TestAttributionResumeFromV1Journal: resuming a pre-attribution journal
// (pruned records without hits) must not fabricate credits — replayed v1
// points stay unattributed, newly classified points are credited.
func TestAttributionResumeFromV1Journal(t *testing.T) {
	c, _, g, r := goldenAVR(t)
	set := core.Search(c.NL, c.NL.FFQWires(), core.DefaultSearchParams()).Set
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 5)

	// Find the points the campaign would prune, to forge a faithful v1 log.
	full, err := ctl.RunCampaign(CampaignConfig{Points: points, MATESet: set})
	if err != nil {
		t.Fatal(err)
	}
	if full.Skipped < 2 {
		t.Fatal("need at least two pruned points")
	}

	// v1 journal covering the first half of the fault list: pruned records
	// carry no attribution hits, exactly as written before format v2.
	path := filepath.Join(t.TempDir(), "v1.journal")
	jw, err := journal.Create(path, ctl.JournalHeader(points))
	if err != nil {
		t.Fatal(err)
	}
	v1Pruned := 0
	for i := 0; i < len(points)/2; i++ {
		p := points[i]
		rec := journal.Record{Index: uint64(i), FF: uint32(p.FF), Cycle: uint32(p.Cycle), Duration: uint32(p.duration())}
		if _, ok := ctl.provedBenign(p); ok {
			rec.Pruned = true
			v1Pruned++
		} else {
			rec.Outcome = uint8(OutcomeBenign)
		}
		if err := jw.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if v1Pruned == 0 {
		t.Fatal("first half pruned nothing; widen the fault list")
	}

	jw, rec, err := journal.Resume(path, ctl.JournalHeader(points))
	if err != nil {
		t.Fatal(err)
	}
	defer jw.Close()
	res, err := ctl.RunCampaign(CampaignConfig{Points: points, MATESet: set, Journal: jw, Resume: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != full.Skipped {
		t.Fatalf("resumed skipped %d, full run %d", res.Skipped, full.Skipped)
	}
	if got, want := sumCredits(res.PrunedByMATE), int64(full.Skipped-v1Pruned); got != want {
		t.Fatalf("credits = %d, want %d (v1 replays must stay unattributed)", got, want)
	}
}
