package hafi

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
)

// TestBatchedMatchesSequential: the 64-lane batched campaign must produce
// exactly the same aggregate outcome counts as the sequential controller
// on the same fault list.
func TestBatchedMatchesSequential(t *testing.T) {
	c, prog, g, r := goldenAVR(t)
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 3)

	seq, err := ctl.RunCampaign(CampaignConfig{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	run64, err := NewAVRRun64(c, prog)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := ctl.RunCampaignBatched(CampaignConfig{Points: points}, run64)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Total != bat.Total || seq.Executed != bat.Executed {
		t.Fatalf("accounting differs: %+v vs %+v", seq, bat)
	}
	for _, o := range []Outcome{OutcomeBenign, OutcomeSDC, OutcomeHang} {
		if seq.ByOutcome[o] != bat.ByOutcome[o] {
			t.Errorf("%s: sequential %d, batched %d", o, seq.ByOutcome[o], bat.ByOutcome[o])
		}
	}
}

// TestBatchedWithPruningAndValidation: online pruning and validated skips
// behave identically in the batched controller.
func TestBatchedWithPruningAndValidation(t *testing.T) {
	c, prog, g, r := goldenAVR(t)
	set := core.Search(c.NL, c.NL.FFQWires(), core.DefaultSearchParams()).Set
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 4)

	run64, err := NewAVRRun64(c, prog)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := ctl.RunCampaignBatched(CampaignConfig{
		Points:          points,
		MATESet:         set,
		ValidateSkipped: true,
	}, run64)
	if err != nil {
		t.Fatal(err)
	}
	if bat.Skipped == 0 {
		t.Fatal("expected pruning")
	}
	if bat.SkippedWrong != 0 {
		t.Fatalf("batched validation found %d wrong skips", bat.SkippedWrong)
	}

	seq, err := ctl.RunCampaign(CampaignConfig{Points: points, MATESet: set})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Skipped != bat.Skipped || seq.Executed != bat.Executed {
		t.Fatalf("pruning differs: seq %+v, batched %+v", seq, bat)
	}
	for _, o := range []Outcome{OutcomeBenign, OutcomeSDC, OutcomeHang} {
		if seq.ByOutcome[o] != bat.ByOutcome[o] {
			t.Errorf("%s: sequential %d, batched %d", o, seq.ByOutcome[o], bat.ByOutcome[o])
		}
	}
}

// TestBatchedMSP430 exercises the MSP430 lane-parallel path.
func TestBatchedMSP430(t *testing.T) {
	c := msp430.NewCore()
	prog := msp430.MustAssemble(`
	    movi r1, 4
	    movi r2, 0
	loop:
	    add r1, r2
	    addi r1, -1
	    jne loop
	    out r2
	    halt
	`)
	r := NewMSP430Run(c, prog)
	g, err := RecordGolden(r, 10000)
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 5)

	seq, err := ctl.RunCampaign(CampaignConfig{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	run64, err := NewMSP430Run64(c, prog)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := ctl.RunCampaignBatched(CampaignConfig{Points: points}, run64)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Outcome{OutcomeBenign, OutcomeSDC, OutcomeHang} {
		if seq.ByOutcome[o] != bat.ByOutcome[o] {
			t.Errorf("%s: sequential %d, batched %d", o, seq.ByOutcome[o], bat.ByOutcome[o])
		}
	}
}

// TestBatchedCheckpointTypeMismatch: loading an AVR checkpoint into an
// MSP430 batch must panic loudly rather than corrupt state.
func TestBatchedCheckpointTypeMismatch(t *testing.T) {
	ac := avr.NewCore()
	aprog := avr.MustAssemble("halt")
	arun := NewAVRRun(ac, aprog)
	cp := arun.Checkpoint()

	mc := msp430.NewCore()
	mrun64, err := NewMSP430Run64(mc, msp430.MustAssemble("halt"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on checkpoint type mismatch")
		}
	}()
	mrun64.LoadCheckpoint(cp)
}

// TestBatchedPoolMatchesSequential: the pooled 64-lane engine — factory
// construction path, several device instances, reorder-buffer emission —
// must match the sequential controller outcome for outcome. The fault
// list is MBU so the pool is exercised under a non-SEU model (multi-FF
// injection per lane, journal-v3 point shapes).
func TestBatchedPoolMatchesSequential(t *testing.T) {
	c, prog, g, r := goldenAVR(t)
	ctl := NewController(r, g)
	points := ModelFaultList(c.NL, g.HaltCycle, 6, ModelSpec{Model: ModelMBU, Span: 2})
	if len(points) < 64 {
		t.Fatalf("fault list too small to fill a lane batch: %d points", len(points))
	}

	seq, err := ctl.RunCampaign(CampaignConfig{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := ctl.RunCampaignBatchedPool(CampaignConfig{Points: points, Workers: 3},
		func() (Run64, error) { return NewAVRRun64(avr.NewCore(), prog) })
	if err != nil {
		t.Fatal(err)
	}
	if seq.Total != pool.Total || seq.Executed != pool.Executed || seq.Skipped != pool.Skipped {
		t.Fatalf("accounting differs: sequential %+v, pooled %+v", seq, pool)
	}
	for _, o := range []Outcome{OutcomeBenign, OutcomeSDC, OutcomeHang} {
		if seq.ByOutcome[o] != pool.ByOutcome[o] {
			t.Errorf("%s: sequential %d, pooled %d", o, seq.ByOutcome[o], pool.ByOutcome[o])
		}
	}
}
