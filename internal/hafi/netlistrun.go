package hafi

import (
	"encoding/binary"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// NetlistRun adapts an arbitrary netlist (no external memories) to the Run
// interface, so fault-injection campaigns can target any synchronous
// circuit, not just the two processor models. Inputs are driven by a pure
// function of the cycle number (so checkpoint restore replays them
// exactly); the workload counts as finished when the designated halted
// wire goes high; the result signature hashes the flip-flop state and the
// primary outputs.
type NetlistRun struct {
	m      *sim.Machine
	halted netlist.WireID
	drive  func(cycle int, m *sim.Machine)
}

// NewNetlistRun wraps a netlist. drive is called once per cycle (between
// the two evaluation passes) and must be a pure function of the cycle
// number; halted must be a wire that rises when the workload completes.
func NewNetlistRun(nl *netlist.Netlist, halted netlist.WireID, drive func(cycle int, m *sim.Machine)) *NetlistRun {
	return &NetlistRun{m: sim.New(nl), halted: halted, drive: drive}
}

// Machine implements Run.
func (r *NetlistRun) Machine() *sim.Machine { return r.m }

// TraceEnv implements the tracer hook used by RecordGolden.
func (r *NetlistRun) TraceEnv() sim.Env {
	return sim.EnvFunc(func(m *sim.Machine) {
		if r.drive != nil {
			r.drive(m.Cycle, m)
		}
	})
}

// AfterStep implements the tracer hook.
func (r *NetlistRun) AfterStep() {}

// Step implements Run.
func (r *NetlistRun) Step() { r.m.Step(r.TraceEnv()) }

// Halted implements Run.
func (r *NetlistRun) Halted() bool { return r.m.Value(r.halted) }

type netlistCheckpoint struct {
	ffs    []bool
	inputs []bool
	cycle  int
}

// Checkpoint implements Run.
func (r *NetlistRun) Checkpoint() Checkpoint {
	return &netlistCheckpoint{ffs: r.m.FFState(), inputs: r.m.InputState(), cycle: r.m.Cycle}
}

// Restore implements Run.
func (r *NetlistRun) Restore(cp Checkpoint) {
	c := cp.(*netlistCheckpoint)
	r.m.SetFFState(c.ffs)
	r.m.SetInputState(c.inputs)
	r.m.Cycle = c.cycle
}

// MemDigest implements Run: a NetlistRun has no external memory, so the
// digest is the constant seed (memory never diverges from golden).
func (r *NetlistRun) MemDigest() uint64 { return sim.WriteDigestSeed }

// Signature implements Run: it hashes the flip-flop state and the primary
// outputs (there is no external memory to include).
func (r *NetlistRun) Signature() uint64 {
	var buf []byte
	var cur byte
	n := 0
	push := func(v bool) {
		if v {
			cur |= 1 << uint(n%8)
		}
		n++
		if n%8 == 0 {
			buf = append(buf, cur)
			cur = 0
		}
	}
	for _, v := range r.m.FFState() {
		push(v)
	}
	for _, w := range r.m.NL.Outputs {
		push(r.m.Value(w))
	}
	buf = append(buf, cur)
	var cyc [8]byte
	binary.LittleEndian.PutUint64(cyc[:], uint64(0)) // layout stability
	return SignatureHash(buf, cyc[:])
}
