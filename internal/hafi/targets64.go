package hafi

import (
	"fmt"

	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/sim"
)

// Run64 is a 64-lane batched device instance: 64 fault-injection
// experiments that share a start checkpoint advance per evaluation pass.
type Run64 interface {
	// Step advances all lanes one clock cycle.
	Step()
	// HaltedMask returns a bit per halted lane.
	HaltedMask() uint64
	// LoadCheckpoint broadcasts a scalar checkpoint into every lane.
	LoadCheckpoint(cp Checkpoint)
	// FlipLane injects an SEU into flip-flop ff of one lane.
	FlipLane(ff, lane int)
	// SignatureLane condenses one lane's externally visible result; it is
	// comparable with the scalar Run.Signature of the same target.
	SignatureLane(lane int) uint64
	// MemDigestLane returns one lane's external-memory write digest; it is
	// comparable with the scalar Run.MemDigest and the per-cycle digests of
	// the golden reference.
	MemDigestLane(lane int) uint64
	// Mach exposes the lane-parallel machine (flip-flop state inspection
	// for convergence retirement).
	Mach() *sim.Machine64
}

// avrRun64 adapts the AVR lane-parallel system.
type avrRun64 struct {
	sys *avr.System64
}

// NewAVRRun64 creates a 64-lane batched run for the AVR-class core.
func NewAVRRun64(core *avr.Core, prog []uint16) (Run64, error) {
	sys, err := avr.NewSystem64(core, prog)
	if err != nil {
		return nil, err
	}
	return &avrRun64{sys: sys}, nil
}

func (r *avrRun64) Step()                      { r.sys.Step() }
func (r *avrRun64) HaltedMask() uint64         { return r.sys.HaltedMask() }
func (r *avrRun64) FlipLane(ff, l int)         { r.sys.M.FlipLane(ff, l) }
func (r *avrRun64) MemDigestLane(l int) uint64 { return r.sys.WriteDigest[l] }
func (r *avrRun64) Mach() *sim.Machine64       { return r.sys.M }

func (r *avrRun64) LoadCheckpoint(cp Checkpoint) {
	c, ok := cp.(*avrCheckpoint)
	if !ok {
		panic(fmt.Sprintf("hafi: checkpoint type %T does not match AVR run", cp))
	}
	r.sys.LoadScalarState(c.ffs, c.inputs, c.dmem, c.digest)
	r.sys.M.Cycle = c.cycle
}

func (r *avrRun64) SignatureLane(l int) uint64 {
	return SignatureHash([]byte{r.sys.PortLane(l)}, r.sys.DMem[l][:])
}

// msp430Run64 adapts the MSP430 lane-parallel system.
type msp430Run64 struct {
	sys *msp430.System64
}

// NewMSP430Run64 creates a 64-lane batched run for the MSP430-class core.
func NewMSP430Run64(core *msp430.Core, prog []uint16) (Run64, error) {
	sys, err := msp430.NewSystem64(core, prog)
	if err != nil {
		return nil, err
	}
	return &msp430Run64{sys: sys}, nil
}

func (r *msp430Run64) Step()                      { r.sys.Step() }
func (r *msp430Run64) HaltedMask() uint64         { return r.sys.HaltedMask() }
func (r *msp430Run64) FlipLane(ff, l int)         { r.sys.M.FlipLane(ff, l) }
func (r *msp430Run64) MemDigestLane(l int) uint64 { return r.sys.WriteDigest[l] }
func (r *msp430Run64) Mach() *sim.Machine64       { return r.sys.M }

func (r *msp430Run64) LoadCheckpoint(cp Checkpoint) {
	c, ok := cp.(*msp430Checkpoint)
	if !ok {
		panic(fmt.Sprintf("hafi: checkpoint type %T does not match MSP430 run", cp))
	}
	r.sys.LoadScalarState(c.ffs, c.inputs, c.dmem, c.digest)
	r.sys.M.Cycle = c.cycle
}

func (r *msp430Run64) SignatureLane(l int) uint64 {
	return signatureWords16(r.sys.PortLane(l), r.sys.DMem[l][:])
}
