package hafi

import (
	"fmt"

	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/sim"
)

// Run64 is a 64-lane batched device instance: 64 fault-injection
// experiments that share a start checkpoint advance per evaluation pass.
// It is the historical width-1 view; the engine itself runs on RunW and
// adapts Run64 values via AsRunW.
type Run64 interface {
	// Step advances all lanes one clock cycle.
	Step()
	// HaltedMask returns a bit per halted lane.
	HaltedMask() uint64
	// LoadCheckpoint broadcasts a scalar checkpoint into every lane.
	LoadCheckpoint(cp Checkpoint)
	// FlipLane injects an SEU into flip-flop ff of one lane.
	FlipLane(ff, lane int)
	// SignatureLane condenses one lane's externally visible result; it is
	// comparable with the scalar Run.Signature of the same target.
	SignatureLane(lane int) uint64
	// MemDigestLane returns one lane's external-memory write digest; it is
	// comparable with the scalar Run.MemDigest and the per-cycle digests of
	// the golden reference.
	MemDigestLane(lane int) uint64
	// Mach exposes the lane-parallel machine (flip-flop state inspection
	// for convergence retirement).
	Mach() *sim.Machine64
}

// RunW is a wide batched device instance: 64·W fault-injection experiments
// that share a start checkpoint advance per evaluation pass. Lane-group
// methods take g < Lanes()/64 and cover lanes 64g..64g+63.
type RunW interface {
	// Step advances all lanes one clock cycle.
	Step()
	// Lanes returns the total lane count (a multiple of 64).
	Lanes() int
	// HaltedMaskG returns a bit per halted lane of group g.
	HaltedMaskG(g int) uint64
	// LoadCheckpoint broadcasts a scalar checkpoint into every lane.
	LoadCheckpoint(cp Checkpoint)
	// FlipLane injects an SEU into flip-flop ff of one lane.
	FlipLane(ff, lane int)
	// SignatureLane condenses one lane's externally visible result.
	SignatureLane(lane int) uint64
	// MemDigestLane returns one lane's external-memory write digest.
	MemDigestLane(lane int) uint64
	// MachW exposes the lane-parallel machine (flip-flop state inspection
	// for convergence retirement).
	MachW() *sim.MachineW
}

// DeltaRunW is a RunW that can also execute in cone-delta mode: gate
// evaluation restricted to the wires that differ from the recorded golden
// trace. The engine switches a batch into delta mode right after
// LoadCheckpoint (InitDelta + DeltaState.Reset), drives it with StepDelta,
// and leaves it via DeltaState.Materialize when frontier occupancy crosses
// the dense-fallback threshold or the golden trace ends.
type DeltaRunW interface {
	RunW
	// InitDelta returns the device's cone-delta evaluator for the given
	// golden trace, or nil when the target cannot support delta execution
	// (the engine then stays dense). The evaluator is cached per trace.
	InitDelta(tr *sim.Trace) *sim.DeltaState
	// StepDelta advances all lanes one clock cycle in delta mode.
	StepDelta()
	// HaltedMaskDeltaG is HaltedMaskG while the device runs in delta mode.
	HaltedMaskDeltaG(g int) uint64
}

// CompactRunW is an optional RunW capability: a device that can pack a
// subset of its lanes into the low lane indices and shrink its active
// width, so the batched engine stops paying for lanes whose experiments
// already finished. src must be strictly increasing; lane l of the
// compacted device is lane src[l] of the old one (state, memories and
// digests move together). The capability is optional because a foreign
// Run64 adapted via AsRunW runs at width 1 and has nothing to shrink.
type CompactRunW interface {
	RunW
	CompactLanes(src []uint16)
}

// SuspendRunW is an optional RunW capability: a device whose lanes can be
// exported as opaque single-lane snapshots and re-imported into any lane
// of a device of the same netlist and program — even one of a different
// width. The batched engine uses it to suspend straggler lanes (typically
// hang candidates running out their timeout) from nearly drained batches
// and finish them together in packed waves, instead of dragging each
// batch's tail through the simulator one or two live lanes at a time.
// ImportLane must only target lanes inside the device's active groups.
type SuspendRunW interface {
	RunW
	ExportLane(lane int) interface{}
	ImportLane(lane int, state interface{})
}

// lanesToWidth validates a -lanes style lane count.
func lanesToWidth(lanes int) (int, error) {
	if lanes <= 0 || lanes%64 != 0 {
		return 0, fmt.Errorf("hafi: lane count %d must be a positive multiple of 64", lanes)
	}
	return lanes / 64, nil
}

// avrRunW adapts the AVR lane-parallel system.
type avrRunW struct {
	sys   *avr.SystemW
	delta *sim.DeltaState
}

// NewAVRRunW creates a wide batched run for the AVR-class core with the
// given lane count (a positive multiple of 64).
func NewAVRRunW(core *avr.Core, prog []uint16, lanes int) (RunW, error) {
	r, err := newAVRRunW(core, prog, lanes)
	if err != nil {
		return nil, err
	}
	return r, nil
}

func newAVRRunW(core *avr.Core, prog []uint16, lanes int) (*avrRunW, error) {
	w, err := lanesToWidth(lanes)
	if err != nil {
		return nil, err
	}
	sys, err := avr.NewSystemW(core, prog, w)
	if err != nil {
		return nil, err
	}
	return &avrRunW{sys: sys}, nil
}

func (r *avrRunW) Step()                      { r.sys.Step() }
func (r *avrRunW) Lanes() int                 { return r.sys.Lanes() }
func (r *avrRunW) HaltedMaskG(g int) uint64   { return r.sys.HaltedMaskG(g) }
func (r *avrRunW) FlipLane(ff, l int)         { r.sys.M.FlipLane(ff, l) }
func (r *avrRunW) MemDigestLane(l int) uint64 { return r.sys.WriteDigest[l] }
func (r *avrRunW) MachW() *sim.MachineW       { return r.sys.M }

func (r *avrRunW) CompactLanes(src []uint16) { r.sys.CompactLanes(src) }

func (r *avrRunW) ExportLane(l int) interface{}        { return r.sys.ExportLane(l) }
func (r *avrRunW) ImportLane(l int, state interface{}) { r.sys.ImportLane(l, state.(*avr.LaneState)) }

func (r *avrRunW) EnvW() sim.EnvW { return r.sys.Env() }

func (r *avrRunW) CheckpointLane(l int) Checkpoint {
	return &avrCheckpoint{
		ffs:    r.sys.M.FFStateLane(l),
		inputs: r.sys.M.InputStateLane(l),
		dmem:   r.sys.DMem[l],
		digest: r.sys.WriteDigest[l],
		cycle:  r.sys.M.Cycle,
	}
}

func (r *avrRunW) LoadCheckpoint(cp Checkpoint) {
	c, ok := cp.(*avrCheckpoint)
	if !ok {
		panic(fmt.Sprintf("hafi: checkpoint type %T does not match AVR run", cp))
	}
	r.sys.LoadScalarState(c.ffs, c.inputs, c.dmem, c.digest)
	r.sys.M.Cycle = c.cycle
}

func (r *avrRunW) SignatureLane(l int) uint64 {
	return SignatureHash([]byte{r.sys.PortLane(l)}, r.sys.DMem[l][:])
}

func (r *avrRunW) InitDelta(tr *sim.Trace) *sim.DeltaState {
	if r.delta == nil || r.delta.Trace() != tr {
		d, err := r.sys.NewDelta(tr)
		if err != nil {
			return nil
		}
		r.delta = d
	}
	return r.delta
}

func (r *avrRunW) StepDelta() { r.delta.Step() }

func (r *avrRunW) HaltedMaskDeltaG(g int) uint64 {
	return r.delta.WireLanesG(r.sys.Core.Halted, g)
}

// avrRun64 is the width-1 compatibility veneer: it satisfies both Run64
// (the historical interface) and RunW/DeltaRunW (via promotion), so
// Run64-typed callers get the direct wide-engine path from AsRunW.
type avrRun64 struct {
	*avrRunW
	m64 *sim.Machine64
}

// NewAVRRun64 creates a 64-lane batched run for the AVR-class core.
func NewAVRRun64(core *avr.Core, prog []uint16) (Run64, error) {
	rw, err := newAVRRunW(core, prog, 64)
	if err != nil {
		return nil, err
	}
	return &avrRun64{avrRunW: rw, m64: &sim.Machine64{MachineW: rw.sys.M}}, nil
}

func (r *avrRun64) HaltedMask() uint64   { return r.HaltedMaskG(0) }
func (r *avrRun64) Mach() *sim.Machine64 { return r.m64 }

// msp430RunW adapts the MSP430 lane-parallel system.
type msp430RunW struct {
	sys   *msp430.SystemW
	delta *sim.DeltaState
}

// NewMSP430RunW creates a wide batched run for the MSP430-class core with
// the given lane count (a positive multiple of 64).
func NewMSP430RunW(core *msp430.Core, prog []uint16, lanes int) (RunW, error) {
	r, err := newMSP430RunW(core, prog, lanes)
	if err != nil {
		return nil, err
	}
	return r, nil
}

func newMSP430RunW(core *msp430.Core, prog []uint16, lanes int) (*msp430RunW, error) {
	w, err := lanesToWidth(lanes)
	if err != nil {
		return nil, err
	}
	sys, err := msp430.NewSystemW(core, prog, w)
	if err != nil {
		return nil, err
	}
	return &msp430RunW{sys: sys}, nil
}

func (r *msp430RunW) Step()                      { r.sys.Step() }
func (r *msp430RunW) Lanes() int                 { return r.sys.Lanes() }
func (r *msp430RunW) HaltedMaskG(g int) uint64   { return r.sys.HaltedMaskG(g) }
func (r *msp430RunW) FlipLane(ff, l int)         { r.sys.M.FlipLane(ff, l) }
func (r *msp430RunW) MemDigestLane(l int) uint64 { return r.sys.WriteDigest[l] }
func (r *msp430RunW) MachW() *sim.MachineW       { return r.sys.M }

func (r *msp430RunW) CompactLanes(src []uint16) { r.sys.CompactLanes(src) }

func (r *msp430RunW) ExportLane(l int) interface{} { return r.sys.ExportLane(l) }
func (r *msp430RunW) ImportLane(l int, state interface{}) {
	r.sys.ImportLane(l, state.(*msp430.LaneState))
}

func (r *msp430RunW) EnvW() sim.EnvW { return r.sys.Env() }

func (r *msp430RunW) CheckpointLane(l int) Checkpoint {
	return &msp430Checkpoint{
		ffs:    r.sys.M.FFStateLane(l),
		inputs: r.sys.M.InputStateLane(l),
		dmem:   r.sys.DMem[l],
		digest: r.sys.WriteDigest[l],
		cycle:  r.sys.M.Cycle,
	}
}

func (r *msp430RunW) LoadCheckpoint(cp Checkpoint) {
	c, ok := cp.(*msp430Checkpoint)
	if !ok {
		panic(fmt.Sprintf("hafi: checkpoint type %T does not match MSP430 run", cp))
	}
	r.sys.LoadScalarState(c.ffs, c.inputs, c.dmem, c.digest)
	r.sys.M.Cycle = c.cycle
}

func (r *msp430RunW) SignatureLane(l int) uint64 {
	return signatureWords16(r.sys.PortLane(l), r.sys.DMem[l][:])
}

func (r *msp430RunW) InitDelta(tr *sim.Trace) *sim.DeltaState {
	if r.delta == nil || r.delta.Trace() != tr {
		d, err := r.sys.NewDelta(tr)
		if err != nil {
			return nil
		}
		r.delta = d
	}
	return r.delta
}

func (r *msp430RunW) StepDelta() { r.delta.Step() }

func (r *msp430RunW) HaltedMaskDeltaG(g int) uint64 {
	return r.delta.WireLanesG(r.sys.Core.Halted, g)
}

// msp430Run64 is the width-1 compatibility veneer (see avrRun64).
type msp430Run64 struct {
	*msp430RunW
	m64 *sim.Machine64
}

// NewMSP430Run64 creates a 64-lane batched run for the MSP430-class core.
func NewMSP430Run64(core *msp430.Core, prog []uint16) (Run64, error) {
	rw, err := newMSP430RunW(core, prog, 64)
	if err != nil {
		return nil, err
	}
	return &msp430Run64{msp430RunW: rw, m64: &sim.Machine64{MachineW: rw.sys.M}}, nil
}

func (r *msp430Run64) HaltedMask() uint64   { return r.HaltedMaskG(0) }
func (r *msp430Run64) Mach() *sim.Machine64 { return r.m64 }

// run64Adapter lifts an arbitrary Run64 implementation (e.g. a test
// double) onto RunW at width 1. It deliberately does NOT implement
// DeltaRunW: a foreign Run64 may override lane primitives (fault-handling
// wrappers in the resilience tests do), and those overrides must keep
// seeing every call — so adapted devices always run dense.
type run64Adapter struct {
	r Run64
}

// AsRunW returns the widest view of a Run64: the value itself when it
// already implements RunW (the built-in targets do), otherwise a width-1
// adapter.
func AsRunW(r Run64) RunW {
	if rw, ok := r.(RunW); ok {
		return rw
	}
	return run64Adapter{r: r}
}

func (a run64Adapter) Step()                        { a.r.Step() }
func (a run64Adapter) Lanes() int                   { return 64 }
func (a run64Adapter) HaltedMaskG(int) uint64       { return a.r.HaltedMask() }
func (a run64Adapter) LoadCheckpoint(cp Checkpoint) { a.r.LoadCheckpoint(cp) }
func (a run64Adapter) FlipLane(ff, l int)           { a.r.FlipLane(ff, l) }
func (a run64Adapter) SignatureLane(l int) uint64   { return a.r.SignatureLane(l) }
func (a run64Adapter) MemDigestLane(l int) uint64   { return a.r.MemDigestLane(l) }
func (a run64Adapter) MachW() *sim.MachineW         { return a.r.Mach().MachineW }
