package hafi

import "repro/internal/core"

// FPGA cost model (paper Section 6.1): MATEs synthesize into k-input LUTs.
// "With their average input size of less than 6 wires, one MATE fits into
// one or two LUTs. Compared to the size of current HAFI FPGA-based
// platforms, which utilize between 1500 and 6000 LUTs only for the
// fault-injection control unit, or the capacity of a midrange Virtex-6 FPGA
// (XC6VLX240T, 150k LUTs), the extra LUTs required by 50 to 100 MATEs are
// negligible."
const (
	// LUTInputs is the LUT fan-in of the modelled FPGA family (Virtex-6).
	LUTInputs = 6
	// FIControllerLUTsLow/High bracket published FI control units.
	FIControllerLUTsLow  = 1500
	FIControllerLUTsHigh = 6000
	// Virtex6LUTs is the LUT capacity of the paper's reference midrange
	// device (XC6VLX240T).
	Virtex6LUTs = 150480
)

// LUTsForMATE returns the number of LUTs one MATE occupies: an n-input AND
// needs 1 LUT for n <= LUTInputs; wider conjunctions cascade, each further
// LUT absorbing LUTInputs-1 additional literals.
func LUTsForMATE(m *core.MATE) int {
	n := m.NumInputs()
	if n <= LUTInputs {
		return 1
	}
	extra := n - LUTInputs
	step := LUTInputs - 1
	return 1 + (extra+step-1)/step
}

// LUTCost sums the LUT usage of a whole MATE set.
func LUTCost(set *core.MATESet) int {
	total := 0
	for _, m := range set.MATEs {
		total += LUTsForMATE(m)
	}
	return total
}

// InstrumentationLUTs estimates the injection-instrumentation overhead of
// the HAFI platform itself: one injection mux per flip-flop (the standard
// netlist instrumentation of emulation-based FI).
func InstrumentationLUTs(numFFs int) int { return numFFs }

// OverheadVsController relates a MATE set's LUT cost to the published FI
// controller sizes: the returned fraction is cost / controller LUTs.
func OverheadVsController(set *core.MATESet, controllerLUTs int) float64 {
	if controllerLUTs == 0 {
		return 0
	}
	return float64(LUTCost(set)) / float64(controllerLUTs)
}
