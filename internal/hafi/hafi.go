// Package hafi models a hardware-assisted fault-injection (HAFI) platform
// in software. Real HAFI systems (Entrena et al., FLINT, ...) instrument a
// netlist with injection logic, emulate it on an FPGA, and run complete
// fault-injection experiments online; the paper integrates MATE evaluation
// into such a platform to skip provably benign injections before they are
// executed.
//
// This package reproduces that flow against the gate-level simulator:
//
//   - a golden run records per-cycle checkpoints (flip-flop state plus
//     external memory) and the fault-free result signature,
//   - the campaign controller walks the (flip-flop × cycle) fault list,
//     restores the checkpoint, flips the target bit, runs the workload to
//     completion and classifies the outcome (benign / silent data
//     corruption / hang),
//   - with a MATE set attached, the controller evaluates the MATEs on the
//     golden trace for each injection point first and skips those proven
//     benign — the paper's online fault-space pruning,
//   - lut.go provides the FPGA cost model of Section 6.1 (6-input LUTs per
//     MATE versus the 1.5k–6k LUTs of published FI controllers).
//
// Campaigns are resilient: a CampaignConfig may carry a context for
// graceful cancellation (SIGINT drains in-flight experiments and reports a
// partial, internally consistent result), a journal.Writer that durably
// logs every classified point, and a journal.Recovered that resumes a
// crashed campaign by replaying already-classified points — the merged
// result is identical to an uninterrupted run. A panicking experiment is
// classified OutcomeHarnessError instead of taking down its worker shard.
package hafi

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Run is one executable instance of the device under test: the emulated
// netlist plus its external memories. A fresh Run starts at reset.
type Run interface {
	// Machine exposes the simulated netlist state.
	Machine() *sim.Machine
	// Step advances one clock cycle (including memory traffic).
	Step()
	// Halted reports whether the workload finished.
	Halted() bool
	// Checkpoint captures flip-flop state, primary inputs and memories.
	Checkpoint() Checkpoint
	// Restore rewinds to a previous checkpoint.
	Restore(Checkpoint)
	// Signature condenses the externally visible result (output port and
	// data memory) into a comparable hash.
	Signature() uint64
	// MemDigest returns the running external-memory write digest (see
	// sim.UpdateWriteDigest): a chained hash over every write event since
	// reset, rewound by Restore. Two runs with equal digests have performed
	// the same write sequence (w.h.p.), so their external memories are
	// equal — the memory half of the convergence early-exit check.
	MemDigest() uint64
}

// Checkpoint is an opaque snapshot of a Run.
type Checkpoint interface{}

// Outcome classifies one fault-injection experiment.
type Outcome int

// Experiment outcomes. OutcomeBenign: the workload finished with the
// fault-free result. OutcomeSDC: it finished with a wrong result (silent
// data corruption). OutcomeHang: it did not finish within the timeout.
// OutcomeHarnessError: the experiment did not produce a verdict because
// the harness itself failed (a panicking device model); the fault is
// neither counted as benign nor silently dropped.
const (
	OutcomeBenign Outcome = iota
	OutcomeSDC
	OutcomeHang
	OutcomeHarnessError
)

func (o Outcome) String() string {
	switch o {
	case OutcomeBenign:
		return "benign"
	case OutcomeSDC:
		return "sdc"
	case OutcomeHang:
		return "hang"
	case OutcomeHarnessError:
		return "harness-error"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Golden is the fault-free reference execution: per-cycle checkpoints for
// fast experiment setup, the full wire trace for MATE evaluation, the halt
// cycle and the result signature.
type Golden struct {
	Checkpoints []Checkpoint
	// MemDigests[c] is the external-memory write digest at the start of
	// cycle c, aligned with Checkpoints. The campaign's convergence
	// early-exit compares a faulty run's digest against it.
	MemDigests []uint64
	Trace      *sim.Trace
	HaltCycle  int
	Signature  uint64
}

// RecordGolden runs the workload to completion (bounded by maxCycles),
// checkpointing every cycle and recording the full wire trace.
func RecordGolden(r Run, maxCycles int) (*Golden, error) {
	g := &Golden{Trace: sim.NewTrace(r.Machine().NL.NumWires())}
	for cyc := 0; cyc < maxCycles; cyc++ {
		if r.Halted() {
			g.HaltCycle = cyc
			g.Signature = r.Signature()
			return g, nil
		}
		g.Checkpoints = append(g.Checkpoints, r.Checkpoint())
		g.MemDigests = append(g.MemDigests, r.MemDigest())
		r.Machine().Settle(envOf(r))
		g.Trace.Append(r.Machine().Values())
		r.Machine().CommitFFs()
		stepEpilogue(r)
	}
	return nil, fmt.Errorf("hafi: golden run did not halt within %d cycles", maxCycles)
}

// envOf and stepEpilogue let RecordGolden drive the machine manually while
// still recording wire values mid-cycle. Run implementations provide them
// via the optional tracer interface; the default falls back to Step (no
// wire trace).
type tracer interface {
	TraceEnv() sim.Env
	AfterStep()
}

func envOf(r Run) sim.Env {
	if t, ok := r.(tracer); ok {
		return t.TraceEnv()
	}
	return sim.NopEnv
}

func stepEpilogue(r Run) {
	if t, ok := r.(tracer); ok {
		t.AfterStep()
	}
}

// FaultPoint identifies one injection under a fault model. In the zero
// Model (SEU): invert the stored value of flip-flop FF at the beginning of
// cycle Cycle. Duration generalises the fault model to upsets that hold for
// several cycles (paper Section 6.2: "our approach works out of the box
// also with upsets that hold more than one cycle"): the flip-flop is
// re-inverted at the beginning of each of the Duration cycles. Zero means 1
// (a classic SEU). The remaining operands belong to the non-SEU models (see
// the ModelID constants) and must be zero for models that do not use them.
type FaultPoint struct {
	FF       int
	Cycle    int
	Duration int

	// Model selects the fault model; the zero value is ModelSEU, so legacy
	// fault points behave exactly as before.
	Model ModelID
	// Span is the MBU burst width (adjacent flip-flops upset together).
	Span int
	// Period is the intermittent re-flip period in cycles.
	Period int
	// StuckHigh selects stuck-at-1 over stuck-at-0.
	StuckHigh bool
	// Targets is the SET flip set: the flip-flops the struck gate's cone
	// latches into, sorted ascending with Targets[0] == FF. Empty means
	// {FF}.
	Targets []int
}

func (p FaultPoint) duration() int {
	if p.Duration <= 0 {
		return 1
	}
	return p.Duration
}

func (p FaultPoint) span() int {
	if p.Span <= 0 {
		return 1
	}
	return p.Span
}

func (p FaultPoint) period() int {
	if p.Period <= 0 {
		return 1
	}
	return p.Period
}

// targets returns the SET flip set ({FF} when the explicit list is empty).
func (p FaultPoint) targets() []int {
	if len(p.Targets) == 0 {
		return []int{p.FF}
	}
	return p.Targets
}

// plainSEU reports the legacy point shape: the zero model with no foreign
// operands. Plain-SEU points hash, journal and resume byte-identically to
// every campaign recorded before fault-model diversity existed.
func (p FaultPoint) plainSEU() bool {
	return p.Model == ModelSEU && p.Span == 0 && p.Period == 0 && !p.StuckHigh && len(p.Targets) == 0
}

// CampaignConfig parameterises a fault-injection campaign.
type CampaignConfig struct {
	// Points is the fault list (already sampled/sliced by the caller).
	Points []FaultPoint
	// Workers shards the experiments over this many device instances
	// (requires a controller created with NewControllerPool). 0 or 1 runs
	// sequentially.
	Workers int
	// TimeoutFactor bounds experiment length: an experiment hangs when it
	// exceeds TimeoutFactor × golden halt cycle. Zero selects the default
	// of 2; NaN, negative or sub-1 factors (which would time out the
	// golden run itself) are rejected.
	TimeoutFactor float64
	// MATESet enables online pruning: injections whose (wire, cycle) point
	// a triggered MATE proves benign are skipped without execution.
	MATESet *core.MATESet
	// ValidateSkipped additionally executes every skipped experiment and
	// verifies it really is benign (used by the test suite; defeats the
	// purpose of pruning in production).
	ValidateSkipped bool
	// DisableEarlyExit turns off the golden-state convergence early-exit:
	// every experiment runs to halt or timeout even when its state provably
	// re-converged with the fault-free reference. The classification is
	// identical either way; this is an escape hatch for differential
	// testing and debugging.
	DisableEarlyExit bool
	// DisableDelta forces the batched engines onto dense gate dispatch even
	// when the device supports the cone-delta evaluator. Classification is
	// identical either way; like DisableEarlyExit this is an escape hatch
	// for differential testing, debugging and perf ablations.
	DisableDelta bool
	// DeltaFallbackPercent overrides the frontier-occupancy threshold at
	// which a cone-delta batch falls back to dense dispatch, as a percent
	// of the dense per-cycle gate-evaluation cost. Zero selects the
	// measured default (DefaultDeltaFallbackPercent); 100 disables the
	// occupancy fallback (the engine still leaves delta mode when the
	// golden trace ends).
	DeltaFallbackPercent int
	// Context, when non-nil, cancels the campaign gracefully: in-flight
	// experiments (and the current 64-lane batch) finish and are recorded,
	// no new ones start, and the partial result carries Interrupted=true.
	Context context.Context
	// Journal, when non-nil, receives one durable record per classified
	// point (concurrent-safe; shared by all worker shards). A journal
	// write failure aborts the campaign — a silently lossy journal would
	// defeat crash recovery.
	Journal *journal.Writer
	// Resume replays points already classified by a previous run of the
	// same campaign: recovered records are merged into the result without
	// re-execution (and without re-journaling). The records must match
	// the fault list point for point.
	Resume *journal.Recovered
	// Progress, when non-nil, is called after every newly classified point
	// with the running count of points classified in this run (replayed
	// Resume records excluded). It may be called concurrently from worker
	// shards and must be safe for that.
	Progress func(done int)
	// Obs, when non-nil, receives campaign metrics (points done, injections,
	// pruned/replayed counts, outcome histogram, batch lane occupancy,
	// worker utilization). Nil keeps the hot path at a single pointer check.
	Obs *obs.Registry
}

// context returns the effective campaign context.
func (cfg *CampaignConfig) context() context.Context {
	if cfg.Context != nil {
		return cfg.Context
	}
	return context.Background()
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Total     int
	Skipped   int // pruned by MATEs without execution
	Executed  int
	ByOutcome map[Outcome]int
	// SkippedWrong counts validated-skipped experiments that were NOT
	// benign — any nonzero value is a MATE soundness violation.
	SkippedWrong int
	// PrunedByMATE credits every skipped point to the set index of the MATE
	// that proved it benign: the first MATE, in set order, triggering on the
	// upset's first cycle. The credits sum exactly to Skipped, except that
	// points replayed from a pre-attribution (v1) journal carry no credit.
	PrunedByMATE map[int]int64
	// Interrupted marks a partial result: the campaign context was
	// cancelled before every point was classified. The counters cover
	// exactly the classified points (Total = Skipped + Executed).
	Interrupted bool
	// Converged counts executed experiments that ended through the
	// convergence early-exit: the faulty flip-flop state matched the golden
	// reference (with an equal memory write digest) after the upset's hold
	// window, so the run was classified benign without simulating the
	// remaining cycles. It is an execution-strategy statistic, not part of
	// the classification (replayed journal records carry no credit).
	Converged int
	// CyclesSaved sums the simulation cycles skipped by those early exits
	// (golden halt cycle minus convergence cycle, per converged experiment).
	CyclesSaved int64
}

func newCampaignResult() *CampaignResult {
	return &CampaignResult{ByOutcome: map[Outcome]int{}, PrunedByMATE: map[int]int64{}}
}

// PrunedFraction returns the share of fault-list points the MATEs removed.
func (r *CampaignResult) PrunedFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Skipped) / float64(r.Total)
}

// merge folds a shard-partial result into r.
func (r *CampaignResult) merge(p *CampaignResult) {
	r.Total += p.Total
	r.Skipped += p.Skipped
	r.Executed += p.Executed
	r.SkippedWrong += p.SkippedWrong
	for o, n := range p.ByOutcome {
		r.ByOutcome[o] += n
	}
	for m, n := range p.PrunedByMATE {
		r.PrunedByMATE[m] += n
	}
	r.Converged += p.Converged
	r.CyclesSaved += p.CyclesSaved
}

// replay merges one recovered journal record without re-execution. hit, when
// non-nil, is the point's recovered attribution record; it is credited only
// for a pruned point (an orphan hit whose experiment record was lost to a
// torn tail must not fabricate attribution for a re-executed point).
func (r *CampaignResult) replay(rec journal.Record, hit *journal.MATEHit) {
	r.Total++
	if rec.Pruned {
		r.Skipped++
		if hit != nil {
			r.PrunedByMATE[int(hit.MATE)]++
		}
		if rec.SkippedWrong {
			r.SkippedWrong++
		}
		return
	}
	r.Executed++
	r.ByOutcome[Outcome(rec.Outcome)]++
}

// replayHit looks up the recovered attribution for a resumed point.
func replayHit(res *journal.Recovered, idx uint64) *journal.MATEHit {
	if h, ok := res.HitByIndex[idx]; ok {
		return &h
	}
	return nil
}

// Controller is the campaign controller: the software model of the FI
// control unit that HAFI platforms realise as a soft core or dedicated FSM
// on the FPGA.
type Controller struct {
	nl      *netlist.Netlist
	run     Run
	factory func() Run
	golden  *Golden
	// ffQ caches the Q wire of every flip-flop for the convergence check
	// (hot path: one comparison per FF per cycle).
	ffQ []int32
	// matesByWire indexes the MATE set: for each fault wire, the MATEs
	// that can prove it benign, in set order (ascending set index) so
	// attribution is deterministic.
	matesByWire map[netlist.WireID][]indexedMATE
}

// indexedMATE pairs a MATE with its index in the campaign MATE set — the
// identity that attribution records and labeled metrics refer to.
type indexedMATE struct {
	m   *core.MATE
	idx int
}

// NewController prepares a controller for the given device instance and
// golden reference.
func NewController(run Run, golden *Golden) *Controller {
	return newController(run, nil, golden)
}

// NewControllerPool prepares a controller that can shard experiments over
// several device instances (one per worker); the factory must produce runs
// of the same netlist and workload the golden reference was recorded from —
// the paper's scenario of "one FI controller distributing the FI campaign
// over several FPGAs".
func NewControllerPool(factory func() Run, golden *Golden) *Controller {
	return newController(factory(), factory, golden)
}

func newController(run Run, factory func() Run, golden *Golden) *Controller {
	nl := run.Machine().NL
	c := &Controller{nl: nl, run: run, factory: factory, golden: golden}
	c.ffQ = make([]int32, len(nl.FFs))
	for i := range nl.FFs {
		c.ffQ[i] = int32(nl.FFs[i].Q)
	}
	return c
}

// JournalHeader returns the journal identity of a campaign over the given
// fault list: golden signature plus fault-list fingerprint. journal.Resume
// uses it to refuse journals recorded for a different campaign.
func (c *Controller) JournalHeader(points []FaultPoint) journal.Header {
	return journal.Header{
		GoldenSignature: c.golden.Signature,
		NumPoints:       uint64(len(points)),
		FaultListHash:   FaultListHash(points),
	}
}

// FaultListHash fingerprints the exact injection-point sequence. Plain-SEU
// points hash exactly the legacy 12 bytes (FF, cycle, duration), so every
// journal recorded before fault-model diversity still resumes; points of
// other models append an extension block carrying the model tag and its
// operands, so two fault lists differing only in model never collide.
func FaultListHash(points []FaultPoint) uint64 {
	h := fnv.New64a()
	var b [20]byte
	for _, p := range points {
		binary.LittleEndian.PutUint32(b[0:], uint32(p.FF))
		binary.LittleEndian.PutUint32(b[4:], uint32(p.Cycle))
		binary.LittleEndian.PutUint32(b[8:], uint32(p.duration()))
		if p.plainSEU() {
			h.Write(b[:12])
			continue
		}
		b[12] = uint8(p.Model)
		b[13] = 0
		if p.StuckHigh {
			b[13] = 1
		}
		binary.LittleEndian.PutUint16(b[14:], uint16(p.span()))
		binary.LittleEndian.PutUint16(b[16:], uint16(p.period()))
		binary.LittleEndian.PutUint16(b[18:], uint16(len(p.targets())))
		h.Write(b[:20])
		for _, ff := range p.targets() {
			binary.LittleEndian.PutUint32(b[0:], uint32(ff))
			h.Write(b[:4])
		}
	}
	return h.Sum64()
}

// targetsHash fingerprints a SET flip set for the fixed-width journal
// record (FNV-1a over the little-endian u32 target indices).
func targetsHash(targets []int) uint64 {
	h := sigOffset64
	for _, ff := range targets {
		for shift := 0; shift < 32; shift += 8 {
			h = (h ^ uint64(uint8(uint32(ff)>>shift))) * sigPrime64
		}
	}
	return h
}

// pointRecord builds the journal record of one classified point. Plain-SEU
// points leave the model fields zero, keeping their journal encoding
// byte-identical to the v2 format; other models stamp the record with the
// model tag and normalised operands (journal format v3).
func pointRecord(idx uint64, p FaultPoint) journal.Record {
	rec := journal.Record{Index: idx, FF: uint32(p.FF), Cycle: uint32(p.Cycle), Duration: uint32(p.duration())}
	if !p.plainSEU() {
		rec.Model = uint8(p.Model)
		rec.Span = uint16(p.span())
		rec.Period = uint16(p.period())
		rec.StuckHigh = p.StuckHigh
		if p.Model == ModelSET {
			ts := p.targets()
			rec.NumTargets = uint16(len(ts))
			rec.TargetsHash = targetsHash(ts)
		}
	}
	return rec
}

// prepareCampaign validates the configuration (shared by the sequential
// and the 64-lane batched engine) and computes the experiment timeout:
// TimeoutFactor × golden halt cycle, but always at least one cycle past
// the golden halt so a fault-free experiment can never be misclassified
// as a hang.
func (c *Controller) prepareCampaign(cfg *CampaignConfig) (timeout int, err error) {
	tf := cfg.TimeoutFactor
	if tf == 0 {
		tf = 2
	}
	switch {
	case math.IsNaN(tf):
		return 0, fmt.Errorf("hafi: TimeoutFactor is NaN")
	case tf < 0:
		return 0, fmt.Errorf("hafi: TimeoutFactor %g is negative", tf)
	case tf < 1:
		return 0, fmt.Errorf("hafi: TimeoutFactor %g < 1 would time out the golden run itself", tf)
	}
	timeout = int(tf * float64(c.golden.HaltCycle))
	if timeout <= c.golden.HaltCycle {
		timeout = c.golden.HaltCycle + 1
	}
	for i, p := range cfg.Points {
		if p.Cycle >= len(c.golden.Checkpoints) {
			return 0, fmt.Errorf("hafi: injection cycle %d beyond golden run (%d)", p.Cycle, len(c.golden.Checkpoints))
		}
		fm := Model(p.Model)
		if fm == nil {
			return 0, fmt.Errorf("hafi: point %d uses unknown fault model %d", i, p.Model)
		}
		if err := fm.Validate(c.nl, p); err != nil {
			return 0, fmt.Errorf("hafi: point %d: %w", i, err)
		}
	}
	if err := c.checkResume(cfg); err != nil {
		return 0, err
	}
	c.indexMATEs(cfg.MATESet)
	return timeout, nil
}

// checkResume verifies that recovered journal records actually describe
// this campaign: header identity and a point-for-point match between each
// record and the fault list. Any mismatch aborts — merging a foreign
// journal would fabricate results.
func (c *Controller) checkResume(cfg *CampaignConfig) error {
	if cfg.Resume == nil {
		return nil
	}
	if cfg.Resume.HasHeader {
		if want := c.JournalHeader(cfg.Points); cfg.Resume.Header != want {
			return fmt.Errorf("hafi: journal belongs to a different campaign (header %+v, want %+v)", cfg.Resume.Header, want)
		}
	}
	for idx, rec := range cfg.Resume.ByIndex {
		if idx >= uint64(len(cfg.Points)) {
			return fmt.Errorf("hafi: journal record for point %d beyond fault list (%d points)", idx, len(cfg.Points))
		}
		p := cfg.Points[idx]
		want := pointRecord(idx, p)
		if rec.FF != want.FF || rec.Cycle != want.Cycle || rec.Duration != want.Duration {
			return fmt.Errorf("hafi: journal record %d (ff=%d cycle=%d dur=%d) does not match fault list point (ff=%d cycle=%d dur=%d)",
				idx, rec.FF, rec.Cycle, rec.Duration, p.FF, p.Cycle, p.duration())
		}
		if rec.Model != want.Model || rec.Span != want.Span || rec.Period != want.Period ||
			rec.StuckHigh != want.StuckHigh || rec.NumTargets != want.NumTargets || rec.TargetsHash != want.TargetsHash {
			return fmt.Errorf("hafi: journal record %d (model=%s span=%d period=%d) does not match fault list point (model=%s span=%d period=%d)",
				idx, ModelID(rec.Model), rec.Span, rec.Period, p.Model, want.Span, want.Period)
		}
	}
	return nil
}

// progress fans the per-point Progress callback out of the worker shards.
type progressCounter struct {
	fn func(int)
	n  atomic.Int64
}

func newProgress(fn func(int)) *progressCounter {
	return &progressCounter{fn: fn}
}

func (pc *progressCounter) bump() {
	n := pc.n.Add(1)
	if pc.fn != nil {
		pc.fn(int(n))
	}
}

// RunCampaign executes the configured campaign and returns the aggregated
// result.
func (c *Controller) RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	timeout, err := c.prepareCampaign(&cfg)
	if err != nil {
		return nil, err
	}
	sp := cfg.Obs.StartSpan("campaign")
	defer sp.End()
	met := newCampaignMetrics(cfg.Obs, len(cfg.Points))
	if cfg.Workers > 1 && c.factory != nil {
		return c.runParallel(cfg, timeout, met)
	}
	met.setWorkers(1)
	met.workerBusy(1)
	res := newCampaignResult()
	err = c.runShard(cfg, 0, cfg.Points, c.run, timeout, res, newProgress(cfg.Progress), met)
	met.workerBusy(-1)
	if err != nil {
		return nil, err
	}
	res.Interrupted = cfg.context().Err() != nil
	return res, nil
}

// runShard executes one slice of the fault list on one device instance.
// base is the slice's offset in the campaign fault list (journal records
// are keyed by global point index).
func (c *Controller) runShard(cfg CampaignConfig, base int, points []FaultPoint, run Run, timeout int, res *CampaignResult, prog *progressCounter, met *campaignMetrics) error {
	ctx := cfg.context()
	early := !cfg.DisableEarlyExit
	// converged credits one early-exited execution (validation re-runs of
	// pruned points included: the statistic counts executions, and staying
	// engine-independent requires crediting every one).
	converged := func(saved int) {
		if saved > 0 {
			res.Converged++
			res.CyclesSaved += int64(saved)
			met.convergedN(1, int64(saved))
		}
	}
	for i, p := range points {
		idx := uint64(base + i)
		if cfg.Resume != nil {
			if rec, ok := cfg.Resume.ByIndex[idx]; ok {
				res.replay(rec, replayHit(cfg.Resume, idx))
				met.replay()
				continue
			}
		}
		if ctx.Err() != nil {
			return nil // graceful drain: stop starting new experiments
		}
		rec := pointRecord(idx, p)
		res.Total++
		var hit *journal.MATEHit
		mate, pruned := -1, false
		if cfg.MATESet != nil {
			mate, pruned = c.provedBenign(p)
		}
		if pruned {
			res.Skipped++
			res.PrunedByMATE[mate]++
			rec.Pruned = true
			width := len(cfg.MATESet.MATEs[mate].Literals)
			hit = &journal.MATEHit{Index: idx, FF: uint32(p.FF), MATE: uint32(mate), Width: uint16(width)}
			met.matePruned(mate, width)
			if cfg.ValidateSkipped {
				out, saved := c.safeExecute(&run, p, timeout, early)
				converged(saved)
				if out != OutcomeBenign {
					res.SkippedWrong++
					rec.SkippedWrong = true
				}
			}
		} else {
			out, saved := c.safeExecute(&run, p, timeout, early)
			converged(saved)
			res.Executed++
			res.ByOutcome[out]++
			rec.Outcome = uint8(out)
		}
		if cfg.Journal != nil {
			// The attribution hit lands before the experiment record: a crash
			// between the two leaves an orphan hit (ignored on recovery),
			// never a pruned point without attribution.
			if hit != nil {
				if err := cfg.Journal.AppendMATEHit(*hit); err != nil {
					return err
				}
			}
			if err := cfg.Journal.Append(rec); err != nil {
				return err
			}
		}
		met.point(rec)
		prog.bump()
	}
	return nil
}

// safeExecute runs one experiment with panic isolation: a panicking device
// model yields OutcomeHarnessError instead of killing the worker shard,
// and the (possibly corrupted) instance is replaced from the pool factory
// so subsequent experiments start from a healthy device.
func (c *Controller) safeExecute(run *Run, p FaultPoint, timeout int, early bool) (out Outcome, saved int) {
	defer func() {
		if r := recover(); r != nil {
			out, saved = OutcomeHarnessError, 0
			if c.factory != nil {
				*run = c.factory()
			}
		}
	}()
	return c.execute(*run, p, timeout, early)
}

// runParallel shards the fault list over Workers device instances.
func (c *Controller) runParallel(cfg CampaignConfig, timeout int, met *campaignMetrics) (*CampaignResult, error) {
	nw := cfg.Workers
	if nw > len(cfg.Points) {
		nw = len(cfg.Points)
	}
	met.setWorkers(nw)
	partials := make([]*CampaignResult, nw)
	errs := make([]error, nw)
	prog := newProgress(cfg.Progress)
	var wg sync.WaitGroup
	chunk := (len(cfg.Points) + nw - 1) / nw
	for i := 0; i < nw; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > len(cfg.Points) {
			hi = len(cfg.Points)
		}
		if lo >= hi {
			continue
		}
		partials[i] = newCampaignResult()
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			// Shard-level backstop: a panic outside the per-experiment
			// isolation (device construction, MATE evaluation) surfaces as
			// an error instead of crashing the campaign.
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("hafi: worker shard %d panicked: %v", i, r)
				}
			}()
			met.workerBusy(1)
			defer met.workerBusy(-1)
			errs[i] = c.runShard(cfg, lo, cfg.Points[lo:hi], c.factory(), timeout, partials[i], prog, met)
		}(i, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := newCampaignResult()
	for _, p := range partials {
		if p != nil {
			res.merge(p)
		}
	}
	res.Interrupted = cfg.context().Err() != nil
	return res, nil
}

// indexMATEs builds the per-wire MATE index used by provedBenign. Walking
// set.MATEs in order keeps every per-wire slice sorted by set index, which
// makes the "fired first" attribution rule deterministic.
func (c *Controller) indexMATEs(set *core.MATESet) {
	c.matesByWire = map[netlist.WireID][]indexedMATE{}
	if set == nil {
		return
	}
	for i, m := range set.MATEs {
		for _, w := range m.Masks {
			c.matesByWire[w] = append(c.matesByWire[w], indexedMATE{m: m, idx: i})
		}
	}
}

// provedBenign evaluates the MATEs covering the fault wire on the golden
// trace — the per-cycle online check a MATE-enabled HAFI platform
// implements in logic. A multi-cycle upset is provably benign when some
// covering MATE triggers in *every* cycle it holds: each cycle starts from
// the golden state (inductively, because the previous cycle was masked) and
// the triggered MATE masks that cycle's inversion too.
//
// The argument covers exactly one fault shape: a single flip-flop inverted
// for a contiguous run of cycles. Points of other models are therefore only
// prunable when they degenerate to that shape (FaultModel.SEUEquivalent):
// a span-1 MBU, a single-target SET, an intermittent window holding at most
// one flip. Multi-flip sets, periodic re-flips from re-diverged state and
// data-dependent stuck-at forces return ok=false unconditionally — those
// faults always execute.
//
// When the point is proven benign, mate is the set index of the MATE that
// fired first: the lowest-index MATE triggering on the upset's first cycle.
// Each pruned point is credited to exactly one MATE, so the per-MATE credits
// of a campaign sum exactly to its skipped-point count.
func (c *Controller) provedBenign(p FaultPoint) (mate int, ok bool) {
	ff, dur, ok := Model(p.Model).SEUEquivalent(p)
	if !ok {
		return 0, false
	}
	q := c.nl.FFs[ff].Q
	credit := -1
	for cyc := p.Cycle; cyc < p.Cycle+dur; cyc++ {
		if cyc >= c.golden.Trace.NumCycles() {
			return 0, false
		}
		masked := false
		for _, im := range c.matesByWire[q] {
			if im.m.EvalTrace(c.golden.Trace, cyc) {
				masked = true
				if credit < 0 {
					credit = im.idx
				}
				break
			}
		}
		if !masked {
			return 0, false
		}
	}
	return credit, true
}

// execute restores the checkpoint, injects the fault and runs the workload
// to completion or timeout on the given device instance. The fault model
// decides what changes on which cycle: its Inject is called at the
// injection cycle and then at the beginning of every further non-halted
// cycle of its active window (for an SEU that re-inverts the held
// flip-flop, byte for byte the behavior before fault models existed).
//
// With early set, the controller applies the convergence early-exit: once
// the fault's active window is over, a cycle whose flip-flop state equals
// the golden reference AND whose memory write digest equals the golden
// digest proves the remaining execution identical to the fault-free run
// (the two-pass Settle contract makes the environment a function of
// FF-registered wires only, so FF state + external memory determine the
// future). The experiment is then classified benign without simulating the
// remaining cycles; saved reports how many were skipped (0 for a full
// run). The classification is exactly the one a full run would produce.
func (c *Controller) execute(run Run, p FaultPoint, timeout int, early bool) (out Outcome, saved int) {
	run.Restore(c.golden.Checkpoints[p.Cycle])
	fm := Model(p.Model)
	ffs := &machineFFs{run.Machine()}
	fm.Inject(ffs, p, p.Cycle)
	holdEnd := fm.ActiveEnd(p)
	digests := c.golden.MemDigests
	for cyc := p.Cycle; cyc < timeout; cyc++ {
		if cyc > p.Cycle && cyc < holdEnd && !run.Halted() {
			fm.Inject(ffs, p, cyc)
		}
		if run.Halted() {
			if run.Signature() == c.golden.Signature {
				return OutcomeBenign, 0
			}
			return OutcomeSDC, 0
		}
		if early && cyc >= holdEnd && cyc < len(digests) &&
			run.MemDigest() == digests[cyc] && c.ffConverged(run.Machine(), cyc) {
			return OutcomeBenign, c.golden.HaltCycle - cyc
		}
		run.Step()
	}
	if run.Halted() && run.Signature() == c.golden.Signature {
		return OutcomeBenign, 0
	}
	if run.Halted() {
		return OutcomeSDC, 0
	}
	return OutcomeHang, 0
}

// ffConverged reports whether the machine's stored flip-flop state equals
// the golden reference at the start of cycle cyc. Trace rows record the
// settled wires of a cycle, and Q wires are not driven by combinational
// gates, so row cyc's Q bits are exactly the FF state at the start of
// cycle cyc — matching the loop position of the caller.
func (c *Controller) ffConverged(m *sim.Machine, cyc int) bool {
	row := c.golden.Trace.Row(cyc)
	v := m.Values()
	for _, q := range c.ffQ {
		if v[q] != (row[q>>6]>>(uint(q)&63)&1 == 1) {
			return false
		}
	}
	return true
}

// FullFaultList enumerates every (FF, cycle) point up to maxCycle.
func FullFaultList(nl *netlist.Netlist, maxCycle int) []FaultPoint {
	var out []FaultPoint
	for cyc := 0; cyc < maxCycle; cyc++ {
		for ff := range nl.FFs {
			out = append(out, FaultPoint{FF: ff, Cycle: cyc})
		}
	}
	return out
}

// SampledFaultList enumerates every FF at every strideth cycle — the
// sampling a campaign planner would apply when the full space is too
// large. It is ModelFaultList for the SEU model; the group exclusion is
// the shared model-aware filter (a point is excluded when any flip-flop it
// upsets is in an excluded group).
func SampledFaultList(nl *netlist.Netlist, maxCycle, stride int, excludeGroups ...string) []FaultPoint {
	return ModelFaultList(nl, maxCycle, stride, ModelSpec{Model: ModelSEU}, excludeGroups...)
}

// FNV-1a parameters of the signature stream (identical to hash/fnv, inlined
// so the per-experiment signature computation allocates nothing).
const (
	sigOffset64 uint64 = 0xcbf29ce484222325
	sigPrime64  uint64 = 1099511628211
)

// SignatureHash hashes a byte stream into the result signature format
// (FNV-1a, byte for byte what hash/fnv.New64a produces — but without the
// heap-allocated hasher, as this runs once per executed experiment).
func SignatureHash(parts ...[]byte) uint64 {
	h := sigOffset64
	for _, p := range parts {
		for _, b := range p {
			h = (h ^ uint64(b)) * sigPrime64
		}
	}
	return h
}
