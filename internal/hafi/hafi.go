// Package hafi models a hardware-assisted fault-injection (HAFI) platform
// in software. Real HAFI systems (Entrena et al., FLINT, ...) instrument a
// netlist with injection logic, emulate it on an FPGA, and run complete
// fault-injection experiments online; the paper integrates MATE evaluation
// into such a platform to skip provably benign injections before they are
// executed.
//
// This package reproduces that flow against the gate-level simulator:
//
//   - a golden run records per-cycle checkpoints (flip-flop state plus
//     external memory) and the fault-free result signature,
//   - the campaign controller walks the (flip-flop × cycle) fault list,
//     restores the checkpoint, flips the target bit, runs the workload to
//     completion and classifies the outcome (benign / silent data
//     corruption / hang),
//   - with a MATE set attached, the controller evaluates the MATEs on the
//     golden trace for each injection point first and skips those proven
//     benign — the paper's online fault-space pruning,
//   - lut.go provides the FPGA cost model of Section 6.1 (6-input LUTs per
//     MATE versus the 1.5k–6k LUTs of published FI controllers).
package hafi

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Run is one executable instance of the device under test: the emulated
// netlist plus its external memories. A fresh Run starts at reset.
type Run interface {
	// Machine exposes the simulated netlist state.
	Machine() *sim.Machine
	// Step advances one clock cycle (including memory traffic).
	Step()
	// Halted reports whether the workload finished.
	Halted() bool
	// Checkpoint captures flip-flop state, primary inputs and memories.
	Checkpoint() Checkpoint
	// Restore rewinds to a previous checkpoint.
	Restore(Checkpoint)
	// Signature condenses the externally visible result (output port and
	// data memory) into a comparable hash.
	Signature() uint64
}

// Checkpoint is an opaque snapshot of a Run.
type Checkpoint interface{}

// Outcome classifies one fault-injection experiment.
type Outcome int

// Experiment outcomes. OutcomeBenign: the workload finished with the
// fault-free result. OutcomeSDC: it finished with a wrong result (silent
// data corruption). OutcomeHang: it did not finish within the timeout.
const (
	OutcomeBenign Outcome = iota
	OutcomeSDC
	OutcomeHang
)

func (o Outcome) String() string {
	switch o {
	case OutcomeBenign:
		return "benign"
	case OutcomeSDC:
		return "sdc"
	case OutcomeHang:
		return "hang"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Golden is the fault-free reference execution: per-cycle checkpoints for
// fast experiment setup, the full wire trace for MATE evaluation, the halt
// cycle and the result signature.
type Golden struct {
	Checkpoints []Checkpoint
	Trace       *sim.Trace
	HaltCycle   int
	Signature   uint64
}

// RecordGolden runs the workload to completion (bounded by maxCycles),
// checkpointing every cycle and recording the full wire trace.
func RecordGolden(r Run, maxCycles int) (*Golden, error) {
	g := &Golden{Trace: sim.NewTrace(r.Machine().NL.NumWires())}
	for cyc := 0; cyc < maxCycles; cyc++ {
		if r.Halted() {
			g.HaltCycle = cyc
			g.Signature = r.Signature()
			return g, nil
		}
		g.Checkpoints = append(g.Checkpoints, r.Checkpoint())
		r.Machine().Settle(envOf(r))
		g.Trace.Append(r.Machine().Values())
		r.Machine().CommitFFs()
		stepEpilogue(r)
	}
	return nil, fmt.Errorf("hafi: golden run did not halt within %d cycles", maxCycles)
}

// envOf and stepEpilogue let RecordGolden drive the machine manually while
// still recording wire values mid-cycle. Run implementations provide them
// via the optional tracer interface; the default falls back to Step (no
// wire trace).
type tracer interface {
	TraceEnv() sim.Env
	AfterStep()
}

func envOf(r Run) sim.Env {
	if t, ok := r.(tracer); ok {
		return t.TraceEnv()
	}
	return sim.NopEnv
}

func stepEpilogue(r Run) {
	if t, ok := r.(tracer); ok {
		t.AfterStep()
	}
}

// FaultPoint identifies one injection: invert the stored value of
// flip-flop FF at the beginning of cycle Cycle. Duration generalises the
// fault model to upsets that hold for several cycles (paper Section 6.2:
// "our approach works out of the box also with upsets that hold more than
// one cycle"): the flip-flop is re-inverted at the beginning of each of
// the Duration cycles. Zero means 1 (a classic SEU).
type FaultPoint struct {
	FF       int
	Cycle    int
	Duration int
}

func (p FaultPoint) duration() int {
	if p.Duration <= 0 {
		return 1
	}
	return p.Duration
}

// CampaignConfig parameterises a fault-injection campaign.
type CampaignConfig struct {
	// Points is the fault list (already sampled/sliced by the caller).
	Points []FaultPoint
	// Workers shards the experiments over this many device instances
	// (requires a controller created with NewControllerPool). 0 or 1 runs
	// sequentially.
	Workers int
	// TimeoutFactor bounds experiment length: an experiment hangs when it
	// exceeds TimeoutFactor × golden halt cycle. Default 2.
	TimeoutFactor float64
	// MATESet enables online pruning: injections whose (wire, cycle) point
	// a triggered MATE proves benign are skipped without execution.
	MATESet *core.MATESet
	// ValidateSkipped additionally executes every skipped experiment and
	// verifies it really is benign (used by the test suite; defeats the
	// purpose of pruning in production).
	ValidateSkipped bool
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Total     int
	Skipped   int // pruned by MATEs without execution
	Executed  int
	ByOutcome map[Outcome]int
	// SkippedWrong counts validated-skipped experiments that were NOT
	// benign — any nonzero value is a MATE soundness violation.
	SkippedWrong int
}

// PrunedFraction returns the share of fault-list points the MATEs removed.
func (r *CampaignResult) PrunedFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Skipped) / float64(r.Total)
}

// Controller is the campaign controller: the software model of the FI
// control unit that HAFI platforms realise as a soft core or dedicated FSM
// on the FPGA.
type Controller struct {
	nl      *netlist.Netlist
	run     Run
	factory func() Run
	golden  *Golden
	// matesByWire indexes the MATE set: for each fault wire, the MATEs
	// that can prove it benign.
	matesByWire map[netlist.WireID][]*core.MATE
}

// NewController prepares a controller for the given device instance and
// golden reference.
func NewController(run Run, golden *Golden) *Controller {
	return &Controller{nl: run.Machine().NL, run: run, golden: golden}
}

// NewControllerPool prepares a controller that can shard experiments over
// several device instances (one per worker); the factory must produce runs
// of the same netlist and workload the golden reference was recorded from —
// the paper's scenario of "one FI controller distributing the FI campaign
// over several FPGAs".
func NewControllerPool(factory func() Run, golden *Golden) *Controller {
	run := factory()
	return &Controller{nl: run.Machine().NL, run: run, factory: factory, golden: golden}
}

// RunCampaign executes the configured campaign and returns the aggregated
// result.
func (c *Controller) RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	if cfg.TimeoutFactor <= 0 {
		cfg.TimeoutFactor = 2
	}
	timeout := int(cfg.TimeoutFactor * float64(c.golden.HaltCycle))
	if timeout <= c.golden.HaltCycle {
		timeout = c.golden.HaltCycle + 1
	}

	c.indexMATEs(cfg.MATESet)

	for _, p := range cfg.Points {
		if p.Cycle >= len(c.golden.Checkpoints) {
			return nil, fmt.Errorf("hafi: injection cycle %d beyond golden run (%d)", p.Cycle, len(c.golden.Checkpoints))
		}
	}

	if cfg.Workers > 1 && c.factory != nil {
		return c.runParallel(cfg, timeout), nil
	}
	res := &CampaignResult{ByOutcome: map[Outcome]int{}}
	c.runShard(cfg, cfg.Points, c.run, timeout, res)
	return res, nil
}

// runShard executes one slice of the fault list on one device instance.
func (c *Controller) runShard(cfg CampaignConfig, points []FaultPoint, run Run, timeout int, res *CampaignResult) {
	for _, p := range points {
		res.Total++
		if cfg.MATESet != nil && c.provedBenign(p) {
			res.Skipped++
			if cfg.ValidateSkipped {
				if out := c.execute(run, p, timeout); out != OutcomeBenign {
					res.SkippedWrong++
				}
			}
			continue
		}
		res.Executed++
		res.ByOutcome[c.execute(run, p, timeout)]++
	}
}

// runParallel shards the fault list over Workers device instances.
func (c *Controller) runParallel(cfg CampaignConfig, timeout int) *CampaignResult {
	nw := cfg.Workers
	if nw > len(cfg.Points) {
		nw = len(cfg.Points)
	}
	partials := make([]*CampaignResult, nw)
	var wg sync.WaitGroup
	chunk := (len(cfg.Points) + nw - 1) / nw
	for i := 0; i < nw; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > len(cfg.Points) {
			hi = len(cfg.Points)
		}
		if lo >= hi {
			continue
		}
		partials[i] = &CampaignResult{ByOutcome: map[Outcome]int{}}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			c.runShard(cfg, cfg.Points[lo:hi], c.factory(), timeout, partials[i])
		}(i, lo, hi)
	}
	wg.Wait()
	res := &CampaignResult{ByOutcome: map[Outcome]int{}}
	for _, p := range partials {
		if p == nil {
			continue
		}
		res.Total += p.Total
		res.Skipped += p.Skipped
		res.Executed += p.Executed
		res.SkippedWrong += p.SkippedWrong
		for o, n := range p.ByOutcome {
			res.ByOutcome[o] += n
		}
	}
	return res
}

// indexMATEs builds the per-wire MATE index used by provedBenign.
func (c *Controller) indexMATEs(set *core.MATESet) {
	c.matesByWire = map[netlist.WireID][]*core.MATE{}
	if set == nil {
		return
	}
	for _, m := range set.MATEs {
		for _, w := range m.Masks {
			c.matesByWire[w] = append(c.matesByWire[w], m)
		}
	}
}

// provedBenign evaluates the MATEs covering the fault wire on the golden
// trace — the per-cycle online check a MATE-enabled HAFI platform
// implements in logic. A multi-cycle upset is provably benign when some
// covering MATE triggers in *every* cycle it holds: each cycle starts from
// the golden state (inductively, because the previous cycle was masked) and
// the triggered MATE masks that cycle's inversion too.
func (c *Controller) provedBenign(p FaultPoint) bool {
	q := c.nl.FFs[p.FF].Q
	for cyc := p.Cycle; cyc < p.Cycle+p.duration(); cyc++ {
		if cyc >= c.golden.Trace.NumCycles() {
			return false
		}
		masked := false
		for _, m := range c.matesByWire[q] {
			if m.EvalTrace(c.golden.Trace, cyc) {
				masked = true
				break
			}
		}
		if !masked {
			return false
		}
	}
	return true
}

// execute restores the checkpoint, injects the upset and runs the workload
// to completion or timeout on the given device instance. For multi-cycle
// upsets the flip-flop is re-inverted at the beginning of every held
// cycle.
func (c *Controller) execute(run Run, p FaultPoint, timeout int) Outcome {
	run.Restore(c.golden.Checkpoints[p.Cycle])
	run.Machine().FlipFF(p.FF)
	for cyc := p.Cycle; cyc < timeout; cyc++ {
		if cyc > p.Cycle && cyc < p.Cycle+p.duration() && !run.Halted() {
			run.Machine().FlipFF(p.FF)
		}
		if run.Halted() {
			if run.Signature() == c.golden.Signature {
				return OutcomeBenign
			}
			return OutcomeSDC
		}
		run.Step()
	}
	if run.Halted() && run.Signature() == c.golden.Signature {
		return OutcomeBenign
	}
	if run.Halted() {
		return OutcomeSDC
	}
	return OutcomeHang
}

// FullFaultList enumerates every (FF, cycle) point up to maxCycle.
func FullFaultList(nl *netlist.Netlist, maxCycle int) []FaultPoint {
	var out []FaultPoint
	for cyc := 0; cyc < maxCycle; cyc++ {
		for ff := range nl.FFs {
			out = append(out, FaultPoint{FF: ff, Cycle: cyc})
		}
	}
	return out
}

// SampledFaultList enumerates every FF at every strideth cycle — the
// sampling a campaign planner would apply when the full space is too
// large.
func SampledFaultList(nl *netlist.Netlist, maxCycle, stride int, excludeGroups ...string) []FaultPoint {
	skip := map[string]bool{}
	for _, g := range excludeGroups {
		skip[g] = true
	}
	var out []FaultPoint
	for cyc := 0; cyc < maxCycle; cyc += stride {
		for ff := range nl.FFs {
			if !skip[nl.FFs[ff].Group] {
				out = append(out, FaultPoint{FF: ff, Cycle: cyc})
			}
		}
	}
	return out
}

// SignatureHash hashes a byte stream into the result signature format.
func SignatureHash(parts ...[]byte) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write(p)
	}
	return h.Sum64()
}
