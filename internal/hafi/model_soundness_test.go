package hafi

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/synth"
)

// randomCampaignNetlist grows a seeded random datapath (like the core
// property suite) wrapped in a halting harness: a cycle counter raises a
// sticky halt flag after a seed-dependent number of cycles, and the inputs
// follow a precomputed schedule so checkpoint restore replays them exactly.
// Returns the netlist and a factory for fresh reset-state runs.
func randomCampaignNetlist(t *testing.T, seed int64) (*netlist.Netlist, func() *NetlistRun) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(fmt.Sprintf("model-sound-%d", seed))
	c := synth.New(b)
	width := 2 + rng.Intn(3)
	a := c.InputBus("a", width)
	d := c.InputBus("b", width)
	state := c.RegisterPlaceholder("acc", width, uint64(rng.Intn(1<<width)), "data")

	buses := []synth.Bus{a, d, state}
	for i, n := 0, 3+rng.Intn(5); i < n; i++ {
		x := buses[rng.Intn(len(buses))]
		y := buses[rng.Intn(len(buses))]
		var out synth.Bus
		switch rng.Intn(6) {
		case 0:
			out = c.And(x, y)
		case 1:
			out = c.Or(x, y)
		case 2:
			out = c.Xor(x, y)
		case 3:
			out = c.Not(x)
		case 4:
			out = c.Adder(x, y, c.B.Const(false)).Sum
		case 5:
			out = c.Mux2(c.Equal(x, y), x, y)
		}
		buses = append(buses, out)
	}
	c.ConnectRegisterAlways(state, buses[len(buses)-1])
	c.OutputBus(buses[rng.Intn(len(buses))])

	cnt := c.RegisterPlaceholder("cnt", 6, 0, "ctrl")
	c.ConnectRegisterAlways(cnt, c.Inc(cnt).Sum)
	haltNow := c.EqualConst(cnt, uint64(18+rng.Intn(10)))
	hlt := c.RegisterPlaceholder("halt", 1, 0, "ctrl")
	c.ConnectRegisterAlways(hlt, synth.Bus{b.Gate(cell.OR2, hlt[0], haltNow)})
	b.MarkOutput(hlt[0])
	nl := b.MustNetlist()

	const maxCycles = 256
	sched := make([][]bool, maxCycles)
	for cyc := range sched {
		row := make([]bool, len(nl.Inputs))
		for i := range row {
			row[i] = rng.Intn(2) == 1
		}
		sched[cyc] = row
	}
	mk := func() *NetlistRun {
		return NewNetlistRun(nl, hlt[0], func(cycle int, m *sim.Machine) {
			if cycle >= len(sched) {
				cycle = len(sched) - 1
			}
			for i, w := range nl.Inputs {
				m.SetValue(w, sched[cycle][i])
			}
		})
	}
	return nl, mk
}

// injectIndependent classifies one fault point by full-machine injection,
// sharing no code with the campaign controller or the FaultModel registry:
// a fresh run is stepped from reset to the injection cycle, the model's
// semantics are re-implemented inline, and the outcome is read off the halt
// flag and result signature. This is the oracle the campaign's verdicts —
// pruned, early-exited or fully executed — are checked against.
func injectIndependent(nl *netlist.Netlist, mk func() *NetlistRun, golden *Golden, p FaultPoint, timeout int) Outcome {
	run := mk()
	for i := 0; i < p.Cycle; i++ {
		run.Step()
	}
	m := run.Machine()
	span, period, dur := p.Span, p.Period, p.Duration
	if span < 1 {
		span = 1
	}
	if period < 1 {
		period = 1
	}
	if dur < 1 {
		dur = 1
	}
	end := p.Cycle + dur
	if p.Model == ModelSET {
		end = p.Cycle + 1
	}
	upset := func(cyc int) {
		switch p.Model {
		case ModelSEU:
			m.FlipFF(p.FF)
		case ModelMBU:
			for ff := p.FF; ff < p.FF+span; ff++ {
				m.FlipFF(ff)
			}
		case ModelSET:
			if cyc == p.Cycle {
				ts := p.Targets
				if len(ts) == 0 {
					ts = []int{p.FF}
				}
				for _, ff := range ts {
					m.FlipFF(ff)
				}
			}
		case ModelIntermittent:
			if (cyc-p.Cycle)%period == 0 {
				m.FlipFF(p.FF)
			}
		case ModelStuckAt:
			if m.Value(nl.FFs[p.FF].Q) != p.StuckHigh {
				m.FlipFF(p.FF)
			}
		}
	}
	classify := func() Outcome {
		if run.Signature() == golden.Signature {
			return OutcomeBenign
		}
		return OutcomeSDC
	}
	for cyc := p.Cycle; cyc < timeout; cyc++ {
		if cyc == p.Cycle || (cyc < end && !run.Halted()) {
			upset(cyc)
		}
		if run.Halted() {
			return classify()
		}
		run.Step()
	}
	if run.Halted() {
		return classify()
	}
	return OutcomeHang
}

// TestModelSoundnessRandomNetlists is the property-based per-model soundness
// suite: on 12 seeded random netlists, run a pruning + early-exit campaign
// under every fault model, journal it, and re-verify every journaled verdict
// by independent full-machine injection. Additionally asserts the pruning
// boundary: only SEU-equivalent degenerate shapes may ever be pruned, so
// multi-flip MBUs and data-dependent stuck-at points always execute.
func TestModelSoundnessRandomNetlists(t *testing.T) {
	specs := []ModelSpec{
		{Model: ModelSEU},
		{Model: ModelMBU, Span: 2},
		{Model: ModelSET},
		{Model: ModelIntermittent, Period: 2, Window: 6},
		{Model: ModelStuckAt, Window: 3, StuckHigh: true},
	}
	var prunedSEU, verified int
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			nl, mk := randomCampaignNetlist(t, seed)
			golden, err := RecordGolden(mk(), 1024)
			if err != nil {
				t.Fatal(err)
			}
			set := core.Search(nl, nl.FFQWires(), core.DefaultSearchParams()).Set
			// The campaign's hang verdict is a policy cutoff (default
			// TimeoutFactor 2 × golden halt); the oracle must apply the
			// identical cutoff or a fault that merely delays the halt past
			// the timeout would read as a disagreement.
			timeout := 2 * golden.HaltCycle
			if timeout <= golden.HaltCycle {
				timeout = golden.HaltCycle + 1
			}

			for _, spec := range specs {
				spec := spec
				t.Run(spec.String(), func(t *testing.T) {
					points := ModelFaultList(nl, golden.HaltCycle, 2, spec)
					if len(points) == 0 {
						t.Skip("model enumerates no points on this netlist")
					}
					ctl := NewController(mk(), golden)
					path := filepath.Join(t.TempDir(), "campaign.journal")
					jw, err := journal.Create(path, ctl.JournalHeader(points))
					if err != nil {
						t.Fatal(err)
					}
					res, err := ctl.RunCampaign(CampaignConfig{Points: points, MATESet: set, Journal: jw})
					if err != nil {
						t.Fatal(err)
					}
					if err := jw.Close(); err != nil {
						t.Fatal(err)
					}
					rec, err := journal.Recover(path)
					if err != nil {
						t.Fatal(err)
					}
					if len(rec.ByIndex) != len(points) {
						t.Fatalf("journal has %d records for %d points", len(rec.ByIndex), len(points))
					}

					switch spec.Model {
					case ModelSEU:
						prunedSEU += res.Skipped
					case ModelMBU, ModelStuckAt:
						// Span-2 bursts and data-dependent stuck-at forces are
						// never SEU-equivalent: pruning one is unsound by
						// construction.
						if res.Skipped != 0 {
							t.Fatalf("%d %s points pruned; the MATE argument does not cover them", res.Skipped, spec)
						}
					}

					for idx, r := range rec.ByIndex {
						p := points[idx]
						if r.Pruned {
							if _, _, ok := Model(p.Model).SEUEquivalent(p); !ok {
								t.Errorf("point %d (%s) pruned but not SEU-equivalent", idx, p.Model)
							}
						}
						want := injectIndependent(nl, mk, golden, p, timeout)
						verified++
						if r.Pruned {
							if want != OutcomeBenign {
								t.Errorf("point %d (%s ff=%d cycle=%d) pruned but independent injection says %s",
									idx, p.Model, p.FF, p.Cycle, want)
							}
							continue
						}
						if got := Outcome(r.Outcome); got != want {
							t.Errorf("point %d (%s ff=%d cycle=%d): campaign %s, independent injection %s",
								idx, p.Model, p.FF, p.Cycle, got, want)
						}
					}
				})
			}
		})
	}
	if prunedSEU == 0 {
		t.Error("no SEU point pruned across any seed — the positive pruning case is untested")
	}
	if testing.Verbose() {
		t.Logf("independently verified %d journaled verdicts, %d SEU points pruned", verified, prunedSEU)
	}
}
