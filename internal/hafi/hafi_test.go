package hafi

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/synth"
)

// smallAVRProgram is a short self-checking workload: it computes a value,
// stores it, and emits a checksum on the port before halting.
const smallAVRProgram = `
    ldi r1, 5
    ldi r2, 0
loop:
    add r2, r1
    dec r1
    brne loop
    ldi r3, 16
    st (r3), r2
    out r2
    halt
`

func goldenAVR(t testing.TB) (*avr.Core, []uint16, *Golden, Run) {
	t.Helper()
	c := avr.NewCore()
	prog := avr.MustAssemble(smallAVRProgram)
	r := NewAVRRun(c, prog)
	g, err := RecordGolden(r, 10000)
	if err != nil {
		t.Fatal(err)
	}
	return c, prog, g, r
}

func TestRecordGolden(t *testing.T) {
	_, _, g, r := goldenAVR(t)
	if g.HaltCycle <= 0 {
		t.Fatal("no halt cycle")
	}
	if len(g.Checkpoints) != g.HaltCycle {
		t.Fatalf("checkpoints %d != halt cycle %d", len(g.Checkpoints), g.HaltCycle)
	}
	if g.Trace.NumCycles() != g.HaltCycle {
		t.Fatalf("trace %d cycles", g.Trace.NumCycles())
	}
	if !r.Halted() {
		t.Fatal("run not halted after golden recording")
	}
	if g.Signature == 0 {
		t.Fatal("empty signature")
	}
}

func TestRecordGoldenNonHaltingFails(t *testing.T) {
	c := avr.NewCore()
	r := NewAVRRun(c, avr.MustAssemble("loop: rjmp loop"))
	if _, err := RecordGolden(r, 100); err == nil {
		t.Fatal("expected error for non-halting workload")
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	c := avr.NewCore()
	prog := avr.MustAssemble(smallAVRProgram)
	r := NewAVRRun(c, prog)
	g, err := RecordGolden(r, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Restore to the middle, re-run to completion, expect the same result.
	mid := g.HaltCycle / 2
	r.Restore(g.Checkpoints[mid])
	for i := 0; i < 10000 && !r.Halted(); i++ {
		r.Step()
	}
	if !r.Halted() {
		t.Fatal("restored run did not halt")
	}
	if r.Signature() != g.Signature {
		t.Fatal("restored run diverged from golden result")
	}
}

func TestCampaignWithoutPruning(t *testing.T) {
	c, _, g, r := goldenAVR(t)
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 7)
	res, err := ctl.RunCampaign(CampaignConfig{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != len(points) || res.Executed != res.Total || res.Skipped != 0 {
		t.Fatalf("campaign accounting wrong: %+v", res)
	}
	if res.ByOutcome[OutcomeBenign] == 0 {
		t.Error("expected some benign outcomes")
	}
	if res.ByOutcome[OutcomeSDC]+res.ByOutcome[OutcomeHang] == 0 {
		t.Error("expected some effective faults (SDC or hang)")
	}
	sum := 0
	for _, n := range res.ByOutcome {
		sum += n
	}
	if sum != res.Executed {
		t.Errorf("outcomes %d != executed %d", sum, res.Executed)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	c, _, g, r := goldenAVR(t)
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 13)
	a, err := ctl.RunCampaign(CampaignConfig{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	bres, err := ctl.RunCampaign(CampaignConfig{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	if a.Executed != bres.Executed || a.ByOutcome[OutcomeSDC] != bres.ByOutcome[OutcomeSDC] ||
		a.ByOutcome[OutcomeBenign] != bres.ByOutcome[OutcomeBenign] {
		t.Fatalf("campaign not deterministic: %+v vs %+v", a, bres)
	}
}

// TestCampaignMATEPruningSound is the system-level soundness experiment:
// every injection skipped by a MATE must be benign when actually executed.
func TestCampaignMATEPruningSound(t *testing.T) {
	c, _, g, r := goldenAVR(t)
	set := core.Search(c.NL, c.NL.FFQWires(), core.DefaultSearchParams()).Set
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 5)
	res, err := ctl.RunCampaign(CampaignConfig{
		Points:          points,
		MATESet:         set,
		ValidateSkipped: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped == 0 {
		t.Fatal("MATEs pruned nothing — expected online pruning to fire")
	}
	if res.SkippedWrong != 0 {
		t.Fatalf("%d of %d skipped injections were NOT benign: MATE soundness violated",
			res.SkippedWrong, res.Skipped)
	}
	if res.Executed+res.Skipped != res.Total {
		t.Fatalf("accounting: %+v", res)
	}
	t.Logf("campaign: %d points, %d pruned (%.1f%%), outcomes %v",
		res.Total, res.Skipped, 100*res.PrunedFraction(), res.ByOutcome)
}

func TestCampaignMSP430PruningSound(t *testing.T) {
	c := msp430.NewCore()
	prog := msp430.MustAssemble(`
	    movi r1, 5
	    movi r2, 0
	loop:
	    add r1, r2
	    addi r1, -1
	    jne loop
	    movi r3, 16
	    st (r3), r2
	    out r2
	    halt
	`)
	r := NewMSP430Run(c, prog)
	g, err := RecordGolden(r, 10000)
	if err != nil {
		t.Fatal(err)
	}
	set := core.Search(c.NL, c.NL.FFQWires(), core.DefaultSearchParams()).Set
	ctl := NewController(r, g)
	points := SampledFaultList(c.NL, g.HaltCycle, 9)
	res, err := ctl.RunCampaign(CampaignConfig{
		Points: points, MATESet: set, ValidateSkipped: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped == 0 {
		t.Fatal("no pruning on MSP430")
	}
	if res.SkippedWrong != 0 {
		t.Fatalf("MATE soundness violated on MSP430: %d wrong skips", res.SkippedWrong)
	}
	t.Logf("msp430 campaign: %d points, %d pruned (%.1f%%), outcomes %v",
		res.Total, res.Skipped, 100*res.PrunedFraction(), res.ByOutcome)
}

func TestCampaignInjectionCycleBounds(t *testing.T) {
	_, _, g, r := goldenAVR(t)
	ctl := NewController(r, g)
	_, err := ctl.RunCampaign(CampaignConfig{
		Points: []FaultPoint{{FF: 0, Cycle: g.HaltCycle + 5}},
	})
	if err == nil {
		t.Fatal("expected error for out-of-range injection cycle")
	}
}

func TestFaultListHelpers(t *testing.T) {
	c := avr.NewCore()
	full := FullFaultList(c.NL, 10)
	if len(full) != 10*len(c.NL.FFs) {
		t.Fatalf("full list = %d", len(full))
	}
	sampled := SampledFaultList(c.NL, 10, 2)
	if len(sampled) != 5*len(c.NL.FFs) {
		t.Fatalf("sampled list = %d", len(sampled))
	}
	noRF := SampledFaultList(c.NL, 10, 2, avr.GroupRegFile)
	if len(noRF) >= len(sampled) {
		t.Fatal("group exclusion did not shrink the list")
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeBenign.String() != "benign" || OutcomeSDC.String() != "sdc" ||
		OutcomeHang.String() != "hang" || Outcome(9).String() == "" {
		t.Fatal("outcome strings wrong")
	}
}

// --- LUT cost model ---

func TestLUTsForMATE(t *testing.T) {
	mk := func(n int) *core.MATE {
		m := &core.MATE{Literals: make([]core.Literal, n)}
		for i := range m.Literals {
			m.Literals[i] = core.Literal{Wire: netlist.WireID(i)}
		}
		return m
	}
	cases := map[int]int{0: 1, 1: 1, 6: 1, 7: 2, 11: 2, 12: 3, 16: 3}
	for n, want := range cases {
		if got := LUTsForMATE(mk(n)); got != want {
			t.Errorf("LUTs(%d inputs) = %d, want %d", n, got, want)
		}
	}
	set := &core.MATESet{MATEs: []*core.MATE{mk(3), mk(8)}}
	if LUTCost(set) != 3 {
		t.Errorf("LUTCost = %d", LUTCost(set))
	}
}

func TestOverheadVsController(t *testing.T) {
	set := &core.MATESet{MATEs: []*core.MATE{
		{Literals: make([]core.Literal, 4)},
	}}
	if f := OverheadVsController(set, FIControllerLUTsLow); f != 1.0/1500 {
		t.Errorf("overhead = %v", f)
	}
	if OverheadVsController(set, 0) != 0 {
		t.Error("zero controller")
	}
}

// TestSection61Claim verifies the paper's §6.1 argument holds for our MATE
// sets: 50-100 selected MATEs cost a negligible fraction of even the
// smallest published FI controller.
func TestSection61Claim(t *testing.T) {
	c := avr.NewCore()
	res := core.Search(c.NL, c.NL.FFQWires(), core.DefaultSearchParams())
	top := res.Set.MATEs
	if len(top) > 100 {
		top = top[:100]
	}
	cost := LUTCost(&core.MATESet{MATEs: top})
	if cost > 200 {
		t.Errorf("100 MATEs cost %d LUTs — not 1-2 LUTs per MATE", cost)
	}
	if float64(cost)/FIControllerLUTsLow > 0.15 {
		t.Errorf("MATE overhead %.1f%% of the smallest FI controller — not negligible",
			100*float64(cost)/FIControllerLUTsLow)
	}
	if InstrumentationLUTs(len(c.NL.FFs)) != len(c.NL.FFs) {
		t.Error("instrumentation model")
	}
}

// TestMultiCycleUpsets exercises the Section 6.2 extension: upsets holding
// several cycles. A multi-cycle upset is pruned only when a MATE triggers
// in every held cycle, and validation must confirm every pruned point.
func TestMultiCycleUpsets(t *testing.T) {
	c, _, g, r := goldenAVR(t)
	set := core.Search(c.NL, c.NL.FFQWires(), core.DefaultSearchParams()).Set
	ctl := NewController(r, g)

	mk := func(duration int) []FaultPoint {
		var pts []FaultPoint
		for cyc := 0; cyc+duration < g.HaltCycle; cyc += 5 {
			for ff := range c.NL.FFs {
				pts = append(pts, FaultPoint{FF: ff, Cycle: cyc, Duration: duration})
			}
		}
		return pts
	}

	res1, err := ctl.RunCampaign(CampaignConfig{Points: mk(1), MATESet: set, ValidateSkipped: true})
	if err != nil {
		t.Fatal(err)
	}
	res3, err := ctl.RunCampaign(CampaignConfig{Points: mk(3), MATESet: set, ValidateSkipped: true})
	if err != nil {
		t.Fatal(err)
	}
	if res1.SkippedWrong != 0 || res3.SkippedWrong != 0 {
		t.Fatalf("multi-cycle pruning unsound: %d / %d wrong skips", res1.SkippedWrong, res3.SkippedWrong)
	}
	// Longer upsets are strictly harder to prove benign: on the CPU cores
	// the masking windows are one cycle wide, so 3-cycle upsets prune
	// (almost) nothing — TestMultiCycleUpsetsPersistentWindow covers the
	// positive case on a circuit with persistent windows.
	if res3.PrunedFraction() > res1.PrunedFraction() {
		t.Errorf("3-cycle upsets pruned more (%f) than 1-cycle (%f)",
			res3.PrunedFraction(), res1.PrunedFraction())
	}
	t.Logf("pruned: 1-cycle %.2f%%, 3-cycle %.2f%%",
		100*res1.PrunedFraction(), 100*res3.PrunedFraction())
}

// TestMultiCycleBatchedMatchesSequential: the batched engine must agree
// with the sequential one for multi-cycle upsets too.
func TestMultiCycleBatchedMatchesSequential(t *testing.T) {
	c, prog, g, r := goldenAVR(t)
	ctl := NewController(r, g)
	var pts []FaultPoint
	for cyc := 0; cyc+4 < g.HaltCycle; cyc += 11 {
		for ff := 0; ff < len(c.NL.FFs); ff += 3 {
			pts = append(pts, FaultPoint{FF: ff, Cycle: cyc, Duration: 2})
		}
	}
	seq, err := ctl.RunCampaign(CampaignConfig{Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	run64, err := NewAVRRun64(c, prog)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := ctl.RunCampaignBatched(CampaignConfig{Points: pts}, run64)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Outcome{OutcomeBenign, OutcomeSDC, OutcomeHang} {
		if seq.ByOutcome[o] != bat.ByOutcome[o] {
			t.Errorf("%s: sequential %d, batched %d", o, seq.ByOutcome[o], bat.ByOutcome[o])
		}
	}
}

// buildWindowCircuit creates a circuit with *persistent* masking windows:
// a private register rq is overwritten with fresh input data on every
// cycle of a long phase (en = phase bit), so a MATE (en=1) triggers for
// many consecutive cycles. A cycle counter raises `halt` after 32 cycles.
func buildWindowCircuit(t testing.TB) (*netlist.Netlist, *NetlistRun, netlist.WireID) {
	t.Helper()
	b := netlist.NewBuilder("window")
	c := synth.New(b)
	d := c.InputBus("d", 4)
	en := b.Input("en")

	// private data register: Q feeds only its own hold mux
	rq := c.RegisterPlaceholder("rq", 4, 0, "data")
	c.ConnectRegister(rq, d, en)

	// visible accumulator so faults elsewhere matter
	acc := c.RegisterPlaceholder("acc", 4, 0, "acc")
	sum := c.Adder(acc, d, b.Const(false))
	c.ConnectRegisterAlways(acc, sum.Sum)
	c.OutputBus(acc)

	// cycle counter + halt flag
	cnt := c.RegisterPlaceholder("cnt", 6, 0, "ctrl")
	c.ConnectRegisterAlways(cnt, c.Inc(cnt).Sum)
	haltNow := c.EqualConst(cnt, 32)
	hlt := c.RegisterPlaceholder("halt", 1, 0, "ctrl")
	c.ConnectRegisterAlways(hlt, synth.Bus{b.Gate(cell.OR2, hlt[0], haltNow)})
	b.MarkOutput(hlt[0])

	nl := b.MustNetlist()
	run := NewNetlistRun(nl, hlt[0], func(cycle int, m *sim.Machine) {
		m.WriteBus(d, uint64(cycle*3)&0xF)
		m.SetValue(en, cycle < 24) // en high for a 24-cycle window
	})
	return nl, run, rq[2]
}

// TestMultiCycleUpsetsPersistentWindow: on a circuit whose masking window
// spans many cycles, multi-cycle upsets ARE pruned, and validation
// confirms every one of them.
func TestMultiCycleUpsetsPersistentWindow(t *testing.T) {
	nl, run, target := buildWindowCircuit(t)
	g, err := RecordGolden(run, 1000)
	if err != nil {
		t.Fatal(err)
	}
	set := core.Search(nl, nl.FFQWires(), core.DefaultSearchParams()).Set
	ctl := NewController(run, g)

	ffIdx := nl.FFByQ(target)
	if ffIdx < 0 {
		t.Fatal("target FF not found")
	}
	var pts []FaultPoint
	for cyc := 0; cyc+4 < g.HaltCycle; cyc++ {
		pts = append(pts, FaultPoint{FF: ffIdx, Cycle: cyc, Duration: 4})
	}
	res, err := ctl.RunCampaign(CampaignConfig{Points: pts, MATESet: set, ValidateSkipped: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped == 0 {
		t.Fatal("expected 4-cycle upsets inside the persistent window to be pruned")
	}
	if res.SkippedWrong != 0 {
		t.Fatalf("%d pruned multi-cycle upsets were effective", res.SkippedWrong)
	}
	t.Logf("4-cycle upsets on %s: %d of %d pruned, all validated benign",
		nl.WireName(target), res.Skipped, res.Total)
}

// TestNetlistRunBasics covers the generic netlist Run adapter.
func TestNetlistRunBasics(t *testing.T) {
	_, run, _ := buildWindowCircuit(t)
	g, err := RecordGolden(run, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if g.HaltCycle == 0 {
		t.Fatal("did not halt")
	}
	// checkpoint round trip reproduces the golden signature
	run.Restore(g.Checkpoints[g.HaltCycle/2])
	for i := 0; i < 1000 && !run.Halted(); i++ {
		run.Step()
	}
	if run.Signature() != g.Signature {
		t.Fatal("restored run diverged")
	}
}
