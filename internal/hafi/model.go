package hafi

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// ModelID names a fault model. The zero value is the classic single-event
// upset, so every FaultPoint built before fault-model diversity existed is
// still a valid (and identically behaving) SEU point.
type ModelID uint8

// The supported fault models. Their injection semantics:
//
//   - ModelSEU: invert one flip-flop at the beginning of cycle Cycle, and
//     re-invert it at the beginning of each of the Duration cycles it holds
//     (paper Section 6.2). Today's hardwired behavior, byte for byte.
//   - ModelMBU: a multi-bit upset — invert the Span adjacent flip-flops
//     [FF, FF+Span) every held cycle. Adjacency is netlist order within one
//     placement group (FF.Group), the software stand-in for physical
//     adjacency in a layout.
//   - ModelSET: a gate-level single-event transient, represented as the
//     simultaneous multi-SEU set at the flip-flops the struck gate's output
//     cone latches into — the exact RTL equivalence arXiv:2103.05106
//     establishes, which lets a pure-RTL machine model combinational
//     transients without timing. Targets lists the affected flip-flops
//     (sorted; FF is Targets[0]); the set flips once, at cycle Cycle.
//   - ModelIntermittent: a weak/marginal cell that re-flips every Period
//     cycles inside a Duration-cycle window starting at Cycle (flips at
//     Cycle, Cycle+Period, ... while inside the window).
//   - ModelStuckAt: flip-flop FF is forced to the StuckHigh value at the
//     beginning of every cycle in [Cycle, Cycle+Duration) — a transient
//     stuck-at-0/1 whose effect is data-dependent (cycles where the stored
//     value already equals the forced value inject nothing).
const (
	ModelSEU ModelID = iota
	ModelMBU
	ModelSET
	ModelIntermittent
	ModelStuckAt

	numModels
)

var modelNames = [numModels]string{"seu", "mbu", "set", "intermittent", "stuck-at"}

func (id ModelID) String() string {
	if int(id) < len(modelNames) {
		return modelNames[id]
	}
	return fmt.Sprintf("model(%d)", uint8(id))
}

// FFAccess is the flip-flop view a fault model injects through: read and
// invert stored values by flip-flop index. Two adapters exist — one over
// the scalar machine, one over a single lane of the 64-lane machine — so
// every model has exactly one injection implementation shared by both
// engines.
type FFAccess interface {
	// FFValue reads the stored value of flip-flop ff.
	FFValue(ff int) bool
	// FlipFF inverts the stored value of flip-flop ff.
	FlipFF(ff int)
}

// machineFFs adapts the scalar simulator. Pointer methods so converting to
// FFAccess stays allocation-free on the per-experiment hot path.
type machineFFs struct{ m *sim.Machine }

func (a *machineFFs) FFValue(ff int) bool { return a.m.Value(a.m.NL.FFs[ff].Q) }
func (a *machineFFs) FlipFF(ff int)       { a.m.FlipFF(ff) }

// laneFFs adapts one lane of the wide machine (dense mode).
type laneFFs struct {
	r    RunW
	lane int
}

func (a *laneFFs) FFValue(ff int) bool { return a.r.MachW().FFLane(ff, a.lane) }
func (a *laneFFs) FlipFF(ff int)       { a.r.FlipLane(ff, a.lane) }

// deltaFFs adapts one lane of the cone-delta evaluator, so the same model
// Inject implementations work while a batch runs in delta mode.
type deltaFFs struct {
	d    *sim.DeltaState
	lane int
}

func (a *deltaFFs) FFValue(ff int) bool { return a.d.FFLane(ff, a.lane) }
func (a *deltaFFs) FlipFF(ff int)       { a.d.FlipLane(ff, a.lane) }

// FaultModel defines the injection semantics of one fault model. The
// campaign engines are model-agnostic: they restore a checkpoint, call
// Inject once per cycle of the active window, and classify the outcome; the
// model decides which flip-flops change on which cycle.
type FaultModel interface {
	ID() ModelID
	Name() string
	// Validate rejects a fault point whose operands are malformed for this
	// model (out-of-range flip-flops, a burst crossing a group boundary,
	// an unsorted SET target list, ...). Campaign setup validates every
	// point once, so the per-cycle Inject can trust the operands.
	Validate(nl *netlist.Netlist, p FaultPoint) error
	// ActiveEnd returns the first cycle at which the fault is no longer
	// active: the engines call Inject for every non-halted cycle in
	// [p.Cycle, ActiveEnd) and gate the convergence early-exit on the
	// window being over.
	ActiveEnd(p FaultPoint) int
	// Inject applies the model's state change for cycle cyc (which the
	// engine guarantees to be inside the active window).
	Inject(s FFAccess, p FaultPoint, cyc int)
	// SEUEquivalent reports whether the point degenerates to a plain
	// single-bit upset of ff held for duration cycles — the only shape the
	// MATE first-cycle masking argument covers, and therefore the only
	// shape provedBenign may prune. Multi-flip and data-dependent faults
	// return ok=false and are always executed.
	SEUEquivalent(p FaultPoint) (ff, duration int, ok bool)
}

// models is the singleton registry, indexed by ModelID.
var models = [numModels]FaultModel{
	ModelSEU:          seuModel{},
	ModelMBU:          mbuModel{},
	ModelSET:          setModel{},
	ModelIntermittent: intermittentModel{},
	ModelStuckAt:      stuckAtModel{},
}

// Model returns the registered fault model, or nil for an unknown ID.
func Model(id ModelID) FaultModel {
	if int(id) < len(models) {
		return models[id]
	}
	return nil
}

// ModelByName resolves a model name ("seu", "mbu", ...).
func ModelByName(name string) (ModelID, bool) {
	for id, n := range modelNames {
		if n == name {
			return ModelID(id), true
		}
	}
	return 0, false
}

func checkFFRange(nl *netlist.Netlist, p FaultPoint) error {
	if p.FF < 0 || p.FF >= len(nl.FFs) {
		return fmt.Errorf("hafi: %s point: flip-flop %d outside netlist (%d FFs)", p.Model, p.FF, len(nl.FFs))
	}
	if p.Cycle < 0 {
		return fmt.Errorf("hafi: %s point: negative cycle %d", p.Model, p.Cycle)
	}
	return nil
}

// noOperands rejects operand fields foreign to the model, so every point of
// a model carries exactly that model's operands (and SEU points stay
// journal-v2 clean).
func noOperands(p FaultPoint, span, period, targets, stuck bool) error {
	switch {
	case span && p.Span != 0:
		return fmt.Errorf("hafi: %s point carries a span (%d)", p.Model, p.Span)
	case period && p.Period != 0:
		return fmt.Errorf("hafi: %s point carries a period (%d)", p.Model, p.Period)
	case targets && len(p.Targets) != 0:
		return fmt.Errorf("hafi: %s point carries a target set (%d targets)", p.Model, len(p.Targets))
	case stuck && p.StuckHigh:
		return fmt.Errorf("hafi: %s point carries a stuck-at level", p.Model)
	}
	return nil
}

type seuModel struct{}

func (seuModel) ID() ModelID  { return ModelSEU }
func (seuModel) Name() string { return "seu" }
func (seuModel) Validate(nl *netlist.Netlist, p FaultPoint) error {
	if err := checkFFRange(nl, p); err != nil {
		return err
	}
	return noOperands(p, true, true, true, true)
}
func (seuModel) ActiveEnd(p FaultPoint) int               { return p.Cycle + p.duration() }
func (seuModel) Inject(s FFAccess, p FaultPoint, cyc int) { s.FlipFF(p.FF) }
func (seuModel) SEUEquivalent(p FaultPoint) (int, int, bool) {
	return p.FF, p.duration(), true
}

type mbuModel struct{}

func (mbuModel) ID() ModelID  { return ModelMBU }
func (mbuModel) Name() string { return "mbu" }
func (mbuModel) Validate(nl *netlist.Netlist, p FaultPoint) error {
	if err := checkFFRange(nl, p); err != nil {
		return err
	}
	if err := noOperands(p, false, true, true, true); err != nil {
		return err
	}
	span := p.span()
	if p.FF+span > len(nl.FFs) {
		return fmt.Errorf("hafi: mbu burst [%d, %d) outside netlist (%d FFs)", p.FF, p.FF+span, len(nl.FFs))
	}
	group := nl.FFs[p.FF].Group
	for ff := p.FF + 1; ff < p.FF+span; ff++ {
		if nl.FFs[ff].Group != group {
			return fmt.Errorf("hafi: mbu burst [%d, %d) crosses group boundary %q/%q at ff %d",
				p.FF, p.FF+span, group, nl.FFs[ff].Group, ff)
		}
	}
	return nil
}
func (mbuModel) ActiveEnd(p FaultPoint) int { return p.Cycle + p.duration() }
func (mbuModel) Inject(s FFAccess, p FaultPoint, cyc int) {
	for ff := p.FF; ff < p.FF+p.span(); ff++ {
		s.FlipFF(ff)
	}
}
func (mbuModel) SEUEquivalent(p FaultPoint) (int, int, bool) {
	if p.span() == 1 {
		return p.FF, p.duration(), true
	}
	return 0, 0, false
}

type setModel struct{}

func (setModel) ID() ModelID  { return ModelSET }
func (setModel) Name() string { return "set" }
func (setModel) Validate(nl *netlist.Netlist, p FaultPoint) error {
	if err := checkFFRange(nl, p); err != nil {
		return err
	}
	if err := noOperands(p, true, true, false, true); err != nil {
		return err
	}
	if p.Duration > 1 {
		return fmt.Errorf("hafi: set point holds %d cycles (a transient latches exactly once)", p.Duration)
	}
	ts := p.targets()
	if ts[0] != p.FF {
		return fmt.Errorf("hafi: set point FF %d is not the first target (%d)", p.FF, ts[0])
	}
	for i, ff := range ts {
		if ff < 0 || ff >= len(nl.FFs) {
			return fmt.Errorf("hafi: set target %d outside netlist (%d FFs)", ff, len(nl.FFs))
		}
		if i > 0 && ff <= ts[i-1] {
			return fmt.Errorf("hafi: set target list not strictly ascending at %d", ff)
		}
	}
	return nil
}
func (setModel) ActiveEnd(p FaultPoint) int { return p.Cycle + 1 }
func (setModel) Inject(s FFAccess, p FaultPoint, cyc int) {
	if cyc != p.Cycle {
		return // the transient latches exactly once
	}
	for _, ff := range p.targets() {
		s.FlipFF(ff)
	}
}
func (setModel) SEUEquivalent(p FaultPoint) (int, int, bool) {
	if ts := p.targets(); len(ts) == 1 {
		return ts[0], 1, true
	}
	return 0, 0, false
}

type intermittentModel struct{}

func (intermittentModel) ID() ModelID  { return ModelIntermittent }
func (intermittentModel) Name() string { return "intermittent" }
func (intermittentModel) Validate(nl *netlist.Netlist, p FaultPoint) error {
	if err := checkFFRange(nl, p); err != nil {
		return err
	}
	return noOperands(p, true, false, true, true)
}
func (intermittentModel) ActiveEnd(p FaultPoint) int { return p.Cycle + p.duration() }
func (intermittentModel) Inject(s FFAccess, p FaultPoint, cyc int) {
	if (cyc-p.Cycle)%p.period() == 0 {
		s.FlipFF(p.FF)
	}
}
func (intermittentModel) SEUEquivalent(p FaultPoint) (int, int, bool) {
	switch {
	case p.duration() <= p.period():
		// Only the first flip lands inside the window: a 1-cycle SEU.
		return p.FF, 1, true
	case p.period() == 1:
		// Re-flips every cycle of the window: a held SEU.
		return p.FF, p.duration(), true
	}
	return 0, 0, false
}

type stuckAtModel struct{}

func (stuckAtModel) ID() ModelID  { return ModelStuckAt }
func (stuckAtModel) Name() string { return "stuck-at" }
func (stuckAtModel) Validate(nl *netlist.Netlist, p FaultPoint) error {
	if err := checkFFRange(nl, p); err != nil {
		return err
	}
	return noOperands(p, true, true, true, false)
}
func (stuckAtModel) ActiveEnd(p FaultPoint) int { return p.Cycle + p.duration() }
func (stuckAtModel) Inject(s FFAccess, p FaultPoint, cyc int) {
	if s.FFValue(p.FF) != p.StuckHigh {
		s.FlipFF(p.FF)
	}
}
func (stuckAtModel) SEUEquivalent(p FaultPoint) (int, int, bool) {
	// Whether any bit flips at all depends on the stored data, so the
	// trace-level first-cycle masking argument never applies.
	return 0, 0, false
}

// ModelSpec is a parsed -fault-model argument: the model plus its
// enumeration parameters.
type ModelSpec struct {
	Model ModelID
	// Span is the MBU burst width (adjacent flip-flops per upset).
	Span int
	// Period is the intermittent re-flip period in cycles.
	Period int
	// Window is the active window (Duration) of intermittent and stuck-at
	// points.
	Window int
	// StuckHigh selects stuck-at-1 over stuck-at-0.
	StuckHigh bool
}

// Enumeration defaults, chosen so the bare model names are useful:
// adjacent-pair MBUs, an intermittent cell flipping every other cycle for
// eight, a four-cycle stuck-at transient.
const (
	defaultMBUSpan            = 2
	defaultIntermittentPeriod = 2
	defaultIntermittentWindow = 8
	defaultStuckWindow        = 4
)

// String renders the spec in the canonical -fault-model syntax (parsing it
// back yields the same spec).
func (s ModelSpec) String() string {
	switch s.Model {
	case ModelMBU:
		return fmt.Sprintf("mbu:%d", s.Span)
	case ModelIntermittent:
		return fmt.Sprintf("intermittent:%d,%d", s.Period, s.Window)
	case ModelStuckAt:
		level := 0
		if s.StuckHigh {
			level = 1
		}
		return fmt.Sprintf("stuck%d:%d", level, s.Window)
	case ModelSET:
		return "set"
	}
	return "seu"
}

// ParseModelSpec parses a -fault-model argument:
//
//	seu                    single-event upsets (the default)
//	mbu | mbu:S            S-wide adjacent-FF bursts (default 2)
//	set                    gate SETs as simultaneous multi-SEU sets
//	intermittent[:P[,W]]   re-flip every P cycles for a W-cycle window
//	stuck0[:W] | stuck1[:W]  force the FF low/high for W cycles
func ParseModelSpec(s string) (ModelSpec, error) {
	name, args, hasArgs := strings.Cut(s, ":")
	bad := func(format string, a ...interface{}) (ModelSpec, error) {
		return ModelSpec{}, fmt.Errorf("hafi: fault model %q: "+format, append([]interface{}{s}, a...)...)
	}
	argInt := func(v string, min int) (int, error) {
		n, err := strconv.Atoi(v)
		if err != nil || n < min {
			return 0, fmt.Errorf("want an integer >= %d, got %q", min, v)
		}
		return n, nil
	}
	switch name {
	case "seu":
		if hasArgs {
			return bad("seu takes no parameters")
		}
		return ModelSpec{Model: ModelSEU}, nil
	case "mbu":
		spec := ModelSpec{Model: ModelMBU, Span: defaultMBUSpan}
		if hasArgs {
			n, err := argInt(args, 2)
			if err != nil {
				return bad("span: %v", err)
			}
			spec.Span = n
		}
		return spec, nil
	case "set":
		if hasArgs {
			return bad("set takes no parameters")
		}
		return ModelSpec{Model: ModelSET}, nil
	case "intermittent":
		spec := ModelSpec{Model: ModelIntermittent, Period: defaultIntermittentPeriod, Window: defaultIntermittentWindow}
		if hasArgs {
			parts := strings.SplitN(args, ",", 2)
			n, err := argInt(parts[0], 1)
			if err != nil {
				return bad("period: %v", err)
			}
			spec.Period = n
			if len(parts) == 2 {
				if n, err = argInt(parts[1], 1); err != nil {
					return bad("window: %v", err)
				}
				spec.Window = n
			}
		}
		return spec, nil
	case "stuck0", "stuck1":
		spec := ModelSpec{Model: ModelStuckAt, Window: defaultStuckWindow, StuckHigh: name == "stuck1"}
		if hasArgs {
			n, err := argInt(args, 1)
			if err != nil {
				return bad("window: %v", err)
			}
			spec.Window = n
		}
		return spec, nil
	}
	return bad("unknown model (want seu, mbu[:S], set, intermittent[:P[,W]], stuck0[:W] or stuck1[:W])")
}

// excludedFF builds the model-aware group filter shared by every fault-list
// enumerator: true for flip-flops whose group is excluded from the
// campaign. A fault point is excluded when ANY flip-flop it would upset is
// excluded (an MBU burst brushing the register file is out, exactly like
// the single-bit point inside it).
func excludedFF(nl *netlist.Netlist, excludeGroups []string) func(ff int) bool {
	if len(excludeGroups) == 0 {
		return func(int) bool { return false }
	}
	skip := map[string]bool{}
	for _, g := range excludeGroups {
		skip[g] = true
	}
	return func(ff int) bool { return skip[nl.FFs[ff].Group] }
}

// ModelFaultList enumerates the sampled fault list of one model: every
// eligible injection site at every strideth cycle, in cycle-major order
// (the shard planner's cut-at-cycle-boundary invariant holds for every
// model). For ModelSEU it returns exactly SampledFaultList.
func ModelFaultList(nl *netlist.Netlist, maxCycle, stride int, spec ModelSpec, excludeGroups ...string) []FaultPoint {
	excluded := excludedFF(nl, excludeGroups)
	var sites []FaultPoint // per-cycle site templates (Cycle filled per cycle)
	switch spec.Model {
	case ModelSEU:
		for ff := range nl.FFs {
			if !excluded(ff) {
				sites = append(sites, FaultPoint{FF: ff})
			}
		}
	case ModelMBU:
		span := spec.Span
		if span < 2 {
			span = defaultMBUSpan
		}
		for ff := 0; ff+span <= len(nl.FFs); ff++ {
			ok := true
			for f := ff; f < ff+span; f++ {
				if excluded(f) || nl.FFs[f].Group != nl.FFs[ff].Group {
					ok = false
					break
				}
			}
			if ok {
				sites = append(sites, FaultPoint{FF: ff, Model: ModelMBU, Span: span})
			}
		}
	case ModelSET:
		for _, targets := range setTargetSets(nl, excluded) {
			sites = append(sites, FaultPoint{FF: targets[0], Model: ModelSET, Targets: targets})
		}
	case ModelIntermittent:
		period, window := spec.Period, spec.Window
		if period < 1 {
			period = defaultIntermittentPeriod
		}
		if window < 1 {
			window = defaultIntermittentWindow
		}
		for ff := range nl.FFs {
			if !excluded(ff) {
				sites = append(sites, FaultPoint{FF: ff, Model: ModelIntermittent, Period: period, Duration: window})
			}
		}
	case ModelStuckAt:
		window := spec.Window
		if window < 1 {
			window = defaultStuckWindow
		}
		for ff := range nl.FFs {
			if !excluded(ff) {
				sites = append(sites, FaultPoint{FF: ff, Model: ModelStuckAt, Duration: window, StuckHigh: spec.StuckHigh})
			}
		}
	}
	var out []FaultPoint
	for cyc := 0; cyc < maxCycle; cyc += stride {
		for _, site := range sites {
			p := site
			p.Cycle = cyc
			out = append(out, p)
		}
	}
	return out
}

// maxSETTargets bounds a SET's flip set: a cone latching into more
// flip-flops than this models a gate whose transient the RTL equivalence
// cannot usefully bound (clock-tree-like fanout), and is skipped.
const maxSETTargets = 64

// setTargetSets computes, per gate, the flip-flops the gate's combinational
// output cone latches into — the simultaneous flip set representing an SET
// at that gate — then deduplicates identical sets (gates on the same cone
// spine produce the same observable upset). Sets touching an excluded
// flip-flop, empty sets (cones ending only in primary outputs) and sets
// wider than maxSETTargets are dropped. The result is ordered by the first
// originating gate, each set sorted ascending.
func setTargetSets(nl *netlist.Netlist, excluded func(ff int) bool) [][]int {
	var out [][]int
	seen := map[string]bool{}
	visited := make([]int, nl.NumWires()) // BFS epoch marker, 1-based per gate
	var queue []netlist.WireID
	for gi := range nl.Gates {
		epoch := gi + 1
		ffSet := map[int]bool{}
		queue = queue[:0]
		w := nl.Gates[gi].Output
		visited[w] = epoch
		queue = append(queue, w)
		tooWide := false
		for len(queue) > 0 && !tooWide {
			w, queue = queue[0], queue[1:]
			for _, ffi := range nl.FFsOfD(w) {
				ffSet[int(ffi)] = true
				if len(ffSet) > maxSETTargets {
					tooWide = true
					break
				}
			}
			for _, ref := range nl.Fanout(w) {
				o := nl.Gates[ref.Gate].Output
				if visited[o] != epoch {
					visited[o] = epoch
					queue = append(queue, o)
				}
			}
		}
		if tooWide || len(ffSet) == 0 {
			continue
		}
		targets := make([]int, 0, len(ffSet))
		skip := false
		for ff := range ffSet {
			if excluded(ff) {
				skip = true
				break
			}
			targets = append(targets, ff)
		}
		if skip {
			continue
		}
		sort.Ints(targets)
		key := fmt.Sprint(targets)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, targets)
	}
	return out
}
