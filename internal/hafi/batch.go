package hafi

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/journal"
	"repro/internal/sim"
)

// DefaultCampaignLanes is the lane count the campaign front-ends default
// to: width 4 (256 lanes), the widest kernel with a hand-unrolled dense
// dispatch. 64-lane devices remain fully supported (journals are
// byte-identical across widths).
const DefaultCampaignLanes = 256

// DefaultDeltaFallbackPercent is the frontier-occupancy threshold at which
// a cone-delta batch abandons sparse evaluation for dense dispatch,
// as a percent of the dense per-cycle gate-evaluation cost. Measured on
// the AVR/fib campaign (see EXPERIMENTS.md): per-gate delta evaluation
// costs ~3-4× a dense kernel slot (scattered loads, golden-row lookups,
// worklist pushes), so sparse stops paying between 25% and 50% occupancy;
// 40% was the ablation's flattest optimum and errs toward staying sparse,
// which the convergence early-exit rewards on long tails.
const DefaultDeltaFallbackPercent = 40

// stragglerMaxLive is the live-lane count at or below which a batch hands
// its remaining lanes to the straggler pool (when the device supports
// SuspendRunW): once no future injection or golden-relative convergence
// check is possible, the only thing left is running each survivor to its
// halt or timeout, and a handful of hang candidates should not drag a
// whole batch through thousands of near-empty simulation cycles. One lane
// group is the natural boundary — below it the device cannot shrink any
// further.
const stragglerMaxLive = 64

// stragglerMinTail is the minimum remaining cycle count that justifies
// suspending a lane: below it, finishing inline is cheaper than the
// export/import round trip.
const stragglerMinTail = 1024

// RunCampaignBatched executes the campaign on a 64-lane batched device:
// injection points that share a cycle are grouped, up to 64 of them run as
// lanes of one bit-parallel simulation. Semantically identical to
// RunCampaign (same outcomes for every point); typically an order of
// magnitude faster. MATE pruning is applied before batching, exactly like
// the sequential controller. ValidateSkipped re-executes pruned points
// batched as well.
//
// Lanes retire individually through the convergence early-exit (see
// Controller.execute): a lane whose flip-flop state and memory write
// digest re-converge with the golden reference after its hold window is
// classified benign immediately, and the batch ends as soon as every lane
// has halted or retired — long-tail batches no longer run to the slowest
// lane's halt. CampaignConfig.DisableEarlyExit restores full runs.
//
// Resilience matches the sequential engine: recovered journal records are
// replayed instead of re-executed, every newly classified point is
// journaled as its batch completes, cancellation drains at batch
// granularity, and a panicking batch is retried lane by lane so only the
// offending point is classified OutcomeHarnessError.
func (c *Controller) RunCampaignBatched(cfg CampaignConfig, run64 Run64) (*CampaignResult, error) {
	return c.RunCampaignBatchedW(cfg, AsRunW(run64))
}

// RunCampaignBatchedW is RunCampaignBatched on a wide (64·W lane) device:
// the batch plan packs up to run.Lanes() same-cycle points per batch, and
// when the device supports the cone-delta evaluator (DeltaRunW) each batch
// runs in sparse delta mode until frontier occupancy crosses the dense
// fallback threshold. Classification — and the journal byte stream — is
// identical at every width and in both engine modes.
func (c *Controller) RunCampaignBatchedW(cfg CampaignConfig, run RunW) (*CampaignResult, error) {
	timeout, err := c.prepareCampaign(&cfg)
	if err != nil {
		return nil, err
	}
	ctx := cfg.context()
	sp := cfg.Obs.StartSpan("campaign")
	defer sp.End()
	met := newCampaignMetrics(cfg.Obs, len(cfg.Points))
	st := newBatchState(&cfg, met)
	met.setLanes(run.Lanes())

	specs, err := c.classifyPoints(&cfg, st, run.Lanes())
	if err != nil {
		return nil, err
	}

	// Straggler suspension (SuspendRunW devices only): a batch down to a
	// handful of live lanes past every injection and convergence horizon
	// hands them to the pool instead of simulating a near-empty device to
	// the timeout; the pool finishes all batches' stragglers together in
	// packed waves. Specs whose outcomes are complete emit immediately;
	// a spec with suspended lanes — and everything after it, to keep the
	// journal a contiguous plan prefix — is buffered and emitted after
	// resolution.
	type pendingSpec struct {
		outcomes []Outcome
		conv     int
		saved    int64
		waiting  int
	}
	var (
		scratch batchScratch
		pending []pendingSpec
		susp    []suspLane
		emitted int
	)
	scratch.suspendOK = true
	flush := func() error {
		for emitted < len(pending) && pending[emitted].waiting == 0 {
			p := &pending[emitted]
			st.res.Converged += p.conv
			st.res.CyclesSaved += p.saved
			if err := st.emitSpec(specs[emitted], p.outcomes); err != nil {
				return err
			}
			emitted++
		}
		return nil
	}
	for si, spec := range specs {
		if ctx.Err() != nil {
			break
		}
		conv, saved, outcomes := c.runSpec(&cfg, run, spec, timeout, met, &scratch)
		pending = append(pending, pendingSpec{
			outcomes: append([]Outcome(nil), outcomes...),
			conv:     conv,
			saved:    saved,
			waiting:  len(scratch.susp),
		})
		for _, s := range scratch.susp {
			s.spec = si
			susp = append(susp, s)
		}
		if err := flush(); err != nil {
			return nil, err
		}
	}
	if len(susp) > 0 {
		c.resolveStragglers(&cfg, run, timeout, susp, func(spec, item int, o Outcome) {
			pending[spec].outcomes[item] = o
			pending[spec].waiting--
		}, &scratch)
		if err := flush(); err != nil {
			return nil, err
		}
	}
	st.res.Interrupted = ctx.Err() != nil
	return st.res, nil
}

// RunCampaignBatchedPool is RunCampaignBatched sharded over a pool of
// cfg.Workers batched device instances — the paper's "one FI controller
// distributes the FI campaign over several FPGAs", with each worker
// playing one FPGA. The factory must produce Run64 instances of the same
// netlist and workload the golden reference was recorded from.
//
// The batch plan is the exact plan of the single-instance engine, batches
// are dispatched to workers in plan order, and results are emitted through
// a reorder buffer in plan order from a single goroutine — so the journal
// an uninterrupted pool campaign writes is byte-identical to the
// single-instance engine's, and crash-resume/journal-diff behavior is
// unchanged. On cancellation, dispatch stops; in-flight batches finish and
// are emitted, so the journal still covers a contiguous plan prefix.
func (c *Controller) RunCampaignBatchedPool(cfg CampaignConfig, factory func() (Run64, error)) (*CampaignResult, error) {
	return c.RunCampaignBatchedPoolW(cfg, func() (RunW, error) {
		r, err := factory()
		if err != nil {
			return nil, err
		}
		return AsRunW(r), nil
	})
}

// RunCampaignBatchedPoolW is RunCampaignBatchedPool over a factory of wide
// devices (see RunCampaignBatchedW). Every instance the factory produces
// must have the same lane count.
func (c *Controller) RunCampaignBatchedPoolW(cfg CampaignConfig, factory func() (RunW, error)) (*CampaignResult, error) {
	return c.runCampaignPool(cfg, nil, factory)
}

// RunCampaignBatchedPoolWith is RunCampaignBatchedPool over caller-provided
// device instances instead of a factory: the pool size is len(runs) and the
// instances are reused as-is, so a long-lived process (a fleet worker
// executing many shards of one campaign) pays the device construction cost
// once, not once per shard. The instances must model the same netlist and
// workload the golden reference was recorded from; they are handed back in
// whatever state the last batch left them (every batch restores a golden
// checkpoint before injecting, so reuse is safe by construction).
func (c *Controller) RunCampaignBatchedPoolWith(cfg CampaignConfig, runs []Run64) (*CampaignResult, error) {
	rw := make([]RunW, len(runs))
	for i, r := range runs {
		rw[i] = AsRunW(r)
	}
	return c.RunCampaignBatchedPoolWithW(cfg, rw)
}

// RunCampaignBatchedPoolWithW is RunCampaignBatchedPoolWith over wide
// device instances. All instances must share one lane count.
func (c *Controller) RunCampaignBatchedPoolWithW(cfg CampaignConfig, runs []RunW) (*CampaignResult, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("hafi: pool campaign needs at least one device instance")
	}
	return c.runCampaignPool(cfg, runs, nil)
}

// runCampaignPool is the shared pool engine: exactly one of runs/factory is
// set, fixing the pool size or constructing it on demand.
func (c *Controller) runCampaignPool(cfg CampaignConfig, runs []RunW, factory func() (RunW, error)) (*CampaignResult, error) {
	timeout, err := c.prepareCampaign(&cfg)
	if err != nil {
		return nil, err
	}
	ctx := cfg.context()
	sp := cfg.Obs.StartSpan("campaign")
	defer sp.End()
	met := newCampaignMetrics(cfg.Obs, len(cfg.Points))
	st := newBatchState(&cfg, met)

	nw := cfg.Workers
	if runs != nil {
		nw = len(runs)
	}
	if nw < 1 {
		nw = 1
	}
	// The batch plan depends on the device lane count, so at least one
	// instance must exist before planning; the rest of a factory pool is
	// constructed after the plan fixes the worker count.
	if runs == nil {
		first, err := factory()
		if err != nil {
			return nil, fmt.Errorf("hafi: pool worker 0: %w", err)
		}
		runs = append(make([]RunW, 0, nw), first)
	}
	lanes := runs[0].Lanes()
	for i, r := range runs {
		if r.Lanes() != lanes {
			return nil, fmt.Errorf("hafi: pool device %d has %d lanes, pool runs at %d", i, r.Lanes(), lanes)
		}
	}
	met.setLanes(lanes)

	specs, err := c.classifyPoints(&cfg, st, lanes)
	if err != nil {
		return nil, err
	}

	if nw > len(specs) && len(specs) > 0 {
		nw = len(specs)
	}
	if factory != nil {
		for len(runs) < nw {
			r, err := factory()
			if err != nil {
				return nil, fmt.Errorf("hafi: pool worker %d: %w", len(runs), err)
			}
			if r.Lanes() != lanes {
				return nil, fmt.Errorf("hafi: pool device %d has %d lanes, pool runs at %d", len(runs), r.Lanes(), lanes)
			}
			runs = append(runs, r)
		}
	}
	runs = runs[:nw]
	met.setWorkers(nw)

	// batchDone carries one completed batch back to the emitter. outcomes
	// aliases a pooled buffer (buf) returned to outPool after emission.
	type batchDone struct {
		spec     int
		conv     int
		saved    int64
		outcomes []Outcome
		buf      *[]Outcome
		err      error
	}
	work := make(chan int)
	results := make(chan batchDone, nw)
	outPool := sync.Pool{New: func() interface{} {
		s := make([]Outcome, 0, lanes)
		return &s
	}}

	// Dispatcher: batch indices strictly in plan order, stopping (never
	// mid-batch) once the campaign context is cancelled.
	go func() {
		defer close(work)
		for si := range specs {
			select {
			case work <- si:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(run RunW) {
			defer wg.Done()
			var scratch batchScratch
			scratch.suspendOK = true
			// Straggler-bearing batches are held back (the emitter's reorder
			// buffer absorbs the gap) and resolved together on this worker's
			// device once the plan drains; spec/item of a pool worker's
			// suspLane index heldDone, not the plan.
			var (
				heldDone    []batchDone
				heldWaiting []int
				susp        []suspLane
			)
			for si := range work {
				d := batchDone{spec: si}
				nsusp := 0
				// Worker-level backstop, mirroring runParallel: panics are
				// already isolated per batch and per lane inside runSpec, so
				// anything reaching here is a harness bug — surface it as an
				// error instead of crashing the campaign.
				func() {
					defer func() {
						if r := recover(); r != nil {
							d.err = fmt.Errorf("hafi: pool worker panicked: %v", r)
						}
					}()
					met.workerBusy(1)
					defer met.workerBusy(-1)
					var out []Outcome
					d.conv, d.saved, out = c.runSpec(&cfg, run, specs[si], timeout, met, &scratch)
					// The scratch is reused for the next batch; the emitter
					// needs a stable copy. The copy's backing array cycles
					// through outPool instead of being reallocated per batch.
					d.buf = outPool.Get().(*[]Outcome)
					d.outcomes = append((*d.buf)[:0], out...)
					nsusp = len(scratch.susp)
				}()
				if d.err == nil && nsusp > 0 {
					for _, s := range scratch.susp {
						s.spec = len(heldDone)
						susp = append(susp, s)
					}
					heldDone = append(heldDone, d)
					heldWaiting = append(heldWaiting, nsusp)
					continue
				}
				results <- d
			}
			if len(susp) > 0 {
				met.workerBusy(1)
				c.resolveStragglers(&cfg, run, timeout, susp, func(hi, item int, o Outcome) {
					heldDone[hi].outcomes[item] = o
					heldWaiting[hi]--
				}, &scratch)
				met.workerBusy(-1)
			}
			for hi, d := range heldDone {
				if heldWaiting[hi] > 0 {
					// Cancelled mid-resolution: the batch has unclassified
					// lanes, so it must not reach the journal. The emitter
					// stops releasing at the first missing spec, keeping the
					// journal a contiguous plan prefix.
					*d.buf = d.outcomes[:0]
					outPool.Put(d.buf)
					continue
				}
				results <- d
			}
		}(runs[w])
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Emitter: reorder buffer releasing the contiguous prefix in plan
	// order. After an emission error the drain continues (workers must not
	// block) but nothing further is journaled.
	pending := make(map[int]batchDone)
	next := 0
	var firstErr error
	for d := range results {
		pending[d.spec] = d
		for {
			dd, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if firstErr == nil && dd.err != nil {
				firstErr = dd.err
			}
			if firstErr == nil {
				st.res.Converged += dd.conv
				st.res.CyclesSaved += dd.saved
				if err := st.emitSpec(specs[dd.spec], dd.outcomes); err != nil {
					firstErr = err
				}
			}
			if dd.buf != nil {
				*dd.buf = dd.outcomes[:0]
				outPool.Put(dd.buf)
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	st.res.Interrupted = ctx.Err() != nil
	return st.res, nil
}

// batchState bundles the result accumulation and journal emission shared
// by the single-instance and pool engines. All methods must be called from
// a single goroutine (the pool engine funnels completed batches through
// its reorder buffer for exactly this reason).
type batchState struct {
	cfg  *CampaignConfig
	met  *campaignMetrics
	res  *CampaignResult
	prog *progressCounter
}

func newBatchState(cfg *CampaignConfig, met *campaignMetrics) *batchState {
	return &batchState{cfg: cfg, met: met, res: newCampaignResult(), prog: newProgress(cfg.Progress)}
}

// journalPoint logs one classified point; a non-nil hit (attribution of a
// pruned point) lands immediately before the experiment record so a crash
// between the two leaves an orphan hit, never an unattributed pruned
// point.
func (st *batchState) journalPoint(rec journal.Record, hit *journal.MATEHit) error {
	if st.cfg.Journal != nil {
		if hit != nil {
			if err := st.cfg.Journal.AppendMATEHit(*hit); err != nil {
				return err
			}
		}
		if err := st.cfg.Journal.Append(rec); err != nil {
			return err
		}
	}
	st.met.point(rec)
	st.prog.bump()
	return nil
}

func record(idx uint64, p FaultPoint) journal.Record {
	return pointRecord(idx, p)
}

// credit accounts one pruned point to its MATE and builds the journal
// attribution record.
func (st *batchState) credit(idx uint64, p FaultPoint, mate int) *journal.MATEHit {
	st.res.Skipped++
	st.res.PrunedByMATE[mate]++
	width := len(st.cfg.MATESet.MATEs[mate].Literals)
	st.met.matePruned(mate, width)
	return &journal.MATEHit{Index: idx, FF: uint32(p.FF), MATE: uint32(mate), Width: uint16(width)}
}

// emitSpec folds one completed batch into the result and journal, lane by
// lane in batch order.
func (st *batchState) emitSpec(spec batchSpec, outcomes []Outcome) error {
	for j, it := range spec.items {
		o := outcomes[j]
		st.res.Total++
		rec := record(it.idx, it.p)
		var hit *journal.MATEHit
		if spec.validate {
			hit = st.credit(it.idx, it.p, it.mate)
			rec.Pruned = true
			if o != OutcomeBenign {
				st.res.SkippedWrong++
				rec.SkippedWrong = true
			}
		} else {
			st.res.Executed++
			st.res.ByOutcome[o]++
			rec.Outcome = uint8(o)
		}
		if err := st.journalPoint(rec, hit); err != nil {
			return err
		}
	}
	return nil
}

// classifyPoints performs the pre-batch classification pass in fault-list
// order: resumed points replay, pruned points settle immediately (final
// unless they still need validation), and everything else lands in the
// deterministic batch plan. The returned specs are the to-run batches
// followed by the to-validate batches, each grouped by injection cycle
// into ≤lanes-lane batches — identical for the single-instance and pool
// engines.
func (c *Controller) classifyPoints(cfg *CampaignConfig, st *batchState, lanes int) ([]batchSpec, error) {
	var toRun, toValidate []batchItem
	for i, p := range cfg.Points {
		idx := uint64(i)
		if cfg.Resume != nil {
			if rec, ok := cfg.Resume.ByIndex[idx]; ok {
				st.res.replay(rec, replayHit(cfg.Resume, idx))
				st.met.replay()
				continue
			}
		}
		if cfg.MATESet != nil {
			if mate, ok := c.provedBenign(p); ok {
				if cfg.ValidateSkipped {
					toValidate = append(toValidate, batchItem{idx, p, mate})
					continue
				}
				st.res.Total++
				hit := st.credit(idx, p, mate)
				rec := record(idx, p)
				rec.Pruned = true
				if err := st.journalPoint(rec, hit); err != nil {
					return nil, err
				}
				continue
			}
		}
		toRun = append(toRun, batchItem{idx, p, -1})
	}
	return append(planBatches(toRun, false, lanes), planBatches(toValidate, true, lanes)...), nil
}

// batchItem carries a fault point together with its global fault-list
// index (the journal key) and, for validated-skipped points, the set index
// of the crediting MATE (-1 for executed points).
type batchItem struct {
	idx  uint64
	p    FaultPoint
	mate int
}

// batchSpec is one planned ≤lanes-lane batch: same-cycle items in the
// deterministic plan order shared by every batched engine.
type batchSpec struct {
	items    []batchItem
	cycle    int
	validate bool
}

// planBatches groups items by injection cycle into ≤lanes-lane batches.
// The grouping (stable sort by cycle, greedy fill) is deterministic, so
// the single-instance and pool engines produce the same plan — the basis
// of their byte-identical journals. Since records are emitted per point in
// item order and the sort is stable, the journal byte stream is also
// identical across lane counts: wider devices only change how many
// consecutive plan items share one simulation.
func planBatches(items []batchItem, validate bool, lanes int) []batchSpec {
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return items[idx[a]].p.Cycle < items[idx[b]].p.Cycle })
	var specs []batchSpec
	for lo := 0; lo < len(idx); {
		cycle := items[idx[lo]].p.Cycle
		hi := lo
		for hi < len(idx) && hi-lo < lanes && items[idx[hi]].p.Cycle == cycle {
			hi++
		}
		spec := batchSpec{cycle: cycle, validate: validate, items: make([]batchItem, 0, hi-lo)}
		for _, ii := range idx[lo:hi] {
			spec.items = append(spec.items, items[ii])
		}
		specs = append(specs, spec)
		lo = hi
	}
	return specs
}

// batchScratch is the per-engine-instance reusable working set of the
// batch loop: one campaign runs thousands of batches, and per-batch slice
// allocations were a measurable share of the campaign's allocation count.
// Sized on first use for the device's lane count.
type batchScratch struct {
	lanes    int
	batch    []FaultPoint
	outcomes []Outcome
	solo     []Outcome
	ffs      []laneFFs
	dffs     []deltaFFs
	ends     []int
	laneItem []int
	witness  []int32
	src      []uint16
	used     []uint64
	halted   []uint64
	done     []uint64

	// susp collects the lanes runBatch suspended into the straggler pool
	// (item indices are batch-relative; runSpec's caller rebases them);
	// suspendOK arms suspension — only the single-instance engine sets it,
	// the pool engine's per-point outcomes flow through worker channels
	// that have nowhere to park an unresolved lane.
	susp      []suspLane
	suspendOK bool
}

// suspLane is one suspended experiment: the plan spec and batch item it
// settles, the logical cycle its snapshot was taken at, and the opaque
// target-specific lane state (SuspendRunW.ExportLane).
type suspLane struct {
	spec  int
	item  int
	cyc   int
	state interface{}
}

func (sc *batchScratch) init(lanes int) {
	if sc.lanes == lanes {
		return
	}
	groups := lanes / 64
	sc.lanes = lanes
	sc.batch = make([]FaultPoint, lanes)
	sc.outcomes = make([]Outcome, lanes)
	sc.solo = make([]Outcome, 1)
	sc.ffs = make([]laneFFs, lanes)
	sc.dffs = make([]deltaFFs, lanes)
	sc.ends = make([]int, lanes)
	sc.laneItem = make([]int, lanes)
	sc.witness = make([]int32, lanes)
	sc.src = make([]uint16, lanes)
	sc.used = make([]uint64, groups)
	sc.halted = make([]uint64, groups)
	sc.done = make([]uint64, groups)
}

// runSpec executes one planned batch (with panic isolation and lane-by-lane
// retry) and returns the convergence statistics plus the per-lane outcomes,
// which alias the scratch and are only valid until the next runSpec call on
// the same scratch. Items the batch suspended into the straggler pool are
// listed in scratch.susp (reset on every call) and have no outcome yet;
// the single-instance engine resolves them after the plan drains, the pool
// engine never suspends.
func (c *Controller) runSpec(cfg *CampaignConfig, run RunW, spec batchSpec, timeout int, met *campaignMetrics, scratch *batchScratch) (converged int, saved int64, outcomes []Outcome) {
	scratch.init(run.Lanes())
	scratch.susp = scratch.susp[:0]
	n := len(spec.items)
	batch := scratch.batch[:n]
	for j, it := range spec.items {
		batch[j] = it.p
	}
	outcomes = scratch.outcomes[:n]

	met.batch(n)
	bsp := cfg.Obs.StartSpan("campaign/batch")
	early := !cfg.DisableEarlyExit
	conv, sv, panicked := c.runBatchSafe(cfg, run, batch, spec.cycle, timeout, early, outcomes, scratch, met)
	if panicked {
		// Isolate the faulty lane: retry each point as its own 1-lane
		// batch. Only the point(s) that still panic solo are charged with
		// the harness error; healthy lanes get their verdict.
		conv, sv = 0, 0
		scratch.susp = scratch.susp[:0]
		for j := range batch {
			mark := len(scratch.susp)
			soloConv, soloSaved, soloPanic := c.runBatchSafe(cfg, run, batch[j:j+1], spec.cycle, timeout, early, scratch.solo[:1], scratch, met)
			switch {
			case soloPanic:
				scratch.susp = scratch.susp[:mark]
				outcomes[j] = OutcomeHarnessError
			case len(scratch.susp) > mark:
				// The solo lane suspended itself; rebase its item index
				// from the 1-lane sub-batch to the spec.
				scratch.susp[mark].item = j
				conv += soloConv
				sv += soloSaved
			default:
				outcomes[j] = scratch.solo[0]
				conv += soloConv
				sv += soloSaved
			}
		}
	}
	met.convergedN(conv, sv)
	bsp.Detail("cycle %d, %d lanes, %d converged", spec.cycle, n, conv)
	met.batchDone(bsp.End(), n)
	return conv, sv, outcomes
}

// runBatchSafe executes one same-cycle batch with panic isolation.
func (c *Controller) runBatchSafe(cfg *CampaignConfig, run RunW, batch []FaultPoint, cycle, timeout int, early bool, outcomes []Outcome, sc *batchScratch, met *campaignMetrics) (converged int, saved int64, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			converged, saved, panicked = 0, 0, true
		}
	}()
	conv, sv := c.runBatch(cfg, run, batch, cycle, timeout, early, outcomes, sc, met)
	return conv, sv, false
}

// runBatch loads the shared checkpoint, injects one fault per lane (each
// lane's fault model decides which flip-flops change on which cycle), runs
// to halt/timeout and classifies every lane into outcomes (len(batch)
// entries). All points share cycle.
//
// With early set, lanes retire individually: each cycle the lane-parallel
// divergence mask (OR over all flip-flops of lane^golden) identifies lanes
// whose flip-flop state equals the golden reference; those of them past
// their fault's active window whose memory write digest also matches golden
// retire benign on the spot. The batch ends once every lane has halted or
// retired, which is what turns wide batches with one slow lane from
// worst-case into average-case runtime.
//
// When the device supports it (DeltaRunW) and the config allows, the batch
// starts in cone-delta mode: gate evaluation restricted to the frontier of
// wires differing from the golden trace, with injections, divergence masks
// and the halted flag all answered in delta space. The batch falls back to
// dense dispatch — once, irreversibly — when the frontier grows past the
// occupancy threshold or the golden trace ends (the final signature read
// always happens on materialized dense state). Classification is identical
// in both modes.
func (c *Controller) runBatch(cfg *CampaignConfig, run RunW, batch []FaultPoint, cycle, timeout int, early bool, outcomes []Outcome, sc *batchScratch, met *campaignMetrics) (converged int, saved int64) {
	run.LoadCheckpoint(c.golden.Checkpoints[cycle])
	groups := sc.lanes / 64
	used, halted, done := sc.used, sc.halted, sc.done
	for g := 0; g < groups; g++ {
		used[g], halted[g], done[g] = 0, 0, 0
	}
	// nLanes live device lanes carry the batch; laneItem maps each to its
	// batch item (identity until retired lanes are compacted away, then a
	// shrinking prefix of the device).
	nLanes := len(batch)
	laneItem := sc.laneItem
	// witness[lane] is the lane's watched flip-flop: the index where the
	// convergence check last saw it diverge. As long as that flip-flop
	// still differs from golden the lane cannot have converged, so the
	// per-cycle check is one word load instead of a scan over every
	// flip-flop — the classic watched-literal trick. Any valid index is a
	// sound starting point; 0 simply forces one full scan on first use.
	witness := sc.witness
	for lane := range batch {
		used[lane>>6] |= 1 << (uint(lane) & 63)
		laneItem[lane] = lane
		witness[lane] = 0
	}
	// Lane compaction: once enough lanes have been classified (done) that
	// the survivors fit in fewer 64-lane groups, pack them into the low
	// lanes and shrink the device — the per-cycle cost of a wide batch then
	// tracks its live lanes instead of its original width. Dense mode only:
	// the cone-delta evaluator is anchored to full-width golden broadcasts.
	compactRun, _ := run.(CompactRunW)
	if sc.lanes <= 64 {
		compactRun = nil // nothing to shrink below one group
	}

	// The golden trace bounds delta execution: past its last recorded row
	// there is nothing to be relative to.
	traceEnd := 0
	if c.golden.Trace != nil {
		traceEnd = c.golden.Trace.NumCycles()
		if c.golden.HaltCycle < traceEnd {
			traceEnd = c.golden.HaltCycle
		}
	}
	var d *sim.DeltaState
	var dr DeltaRunW
	if !cfg.DisableDelta && cycle < traceEnd {
		if drw, ok := run.(DeltaRunW); ok {
			if ds := drw.InitDelta(c.golden.Trace); ds != nil {
				d, dr = ds, drw
				d.Reset(cycle)
			}
		}
	}
	deltaMode := d != nil
	fallbackOps := 0
	if deltaMode {
		pct := cfg.DeltaFallbackPercent
		if pct <= 0 {
			pct = DefaultDeltaFallbackPercent
		}
		fallbackOps = d.NumOps() * pct / 100
	}

	ends := sc.ends
	inject := func(lane int, p FaultPoint, cyc int) {
		if deltaMode {
			Model(p.Model).Inject(&sc.dffs[lane], p, cyc)
		} else {
			Model(p.Model).Inject(&sc.ffs[lane], p, cyc)
		}
	}
	for lane, p := range batch {
		sc.ffs[lane] = laneFFs{r: run, lane: lane}
		sc.dffs[lane] = deltaFFs{d: d, lane: lane}
		ends[lane] = Model(p.Model).ActiveEnd(p)
		inject(lane, p, cycle)
	}

	readHalted := func() {
		for g := 0; g < groups; g++ {
			if deltaMode {
				halted[g] = dr.HaltedMaskDeltaG(g)
			} else {
				halted[g] = run.HaltedMaskG(g)
			}
		}
	}
	allDone := func() bool {
		for g := 0; g < groups; g++ {
			if (halted[g]|done[g])&used[g] != used[g] {
				return false
			}
		}
		return true
	}

	mw := run.MachW()
	digests := c.golden.MemDigests

	// Straggler suspension (see resolveStragglers): once the batch is past
	// every injection end and the golden digest horizon, a surviving lane
	// can only run to its halt or its timeout — no convergence retirement,
	// no re-injection, no golden-relative check touches it again. From that
	// cycle on, a batch down to at most one group of live lanes exports
	// them into the straggler pool instead of dragging a nearly empty
	// device through the remaining cycles alone.
	suspRun, _ := run.(SuspendRunW)
	if !sc.suspendOK {
		suspRun = nil
	}
	suspendAfter := len(digests)
	for lane := 0; lane < nLanes; lane++ {
		if ends[lane] > suspendAfter {
			suspendAfter = ends[lane]
		}
	}

	for cyc := cycle; cyc < timeout; cyc++ {
		if cyc > cycle {
			readHalted()
			for lane := 0; lane < nLanes; lane++ {
				if cyc < ends[lane] && (halted[lane>>6]|done[lane>>6])>>(uint(lane)&63)&1 == 0 {
					inject(lane, batch[laneItem[lane]], cyc)
				}
			}
		}
		// Re-read after the injections: a fault landing in the halt flag
		// itself must be visible to this cycle's retirement/termination
		// decisions, exactly as in the historical 64-lane engine.
		readHalted()
		if !deltaMode {
			// Eager classification: a halted lane's state is frozen (the
			// sequential controller reads its verdict at the halt and the
			// engines journal byte-identically), so its signature now equals
			// its signature at batch end. Classifying it immediately marks it
			// done, which is what feeds the lane compaction below.
			for g := 0; g < groups; g++ {
				h := used[g] & halted[g] &^ done[g]
				for h != 0 {
					l := bits.TrailingZeros64(h)
					h &^= 1 << uint(l)
					lane := g<<6 + l
					if run.SignatureLane(lane) == c.golden.Signature {
						outcomes[laneItem[lane]] = OutcomeBenign
					} else {
						outcomes[laneItem[lane]] = OutcomeSDC
					}
					done[g] |= 1 << uint(l)
				}
			}
		}
		if early && cyc < len(digests) {
			var row []uint64
			if !deltaMode {
				row = c.golden.Trace.Row(cyc)
			}
			for g := 0; g < groups; g++ {
				// Eligible for retirement: in use, not halted, not already
				// classified, and past the fault's active window (an active
				// lane is re-injected above and cannot match golden mid-window
				// anyway; the explicit gate keeps the invariant local).
				elig := used[g] &^ (halted[g] | done[g])
				if elig == 0 {
					continue
				}
				base := g << 6
				hi := base + 64
				if hi > nLanes {
					hi = nLanes
				}
				for lane := base; lane < hi; lane++ {
					if cyc < ends[lane] {
						elig &^= 1 << uint(lane-base)
					}
				}
				if elig == 0 {
					continue
				}
				if deltaMode {
					conv := elig &^ d.DivergenceMaskG(g)
					for conv != 0 {
						l := bits.TrailingZeros64(conv)
						conv &^= 1 << uint(l)
						lane := base + l
						if run.MemDigestLane(lane) == digests[cyc] {
							done[g] |= 1 << uint(l)
							outcomes[laneItem[lane]] = OutcomeBenign
							converged++
							saved += int64(c.golden.HaltCycle - cyc)
						}
					}
					continue
				}
				// Dense mode: watched-flip-flop filter. A lane whose watched
				// flip-flop still differs from golden has not converged and
				// costs one load; the digest gate then excludes lanes that
				// could not retire this cycle anyway, and only the remainder
				// pays the full flip-flop scan (which also picks the next
				// watched flip-flop). Retirement decisions — and therefore
				// the converged/saved statistics — are identical to the
				// group-wide divergence-mask formulation this replaces.
				for m := elig; m != 0; {
					l := bits.TrailingZeros64(m)
					m &^= 1 << uint(l)
					lane := base + l
					if mw.FFDivergedLane(int(witness[lane]), lane, row) {
						continue
					}
					if run.MemDigestLane(lane) != digests[cyc] {
						continue
					}
					if k := mw.FirstDivergedFF(lane, row); k >= 0 {
						witness[lane] = int32(k)
						continue
					}
					done[g] |= 1 << uint(l)
					outcomes[laneItem[lane]] = OutcomeBenign
					converged++
					saved += int64(c.golden.HaltCycle - cyc)
				}
			}
		}
		if allDone() {
			break
		}
		if suspRun != nil && !deltaMode && cyc >= suspendAfter && timeout-cyc > stragglerMinTail {
			live := 0
			for g := 0; g < groups; g++ {
				live += bits.OnesCount64(used[g] &^ done[g])
			}
			if live <= stragglerMaxLive {
				for g := 0; g < groups; g++ {
					m := used[g] &^ done[g]
					for m != 0 {
						l := bits.TrailingZeros64(m)
						m &^= 1 << uint(l)
						lane := g<<6 + l
						sc.susp = append(sc.susp, suspLane{
							item:  laneItem[lane],
							cyc:   cyc,
							state: suspRun.ExportLane(lane),
						})
						done[g] |= 1 << uint(l)
					}
				}
				break
			}
		}
		if compactRun != nil && !deltaMode {
			live := 0
			for g := 0; g < groups; g++ {
				live += bits.OnesCount64(used[g] &^ done[g])
			}
			if ng := (live + 63) >> 6; ng < groups {
				src := sc.src[:0]
				n := 0
				for g := 0; g < groups; g++ {
					m := used[g] &^ done[g]
					for m != 0 {
						l := bits.TrailingZeros64(m)
						m &^= 1 << uint(l)
						lane := g<<6 + l
						// n <= lane throughout, so the forward moves never
						// clobber an entry still to be read.
						src = append(src, uint16(lane))
						laneItem[n] = laneItem[lane]
						ends[n] = ends[lane]
						witness[n] = witness[lane]
						n++
					}
				}
				compactRun.CompactLanes(src)
				nLanes, groups = n, ng
				for g := 0; g < groups; g++ {
					used[g], halted[g], done[g] = 0, 0, 0
				}
				for lane := 0; lane < nLanes; lane++ {
					used[lane>>6] |= 1 << (uint(lane) & 63)
				}
			}
		}
		if deltaMode {
			dr.StepDelta()
			if d.Cycle() >= traceEnd || d.LastEvaluated() > fallbackOps {
				d.Materialize()
				deltaMode = false
				met.frontierFallback()
			}
		} else {
			run.Step()
		}
	}
	if deltaMode {
		// Final classification (halted flag, signatures) reads dense
		// machine state.
		d.Materialize()
		deltaMode = false
	}
	if d != nil {
		met.deltaSkipped(d.TakeSkipped())
	}
	readHalted()
	for lane := 0; lane < nLanes; lane++ {
		if done[lane>>6]>>(uint(lane)&63)&1 == 1 {
			continue
		}
		switch {
		case halted[lane>>6]>>(uint(lane)&63)&1 == 0:
			outcomes[laneItem[lane]] = OutcomeHang
		case run.SignatureLane(lane) == c.golden.Signature:
			outcomes[laneItem[lane]] = OutcomeBenign
		default:
			outcomes[laneItem[lane]] = OutcomeSDC
		}
	}
	return converged, saved
}

// resolveStragglers finishes the suspended lanes of all batches together:
// waves of up to the device width are imported lane by lane, packed to the
// wave's group count and run until every lane halts or reaches its own
// logical timeout. A campaign whose batches each end with a few timeout
// candidates (hangs dominate: a runaway program counter sweeping empty
// instruction memory does not revisit a state within the timeout window,
// so no loop detector can retire it early) thus pays for one packed tail
// instead of one near-empty tail per batch. Classification is exactly
// runBatch's: a lane halted at or before its logical timeout gets its
// signature verdict, a lane still running at the timeout is a hang — so
// outcomes, and the journal, are identical to the unsuspended engine.
// Waves are panic-isolated like batches: a poisoned wave is retried lane
// by lane, and only lanes that fail solo are charged OutcomeHarnessError.
func (c *Controller) resolveStragglers(cfg *CampaignConfig, run RunW, timeout int, susp []suspLane, set func(spec, item int, o Outcome), sc *batchScratch) {
	ctx := cfg.context()
	sp := cfg.Obs.StartSpan("campaign/stragglers")
	defer sp.End()
	sp.Detail("%d suspended lanes", len(susp))
	sr := run.(SuspendRunW) // suspLane entries exist only for SuspendRunW devices
	for lo := 0; lo < len(susp); lo += sc.lanes {
		if ctx.Err() != nil {
			return
		}
		hi := lo + sc.lanes
		if hi > len(susp) {
			hi = len(susp)
		}
		wave := susp[lo:hi]
		out := sc.outcomes[:len(wave)]
		if c.runWaveSafe(run, sr, timeout, wave, out, sc) {
			for i := range wave {
				solo := sc.solo[:1]
				if c.runWaveSafe(run, sr, timeout, wave[i:i+1], solo, sc) {
					set(wave[i].spec, wave[i].item, OutcomeHarnessError)
				} else {
					set(wave[i].spec, wave[i].item, solo[0])
				}
			}
			continue
		}
		for i := range wave {
			set(wave[i].spec, wave[i].item, out[i])
		}
	}
}

// runWaveSafe executes one straggler wave with panic isolation.
func (c *Controller) runWaveSafe(run RunW, sr SuspendRunW, timeout int, wave []suspLane, out []Outcome, sc *batchScratch) (panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
		}
	}()
	c.runWave(run, sr, timeout, wave, out, sc)
	return false
}

// runWave imports one wave of suspended lanes into the shared device and
// runs them out. Lanes come from different batches, so they carry
// different logical cycles: the wave steps them together and tracks each
// lane's remaining cycles individually — the machine's dynamics depend
// only on its state, never on the absolute cycle number, which is what
// makes heterogeneous lanes sound. out[i] receives wave[i]'s outcome.
func (c *Controller) runWave(run RunW, sr SuspendRunW, timeout int, wave []suspLane, out []Outcome, sc *batchScratch) {
	n := len(wave)
	run.MachW().Reset() // full width restored; non-wave lanes hold the reset state
	for i, s := range wave {
		sr.ImportLane(i, s.state)
	}
	groups := sc.lanes / 64
	cr, _ := run.(CompactRunW)
	if ng := (n + 63) >> 6; cr != nil && ng < groups {
		src := sc.src[:n]
		for i := range src {
			src[i] = uint16(i)
		}
		cr.CompactLanes(src)
		groups = ng
	}
	used, halted, done := sc.used, sc.halted, sc.done
	// slot maps a device lane to its wave index, deadline to the step count
	// at which it reaches its logical timeout; compaction permutes both.
	slot, deadline := sc.laneItem, sc.ends
	for g := 0; g < groups; g++ {
		used[g], halted[g], done[g] = 0, 0, 0
	}
	for i := range wave {
		used[i>>6] |= 1 << (uint(i) & 63)
		slot[i] = i
		deadline[i] = timeout - wave[i].cyc
	}
	nLanes := n
	for t := 0; ; t++ {
		for g := 0; g < groups; g++ {
			halted[g] = run.HaltedMaskG(g)
		}
		// Halted lanes classify first — a lane halted exactly at its
		// timeout state still gets its signature verdict, matching the
		// order of runBatch's final classification.
		for g := 0; g < groups; g++ {
			h := used[g] & halted[g] &^ done[g]
			for h != 0 {
				l := bits.TrailingZeros64(h)
				h &^= 1 << uint(l)
				lane := g<<6 + l
				if run.SignatureLane(lane) == c.golden.Signature {
					out[slot[lane]] = OutcomeBenign
				} else {
					out[slot[lane]] = OutcomeSDC
				}
				done[g] |= 1 << uint(l)
			}
		}
		for lane := 0; lane < nLanes; lane++ {
			if t >= deadline[lane] && (used[lane>>6]&^done[lane>>6])>>(uint(lane)&63)&1 == 1 {
				out[slot[lane]] = OutcomeHang
				done[lane>>6] |= 1 << (uint(lane) & 63)
			}
		}
		allDone := true
		for g := 0; g < groups; g++ {
			if done[g]&used[g] != used[g] {
				allDone = false
				break
			}
		}
		if allDone {
			return
		}
		if cr != nil {
			live := 0
			for g := 0; g < groups; g++ {
				live += bits.OnesCount64(used[g] &^ done[g])
			}
			if ng := (live + 63) >> 6; ng < groups {
				src := sc.src[:0]
				nn := 0
				for g := 0; g < groups; g++ {
					m := used[g] &^ done[g]
					for m != 0 {
						l := bits.TrailingZeros64(m)
						m &^= 1 << uint(l)
						lane := g<<6 + l
						src = append(src, uint16(lane))
						slot[nn] = slot[lane]
						deadline[nn] = deadline[lane]
						nn++
					}
				}
				cr.CompactLanes(src)
				nLanes, groups = nn, ng
				for g := 0; g < groups; g++ {
					used[g], halted[g], done[g] = 0, 0, 0
				}
				for lane := 0; lane < nLanes; lane++ {
					used[lane>>6] |= 1 << (uint(lane) & 63)
				}
			}
		}
		run.Step()
	}
}
