package hafi

import (
	"fmt"
	"sort"
)

// RunCampaignBatched executes the campaign on a 64-lane batched device:
// injection points that share a cycle are grouped, up to 64 of them run as
// lanes of one bit-parallel simulation. Semantically identical to
// RunCampaign (same outcomes for every point); typically an order of
// magnitude faster. MATE pruning is applied before batching, exactly like
// the sequential controller. ValidateSkipped re-executes pruned points
// batched as well.
func (c *Controller) RunCampaignBatched(cfg CampaignConfig, run64 Run64) (*CampaignResult, error) {
	if cfg.TimeoutFactor <= 0 {
		cfg.TimeoutFactor = 2
	}
	timeout := int(cfg.TimeoutFactor * float64(c.golden.HaltCycle))
	if timeout <= c.golden.HaltCycle {
		timeout = c.golden.HaltCycle + 1
	}

	c.indexMATEs(cfg.MATESet)

	res := &CampaignResult{ByOutcome: map[Outcome]int{}}
	var toRun, toValidate []FaultPoint
	for _, p := range cfg.Points {
		if p.Cycle >= len(c.golden.Checkpoints) {
			return nil, fmt.Errorf("hafi: injection cycle %d beyond golden run (%d)", p.Cycle, len(c.golden.Checkpoints))
		}
		res.Total++
		if cfg.MATESet != nil && c.provedBenign(p) {
			res.Skipped++
			if cfg.ValidateSkipped {
				toValidate = append(toValidate, p)
			}
			continue
		}
		res.Executed++
		toRun = append(toRun, p)
	}

	outcomes := c.executeBatched(run64, toRun, timeout)
	for _, o := range outcomes {
		res.ByOutcome[o]++
	}
	if cfg.ValidateSkipped {
		for _, o := range c.executeBatched(run64, toValidate, timeout) {
			if o != OutcomeBenign {
				res.SkippedWrong++
			}
		}
	}
	return res, nil
}

// executeBatched groups points by injection cycle into ≤64-lane batches
// and classifies every lane.
func (c *Controller) executeBatched(run64 Run64, points []FaultPoint, timeout int) []Outcome {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return points[idx[a]].Cycle < points[idx[b]].Cycle })

	outcomes := make([]Outcome, len(points))
	for lo := 0; lo < len(idx); {
		cycle := points[idx[lo]].Cycle
		hi := lo
		for hi < len(idx) && hi-lo < 64 && points[idx[hi]].Cycle == cycle {
			hi++
		}
		batch := idx[lo:hi]

		run64.LoadCheckpoint(c.golden.Checkpoints[cycle])
		for lane, pi := range batch {
			run64.FlipLane(points[pi].FF, lane)
		}
		used := uint64(1)<<uint(len(batch)) - 1
		if len(batch) == 64 {
			used = ^uint64(0)
		}
		for cyc := cycle; cyc < timeout; cyc++ {
			if cyc > cycle {
				held := false
				haltedNow := run64.HaltedMask()
				for lane, pi := range batch {
					if cyc < points[pi].Cycle+points[pi].duration() && haltedNow>>uint(lane)&1 == 0 {
						run64.FlipLane(points[pi].FF, lane)
						held = true
					}
				}
				_ = held
			}
			if run64.HaltedMask()&used == used {
				break
			}
			run64.Step()
		}
		halted := run64.HaltedMask()
		for lane, pi := range batch {
			switch {
			case halted>>uint(lane)&1 == 0:
				outcomes[pi] = OutcomeHang
			case run64.SignatureLane(lane) == c.golden.Signature:
				outcomes[pi] = OutcomeBenign
			default:
				outcomes[pi] = OutcomeSDC
			}
		}
		lo = hi
	}
	return outcomes
}
