package hafi

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/journal"
)

// RunCampaignBatched executes the campaign on a 64-lane batched device:
// injection points that share a cycle are grouped, up to 64 of them run as
// lanes of one bit-parallel simulation. Semantically identical to
// RunCampaign (same outcomes for every point); typically an order of
// magnitude faster. MATE pruning is applied before batching, exactly like
// the sequential controller. ValidateSkipped re-executes pruned points
// batched as well.
//
// Lanes retire individually through the convergence early-exit (see
// Controller.execute): a lane whose flip-flop state and memory write
// digest re-converge with the golden reference after its hold window is
// classified benign immediately, and the batch ends as soon as every lane
// has halted or retired — long-tail batches no longer run to the slowest
// lane's halt. CampaignConfig.DisableEarlyExit restores full runs.
//
// Resilience matches the sequential engine: recovered journal records are
// replayed instead of re-executed, every newly classified point is
// journaled as its batch completes, cancellation drains at batch
// granularity, and a panicking batch is retried lane by lane so only the
// offending point is classified OutcomeHarnessError.
func (c *Controller) RunCampaignBatched(cfg CampaignConfig, run64 Run64) (*CampaignResult, error) {
	timeout, err := c.prepareCampaign(&cfg)
	if err != nil {
		return nil, err
	}
	ctx := cfg.context()
	sp := cfg.Obs.StartSpan("campaign")
	defer sp.End()
	met := newCampaignMetrics(cfg.Obs, len(cfg.Points))
	st := newBatchState(&cfg, met)

	specs, err := c.classifyPoints(&cfg, st)
	if err != nil {
		return nil, err
	}

	var scratch batchScratch
	for _, spec := range specs {
		if ctx.Err() != nil {
			break
		}
		conv, saved, outcomes := c.runSpec(&cfg, run64, spec, timeout, met, &scratch)
		st.res.Converged += conv
		st.res.CyclesSaved += saved
		if err := st.emitSpec(spec, outcomes); err != nil {
			return nil, err
		}
	}
	st.res.Interrupted = ctx.Err() != nil
	return st.res, nil
}

// RunCampaignBatchedPool is RunCampaignBatched sharded over a pool of
// cfg.Workers 64-lane device instances — the paper's "one FI controller
// distributes the FI campaign over several FPGAs", with each worker
// playing one FPGA. The factory must produce Run64 instances of the same
// netlist and workload the golden reference was recorded from.
//
// The batch plan is the exact plan of the single-instance engine, batches
// are dispatched to workers in plan order, and results are emitted through
// a reorder buffer in plan order from a single goroutine — so the journal
// an uninterrupted pool campaign writes is byte-identical to the
// single-instance engine's, and crash-resume/journal-diff behavior is
// unchanged. On cancellation, dispatch stops; in-flight batches finish and
// are emitted, so the journal still covers a contiguous plan prefix.
func (c *Controller) RunCampaignBatchedPool(cfg CampaignConfig, factory func() (Run64, error)) (*CampaignResult, error) {
	return c.runCampaignPool(cfg, nil, factory)
}

// RunCampaignBatchedPoolWith is RunCampaignBatchedPool over caller-provided
// device instances instead of a factory: the pool size is len(runs) and the
// instances are reused as-is, so a long-lived process (a fleet worker
// executing many shards of one campaign) pays the device construction cost
// once, not once per shard. The instances must model the same netlist and
// workload the golden reference was recorded from; they are handed back in
// whatever state the last batch left them (every batch restores a golden
// checkpoint before injecting, so reuse is safe by construction).
func (c *Controller) RunCampaignBatchedPoolWith(cfg CampaignConfig, runs []Run64) (*CampaignResult, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("hafi: pool campaign needs at least one device instance")
	}
	return c.runCampaignPool(cfg, runs, nil)
}

// runCampaignPool is the shared pool engine: exactly one of runs/factory is
// set, fixing the pool size or constructing it on demand.
func (c *Controller) runCampaignPool(cfg CampaignConfig, runs []Run64, factory func() (Run64, error)) (*CampaignResult, error) {
	timeout, err := c.prepareCampaign(&cfg)
	if err != nil {
		return nil, err
	}
	ctx := cfg.context()
	sp := cfg.Obs.StartSpan("campaign")
	defer sp.End()
	met := newCampaignMetrics(cfg.Obs, len(cfg.Points))
	st := newBatchState(&cfg, met)

	specs, err := c.classifyPoints(&cfg, st)
	if err != nil {
		return nil, err
	}

	nw := cfg.Workers
	if runs != nil {
		nw = len(runs)
	}
	if nw < 1 {
		nw = 1
	}
	if nw > len(specs) && len(specs) > 0 {
		nw = len(specs)
	}
	if runs == nil {
		runs = make([]Run64, nw)
		for i := range runs {
			if runs[i], err = factory(); err != nil {
				return nil, fmt.Errorf("hafi: pool worker %d: %w", i, err)
			}
		}
	} else {
		runs = runs[:nw]
	}
	met.setWorkers(nw)

	// batchDone carries one completed batch back to the emitter.
	type batchDone struct {
		spec     int
		conv     int
		saved    int64
		outcomes []Outcome
		err      error
	}
	work := make(chan int)
	results := make(chan batchDone, nw)

	// Dispatcher: batch indices strictly in plan order, stopping (never
	// mid-batch) once the campaign context is cancelled.
	go func() {
		defer close(work)
		for si := range specs {
			select {
			case work <- si:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(run64 Run64) {
			defer wg.Done()
			var scratch batchScratch
			for si := range work {
				d := batchDone{spec: si}
				// Worker-level backstop, mirroring runParallel: panics are
				// already isolated per batch and per lane inside runSpec, so
				// anything reaching here is a harness bug — surface it as an
				// error instead of crashing the campaign.
				func() {
					defer func() {
						if r := recover(); r != nil {
							d.err = fmt.Errorf("hafi: pool worker panicked: %v", r)
						}
					}()
					met.workerBusy(1)
					defer met.workerBusy(-1)
					var out []Outcome
					d.conv, d.saved, out = c.runSpec(&cfg, run64, specs[si], timeout, met, &scratch)
					// The scratch is reused for the next batch; the emitter
					// needs a stable copy.
					d.outcomes = append([]Outcome(nil), out...)
				}()
				results <- d
			}
		}(runs[w])
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Emitter: reorder buffer releasing the contiguous prefix in plan
	// order. After an emission error the drain continues (workers must not
	// block) but nothing further is journaled.
	pending := make(map[int]batchDone)
	next := 0
	var firstErr error
	for d := range results {
		pending[d.spec] = d
		for {
			dd, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if firstErr != nil {
				continue
			}
			if dd.err != nil {
				firstErr = dd.err
				continue
			}
			st.res.Converged += dd.conv
			st.res.CyclesSaved += dd.saved
			if err := st.emitSpec(specs[dd.spec], dd.outcomes); err != nil {
				firstErr = err
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	st.res.Interrupted = ctx.Err() != nil
	return st.res, nil
}

// batchState bundles the result accumulation and journal emission shared
// by the single-instance and pool engines. All methods must be called from
// a single goroutine (the pool engine funnels completed batches through
// its reorder buffer for exactly this reason).
type batchState struct {
	cfg  *CampaignConfig
	met  *campaignMetrics
	res  *CampaignResult
	prog *progressCounter
}

func newBatchState(cfg *CampaignConfig, met *campaignMetrics) *batchState {
	return &batchState{cfg: cfg, met: met, res: newCampaignResult(), prog: newProgress(cfg.Progress)}
}

// journalPoint logs one classified point; a non-nil hit (attribution of a
// pruned point) lands immediately before the experiment record so a crash
// between the two leaves an orphan hit, never an unattributed pruned
// point.
func (st *batchState) journalPoint(rec journal.Record, hit *journal.MATEHit) error {
	if st.cfg.Journal != nil {
		if hit != nil {
			if err := st.cfg.Journal.AppendMATEHit(*hit); err != nil {
				return err
			}
		}
		if err := st.cfg.Journal.Append(rec); err != nil {
			return err
		}
	}
	st.met.point(rec)
	st.prog.bump()
	return nil
}

func record(idx uint64, p FaultPoint) journal.Record {
	return pointRecord(idx, p)
}

// credit accounts one pruned point to its MATE and builds the journal
// attribution record.
func (st *batchState) credit(idx uint64, p FaultPoint, mate int) *journal.MATEHit {
	st.res.Skipped++
	st.res.PrunedByMATE[mate]++
	width := len(st.cfg.MATESet.MATEs[mate].Literals)
	st.met.matePruned(mate, width)
	return &journal.MATEHit{Index: idx, FF: uint32(p.FF), MATE: uint32(mate), Width: uint16(width)}
}

// emitSpec folds one completed batch into the result and journal, lane by
// lane in batch order.
func (st *batchState) emitSpec(spec batchSpec, outcomes []Outcome) error {
	for j, it := range spec.items {
		o := outcomes[j]
		st.res.Total++
		rec := record(it.idx, it.p)
		var hit *journal.MATEHit
		if spec.validate {
			hit = st.credit(it.idx, it.p, it.mate)
			rec.Pruned = true
			if o != OutcomeBenign {
				st.res.SkippedWrong++
				rec.SkippedWrong = true
			}
		} else {
			st.res.Executed++
			st.res.ByOutcome[o]++
			rec.Outcome = uint8(o)
		}
		if err := st.journalPoint(rec, hit); err != nil {
			return err
		}
	}
	return nil
}

// classifyPoints performs the pre-batch classification pass in fault-list
// order: resumed points replay, pruned points settle immediately (final
// unless they still need validation), and everything else lands in the
// deterministic batch plan. The returned specs are the to-run batches
// followed by the to-validate batches, each grouped by injection cycle
// into ≤64-lane batches — identical for the single-instance and pool
// engines.
func (c *Controller) classifyPoints(cfg *CampaignConfig, st *batchState) ([]batchSpec, error) {
	var toRun, toValidate []batchItem
	for i, p := range cfg.Points {
		idx := uint64(i)
		if cfg.Resume != nil {
			if rec, ok := cfg.Resume.ByIndex[idx]; ok {
				st.res.replay(rec, replayHit(cfg.Resume, idx))
				st.met.replay()
				continue
			}
		}
		if cfg.MATESet != nil {
			if mate, ok := c.provedBenign(p); ok {
				if cfg.ValidateSkipped {
					toValidate = append(toValidate, batchItem{idx, p, mate})
					continue
				}
				st.res.Total++
				hit := st.credit(idx, p, mate)
				rec := record(idx, p)
				rec.Pruned = true
				if err := st.journalPoint(rec, hit); err != nil {
					return nil, err
				}
				continue
			}
		}
		toRun = append(toRun, batchItem{idx, p, -1})
	}
	return append(planBatches(toRun, false), planBatches(toValidate, true)...), nil
}

// batchItem carries a fault point together with its global fault-list
// index (the journal key) and, for validated-skipped points, the set index
// of the crediting MATE (-1 for executed points).
type batchItem struct {
	idx  uint64
	p    FaultPoint
	mate int
}

// batchSpec is one planned ≤64-lane batch: same-cycle items in the
// deterministic plan order shared by every batched engine.
type batchSpec struct {
	items    []batchItem
	cycle    int
	validate bool
}

// planBatches groups items by injection cycle into ≤64-lane batches. The
// grouping (stable sort by cycle, greedy fill) is deterministic, so the
// single-instance and pool engines produce the same plan — the basis of
// their byte-identical journals.
func planBatches(items []batchItem, validate bool) []batchSpec {
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return items[idx[a]].p.Cycle < items[idx[b]].p.Cycle })
	var specs []batchSpec
	for lo := 0; lo < len(idx); {
		cycle := items[idx[lo]].p.Cycle
		hi := lo
		for hi < len(idx) && hi-lo < 64 && items[idx[hi]].p.Cycle == cycle {
			hi++
		}
		spec := batchSpec{cycle: cycle, validate: validate, items: make([]batchItem, 0, hi-lo)}
		for _, ii := range idx[lo:hi] {
			spec.items = append(spec.items, items[ii])
		}
		specs = append(specs, spec)
		lo = hi
	}
	return specs
}

// batchScratch is the per-engine-instance reusable working set of the
// batch loop: one campaign runs thousands of batches, and per-batch slice
// allocations were a measurable share of the campaign's allocation count.
type batchScratch struct {
	batch    [64]FaultPoint
	outcomes [64]Outcome
	solo     [64]Outcome
}

// runSpec executes one planned batch (with panic isolation and lane-by-lane
// retry) and returns the convergence statistics plus the per-lane outcomes,
// which alias the scratch and are only valid until the next runSpec call on
// the same scratch.
func (c *Controller) runSpec(cfg *CampaignConfig, run64 Run64, spec batchSpec, timeout int, met *campaignMetrics, scratch *batchScratch) (converged int, saved int64, outcomes []Outcome) {
	n := len(spec.items)
	batch := scratch.batch[:n]
	for j, it := range spec.items {
		batch[j] = it.p
	}
	outcomes = scratch.outcomes[:n]

	met.batch(n)
	bsp := cfg.Obs.StartSpan("campaign/batch")
	early := !cfg.DisableEarlyExit
	conv, sv, panicked := c.runBatchSafe(run64, batch, spec.cycle, timeout, early, outcomes)
	if panicked {
		// Isolate the faulty lane: retry each point as its own 1-lane
		// batch. Only the point(s) that still panic solo are charged with
		// the harness error; healthy lanes get their verdict.
		conv, sv = 0, 0
		for j := range batch {
			soloConv, soloSaved, soloPanic := c.runBatchSafe(run64, batch[j:j+1], spec.cycle, timeout, early, scratch.solo[:1])
			if soloPanic {
				outcomes[j] = OutcomeHarnessError
			} else {
				outcomes[j] = scratch.solo[0]
				conv += soloConv
				sv += soloSaved
			}
		}
	}
	met.convergedN(conv, sv)
	bsp.Detail("cycle %d, %d lanes, %d converged", spec.cycle, n, conv)
	met.batchDone(bsp.End(), n)
	return conv, sv, outcomes
}

// runBatchSafe executes one same-cycle batch with panic isolation.
func (c *Controller) runBatchSafe(run64 Run64, batch []FaultPoint, cycle, timeout int, early bool, outcomes []Outcome) (converged int, saved int64, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			converged, saved, panicked = 0, 0, true
		}
	}()
	conv, sv := c.runBatch(run64, batch, cycle, timeout, early, outcomes)
	return conv, sv, false
}

// runBatch loads the shared checkpoint, injects one fault per lane (each
// lane's fault model decides which flip-flops change on which cycle), runs
// to halt/timeout and classifies every lane into outcomes (len(batch)
// entries). All points share cycle.
//
// With early set, lanes retire individually: each cycle the lane-parallel
// divergence mask (OR over all flip-flops of lane^golden) identifies lanes
// whose flip-flop state equals the golden reference; those of them past
// their fault's active window whose memory write digest also matches golden
// retire benign on the spot. The batch ends once every lane has halted or
// retired, which is what turns 64-lane batches with one slow lane from
// worst-case into average-case runtime.
func (c *Controller) runBatch(run64 Run64, batch []FaultPoint, cycle, timeout int, early bool, outcomes []Outcome) (converged int, saved int64) {
	run64.LoadCheckpoint(c.golden.Checkpoints[cycle])
	var lanes [64]laneFFs
	var ends [64]int
	for lane, p := range batch {
		lanes[lane] = laneFFs{r: run64, lane: lane}
		ends[lane] = Model(p.Model).ActiveEnd(p)
		Model(p.Model).Inject(&lanes[lane], p, cycle)
	}
	used := uint64(1)<<uint(len(batch)) - 1
	if len(batch) == 64 {
		used = ^uint64(0)
	}
	var retired uint64
	m := run64.Mach()
	digests := c.golden.MemDigests
	for cyc := cycle; cyc < timeout; cyc++ {
		if cyc > cycle {
			haltedNow := run64.HaltedMask()
			for lane, p := range batch {
				if cyc < ends[lane] && (haltedNow|retired)>>uint(lane)&1 == 0 {
					Model(p.Model).Inject(&lanes[lane], p, cyc)
				}
			}
		}
		halted := run64.HaltedMask()
		if early && cyc < len(digests) {
			// Eligible for retirement: in use, not halted, not already
			// retired, and past the fault's active window (an active lane is
			// re-injected above and cannot match golden mid-window anyway;
			// the explicit gate keeps the invariant local).
			elig := used &^ (halted | retired)
			for lane := range batch {
				if cyc < ends[lane] {
					elig &^= 1 << uint(lane)
				}
			}
			if elig != 0 {
				conv := elig &^ m.DivergenceMask(c.golden.Trace.Row(cyc), elig)
				for conv != 0 {
					lane := bits.TrailingZeros64(conv)
					conv &^= 1 << uint(lane)
					if run64.MemDigestLane(lane) == digests[cyc] {
						retired |= 1 << uint(lane)
						outcomes[lane] = OutcomeBenign
						converged++
						saved += int64(c.golden.HaltCycle - cyc)
					}
				}
			}
		}
		if (halted|retired)&used == used {
			break
		}
		run64.Step()
	}
	halted := run64.HaltedMask()
	for lane := range batch {
		if retired>>uint(lane)&1 == 1 {
			continue
		}
		switch {
		case halted>>uint(lane)&1 == 0:
			outcomes[lane] = OutcomeHang
		case run64.SignatureLane(lane) == c.golden.Signature:
			outcomes[lane] = OutcomeBenign
		default:
			outcomes[lane] = OutcomeSDC
		}
	}
	return converged, saved
}
