package hafi

import (
	"sort"

	"repro/internal/journal"
)

// RunCampaignBatched executes the campaign on a 64-lane batched device:
// injection points that share a cycle are grouped, up to 64 of them run as
// lanes of one bit-parallel simulation. Semantically identical to
// RunCampaign (same outcomes for every point); typically an order of
// magnitude faster. MATE pruning is applied before batching, exactly like
// the sequential controller. ValidateSkipped re-executes pruned points
// batched as well.
//
// Resilience matches the sequential engine: recovered journal records are
// replayed instead of re-executed, every newly classified point is
// journaled as its batch completes, cancellation drains at batch
// granularity, and a panicking batch is retried lane by lane so only the
// offending point is classified OutcomeHarnessError.
func (c *Controller) RunCampaignBatched(cfg CampaignConfig, run64 Run64) (*CampaignResult, error) {
	timeout, err := c.prepareCampaign(&cfg)
	if err != nil {
		return nil, err
	}
	ctx := cfg.context()
	res := newCampaignResult()
	prog := newProgress(cfg.Progress)
	sp := cfg.Obs.StartSpan("campaign")
	defer sp.End()
	met := newCampaignMetrics(cfg.Obs, len(cfg.Points))

	// journalPoint logs one classified point; a non-nil hit (attribution of
	// a pruned point) lands immediately before the experiment record so a
	// crash between the two leaves an orphan hit, never an unattributed
	// pruned point.
	journalPoint := func(rec journal.Record, hit *journal.MATEHit) error {
		if cfg.Journal != nil {
			if hit != nil {
				if err := cfg.Journal.AppendMATEHit(*hit); err != nil {
					return err
				}
			}
			if err := cfg.Journal.Append(rec); err != nil {
				return err
			}
		}
		met.point(rec)
		prog.bump()
		return nil
	}
	record := func(idx uint64, p FaultPoint) journal.Record {
		return journal.Record{Index: idx, FF: uint32(p.FF), Cycle: uint32(p.Cycle), Duration: uint32(p.duration())}
	}
	// credit accounts one pruned point to its MATE and builds the journal
	// attribution record.
	credit := func(idx uint64, p FaultPoint, mate int) *journal.MATEHit {
		res.Skipped++
		res.PrunedByMATE[mate]++
		width := len(cfg.MATESet.MATEs[mate].Literals)
		met.matePruned(mate, width)
		return &journal.MATEHit{Index: idx, FF: uint32(p.FF), MATE: uint32(mate), Width: uint16(width)}
	}

	// Classify: replay resumed points, settle pruned points (final unless
	// they still need validation), collect the rest for batched execution.
	var toRun, toValidate []batchItem
	for i, p := range cfg.Points {
		idx := uint64(i)
		if cfg.Resume != nil {
			if rec, ok := cfg.Resume.ByIndex[idx]; ok {
				res.replay(rec, replayHit(cfg.Resume, idx))
				met.replay()
				continue
			}
		}
		if cfg.MATESet != nil {
			if mate, ok := c.provedBenign(p); ok {
				if cfg.ValidateSkipped {
					toValidate = append(toValidate, batchItem{idx, p, mate})
					continue
				}
				res.Total++
				hit := credit(idx, p, mate)
				rec := record(idx, p)
				rec.Pruned = true
				if err := journalPoint(rec, hit); err != nil {
					return nil, err
				}
				continue
			}
		}
		toRun = append(toRun, batchItem{idx, p, -1})
	}

	err = c.executeBatched(cfg, run64, toRun, timeout, met, func(it batchItem, o Outcome) error {
		res.Total++
		res.Executed++
		res.ByOutcome[o]++
		rec := record(it.idx, it.p)
		rec.Outcome = uint8(o)
		return journalPoint(rec, nil)
	})
	if err != nil {
		return nil, err
	}
	err = c.executeBatched(cfg, run64, toValidate, timeout, met, func(it batchItem, o Outcome) error {
		res.Total++
		hit := credit(it.idx, it.p, it.mate)
		rec := record(it.idx, it.p)
		rec.Pruned = true
		if o != OutcomeBenign {
			res.SkippedWrong++
			rec.SkippedWrong = true
		}
		return journalPoint(rec, hit)
	})
	if err != nil {
		return nil, err
	}
	res.Interrupted = ctx.Err() != nil
	return res, nil
}

// batchItem carries a fault point together with its global fault-list
// index (the journal key) and, for validated-skipped points, the set index
// of the crediting MATE (-1 for executed points).
type batchItem struct {
	idx  uint64
	p    FaultPoint
	mate int
}

// executeBatched groups items by injection cycle into ≤64-lane batches,
// classifies every lane and hands each finished point to emit. The
// campaign context is checked between batches; a cancelled context stops
// scheduling further batches (the current one finishes and is emitted).
func (c *Controller) executeBatched(cfg CampaignConfig, run64 Run64, items []batchItem, timeout int, met *campaignMetrics, emit func(batchItem, Outcome) error) error {
	ctx := cfg.context()
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return items[idx[a]].p.Cycle < items[idx[b]].p.Cycle })

	for lo := 0; lo < len(idx); {
		if ctx.Err() != nil {
			return nil
		}
		cycle := items[idx[lo]].p.Cycle
		hi := lo
		for hi < len(idx) && hi-lo < 64 && items[idx[hi]].p.Cycle == cycle {
			hi++
		}
		batch := make([]FaultPoint, 0, hi-lo)
		for _, ii := range idx[lo:hi] {
			batch = append(batch, items[ii].p)
		}

		met.batch(len(batch))
		bsp := cfg.Obs.StartSpan("campaign/batch").Detail("cycle %d, %d lanes", cycle, len(batch))
		outcomes, panicked := c.runBatchSafe(run64, batch, cycle, timeout)
		if panicked {
			// Isolate the faulty lane: retry each point as its own 1-lane
			// batch. Only the point(s) that still panic solo are charged
			// with the harness error; healthy lanes get their verdict.
			outcomes = make([]Outcome, len(batch))
			for j, p := range batch {
				solo, soloPanic := c.runBatchSafe(run64, batch[j:j+1], p.Cycle, timeout)
				if soloPanic {
					outcomes[j] = OutcomeHarnessError
				} else {
					outcomes[j] = solo[0]
				}
			}
		}
		bsp.End()
		for j, ii := range idx[lo:hi] {
			if err := emit(items[ii], outcomes[j]); err != nil {
				return err
			}
		}
		lo = hi
	}
	return nil
}

// runBatchSafe executes one same-cycle batch with panic isolation.
func (c *Controller) runBatchSafe(run64 Run64, batch []FaultPoint, cycle, timeout int) (outcomes []Outcome, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			outcomes, panicked = nil, true
		}
	}()
	return c.runBatch(run64, batch, cycle, timeout), false
}

// runBatch loads the shared checkpoint, injects one upset per lane, runs
// to halt/timeout and classifies every lane. All points share cycle.
func (c *Controller) runBatch(run64 Run64, batch []FaultPoint, cycle, timeout int) []Outcome {
	run64.LoadCheckpoint(c.golden.Checkpoints[cycle])
	for lane, p := range batch {
		run64.FlipLane(p.FF, lane)
	}
	used := uint64(1)<<uint(len(batch)) - 1
	if len(batch) == 64 {
		used = ^uint64(0)
	}
	for cyc := cycle; cyc < timeout; cyc++ {
		if cyc > cycle {
			haltedNow := run64.HaltedMask()
			for lane, p := range batch {
				if cyc < p.Cycle+p.duration() && haltedNow>>uint(lane)&1 == 0 {
					run64.FlipLane(p.FF, lane)
				}
			}
		}
		if run64.HaltedMask()&used == used {
			break
		}
		run64.Step()
	}
	halted := run64.HaltedMask()
	outcomes := make([]Outcome, len(batch))
	for lane := range batch {
		switch {
		case halted>>uint(lane)&1 == 0:
			outcomes[lane] = OutcomeHang
		case run64.SignatureLane(lane) == c.golden.Signature:
			outcomes[lane] = OutcomeBenign
		default:
			outcomes[lane] = OutcomeSDC
		}
	}
	return outcomes
}
