package hafi

import (
	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/sim"
)

// avrRun adapts an AVR-class system to the Run interface.
type avrRun struct {
	sys *avr.System
}

// NewAVRRun creates a Run for the AVR-class core with the given program.
func NewAVRRun(core *avr.Core, prog []uint16) Run {
	return &avrRun{sys: avr.NewSystem(core, prog)}
}

func (r *avrRun) Machine() *sim.Machine { return r.sys.M }
func (r *avrRun) Step()                 { r.sys.Step() }
func (r *avrRun) Halted() bool          { return r.sys.Halted() }
func (r *avrRun) TraceEnv() sim.Env     { return r.sys.Env() }
func (r *avrRun) AfterStep()            {}

type avrCheckpoint struct {
	ffs    []bool
	inputs []bool
	dmem   [1 << avr.DMemBits]uint8
	digest uint64
	cycle  int
}

func (r *avrRun) Checkpoint() Checkpoint {
	return &avrCheckpoint{
		ffs:    r.sys.M.FFState(),
		inputs: r.sys.M.InputState(),
		dmem:   r.sys.DMem,
		digest: r.sys.WriteDigest,
		cycle:  r.sys.M.Cycle,
	}
}

func (r *avrRun) Restore(c Checkpoint) {
	cp := c.(*avrCheckpoint)
	r.sys.M.SetFFState(cp.ffs)
	r.sys.M.SetInputState(cp.inputs)
	r.sys.DMem = cp.dmem
	r.sys.WriteDigest = cp.digest
	r.sys.M.Cycle = cp.cycle
}

func (r *avrRun) MemDigest() uint64 { return r.sys.WriteDigest }

func (r *avrRun) Signature() uint64 {
	return SignatureHash([]byte{r.sys.PortValue()}, r.sys.DMem[:])
}

// msp430Run adapts an MSP430-class system to the Run interface.
type msp430Run struct {
	sys *msp430.System
}

// NewMSP430Run creates a Run for the MSP430-class core with the given
// program.
func NewMSP430Run(core *msp430.Core, prog []uint16) Run {
	return &msp430Run{sys: msp430.NewSystem(core, prog)}
}

func (r *msp430Run) Machine() *sim.Machine { return r.sys.M }
func (r *msp430Run) Step()                 { r.sys.Step() }
func (r *msp430Run) Halted() bool          { return r.sys.Halted() }
func (r *msp430Run) TraceEnv() sim.Env     { return r.sys.Env() }
func (r *msp430Run) AfterStep()            {}

type msp430Checkpoint struct {
	ffs    []bool
	inputs []bool
	dmem   [1 << msp430.DMemBits]uint16
	digest uint64
	cycle  int
}

func (r *msp430Run) Checkpoint() Checkpoint {
	return &msp430Checkpoint{
		ffs:    r.sys.M.FFState(),
		inputs: r.sys.M.InputState(),
		dmem:   r.sys.DMem,
		digest: r.sys.WriteDigest,
		cycle:  r.sys.M.Cycle,
	}
}

func (r *msp430Run) Restore(c Checkpoint) {
	cp := c.(*msp430Checkpoint)
	r.sys.M.SetFFState(cp.ffs)
	r.sys.M.SetInputState(cp.inputs)
	r.sys.DMem = cp.dmem
	r.sys.WriteDigest = cp.digest
	r.sys.M.Cycle = cp.cycle
}

func (r *msp430Run) MemDigest() uint64 { return r.sys.WriteDigest }

func (r *msp430Run) Signature() uint64 {
	return signatureWords16(r.sys.PortValue(), r.sys.DMem[:])
}

// signatureWords16 folds a 16-bit port value and data words into the same
// FNV-1a stream SignatureHash produces over their little-endian byte
// expansion — without materialising that byte slice (the signature is
// computed once per experiment, so the copy dominated the allocation
// profile of MSP430 campaigns).
func signatureWords16(port uint16, words []uint16) uint64 {
	h := uint64(sigOffset64)
	h = (h ^ uint64(port&0xff)) * sigPrime64
	h = (h ^ uint64(port>>8)) * sigPrime64
	for _, w := range words {
		h = (h ^ uint64(w&0xff)) * sigPrime64
		h = (h ^ uint64(w>>8)) * sigPrime64
	}
	return h
}
