package hafi

import (
	"encoding/binary"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// twoGroupNetlist builds a small netlist with two placement groups of three
// flip-flops each ("ga" = FFs 0-2, "gb" = FFs 3-5) and enough combinational
// logic for SET enumeration to find cones.
func twoGroupNetlist(t testing.TB) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("two-group")
	c := synth.New(b)
	a := c.InputBus("a", 3)
	ra := c.RegisterPlaceholder("ra", 3, 0, "ga")
	rb := c.RegisterPlaceholder("rb", 3, 0, "gb")
	c.ConnectRegisterAlways(ra, c.Xor(ra, a))
	c.ConnectRegisterAlways(rb, c.And(ra, rb))
	c.OutputBus(rb)
	nl := b.MustNetlist()
	if len(nl.FFs) != 6 {
		t.Fatalf("expected 6 FFs, got %d", len(nl.FFs))
	}
	for ff := 0; ff < 6; ff++ {
		want := "ga"
		if ff >= 3 {
			want = "gb"
		}
		if g := nl.FFs[ff].Group; g != want {
			t.Fatalf("ff %d in group %q, want %q", ff, g, want)
		}
	}
	return nl
}

func TestParseModelSpec(t *testing.T) {
	valid := []struct {
		in   string
		want ModelSpec
	}{
		{"seu", ModelSpec{Model: ModelSEU}},
		{"mbu", ModelSpec{Model: ModelMBU, Span: 2}},
		{"mbu:4", ModelSpec{Model: ModelMBU, Span: 4}},
		{"set", ModelSpec{Model: ModelSET}},
		{"intermittent", ModelSpec{Model: ModelIntermittent, Period: 2, Window: 8}},
		{"intermittent:3", ModelSpec{Model: ModelIntermittent, Period: 3, Window: 8}},
		{"intermittent:3,12", ModelSpec{Model: ModelIntermittent, Period: 3, Window: 12}},
		{"stuck0", ModelSpec{Model: ModelStuckAt, Window: 4}},
		{"stuck1", ModelSpec{Model: ModelStuckAt, Window: 4, StuckHigh: true}},
		{"stuck0:7", ModelSpec{Model: ModelStuckAt, Window: 7}},
		{"stuck1:2", ModelSpec{Model: ModelStuckAt, Window: 2, StuckHigh: true}},
	}
	for _, tc := range valid {
		got, err := ParseModelSpec(tc.in)
		if err != nil {
			t.Errorf("ParseModelSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseModelSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// The canonical rendering must parse back to the same spec.
		back, err := ParseModelSpec(got.String())
		if err != nil || back != got {
			t.Errorf("round trip %q -> %q -> %+v (%v)", tc.in, got.String(), back, err)
		}
	}

	invalid := []string{
		"", "sev", "SEU", "seu:1", "set:2",
		"mbu:1", "mbu:0", "mbu:-2", "mbu:x", "mbu:",
		"intermittent:0", "intermittent:2,0", "intermittent:2,x", "intermittent:,",
		"stuck0:0", "stuck1:x", "stuck2", "stuck",
	}
	for _, in := range invalid {
		if spec, err := ParseModelSpec(in); err == nil {
			t.Errorf("ParseModelSpec(%q) = %+v, want error", in, spec)
		}
	}
}

func TestModelByName(t *testing.T) {
	for id := ModelID(0); id < numModels; id++ {
		got, ok := ModelByName(id.String())
		if !ok || got != id {
			t.Errorf("ModelByName(%q) = %v, %v", id.String(), got, ok)
		}
		if m := Model(id); m == nil || m.ID() != id || m.Name() != id.String() {
			t.Errorf("Model(%d) registry entry inconsistent", id)
		}
	}
	if _, ok := ModelByName("nope"); ok {
		t.Error("ModelByName accepted an unknown name")
	}
	if Model(numModels) != nil {
		t.Error("Model accepted an out-of-range ID")
	}
}

func TestModelValidate(t *testing.T) {
	nl := twoGroupNetlist(t)
	cases := []struct {
		name string
		p    FaultPoint
		ok   bool
	}{
		{"seu ok", FaultPoint{FF: 0, Cycle: 3}, true},
		{"seu held ok", FaultPoint{FF: 5, Cycle: 0, Duration: 4}, true},
		{"seu ff out of range", FaultPoint{FF: 6}, false},
		{"seu negative ff", FaultPoint{FF: -1}, false},
		{"seu negative cycle", FaultPoint{FF: 0, Cycle: -1}, false},
		{"seu foreign span", FaultPoint{FF: 0, Span: 2}, false},
		{"seu foreign period", FaultPoint{FF: 0, Period: 2}, false},
		{"seu foreign targets", FaultPoint{FF: 0, Targets: []int{0, 1}}, false},
		{"seu foreign stuck level", FaultPoint{FF: 0, StuckHigh: true}, false},

		{"mbu ok", FaultPoint{FF: 0, Model: ModelMBU, Span: 2}, true},
		{"mbu whole group", FaultPoint{FF: 3, Model: ModelMBU, Span: 3}, true},
		{"mbu crosses groups", FaultPoint{FF: 2, Model: ModelMBU, Span: 2}, false},
		{"mbu past netlist end", FaultPoint{FF: 5, Model: ModelMBU, Span: 2}, false},
		{"mbu foreign period", FaultPoint{FF: 0, Model: ModelMBU, Span: 2, Period: 2}, false},

		{"set ok singleton", FaultPoint{FF: 1, Model: ModelSET}, true},
		{"set ok pair", FaultPoint{FF: 1, Model: ModelSET, Targets: []int{1, 4}}, true},
		{"set holds two cycles", FaultPoint{FF: 1, Model: ModelSET, Duration: 2}, false},
		{"set anchor not first target", FaultPoint{FF: 1, Model: ModelSET, Targets: []int{2, 4}}, false},
		{"set targets unsorted", FaultPoint{FF: 4, Model: ModelSET, Targets: []int{4, 1}}, false},
		{"set duplicate target", FaultPoint{FF: 1, Model: ModelSET, Targets: []int{1, 1}}, false},
		{"set target out of range", FaultPoint{FF: 1, Model: ModelSET, Targets: []int{1, 9}}, false},
		{"set foreign span", FaultPoint{FF: 1, Model: ModelSET, Span: 2}, false},

		{"intermittent ok", FaultPoint{FF: 2, Model: ModelIntermittent, Period: 2, Duration: 6}, true},
		{"intermittent foreign span", FaultPoint{FF: 2, Model: ModelIntermittent, Period: 2, Span: 2}, false},
		{"intermittent foreign targets", FaultPoint{FF: 2, Model: ModelIntermittent, Targets: []int{2}}, false},

		{"stuck ok", FaultPoint{FF: 3, Model: ModelStuckAt, Duration: 3, StuckHigh: true}, true},
		{"stuck at zero ok", FaultPoint{FF: 3, Model: ModelStuckAt, Duration: 3}, true},
		{"stuck foreign period", FaultPoint{FF: 3, Model: ModelStuckAt, Period: 2}, false},
		{"stuck ff out of range", FaultPoint{FF: 7, Model: ModelStuckAt}, false},
	}
	for _, tc := range cases {
		err := Model(tc.p.Model).Validate(nl, tc.p)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation accepted a malformed point", tc.name)
		}
	}
}

func TestSEUEquivalentAndActiveEnd(t *testing.T) {
	cases := []struct {
		name    string
		p       FaultPoint
		end     int
		ff, dur int
		ok      bool
	}{
		{"seu", FaultPoint{FF: 5, Cycle: 10, Duration: 3}, 13, 5, 3, true},
		{"seu default duration", FaultPoint{FF: 5, Cycle: 10}, 11, 5, 1, true},
		{"mbu span 2", FaultPoint{FF: 5, Cycle: 10, Model: ModelMBU, Span: 2}, 11, 0, 0, false},
		{"mbu degenerate span", FaultPoint{FF: 5, Cycle: 10, Duration: 2, Model: ModelMBU}, 12, 5, 2, true},
		{"set singleton", FaultPoint{FF: 5, Cycle: 10, Model: ModelSET}, 11, 5, 1, true},
		{"set pair", FaultPoint{FF: 2, Cycle: 10, Model: ModelSET, Targets: []int{2, 4}}, 11, 0, 0, false},
		{"intermittent multi-flip", FaultPoint{FF: 5, Cycle: 10, Duration: 6, Model: ModelIntermittent, Period: 2}, 16, 0, 0, false},
		{"intermittent one flip in window", FaultPoint{FF: 5, Cycle: 10, Duration: 2, Model: ModelIntermittent, Period: 4}, 12, 5, 1, true},
		{"intermittent every cycle", FaultPoint{FF: 5, Cycle: 10, Duration: 5, Model: ModelIntermittent, Period: 1}, 15, 5, 5, true},
		{"stuck-at", FaultPoint{FF: 5, Cycle: 10, Duration: 3, Model: ModelStuckAt, StuckHigh: true}, 13, 0, 0, false},
	}
	for _, tc := range cases {
		m := Model(tc.p.Model)
		if end := m.ActiveEnd(tc.p); end != tc.end {
			t.Errorf("%s: ActiveEnd = %d, want %d", tc.name, end, tc.end)
		}
		ff, dur, ok := m.SEUEquivalent(tc.p)
		if ok != tc.ok {
			t.Errorf("%s: SEUEquivalent ok = %v, want %v", tc.name, ok, tc.ok)
			continue
		}
		if ok && (ff != tc.ff || dur != tc.dur) {
			t.Errorf("%s: SEUEquivalent = (%d, %d), want (%d, %d)", tc.name, ff, dur, tc.ff, tc.dur)
		}
	}
}

// TestModelFaultListEnumeration checks per-model point counts, operand
// stamping, cycle-major order and validity of every enumerated point.
func TestModelFaultListEnumeration(t *testing.T) {
	nl := twoGroupNetlist(t)
	const maxCycle, stride = 10, 3
	cycles := 0
	for c := 0; c < maxCycle; c += stride {
		cycles++ // 0, 3, 6, 9
	}

	checkList := func(t *testing.T, points []FaultPoint, perCycle int) {
		t.Helper()
		if len(points) != perCycle*cycles {
			t.Fatalf("got %d points, want %d sites x %d cycles", len(points), perCycle, cycles)
		}
		for i, p := range points {
			if err := Model(p.Model).Validate(nl, p); err != nil {
				t.Fatalf("point %d invalid: %v", i, err)
			}
			if want := (i / perCycle) * stride; p.Cycle != want {
				t.Fatalf("point %d not cycle-major: cycle %d, want %d", i, p.Cycle, want)
			}
			// Within a cycle block the site sequence must repeat exactly.
			if i >= perCycle {
				prev := points[i-perCycle]
				prev.Cycle = p.Cycle
				if !reflect.DeepEqual(prev, p) {
					t.Fatalf("point %d: site order differs between cycle blocks", i)
				}
			}
		}
	}

	t.Run("seu", func(t *testing.T) {
		points := ModelFaultList(nl, maxCycle, stride, ModelSpec{Model: ModelSEU})
		checkList(t, points, len(nl.FFs))
		if legacy := SampledFaultList(nl, maxCycle, stride); !reflect.DeepEqual(points, legacy) {
			t.Error("ModelFaultList(seu) differs from SampledFaultList")
		}
		for _, p := range points {
			if !p.plainSEU() {
				t.Fatalf("seu enumeration produced a non-legacy point: %+v", p)
			}
		}
	})

	t.Run("mbu", func(t *testing.T) {
		// Two groups of three FFs: bursts [0,1] [1,2] [3,4] [4,5].
		points := ModelFaultList(nl, maxCycle, stride, ModelSpec{Model: ModelMBU, Span: 2})
		checkList(t, points, 4)
		for _, p := range points {
			if p.Model != ModelMBU || p.Span != 2 {
				t.Fatalf("mbu point missing operands: %+v", p)
			}
		}
		// Span 3 leaves exactly one whole-group burst per group.
		if pts := ModelFaultList(nl, maxCycle, stride, ModelSpec{Model: ModelMBU, Span: 3}); len(pts) != 2*cycles {
			t.Errorf("span-3 enumeration: %d points, want %d", len(pts), 2*cycles)
		}
		// Span 7 exceeds every group: nothing to enumerate.
		if pts := ModelFaultList(nl, maxCycle, stride, ModelSpec{Model: ModelMBU, Span: 7}); len(pts) != 0 {
			t.Errorf("span-7 enumeration: %d points, want 0", len(pts))
		}
	})

	t.Run("set", func(t *testing.T) {
		points := ModelFaultList(nl, maxCycle, stride, ModelSpec{Model: ModelSET})
		if len(points) == 0 {
			t.Fatal("no SET points on a netlist with gates feeding FFs")
		}
		checkList(t, points, len(points)/cycles)
		for _, p := range points {
			if p.Model != ModelSET || len(p.Targets) == 0 || p.Targets[0] != p.FF {
				t.Fatalf("malformed SET point: %+v", p)
			}
		}
	})

	t.Run("intermittent", func(t *testing.T) {
		points := ModelFaultList(nl, maxCycle, stride, ModelSpec{Model: ModelIntermittent, Period: 3, Window: 9})
		checkList(t, points, len(nl.FFs))
		for _, p := range points {
			if p.Model != ModelIntermittent || p.Period != 3 || p.Duration != 9 {
				t.Fatalf("intermittent point missing operands: %+v", p)
			}
		}
	})

	t.Run("stuck", func(t *testing.T) {
		points := ModelFaultList(nl, maxCycle, stride, ModelSpec{Model: ModelStuckAt, Window: 5, StuckHigh: true})
		checkList(t, points, len(nl.FFs))
		for _, p := range points {
			if p.Model != ModelStuckAt || p.Duration != 5 || !p.StuckHigh {
				t.Fatalf("stuck-at point missing operands: %+v", p)
			}
		}
	})
}

// TestModelFaultListExcludeGroups: group exclusion must hold for every
// model under a stride > 1 — no enumerated point may upset an excluded
// flip-flop, whether it is the anchor, part of an MBU burst, or a member of
// a SET flip set.
func TestModelFaultListExcludeGroups(t *testing.T) {
	nl := twoGroupNetlist(t)
	const maxCycle, stride = 12, 5 // cycles 0, 5, 10
	excluded := func(ff int) bool { return nl.FFs[ff].Group == "ga" }

	specs := []ModelSpec{
		{Model: ModelSEU},
		{Model: ModelMBU, Span: 2},
		{Model: ModelSET},
		{Model: ModelIntermittent, Period: 2, Window: 4},
		{Model: ModelStuckAt, Window: 3},
	}
	for _, spec := range specs {
		t.Run(spec.String(), func(t *testing.T) {
			points := ModelFaultList(nl, maxCycle, stride, spec, "ga")
			for _, p := range points {
				for ff := p.FF; ff < p.FF+p.span(); ff++ {
					if excluded(ff) {
						t.Fatalf("point %+v upsets excluded ff %d", p, ff)
					}
				}
				for _, ff := range p.targets() {
					if excluded(ff) {
						t.Fatalf("point %+v targets excluded ff %d", p, ff)
					}
				}
				if p.Cycle%stride != 0 || p.Cycle >= maxCycle {
					t.Fatalf("point %+v off the stride grid", p)
				}
			}
			full := ModelFaultList(nl, maxCycle, stride, spec)
			if len(points) >= len(full) {
				t.Fatalf("exclusion removed nothing: %d of %d points", len(points), len(full))
			}
			if spec.Model == ModelSEU {
				if legacy := SampledFaultList(nl, maxCycle, stride, "ga"); !reflect.DeepEqual(points, legacy) {
					t.Error("SampledFaultList exclusion differs from ModelFaultList(seu)")
				}
			}
		})
	}

	// Excluding every group leaves nothing.
	if pts := ModelFaultList(nl, maxCycle, stride, ModelSpec{Model: ModelSEU}, "ga", "gb"); len(pts) != 0 {
		t.Errorf("excluding all groups left %d points", len(pts))
	}
}

// legacyFaultListHash replicates the pre-fault-model hash algorithm: 12
// little-endian bytes (FF, cycle, duration) per point, FNV-1a.
func legacyFaultListHash(points []FaultPoint) uint64 {
	h := fnv.New64a()
	var b [12]byte
	for _, p := range points {
		binary.LittleEndian.PutUint32(b[0:], uint32(p.FF))
		binary.LittleEndian.PutUint32(b[4:], uint32(p.Cycle))
		d := p.Duration
		if d <= 0 {
			d = 1
		}
		binary.LittleEndian.PutUint32(b[8:], uint32(d))
		h.Write(b[:])
	}
	return h.Sum64()
}

func TestFaultListHashLegacyCompat(t *testing.T) {
	nl := twoGroupNetlist(t)
	seu := ModelFaultList(nl, 20, 2, ModelSpec{Model: ModelSEU})
	if got, want := FaultListHash(seu), legacyFaultListHash(seu); got != want {
		t.Fatalf("plain-SEU hash %016x does not match the legacy algorithm (%016x): pre-existing journals would refuse to resume", got, want)
	}

	// A multi-cycle SEU list is still legacy-shaped.
	held := []FaultPoint{{FF: 1, Cycle: 5, Duration: 4}}
	if FaultListHash(held) != legacyFaultListHash(held) {
		t.Fatal("held SEU point hashed with the extension block")
	}

	// Same (FF, cycle, duration) under a different model must not collide
	// with the SEU list — a resume across models has to be refused.
	mbu := make([]FaultPoint, len(seu))
	for i, p := range seu {
		p.Model = ModelMBU
		p.Span = 2
		mbu[i] = p
	}
	if FaultListHash(mbu) == FaultListHash(seu) {
		t.Fatal("MBU list collides with the SEU list")
	}

	// Operands are part of the fingerprint.
	a := []FaultPoint{{FF: 0, Cycle: 2, Model: ModelSET, Targets: []int{0, 3}}}
	b := []FaultPoint{{FF: 0, Cycle: 2, Model: ModelSET, Targets: []int{0, 4}}}
	if FaultListHash(a) == FaultListHash(b) {
		t.Fatal("SET lists with different flip sets collide")
	}
	i1 := []FaultPoint{{FF: 0, Cycle: 2, Duration: 6, Model: ModelIntermittent, Period: 2}}
	i2 := []FaultPoint{{FF: 0, Cycle: 2, Duration: 6, Model: ModelIntermittent, Period: 3}}
	if FaultListHash(i1) == FaultListHash(i2) {
		t.Fatal("intermittent lists with different periods collide")
	}
	s0 := []FaultPoint{{FF: 0, Cycle: 2, Duration: 3, Model: ModelStuckAt}}
	s1 := []FaultPoint{{FF: 0, Cycle: 2, Duration: 3, Model: ModelStuckAt, StuckHigh: true}}
	if FaultListHash(s0) == FaultListHash(s1) {
		t.Fatal("stuck-at-0 and stuck-at-1 lists collide")
	}
}

// scanJournalFrames walks the raw journal file and returns the record type
// and payload length of every frame, verifying each CRC along the way.
func scanJournalFrames(t *testing.T, path string) (types []uint8, lens []int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const magic = "HAFIWAL1"
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		t.Fatal("bad journal magic")
	}
	crcTable := crc32.MakeTable(crc32.Castagnoli)
	off := len(magic)
	for off < len(data) {
		if len(data)-off < 4 {
			t.Fatalf("torn frame length at offset %d", off)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if len(data)-off < n+4 {
			t.Fatalf("torn frame body at offset %d", off)
		}
		body := data[off : off+n]
		off += n
		if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(data[off:]) {
			t.Fatalf("frame CRC mismatch at offset %d", off)
		}
		off += 4
		if n == 0 {
			t.Fatal("empty frame body")
		}
		types = append(types, body[0])
		lens = append(lens, n-1)
	}
	return types, lens
}

// TestSEUJournalByteFormat asserts the acceptance criterion that plain-SEU
// campaigns still write byte-identical v2 journals: a raw frame walk must
// see only header (type 0, 24 bytes), v2 experiment (type 1, 22 bytes) and
// MATE-hit (type 2, 18 bytes) frames — never a v3 frame. A single MBU point
// in the list flips the experiment encoding to v3 (type 3, 38 bytes).
func TestSEUJournalByteFormat(t *testing.T) {
	nl, run, _ := buildWindowCircuit(t)
	g, err := RecordGolden(run, 1000)
	if err != nil {
		t.Fatal(err)
	}
	set := core.Search(nl, nl.FFQWires(), core.DefaultSearchParams()).Set
	ctl := NewController(run, g)

	runJournaled := func(t *testing.T, points []FaultPoint) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "campaign.journal")
		jw, err := journal.Create(path, ctl.JournalHeader(points))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ctl.RunCampaign(CampaignConfig{Points: points, MATESet: set, Journal: jw}); err != nil {
			t.Fatal(err)
		}
		if err := jw.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("seu stays v2", func(t *testing.T) {
		points := SampledFaultList(nl, g.HaltCycle, 7)
		types, lens := scanJournalFrames(t, runJournaled(t, points))
		experiments := 0
		for i, typ := range types {
			switch typ {
			case 0:
				if lens[i] != 24 {
					t.Fatalf("header frame payload %d bytes, want 24", lens[i])
				}
			case 1:
				experiments++
				if lens[i] != 22 {
					t.Fatalf("v2 experiment frame payload %d bytes, want 22", lens[i])
				}
			case 2:
				if lens[i] != 18 {
					t.Fatalf("MATE-hit frame payload %d bytes, want 18", lens[i])
				}
			default:
				t.Fatalf("frame %d has type %d: a plain-SEU campaign must not write v3 frames", i, typ)
			}
		}
		if experiments != len(points) {
			t.Fatalf("%d experiment frames for %d points", experiments, len(points))
		}
	})

	t.Run("mbu writes v3", func(t *testing.T) {
		points := ModelFaultList(nl, g.HaltCycle, 7, ModelSpec{Model: ModelMBU, Span: 2})
		if len(points) == 0 {
			t.Skip("no MBU points")
		}
		types, lens := scanJournalFrames(t, runJournaled(t, points))
		v3 := 0
		for i, typ := range types {
			switch typ {
			case 1:
				t.Fatal("MBU campaign wrote a v2 experiment frame")
			case 3:
				v3++
				if lens[i] != 38 {
					t.Fatalf("v3 experiment frame payload %d bytes, want 38", lens[i])
				}
			}
		}
		if v3 != len(points) {
			t.Fatalf("%d v3 frames for %d points", v3, len(points))
		}
	})
}

// TestCampaignRejectsInvalidModelPoint: campaign setup must refuse a fault
// list containing a malformed point instead of injecting garbage.
func TestCampaignRejectsInvalidModelPoint(t *testing.T) {
	nl, run, _ := buildWindowCircuit(t)
	g, err := RecordGolden(run, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(run, g)
	bad := []FaultPoint{{FF: 0, Cycle: 1, Model: ModelMBU, Span: uint16Max(nl)}}
	if _, err := ctl.RunCampaign(CampaignConfig{Points: bad}); err == nil {
		t.Fatal("campaign accepted an MBU burst running past the netlist")
	}
}

// uint16Max returns a span guaranteed to overrun the netlist.
func uint16Max(nl *netlist.Netlist) int { return len(nl.FFs) + 1 }
