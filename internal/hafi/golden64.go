package hafi

import (
	"fmt"

	"repro/internal/sim"
)

// GoldenRunW is the optional RunW capability RecordGoldenW needs: the
// device exposes its lane environment (so the recorder can interleave
// trace capture between Settle and CommitFFs, exactly like the scalar
// tracer hooks) and can checkpoint a single lane in the scalar target's
// Checkpoint format, so the recorded Golden is interchangeable with one
// from RecordGolden — the sequential engine Restores from it and the
// batched engines LoadCheckpoint from it without knowing who recorded it.
type GoldenRunW interface {
	RunW
	// EnvW returns the per-cycle lane environment.
	EnvW() sim.EnvW
	// CheckpointLane captures one lane as a scalar-format checkpoint.
	CheckpointLane(lane int) Checkpoint
}

// RecordGoldenW is RecordGolden on a wide batched device: lane 0 runs the
// workload to completion while the bit-parallel gate kernel carries it, so
// the golden reference costs one wide evaluation pass per cycle instead of
// one scalar gate walk per cycle — an order of magnitude less wall clock
// on the processor cores, where the scalar golden run otherwise rivals the
// campaign itself. The returned Golden is equivalent to the scalar
// recorder's bit for bit: same checkpoints, memory digests, trace rows,
// halt cycle and signature (pinned by TestRecordGoldenWMatchesScalar).
func RecordGoldenW(r RunW, maxCycles int) (*Golden, error) {
	gr, ok := r.(GoldenRunW)
	if !ok {
		return nil, fmt.Errorf("hafi: %T cannot record a golden run (no GoldenRunW capability)", r)
	}
	m := r.MachW()
	env := gr.EnvW()
	g := &Golden{Trace: sim.NewTrace(m.NL.NumWires())}
	row := make([]uint64, m.LaneWireWords())
	for cyc := 0; cyc < maxCycles; cyc++ {
		if r.HaltedMaskG(0)&1 != 0 {
			g.HaltCycle = cyc
			g.Signature = r.SignatureLane(0)
			return g, nil
		}
		g.Checkpoints = append(g.Checkpoints, gr.CheckpointLane(0))
		g.MemDigests = append(g.MemDigests, r.MemDigestLane(0))
		m.Settle(env)
		m.ExportLane(0, row)
		g.Trace.AppendRow(row)
		m.CommitFFs()
	}
	return nil, fmt.Errorf("hafi: golden run did not halt within %d cycles", maxCycles)
}
