package journal

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var testHeader = Header{GoldenSignature: 0xdeadbeefcafe, NumPoints: 1000, FaultListHash: 0x1234567890ab}

// writeJournal creates a journal with n experiment records and returns its
// path plus the records written.
func writeJournal(t testing.TB, n int) (string, []Record) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.journal")
	w, err := Create(path, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Index:        uint64(i),
			FF:           uint32(i * 3),
			Cycle:        uint32(i * 7),
			Duration:     1,
			Outcome:      uint8(i % 4),
			Pruned:       i%5 == 0,
			SkippedWrong: i%25 == 0,
		}
		if err := w.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, recs
}

func TestRoundTrip(t *testing.T) {
	path, recs := writeJournal(t, 50)
	r, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasHeader || r.Header != testHeader {
		t.Fatalf("header = %+v, %v", r.Header, r.HasHeader)
	}
	if r.Torn || r.Corrupt || r.DroppedBytes != 0 {
		t.Fatalf("clean journal diagnosed damaged: %+v", r)
	}
	if len(r.Records) != len(recs) {
		t.Fatalf("recovered %d of %d records", len(r.Records), len(recs))
	}
	for i, rec := range r.Records {
		if rec != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, rec, recs[i])
		}
	}
	if len(r.ByIndex) != len(recs) {
		t.Fatalf("ByIndex has %d entries", len(r.ByIndex))
	}
}

// TestTornTail truncates the journal at every possible byte boundary: the
// reader must always recover a clean prefix of the written records and
// never claim an experiment whose record was not fully on disk.
func TestTornTail(t *testing.T) {
	path, recs := writeJournal(t, 20)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries: a cut exactly between frames is indistinguishable
	// from a journal whose campaign stopped there, so only cuts inside a
	// frame must be diagnosed as torn.
	boundary := map[int]bool{len(magic): true}
	for pos := len(magic); pos+8 <= len(data); {
		pos += 8 + int(binary.LittleEndian.Uint32(data[pos:]))
		boundary[pos] = true
	}
	dir := t.TempDir()
	cut := filepath.Join(dir, "cut.journal")
	for n := 0; n < len(data); n++ {
		if err := os.WriteFile(cut, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Recover(cut)
		if n < len(magic) {
			if err == nil {
				t.Fatalf("cut at %d: expected bad-magic error", n)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut at %d: %v", n, err)
		}
		if !boundary[n] && !r.Torn && !r.Corrupt {
			t.Fatalf("cut at %d: mid-frame truncation not diagnosed (%d records)", n, len(r.Records))
		}
		// The recovered prefix must match the written records one for one.
		for i, rec := range r.Records {
			if rec != recs[i] {
				t.Fatalf("cut at %d: record %d = %+v, want %+v", n, i, rec, recs[i])
			}
		}
	}
}

// TestBitFlips flips every bit of the file in turn: the CRC must reject
// the damaged record, and recovery must still return only records that
// were actually written (a prefix, since recovery stops at the damage).
func TestBitFlips(t *testing.T) {
	path, recs := writeJournal(t, 20)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	flipped := filepath.Join(dir, "flipped.journal")
	for pos := 0; pos < len(data); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(data)
			mut[pos] ^= 1 << bit
			if err := os.WriteFile(flipped, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := Recover(flipped)
			if err != nil {
				continue // flip inside the magic — rejected outright, fine
			}
			// Whatever survives must be records we actually wrote, with
			// intact content: recovery never fabricates or alters results.
			for _, rec := range r.Records {
				if rec.Index >= uint64(len(recs)) || rec != recs[rec.Index] {
					t.Fatalf("flip at byte %d bit %d: recovered fabricated record %+v", pos, bit, rec)
				}
			}
			if r.HasHeader && r.Header != testHeader {
				t.Fatalf("flip at byte %d bit %d: header silently altered to %+v", pos, bit, r.Header)
			}
		}
	}
}

// TestGarbageAppend appends random junk: the valid records all survive and
// the junk is dropped and diagnosed.
func TestGarbageAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		path, recs := writeJournal(t, 10)
		junk := make([]byte, 1+rng.Intn(200))
		rng.Read(junk)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(junk)
		f.Close()
		r, err := Recover(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Records) != len(recs) {
			t.Fatalf("trial %d: garbage destroyed valid records (%d of %d)", trial, len(r.Records), len(recs))
		}
		for i, rec := range r.Records {
			if rec != recs[i] {
				t.Fatalf("trial %d: record %d altered", trial, i)
			}
		}
		if !r.Torn && !r.Corrupt {
			t.Fatalf("trial %d: %d junk bytes not diagnosed", trial, len(junk))
		}
	}
}

func TestRecordOutsideFaultListRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.journal")
	w, err := Create(path, Header{NumPoints: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Index: 2}); err != nil {
		t.Fatal(err)
	}
	// Index 7 is beyond the declared fault list: a valid frame carrying an
	// impossible claim must be treated as corruption.
	if err := w.Append(Record{Index: 7}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	r, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Records) != 1 || !r.Corrupt {
		t.Fatalf("out-of-range record not rejected: %+v", r)
	}
}

func TestResume(t *testing.T) {
	path, recs := writeJournal(t, 10)

	// Damage the tail: drop the last 3 bytes (torn final record).
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	w, r, err := Resume(path, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Torn || len(r.Records) != len(recs)-1 {
		t.Fatalf("resume diagnosis: torn=%v records=%d", r.Torn, len(r.Records))
	}
	// Append past the truncated tail; the file must read back clean.
	last := recs[len(recs)-1]
	if err := w.Append(last); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Torn || r2.Corrupt || len(r2.Records) != len(recs) {
		t.Fatalf("after resume-append: %+v", r2)
	}
	if r2.Records[len(recs)-1] != last {
		t.Fatal("resumed append did not land at a clean boundary")
	}
}

func TestResumeHeaderMismatch(t *testing.T) {
	path, _ := writeJournal(t, 3)
	other := testHeader
	other.FaultListHash++
	if _, _, err := Resume(path, other); err == nil {
		t.Fatal("resume accepted a journal from a different campaign")
	}
}

func TestResumeMissingFile(t *testing.T) {
	if _, _, err := Resume(filepath.Join(t.TempDir(), "nope.journal"), testHeader); err == nil {
		t.Fatal("resume accepted a missing journal")
	}
}

func TestRecoverNotAJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x")
	os.WriteFile(path, []byte("definitely not a journal"), 0o644)
	if _, err := Recover(path); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.journal")
	w, err := Create(path, Header{NumPoints: 1000})
	if err != nil {
		t.Fatal(err)
	}
	const shards, per = 8, 50
	done := make(chan error, shards)
	for s := 0; s < shards; s++ {
		go func(s int) {
			for i := 0; i < per; i++ {
				if err := w.Append(Record{Index: uint64(s*per + i)}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(s)
	}
	for s := 0; s < shards; s++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	r, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Records) != shards*per || r.Torn || r.Corrupt {
		t.Fatalf("concurrent appends interleaved: %d records, torn=%v corrupt=%v", len(r.Records), r.Torn, r.Corrupt)
	}
	seen := map[uint64]bool{}
	for _, rec := range r.Records {
		if seen[rec.Index] {
			t.Fatalf("record %d duplicated", rec.Index)
		}
		seen[rec.Index] = true
	}
}

// FuzzRecover: arbitrary bytes must never panic the reader, and whatever
// it returns must obey the recovery contract (records only with a header,
// indices inside the declared fault list).
func FuzzRecover(f *testing.F) {
	path, _ := writeJournal(f, 5)
	if data, err := os.ReadFile(path); err == nil {
		f.Add(data)
		f.Add(data[:len(data)-2])
		f.Add(append(data, 0xff, 0x00, 0x17))
	}
	// Format v3 seeds: a journal mixing v2, v3 and MATE-hit frames, whole,
	// torn and with a junk tail.
	v3path, _ := writeModelJournal(f, 7)
	if data, err := os.ReadFile(v3path); err == nil {
		f.Add(data)
		f.Add(data[:len(data)-5])
		f.Add(append(data, 0x03, 0x00, 0x00, 0x00))
	}
	f.Add([]byte(magic))
	f.Add([]byte("HAFIWAL1\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.journal")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		r, err := Recover(p)
		if err != nil {
			return
		}
		for _, rec := range r.Records {
			if !r.HasHeader {
				t.Fatal("experiment record without a campaign header")
			}
			if rec.Index >= r.Header.NumPoints {
				t.Fatalf("record index %d outside declared fault list %d", rec.Index, r.Header.NumPoints)
			}
			// The canonical-encoding rule: a record that decodes to the
			// legacy SEU shape can only have come from a v2 frame, and its
			// re-encoding is that same v2 frame — so every recovered record
			// round-trips to exactly one byte encoding.
			if got := len(recordBody(rec)); rec.legacySEU() {
				if got != 1+experimentPayloadLen {
					t.Fatalf("legacy record re-encodes to %d bytes", got)
				}
			} else if got != 1+experimentV3PayloadLen {
				t.Fatalf("v3 record re-encodes to %d bytes", got)
			}
		}
		for _, hit := range r.MATEHits {
			if !r.HasHeader {
				t.Fatal("MATE hit without a campaign header")
			}
			if hit.Index >= r.Header.NumPoints {
				t.Fatalf("hit index %d outside declared fault list %d", hit.Index, r.Header.NumPoints)
			}
		}
	})
}
