package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// MergeShard is one shard journal queued for merging into a campaign
// journal: the recovered shard log, the shard's offset in the campaign
// fault list, and the header the shard is REQUIRED to carry. The caller
// (the fleet coordinator) computes Want from the campaign fault list —
// golden signature plus the shard slice's length and FNV fingerprint — so
// a journal recorded against a different workload, netlist or fault-list
// slice is rejected before a single record is merged.
type MergeShard struct {
	Rec  *Recovered
	Base uint64
	Want Header
}

// MergeStats summarises one merge.
type MergeStats struct {
	// Shards is the number of shard journals merged.
	Shards int
	// Records is the number of experiment records written (distinct global
	// fault-list indexes; a point a shard classified twice keeps its final
	// verdict, exactly like single-journal recovery).
	Records int
	// MATEHits is the number of attribution records written.
	MATEHits int
}

// Merge combines per-shard journals into one campaign journal at path,
// written under the campaign header so the merged journal is
// indistinguishable from (and diffable against) the journal of an
// uninterrupted single-process run over the full fault list.
//
// Safety checks, in order, per shard:
//
//   - the shard journal must have an intact header;
//   - the shard header must equal Want field for field — a mismatch is an
//     error naming the offending field (golden signature, fault-list size,
//     fault-list hash);
//   - the shard's golden signature must equal the campaign's (implied by
//     the Want check when the caller builds Want from the campaign golden,
//     but verified independently so a bad Want cannot smuggle a foreign
//     shard in);
//   - the shard range [Base, Base+NumPoints) must lie inside the campaign
//     fault list and must not overlap any other shard's range;
//   - no global fault-list index may be claimed by two shards (duplicate
//     point).
//
// The merge is crash-safe: records are written to a temporary file in
// path's directory, synced, and atomically renamed over path — a crash
// mid-merge leaves either the previous file or no file, never a
// half-merged journal. Records are emitted in global fault-list order with
// each pruned point's attribution hit immediately before its experiment
// record, matching the invariant the campaign engines maintain.
func Merge(path string, campaign Header, shards []MergeShard) (*MergeStats, error) {
	ordered := append([]MergeShard(nil), shards...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Base < ordered[j].Base })

	var prevEnd uint64
	for i, s := range ordered {
		if s.Rec == nil || !s.Rec.HasHeader {
			return nil, fmt.Errorf("journal: merge: shard at base %d has no intact campaign header", s.Base)
		}
		if err := checkShardHeader(s.Rec.Header, s.Want, s.Base); err != nil {
			return nil, err
		}
		if s.Rec.Header.GoldenSignature != campaign.GoldenSignature {
			return nil, fmt.Errorf("journal: merge: shard at base %d golden signature %016x does not match campaign %016x",
				s.Base, s.Rec.Header.GoldenSignature, campaign.GoldenSignature)
		}
		end := s.Base + s.Rec.Header.NumPoints
		if end > campaign.NumPoints {
			return nil, fmt.Errorf("journal: merge: shard [%d, %d) exceeds the campaign fault list (%d points)",
				s.Base, end, campaign.NumPoints)
		}
		if i > 0 && s.Base < prevEnd {
			return nil, fmt.Errorf("journal: merge: shard [%d, %d) overlaps shard ending at %d",
				s.Base, end, prevEnd)
		}
		prevEnd = end
	}

	// Non-overlapping ranges already guarantee distinct global indexes
	// between shards; the seen map additionally catches a record whose
	// local index escapes its own shard (impossible for an intact journal,
	// as recovery bounds Index by the header's NumPoints — this is a
	// defence-in-depth assertion, not a reachable branch for valid input).
	seen := make(map[uint64]bool)

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".merge-*")
	if err != nil {
		return nil, fmt.Errorf("journal: merge: %w", err)
	}
	tmpPath := tmp.Name()
	defer func() {
		tmp.Close()
		os.Remove(tmpPath) // no-op after the successful rename
	}()

	frame := appendFrame([]byte(magic), headerBody(campaign))
	if _, err := tmp.Write(frame); err != nil {
		return nil, fmt.Errorf("journal: merge: write header: %w", err)
	}

	stats := &MergeStats{Shards: len(ordered)}
	var buf []byte
	for _, s := range ordered {
		locals := make([]uint64, 0, len(s.Rec.ByIndex))
		for idx := range s.Rec.ByIndex {
			locals = append(locals, idx)
		}
		sort.Slice(locals, func(i, j int) bool { return locals[i] < locals[j] })
		for _, local := range locals {
			global := s.Base + local
			if seen[global] {
				return nil, fmt.Errorf("journal: merge: duplicate point %d (shard at base %d)", global, s.Base)
			}
			seen[global] = true
			rec := s.Rec.ByIndex[local]
			rec.Index = global
			buf = buf[:0]
			if hit, ok := s.Rec.HitByIndex[local]; ok && rec.Pruned {
				hit.Index = global
				buf = appendFrame(buf, mateHitBody(hit))
				stats.MATEHits++
			}
			buf = appendFrame(buf, recordBody(rec))
			if _, err := tmp.Write(buf); err != nil {
				return nil, fmt.Errorf("journal: merge: %w", err)
			}
			stats.Records++
		}
	}

	if err := tmp.Sync(); err != nil {
		return nil, fmt.Errorf("journal: merge: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return nil, fmt.Errorf("journal: merge: %w", err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		return nil, fmt.Errorf("journal: merge: %w", err)
	}
	return stats, nil
}

// checkShardHeader compares a shard's recorded header against the expected
// one, naming the first mismatched field — the error a fleet operator sees
// when a stale or foreign shard journal is offered for merging.
func checkShardHeader(got, want Header, base uint64) error {
	switch {
	case got.GoldenSignature != want.GoldenSignature:
		return fmt.Errorf("journal: merge: shard at base %d: golden signature mismatch (journal %016x, want %016x)",
			base, got.GoldenSignature, want.GoldenSignature)
	case got.NumPoints != want.NumPoints:
		return fmt.Errorf("journal: merge: shard at base %d: fault-list size mismatch (journal %d, want %d)",
			base, got.NumPoints, want.NumPoints)
	case got.FaultListHash != want.FaultListHash:
		return fmt.Errorf("journal: merge: shard at base %d: fault-list hash mismatch (journal %016x, want %016x)",
			base, got.FaultListHash, want.FaultListHash)
	}
	return nil
}
