package journal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// modelRecord builds a deterministic record for point i, cycling through
// the fault models with each model's operands populated the way the hafi
// campaign writer normalises them (span/period >= 1 on non-SEU records).
func modelRecord(i int) Record {
	rec := Record{
		Index:    uint64(i),
		FF:       uint32(i * 3),
		Cycle:    uint32(i * 7),
		Duration: 1,
		Outcome:  uint8(i % 4),
		Pruned:   i%5 == 0,
	}
	switch i % 5 {
	case 0: // classic SEU — stays a v2 frame
	case 1: // mbu
		rec.Model, rec.Span, rec.Period = 1, 3, 1
	case 2: // set
		rec.Model, rec.Span, rec.Period = 2, 1, 1
		rec.NumTargets = uint16(2 + i%3)
		rec.TargetsHash = 0x9e3779b97f4a7c15 * uint64(i+1)
	case 3: // intermittent
		rec.Model, rec.Span, rec.Period = 3, 1, 2
		rec.Duration = 8
	case 4: // stuck-at
		rec.Model, rec.Span, rec.Period = 4, 1, 1
		rec.Duration = 4
		rec.StuckHigh = i%2 == 0
	}
	return rec
}

// writeModelJournal creates a journal mixing v2 (plain SEU) and v3
// (model-tagged) experiment frames, with a MATE hit before each pruned
// record, and returns its path plus the records written.
func writeModelJournal(t testing.TB, n int) (string, []Record) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.journal")
	w, err := Create(path, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = modelRecord(i)
		if recs[i].Pruned {
			if err := w.AppendMATEHit(MATEHit{Index: uint64(i), FF: recs[i].FF, MATE: uint32(i % 3), Width: 4}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, recs
}

// frameTypes walks the raw frames of a journal file and returns the record
// type byte of each frame.
func frameTypes(t testing.TB, path string) []uint8 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var types []uint8
	for pos := len(magic); pos+8 <= len(data); {
		n := int(binary.LittleEndian.Uint32(data[pos:]))
		types = append(types, data[pos+4])
		pos += 8 + n
	}
	return types
}

// TestV3RoundTrip: records of every fault model survive Append/Recover
// bit-exactly, plain-SEU records still encode as v2 frames, and only
// model-tagged records use the v3 frame type.
func TestV3RoundTrip(t *testing.T) {
	path, recs := writeModelJournal(t, 50)
	r, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Torn || r.Corrupt || r.DroppedBytes != 0 {
		t.Fatalf("clean journal diagnosed damaged: %+v", r)
	}
	if len(r.Records) != len(recs) {
		t.Fatalf("recovered %d of %d records", len(r.Records), len(recs))
	}
	for i, rec := range r.Records {
		if rec != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, rec, recs[i])
		}
	}

	types := frameTypes(t, path)
	i := 0 // experiment counter (skips header and hit frames)
	for _, typ := range types {
		switch typ {
		case recHeader, recMATEHit:
			continue
		case recExperiment:
			if !recs[i].legacySEU() {
				t.Fatalf("model-tagged record %d written as a v2 frame", i)
			}
		case recExperimentV3:
			if recs[i].legacySEU() {
				t.Fatalf("plain-SEU record %d written as a v3 frame", i)
			}
		default:
			t.Fatalf("unknown frame type %d", typ)
		}
		i++
	}
	if i != len(recs) {
		t.Fatalf("saw %d experiment frames for %d records", i, len(recs))
	}
}

// TestV3TornTail is the truncation boundary walk over a journal mixing v2,
// v3 and MATE-hit frames: every mid-frame cut must be diagnosed, and the
// recovered prefix must match the written records exactly.
func TestV3TornTail(t *testing.T) {
	path, recs := writeModelJournal(t, 20)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	boundary := map[int]bool{len(magic): true}
	for pos := len(magic); pos+8 <= len(data); {
		pos += 8 + int(binary.LittleEndian.Uint32(data[pos:]))
		boundary[pos] = true
	}
	cut := filepath.Join(t.TempDir(), "cut.journal")
	for n := len(magic); n < len(data); n++ {
		if err := os.WriteFile(cut, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Recover(cut)
		if err != nil {
			t.Fatalf("cut at %d: %v", n, err)
		}
		if !boundary[n] && !r.Torn && !r.Corrupt {
			t.Fatalf("cut at %d: mid-frame truncation not diagnosed (%d records)", n, len(r.Records))
		}
		for i, rec := range r.Records {
			if rec != recs[i] {
				t.Fatalf("cut at %d: record %d = %+v, want %+v", n, i, rec, recs[i])
			}
		}
	}
}

// TestV3BitFlips flips every bit of a mixed-version journal: recovery must
// never fabricate or alter a record, whatever the damage.
func TestV3BitFlips(t *testing.T) {
	path, recs := writeModelJournal(t, 20)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := filepath.Join(t.TempDir(), "flipped.journal")
	for pos := 0; pos < len(data); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(data)
			mut[pos] ^= 1 << bit
			if err := os.WriteFile(flipped, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := Recover(flipped)
			if err != nil {
				continue // flip inside the magic
			}
			for _, rec := range r.Records {
				if rec.Index >= uint64(len(recs)) || rec != recs[rec.Index] {
					t.Fatalf("flip at byte %d bit %d: recovered fabricated record %+v", pos, bit, rec)
				}
			}
			if r.HasHeader && r.Header != testHeader {
				t.Fatalf("flip at byte %d bit %d: header silently altered", pos, bit)
			}
		}
	}
}

// TestV3GarbageAppend: junk after a mixed-version journal is dropped and
// diagnosed without touching the valid records.
func TestV3GarbageAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		path, recs := writeModelJournal(t, 10)
		junk := make([]byte, 1+rng.Intn(200))
		rng.Read(junk)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(junk)
		f.Close()
		r, err := Recover(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Records) != len(recs) {
			t.Fatalf("trial %d: garbage destroyed valid records (%d of %d)", trial, len(r.Records), len(recs))
		}
		for i, rec := range r.Records {
			if rec != recs[i] {
				t.Fatalf("trial %d: record %d altered", trial, i)
			}
		}
		if !r.Torn && !r.Corrupt {
			t.Fatalf("trial %d: %d junk bytes not diagnosed", trial, len(junk))
		}
	}
}

// TestV3Resume: a model journal with a torn tail resumes at a clean frame
// boundary and reads back clean after the re-appended record.
func TestV3Resume(t *testing.T) {
	path, recs := writeModelJournal(t, 10)
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	w, r, err := Resume(path, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Torn {
		t.Fatalf("torn tail not diagnosed: %+v", r)
	}
	last := recs[len(recs)-1]
	if err := w.Append(last); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Torn || r2.Corrupt || len(r2.Records) != len(recs) {
		t.Fatalf("after resume-append: torn=%v corrupt=%v records=%d", r2.Torn, r2.Corrupt, len(r2.Records))
	}
	for i, rec := range r2.Records {
		if rec != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, rec, recs[i])
		}
	}
}

// TestV3CanonicalEncodingRejected: a v3 frame whose model block is all
// zero describes a plain SEU, which the writer always encodes as a v2
// frame. A well-checksummed v3 frame with a zero model block can therefore
// only come from a foreign or tampered writer and must be treated as
// corruption, so every record keeps exactly one on-disk encoding.
func TestV3CanonicalEncodingRejected(t *testing.T) {
	path, recs := writeJournal(t, 3)

	body := make([]byte, 1+experimentV3PayloadLen)
	body[0] = recExperimentV3
	binary.LittleEndian.PutUint64(body[1:], 3) // index inside the fault list
	binary.LittleEndian.PutUint32(body[9:], 9) // ff
	// model block (bytes 23..38 of the body) left all zero: non-canonical.
	frame := appendFrame(nil, body)
	if crc32.Checksum(body, crcTable) == 0 {
		t.Fatal("degenerate checksum")
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Corrupt {
		t.Fatal("non-canonical v3 frame accepted")
	}
	if len(r.Records) != len(recs) {
		t.Fatalf("valid prefix damaged: %d of %d records", len(r.Records), len(recs))
	}
	if _, ok := r.ByIndex[3]; ok {
		t.Fatal("the non-canonical record leaked into the index")
	}
}

// TestLegacyJournalStaysV2: a journal written purely from legacy-shaped
// records must contain no v3 frames at all — the on-disk format of every
// pre-fault-model campaign is preserved bit for bit.
func TestLegacyJournalStaysV2(t *testing.T) {
	path, recs := writeJournal(t, 25)
	for _, typ := range frameTypes(t, path) {
		if typ == recExperimentV3 {
			t.Fatal("legacy records produced a v3 frame")
		}
	}
	r, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range r.Records {
		if !rec.legacySEU() {
			t.Fatalf("legacy record %d recovered with model fields: %+v", i, rec)
		}
		if rec != recs[i] {
			t.Fatalf("record %d altered", i)
		}
	}
}
