package journal

import (
	"os"
	"path/filepath"
	"testing"
)

// TestMATEHitRoundTrip interleaves attribution hits with experiment records
// the way the campaign engines write them (hit immediately before its pruned
// point) and checks both indexes recover.
func TestMATEHitRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v2.journal")
	w, err := Create(path, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	var hits []MATEHit
	for i := 0; i < 30; i++ {
		rec := Record{Index: uint64(i), FF: uint32(i), Cycle: uint32(i * 2), Duration: 1}
		if i%3 == 0 {
			hit := MATEHit{Index: uint64(i), FF: uint32(i), MATE: uint32(i % 7), Width: uint16(1 + i%4)}
			if err := w.AppendMATEHit(hit); err != nil {
				t.Fatal(err)
			}
			hits = append(hits, hit)
			rec.Pruned = true
		} else {
			rec.Outcome = uint8(i % 4)
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Torn || r.Corrupt {
		t.Fatalf("clean v2 journal diagnosed damaged: %+v", r)
	}
	if len(r.Records) != 30 {
		t.Fatalf("recovered %d records", len(r.Records))
	}
	if len(r.MATEHits) != len(hits) {
		t.Fatalf("recovered %d of %d hits", len(r.MATEHits), len(hits))
	}
	for i, hit := range r.MATEHits {
		if hit != hits[i] {
			t.Fatalf("hit %d = %+v, want %+v", i, hit, hits[i])
		}
	}
	for _, hit := range hits {
		if got, ok := r.HitByIndex[hit.Index]; !ok || got != hit {
			t.Fatalf("HitByIndex[%d] = %+v, %v", hit.Index, got, ok)
		}
	}
}

// TestMixedVersionRecovery: a v1 journal (experiment records only, as
// written before attribution existed) must recover unchanged with an empty
// hit index, and a resume may append v2 hits to it — readers accept the
// mixed file.
func TestMixedVersionRecovery(t *testing.T) {
	path, recs := writeJournal(t, 10) // v1: no attribution records

	r, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MATEHits) != 0 || len(r.HitByIndex) != 0 {
		t.Fatalf("v1 journal recovered phantom hits: %+v", r.MATEHits)
	}
	if len(r.Records) != len(recs) {
		t.Fatalf("recovered %d of %d v1 records", len(r.Records), len(recs))
	}

	// Resume the v1 file and continue writing in v2.
	w, _, err := Resume(path, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	hit := MATEHit{Index: 10, FF: 30, MATE: 4, Width: 3}
	if err := w.AppendMATEHit(hit); err != nil {
		t.Fatal(err)
	}
	rec := Record{Index: 10, FF: 30, Cycle: 70, Duration: 1, Pruned: true}
	if err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err = Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Records) != len(recs)+1 {
		t.Fatalf("mixed journal recovered %d records", len(r.Records))
	}
	if len(r.MATEHits) != 1 || r.HitByIndex[10] != hit {
		t.Fatalf("mixed journal hits = %+v", r.MATEHits)
	}
	if r.ByIndex[10] != rec {
		t.Fatalf("appended record = %+v", r.ByIndex[10])
	}
}

// TestOrphanHitSurvivesTornTail: a crash between the hit and its experiment
// record leaves an orphan hit. Recovery keeps it (it is intact on disk);
// consumers key by ByIndex and therefore ignore it.
func TestOrphanHitSurvivesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "orphan.journal")
	w, err := Create(path, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendMATEHit(MATEHit{Index: 0, FF: 1, MATE: 2, Width: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Index: 0, FF: 1, Cycle: 5, Duration: 1, Pruned: true}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendMATEHit(MATEHit{Index: 1, FF: 2, MATE: 3, Width: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-way through what would have been the next frame.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, 0x20, 0x00), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Torn {
		t.Fatalf("appended garbage not diagnosed as torn: %+v", r)
	}
	if len(r.Records) != 1 || len(r.MATEHits) != 2 {
		t.Fatalf("recovered %d records, %d hits", len(r.Records), len(r.MATEHits))
	}
	if _, classified := r.ByIndex[1]; classified {
		t.Fatal("orphan hit must not classify its point")
	}
}

// TestMATEHitOutsideFaultListRejected: a hit claiming a point beyond the
// header's fault list is structural corruption.
func TestMATEHitOutsideFaultListRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.journal")
	w, err := Create(path, Header{NumPoints: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendMATEHit(MATEHit{Index: 5}); err != nil { // == NumPoints
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Corrupt || len(r.MATEHits) != 0 {
		t.Fatalf("out-of-range hit accepted: %+v", r)
	}
}
