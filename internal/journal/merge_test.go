package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeShard builds a shard journal on disk and recovers it — the shape a
// fleet coordinator receives from a worker upload.
func writeShard(t *testing.T, dir, name string, h Header, recs []Record, hits []MATEHit) *Recovered {
	t.Helper()
	path := filepath.Join(dir, name)
	w, err := Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	hitByIndex := map[uint64]MATEHit{}
	for _, hit := range hits {
		hitByIndex[hit.Index] = hit
	}
	for _, rec := range recs {
		if hit, ok := hitByIndex[rec.Index]; ok && rec.Pruned {
			if err := w.AppendMATEHit(hit); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestMergeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	campaign := Header{GoldenSignature: 0xfeed, NumPoints: 6, FaultListHash: 0xabcd}
	h0 := Header{GoldenSignature: 0xfeed, NumPoints: 3, FaultListHash: 0x1111}
	h1 := Header{GoldenSignature: 0xfeed, NumPoints: 3, FaultListHash: 0x2222}

	s0 := writeShard(t, dir, "s0.journal", h0, []Record{
		{Index: 0, FF: 10, Cycle: 100, Duration: 1, Outcome: 1},
		{Index: 1, FF: 11, Cycle: 100, Duration: 1, Pruned: true},
		{Index: 2, FF: 12, Cycle: 100, Duration: 1, Outcome: 0},
	}, []MATEHit{{Index: 1, FF: 11, MATE: 7, Width: 3}})
	s1 := writeShard(t, dir, "s1.journal", h1, []Record{
		{Index: 0, FF: 10, Cycle: 200, Duration: 1, Outcome: 2},
		{Index: 1, FF: 11, Cycle: 200, Duration: 1, Outcome: 0},
		{Index: 2, FF: 12, Cycle: 200, Duration: 1, Pruned: true},
	}, []MATEHit{{Index: 2, FF: 12, MATE: 4, Width: 2}})

	out := filepath.Join(dir, "merged.journal")
	stats, err := Merge(out, campaign, []MergeShard{
		{Rec: s1, Base: 3, Want: h1}, // out of order on purpose: Merge sorts by base
		{Rec: s0, Base: 0, Want: h0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 2 || stats.Records != 6 || stats.MATEHits != 2 {
		t.Fatalf("stats = %+v, want 2 shards, 6 records, 2 hits", stats)
	}

	m, err := Recover(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.Torn || m.Corrupt {
		t.Fatalf("merged journal damaged: torn=%v corrupt=%v", m.Torn, m.Corrupt)
	}
	if m.Header != campaign {
		t.Fatalf("merged header = %+v, want %+v", m.Header, campaign)
	}
	if len(m.ByIndex) != 6 {
		t.Fatalf("merged journal has %d points, want 6", len(m.ByIndex))
	}
	// Spot checks: global remapping and attribution pairing survived.
	if rec := m.ByIndex[3]; rec.FF != 10 || rec.Cycle != 200 || rec.Outcome != 2 {
		t.Fatalf("point 3 = %+v, want shard-1 local 0 (ff=10 cycle=200 hang)", rec)
	}
	if hit, ok := m.HitByIndex[5]; !ok || hit.MATE != 4 || hit.Width != 2 {
		t.Fatalf("point 5 attribution = %+v (present=%v), want MATE 4 width 2", hit, ok)
	}
	if !m.ByIndex[1].Pruned || m.HitByIndex[1].MATE != 7 {
		t.Fatalf("point 1 lost its pruned flag or attribution: %+v / %+v", m.ByIndex[1], m.HitByIndex[1])
	}
}

func TestMergeKeepsFinalVerdictOfReclassifiedPoint(t *testing.T) {
	dir := t.TempDir()
	h := Header{GoldenSignature: 1, NumPoints: 2, FaultListHash: 2}
	// A shard whose journal classified point 0 twice (crash + resume on the
	// worker): the final verdict must win, exactly like plain recovery.
	s := writeShard(t, dir, "s.journal", h, []Record{
		{Index: 0, FF: 1, Cycle: 1, Duration: 1, Outcome: 1},
		{Index: 1, FF: 2, Cycle: 1, Duration: 1, Outcome: 0},
		{Index: 0, FF: 1, Cycle: 1, Duration: 1, Outcome: 0},
	}, nil)
	out := filepath.Join(dir, "merged.journal")
	campaign := Header{GoldenSignature: 1, NumPoints: 2, FaultListHash: 9}
	stats, err := Merge(out, campaign, []MergeShard{{Rec: s, Base: 0, Want: h}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 {
		t.Fatalf("stats.Records = %d, want 2 (distinct points)", stats.Records)
	}
	m, err := Recover(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.ByIndex[0].Outcome != 0 {
		t.Fatalf("point 0 outcome = %d, want the final verdict 0", m.ByIndex[0].Outcome)
	}
}

func TestMergeRejections(t *testing.T) {
	dir := t.TempDir()
	campaign := Header{GoldenSignature: 0xfeed, NumPoints: 6, FaultListHash: 0xabcd}
	good := Header{GoldenSignature: 0xfeed, NumPoints: 3, FaultListHash: 0x1111}
	shard := writeShard(t, dir, "good.journal", good, []Record{
		{Index: 0, FF: 1, Cycle: 1, Duration: 1},
	}, nil)

	cases := []struct {
		name   string
		shards []MergeShard
		want   string
	}{
		{
			name:   "golden signature mismatch",
			shards: []MergeShard{{Rec: shard, Base: 0, Want: Header{GoldenSignature: 0xdead, NumPoints: 3, FaultListHash: 0x1111}}},
			want:   "golden signature mismatch",
		},
		{
			name:   "fault-list size mismatch",
			shards: []MergeShard{{Rec: shard, Base: 0, Want: Header{GoldenSignature: 0xfeed, NumPoints: 4, FaultListHash: 0x1111}}},
			want:   "fault-list size mismatch",
		},
		{
			name:   "fault-list hash mismatch",
			shards: []MergeShard{{Rec: shard, Base: 0, Want: Header{GoldenSignature: 0xfeed, NumPoints: 3, FaultListHash: 0x9999}}},
			want:   "fault-list hash mismatch",
		},
		{
			name:   "shard beyond campaign fault list",
			shards: []MergeShard{{Rec: shard, Base: 4, Want: good}},
			want:   "exceeds the campaign fault list",
		},
		{
			name: "overlapping shards",
			shards: []MergeShard{
				{Rec: shard, Base: 0, Want: good},
				{Rec: shard, Base: 2, Want: good},
			},
			want: "overlaps",
		},
		{
			name:   "missing header",
			shards: []MergeShard{{Rec: &Recovered{}, Base: 0, Want: good}},
			want:   "no intact campaign header",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := filepath.Join(dir, "rejected.journal")
			_, err := Merge(out, campaign, tc.shards)
			if err == nil {
				t.Fatalf("merge succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the mismatch (%q)", err, tc.want)
			}
			if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
				t.Fatalf("rejected merge left an output file behind (stat: %v)", statErr)
			}
		})
	}
}

func TestMergeForeignGoldenRejectedEvenWithMatchingWant(t *testing.T) {
	// A Want header that (wrongly) matches a foreign shard must not smuggle
	// it past the campaign check: the shard/campaign golden comparison is
	// independent of Want.
	dir := t.TempDir()
	foreign := Header{GoldenSignature: 0xbad, NumPoints: 1, FaultListHash: 0x1}
	shard := writeShard(t, dir, "foreign.journal", foreign, []Record{
		{Index: 0, FF: 1, Cycle: 1, Duration: 1},
	}, nil)
	campaign := Header{GoldenSignature: 0xfeed, NumPoints: 6, FaultListHash: 0xabcd}
	_, err := Merge(filepath.Join(dir, "out.journal"), campaign, []MergeShard{
		{Rec: shard, Base: 0, Want: foreign},
	})
	if err == nil || !strings.Contains(err.Error(), "does not match campaign") {
		t.Fatalf("foreign golden signature not rejected: %v", err)
	}
}

func TestMergeOverwritesAtomically(t *testing.T) {
	// A successful merge replaces an existing file; a failed one leaves it
	// untouched — the crash-safety contract the coordinator relies on when
	// it re-merges after a restart.
	dir := t.TempDir()
	campaign := Header{GoldenSignature: 0xfeed, NumPoints: 3, FaultListHash: 0xabcd}
	h := Header{GoldenSignature: 0xfeed, NumPoints: 3, FaultListHash: 0x1111}
	shard := writeShard(t, dir, "s.journal", h, []Record{
		{Index: 0, FF: 1, Cycle: 1, Duration: 1},
		{Index: 1, FF: 2, Cycle: 1, Duration: 1},
	}, nil)

	out := filepath.Join(dir, "merged.journal")
	if _, err := Merge(out, campaign, []MergeShard{{Rec: shard, Base: 0, Want: h}}); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}

	// Failing merge (bad Want): the previous merged journal must survive.
	_, err = Merge(out, campaign, []MergeShard{{Rec: shard, Base: 0, Want: Header{GoldenSignature: 0xdead}}})
	if err == nil {
		t.Fatal("bad merge succeeded")
	}
	after, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed merge modified the existing merged journal")
	}

	// Re-merge (the coordinator-restart path): idempotent, byte-identical.
	if _, err := Merge(out, campaign, []MergeShard{{Rec: shard, Base: 0, Want: h}}); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(again) {
		t.Fatal("re-merge is not byte-identical")
	}
}
