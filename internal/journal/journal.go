// Package journal provides the durable campaign journal: an append-only,
// length-prefixed, CRC-checksummed record log (write-ahead-log style) that
// the HAFI campaign controller writes once per classified injection point.
// A campaign killed by SIGINT, OOM or a crashing worker leaves a journal
// from which `campaign -resume` reproduces the exact same CampaignResult
// as an uninterrupted run, re-executing only the points that never made it
// into the log.
//
// On-disk format:
//
//	magic "HAFIWAL1"
//	record*     where record = u32le length | body | u32le CRC32-C(body)
//	            and body     = u8 type | payload
//
// Record types: 0 = campaign header (golden signature, fault-list size and
// hash — the campaign identity a resume is checked against), 1 = one
// classified injection point, 2 = one MATE attribution hit (format v2:
// which MATE pruned which point, written immediately before the point's
// pruned experiment record), 3 = one classified injection point of a
// non-SEU fault model (format v3: the v2 payload plus the model tag and
// its operands). Recovery walks the log front to back and
// stops at the first frame that is incomplete (a torn tail from a crash
// mid-write — tolerated, the tail is dropped) or fails its checksum (a
// corrupt record — rejected, together with everything after it, since a
// damaged log has no trustworthy resynchronisation point). Either way the
// recovered prefix only ever contains records that were durably and intact
// on disk: recovery never claims an experiment that did not run.
//
// Versioning: v1 journals (headers + experiment records only, as written
// before MATE attribution existed) recover unchanged — the hit index is
// simply empty. v2 journals interleave type-2 records; a reader of either
// version accepts both, and a hit whose experiment record was lost to a
// torn tail is an orphan that consumers ignore (the point re-runs on
// resume and re-appends both records; the per-index maps keep the last).
// v3 journals additionally interleave type-3 records for points of non-SEU
// fault models; SEU points keep the v2 encoding even in a v3 journal, so a
// campaign of classic single-bit upsets writes a byte-identical v2 journal
// and every pre-v3 journal recovers, resumes and diffs exactly as before.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"repro/internal/obs"
)

const magic = "HAFIWAL1"

const (
	recHeader       = 0
	recExperiment   = 1
	recMATEHit      = 2 // format v2: per-MATE pruning attribution
	recExperimentV3 = 3 // format v3: experiment record with a fault-model tag

	headerPayloadLen     = 24 // 3 × u64
	experimentPayloadLen = 22 // u64 index + 3 × u32 + outcome + flags
	mateHitPayloadLen    = 18 // u64 index + 2 × u32 + u16 width
	// experimentV3PayloadLen extends the v2 payload with the fault-model
	// operands: u8 model + u8 model flags + u16 span + u16 period +
	// u16 target count + u64 target-set hash.
	experimentV3PayloadLen = experimentPayloadLen + 16

	// maxBodyLen bounds the length prefix; anything larger is garbage, not
	// a record (the largest real body is 1+experimentV3PayloadLen bytes).
	maxBodyLen = 256

	flagPruned       = 1 << 0
	flagSkippedWrong = 1 << 1

	// flags2StuckHigh lives in the v3 model-flags byte.
	flags2StuckHigh = 1 << 0
)

// crcTable is Castagnoli — hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Header identifies the campaign a journal belongs to. Resume refuses a
// journal whose header does not match the campaign being resumed: a stale
// journal from a different workload, netlist or fault list must never be
// merged into a fresh run.
type Header struct {
	// GoldenSignature is the fault-free result signature of the golden run.
	GoldenSignature uint64
	// NumPoints is the fault-list length.
	NumPoints uint64
	// FaultListHash fingerprints the exact (FF, cycle, duration) sequence.
	FaultListHash uint64
}

// Record is one classified injection point. FF, Cycle and Duration echo
// the fault point so recovery can verify the record against the fault list
// it is resumed into; Outcome uses the hafi outcome codes (benign=0, sdc=1,
// hang=2, harness-error=3) and is meaningful only for executed points.
type Record struct {
	// Index is the point's position in the campaign fault list.
	Index    uint64
	FF       uint32
	Cycle    uint32
	Duration uint32
	// Outcome is the classification of an executed point (hafi.Outcome).
	Outcome uint8
	// Pruned marks a point a MATE proved benign without execution.
	Pruned bool
	// SkippedWrong marks a validated-skipped point that was NOT benign on
	// re-execution (a MATE soundness violation).
	SkippedWrong bool

	// Fault-model fields (format v3). An all-zero set of model fields is a
	// classic SEU and encodes as a v2 experiment record, so SEU campaigns
	// keep writing byte-identical journals; any nonzero field selects the
	// v3 encoding. Model uses the hafi.ModelID codes (seu=0, mbu=1, set=2,
	// intermittent=3, stuck-at=4).
	Model uint8
	// Span is the MBU burst width, Period the intermittent re-flip period
	// (both normalised to >= 1 for non-SEU records).
	Span   uint16
	Period uint16
	// StuckHigh is the stuck-at level.
	StuckHigh bool
	// NumTargets and TargetsHash identify a SET record's flip set: the
	// journal stays fixed-width by storing the set's size and FNV
	// fingerprint rather than the member list (resume verifies them
	// against the reconstructed fault list).
	NumTargets  uint16
	TargetsHash uint64
}

// legacySEU reports whether the record encodes as a v2 experiment frame
// (all fault-model fields zero — the classic SEU shape).
func (rec Record) legacySEU() bool {
	return rec.Model == 0 && rec.Span == 0 && rec.Period == 0 && !rec.StuckHigh &&
		rec.NumTargets == 0 && rec.TargetsHash == 0
}

// MATEHit is one per-MATE pruning attribution (record type 2, format v2):
// the campaign controller proved point Index benign using MATE number MATE
// of the campaign's MATE set. Width echoes the MATE's literal count so the
// paper's cost/benefit metric (points pruned per term literal) can be
// recomputed from the journal alone, without the MATE-set file.
type MATEHit struct {
	// Index is the pruned point's position in the campaign fault list.
	Index uint64
	// FF is the pruned point's flip-flop (echoed for self-description).
	FF uint32
	// MATE is the crediting MATE's index in the campaign MATE set — the
	// MATE that fired first on the injection cycle.
	MATE uint32
	// Width is the crediting MATE's literal (input) count.
	Width uint16
}

// Writer appends records to a journal file. It is safe for concurrent use
// by the campaign worker shards: each Append is one mutex-guarded write of
// one complete frame, so records from different shards never interleave.
type Writer struct {
	mu      sync.Mutex
	f       *os.File
	scratch []byte
	// SyncEvery fsyncs the file every N appends (0 = never; the OS page
	// cache already survives a process crash, fsync additionally survives
	// power loss at a heavy per-record cost).
	SyncEvery int
	appended  int
	// appendsC/bytesC count durable appends and bytes when the writer is
	// instrumented (Instrument); nil-safe no-ops otherwise. reg additionally
	// times every append as a "journal/append" span (and thus a timeline
	// event when a tracer is attached).
	appendsC *obs.Counter
	bytesC   *obs.Counter
	reg      *obs.Registry
}

// Instrument attaches observability counters (journal_appends_total,
// journal_bytes_total) and the "journal/append" timing span to the writer.
// Safe on a nil writer or registry.
func (w *Writer) Instrument(reg *obs.Registry) {
	if w == nil || reg == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.appendsC = reg.Counter("journal_appends_total")
	w.bytesC = reg.Counter("journal_bytes_total")
	w.reg = reg
}

// Create creates (or truncates) a journal file and writes its campaign
// header record.
func Create(path string, h Header) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{f: f}
	frame := appendFrame(nil, headerBody(h))
	if _, err := f.Write(append([]byte(magic), frame...)); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: write header: %w", err)
	}
	return w, nil
}

// Append durably logs one classified point. SEU records (all model fields
// zero) are written as v2 frames, byte-identical to pre-fault-model
// journals; records of other models are written as v3 frames.
func (w *Writer) Append(rec Record) error {
	return w.appendBody(recordBody(rec))
}

// AppendMATEHit durably logs one per-MATE pruning attribution. Callers
// append the hit immediately before the pruned point's experiment record:
// a crash between the two leaves an orphan hit (ignored on recovery), never
// a pruned point without attribution.
func (w *Writer) AppendMATEHit(hit MATEHit) error {
	return w.appendBody(mateHitBody(hit))
}

func (w *Writer) appendBody(body []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	sp := w.reg.StartSpan("journal/append")
	defer sp.End()
	w.scratch = appendFrame(w.scratch[:0], body)
	if _, err := w.f.Write(w.scratch); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	w.appendsC.Inc()
	w.bytesC.Add(int64(len(w.scratch)))
	w.appended++
	if w.SyncEvery > 0 && w.appended%w.SyncEvery == 0 {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	return nil
}

// Sync flushes the journal to stable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Sync()
}

// Close syncs and closes the journal file. Safe to call on a nil Writer.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Recovered is the result of reading a journal back: the validated record
// prefix plus a diagnosis of how the log ended.
type Recovered struct {
	Header    Header
	HasHeader bool
	// Records holds every intact record in log order. ByIndex holds the
	// same records keyed by fault-list index; a point classified twice
	// (possible if a previous resume re-ran an in-flight point) keeps the
	// last record.
	Records []Record
	ByIndex map[uint64]Record
	// MATEHits holds every intact per-MATE attribution record in log order
	// (empty for v1 journals). HitByIndex keys the same hits by fault-list
	// index, keeping the last per point.
	MATEHits   []MATEHit
	HitByIndex map[uint64]MATEHit
	// Torn reports an incomplete final frame — the normal signature of a
	// crash mid-write. The torn bytes are dropped.
	Torn bool
	// Corrupt reports a complete frame that failed its checksum or decoded
	// to nonsense; it and everything after it are dropped.
	Corrupt bool
	// DroppedBytes counts the bytes discarded from the tail.
	DroppedBytes int64

	goodSize int64 // file offset of the end of the validated prefix
}

// Recover reads a journal file, tolerating a torn tail and rejecting
// corrupt records as described in the package comment.
func Recover(path string) (*Recovered, error) {
	return RecoverInstrumented(path, nil)
}

// RecoverInstrumented is Recover with observability: it counts recovery
// attempts (journal_recoveries_total), recovered records
// (journal_recovered_records_total) and tail bytes dropped
// (journal_dropped_bytes_total) on the given registry (nil = disabled).
func RecoverInstrumented(path string, reg *obs.Registry) (*Recovered, error) {
	reg.Counter("journal_recoveries_total").Inc()
	r, err := recoverFile(path)
	if err != nil {
		return nil, err
	}
	reg.Counter("journal_recovered_records_total").Add(int64(len(r.Records)))
	reg.Counter("journal_dropped_bytes_total").Add(r.DroppedBytes)
	return r, nil
}

func recoverFile(path string) (*Recovered, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("journal: %s is not a campaign journal (bad magic)", path)
	}
	r := &Recovered{ByIndex: map[uint64]Record{}, HitByIndex: map[uint64]MATEHit{}}
	off := len(magic)
	for off < len(data) {
		if len(data)-off < 4 {
			r.Torn = true
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n < 1 || n > maxBodyLen {
			r.Corrupt = true
			break
		}
		if off+4+n+4 > len(data) {
			r.Torn = true
			break
		}
		body := data[off+4 : off+4+n]
		sum := binary.LittleEndian.Uint32(data[off+4+n:])
		if crc32.Checksum(body, crcTable) != sum {
			r.Corrupt = true
			break
		}
		if !r.decodeBody(body) {
			r.Corrupt = true
			break
		}
		off += 4 + n + 4
	}
	r.DroppedBytes = int64(len(data) - off)
	r.goodSize = int64(off)
	return r, nil
}

// decodeBody appends one checksum-validated record body; false means the
// body is structurally invalid (treated as corruption by the caller).
func (r *Recovered) decodeBody(body []byte) bool {
	switch body[0] {
	case recHeader:
		if len(body) != 1+headerPayloadLen || r.HasHeader || len(r.Records) > 0 {
			return false // header must be the unique first record
		}
		p := body[1:]
		r.Header = Header{
			GoldenSignature: binary.LittleEndian.Uint64(p[0:]),
			NumPoints:       binary.LittleEndian.Uint64(p[8:]),
			FaultListHash:   binary.LittleEndian.Uint64(p[16:]),
		}
		r.HasHeader = true
		return true
	case recExperiment:
		if len(body) != 1+experimentPayloadLen || !r.HasHeader {
			return false
		}
		p := body[1:]
		rec := Record{
			Index:        binary.LittleEndian.Uint64(p[0:]),
			FF:           binary.LittleEndian.Uint32(p[8:]),
			Cycle:        binary.LittleEndian.Uint32(p[12:]),
			Duration:     binary.LittleEndian.Uint32(p[16:]),
			Outcome:      p[20],
			Pruned:       p[21]&flagPruned != 0,
			SkippedWrong: p[21]&flagSkippedWrong != 0,
		}
		if rec.Index >= r.Header.NumPoints {
			return false // claims a point outside the recorded fault list
		}
		r.Records = append(r.Records, rec)
		r.ByIndex[rec.Index] = rec
		return true
	case recExperimentV3:
		if len(body) != 1+experimentV3PayloadLen || !r.HasHeader {
			return false
		}
		p := body[1:]
		rec := Record{
			Index:        binary.LittleEndian.Uint64(p[0:]),
			FF:           binary.LittleEndian.Uint32(p[8:]),
			Cycle:        binary.LittleEndian.Uint32(p[12:]),
			Duration:     binary.LittleEndian.Uint32(p[16:]),
			Outcome:      p[20],
			Pruned:       p[21]&flagPruned != 0,
			SkippedWrong: p[21]&flagSkippedWrong != 0,
			Model:        p[22],
			StuckHigh:    p[23]&flags2StuckHigh != 0,
			Span:         binary.LittleEndian.Uint16(p[24:]),
			Period:       binary.LittleEndian.Uint16(p[26:]),
			NumTargets:   binary.LittleEndian.Uint16(p[28:]),
			TargetsHash:  binary.LittleEndian.Uint64(p[30:]),
		}
		if rec.Index >= r.Header.NumPoints {
			return false // claims a point outside the recorded fault list
		}
		if rec.legacySEU() {
			return false // an all-zero model block belongs in a v2 frame
		}
		r.Records = append(r.Records, rec)
		r.ByIndex[rec.Index] = rec
		return true
	case recMATEHit:
		if len(body) != 1+mateHitPayloadLen || !r.HasHeader {
			return false
		}
		p := body[1:]
		hit := MATEHit{
			Index: binary.LittleEndian.Uint64(p[0:]),
			FF:    binary.LittleEndian.Uint32(p[8:]),
			MATE:  binary.LittleEndian.Uint32(p[12:]),
			Width: binary.LittleEndian.Uint16(p[16:]),
		}
		if hit.Index >= r.Header.NumPoints {
			return false // claims a point outside the recorded fault list
		}
		r.MATEHits = append(r.MATEHits, hit)
		r.HitByIndex[hit.Index] = hit
		return true
	}
	return false // unknown record type
}

// Resume reopens an existing journal for a resumed campaign: it recovers
// the validated prefix, verifies the header matches the campaign at hand,
// truncates any torn or corrupt tail so new records append at a clean
// frame boundary, and returns a Writer positioned at the end.
func Resume(path string, h Header) (*Writer, *Recovered, error) {
	return ResumeInstrumented(path, h, nil)
}

// ResumeInstrumented is Resume with observability: recovery counters are
// recorded on reg (see RecoverInstrumented) and the returned Writer is
// instrumented. A nil registry disables both.
func ResumeInstrumented(path string, h Header, reg *obs.Registry) (*Writer, *Recovered, error) {
	rec, err := RecoverInstrumented(path, reg)
	if err != nil {
		return nil, nil, err
	}
	if !rec.HasHeader {
		return nil, nil, fmt.Errorf("journal: %s has no intact campaign header", path)
	}
	if rec.Header != h {
		return nil, nil, fmt.Errorf("journal: %s belongs to a different campaign (header %+v, want %+v)", path, rec.Header, h)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if err := f.Truncate(rec.goodSize); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: truncate tail: %w", err)
	}
	if _, err := f.Seek(rec.goodSize, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{f: f}
	w.Instrument(reg)
	return w, rec, nil
}

// appendFrame appends length | body | crc to dst.
func appendFrame(dst, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = append(dst, body...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(body, crcTable))
}

func headerBody(h Header) []byte {
	b := make([]byte, 0, 1+headerPayloadLen)
	b = append(b, recHeader)
	b = binary.LittleEndian.AppendUint64(b, h.GoldenSignature)
	b = binary.LittleEndian.AppendUint64(b, h.NumPoints)
	return binary.LittleEndian.AppendUint64(b, h.FaultListHash)
}

// recordBody chooses the experiment encoding: v2 for legacy SEU records,
// v3 for model-tagged records. Every writer path (Append, Merge) funnels
// through it so the two-format invariant holds everywhere.
func recordBody(rec Record) []byte {
	if rec.legacySEU() {
		return experimentBody(rec)
	}
	return experimentV3Body(rec)
}

func experimentBody(rec Record) []byte {
	var flags byte
	if rec.Pruned {
		flags |= flagPruned
	}
	if rec.SkippedWrong {
		flags |= flagSkippedWrong
	}
	b := make([]byte, 0, 1+experimentPayloadLen)
	b = append(b, recExperiment)
	b = binary.LittleEndian.AppendUint64(b, rec.Index)
	b = binary.LittleEndian.AppendUint32(b, rec.FF)
	b = binary.LittleEndian.AppendUint32(b, rec.Cycle)
	b = binary.LittleEndian.AppendUint32(b, rec.Duration)
	return append(b, rec.Outcome, flags)
}

func experimentV3Body(rec Record) []byte {
	var flags byte
	if rec.Pruned {
		flags |= flagPruned
	}
	if rec.SkippedWrong {
		flags |= flagSkippedWrong
	}
	var flags2 byte
	if rec.StuckHigh {
		flags2 |= flags2StuckHigh
	}
	b := make([]byte, 0, 1+experimentV3PayloadLen)
	b = append(b, recExperimentV3)
	b = binary.LittleEndian.AppendUint64(b, rec.Index)
	b = binary.LittleEndian.AppendUint32(b, rec.FF)
	b = binary.LittleEndian.AppendUint32(b, rec.Cycle)
	b = binary.LittleEndian.AppendUint32(b, rec.Duration)
	b = append(b, rec.Outcome, flags, rec.Model, flags2)
	b = binary.LittleEndian.AppendUint16(b, rec.Span)
	b = binary.LittleEndian.AppendUint16(b, rec.Period)
	b = binary.LittleEndian.AppendUint16(b, rec.NumTargets)
	return binary.LittleEndian.AppendUint64(b, rec.TargetsHash)
}

func mateHitBody(hit MATEHit) []byte {
	b := make([]byte, 0, 1+mateHitPayloadLen)
	b = append(b, recMATEHit)
	b = binary.LittleEndian.AppendUint64(b, hit.Index)
	b = binary.LittleEndian.AppendUint32(b, hit.FF)
	b = binary.LittleEndian.AppendUint32(b, hit.MATE)
	return binary.LittleEndian.AppendUint16(b, hit.Width)
}
