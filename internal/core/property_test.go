package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/synth"
)

// TestMATESoundnessRandomNetlists is the property-based soundness check:
// generate random small sequential netlists, run the full MATE search over
// their flip-flops, and verify every claim by exhaustive gate-level
// injection — for each (wire, cycle) point some triggered MATE declares
// benign, flip the flip-flop in the reconstructed cycle state and re-settle
// the whole machine; no flip-flop D input and no primary output may change.
// The verifier shares no code with the search or the Oracle (it evaluates
// the full netlist, not the fault cone), so an unsound MATE cannot hide
// behind a bug common to both sides.
//
// Seeds are fixed: the test is deterministic under plain `go test` and
// `-race`.
func TestMATESoundnessRandomNetlists(t *testing.T) {
	const cycles = 24
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var nl *netlist.Netlist
			if seed%2 == 0 {
				nl = randomGateNetlist(t, rng)
			} else {
				nl = randomSynthNetlist(t, rng)
			}

			m := sim.New(nl)
			env := sim.EnvFunc(func(m *sim.Machine) {
				for _, in := range nl.Inputs {
					m.SetValue(in, rng.Intn(2) == 1)
				}
			})
			tr := sim.Record(m, env, cycles)

			params := DefaultSearchParams()
			params.Workers = 2
			res := Search(nl, nl.FFQWires(), params)

			verifier := newInjectionVerifier(nl)
			points := 0
			for _, mate := range res.Set.MATEs {
				for c := 0; c < tr.NumCycles(); c++ {
					if !mate.EvalTrace(tr, c) {
						continue
					}
					for _, q := range mate.Masks {
						points++
						if !verifier.masked(t, tr, c, q) {
							t.Fatalf("seed %d: MATE %s claims wire %s benign at cycle %d, but gate-level injection propagates",
								seed, mate.String(nl), nl.WireName(q), c)
						}
					}
				}
			}
			if testing.Verbose() {
				t.Logf("seed %d: %d wires, %d gates, %d FFs, %d MATEs, %d claimed-benign points verified",
					seed, nl.NumWires(), len(nl.Gates), len(nl.FFs), res.Set.Size(), points)
			}
		})
	}
}

// injectionVerifier re-simulates one cycle of the full machine with and
// without the upset.
type injectionVerifier struct {
	nl      *netlist.Netlist
	m       *sim.Machine
	ffByQ   map[netlist.WireID]int
	ffState []bool
	inState []bool
}

func newInjectionVerifier(nl *netlist.Netlist) *injectionVerifier {
	v := &injectionVerifier{
		nl:      nl,
		m:       sim.New(nl),
		ffByQ:   map[netlist.WireID]int{},
		ffState: make([]bool, len(nl.FFs)),
		inState: make([]bool, len(nl.Inputs)),
	}
	for i := range nl.FFs {
		v.ffByQ[nl.FFs[i].Q] = i
	}
	return v
}

// masked reconstructs the settled machine state of the given trace cycle,
// flips the flip-flop driving q, re-evaluates the whole combinational
// netlist and reports whether every flip-flop D input and primary output
// still carries its fault-free value — the exact single-cycle masking
// criterion the MATE claims.
func (v *injectionVerifier) masked(t *testing.T, tr *sim.Trace, cycle int, q netlist.WireID) bool {
	t.Helper()
	ff, ok := v.ffByQ[q]
	if !ok {
		t.Fatalf("MATE masks wire %s which is not a flip-flop output", v.nl.WireName(q))
	}
	row := tr.RowValues(cycle)
	for i := range v.nl.FFs {
		v.ffState[i] = row[v.nl.FFs[i].Q]
	}
	for i, w := range v.nl.Inputs {
		v.inState[i] = row[w]
	}

	// Fault-free reconstruction must reproduce the recorded row exactly;
	// anything else means the verifier state model is wrong and the masking
	// verdict below would be meaningless.
	v.m.SetFFState(v.ffState)
	v.m.SetInputState(v.inState)
	v.m.EvalComb()
	vals := v.m.Values()
	for w := 0; w < v.nl.NumWires(); w++ {
		if vals[w] != row[w] {
			t.Fatalf("cycle %d reconstruction mismatch on wire %s", cycle, v.nl.WireName(netlist.WireID(w)))
		}
	}

	v.m.FlipFF(ff)
	v.m.EvalComb()
	for i := range v.nl.FFs {
		d := v.nl.FFs[i].D
		if vals[d] != row[d] {
			return false
		}
	}
	for _, o := range v.nl.Outputs {
		if vals[o] != row[o] {
			return false
		}
	}
	return true
}

// randomGateNetlist grows a feed-forward gate soup: random cells whose
// inputs are drawn from already-driven wires, flip-flops closed afterwards
// so state feedback is allowed while combinational cycles are not.
func randomGateNetlist(t *testing.T, rng *rand.Rand) *netlist.Netlist {
	t.Helper()
	kinds := []cell.Kind{
		cell.BUF, cell.INV, cell.AND2, cell.NAND2, cell.OR2, cell.NOR2,
		cell.XOR2, cell.XNOR2, cell.AND3, cell.OR3, cell.MUX2, cell.MAJ3,
		cell.AOI21, cell.OAI21,
	}
	b := netlist.NewBuilder("prop-gates")
	var avail []netlist.WireID
	nIn := 2 + rng.Intn(3)
	for i := 0; i < nIn; i++ {
		avail = append(avail, b.Input(fmt.Sprintf("in%d", i)))
	}
	nFF := 2 + rng.Intn(4)
	qs := make([]netlist.WireID, nFF)
	for i := range qs {
		qs[i] = b.FFPlaceholder(fmt.Sprintf("ff%d", i), rng.Intn(2) == 1, "")
		avail = append(avail, qs[i])
	}
	nGates := 8 + rng.Intn(20)
	for i := 0; i < nGates; i++ {
		k := kinds[rng.Intn(len(kinds))]
		ins := make([]netlist.WireID, cell.Lookup(k).NumInputs())
		for p := range ins {
			ins[p] = avail[rng.Intn(len(avail))]
		}
		avail = append(avail, b.Gate(k, ins...))
	}
	for _, q := range qs {
		b.SetFFD(q, avail[rng.Intn(len(avail))])
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		b.MarkOutput(avail[len(avail)-1-rng.Intn(nGates)])
	}
	return b.MustNetlist()
}

// randomSynthNetlist builds a small datapath from internal/synth primitives:
// random bus operations (logic, adder, mux, comparator) feeding registers,
// exercising the multi-input cells the gate soup rarely composes.
func randomSynthNetlist(t *testing.T, rng *rand.Rand) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("prop-synth")
	c := synth.New(b)
	width := 2 + rng.Intn(3)
	a := c.InputBus("a", width)
	d := c.InputBus("b", width)
	state := c.RegisterPlaceholder("acc", width, uint64(rng.Intn(1<<width)), "")

	buses := []synth.Bus{a, d, state}
	nOps := 3 + rng.Intn(5)
	for i := 0; i < nOps; i++ {
		x := buses[rng.Intn(len(buses))]
		y := buses[rng.Intn(len(buses))]
		var out synth.Bus
		switch rng.Intn(6) {
		case 0:
			out = c.And(x, y)
		case 1:
			out = c.Or(x, y)
		case 2:
			out = c.Xor(x, y)
		case 3:
			out = c.Not(x)
		case 4:
			out = c.Adder(x, y, c.B.Const(false)).Sum
		case 5:
			out = c.Mux2(c.Equal(x, y), x, y)
		}
		buses = append(buses, out)
	}
	next := buses[len(buses)-1]
	c.ConnectRegisterAlways(state, next)
	c.OutputBus(buses[rng.Intn(len(buses))])
	return b.MustNetlist()
}
