package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/netlist"
)

// WriteMATESet serialises a MATE set as a line-oriented text format keyed
// by wire names, so sets can be exchanged between the search tool and the
// pruning/campaign tools:
//
//	# comment
//	wireA=0 wireB=1 | maskedWire1 maskedWire2
//	!unmaskable wireC cone=12 border=7 nodes=35
//
// An always-true MATE has an empty literal list ("| maskedWire").
// "!unmaskable" lines carry the exact engine's per-FF unmaskability
// certificates (see internal/exact): the named wire's masking condition is
// provably ≡ false over its cone border, with the cone size, border width
// and BDD proof cost recorded as the witness statistics.
func WriteMATESet(w io.Writer, nl *netlist.Netlist, set *MATESet) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# MATE set for netlist %q: %d MATEs, %d unmaskability certificates\n",
		nl.Name, set.Size(), len(set.Certificates))
	for _, m := range set.MATEs {
		for i, l := range m.Literals {
			if i > 0 {
				bw.WriteByte(' ')
			}
			v := '0'
			if l.Value {
				v = '1'
			}
			fmt.Fprintf(bw, "%s=%c", nl.WireName(l.Wire), v)
		}
		bw.WriteString(" |")
		for _, mask := range m.Masks {
			fmt.Fprintf(bw, " %s", nl.WireName(mask))
		}
		bw.WriteByte('\n')
	}
	for _, c := range set.Certificates {
		fmt.Fprintf(bw, "!unmaskable %s cone=%d border=%d nodes=%d\n",
			nl.WireName(c.Wire), c.ConeGates, c.BorderWires, c.BDDNodes)
	}
	return bw.Flush()
}

// parseCertificate parses one "!unmaskable" directive line (without the
// leading '!').
func parseCertificate(line string, nl *netlist.Netlist, lineNo int) (Certificate, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "unmaskable" {
		return Certificate{}, fmt.Errorf("mate set line %d: unknown directive %q", lineNo, "!"+line)
	}
	w, ok := nl.WireByName(fields[1])
	if !ok {
		return Certificate{}, fmt.Errorf("mate set line %d: unknown certified wire %q", lineNo, fields[1])
	}
	c := Certificate{Wire: w}
	for _, tok := range fields[2:] {
		eq := strings.IndexByte(tok, '=')
		if eq <= 0 {
			return Certificate{}, fmt.Errorf("mate set line %d: bad certificate field %q", lineNo, tok)
		}
		n, err := strconv.Atoi(tok[eq+1:])
		if err != nil || n < 0 {
			return Certificate{}, fmt.Errorf("mate set line %d: bad certificate value %q", lineNo, tok)
		}
		switch tok[:eq] {
		case "cone":
			c.ConeGates = n
		case "border":
			c.BorderWires = n
		case "nodes":
			c.BDDNodes = n
		default:
			return Certificate{}, fmt.Errorf("mate set line %d: unknown certificate field %q", lineNo, tok[:eq])
		}
	}
	return c, nil
}

// ReadMATESet parses the format written by WriteMATESet, resolving wire
// names against the given netlist.
func ReadMATESet(r io.Reader, nl *netlist.Netlist) (*MATESet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	set := &MATESet{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "!") {
			c, err := parseCertificate(line[1:], nl, lineNo)
			if err != nil {
				return nil, err
			}
			set.Certificates = append(set.Certificates, c)
			continue
		}
		parts := strings.SplitN(line, "|", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("mate set line %d: missing '|'", lineNo)
		}
		m := &MATE{}
		for _, tok := range strings.Fields(parts[0]) {
			eq := strings.LastIndexByte(tok, '=')
			if eq < 0 || eq == len(tok)-1 {
				return nil, fmt.Errorf("mate set line %d: bad literal %q", lineNo, tok)
			}
			w, ok := nl.WireByName(tok[:eq])
			if !ok {
				return nil, fmt.Errorf("mate set line %d: unknown wire %q", lineNo, tok[:eq])
			}
			switch tok[eq+1] {
			case '0':
				m.Literals = append(m.Literals, Literal{Wire: w, Value: false})
			case '1':
				m.Literals = append(m.Literals, Literal{Wire: w, Value: true})
			default:
				return nil, fmt.Errorf("mate set line %d: bad value in %q", lineNo, tok)
			}
		}
		var ok bool
		if m.Literals, ok = normalizeLiterals(m.Literals); !ok {
			return nil, fmt.Errorf("mate set line %d: conflicting literals", lineNo)
		}
		masks := strings.Fields(parts[1])
		if len(masks) == 0 {
			return nil, fmt.Errorf("mate set line %d: MATE masks nothing", lineNo)
		}
		for _, name := range masks {
			w, ok := nl.WireByName(name)
			if !ok {
				return nil, fmt.Errorf("mate set line %d: unknown masked wire %q", lineNo, name)
			}
			m.Masks = append(m.Masks, w)
		}
		set.MATEs = append(set.MATEs, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}
