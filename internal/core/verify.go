package core

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// Oracle is the exact single-cycle masking check the paper describes at the
// start of Section 4: duplicate the fault cone, feed it the flipped value,
// and compare all outputs. It is the most precise (and most expensive)
// masking test and serves two purposes here: validating that every MATE
// trigger is sound (a claimed-benign fault really is masked), and
// quantifying how much of the exactly-maskable space the heuristic MATEs
// recover.
type Oracle struct {
	nl      *netlist.Netlist
	scratch []bool
}

// NewOracle creates an oracle for one netlist.
func NewOracle(nl *netlist.Netlist) *Oracle {
	return &Oracle{nl: nl, scratch: make([]bool, nl.NumWires())}
}

// MaskedExact reports whether flipping every source of the cone in the
// settled cycle state `values` is masked within this clock cycle: after
// re-evaluating the cone with the flipped value(s), every sink (FF D input
// or primary output) carries the same value as in the fault-free
// evaluation. With a multi-source cone this checks the simultaneous
// multi-bit upset of the Section 6.2 extension.
func (o *Oracle) MaskedExact(cone *Cone, values []bool) bool {
	copy(o.scratch, values)
	for _, src := range cone.Sources {
		o.scratch[src] = !values[src]
	}
	gates := o.nl.Gates
	for _, gi := range cone.Gates {
		g := &gates[gi]
		var in uint32
		for p, w := range g.Inputs {
			if o.scratch[w] {
				in |= 1 << p
			}
		}
		o.scratch[g.Output] = g.Cell.Eval(in)
	}
	for _, s := range cone.Sinks {
		if o.scratch[s] != values[s] {
			return false
		}
	}
	return true
}

// MaskedExactTrace is MaskedExact applied to one cycle of a recorded
// trace.
func (o *Oracle) MaskedExactTrace(cone *Cone, tr *sim.Trace, cycle int) bool {
	return o.MaskedExact(cone, tr.RowValues(cycle))
}

// ExactMaskedCycles runs the oracle over a full trace for one wire and
// returns the bitmap of cycles where the fault would be masked. This is the
// per-wire ground truth against which MATE coverage can be compared.
func (o *Oracle) ExactMaskedCycles(wire netlist.WireID, tr *sim.Trace) []bool {
	cone := ComputeCone(o.nl, wire)
	out := make([]bool, tr.NumCycles())
	for c := 0; c < tr.NumCycles(); c++ {
		out[c] = o.MaskedExactTrace(cone, tr, c)
	}
	return out
}

// ValidateMATE checks a single MATE against a trace with the exact oracle:
// for every cycle where the MATE triggers, every wire it claims to mask
// must be exactly masked. It returns the number of (cycle, wire) points
// checked and the first violation found, if any.
func (o *Oracle) ValidateMATE(m *MATE, tr *sim.Trace) (checked int, violation *Violation) {
	cones := make(map[netlist.WireID]*Cone)
	for _, w := range m.Masks {
		cones[w] = ComputeCone(o.nl, w)
	}
	for c := 0; c < tr.NumCycles(); c++ {
		if !m.EvalTrace(tr, c) {
			continue
		}
		values := tr.RowValues(c)
		for _, w := range m.Masks {
			checked++
			if !o.MaskedExact(cones[w], values) {
				return checked, &Violation{Cycle: c, Wire: w, WireName: o.nl.WireName(w)}
			}
		}
	}
	return checked, nil
}

// Violation reports a MATE soundness violation: the MATE triggered at
// Cycle but flipping Wire was not masked. WireName carries the wire's
// hierarchical name so reports stay readable without the netlist at hand.
type Violation struct {
	Cycle    int
	Wire     netlist.WireID
	WireName string
}

// String renders the violation as "wire name @ cycle N"; it falls back to
// the bare wire id when no name was recorded.
func (v *Violation) String() string {
	name := v.WireName
	if name == "" {
		name = fmt.Sprintf("wire#%d", v.Wire)
	}
	return fmt.Sprintf("%s @ cycle %d", name, v.Cycle)
}
