package core

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// TestDoubleMATEFigure1a: in the example circuit, the pair (a, b) feeds
// only the NAND gate A. A fault in both inputs of a gate cannot be masked
// at that gate, but the joint cone is the same as either single cone
// ({j, f, k}); masking at the OR gate f (e=1) or at the AND gate k (g=0)
// covers it.
func TestDoubleMATEFigure1a(t *testing.T) {
	nl, w := buildFigure1a(t)
	res := SearchDouble(nl, []Pair{{A: w["a"], B: w["b"]}}, DefaultSearchParams())
	if len(res.Reports) != 1 {
		t.Fatal("one report expected")
	}
	rep := res.Reports[0]
	if rep.Unmaskable {
		t.Fatal("pair (a,b) must be maskable")
	}
	if len(rep.MATEs) == 0 {
		t.Fatal("no double MATEs")
	}
	// "e" (masking at the OR gate) must be among them.
	found := false
	for _, m := range rep.MATEs {
		if len(m.Literals) == 1 && m.Literals[0].Wire == w["e"] && m.Literals[0].Value {
			found = true
		}
		if len(m.Masks) != 2 {
			t.Fatalf("double MATE masks %d wires", len(m.Masks))
		}
	}
	if !found {
		t.Errorf("expected double MATE 'e' for the pair (a, b)")
	}
}

// TestDoubleMATESoundnessRandom: the central property test for the 2-bit
// extension — whenever a double MATE triggers, simultaneously flipping
// both wires must be exactly masked (joint-cone oracle).
func TestDoubleMATESoundnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 15; trial++ {
		nl, qs := randomCircuit(rng, 8, 6, 60)
		m := sim.New(nl)
		env := sim.EnvFunc(func(m *sim.Machine) {
			for _, in := range m.NL.Inputs {
				m.SetValue(in, rng.Intn(2) == 0)
			}
		})
		tr := sim.Record(m, env, 48)

		var pairs []Pair
		for i := 0; i+1 < len(qs); i += 2 {
			pairs = append(pairs, Pair{A: qs[i], B: qs[i+1]})
		}
		p := DefaultSearchParams()
		p.Workers = 1
		res := SearchDouble(nl, pairs, p)
		oracle := NewOracle(nl)
		for _, rep := range res.Reports {
			cone := ComputeConeMulti(nl, []netlist.WireID{rep.Pair.A, rep.Pair.B})
			for _, mate := range rep.MATEs {
				for cyc := 0; cyc < tr.NumCycles(); cyc++ {
					if !mate.EvalTrace(tr, cyc) {
						continue
					}
					if !oracle.MaskedExact(cone, tr.RowValues(cyc)) {
						t.Fatalf("trial %d: double MATE %s unsound for pair (%s, %s) at cycle %d",
							trial, mate.String(nl), nl.WireName(rep.Pair.A), nl.WireName(rep.Pair.B), cyc)
					}
				}
			}
		}
	}
}

// TestDoubleConeIsUnion: the joint cone equals the union of the single
// cones.
func TestDoubleConeIsUnion(t *testing.T) {
	nl, w := buildFigure1a(t)
	a := ComputeCone(nl, w["a"])
	d := ComputeCone(nl, w["d"])
	joint := ComputeConeMulti(nl, []netlist.WireID{w["a"], w["d"]})
	for i := range joint.InCone {
		if joint.InCone[i] != (a.InCone[i] || d.InCone[i]) {
			t.Fatalf("joint cone differs from union at wire %s", nl.WireName(netlist.WireID(i)))
		}
	}
	if joint.NumGates() < a.NumGates() || joint.NumGates() < d.NumGates() {
		t.Fatal("joint cone smaller than a component")
	}
}

// TestDoubleMATEHarderThanSingle: a pair is at most as maskable as its
// members — any state masking the pair masks each single fault too (the
// joint cone mistrusts more wires, so the double MATE's literals are a
// strictly stronger condition). We check the weaker structural property
// that a pair is unmaskable whenever one of its wires is unmaskable.
func TestDoubleMATEHarderThanSingle(t *testing.T) {
	nl, w := buildFigure1a(t)
	// e is unmaskable alone; the pair (e, a) must be unmaskable too.
	res := SearchDouble(nl, []Pair{{A: w["e"], B: w["a"]}}, DefaultSearchParams())
	if !res.Reports[0].Unmaskable {
		t.Fatal("pair containing an unmaskable wire must be unmaskable")
	}
	if res.Unmaskable != 1 {
		t.Fatal("unmaskable count")
	}
}

// TestAdjacentPairs covers the pair-list helper.
func TestAdjacentPairs(t *testing.T) {
	b := netlist.NewBuilder("adj")
	d := b.Input("d")
	q1 := b.FF("q1", d, false, "")
	q2 := b.FF("q2", d, false, "")
	q3 := b.FF("q3", d, false, "")
	b.MarkOutput(b.Gate(cell.AND3, q1, q2, q3))
	nl := b.MustNetlist()
	pairs := AdjacentPairs(nl)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	if pairs[0] != (Pair{q1, q2}) || pairs[1] != (Pair{q2, q3}) {
		t.Fatalf("pairs = %v", pairs)
	}
}

// TestDoubleMATEOnAVRPairs runs the 2-bit search over adjacent AVR
// register-file bits and spot-checks soundness on the real core. (Kept
// small: a handful of pairs.)
func TestDoubleMATEOnAVRPairsSmoke(t *testing.T) {
	nl, w := buildFigure1a(t)
	_ = w
	_ = nl
	// The AVR-scale variant lives in repro_test.go (needs the experiments
	// package); here we only ensure SearchDouble handles an empty pair
	// list gracefully.
	res := SearchDouble(nl, nil, DefaultSearchParams())
	if len(res.Reports) != 0 || res.Unmaskable != 0 {
		t.Fatal("empty search must be empty")
	}
}
