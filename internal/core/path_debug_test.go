package core

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/cpu/avr"
	"repro/internal/netlist"
)

// findMasklessPath mirrors the search DFS and returns the first path that
// contains no masking-capable gate (debug aid for core development).
func findMasklessPath(nl *netlist.Netlist, w netlist.WireID, depth int) []string {
	cone := ComputeCone(nl, w)
	var path []string
	var found []string
	maskable := 0
	var dfs func(wire netlist.WireID, d int) bool
	dfs = func(wire netlist.WireID, d int) bool {
		sink := len(nl.FFsOfD(wire)) > 0 || nl.IsPrimaryOutput(wire)
		if sink && maskable == 0 {
			found = append(append([]string(nil), path...), "-> sink "+nl.WireName(wire))
			return false
		}
		fo := nl.Fanout(wire)
		if len(fo) == 0 {
			return true
		}
		if d == depth {
			if maskable == 0 {
				found = append(append([]string(nil), path...), "-> truncated at "+nl.WireName(wire))
				return false
			}
			return true
		}
		for _, fr := range fo {
			g := &nl.Gates[fr.Gate]
			faulty := cone.FaultyPins(nl, fr.Gate)
			m := len(cell.MaskingTerms(g.Cell, faulty)) > 0
			path = append(path, g.Name+"/"+g.Cell.Name)
			if m {
				maskable++
			}
			ok := dfs(g.Output, d+1)
			if m {
				maskable--
			}
			path = path[:len(path)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	if !dfs(w, 0) {
		return found
	}
	return nil
}

func TestDebugAVRUnmaskablePaths(t *testing.T) {
	if testing.Short() {
		t.Skip("debug diagnostics")
	}
	c := avr.NewCore()
	for _, name := range []string{"ir[4]", "ir[8]", "rf.r3[2]", "sreg.c[0]", "port[3]"} {
		w, ok := c.NL.WireByName(name)
		if !ok {
			t.Fatalf("no wire %s", name)
		}
		p := findMasklessPath(c.NL, w, 8)
		t.Logf("%s: maskless path = %v", name, p)
	}
}
