package core

import (
	"context"
	"runtime"
	"sort"
	"time"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// SearchParams are the heuristic knobs of the MATE search (paper,
// Section 5.2): path-enumeration depth, the maximum number of gate-masking
// terms per MATE, and the candidate budget per faulty wire. MaxPaths bounds
// the path enumeration itself (implementation safety valve; generous enough
// to be inactive on the evaluated cores), MaxMATEsPerWire bounds result
// memory (0 = unlimited).
type SearchParams struct {
	Depth           int
	MaxTerms        int
	MaxCandidates   int
	MaxPaths        int
	MaxMATEsPerWire int
	Workers         int
	// Context, when non-nil, cancels the search gracefully: wires already
	// being searched finish, the remaining ones are skipped, and the
	// result carries Interrupted=true (its MATE set covers only the wires
	// processed before cancellation).
	Context context.Context
	// Obs, when non-nil, receives search metrics (wires done, cone-size
	// histogram, path/candidate/MATE counters). Nil disables instrumentation.
	Obs *obs.Registry
}

// DefaultSearchParams returns the parameters used in the paper's
// evaluation: depth 8, at most 4 gate-masking terms, 100 000 candidates per
// faulty wire.
func DefaultSearchParams() SearchParams {
	return SearchParams{
		Depth:           8,
		MaxTerms:        4,
		MaxCandidates:   100000,
		MaxPaths:        50000,
		MaxMATEsPerWire: 512,
		Workers:         runtime.NumCPU(),
	}
}

// WireReport describes the search outcome for one faulty wire.
type WireReport struct {
	Wire               netlist.WireID
	ConeGates          int
	Paths              int
	TruncatedPaths     int
	UniqueConstraints  int
	Unmaskable         bool
	PathBudgetExceeded bool
	Candidates         int64
	NumMATEs           int
}

// SearchResult aggregates the whole search run. Its fields feed Table 1 of
// the paper directly.
type SearchResult struct {
	Params          SearchParams
	Reports         []WireReport
	Set             *MATESet
	Elapsed         time.Duration
	TotalCandidates int64
	Unmaskable      int
	// Interrupted marks a partial search: the context was cancelled before
	// every wire was processed.
	Interrupted bool
}

// AvgConeGates returns the mean fault-cone size in gates.
func (r *SearchResult) AvgConeGates() float64 {
	if len(r.Reports) == 0 {
		return 0
	}
	var sum float64
	for _, rep := range r.Reports {
		sum += float64(rep.ConeGates)
	}
	return sum / float64(len(r.Reports))
}

// MedianConeGates returns the median fault-cone size in gates.
func (r *SearchResult) MedianConeGates() int {
	if len(r.Reports) == 0 {
		return 0
	}
	sizes := make([]int, len(r.Reports))
	for i, rep := range r.Reports {
		sizes[i] = rep.ConeGates
	}
	sort.Ints(sizes)
	return sizes[len(sizes)/2]
}

// Search runs the heuristic MATE search for every wire in wires, in
// parallel across Workers goroutines (the paper parallelised over faulty
// flip-flops with PyPy processes). The result is deterministic: MATEs are
// merged in input wire order.
func Search(nl *netlist.Netlist, wires []netlist.WireID, p SearchParams) *SearchResult {
	start := time.Now()
	if p.Workers <= 0 {
		p.Workers = 1
	}
	sp := p.Obs.StartSpan("search")
	defer sp.End()
	met := newSearchMetrics(p.Obs, len(wires))
	ctx := p.Context
	if ctx == nil {
		ctx = context.Background()
	}
	type job struct {
		idx  int
		wire netlist.WireID
	}
	type done struct {
		idx    int
		report WireReport
		mates  [][]Literal
	}
	jobs := make(chan job)
	results := make([]done, len(wires))
	sem := make(chan struct{}, p.Workers)
	doneCh := make(chan done)

	go func() {
		for i, w := range wires {
			jobs <- job{i, w}
		}
		close(jobs)
	}()
	go func() {
		for j := range jobs {
			sem <- struct{}{}
			go func(j job) {
				defer func() { <-sem }()
				if ctx.Err() != nil {
					// Cancelled: report the wire untouched (no MATEs) so
					// the collector still sees every wire exactly once.
					doneCh <- done{j.idx, WireReport{Wire: j.wire}, nil}
					return
				}
				wsp := p.Obs.StartSpan("search/wire")
				rep, mates := searchWire(nl, j.wire, p)
				wsp.Detail("wire %d: cone %d gates, %d paths, %d MATEs", j.wire, rep.ConeGates, rep.Paths, rep.NumMATEs)
				wsp.End()
				doneCh <- done{j.idx, rep, mates}
			}(j)
		}
	}()

	for range wires {
		d := <-doneCh
		results[d.idx] = d
		met.wire(d.report)
	}

	res := &SearchResult{Params: p, Set: nil}
	merger := newMateMerger()
	for _, d := range results {
		res.Reports = append(res.Reports, d.report)
		res.TotalCandidates += d.report.Candidates
		if d.report.Unmaskable {
			res.Unmaskable++
		}
		for _, lits := range d.mates {
			merger.add(lits, d.report.Wire)
		}
	}
	res.Set = merger.set()
	res.Set.SortByCoverage()
	res.Elapsed = time.Since(start)
	res.Interrupted = ctx.Err() != nil
	return res
}

// maskableGate is a cone gate with fault-masking capability: the GM terms
// for its cone-internal (mistrusted) input pins, already translated to
// wire-level literals over border wires.
type maskableGate struct {
	gate  int32
	terms [][]Literal
}

// searchWire runs step 2 of the heuristic for one faulty wire.
func searchWire(nl *netlist.Netlist, w netlist.WireID, p SearchParams) (WireReport, [][]Literal) {
	return searchSources(nl, []netlist.WireID{w}, p)
}

// searchSources is the generalised search engine: enumerate propagation
// paths through the (joint) fault cone up to the configured depth, derive
// the per-gate masking options, and enumerate consistent term-combinations
// whose gates cover every path. With one source this is the paper's SEU
// search; with two it constructs the multi-bit MATEs of Section 6.2.
func searchSources(nl *netlist.Netlist, sources []netlist.WireID, p SearchParams) (WireReport, [][]Literal) {
	rep := WireReport{Wire: sources[0]}
	csp := p.Obs.StartSpan("search/cone")
	cone := ComputeConeMulti(nl, sources)
	csp.Detail("wire %d: %d gates", sources[0], cone.NumGates())
	csp.End()
	rep.ConeGates = cone.NumGates()

	// Per-gate masking options.
	maskIdx := make(map[int32]int) // gate -> index into maskables
	var maskables []maskableGate
	gateOptions := func(gi int32) (int, bool) {
		if idx, ok := maskIdx[gi]; ok {
			if idx < 0 {
				return 0, false
			}
			return idx, true
		}
		g := &nl.Gates[gi]
		faulty := cone.FaultyPins(nl, gi)
		gmTerms := cell.MaskingTerms(g.Cell, faulty)
		if len(gmTerms) == 0 {
			maskIdx[gi] = -1
			return 0, false
		}
		var terms [][]Literal
		for _, t := range gmTerms {
			var lits []Literal
			for _, pl := range t.Pins() {
				lits = append(lits, Literal{Wire: g.Inputs[pl.Pin], Value: pl.Value})
			}
			terms = append(terms, lits)
		}
		idx := len(maskables)
		maskables = append(maskables, maskableGate{gate: gi, terms: terms})
		maskIdx[gi] = idx
		return idx, true
	}

	// Path enumeration: DFS from the faulty wire. Each recorded path is
	// reduced to the set of maskable gates on it — the cover constraint it
	// imposes. A path without any maskable gate makes the wire unmaskable
	// (early abort, paper Section 4). Truncated paths (still live at depth
	// p.Depth) must be masked within their enumerated prefix.
	type constraintKey string
	constraints := map[constraintKey][]int{}
	var pathGates []int32 // current DFS path (gate indices)
	var maskableOnPath []int
	sinkness := func(wire netlist.WireID) bool {
		return len(nl.FFsOfD(wire)) > 0 || nl.IsPrimaryOutput(wire)
	}
	record := func() bool {
		if len(maskableOnPath) == 0 {
			rep.Unmaskable = true
			return false
		}
		rep.Paths++
		if rep.Paths > p.MaxPaths {
			rep.PathBudgetExceeded = true
			return false
		}
		ids := append([]int(nil), maskableOnPath...)
		sort.Ints(ids)
		ids = dedupInts(ids)
		var key []byte
		for _, id := range ids {
			key = append(key, byte(id), byte(id>>8), byte(id>>16))
		}
		constraints[constraintKey(key)] = ids
		return true
	}

	var dfs func(wire netlist.WireID, depth int) bool
	dfs = func(wire netlist.WireID, depth int) bool {
		if sinkness(wire) {
			if !record() {
				return false
			}
		}
		fo := nl.Fanout(wire)
		if len(fo) == 0 {
			return true
		}
		if depth == p.Depth {
			rep.TruncatedPaths++
			return record()
		}
		for _, fr := range fo {
			idx, maskable := gateOptions(fr.Gate)
			pathGates = append(pathGates, fr.Gate)
			if maskable {
				maskableOnPath = append(maskableOnPath, idx)
			}
			ok := dfs(nl.Gates[fr.Gate].Output, depth+1)
			if maskable {
				maskableOnPath = maskableOnPath[:len(maskableOnPath)-1]
			}
			pathGates = pathGates[:len(pathGates)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	ok := true
	for _, src := range sources {
		if !dfs(src, 0) {
			ok = false
			break
		}
	}
	if !ok || rep.Unmaskable || rep.PathBudgetExceeded {
		return rep, nil
	}

	// Unique cover constraints.
	var cons [][]int
	for _, ids := range constraints {
		cons = append(cons, ids)
	}
	sort.Slice(cons, func(i, j int) bool {
		if len(cons[i]) != len(cons[j]) {
			return len(cons[i]) < len(cons[j])
		}
		return lessIntSlices(cons[i], cons[j])
	})
	rep.UniqueConstraints = len(cons)

	if len(cons) == 0 {
		// The fault reaches no sink at all within a cycle (dangling
		// flip-flop): trivially benign, one always-true MATE.
		rep.NumMATEs = 1
		return rep, [][]Literal{nil}
	}

	mates := enumerateCovers(cons, maskables, p, &rep)
	rep.NumMATEs = len(mates)
	return rep, mates
}

// enumerateCovers walks all covering gate sets of size <= MaxTerms (branch
// on the first uncovered constraint; the "excluded" set prevents the same
// cover from being produced twice) and, for every cover, emits each
// consistent combination of one GM term per gate as a MATE candidate. The
// candidate counter and budget include combinations rejected for literal
// conflicts, mirroring the paper's "#MATE candid." statistic.
func enumerateCovers(cons [][]int, maskables []maskableGate, p SearchParams, rep *WireReport) [][]Literal {
	var out [][]Literal
	chosen := make([]int, 0, p.MaxTerms)
	inChosen := make([]bool, len(maskables))
	excluded := make([]bool, len(maskables))

	covered := func(c []int) bool {
		for _, id := range c {
			if inChosen[id] {
				return true
			}
		}
		return false
	}

	var emit func(i int, acc []Literal)
	emit = func(i int, acc []Literal) {
		if rep.Candidates >= int64(p.MaxCandidates) {
			return
		}
		if p.MaxMATEsPerWire > 0 && len(out) >= p.MaxMATEsPerWire {
			return
		}
		if i == len(chosen) {
			rep.Candidates++
			lits := append([]Literal(nil), acc...)
			norm, ok := normalizeLiterals(lits)
			if !ok {
				return
			}
			out = append(out, append([]Literal(nil), norm...))
			return
		}
		for _, term := range maskables[chosen[i]].terms {
			emit(i+1, append(acc, term...))
			if rep.Candidates >= int64(p.MaxCandidates) {
				return
			}
		}
	}

	var cover func()
	cover = func() {
		if rep.Candidates >= int64(p.MaxCandidates) {
			return
		}
		if p.MaxMATEsPerWire > 0 && len(out) >= p.MaxMATEsPerWire {
			return
		}
		// find first uncovered constraint
		first := -1
		for ci := range cons {
			if !covered(cons[ci]) {
				first = ci
				break
			}
		}
		if first == -1 {
			emit(0, nil)
			return
		}
		if len(chosen) == p.MaxTerms {
			return
		}
		// branch on the gates of the first uncovered constraint
		var branched []int
		for _, id := range cons[first] {
			if excluded[id] || inChosen[id] {
				continue
			}
			chosen = append(chosen, id)
			inChosen[id] = true
			cover()
			inChosen[id] = false
			chosen = chosen[:len(chosen)-1]
			excluded[id] = true
			branched = append(branched, id)
		}
		for _, id := range branched {
			excluded[id] = false
		}
	}
	cover()
	return out
}

func dedupInts(a []int) []int {
	out := a[:0]
	for i, v := range a {
		if i == 0 || v != a[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func lessIntSlices(a, b []int) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
