package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestMATESetRoundTrip(t *testing.T) {
	nl, w := buildFigure1a(t)
	inputs := []netlist.WireID{w["a"], w["b"], w["c"], w["d"], w["e"], w["h"]}
	set := Search(nl, inputs, DefaultSearchParams()).Set
	if set.Size() == 0 {
		t.Fatal("empty set")
	}

	var buf bytes.Buffer
	if err := WriteMATESet(&buf, nl, set); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadMATESet(bytes.NewReader(buf.Bytes()), nl)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Size() != set.Size() {
		t.Fatalf("size: got %d want %d", parsed.Size(), set.Size())
	}
	for i := range set.MATEs {
		if set.MATEs[i].Key() != parsed.MATEs[i].Key() {
			t.Fatalf("MATE %d literals differ", i)
		}
		if len(set.MATEs[i].Masks) != len(parsed.MATEs[i].Masks) {
			t.Fatalf("MATE %d masks differ", i)
		}
		for j := range set.MATEs[i].Masks {
			if set.MATEs[i].Masks[j] != parsed.MATEs[i].Masks[j] {
				t.Fatalf("MATE %d mask %d differs", i, j)
			}
		}
	}
}

func TestCertificateRoundTrip(t *testing.T) {
	nl, w := buildFigure1a(t)
	set := &MATESet{
		MATEs: []*MATE{{
			Literals: []Literal{{Wire: w["a"], Value: false}},
			Masks:    []netlist.WireID{w["d"]},
		}},
		Certificates: []Certificate{
			{Wire: w["e"], ConeGates: 3, BorderWires: 2, BDDNodes: 17},
			{Wire: w["h"], ConeGates: 1, BorderWires: 1, BDDNodes: 2},
		},
	}
	var buf bytes.Buffer
	if err := WriteMATESet(&buf, nl, set); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "!unmaskable e cone=3 border=2 nodes=17") {
		t.Fatalf("certificate line missing:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "2 unmaskability certificates") {
		t.Fatalf("header does not count certificates:\n%s", buf.String())
	}
	parsed, err := ReadMATESet(bytes.NewReader(buf.Bytes()), nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Certificates) != 2 {
		t.Fatalf("got %d certificates, want 2", len(parsed.Certificates))
	}
	for i, c := range parsed.Certificates {
		if c != set.Certificates[i] {
			t.Fatalf("certificate %d: got %+v want %+v", i, c, set.Certificates[i])
		}
	}
	cu := parsed.CertifiedUnmaskable()
	if !cu[w["e"]] || !cu[w["h"]] || cu[w["a"]] {
		t.Fatalf("CertifiedUnmaskable wrong: %v", cu)
	}
}

func TestReadMATESetErrors(t *testing.T) {
	nl, _ := buildFigure1a(t)
	cases := map[string]string{
		"missing pipe":    "a=0 b=1\n",
		"bad literal":     "a@1 | d\n",
		"unknown wire":    "zzz=1 | d\n",
		"bad value":       "a=x | d\n",
		"no masks":        "a=0 |\n",
		"unknown mask":    "a=0 | qqq\n",
		"conflict":        "a=0 a=1 | d\n",
		"trailing equals": "a= | d\n",
		"bad directive":   "!shrug e cone=1\n",
		"cert bad wire":   "!unmaskable zzz cone=1 border=1 nodes=1\n",
		"cert bad field":  "!unmaskable e depth=1\n",
		"cert bad value":  "!unmaskable e cone=x\n",
		"cert no wire":    "!unmaskable\n",
	}
	for name, src := range cases {
		if _, err := ReadMATESet(strings.NewReader(src), nl); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestReadMATESetSkipsComments(t *testing.T) {
	nl, _ := buildFigure1a(t)
	src := "# header\n\n  # another\na=0 b=1 | d e\n"
	set, err := ReadMATESet(strings.NewReader(src), nl)
	if err != nil {
		t.Fatal(err)
	}
	if set.Size() != 1 || len(set.MATEs[0].Literals) != 2 || len(set.MATEs[0].Masks) != 2 {
		t.Fatalf("parsed %+v", set.MATEs)
	}
}

func TestWriteMATESetAlwaysTrue(t *testing.T) {
	nl, w := buildFigure1a(t)
	set := &MATESet{MATEs: []*MATE{{Masks: []netlist.WireID{w["d"]}}}}
	var buf bytes.Buffer
	if err := WriteMATESet(&buf, nl, set); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadMATESet(bytes.NewReader(buf.Bytes()), nl)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Size() != 1 || len(parsed.MATEs[0].Literals) != 0 {
		t.Fatal("always-true MATE did not round trip")
	}
}
