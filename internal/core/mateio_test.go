package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestMATESetRoundTrip(t *testing.T) {
	nl, w := buildFigure1a(t)
	inputs := []netlist.WireID{w["a"], w["b"], w["c"], w["d"], w["e"], w["h"]}
	set := Search(nl, inputs, DefaultSearchParams()).Set
	if set.Size() == 0 {
		t.Fatal("empty set")
	}

	var buf bytes.Buffer
	if err := WriteMATESet(&buf, nl, set); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadMATESet(bytes.NewReader(buf.Bytes()), nl)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Size() != set.Size() {
		t.Fatalf("size: got %d want %d", parsed.Size(), set.Size())
	}
	for i := range set.MATEs {
		if set.MATEs[i].Key() != parsed.MATEs[i].Key() {
			t.Fatalf("MATE %d literals differ", i)
		}
		if len(set.MATEs[i].Masks) != len(parsed.MATEs[i].Masks) {
			t.Fatalf("MATE %d masks differ", i)
		}
		for j := range set.MATEs[i].Masks {
			if set.MATEs[i].Masks[j] != parsed.MATEs[i].Masks[j] {
				t.Fatalf("MATE %d mask %d differs", i, j)
			}
		}
	}
}

func TestReadMATESetErrors(t *testing.T) {
	nl, _ := buildFigure1a(t)
	cases := map[string]string{
		"missing pipe":    "a=0 b=1\n",
		"bad literal":     "a@1 | d\n",
		"unknown wire":    "zzz=1 | d\n",
		"bad value":       "a=x | d\n",
		"no masks":        "a=0 |\n",
		"unknown mask":    "a=0 | qqq\n",
		"conflict":        "a=0 a=1 | d\n",
		"trailing equals": "a= | d\n",
	}
	for name, src := range cases {
		if _, err := ReadMATESet(strings.NewReader(src), nl); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestReadMATESetSkipsComments(t *testing.T) {
	nl, _ := buildFigure1a(t)
	src := "# header\n\n  # another\na=0 b=1 | d e\n"
	set, err := ReadMATESet(strings.NewReader(src), nl)
	if err != nil {
		t.Fatal(err)
	}
	if set.Size() != 1 || len(set.MATEs[0].Literals) != 2 || len(set.MATEs[0].Masks) != 2 {
		t.Fatalf("parsed %+v", set.MATEs)
	}
}

func TestWriteMATESetAlwaysTrue(t *testing.T) {
	nl, w := buildFigure1a(t)
	set := &MATESet{MATEs: []*MATE{{Masks: []netlist.WireID{w["d"]}}}}
	var buf bytes.Buffer
	if err := WriteMATESet(&buf, nl, set); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadMATESet(bytes.NewReader(buf.Bytes()), nl)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Size() != 1 || len(parsed.MATEs[0].Literals) != 0 {
		t.Fatal("always-true MATE did not round trip")
	}
}
