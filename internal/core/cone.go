package core

import (
	"repro/internal/netlist"
)

// Cone is the fault cone of a single possibly-faulty wire: every gate and
// wire a fault on Source can reach before the next clock edge. Sinks are
// the cone wires where a surviving fault becomes architecturally visible:
// flip-flop D inputs and primary outputs (paper, Section 2: a fault is
// possibly effective "if it could eventually propagate to externally
// visible state").
type Cone struct {
	// Sources are the simultaneously-faulty wires this cone was built for
	// (one for the classic SEU model; two for the Section 6.2 double-fault
	// extension).
	Sources []netlist.WireID
	// InCone marks cone membership per wire id.
	InCone []bool
	// Gates lists the cone gate indices in global topological order, so
	// the cone can be re-simulated standalone.
	Gates []int32
	// Sinks lists cone wires that feed an FF D pin or a primary output.
	Sinks []netlist.WireID
}

// ComputeCone performs the reachability analysis for one source wire.
func ComputeCone(nl *netlist.Netlist, source netlist.WireID) *Cone {
	return ComputeConeMulti(nl, []netlist.WireID{source})
}

// ComputeConeMulti builds the joint fault cone of several simultaneously
// faulty wires (the union of their single cones): every wire reachable
// from any source is mistrusted.
func ComputeConeMulti(nl *netlist.Netlist, sources []netlist.WireID) *Cone {
	c := &Cone{Sources: append([]netlist.WireID(nil), sources...), InCone: make([]bool, nl.NumWires())}
	inGate := make([]bool, len(nl.Gates))

	var stack []netlist.WireID
	for _, source := range sources {
		if !c.InCone[source] {
			c.InCone[source] = true
			stack = append(stack, source)
		}
	}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fr := range nl.Fanout(w) {
			inGate[fr.Gate] = true
			out := nl.Gates[fr.Gate].Output
			if !c.InCone[out] {
				c.InCone[out] = true
				stack = append(stack, out)
			}
		}
	}

	// Global topological order restricted to cone gates.
	for _, gi := range nl.EvalOrder() {
		if inGate[gi] {
			c.Gates = append(c.Gates, gi)
		}
	}

	// Sinks.
	for w := netlist.WireID(0); int(w) < nl.NumWires(); w++ {
		if !c.InCone[w] {
			continue
		}
		if len(nl.FFsOfD(w)) > 0 || nl.IsPrimaryOutput(w) {
			c.Sinks = append(c.Sinks, w)
		}
	}
	return c
}

// NumGates returns the number of gates in the cone (the paper's cone-size
// metric, Table 1).
func (c *Cone) NumGates() int { return len(c.Gates) }

// BorderWires returns all wires that feed cone gates from outside the cone
// — the wires MATE literals may range over.
func (c *Cone) BorderWires(nl *netlist.Netlist) []netlist.WireID {
	seen := map[netlist.WireID]bool{}
	var out []netlist.WireID
	for _, gi := range c.Gates {
		for _, in := range nl.Gates[gi].Inputs {
			if !c.InCone[in] && !seen[in] {
				seen[in] = true
				out = append(out, in)
			}
		}
	}
	return out
}

// FaultyPins returns the bitmask of pins of gate gi whose input wire lies
// inside the cone. During MATE construction every cone wire is mistrusted
// (paper, Section 4), so this is the faulty-input set the gate must mask.
func (c *Cone) FaultyPins(nl *netlist.Netlist, gi int32) uint32 {
	var mask uint32
	for p, in := range nl.Gates[gi].Inputs {
		if c.InCone[in] {
			mask |= 1 << p
		}
	}
	return mask
}
