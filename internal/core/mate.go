package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// Literal is one conjunct of a MATE: wire must carry Value.
type Literal struct {
	Wire  netlist.WireID
	Value bool
}

// MATE is a fault-masking term: when every literal holds in the current
// cycle, an SEU on any wire in Masks during this cycle is masked within one
// clock cycle and therefore benign. Literals are sorted by wire id; Masks
// is sorted and deduplicated.
type MATE struct {
	Literals []Literal
	Masks    []netlist.WireID
}

// NumInputs returns the number of distinct input signals of the MATE — the
// paper's hardware-cost metric ("Avg. #inputs", Tables 2 and 3).
func (m *MATE) NumInputs() int { return len(m.Literals) }

// Eval evaluates the conjunction against a wire-value lookup.
func (m *MATE) Eval(value func(netlist.WireID) bool) bool {
	for _, l := range m.Literals {
		if value(l.Wire) != l.Value {
			return false
		}
	}
	return true
}

// EvalTrace evaluates the conjunction on one cycle of a recorded trace.
func (m *MATE) EvalTrace(tr *sim.Trace, cycle int) bool {
	for _, l := range m.Literals {
		if tr.Get(cycle, l.Wire) != l.Value {
			return false
		}
	}
	return true
}

// Key returns a canonical representation of the literal set, used to merge
// identical terms discovered for different faulty wires (paper, Section 4:
// "oftentimes, one active MATE indicates the masking of more than one
// fault").
func (m *MATE) Key() string {
	var sb strings.Builder
	for _, l := range m.Literals {
		v := byte('0')
		if l.Value {
			v = '1'
		}
		fmt.Fprintf(&sb, "%d=%c;", l.Wire, v)
	}
	return sb.String()
}

// String renders the MATE with wire names.
func (m *MATE) String(nl *netlist.Netlist) string {
	if len(m.Literals) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(m.Literals))
	for i, l := range m.Literals {
		neg := "¬"
		if l.Value {
			neg = ""
		}
		parts[i] = neg + nl.WireName(l.Wire)
	}
	return strings.Join(parts, " ∧ ")
}

// normalizeLiterals sorts literals by wire and reports a conflict when the
// same wire is required to be both 0 and 1 (such a conjunction can never
// trigger and is discarded by the search).
func normalizeLiterals(lits []Literal) ([]Literal, bool) {
	sort.Slice(lits, func(i, j int) bool { return lits[i].Wire < lits[j].Wire })
	out := lits[:0]
	for i := 0; i < len(lits); i++ {
		if i > 0 && lits[i].Wire == lits[i-1].Wire {
			if lits[i].Value != lits[i-1].Value {
				return nil, false
			}
			continue
		}
		out = append(out, lits[i])
	}
	return out, true
}

// MATESet is a collection of MATEs for one circuit and fault set, with the
// summarisation/merging of step 3 of the search applied. Certificates, when
// present, carry the exact engine's per-FF unmaskability proofs alongside
// the terms (see internal/exact).
type MATESet struct {
	MATEs []*MATE
	// Certificates lists the wires proven unmaskable by exact analysis:
	// their masking condition reduced to the canonical ⊥, so no MATE over
	// border wires can exist. Sorted by wire id.
	Certificates []Certificate
}

// Certificate is one unmaskability proof: the BDD of the masking condition
// of Wire's fault cone reduced to the canonical false terminal. The cone
// and border sizes locate the proof obligation; BDDNodes records the peak
// universe size the reduction needed (the proof's witness cost).
type Certificate struct {
	Wire        netlist.WireID
	ConeGates   int
	BorderWires int
	BDDNodes    int
}

// CertifiedUnmaskable returns the set of certified wires for O(1) lookup.
func (s *MATESet) CertifiedUnmaskable() map[netlist.WireID]bool {
	if len(s.Certificates) == 0 {
		return nil
	}
	out := make(map[netlist.WireID]bool, len(s.Certificates))
	for _, c := range s.Certificates {
		out[c.Wire] = true
	}
	return out
}

// merge inserts a term for a faulty wire, merging with an existing MATE
// that has the same literal set.
type mateMerger struct {
	byKey map[string]*MATE
	order []*MATE
}

func newMateMerger() *mateMerger { return &mateMerger{byKey: map[string]*MATE{}} }

func (mm *mateMerger) add(lits []Literal, faulty netlist.WireID) {
	m := &MATE{Literals: lits}
	key := m.Key()
	if prev, ok := mm.byKey[key]; ok {
		// merge masks
		i := sort.Search(len(prev.Masks), func(i int) bool { return prev.Masks[i] >= faulty })
		if i < len(prev.Masks) && prev.Masks[i] == faulty {
			return
		}
		prev.Masks = append(prev.Masks, 0)
		copy(prev.Masks[i+1:], prev.Masks[i:])
		prev.Masks[i] = faulty
		return
	}
	m.Masks = []netlist.WireID{faulty}
	mm.byKey[key] = m
	mm.order = append(mm.order, m)
}

func (mm *mateMerger) set() *MATESet { return &MATESet{MATEs: mm.order} }

// Size returns the number of distinct MATEs.
func (s *MATESet) Size() int { return len(s.MATEs) }

// SortByCoverage orders MATEs by the number of faults they mask
// (descending), the starting order for the hit-counter selection. Ties are
// broken by literal count and finally by the canonical literal-set key, so
// the order — and therefore the serialized set — is fully deterministic
// regardless of the construction order (the heuristic search and the exact
// merge may interleave terms differently across runs).
func (s *MATESet) SortByCoverage() {
	keys := make(map[*MATE]string, len(s.MATEs))
	for _, m := range s.MATEs {
		keys[m] = m.Key()
	}
	sort.SliceStable(s.MATEs, func(i, j int) bool {
		if len(s.MATEs[i].Masks) != len(s.MATEs[j].Masks) {
			return len(s.MATEs[i].Masks) > len(s.MATEs[j].Masks)
		}
		if len(s.MATEs[i].Literals) != len(s.MATEs[j].Literals) {
			return len(s.MATEs[i].Literals) < len(s.MATEs[j].Literals)
		}
		return keys[s.MATEs[i]] < keys[s.MATEs[j]]
	})
}

// AvgInputs returns the mean and standard deviation of the MATE input
// counts (paper metric "Avg. #inputs").
func (s *MATESet) AvgInputs() (mean, std float64) {
	if len(s.MATEs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, m := range s.MATEs {
		sum += float64(m.NumInputs())
	}
	mean = sum / float64(len(s.MATEs))
	var varsum float64
	for _, m := range s.MATEs {
		d := float64(m.NumInputs()) - mean
		varsum += d * d
	}
	std = math.Sqrt(varsum / float64(len(s.MATEs)))
	return mean, std
}
