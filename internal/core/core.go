// Package core implements the paper's primary contribution: fault-masking
// terms (MATEs) for cross-layer fault-space pruning in hardware-assisted
// fault-injection campaigns (Dietrich et al., DAC '18).
//
// A MATE for a possibly-faulty wire w is a conjunction of literals over
// wires *outside* w's fault cone ("border wires"). Whenever the conjunction
// holds in the current circuit state, a single-event upset on w in that
// cycle is provably masked within one clock cycle: no flip-flop next-state
// input and no primary output changes, so the fault is benign and its
// injection can be pruned from the campaign.
//
// The package provides:
//   - fault-cone analysis over internal/netlist circuits (cone.go),
//   - the MATE data type and per-cycle evaluation (mate.go),
//   - the heuristic search for high-impact MATEs with the paper's three
//     knobs — path depth, maximum number of gate-masking terms, and a
//     candidate budget per wire (search.go),
//   - an exact single-cycle masking oracle by duplicated-cone simulation,
//     used to validate MATE soundness (verify.go).
package core
