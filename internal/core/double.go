package core

import (
	"time"

	"repro/internal/netlist"
)

// The paper's Section 6.2 sketches the extension of MATEs to multi-bit
// upsets: "conceptually, also 2-bit faults (or more) could be considered
// in the construction of MATEs". This file implements it for fault pairs:
// a DoubleMATE proves that flipping *both* wires of a pair in the same
// cycle is masked within one clock cycle. The construction is the same
// heuristic over the joint (union) fault cone — every wire reachable from
// either fault is mistrusted, so the resulting terms are sound for the
// simultaneous upset.

// Pair is an unordered pair of simultaneously faulty wires.
type Pair struct {
	A, B netlist.WireID
}

// DoubleReport is the per-pair outcome of the double-fault search.
type DoubleReport struct {
	Pair       Pair
	ConeGates  int
	Unmaskable bool
	Candidates int64
	MATEs      []*MATE // Masks holds both wires of the pair (joint claim)
}

// DoubleResult aggregates a double-fault search.
type DoubleResult struct {
	Reports         []DoubleReport
	Elapsed         time.Duration
	TotalCandidates int64
	Unmaskable      int
}

// SearchDouble runs the MATE search for simultaneous 2-bit upsets: for
// every pair, MATEs are constructed over the joint fault cone. A returned
// MATE's Masks lists both wires; its claim is joint ("flipping both in
// this cycle is benign"), not per-wire.
func SearchDouble(nl *netlist.Netlist, pairs []Pair, p SearchParams) *DoubleResult {
	start := time.Now()
	res := &DoubleResult{}
	for _, pr := range pairs {
		rep, lits := searchSources(nl, []netlist.WireID{pr.A, pr.B}, p)
		dr := DoubleReport{
			Pair:       pr,
			ConeGates:  rep.ConeGates,
			Unmaskable: rep.Unmaskable || rep.PathBudgetExceeded,
			Candidates: rep.Candidates,
		}
		for _, ls := range lits {
			masks := []netlist.WireID{pr.A, pr.B}
			if pr.B < pr.A {
				masks[0], masks[1] = masks[1], masks[0]
			}
			dr.MATEs = append(dr.MATEs, &MATE{Literals: ls, Masks: masks})
		}
		res.TotalCandidates += dr.Candidates
		if dr.Unmaskable {
			res.Unmaskable++
		}
		res.Reports = append(res.Reports, dr)
	}
	res.Elapsed = time.Since(start)
	return res
}

// AdjacentPairs builds the fault pairs of physically adjacent flip-flops
// under the (simplifying) assumption that netlist order reflects layout
// adjacency — the scenario of multi-cell upsets striking neighbouring
// cells (cf. FLINT's layout-oriented MCU emulation, which the paper cites).
func AdjacentPairs(nl *netlist.Netlist) []Pair {
	var out []Pair
	for i := 0; i+1 < len(nl.FFs); i++ {
		out = append(out, Pair{A: nl.FFs[i].Q, B: nl.FFs[i+1].Q})
	}
	return out
}
