package core

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// buildFigure1a reconstructs the paper's running example (Figure 1a): the
// fault cone of input d is {d, g, k, l} with gates {B, D, E}; the border
// wires are {c, f, h}; the (border) MATE for d is (¬f ∧ h); for input e
// there is no MATE because path [C] contains no masking-capable gate.
func buildFigure1a(t testing.TB) (*netlist.Netlist, map[string]netlist.WireID) {
	t.Helper()
	b := netlist.NewBuilder("fig1a")
	w := map[string]netlist.WireID{}
	for _, n := range []string{"a", "b", "c", "d", "e", "h"} {
		w[n] = b.Input(n)
	}
	w["j"] = b.GateNamed("j", cell.NAND2, w["a"], w["b"]) // gate A
	w["f"] = b.GateNamed("f", cell.OR2, w["j"], w["e"])   // feeds border wire f
	w["g"] = b.GateNamed("g", cell.XOR2, w["c"], w["d"])  // gate B: no masking
	w["k"] = b.GateNamed("k", cell.AND2, w["g"], w["f"])  // gate D
	w["l"] = b.GateNamed("l", cell.OR2, w["g"], w["h"])   // gate E
	w["m"] = b.GateNamed("m", cell.XOR2, w["e"], w["c"])  // gate C: no masking
	b.MarkOutput(w["k"])
	b.MarkOutput(w["l"])
	b.MarkOutput(w["m"])
	nl, err := b.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	return nl, w
}

func TestFigure1aCone(t *testing.T) {
	nl, w := buildFigure1a(t)
	cone := ComputeCone(nl, w["d"])
	wantWires := map[string]bool{"d": true, "g": true, "k": true, "l": true}
	for name, id := range w {
		if cone.InCone[id] != wantWires[name] {
			t.Errorf("wire %s: inCone=%v want %v", name, cone.InCone[id], wantWires[name])
		}
	}
	if cone.NumGates() != 3 {
		t.Errorf("cone gates = %d, want 3 (B, D, E)", cone.NumGates())
	}
	if len(cone.Sinks) != 2 {
		t.Errorf("sinks = %d, want 2 (k, l)", len(cone.Sinks))
	}
	borders := cone.BorderWires(nl)
	wantBorders := map[netlist.WireID]bool{w["c"]: true, w["f"]: true, w["h"]: true}
	if len(borders) != 3 {
		t.Fatalf("borders = %d, want 3", len(borders))
	}
	for _, bw := range borders {
		if !wantBorders[bw] {
			t.Errorf("unexpected border wire %s", nl.WireName(bw))
		}
	}
}

func TestFigure1aMATEForD(t *testing.T) {
	nl, w := buildFigure1a(t)
	p := DefaultSearchParams()
	res := Search(nl, []netlist.WireID{w["d"]}, p)
	if res.Unmaskable != 0 {
		t.Fatal("d must be maskable")
	}
	if res.Set.Size() != 1 {
		t.Fatalf("MATEs for d = %d, want exactly 1 (the border MATE ¬f∧h)", res.Set.Size())
	}
	m := res.Set.MATEs[0]
	if len(m.Literals) != 2 {
		t.Fatalf("MATE literals = %v", m.Literals)
	}
	lits := map[netlist.WireID]bool{}
	for _, l := range m.Literals {
		lits[l.Wire] = l.Value
	}
	if v, ok := lits[w["f"]]; !ok || v {
		t.Errorf("expected literal ¬f, got %s", m.String(nl))
	}
	if v, ok := lits[w["h"]]; !ok || !v {
		t.Errorf("expected literal h, got %s", m.String(nl))
	}
}

func TestFigure1aNoMATEForE(t *testing.T) {
	nl, w := buildFigure1a(t)
	res := Search(nl, []netlist.WireID{w["e"]}, DefaultSearchParams())
	if res.Unmaskable != 1 {
		t.Fatalf("e must be unmaskable (path through XOR gate C), got %d MATEs", res.Set.Size())
	}
	if res.Set.Size() != 0 {
		t.Fatalf("unexpected MATEs for e: %d", res.Set.Size())
	}
}

func TestFigure1aMATESoundExhaustive(t *testing.T) {
	// For every input combination where the MATE for d triggers, flipping d
	// must leave k and l unchanged.
	nl, w := buildFigure1a(t)
	res := Search(nl, []netlist.WireID{w["d"]}, DefaultSearchParams())
	m := res.Set.MATEs[0]
	machine := sim.New(nl)
	oracle := NewOracle(nl)
	cone := ComputeCone(nl, w["d"])
	inputs := []netlist.WireID{w["a"], w["b"], w["c"], w["d"], w["e"], w["h"]}
	triggers := 0
	for v := uint64(0); v < 64; v++ {
		machine.WriteBus(inputs, v)
		machine.EvalComb()
		if !m.Eval(machine.Value) {
			continue
		}
		triggers++
		vals := append([]bool(nil), machine.Values()...)
		if !oracle.MaskedExact(cone, vals) {
			t.Fatalf("MATE triggered for inputs %06b but fault in d not masked", v)
		}
	}
	if triggers == 0 {
		t.Fatal("MATE never triggered in exhaustive input sweep")
	}
}

func TestOracleDetectsUnmasked(t *testing.T) {
	nl, w := buildFigure1a(t)
	machine := sim.New(nl)
	oracle := NewOracle(nl)
	cone := ComputeCone(nl, w["d"])
	// f=1, h=0: fault in d propagates through both D and E.
	machine.SetValue(w["a"], false) // j = NAND(0,b)=1 -> f=1
	machine.SetValue(w["h"], false)
	machine.EvalComb()
	if oracle.MaskedExact(cone, machine.Values()) {
		t.Fatal("oracle claims masked, but fault must propagate")
	}
}

// --- FF-level semantics ---

// TestHoldRegisterNotMaskedWhenHolding captures design decision 2 of
// DESIGN.md: an enable-muxed register holding its value (en=0) keeps the
// fault alive (Q feeds D), so no MATE may trigger; when the register loads
// new data (en=1) the hold path is masked at the mux.
func TestHoldRegisterMaskingSemantics(t *testing.T) {
	b := netlist.NewBuilder("holdreg")
	d := b.Input("d")
	en := b.Input("en")
	q := b.FFPlaceholder("q", false, "state")
	next := b.Gate(cell.MUX2, q, d, en)
	b.SetFFD(q, next)
	out := b.GateNamed("out", cell.AND2, q, en) // make Q observable
	b.MarkOutput(out)
	nl := b.MustNetlist()

	// The two paths need contradictory border values (mux wants en=1, the
	// AND wants en=0), so no consistent MATE may exist — and indeed no
	// state masks the fault, which the oracle confirms.
	res := Search(nl, []netlist.WireID{q}, DefaultSearchParams())
	if res.Set.Size() != 0 {
		t.Fatalf("expected no consistent MATE, got %d (%s)",
			res.Set.Size(), res.Set.MATEs[0].String(nl))
	}
	if res.Unmaskable != 0 {
		t.Fatal("wire has maskable gates on every path; it is not structurally unmaskable")
	}
	oracle := NewOracle(nl)
	cone := ComputeCone(nl, q)
	m := sim.New(nl)

	// en=0: holding. Fault survives in the mux hold path.
	m.SetValue(en, false)
	m.SetValue(d, true)
	m.EvalComb()
	if oracle.MaskedExact(cone, m.Values()) {
		t.Fatal("holding register cannot mask a Q fault")
	}

	// en=1: loading; Q fault dead at the mux but visible through `out`.
	m.SetValue(en, true)
	m.EvalComb()
	if oracle.MaskedExact(cone, m.Values()) {
		t.Fatal("Q visible through out while en=1")
	}
}

// TestWriteEnableMaskedRegister: a register whose Q only feeds its own
// hold mux is masked exactly when it is being overwritten — the paper's
// mov/ld example in miniature.
func TestWriteEnableMaskedRegister(t *testing.T) {
	b := netlist.NewBuilder("wereg")
	d := b.Input("d")
	en := b.Input("en")
	q := b.FFPlaceholder("q", false, "state")
	next := b.Gate(cell.MUX2, q, d, en)
	b.SetFFD(q, next)
	probe := b.GateNamed("probe", cell.BUF, d) // keep d observable, q private
	b.MarkOutput(probe)
	nl := b.MustNetlist()

	res := Search(nl, []netlist.WireID{q}, DefaultSearchParams())
	if res.Set.Size() == 0 {
		t.Fatal("expected MATE (en=1 masks the hold mux)")
	}
	found := false
	for _, m := range res.Set.MATEs {
		if len(m.Literals) == 1 && m.Literals[0].Wire == en && m.Literals[0].Value {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected the MATE 'en' alone; got %d MATEs", res.Set.Size())
	}
}

func TestDanglingFFAlwaysBenign(t *testing.T) {
	b := netlist.NewBuilder("dangling")
	d := b.Input("d")
	q := b.FF("q", d, false, "state") // Q drives nothing
	probe := b.Gate(cell.BUF, d)
	b.MarkOutput(probe)
	nl := b.MustNetlist()
	res := Search(nl, []netlist.WireID{q}, DefaultSearchParams())
	if res.Set.Size() != 1 || len(res.Set.MATEs[0].Literals) != 0 {
		t.Fatalf("expected single always-true MATE, got %d", res.Set.Size())
	}
	if !res.Set.MATEs[0].Eval(func(netlist.WireID) bool { return false }) {
		t.Fatal("always-true MATE must trigger")
	}
}

func TestDirectFFToFFUnmaskable(t *testing.T) {
	// Q wired straight into another FF's D: the empty path cannot be
	// covered by any gate, so the wire is unmaskable.
	b := netlist.NewBuilder("direct")
	d := b.Input("d")
	q1 := b.FF("q1", d, false, "")
	q2 := b.FF("q2", q1, false, "")
	b.MarkOutput(q2)
	nl := b.MustNetlist()
	res := Search(nl, []netlist.WireID{q1}, DefaultSearchParams())
	if res.Unmaskable != 1 {
		t.Fatalf("expected unmaskable, got %d MATEs", res.Set.Size())
	}
}

func TestDepthTruncationConservative(t *testing.T) {
	// d -> chain of 10 XOR stages -> AND(z) -> output. The only masking
	// gate sits at depth 11. With depth 8 the paths truncate before it:
	// the wire must be reported unmaskable. With depth 12 the MATE z=0
	// appears.
	build := func() (*netlist.Netlist, netlist.WireID, netlist.WireID) {
		b := netlist.NewBuilder("chain")
		d := b.Input("d")
		z := b.Input("z")
		cur := d
		for i := 0; i < 10; i++ {
			stage := b.Input("")
			cur = b.Gate(cell.XOR2, cur, stage)
		}
		out := b.Gate(cell.AND2, cur, z)
		b.MarkOutput(out)
		return b.MustNetlist(), d, z
	}

	nl, d, _ := build()
	p := DefaultSearchParams()
	p.Depth = 8
	res := Search(nl, []netlist.WireID{d}, p)
	if res.Unmaskable != 1 {
		t.Fatalf("depth 8: expected unmaskable (conservative truncation), got %d MATEs", res.Set.Size())
	}

	nl2, d2, z2 := build()
	p.Depth = 12
	res = Search(nl2, []netlist.WireID{d2}, p)
	if res.Set.Size() != 1 {
		t.Fatalf("depth 12: got %d MATEs, want 1", res.Set.Size())
	}
	m := res.Set.MATEs[0]
	if len(m.Literals) != 1 || m.Literals[0].Wire != z2 || m.Literals[0].Value {
		t.Fatalf("depth 12: MATE = %s, want ¬z", m.String(nl2))
	}
}

func TestMATEMergingAcrossWires(t *testing.T) {
	// Two independent faulty wires masked by the same border condition:
	// s=1 selects input `d` in two muxes, masking both q1 and q2.
	b := netlist.NewBuilder("merge")
	d := b.Input("d")
	s := b.Input("s")
	q1 := b.FFPlaceholder("q1", false, "")
	q2 := b.FFPlaceholder("q2", false, "")
	b.SetFFD(q1, b.Gate(cell.MUX2, q1, d, s))
	b.SetFFD(q2, b.Gate(cell.MUX2, q2, d, s))
	probe := b.Gate(cell.BUF, d)
	b.MarkOutput(probe)
	nl := b.MustNetlist()

	res := Search(nl, []netlist.WireID{q1, q2}, DefaultSearchParams())
	var merged *MATE
	for _, m := range res.Set.MATEs {
		if len(m.Literals) == 1 && m.Literals[0].Wire == s && m.Literals[0].Value {
			merged = m
		}
	}
	if merged == nil {
		t.Fatal("expected MATE s")
	}
	if len(merged.Masks) != 2 {
		t.Fatalf("MATE s should mask both wires, masks=%v", merged.Masks)
	}
}

func TestCandidateBudgetRespected(t *testing.T) {
	nl, w := buildFigure1a(t)
	p := DefaultSearchParams()
	p.MaxCandidates = 1
	res := Search(nl, []netlist.WireID{w["d"]}, p)
	if res.TotalCandidates > 1 {
		t.Fatalf("candidates = %d, budget 1", res.TotalCandidates)
	}
}

// --- randomized soundness property test ---

// randomCircuit builds a random acyclic synchronous circuit with nFF
// flip-flops, nIn inputs and nGates gates.
func randomCircuit(rng *rand.Rand, nFF, nIn, nGates int) (*netlist.Netlist, []netlist.WireID) {
	b := netlist.NewBuilder("rand")
	var pool []netlist.WireID
	var ins []netlist.WireID
	for i := 0; i < nIn; i++ {
		w := b.Input("")
		pool = append(pool, w)
		ins = append(ins, w)
	}
	var qs []netlist.WireID
	for i := 0; i < nFF; i++ {
		q := b.FFPlaceholder("", rng.Intn(2) == 0, "ff")
		pool = append(pool, q)
		qs = append(qs, q)
	}
	kinds := []cell.Kind{
		cell.BUF, cell.INV, cell.AND2, cell.AND3, cell.NAND2, cell.OR2,
		cell.OR3, cell.NOR2, cell.XOR2, cell.XNOR2, cell.MUX2, cell.AOI21,
		cell.OAI21, cell.MAJ3, cell.AND4, cell.NOR3,
	}
	for i := 0; i < nGates; i++ {
		k := kinds[rng.Intn(len(kinds))]
		c := cell.Lookup(k)
		inputs := make([]netlist.WireID, c.NumInputs())
		for p := range inputs {
			inputs[p] = pool[rng.Intn(len(pool))]
		}
		out := b.Gate(k, inputs...)
		pool = append(pool, out)
	}
	for _, q := range qs {
		b.SetFFD(q, pool[rng.Intn(len(pool))])
	}
	// a few primary outputs
	for i := 0; i < 3; i++ {
		b.MarkOutput(pool[len(pool)-1-i])
	}
	nl := b.MustNetlist()
	_ = ins
	return nl, qs
}

// TestSearchSoundnessRandomCircuits is the central property test: on
// random circuits with random stimuli, every MATE the search returns must
// be exactly sound — whenever it triggers, the exact cone-duplication
// oracle confirms the fault is masked within one cycle.
func TestSearchSoundnessRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		nl, qs := randomCircuit(rng, 8, 6, 60)
		m := sim.New(nl)
		env := sim.EnvFunc(func(m *sim.Machine) {
			for _, in := range m.NL.Inputs {
				m.SetValue(in, rng.Intn(2) == 0)
			}
		})
		tr := sim.Record(m, env, 64)

		p := DefaultSearchParams()
		p.Workers = 2
		res := Search(nl, qs, p)
		oracle := NewOracle(nl)
		for _, mate := range res.Set.MATEs {
			checked, viol := oracle.ValidateMATE(mate, tr)
			if viol != nil {
				t.Fatalf("trial %d: MATE %s unsound at %s (checked %d)",
					trial, mate.String(nl), viol, checked)
			}
		}
	}
}

// TestSearchDeterminism: two runs with different worker counts must yield
// the same MATE set in the same order.
func TestSearchDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nl, qs := randomCircuit(rng, 10, 5, 80)
	p1 := DefaultSearchParams()
	p1.Workers = 1
	p8 := DefaultSearchParams()
	p8.Workers = 8
	r1 := Search(nl, qs, p1)
	r8 := Search(nl, qs, p8)
	if r1.Set.Size() != r8.Set.Size() {
		t.Fatalf("sizes differ: %d vs %d", r1.Set.Size(), r8.Set.Size())
	}
	for i := range r1.Set.MATEs {
		if r1.Set.MATEs[i].Key() != r8.Set.MATEs[i].Key() {
			t.Fatalf("MATE %d differs between runs", i)
		}
	}
	if r1.TotalCandidates != r8.TotalCandidates {
		t.Fatalf("candidate counts differ: %d vs %d", r1.TotalCandidates, r8.TotalCandidates)
	}
}

func TestSearchResultStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nl, qs := randomCircuit(rng, 6, 4, 40)
	res := Search(nl, qs, DefaultSearchParams())
	if len(res.Reports) != len(qs) {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	if res.AvgConeGates() < 0 {
		t.Fatal("avg cone negative")
	}
	if res.MedianConeGates() < 0 {
		t.Fatal("median cone negative")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
}

// --- MATE unit tests ---

func TestNormalizeLiterals(t *testing.T) {
	lits := []Literal{{3, true}, {1, false}, {3, true}}
	norm, ok := normalizeLiterals(lits)
	if !ok || len(norm) != 2 || norm[0].Wire != 1 || norm[1].Wire != 3 {
		t.Fatalf("normalize = %v ok=%v", norm, ok)
	}
	_, ok = normalizeLiterals([]Literal{{2, true}, {2, false}})
	if ok {
		t.Fatal("conflicting literals must be rejected")
	}
}

func TestMATEKeyAndString(t *testing.T) {
	nl, w := buildFigure1a(t)
	m := &MATE{Literals: []Literal{{w["f"], false}, {w["h"], true}}}
	if m.Key() == "" || m.Key() != (&MATE{Literals: m.Literals}).Key() {
		t.Fatal("key not canonical")
	}
	s := m.String(nl)
	if s != "¬f ∧ h" {
		t.Errorf("String = %q", s)
	}
	empty := &MATE{}
	if empty.String(nl) != "TRUE" {
		t.Errorf("empty MATE String = %q", empty.String(nl))
	}
}

func TestMATESetAvgInputs(t *testing.T) {
	s := &MATESet{MATEs: []*MATE{
		{Literals: make([]Literal, 2)},
		{Literals: make([]Literal, 4)},
	}}
	mean, std := s.AvgInputs()
	if mean != 3 {
		t.Errorf("mean = %v", mean)
	}
	if std != 1 {
		t.Errorf("std = %v", std)
	}
	empty := &MATESet{}
	if m, sd := empty.AvgInputs(); m != 0 || sd != 0 {
		t.Error("empty set stats")
	}
}

func TestSortByCoverage(t *testing.T) {
	s := &MATESet{MATEs: []*MATE{
		{Literals: make([]Literal, 1), Masks: []netlist.WireID{1}},
		{Literals: make([]Literal, 2), Masks: []netlist.WireID{1, 2, 3}},
		{Literals: make([]Literal, 1), Masks: []netlist.WireID{1, 2}},
	}}
	s.SortByCoverage()
	if len(s.MATEs[0].Masks) != 3 || len(s.MATEs[1].Masks) != 2 || len(s.MATEs[2].Masks) != 1 {
		t.Fatal("not sorted by coverage")
	}
}

func TestExactMaskedCycles(t *testing.T) {
	nl, w := buildFigure1a(t)
	m := sim.New(nl)
	rng := rand.New(rand.NewSource(9))
	env := sim.EnvFunc(func(m *sim.Machine) {
		for _, in := range m.NL.Inputs {
			m.SetValue(in, rng.Intn(2) == 0)
		}
	})
	tr := sim.Record(m, env, 32)
	oracle := NewOracle(nl)
	masked := oracle.ExactMaskedCycles(w["d"], tr)
	if len(masked) != 32 {
		t.Fatalf("len = %d", len(masked))
	}
	// cross-check a few cycles against direct oracle calls
	cone := ComputeCone(nl, w["d"])
	for c := 0; c < 32; c += 5 {
		if masked[c] != oracle.MaskedExactTrace(cone, tr, c) {
			t.Fatalf("cycle %d inconsistent", c)
		}
	}
}

func TestBorderWiresSharedFanIn(t *testing.T) {
	// Fault source s fans out through two gates that SHARE the out-of-cone
	// wire x; BorderWires must report x exactly once, and never a cone
	// wire.
	b := netlist.NewBuilder("border")
	s := b.Input("s")
	x := b.Input("x")
	y := b.Input("y")
	g1 := b.GateNamed("g1", cell.AND2, s, x)
	g2 := b.GateNamed("g2", cell.OR2, g1, x) // x again: shared fan-in
	g3 := b.GateNamed("g3", cell.AND2, g2, y)
	q := b.FF("ff", g3, false, "")
	b.MarkOutput(q)
	nl := b.MustNetlist()

	cone := ComputeCone(nl, s)
	for _, w := range []netlist.WireID{s, g1, g2, g3} {
		if !cone.InCone[w] {
			t.Errorf("wire %s missing from cone", nl.WireName(w))
		}
	}
	border := cone.BorderWires(nl)
	count := map[netlist.WireID]int{}
	for _, w := range border {
		count[w]++
	}
	if count[x] != 1 {
		t.Errorf("shared fan-in wire x appears %d times in border, want 1", count[x])
	}
	if count[y] != 1 {
		t.Errorf("border missing y (count %d)", count[y])
	}
	if len(border) != 2 {
		t.Errorf("border = %d wires, want exactly {x, y}", len(border))
	}
	for _, w := range border {
		if cone.InCone[w] {
			t.Errorf("border contains cone wire %s", nl.WireName(w))
		}
	}
}

func TestViolationString(t *testing.T) {
	v := &Violation{Cycle: 42, Wire: 7, WireName: "cpu.alu.carry"}
	if got := v.String(); got != "cpu.alu.carry @ cycle 42" {
		t.Errorf("Violation.String() = %q", got)
	}
	anon := &Violation{Cycle: 3, Wire: 7}
	if got := anon.String(); got != "wire#7 @ cycle 3" {
		t.Errorf("Violation.String() fallback = %q", got)
	}
}
