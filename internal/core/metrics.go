package core

import "repro/internal/obs"

// searchMetrics holds the MATE search's observability handles. All methods
// are nil-receiver safe; an unset SearchParams.Obs costs one pointer check
// per collected wire.
type searchMetrics struct {
	wiresDone   *obs.Counter   // search_wires_done_total
	coneGates   *obs.Histogram // search_cone_gates
	paths       *obs.Counter   // search_paths_total
	truncated   *obs.Counter   // search_truncated_paths_total
	candidates  *obs.Counter   // search_candidates_total
	mates       *obs.Counter   // search_mates_total
	unmaskable  *obs.Counter   // search_unmaskable_total
	budgetBlown *obs.Counter   // search_path_budget_exceeded_total
}

func newSearchMetrics(reg *obs.Registry, totalWires int) *searchMetrics {
	if reg == nil {
		return nil
	}
	reg.Gauge("search_wires").Set(int64(totalWires))
	return &searchMetrics{
		wiresDone:   reg.Counter("search_wires_done_total"),
		coneGates:   reg.Histogram("search_cone_gates", obs.ExpBuckets(1, 4, 8)),
		paths:       reg.Counter("search_paths_total"),
		truncated:   reg.Counter("search_truncated_paths_total"),
		candidates:  reg.Counter("search_candidates_total"),
		mates:       reg.Counter("search_mates_total"),
		unmaskable:  reg.Counter("search_unmaskable_total"),
		budgetBlown: reg.Counter("search_path_budget_exceeded_total"),
	}
}

// wire accounts one finished per-wire search report.
func (m *searchMetrics) wire(rep WireReport) {
	if m == nil {
		return
	}
	m.wiresDone.Inc()
	m.coneGates.Observe(float64(rep.ConeGates))
	m.paths.Add(int64(rep.Paths))
	m.truncated.Add(int64(rep.TruncatedPaths))
	m.candidates.Add(rep.Candidates)
	m.mates.Add(int64(rep.NumMATEs))
	if rep.Unmaskable {
		m.unmaskable.Inc()
	}
	if rep.PathBudgetExceeded {
		m.budgetBlown.Inc()
	}
}
