package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// fuzzNetlist builds the fixed small circuit every fuzz input is resolved
// against: six named inputs, three gates, one flip-flop.
func fuzzNetlist() *netlist.Netlist {
	b := netlist.NewBuilder("fuzz")
	a := b.Input("a")
	c := b.Input("b")
	d := b.Input("c")
	e := b.Input("d")
	g := b.GateNamed("g", cell.AND2, a, c)
	h := b.GateNamed("h", cell.XOR2, d, e)
	y := b.GateNamed("y", cell.OR2, g, h)
	b.FF("ff", y, false, "")
	b.MarkOutput(y)
	return b.MustNetlist()
}

// FuzzMATESetRoundTrip feeds arbitrary text through ReadMATESet against a
// fixed netlist: parsing must never panic, and any set it accepts must
// survive WriteMATESet → ReadMATESet with identical literals and masks —
// the contract between matesearch -o and prune/campaign -mates.
func FuzzMATESetRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"# empty set\n",
		"a=1 | ff.Q\n",
		"a=0 b=1 | g y\n",
		" | y\n",
		"c=1 d=0 | h\na=1 | y ff.Q\n",
		"bogus line without pipe\n",
		"a=2 | y\n",
		"unknown=1 | y\n",
		"a=1 | nothere\n",
		"a=1 a=0 | y\n",
		"a=1 |\n",
	} {
		f.Add(seed)
	}
	nl := fuzzNetlist()
	f.Fuzz(func(t *testing.T, src string) {
		set, err := ReadMATESet(strings.NewReader(src), nl)
		if err != nil {
			return // rejection is fine; panics are the failure mode
		}
		var buf bytes.Buffer
		if err := WriteMATESet(&buf, nl, set); err != nil {
			t.Fatalf("WriteMATESet failed on accepted set: %v", err)
		}
		again, err := ReadMATESet(bytes.NewReader(buf.Bytes()), nl)
		if err != nil {
			t.Fatalf("round trip: ReadMATESet(WriteMATESet(set)) failed: %v\ninput: %q\nwritten: %q", err, src, buf.String())
		}
		if len(again.MATEs) != len(set.MATEs) {
			t.Fatalf("round trip changed MATE count %d → %d", len(set.MATEs), len(again.MATEs))
		}
		for i, m := range set.MATEs {
			n := again.MATEs[i]
			if len(m.Literals) != len(n.Literals) || len(m.Masks) != len(n.Masks) {
				t.Fatalf("MATE %d changed shape: literals %d→%d masks %d→%d",
					i, len(m.Literals), len(n.Literals), len(m.Masks), len(n.Masks))
			}
			for j := range m.Literals {
				if m.Literals[j] != n.Literals[j] {
					t.Fatalf("MATE %d literal %d changed: %+v → %+v", i, j, m.Literals[j], n.Literals[j])
				}
			}
			for j := range m.Masks {
				if m.Masks[j] != n.Masks[j] {
					t.Fatalf("MATE %d mask %d changed: %v → %v", i, j, m.Masks[j], n.Masks[j])
				}
			}
		}
	})
}
