// Package cell provides the logical view of a standard-cell library for
// combinational gates, together with the derivation of gate-masking terms
// (GM terms) as defined in "Cross-Layer Fault-Space Pruning for
// Hardware-Assisted Fault Injection" (DAC '18), Section 4.
//
// The paper synthesizes its processors against the 15nm FinFET-based Open
// Cell Library and only uses the logical function of each gate for the MATE
// search. This package therefore models cells purely as boolean functions
// (truth tables over up to MaxInputs pins); timing and area are out of
// scope. The DFF is intentionally absent: sequential elements are modelled
// by the netlist layer, while this package covers the combinational cells
// between them.
package cell

import "fmt"

// MaxInputs is the maximum number of input pins any library cell may have.
// GM-term derivation enumerates 3^n partial assignments, so this is kept
// small; the 15nm Open Cell Library used by the paper also tops out at
// four-input cells.
const MaxInputs = 5

// Kind identifies a cell type in the library.
type Kind uint8

// Library cell kinds. The selection mirrors the combinational subset of the
// 15nm Open Cell Library: inverters/buffers, 2-4 input
// AND/NAND/OR/NOR gates, XOR/XNOR, a 2:1 multiplexer, and the classic
// AOI/OAI complex gates that synthesis tools love. TIE cells provide
// constant drivers.
const (
	TIE0 Kind = iota // constant 0, no inputs
	TIE1             // constant 1, no inputs
	BUF
	INV
	AND2
	AND3
	AND4
	NAND2
	NAND3
	NAND4
	OR2
	OR3
	OR4
	NOR2
	NOR3
	NOR4
	XOR2
	XNOR2
	MUX2  // out = S ? B : A, pins (A, B, S)
	AOI21 // out = !((A & B) | C), pins (A, B, C)
	AOI22 // out = !((A & B) | (C & D))
	OAI21 // out = !((A | B) & C)
	OAI22 // out = !((A | B) & (C | D))
	MAJ3  // out = majority(A, B, C); carry gate of a full adder
	numKinds
)

// Cell is the logical description of one library cell: its pin names and
// its truth table. The truth table is indexed by the input vector
// interpreted as an integer with pin 0 as the least-significant bit.
type Cell struct {
	Kind   Kind
	Name   string
	Pins   []string
	tt     uint32 // output bit per input vector; valid for len(Pins) <= 5
	inputs int
}

// NumInputs returns the number of input pins of the cell.
func (c *Cell) NumInputs() int { return c.inputs }

// Eval evaluates the cell for the given input vector (pin 0 = bit 0).
func (c *Cell) Eval(inputs uint32) bool {
	return c.tt>>(inputs&(1<<c.inputs-1))&1 == 1
}

// TruthTable exposes the raw truth table, mainly for tests and for exact
// cone simulation during MATE verification.
func (c *Cell) TruthTable() uint32 { return c.tt }

func (c *Cell) String() string { return c.Name }

// lib holds the singleton library, indexed by Kind.
var lib [numKinds]*Cell

// Lookup returns the library cell of the given kind.
func Lookup(k Kind) *Cell {
	if int(k) >= int(numKinds) {
		panic(fmt.Sprintf("cell: unknown kind %d", k))
	}
	return lib[k]
}

// All returns every cell in the library in Kind order.
func All() []*Cell {
	out := make([]*Cell, numKinds)
	copy(out, lib[:])
	return out
}

// define registers one cell computed from fn over its input count.
func define(k Kind, name string, pins []string, fn func(in uint32) bool) {
	n := len(pins)
	if n > MaxInputs {
		panic("cell: too many pins for " + name)
	}
	var tt uint32
	for v := uint32(0); v < 1<<n; v++ {
		if fn(v) {
			tt |= 1 << v
		}
	}
	lib[k] = &Cell{Kind: k, Name: name, Pins: pins, tt: tt, inputs: n}
}

func bit(v uint32, i int) bool { return v>>i&1 == 1 }

func init() {
	define(TIE0, "TIE0", nil, func(uint32) bool { return false })
	define(TIE1, "TIE1", nil, func(uint32) bool { return true })
	define(BUF, "BUF", []string{"A"}, func(v uint32) bool { return bit(v, 0) })
	define(INV, "INV", []string{"A"}, func(v uint32) bool { return !bit(v, 0) })

	andN := func(n int) func(uint32) bool {
		return func(v uint32) bool { return v&(1<<n-1) == 1<<n-1 }
	}
	orN := func(n int) func(uint32) bool {
		return func(v uint32) bool { return v&(1<<n-1) != 0 }
	}
	not := func(fn func(uint32) bool) func(uint32) bool {
		return func(v uint32) bool { return !fn(v) }
	}
	define(AND2, "AND2", []string{"A", "B"}, andN(2))
	define(AND3, "AND3", []string{"A", "B", "C"}, andN(3))
	define(AND4, "AND4", []string{"A", "B", "C", "D"}, andN(4))
	define(NAND2, "NAND2", []string{"A", "B"}, not(andN(2)))
	define(NAND3, "NAND3", []string{"A", "B", "C"}, not(andN(3)))
	define(NAND4, "NAND4", []string{"A", "B", "C", "D"}, not(andN(4)))
	define(OR2, "OR2", []string{"A", "B"}, orN(2))
	define(OR3, "OR3", []string{"A", "B", "C"}, orN(3))
	define(OR4, "OR4", []string{"A", "B", "C", "D"}, orN(4))
	define(NOR2, "NOR2", []string{"A", "B"}, not(orN(2)))
	define(NOR3, "NOR3", []string{"A", "B", "C"}, not(orN(3)))
	define(NOR4, "NOR4", []string{"A", "B", "C", "D"}, not(orN(4)))
	define(XOR2, "XOR2", []string{"A", "B"}, func(v uint32) bool { return bit(v, 0) != bit(v, 1) })
	define(XNOR2, "XNOR2", []string{"A", "B"}, func(v uint32) bool { return bit(v, 0) == bit(v, 1) })
	define(MUX2, "MUX2", []string{"A", "B", "S"}, func(v uint32) bool {
		if bit(v, 2) {
			return bit(v, 1)
		}
		return bit(v, 0)
	})
	define(AOI21, "AOI21", []string{"A", "B", "C"}, func(v uint32) bool {
		return !(bit(v, 0) && bit(v, 1) || bit(v, 2))
	})
	define(AOI22, "AOI22", []string{"A", "B", "C", "D"}, func(v uint32) bool {
		return !(bit(v, 0) && bit(v, 1) || bit(v, 2) && bit(v, 3))
	})
	define(OAI21, "OAI21", []string{"A", "B", "C"}, func(v uint32) bool {
		return !((bit(v, 0) || bit(v, 1)) && bit(v, 2))
	})
	define(OAI22, "OAI22", []string{"A", "B", "C", "D"}, func(v uint32) bool {
		return !((bit(v, 0) || bit(v, 1)) && (bit(v, 2) || bit(v, 3)))
	})
	define(MAJ3, "MAJ3", []string{"A", "B", "C"}, func(v uint32) bool {
		n := 0
		for i := 0; i < 3; i++ {
			if bit(v, i) {
				n++
			}
		}
		return n >= 2
	})
}
