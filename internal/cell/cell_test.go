package cell

import (
	"testing"
	"testing/quick"
)

func TestEvalBasicGates(t *testing.T) {
	cases := []struct {
		kind Kind
		in   uint32
		want bool
	}{
		{TIE0, 0, false},
		{TIE1, 0, true},
		{BUF, 0, false},
		{BUF, 1, true},
		{INV, 0, true},
		{INV, 1, false},
		{AND2, 0b11, true},
		{AND2, 0b01, false},
		{AND2, 0b10, false},
		{AND2, 0b00, false},
		{NAND2, 0b11, false},
		{NAND2, 0b00, true},
		{OR2, 0b00, false},
		{OR2, 0b10, true},
		{NOR2, 0b00, true},
		{NOR2, 0b01, false},
		{XOR2, 0b01, true},
		{XOR2, 0b11, false},
		{XNOR2, 0b11, true},
		{XNOR2, 0b10, false},
		{AND4, 0b1111, true},
		{AND4, 0b0111, false},
		{OR4, 0b0000, false},
		{OR4, 0b1000, true},
		{NOR4, 0b0000, true},
		{NAND4, 0b1111, false},
	}
	for _, c := range cases {
		got := Lookup(c.kind).Eval(c.in)
		if got != c.want {
			t.Errorf("%s(%04b) = %v, want %v", Lookup(c.kind).Name, c.in, got, c.want)
		}
	}
}

func TestEvalMux2(t *testing.T) {
	m := Lookup(MUX2)
	// pins (A, B, S): S=0 -> A, S=1 -> B
	for a := uint32(0); a < 2; a++ {
		for b := uint32(0); b < 2; b++ {
			in := a | b<<1 // S=0
			if got := m.Eval(in); got != (a == 1) {
				t.Errorf("MUX2 S=0 A=%d B=%d = %v", a, b, got)
			}
			in |= 1 << 2 // S=1
			if got := m.Eval(in); got != (b == 1) {
				t.Errorf("MUX2 S=1 A=%d B=%d = %v", a, b, got)
			}
		}
	}
}

func TestEvalComplexGates(t *testing.T) {
	aoi21 := Lookup(AOI21)
	for v := uint32(0); v < 8; v++ {
		a, b, c := v&1 == 1, v>>1&1 == 1, v>>2&1 == 1
		want := !(a && b || c)
		if got := aoi21.Eval(v); got != want {
			t.Errorf("AOI21(%03b) = %v, want %v", v, got, want)
		}
	}
	oai22 := Lookup(OAI22)
	for v := uint32(0); v < 16; v++ {
		a, b, c, d := v&1 == 1, v>>1&1 == 1, v>>2&1 == 1, v>>3&1 == 1
		want := !((a || b) && (c || d))
		if got := oai22.Eval(v); got != want {
			t.Errorf("OAI22(%04b) = %v, want %v", v, got, want)
		}
	}
	maj := Lookup(MAJ3)
	for v := uint32(0); v < 8; v++ {
		n := 0
		for i := 0; i < 3; i++ {
			n += int(v >> i & 1)
		}
		if got := maj.Eval(v); got != (n >= 2) {
			t.Errorf("MAJ3(%03b) = %v", v, got)
		}
	}
}

func TestAllCellsRegistered(t *testing.T) {
	for _, c := range All() {
		if c == nil {
			t.Fatal("library has unregistered cell slot")
		}
		if c.NumInputs() != len(c.Pins) {
			t.Errorf("%s: NumInputs %d != len(Pins) %d", c.Name, c.NumInputs(), len(c.Pins))
		}
		if c.NumInputs() > MaxInputs {
			t.Errorf("%s: too many inputs", c.Name)
		}
	}
}

// TestMaskingMuxSelect reproduces the paper's worked example: for
// MUX(x, a, b) with faulty select x, GM = {(¬a∧¬b), (a∧b)}.
func TestMaskingMuxSelect(t *testing.T) {
	m := Lookup(MUX2)
	terms := MaskingTerms(m, 1<<2) // pin 2 = S faulty
	if len(terms) != 2 {
		t.Fatalf("MUX2{S}: got %d terms (%v), want 2", len(terms), terms)
	}
	want := map[GMTerm]bool{
		{Mask: 0b011, Value: 0b000}: true, // A=0 B=0
		{Mask: 0b011, Value: 0b011}: true, // A=1 B=1
	}
	for _, tm := range terms {
		if !want[tm] {
			t.Errorf("unexpected term %s", tm.String(m))
		}
	}
}

func TestMaskingAndOr(t *testing.T) {
	and2 := Lookup(AND2)
	// faulty A: B=0 masks
	terms := MaskingTerms(and2, 0b01)
	if len(terms) != 1 || terms[0].Mask != 0b10 || terms[0].Value != 0 {
		t.Errorf("AND2{A}: got %v", terms)
	}
	or2 := Lookup(OR2)
	// faulty A: B=1 masks
	terms = MaskingTerms(or2, 0b01)
	if len(terms) != 1 || terms[0].Mask != 0b10 || terms[0].Value != 0b10 {
		t.Errorf("OR2{A}: got %v", terms)
	}
	// AND4 faulty {A}: any other pin = 0 masks; three minimal terms.
	terms = MaskingTerms(Lookup(AND4), 0b0001)
	if len(terms) != 3 {
		t.Errorf("AND4{A}: got %d terms, want 3", len(terms))
	}
	for _, tm := range terms {
		if tm.NumLiterals() != 1 || tm.Value != 0 {
			t.Errorf("AND4{A}: non-minimal or wrong-polarity term %v", tm)
		}
	}
}

func TestMaskingXorHasNone(t *testing.T) {
	for _, k := range []Kind{XOR2, XNOR2, BUF, INV} {
		c := Lookup(k)
		for f := uint32(1); f < 1<<c.NumInputs(); f++ {
			if len(MaskingTerms(c, f)) != 0 {
				t.Errorf("%s faulty=%b: unexpected masking capability", c.Name, f)
			}
		}
	}
}

func TestMaskingAllPinsFaulty(t *testing.T) {
	// When every pin is faulty, nothing healthy remains to constrain; only
	// cells whose output is constant anyway could be masked. For AND2 the
	// output does depend on the inputs, so there must be no term.
	if terms := MaskingTerms(Lookup(AND2), 0b11); len(terms) != 0 {
		t.Errorf("AND2 all faulty: got %v", terms)
	}
}

func TestMaskingAOI21(t *testing.T) {
	// AOI21 out = !((A&B)|C). Faulty A: masked if B=0 (AND kills it) — C free.
	terms := MaskingTerms(Lookup(AOI21), 0b001)
	found := false
	for _, tm := range terms {
		if tm.Mask == 0b010 && tm.Value == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("AOI21{A}: expected B=0 term, got %v", terms)
	}
	// C=1 also masks (OR dominates): !((A&B)|1) = 0 regardless.
	found = false
	for _, tm := range terms {
		if tm.Mask == 0b100 && tm.Value == 0b100 {
			found = true
		}
	}
	if !found {
		t.Errorf("AOI21{A}: expected C=1 term, got %v", terms)
	}
}

// TestMaskingSoundness: property test — every derived term, under every
// completion of unconstrained pins, really makes the output independent of
// the faulty pins.
func TestMaskingSoundness(t *testing.T) {
	for _, c := range All() {
		n := c.NumInputs()
		for f := uint32(1); f < 1<<n; f++ {
			for _, tm := range MaskingTerms(c, f) {
				all := uint32(1<<n) - 1
				free := all &^ f &^ tm.Mask
				for comp := free; ; comp = (comp - 1) & free {
					base := tm.Value | comp
					ref := c.Eval(base)
					for fp := f; fp != 0; fp = (fp - 1) & f {
						if c.Eval(base|fp) != ref {
							t.Fatalf("%s faulty=%b term=%s: output depends on faulty pins", c.Name, f, tm.String(c))
						}
					}
					if comp == 0 {
						break
					}
				}
			}
		}
	}
}

// TestMaskingMinimality: no returned term may contain a strictly smaller
// returned term.
func TestMaskingMinimality(t *testing.T) {
	for _, c := range All() {
		for f := uint32(1); f < 1<<c.NumInputs(); f++ {
			terms := MaskingTerms(c, f)
			for i, a := range terms {
				for j, b := range terms {
					if i == j {
						continue
					}
					if b.Mask&a.Mask == b.Mask && b.Mask != a.Mask && b.Value == a.Value&b.Mask {
						t.Errorf("%s faulty=%b: term %s subsumes %s", c.Name, f, b.String(c), a.String(c))
					}
				}
			}
		}
	}
}

func TestMaskingCacheStable(t *testing.T) {
	a := MaskingTerms(Lookup(MUX2), 0b100)
	b := MaskingTerms(Lookup(MUX2), 0b100)
	if len(a) != len(b) {
		t.Fatal("cache returned different result")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("cache returned different terms")
		}
	}
}

// quick-check that Eval agrees with an independent reimplementation for the
// N-ary AND/OR families.
func TestEvalQuick(t *testing.T) {
	f := func(v uint32) bool {
		v &= 0b1111
		ok := true
		ok = ok && Lookup(AND4).Eval(v) == (v == 0b1111)
		ok = ok && Lookup(OR4).Eval(v) == (v != 0)
		ok = ok && Lookup(NAND4).Eval(v) == (v != 0b1111)
		ok = ok && Lookup(NOR4).Eval(v) == (v == 0)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGMTermLiteralAccessors(t *testing.T) {
	tm := GMTerm{Mask: 0b101, Value: 0b100}
	pls := tm.Pins()
	if len(pls) != 2 {
		t.Fatalf("got %d literals", len(pls))
	}
	if pls[0] != (PinLiteral{Pin: 0, Value: false}) || pls[1] != (PinLiteral{Pin: 2, Value: true}) {
		t.Errorf("unexpected literals %v", pls)
	}
	if tm.NumLiterals() != 2 {
		t.Errorf("NumLiterals = %d", tm.NumLiterals())
	}
}
