package cell

import (
	"sort"
	"strings"
	"sync"
)

// GMTerm is a gate-masking term: a partial assignment to the healthy
// (non-faulty) input pins of a cell that forces the cell's output to be
// independent of the values on the faulty pins. When all literals of the
// term hold, a fault arriving on any combination of the faulty pins is
// stopped at this gate (paper, Section 4: "for every gate type, we iterate
// over all combinations of faulty input wires and find all input-pin
// assignments that will mask the current faulty-input set").
//
// Mask has one bit per pin; a set bit means the pin is constrained, and the
// corresponding bit of Value gives the required level. Pins in the faulty
// set are never constrained.
type GMTerm struct {
	Mask  uint32
	Value uint32
}

// Pins returns the constrained pins and their required values.
func (t GMTerm) Pins() []PinLiteral {
	var out []PinLiteral
	for i := 0; i < MaxInputs; i++ {
		if t.Mask>>i&1 == 1 {
			out = append(out, PinLiteral{Pin: i, Value: t.Value>>i&1 == 1})
		}
	}
	return out
}

// NumLiterals returns the number of constrained pins.
func (t GMTerm) NumLiterals() int {
	n := 0
	for m := t.Mask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// PinLiteral is one (pin, value) constraint of a GMTerm.
type PinLiteral struct {
	Pin   int
	Value bool
}

// String renders a term like "A=0 B=1" using the cell's pin names.
func (t GMTerm) String(c *Cell) string {
	var parts []string
	for _, pl := range t.Pins() {
		v := "0"
		if pl.Value {
			v = "1"
		}
		parts = append(parts, c.Pins[pl.Pin]+"="+v)
	}
	return strings.Join(parts, " ")
}

type gmKey struct {
	kind   Kind
	faulty uint32
}

var (
	gmMu    sync.Mutex
	gmCache = map[gmKey][]GMTerm{}
)

// MaskingTerms returns the minimal gate-masking terms for the given cell and
// faulty-pin set. The result is empty when the cell has no fault-masking
// capability for that set (e.g. any faulty pin of an XOR gate, or when all
// pins are faulty). Results are memoized per (kind, faulty set).
//
// A partial assignment A masks the faulty set F iff for every completion of
// the pins not constrained by A and not in F, the output is the same for all
// 2^|F| values of the faulty pins. Only minimal assignments (no constrained
// pin can be dropped) are returned; any superset assignment is implied.
func MaskingTerms(c *Cell, faulty uint32) []GMTerm {
	faulty &= 1<<c.inputs - 1
	if faulty == 0 {
		// Nothing is faulty; the (empty) term trivially "masks".
		return []GMTerm{{}}
	}
	key := gmKey{c.Kind, faulty}
	gmMu.Lock()
	if terms, ok := gmCache[key]; ok {
		gmMu.Unlock()
		return terms
	}
	gmMu.Unlock()

	terms := deriveMaskingTerms(c, faulty)
	gmMu.Lock()
	gmCache[key] = terms
	gmMu.Unlock()
	return terms
}

func deriveMaskingTerms(c *Cell, faulty uint32) []GMTerm {
	n := c.inputs
	all := uint32(1<<n) - 1
	healthy := all &^ faulty

	var healthyPins []int
	for i := 0; i < n; i++ {
		if healthy>>i&1 == 1 {
			healthyPins = append(healthyPins, i)
		}
	}

	var kept []GMTerm
	// Enumerate partial assignments over healthy pins by popcount order so
	// that minimality filtering only needs to check already-kept subsets.
	type cand struct{ mask, value uint32 }
	var cands []cand
	// All subsets of healthy pins.
	for sub := healthy; ; sub = (sub - 1) & healthy {
		// all value patterns over sub
		var enum func(bits uint32, idx int, val uint32)
		enum = func(bits uint32, idx int, val uint32) {
			if idx == len(healthyPins) {
				cands = append(cands, cand{bits, val})
				return
			}
			p := healthyPins[idx]
			if bits>>p&1 == 0 {
				enum(bits, idx+1, val)
				return
			}
			enum(bits, idx+1, val)
			enum(bits, idx+1, val|1<<p)
		}
		enum(sub, 0, 0)
		if sub == 0 {
			break
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		pi, pj := popcount(cands[i].mask), popcount(cands[j].mask)
		if pi != pj {
			return pi < pj
		}
		if cands[i].mask != cands[j].mask {
			return cands[i].mask < cands[j].mask
		}
		return cands[i].value < cands[j].value
	})

	for _, cd := range cands {
		// Skip if a kept minimal term is a sub-assignment of this one.
		sub := false
		for _, k := range kept {
			if k.Mask&cd.mask == k.Mask && k.Value == cd.value&k.Mask {
				sub = true
				break
			}
		}
		if sub {
			continue
		}
		if assignmentMasks(c, faulty, cd.mask, cd.value) {
			kept = append(kept, GMTerm{Mask: cd.mask, Value: cd.value})
		}
	}
	return kept
}

// assignmentMasks reports whether fixing the pins in `mask` to `value`
// makes the output independent of the pins in `faulty`, for every
// completion of the remaining pins.
func assignmentMasks(c *Cell, faulty, mask, value uint32) bool {
	n := c.inputs
	all := uint32(1<<n) - 1
	free := all &^ faulty &^ mask

	// Iterate over completions of free pins and all faulty patterns.
	for comp := free; ; comp = (comp - 1) & free {
		base := value | comp
		ref := c.Eval(base) // faulty pins all 0
		for fp := faulty; fp != 0; fp = (fp - 1) & faulty {
			if c.Eval(base|fp) != ref {
				return false
			}
		}
		if comp == 0 {
			break
		}
	}
	return true
}

// HasMaskingCapability reports whether the cell can mask at least one
// faulty-pin set with a non-trivial term, i.e. whether the gate is of any
// use to the MATE search. XOR/XNOR gates and buffers/inverters return
// false: a fault always propagates through them.
func HasMaskingCapability(c *Cell, faulty uint32) bool {
	return len(MaskingTerms(c, faulty)) > 0
}

func popcount(v uint32) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
