// Package progs contains the two benchmark programs of the paper — a
// Fibonacci sequence computation (fib) and a 1-D convolution (conv) — for
// both processor targets. "Two test programs (i.e., a Fibonacci sequence
// computation and a convolution function), which use different instruction
// subsets, were implemented for both processors" (Section 5.1); both traces
// span 8500 clock cycles (Tables 2 and 3).
//
// fib exercises the ALU/branch subset; conv additionally exercises
// loads/stores and a software shift-add multiply, touching wider parts of
// the datapath.
package progs

import (
	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
)

// TraceCycles is the trace length used throughout the evaluation,
// matching the paper's 8500-cycle traces.
const TraceCycles = 8500

// AVRFibSrc computes 24 Fibonacci numbers (mod 256) per pass, storing the
// sequence to data memory and accumulating a checksum on the output port;
// 40 passes keep the core busy past 8500 cycles before halting.
const AVRFibSrc = `
; fib for the AVR-class core
    ldi r10, 0        ; checksum
    ldi r11, 40       ; outer passes
outer:
    ldi r1, 0         ; f(i)
    ldi r2, 1         ; f(i+1)
    ldi r3, 0         ; store pointer
    ldi r4, 24        ; numbers per pass
inner:
    st (r3), r1
    mov r5, r2
    add r2, r1        ; f(i+1) += f(i)
    mov r1, r5        ; f(i) = old f(i+1)
    add r10, r1
    inc r3
    dec r4
    brne inner
    out r10
    dec r11
    brne outer
    halt
`

// AVRConvSrc initialises x[0..19] and a 4-tap kernel in data memory, then
// computes y[n] = sum_k x[n+k]*h[k] (mod 256) for n = 0..15 with a
// shift-add multiply, twice, accumulating a checksum on the port.
const AVRConvSrc = `
; conv for the AVR-class core
    ldi r1, 0         ; ptr
    ldi r2, 3         ; x value
initx:
    st (r1), r2
    subi r2, 249      ; value += 7 (mod 256)
    inc r1
    cpi r1, 20
    brne initx
    ldi r1, 32        ; kernel h = {1, 2, 3, 2} at 32..35
    ldi r2, 1
    st (r1), r2
    inc r1
    ldi r2, 2
    st (r1), r2
    inc r1
    ldi r2, 3
    st (r1), r2
    inc r1
    ldi r2, 2
    st (r1), r2
    ldi r13, 0        ; checksum
    ldi r9, 2         ; outer passes
outer:
    ldi r10, 0        ; n
ny:
    ldi r11, 0        ; acc = y[n]
    ldi r12, 0        ; k
nk:
    mov r3, r10
    add r3, r12
    ld r5, (r3)       ; a = x[n+k]
    mov r4, r12
    subi r4, 224      ; +32
    ld r6, (r4)       ; b = h[k]
    ldi r7, 0         ; prod
    ldi r8, 8         ; bits
mloop:
    lsr r6
    brcc mskip
    add r7, r5
mskip:
    add r5, r5        ; a <<= 1
    dec r8
    brne mloop
    add r11, r7
    inc r12
    cpi r12, 4
    brne nk
    mov r3, r10
    subi r3, 192      ; +64: y base
    st (r3), r11
    add r13, r11
    out r13
    inc r10
    cpi r10, 16
    brne ny
    dec r9
    brne outer
    halt
`

// MSP430FibSrc is fib for the MSP430-class core: 24 numbers per pass
// (16-bit arithmetic), 12 passes (the multi-cycle core needs ~4 cycles per
// instruction, so this comfortably exceeds 8500 cycles).
const MSP430FibSrc = `
; fib for the MSP430-class core
    movi r10, 0       ; checksum
    movi r11, 12      ; outer passes
outer:
    movi r1, 0        ; f(i)
    movi r2, 1        ; f(i+1)
    movi r3, 0        ; store pointer
    movi r4, 24       ; numbers per pass
inner:
    st (r3), r1
    mov r2, r5        ; r5 = f(i+1)
    add r1, r2        ; f(i+1) += f(i)
    mov r5, r1        ; f(i) = old f(i+1)
    add r1, r10       ; checksum += f(i)
    addi r3, 1
    addi r4, -1
    jne inner
    out r10
    addi r11, -1
    jne outer
    halt
`

// MSP430ConvSrc is conv for the MSP430-class core. The ISA has no shift
// instruction, so the multiply walks a doubling bit mask; one pass over
// 16 outputs with a 4-tap kernel already spans more than 8500 cycles.
const MSP430ConvSrc = `
; conv for the MSP430-class core
    movi r1, 0        ; ptr
    movi r2, 3        ; x value
initx:
    st (r1), r2
    addi r2, 7
    addi r1, 1
    cmpi r1, 20
    jne initx
    movi r1, 32       ; kernel h = {1, 2, 3, 2}
    movi r2, 1
    st (r1), r2
    addi r1, 1
    movi r2, 2
    st (r1), r2
    addi r1, 1
    movi r2, 3
    st (r1), r2
    addi r1, 1
    movi r2, 2
    st (r1), r2
    movi r13, 0       ; checksum
    movi r0, 1        ; outer passes
outer:
    movi r10, 0       ; n
ny:
    movi r11, 0       ; acc = y[n]
    movi r12, 0       ; k
nk:
    mov r10, r3
    add r12, r3
    ld r5, (r3)       ; a = x[n+k]
    mov r12, r4
    addi r4, 32
    ld r7, (r4)       ; b = h[k]
    movi r8, 1        ; mask
    movi r9, 8        ; bits
mbit:
    mov r7, r6        ; tmp = b
    and r8, r6        ; tmp &= mask
    jeq mskip
    add r5, r11       ; acc += a
mskip:
    add r5, r5        ; a <<= 1
    add r8, r8        ; mask <<= 1
    addi r9, -1
    jne mbit
    addi r12, 1
    cmpi r12, 4
    jne nk
    mov r10, r3
    addi r3, 64
    st (r3), r11      ; y[64+n]
    add r11, r13
    out r13
    addi r10, 1
    cmpi r10, 16
    jne ny
    addi r0, -1
    jne outer
    halt
`

// AVRFib returns the assembled fib program for the AVR-class core.
func AVRFib() []uint16 { return avr.MustAssemble(AVRFibSrc) }

// AVRConv returns the assembled conv program for the AVR-class core.
func AVRConv() []uint16 { return avr.MustAssemble(AVRConvSrc) }

// MSP430Fib returns the assembled fib program for the MSP430-class core.
func MSP430Fib() []uint16 { return msp430.MustAssemble(MSP430FibSrc) }

// MSP430Conv returns the assembled conv program for the MSP430-class core.
func MSP430Conv() []uint16 { return msp430.MustAssemble(MSP430ConvSrc) }

// AVRSortSrc bubble-sorts a 12-element array in data memory (descending
// initial order modulo wrap), verifies via a checksum on the port, and
// repeats the init+sort cycle five times. Sorting exercises the
// compare/branch/swap idiom and data-memory traffic patterns neither fib
// nor conv produce.
const AVRSortSrc = `
; bubble sort for the AVR-class core
    ldi r13, 5        ; outer repetitions
outer:
    ldi r1, 0         ; init: x[i] = 11 + 37*i (mod 256)
    ldi r2, 11
initx:
    st (r1), r2
    subi r2, 219      ; += 37
    inc r1
    cpi r1, 12
    brne initx
    ldi r10, 11       ; bubble passes
pass:
    ldi r1, 0         ; index
bubble:
    mov r3, r1
    ld r5, (r3)       ; x[i]
    inc r3
    ld r6, (r3)       ; x[i+1]
    cp r6, r5         ; borrow (C=1) iff x[i+1] < x[i]
    brcc noswap
    st (r3), r5       ; swap
    dec r3
    st (r3), r6
noswap:
    inc r1
    cpi r1, 11
    brne bubble
    dec r10
    brne pass
    ldi r1, 0         ; checksum
    ldi r12, 0
sum:
    ld r5, (r1)
    add r12, r5
    inc r1
    cpi r1, 12
    brne sum
    out r12
    dec r13
    brne outer
    halt
`

// MSP430SortSrc is the same workload for the MSP430-class core (16-bit
// elements; on this ISA C = NOT borrow, so the swap branch uses jc).
const MSP430SortSrc = `
; bubble sort for the MSP430-class core
    movi r13, 2       ; outer repetitions (multi-cycle core is slower)
outer:
    movi r1, 0        ; init: x[i] = 11 + 37*i
    movi r2, 11
initx:
    st (r1), r2
    addi r2, 37
    addi r1, 1
    cmpi r1, 12
    jne initx
    movi r10, 11      ; bubble passes
pass:
    movi r1, 0        ; index
bubble:
    mov r1, r3
    ld r5, (r3)       ; x[i]
    addi r3, 1
    ld r6, (r3)       ; x[i+1]
    cmp r5, r6        ; r6 - r5: C=0 (borrow) iff x[i+1] < x[i]
    jc noswap
    st (r3), r5       ; swap
    addi r3, -1
    st (r3), r6
noswap:
    addi r1, 1
    cmpi r1, 11
    jne bubble
    addi r10, -1
    jne pass
    movi r1, 0        ; checksum
    movi r12, 0
sum:
    ld r5, (r1)
    add r5, r12
    addi r1, 1
    cmpi r1, 12
    jne sum
    out r12
    addi r13, -1
    jne outer
    halt
`

// AVRSort returns the assembled sort program for the AVR-class core.
func AVRSort() []uint16 { return avr.MustAssemble(AVRSortSrc) }

// MSP430Sort returns the assembled sort program for the MSP430-class core.
func MSP430Sort() []uint16 { return msp430.MustAssemble(MSP430SortSrc) }
