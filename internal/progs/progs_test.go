package progs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/prune"
)

// fibSeq returns the first n Fibonacci numbers (f0=0, f1=1) mod 2^bits.
func fibSeq(n int, bits uint) []uint64 {
	mask := uint64(1)<<bits - 1
	out := make([]uint64, n)
	a, b := uint64(0), uint64(1)
	for i := 0; i < n; i++ {
		out[i] = a & mask
		a, b = b&mask, (a+b)&mask
	}
	return out
}

// convRef computes y[n] = sum_k x[n+k]*h[k] mod 2^bits.
func convRef(x, h []uint64, n int, bits uint) []uint64 {
	mask := uint64(1)<<bits - 1
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		var acc uint64
		for k := range h {
			acc += x[i+k] * h[k]
		}
		out[i] = acc & mask
	}
	return out
}

func TestAVRFibISS(t *testing.T) {
	iss := avr.NewISS(AVRFib())
	iss.Run(100000)
	if !iss.Halted {
		t.Fatal("fib did not halt")
	}
	want := fibSeq(24, 8)
	for i, w := range want {
		if uint64(iss.DMem[i]) != w {
			t.Errorf("dmem[%d] = %d, want %d", i, iss.DMem[i], w)
		}
	}
	// checksum: 40 passes of sum(f1..f24) mod 256
	var sum uint64
	seq := fibSeq(26, 8)
	for i := 1; i <= 24; i++ {
		sum += seq[i]
	}
	want8 := uint8(40 * sum)
	if iss.Port != want8 {
		t.Errorf("port = %d, want %d", iss.Port, want8)
	}
}

func TestAVRConvISS(t *testing.T) {
	iss := avr.NewISS(AVRConv())
	iss.Run(200000)
	if !iss.Halted {
		t.Fatal("conv did not halt")
	}
	x := make([]uint64, 20)
	for i := range x {
		x[i] = uint64(uint8(3 + 7*i))
	}
	h := []uint64{1, 2, 3, 2}
	y := convRef(x, h, 16, 8)
	for n, w := range y {
		if uint64(iss.DMem[64+n]) != w {
			t.Errorf("y[%d] = %d, want %d", n, iss.DMem[64+n], w)
		}
	}
	var cs uint8
	for _, w := range y {
		cs += uint8(w)
	}
	cs *= 2 // two passes
	if iss.Port != cs {
		t.Errorf("port = %d, want %d", iss.Port, cs)
	}
}

func TestMSP430FibISS(t *testing.T) {
	iss := msp430.NewISS(MSP430Fib())
	iss.Run(100000)
	if !iss.Halted {
		t.Fatal("fib did not halt")
	}
	want := fibSeq(24, 16)
	for i, w := range want {
		if uint64(iss.DMem[i]) != w {
			t.Errorf("dmem[%d] = %d, want %d", i, iss.DMem[i], w)
		}
	}
	var sum uint64
	seq := fibSeq(26, 16)
	for i := 1; i <= 24; i++ {
		sum += seq[i]
	}
	want16 := uint16(12 * sum)
	if iss.Port != want16 {
		t.Errorf("port = %d, want %d", iss.Port, want16)
	}
}

func TestMSP430ConvISS(t *testing.T) {
	iss := msp430.NewISS(MSP430Conv())
	iss.Run(400000)
	if !iss.Halted {
		t.Fatal("conv did not halt")
	}
	x := make([]uint64, 20)
	for i := range x {
		x[i] = uint64(3 + 7*i)
	}
	h := []uint64{1, 2, 3, 2}
	y := convRef(x, h, 16, 16)
	for n, w := range y {
		if uint64(iss.DMem[64+n]) != w {
			t.Errorf("y[%d] = %d, want %d", n, iss.DMem[64+n], w)
		}
	}
	var cs uint16
	for _, w := range y {
		cs += uint16(w)
	}
	if iss.Port != cs {
		t.Errorf("port = %d, want %d", iss.Port, cs)
	}
}

// TestRuntimesExceedTraceLength: the paper records 8500-cycle traces; every
// program must keep its core busy at least that long.
func TestRuntimesExceedTraceLength(t *testing.T) {
	acore := avr.NewCore()
	for name, prog := range map[string][]uint16{"fib": AVRFib(), "conv": AVRConv()} {
		sys := avr.NewSystem(acore, prog)
		cycles := sys.Run(200000)
		if !sys.Halted() {
			t.Fatalf("avr %s did not halt", name)
		}
		if cycles < TraceCycles {
			t.Errorf("avr %s runs %d cycles, want >= %d", name, cycles, TraceCycles)
		}
		t.Logf("avr %s: %d cycles", name, cycles)
		sys.M.Reset()
	}
	mcore := msp430.NewCore()
	for name, prog := range map[string][]uint16{"fib": MSP430Fib(), "conv": MSP430Conv()} {
		sys := msp430.NewSystem(mcore, prog)
		cycles := sys.Run(400000)
		if !sys.Halted() {
			t.Fatalf("msp430 %s did not halt", name)
		}
		if cycles < TraceCycles {
			t.Errorf("msp430 %s runs %d cycles, want >= %d", name, cycles, TraceCycles)
		}
		t.Logf("msp430 %s: %d cycles", name, cycles)
		sys.M.Reset()
	}
}

// TestCosimPrograms runs every program on its netlist and compares the
// final architectural state with the ISS.
func TestCosimPrograms(t *testing.T) {
	acore := avr.NewCore()
	for name, prog := range map[string][]uint16{"fib": AVRFib(), "conv": AVRConv()} {
		iss := avr.NewISS(prog)
		iss.Run(200000)
		sys := avr.NewSystem(acore, prog)
		sys.Run(400000)
		if !sys.Halted() {
			t.Fatalf("avr %s netlist did not halt", name)
		}
		for r := 0; r < avr.NumRegs; r++ {
			if sys.Reg(r) != iss.Regs[r] {
				t.Errorf("avr %s r%d: %d vs %d", name, r, sys.Reg(r), iss.Regs[r])
			}
		}
		if sys.PortValue() != iss.Port {
			t.Errorf("avr %s port: %d vs %d", name, sys.PortValue(), iss.Port)
		}
		for a := 0; a < 256; a++ {
			if sys.DMem[a] != iss.DMem[a] {
				t.Errorf("avr %s dmem[%d]: %d vs %d", name, a, sys.DMem[a], iss.DMem[a])
			}
		}
		sys.M.Reset()
	}
	mcore := msp430.NewCore()
	for name, prog := range map[string][]uint16{"fib": MSP430Fib(), "conv": MSP430Conv()} {
		iss := msp430.NewISS(prog)
		iss.Run(400000)
		sys := msp430.NewSystem(mcore, prog)
		sys.Run(800000)
		if !sys.Halted() {
			t.Fatalf("msp430 %s netlist did not halt", name)
		}
		for r := 0; r < msp430.NumRegs; r++ {
			if sys.Reg(r) != iss.Regs[r] {
				t.Errorf("msp430 %s r%d: %d vs %d", name, r, sys.Reg(r), iss.Regs[r])
			}
		}
		if sys.PortValue() != iss.Port {
			t.Errorf("msp430 %s port: %d vs %d", name, sys.PortValue(), iss.Port)
		}
		for a := 0; a < 256; a++ {
			if sys.DMem[a] != iss.DMem[a] {
				t.Errorf("msp430 %s dmem[%d]: %d vs %d", name, a, sys.DMem[a], iss.DMem[a])
			}
		}
		sys.M.Reset()
	}
}

// sortRef computes the expected sorted array and checksum.
func sortRef(bits uint) (sorted []uint64, checksum uint64) {
	mask := uint64(1)<<bits - 1
	x := make([]uint64, 12)
	for i := range x {
		x[i] = (11 + 37*uint64(i)) & mask
	}
	// bubble sort ascending
	for p := 0; p < 11; p++ {
		for i := 0; i+1 < 12; i++ {
			if x[i+1] < x[i] {
				x[i], x[i+1] = x[i+1], x[i]
			}
		}
	}
	var cs uint64
	for _, v := range x {
		cs += v
	}
	return x, cs & mask
}

func TestAVRSortISS(t *testing.T) {
	iss := avr.NewISS(AVRSort())
	iss.Run(1 << 20)
	if !iss.Halted {
		t.Fatal("sort did not halt")
	}
	sorted, cs := sortRef(8)
	for i, w := range sorted {
		if uint64(iss.DMem[i]) != w {
			t.Errorf("x[%d] = %d, want %d", i, iss.DMem[i], w)
		}
	}
	if uint64(iss.Port) != cs {
		t.Errorf("port = %d, want %d", iss.Port, cs)
	}
}

func TestMSP430SortISS(t *testing.T) {
	iss := msp430.NewISS(MSP430Sort())
	iss.Run(1 << 20)
	if !iss.Halted {
		t.Fatal("sort did not halt")
	}
	sorted, cs := sortRef(16)
	for i, w := range sorted {
		if uint64(iss.DMem[i]) != w {
			t.Errorf("x[%d] = %d, want %d", i, iss.DMem[i], w)
		}
	}
	if uint64(iss.Port) != cs {
		t.Errorf("port = %d, want %d", iss.Port, cs)
	}
}

func TestSortCosimAndRuntime(t *testing.T) {
	acore := avr.NewCore()
	iss := avr.NewISS(AVRSort())
	iss.Run(1 << 20)
	sys := avr.NewSystem(acore, AVRSort())
	cycles := sys.Run(1 << 20)
	if !sys.Halted() {
		t.Fatal("netlist did not halt")
	}
	if cycles < TraceCycles {
		t.Errorf("avr sort runs %d cycles, want >= %d", cycles, TraceCycles)
	}
	if sys.PortValue() != iss.Port {
		t.Errorf("avr sort port: %d vs %d", sys.PortValue(), iss.Port)
	}
	for a := 0; a < 12; a++ {
		if sys.DMem[a] != iss.DMem[a] {
			t.Errorf("avr sort dmem[%d]: %d vs %d", a, sys.DMem[a], iss.DMem[a])
		}
	}

	mcore := msp430.NewCore()
	miss := msp430.NewISS(MSP430Sort())
	miss.Run(1 << 20)
	msys := msp430.NewSystem(mcore, MSP430Sort())
	mcycles := msys.Run(1 << 20)
	if !msys.Halted() {
		t.Fatal("msp430 sort did not halt")
	}
	if mcycles < TraceCycles {
		t.Errorf("msp430 sort runs %d cycles, want >= %d", mcycles, TraceCycles)
	}
	if msys.PortValue() != miss.Port {
		t.Errorf("msp430 sort port: %d vs %d", msys.PortValue(), miss.Port)
	}
	t.Logf("sort runtimes: avr %d cycles, msp430 %d cycles", cycles, mcycles)
}

// TestSortMATETransfer: MATE sets selected on fib still prune the sort
// trace — the transferability claim on a workload with very different
// memory behaviour.
func TestSortMATETransfer(t *testing.T) {
	c := avr.NewCore()
	set := coreSearch(t, c)
	fibTrace := avr.NewSystem(c, AVRFib()).Record(TraceCycles)
	sortTrace := avr.NewSystem(avr.NewCore(), AVRSort()).Record(TraceCycles)
	noRF := c.NL.FFQWires(avr.GroupRegFile)

	top := prune.SelectTopN(set, fibTrace, noRF, 50)
	onSort := prune.Evaluate(top, sortTrace, noRF)
	if onSort.Reduction() < 0.02 {
		t.Errorf("fib-selected MATEs prune only %.2f%% of sort", 100*onSort.Reduction())
	}
	t.Logf("fib-selected top-50 on sort: %.2f%%", 100*onSort.Reduction())
}

func coreSearch(t *testing.T, c *avr.Core) *core.MATESet {
	t.Helper()
	return core.Search(c.NL, c.NL.FFQWires(avr.GroupRegFile), core.DefaultSearchParams()).Set
}
