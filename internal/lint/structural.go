package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netlist"
)

func init() {
	Register(AnalyzerWireRefs)
	Register(AnalyzerPinCount)
	Register(AnalyzerDupNames)
	Register(AnalyzerMultiDriven)
	Register(AnalyzerUndriven)
	Register(AnalyzerCombCycle)
	Register(AnalyzerDeadLogic)
}

// AnalyzerWireRefs reports out-of-range wire references, including
// unconnected flip-flop D inputs. These are collected during fact
// computation because every other analyzer must already skip them.
var AnalyzerWireRefs = &Analyzer{
	Name: "wire-refs",
	Doc:  "gates, flip-flops and ports must reference existing wires",
	Kind: KindStructural,
	Run: func(p *Pass) {
		for _, ref := range p.Facts.BadRefs {
			p.Report(SeverityError, "", ref)
		}
	},
}

// AnalyzerPinCount checks every gate instance against its library cell: the
// number of connected input pins must match the cell's pin list (a width
// mismatch corrupts truth-table evaluation and GM-term pin translation).
var AnalyzerPinCount = &Analyzer{
	Name: "pin-count",
	Doc:  "gate instances must match their library cell's pin count",
	Kind: KindStructural,
	Run: func(p *Pass) {
		for gi := range p.NL.Gates {
			g := &p.NL.Gates[gi]
			if g.Cell == nil {
				p.Reportf(SeverityError, "gate "+g.Name, "has no library cell")
				continue
			}
			if len(g.Inputs) != g.Cell.NumInputs() {
				p.Reportf(SeverityError, "gate "+g.Name,
					"connects %d input pins, cell %s has %d (%s)",
					len(g.Inputs), g.Cell.Name, g.Cell.NumInputs(),
					strings.Join(g.Cell.Pins, ","))
			}
		}
	},
}

// AnalyzerDupNames reports wires sharing one qualified name. Name lookups
// (WireByName, MATE-set I/O, VCD matching) silently resolve to one of the
// duplicates, so this is an error even though simulation would still work.
var AnalyzerDupNames = &Analyzer{
	Name: "dup-wire-names",
	Doc:  "every wire name must be unique within the netlist",
	Kind: KindStructural,
	Run: func(p *Pass) {
		first := map[string]netlist.WireID{}
		for w := range p.NL.Wires {
			name := p.NL.Wires[w].Name
			if name == "" {
				continue
			}
			if prev, dup := first[name]; dup {
				p.Reportf(SeverityError, fmt.Sprintf("wire %q", name),
					"duplicate wire name (wires %d and %d); name-based lookups are ambiguous", prev, w)
				continue
			}
			first[name] = netlist.WireID(w)
		}
	},
}

// AnalyzerMultiDriven reports wires with more than one driver. Such a wire
// has no defined value; the simulator would silently use whichever driver
// evaluates last.
var AnalyzerMultiDriven = &Analyzer{
	Name: "multi-driven",
	Doc:  "every wire must have exactly one driver",
	Kind: KindStructural,
	Run: func(p *Pass) {
		for w, ds := range p.Facts.Drivers {
			if len(ds) <= 1 {
				continue
			}
			descs := make([]string, len(ds))
			for i, d := range ds {
				descs[i] = describeDriver(p.NL, d)
			}
			p.Reportf(SeverityError, wireRef(p.NL, netlist.WireID(w)),
				"driven %d times: %s", len(ds), strings.Join(descs, ", "))
		}
	},
}

// AnalyzerUndriven reports undriven wires. A floating wire feeding a gate
// input, an FF D pin or a primary output makes every downstream value
// undefined (error); an undriven wire nothing reads is merely dead weight
// (warning).
var AnalyzerUndriven = &Analyzer{
	Name: "undriven",
	Doc:  "wires feeding logic or ports must have a driver",
	Kind: KindStructural,
	Run: func(p *Pass) {
		for w, ds := range p.Facts.Drivers {
			if len(ds) != 0 {
				continue
			}
			id := netlist.WireID(w)
			var feeds []string
			for _, fr := range p.Facts.GateSinks[w] {
				feeds = append(feeds, fmt.Sprintf("gate %s pin %d", p.NL.Gates[fr.Gate].Name, fr.Pin))
			}
			for _, fi := range p.Facts.FFSinks[w] {
				feeds = append(feeds, "ff "+p.NL.FFs[fi].Name+" D input")
			}
			if p.Facts.IsOutput[w] {
				feeds = append(feeds, "a primary output")
			}
			if len(feeds) == 0 {
				p.Report(SeverityWarning, wireRef(p.NL, id), "undriven and unused (dangling wire)")
				continue
			}
			p.Reportf(SeverityError, wireRef(p.NL, id),
				"undriven but feeds %s", strings.Join(feeds, ", "))
		}
	},
}

// AnalyzerCombCycle finds combinational cycles via Tarjan's SCC algorithm
// over the gate graph (gate u → every gate consuming u's output). Unlike
// the levelisation in Netlist.Finish — which only counts how many gates it
// failed to order — this names the gates on each cycle.
var AnalyzerCombCycle = &Analyzer{
	Name: "comb-cycle",
	Doc:  "the combinational gate graph must be acyclic",
	Kind: KindStructural,
	Run:  runCombCycle,
}

func runCombCycle(p *Pass) {
	ng := len(p.NL.Gates)
	const unvisited = -1
	index := make([]int32, ng)
	lowlink := make([]int32, ng)
	onStack := make([]bool, ng)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int32
	var next int32
	var sccs [][]int32

	var strongconnect func(v int32)
	strongconnect = func(v int32) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, fr := range gateSucc(p, v) {
			w := fr.Gate
			if index[w] == unvisited {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var scc []int32
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			} else if gateFeedsItself(p, scc[0]) {
				sccs = append(sccs, scc)
			}
		}
	}
	for v := int32(0); v < int32(ng); v++ {
		if index[v] == unvisited {
			strongconnect(v)
		}
	}

	for _, scc := range sccs {
		sort.Slice(scc, func(i, j int) bool { return scc[i] < scc[j] })
		names := make([]string, 0, len(scc))
		for i, gi := range scc {
			if i == 8 {
				names = append(names, fmt.Sprintf("… %d more", len(scc)-i))
				break
			}
			names = append(names, p.NL.Gates[gi].Name)
		}
		p.Reportf(SeverityError, fmt.Sprintf("cycle of %d gate(s)", len(scc)),
			"combinational cycle through %s", strings.Join(names, " → "))
	}
}

func gateFeedsItself(p *Pass, gi int32) bool {
	for _, fr := range gateSucc(p, gi) {
		if fr.Gate == gi {
			return true
		}
	}
	return false
}

// gateSucc returns the gate→gate successors of gi: the sinks of its output
// wire.
func gateSucc(p *Pass, gi int32) []netlist.FanoutRef {
	out := p.NL.Gates[gi].Output
	if out < 0 || int(out) >= len(p.Facts.GateSinks) {
		return nil
	}
	return p.Facts.GateSinks[out]
}

// AnalyzerDeadLogic reports gates and flip-flops from which no fault can
// ever reach architecturally visible state (an FF D input or a primary
// output). Dead logic inflates the fault list with points whose outcome is
// benign by construction; for flip-flops it additionally signals that the
// netlist models state the design never uses.
var AnalyzerDeadLogic = &Analyzer{
	Name: "dead-logic",
	Doc:  "cells and flip-flops must have a path to an FF D input or primary output",
	Kind: KindStructural,
	Run: func(p *Pass) {
		for gi := range p.NL.Gates {
			g := &p.NL.Gates[gi]
			if g.Output < 0 || int(g.Output) >= len(p.Facts.Observable) {
				continue // wire-refs reports this
			}
			if !p.Facts.Observable[g.Output] {
				p.Report(SeverityWarning, "gate "+g.Name,
					"dead cell: output reaches no FF D input or primary output")
			}
		}
		for fi := range p.NL.FFs {
			ff := &p.NL.FFs[fi]
			if ff.Q < 0 || int(ff.Q) >= len(p.Facts.Observable) {
				continue
			}
			if !p.Facts.Observable[ff.Q] {
				p.Report(SeverityWarning, "ff "+ff.Name,
					"unobservable flip-flop: Q reaches no FF D input or primary output")
			}
		}
	},
}
