package lint

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netlist"
)

func init() {
	Register(AnalyzerMateBorder)
	Register(AnalyzerMateSet)
}

// AnalyzerMateBorder checks that every literal of every MATE lies on the
// border of the fault cone of every wire the MATE claims to mask. During an
// SEU on a cone source, every wire inside the cone is mistrusted (paper,
// Section 4) — a literal over an in-cone wire conditions the trigger on a
// potentially corrupted value and voids the soundness argument. A literal
// outside the cone but not feeding any cone gate cannot contribute to
// masking either; both cases indicate a malformed or hand-edited MATE set.
var AnalyzerMateBorder = &Analyzer{
	Name:          "mate-border",
	Doc:           "every MATE literal must lie on the border of each masked wire's fault cone",
	Kind:          KindSemantic,
	NeedsMATEs:    true,
	NeedsFinished: true,
	Run:           runMateBorder,
}

func runMateBorder(p *Pass) {
	type coneInfo struct {
		cone   *core.Cone
		border map[netlist.WireID]bool
	}
	cones := map[netlist.WireID]*coneInfo{}
	coneOf := func(w netlist.WireID) *coneInfo {
		if ci, ok := cones[w]; ok {
			return ci
		}
		cone := core.ComputeCone(p.NL, w)
		border := map[netlist.WireID]bool{}
		for _, b := range cone.BorderWires(p.NL) {
			border[b] = true
		}
		ci := &coneInfo{cone: cone, border: border}
		cones[w] = ci
		return ci
	}

	for mi, m := range p.MATESet.MATEs {
		obj := mateRef(p.NL, mi, m)
		for _, mask := range m.Masks {
			if mask < 0 || int(mask) >= p.NL.NumWires() {
				p.Reportf(SeverityError, obj, "masks invalid wire %d", mask)
				continue
			}
			ci := coneOf(mask)
			for _, l := range m.Literals {
				if l.Wire < 0 || int(l.Wire) >= p.NL.NumWires() {
					p.Reportf(SeverityError, obj, "literal references invalid wire %d", l.Wire)
					continue
				}
				if ci.border[l.Wire] {
					continue
				}
				if ci.cone.InCone[l.Wire] {
					p.Reportf(SeverityError, obj,
						"literal %s lies inside the fault cone of masked %s (mistrusted during the SEU)",
						wireRef(p.NL, l.Wire), wireRef(p.NL, mask))
				} else {
					p.Reportf(SeverityError, obj,
						"literal %s is not on the border of the fault cone of masked %s",
						wireRef(p.NL, l.Wire), wireRef(p.NL, mask))
				}
			}
		}
	}
}

// AnalyzerMateSet flags redundancy and contradiction within a loaded MATE
// set: terms that can never trigger (a wire required to be both 0 and 1),
// exact duplicates of another term's literal set, and terms subsumed by a
// weaker term that masks at least the same wires. None of these break
// soundness, but they waste trigger hardware — the paper's cost metric.
var AnalyzerMateSet = &Analyzer{
	Name:       "mate-set",
	Doc:        "MATE sets should be free of contradictory, duplicate and subsumed terms",
	Kind:       KindSemantic,
	NeedsMATEs: true,
	Run:        runMateSet,
}

func runMateSet(p *Pass) {
	mates := p.MATESet.MATEs

	// Contradictions: same wire with both polarities in one conjunction.
	for mi, m := range mates {
		seen := map[netlist.WireID]bool{}
		for _, l := range m.Literals {
			prev, ok := seen[l.Wire]
			if ok && prev != l.Value {
				p.Reportf(SeverityWarning, mateRef(p.NL, mi, m),
					"contradictory literals on %s: the MATE can never trigger", wireRef(p.NL, l.Wire))
				break
			}
			seen[l.Wire] = l.Value
		}
	}

	// Duplicates: identical literal sets should have been merged into one
	// MATE with the union of the mask lists.
	byKey := map[string]int{}
	dup := make([]bool, len(mates))
	for mi, m := range mates {
		key := m.Key()
		if first, ok := byKey[key]; ok {
			dup[mi] = true
			p.Reportf(SeverityWarning, mateRef(p.NL, mi, m),
				"duplicate of MATE #%d (same literal set); merge their mask lists", first)
			continue
		}
		byKey[key] = mi
	}

	// Subsumption: MATE i is redundant when some other MATE j triggers at
	// least as often (literals(j) ⊆ literals(i)) and masks at least the
	// same wires (masks(i) ⊆ masks(j)).
	lits := make([]map[netlist.WireID]bool, len(mates))
	masks := make([]map[netlist.WireID]bool, len(mates))
	for mi, m := range mates {
		lits[mi] = map[netlist.WireID]bool{}
		for _, l := range m.Literals {
			lits[mi][l.Wire] = l.Value
		}
		masks[mi] = map[netlist.WireID]bool{}
		for _, w := range m.Masks {
			masks[mi][w] = true
		}
	}
	litSubset := func(j, i int) bool {
		if len(mates[j].Literals) > len(mates[i].Literals) {
			return false
		}
		for _, l := range mates[j].Literals {
			v, ok := lits[i][l.Wire]
			if !ok || v != l.Value {
				return false
			}
		}
		return true
	}
	maskSubset := func(i, j int) bool {
		if len(masks[i]) > len(masks[j]) {
			return false
		}
		for w := range masks[i] {
			if !masks[j][w] {
				return false
			}
		}
		return true
	}
	for mi := range mates {
		if dup[mi] {
			continue // already reported as duplicate
		}
		for mj := range mates {
			if mi == mj || dup[mj] {
				continue
			}
			if len(mates[mj].Literals) == len(mates[mi].Literals) && mates[mj].Key() == mates[mi].Key() {
				continue // exact duplicates handled above
			}
			if litSubset(mj, mi) && maskSubset(mi, mj) {
				p.Reportf(SeverityWarning, mateRef(p.NL, mi, mates[mi]),
					"subsumed by MATE #%d, which triggers at least as often and masks the same wires", mj)
				break
			}
		}
	}
}

// mateRef renders a stable reference to one MATE of the set: its index plus
// its rendered conjunction (truncated — literal sets are small by
// construction).
func mateRef(nl *netlist.Netlist, idx int, m *core.MATE) string {
	s := m.String(nl)
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return fmt.Sprintf("MATE #%d (%s)", idx, s)
}
