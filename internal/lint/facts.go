package lint

import (
	"fmt"

	"repro/internal/netlist"
)

// Facts is the structural index the analyzers share. Unlike the derived
// structures built by Netlist.Finish, it is computed from the exported
// netlist fields only and tolerates ill-formed circuits: a wire may have
// zero or several drivers, gates may reference out-of-range wires, FF D
// inputs may be unconnected. Out-of-range references are collected in
// BadRefs rather than indexed.
type Facts struct {
	NL *netlist.Netlist

	// Drivers lists every driver of each wire (a well-formed netlist has
	// exactly one per wire).
	Drivers [][]netlist.Driver
	// GateSinks lists the gate pins consuming each wire.
	GateSinks [][]netlist.FanoutRef
	// FFSinks lists the flip-flops whose D input is each wire.
	FFSinks [][]int32
	// IsInput / IsOutput mark the primary ports.
	IsInput, IsOutput []bool
	// Observable marks wires from which a fault can reach an FF D input or
	// a primary output (transitively through gates). Unobservable logic is
	// dead weight: a fault there can never matter.
	Observable []bool
	// BadRefs records out-of-range wire references (including unconnected
	// FF D inputs), one human-readable description each.
	BadRefs []string
}

// ComputeFacts indexes the netlist for the structural analyzers.
func ComputeFacts(nl *netlist.Netlist) *Facts {
	nw := nl.NumWires()
	f := &Facts{
		NL:         nl,
		Drivers:    make([][]netlist.Driver, nw),
		GateSinks:  make([][]netlist.FanoutRef, nw),
		FFSinks:    make([][]int32, nw),
		IsInput:    make([]bool, nw),
		IsOutput:   make([]bool, nw),
		Observable: make([]bool, nw),
	}
	valid := func(w netlist.WireID) bool { return w >= 0 && int(w) < nw }
	badRef := func(format string, args ...any) {
		f.BadRefs = append(f.BadRefs, fmt.Sprintf(format, args...))
	}

	for i, w := range nl.Inputs {
		if !valid(w) {
			badRef("primary input #%d references invalid wire %d", i, w)
			continue
		}
		f.IsInput[w] = true
		f.Drivers[w] = append(f.Drivers[w], netlist.Driver{Kind: netlist.DriverInput, Index: int32(i)})
	}
	for gi := range nl.Gates {
		g := &nl.Gates[gi]
		if valid(g.Output) {
			f.Drivers[g.Output] = append(f.Drivers[g.Output], netlist.Driver{Kind: netlist.DriverGate, Index: int32(gi)})
		} else {
			badRef("gate %s drives invalid wire %d", g.Name, g.Output)
		}
		for pin, in := range g.Inputs {
			if !valid(in) {
				badRef("gate %s pin %d reads invalid wire %d", g.Name, pin, in)
				continue
			}
			f.GateSinks[in] = append(f.GateSinks[in], netlist.FanoutRef{Gate: int32(gi), Pin: int8(pin)})
		}
	}
	for fi := range nl.FFs {
		ff := &nl.FFs[fi]
		if valid(ff.Q) {
			f.Drivers[ff.Q] = append(f.Drivers[ff.Q], netlist.Driver{Kind: netlist.DriverFF, Index: int32(fi)})
		} else {
			badRef("ff %s drives invalid Q wire %d", ff.Name, ff.Q)
		}
		if valid(ff.D) {
			f.FFSinks[ff.D] = append(f.FFSinks[ff.D], int32(fi))
		} else if ff.D == netlist.NoWire {
			badRef("ff %s has an unconnected D input", ff.Name)
		} else {
			badRef("ff %s has invalid D wire %d", ff.Name, ff.D)
		}
	}
	for i, w := range nl.Outputs {
		if !valid(w) {
			badRef("primary output #%d references invalid wire %d", i, w)
			continue
		}
		f.IsOutput[w] = true
	}

	f.computeObservability()
	return f
}

// computeObservability is the backward counterpart of core.ComputeCone's
// forward reachability: instead of growing a cone from one fault source, it
// grows the observed set backward from every sink (FF D inputs and primary
// outputs) at once. A wire is observable iff it is a sink or feeds a gate
// whose output is observable.
func (f *Facts) computeObservability() {
	var stack []netlist.WireID
	mark := func(w netlist.WireID) {
		if !f.Observable[w] {
			f.Observable[w] = true
			stack = append(stack, w)
		}
	}
	for w := range f.Observable {
		if f.IsOutput[w] || len(f.FFSinks[w]) > 0 {
			mark(netlist.WireID(w))
		}
	}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range f.Drivers[w] {
			if d.Kind != netlist.DriverGate {
				continue
			}
			for _, in := range f.NL.Gates[d.Index].Inputs {
				if in >= 0 && int(in) < len(f.Observable) {
					mark(in)
				}
			}
		}
	}
}

// wireRef renders a wire reference for diagnostics: `wire "name"`.
func wireRef(nl *netlist.Netlist, w netlist.WireID) string {
	if w < 0 || int(w) >= nl.NumWires() {
		return fmt.Sprintf("wire#%d", w)
	}
	return fmt.Sprintf("wire %q", nl.WireName(w))
}

// describeDriver renders one driver for diagnostics.
func describeDriver(nl *netlist.Netlist, d netlist.Driver) string {
	switch d.Kind {
	case netlist.DriverInput:
		return fmt.Sprintf("primary input #%d", d.Index)
	case netlist.DriverGate:
		return "gate " + nl.Gates[d.Index].Name
	case netlist.DriverFF:
		return "ff " + nl.FFs[d.Index].Name
	}
	return "unknown driver"
}
