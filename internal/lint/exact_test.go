package lint

import (
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/netlist"
)

// andGateNetlist: ff gated by in0 into ff2; the masking condition of ff is
// exactly ¬in0.
func andGateNetlist(t *testing.T) (*netlist.Netlist, netlist.WireID, netlist.WireID) {
	t.Helper()
	b := netlist.NewBuilder("lint-exact")
	in0 := b.Input("in0")
	q := b.FFPlaceholder("ff", false, "")
	g := b.Gate(cell.AND2, q, in0)
	b.FF("ff2", g, false, "")
	b.SetFFD(q, in0)
	return b.MustNetlist(), q, in0
}

func TestMateExactSkippedWithoutOptIn(t *testing.T) {
	nl, q, in0 := andGateNetlist(t)
	set := &core.MATESet{MATEs: []*core.MATE{{
		Literals: []core.Literal{{Wire: in0, Value: true}}, // unsound
		Masks:    []netlist.WireID{q},
	}}}
	res := Run(nl, Options{MATESet: set})
	if ds := byAnalyzer(res, "mate-exact"); len(ds) != 0 {
		t.Fatalf("mate-exact ran without Options.Exact: %v", ds)
	}
}

func TestMateExactSound(t *testing.T) {
	nl, q, in0 := andGateNetlist(t)
	set := &core.MATESet{MATEs: []*core.MATE{{
		Literals: []core.Literal{{Wire: in0, Value: false}},
		Masks:    []netlist.WireID{q},
	}}}
	res := Run(nl, Options{MATESet: set, Exact: &exact.Options{}})
	if ds := byAnalyzer(res, "mate-exact"); len(ds) != 0 {
		t.Fatalf("sound MATE flagged: %v", ds)
	}
}

func TestMateExactViolation(t *testing.T) {
	nl, q, in0 := andGateNetlist(t)
	_ = q
	set := &core.MATESet{MATEs: []*core.MATE{{
		Literals: []core.Literal{{Wire: in0, Value: true}},
		Masks:    []netlist.WireID{q},
	}}}
	res := Run(nl, Options{MATESet: set, Exact: &exact.Options{}})
	d := wantOne(t, res, "mate-exact", SeverityError, "does not imply the masking condition")
	if !strings.Contains(d.Message, "in0=1") {
		t.Errorf("message %q lacks the counterexample assignment", d.Message)
	}
	if !res.HasErrors() {
		t.Error("disproved MATE did not fail the run")
	}
}

func TestMateExactBadCertificate(t *testing.T) {
	nl, q, _ := andGateNetlist(t)
	set := &core.MATESet{Certificates: []core.Certificate{{Wire: q}}}
	res := Run(nl, Options{MATESet: set, Exact: &exact.Options{}})
	wantOne(t, res, "mate-exact", SeverityError, "certificate disproved")
}

func TestMateExactBudgetUnproven(t *testing.T) {
	nl, q, in0 := andGateNetlist(t)
	set := &core.MATESet{MATEs: []*core.MATE{{
		Literals: []core.Literal{{Wire: in0, Value: false}},
		Masks:    []netlist.WireID{q},
	}}}
	res := Run(nl, Options{MATESet: set, Exact: &exact.Options{NodeBudget: 1}})
	wantOne(t, res, "mate-exact", SeverityInfo, "node budget")
	if res.HasErrors() {
		t.Error("budget fallback must not be an error")
	}
}
