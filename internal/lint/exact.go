package lint

import (
	"strings"

	"repro/internal/exact"
)

func init() {
	Register(AnalyzerMateExact)
}

// AnalyzerMateExact independently re-proves the MATE set with the BDD
// engine of internal/exact: every MATE's literal conjunction must imply the
// exact masking condition of each wire it claims to mask, and every
// unmaskability certificate must be reproducible (condition ≡ ⊥, no MATE
// covering the certified wire). A disproved MATE is an error — the pruning
// layer would silently misclassify faults as benign. A cone that exceeds
// the BDD node budget is reported as info: the pair is unproven, not wrong.
var AnalyzerMateExact = &Analyzer{
	Name:          "mate-exact",
	Doc:           "every MATE must provably imply the exact masking condition of each masked wire (BDD proof)",
	Kind:          KindSemantic,
	NeedsMATEs:    true,
	NeedsExact:    true,
	NeedsFinished: true,
	Run:           runMateExact,
}

func runMateExact(p *Pass) {
	res := exact.VerifyMATESet(p.NL, p.MATESet, *p.Exact)
	for _, v := range res.Violations {
		m := p.MATESet.MATEs[v.MATE]
		var w strings.Builder
		for i, l := range v.Witness {
			if i > 0 {
				w.WriteString(" ")
			}
			val := byte('0')
			if l.Value {
				val = '1'
			}
			w.WriteString(p.NL.WireName(l.Wire))
			w.WriteByte('=')
			w.WriteByte(val)
		}
		p.Reportf(SeverityError, mateRef(p.NL, v.MATE, m),
			"does not imply the masking condition of %s; counterexample: %s",
			wireRef(p.NL, v.Wire), w.String())
	}
	for _, w := range res.BadCertificates {
		p.Reportf(SeverityError, wireRef(p.NL, w),
			"unmaskability certificate disproved: the masking condition is satisfiable (or a MATE covers the wire)")
	}
	for _, w := range res.Unproven {
		p.Reportf(SeverityInfo, wireRef(p.NL, w),
			"masking condition exceeded the BDD node budget; MATEs over this wire are unproven (not disproved)")
	}
}
