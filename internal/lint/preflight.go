package lint

import (
	"fmt"
	"io"

	"repro/internal/netlist"
)

// Preflight runs the structural analyzers over a freshly loaded netlist,
// printing any findings to w. It returns an error when the netlist has
// error-severity findings, or — under strict — any finding at all. The
// campaign tools (prune, campaign, matesearch) call this on every netlist
// load so malformed inputs fail fast instead of corrupting a whole
// campaign's pruning results.
func Preflight(w io.Writer, nl *netlist.Netlist, strict bool) error {
	res := Run(nl, Options{Analyzers: Structural()})
	for _, d := range res.Diagnostics {
		fmt.Fprintf(w, "lint: %s\n", d)
	}
	if res.Failed(strict) {
		return fmt.Errorf("netlist %q failed preflight lint: %d error(s), %d warning(s)",
			nl.Name, res.Errors, res.Warnings)
	}
	return nil
}
