package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders the diagnostics one per line, followed by a summary
// line. A clean result prints only the summary.
func (r *Result) WriteText(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintf(w, "%s\n", d); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "netlist %q: %d error(s), %d warning(s)\n", r.Netlist, r.Errors, r.Warnings)
	return err
}

// WriteJSON renders the whole result as one indented JSON object, suitable
// for machine consumption in CI.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
