package lint

import (
	"fmt"
	"strings"

	"repro/internal/cell"
)

func init() {
	Register(AnalyzerGMTerms)
}

// AnalyzerGMTerms exhaustively re-verifies every gate-masking term of the
// cell library against the cell's truth table. GM terms are the axioms of
// the whole MATE construction: an unsound term turns into unsound MATEs and
// silently wrong pruning. Because no library cell has more than
// cell.MaxInputs pins, full enumeration over all 2^n input vectors is exact
// and takes microseconds — this check is a proof, not a sample.
//
// The verifier is an independent implementation (it never reuses the
// derivation code in internal/cell): for every cell and every non-empty
// faulty-pin set it checks that each term is well-formed, sound
// (the output is independent of the faulty pins under the term) and minimal
// (no literal can be dropped), and that the term set is complete (every
// fully-assigned healthy-pin pattern that masks the faulty set satisfies
// some term).
var AnalyzerGMTerms = &Analyzer{
	Name: "gm-terms",
	Doc:  "gate-masking terms must be sound, minimal and complete (exhaustive truth-table check)",
	Kind: KindSemantic,
	Run: func(p *Pass) {
		for _, c := range cell.All() {
			if c.NumInputs() == 0 {
				continue // TIE cells have no pins to mask
			}
			all := uint32(1)<<c.NumInputs() - 1
			for faulty := uint32(1); faulty <= all; faulty++ {
				verifyCellTerms(p, c, faulty, p.Terms(c, faulty))
			}
		}
	},
}

// termMasks reports whether the partial assignment (mask, value) makes the
// cell output independent of the faulty pins: for every full input vector
// satisfying the assignment, the output equals the output with all faulty
// pins cleared. This is deliberately the dumbest possible formulation —
// iterate all 2^n vectors — so it shares no structure with the optimized
// derivation in internal/cell.
func termMasks(c *cell.Cell, faulty, mask, value uint32) bool {
	n := c.NumInputs()
	for v := uint32(0); v < 1<<n; v++ {
		if v&mask != value {
			continue
		}
		if c.Eval(v) != c.Eval(v&^faulty) {
			return false
		}
	}
	return true
}

func verifyCellTerms(p *Pass, c *cell.Cell, faulty uint32, terms []cell.GMTerm) {
	n := c.NumInputs()
	all := uint32(1)<<n - 1
	healthy := all &^ faulty
	obj := fmt.Sprintf("cell %s faulty={%s}", c.Name, pinSetString(c, faulty))

	for _, t := range terms {
		if t.Mask&^healthy != 0 || t.Value&^t.Mask != 0 {
			p.Reportf(SeverityError, obj,
				"malformed GM term (mask %#x value %#x): constrains faulty or nonexistent pins", t.Mask, t.Value)
			continue
		}
		if !termMasks(c, faulty, t.Mask, t.Value) {
			p.Reportf(SeverityError, obj,
				"unsound GM term %q: output still depends on the faulty pins", t.String(c))
			continue
		}
		for m := t.Mask; m != 0; m &= m - 1 {
			drop := m & -m
			if termMasks(c, faulty, t.Mask&^drop, t.Value&^drop) {
				p.Reportf(SeverityWarning, obj,
					"non-minimal GM term %q: literal on pin %s is redundant", t.String(c), c.Pins[lowBitIndex(drop)])
				break
			}
		}
	}

	// Completeness: every full assignment of the healthy pins that masks the
	// faulty set must satisfy at least one term (otherwise the MATE search
	// misses masking opportunities the hardware provably has).
	for va := healthy; ; va = (va - 1) & healthy {
		if termMasks(c, faulty, healthy, va) {
			covered := false
			for _, t := range terms {
				if t.Mask&^healthy == 0 && va&t.Mask == t.Value {
					covered = true
					break
				}
			}
			if !covered {
				p.Reportf(SeverityWarning, obj,
					"incomplete GM terms: masking assignment {%s} satisfies no term",
					assignString(c, healthy, va))
			}
		}
		if va == 0 {
			break
		}
	}
}

// pinSetString renders a pin bitmask using the cell's pin names.
func pinSetString(c *cell.Cell, pins uint32) string {
	var parts []string
	for i := 0; i < c.NumInputs(); i++ {
		if pins>>i&1 == 1 {
			parts = append(parts, c.Pins[i])
		}
	}
	return strings.Join(parts, ",")
}

// assignString renders a full assignment of the pins in mask.
func assignString(c *cell.Cell, mask, value uint32) string {
	var parts []string
	for i := 0; i < c.NumInputs(); i++ {
		if mask>>i&1 == 1 {
			parts = append(parts, fmt.Sprintf("%s=%d", c.Pins[i], value>>i&1))
		}
	}
	return strings.Join(parts, " ")
}

func lowBitIndex(v uint32) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
