// Package lint is the static-analysis layer of the fault-pruning pipeline.
// Everything downstream — gate-masking terms, fault cones, the MATE search,
// campaign pruning — silently assumes a well-formed netlist and sound
// masking data; this package checks both *before* any campaign runs, in the
// spirit of OpenSEA's semi-formal circuit checks.
//
// The driver is modeled on golang.org/x/tools/go/analysis: every check is a
// registered *Analyzer with a name, a doc string and a Run function over a
// shared *Pass. Structural analyzers work on raw, possibly ill-formed
// netlists (Builder.Raw, verilog.ReadRaw) via the Facts index, which is
// computed from the exported netlist fields only — so a netlist that
// Netlist.Finish would reject still gets precise diagnostics instead of a
// single error. Semantic analyzers re-verify the gate-masking terms of the
// cell library exhaustively and validate loaded MATE sets against the fault
// cones they claim to cover.
package lint

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/netlist"
)

// Severity grades a finding.
type Severity uint8

const (
	// SeverityInfo is a note (e.g. an analyzer that had to be skipped).
	SeverityInfo Severity = iota
	// SeverityWarning marks suspicious but not soundness-breaking findings
	// (dead cells, redundant MATEs).
	SeverityWarning
	// SeverityError marks findings that corrupt downstream results
	// (multi-driven wires, combinational cycles, unsound masking terms).
	SeverityError
)

// String renders the severity in lowercase, as used in text and JSON
// output.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// MarshalJSON encodes the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Diagnostic is one finding: which analyzer produced it, how severe it is,
// which netlist object it is about, and a human-readable message.
type Diagnostic struct {
	Analyzer string   `json:"analyzer"`
	Severity Severity `json:"severity"`
	// Object locates the finding: a wire, gate, flip-flop, cell or MATE
	// reference such as `wire "alu.carry"` or `MATE #3`.
	Object  string `json:"object,omitempty"`
	Message string `json:"message"`
}

// String renders the diagnostic as one line:
//
//	error [multi-driven] wire "x": driven by gate g0_AND2 and gate g1_INV
func (d Diagnostic) String() string {
	if d.Object == "" {
		return fmt.Sprintf("%s [%s] %s", d.Severity, d.Analyzer, d.Message)
	}
	return fmt.Sprintf("%s [%s] %s: %s", d.Severity, d.Analyzer, d.Object, d.Message)
}

// Kind groups analyzers by what they need.
type Kind uint8

const (
	// KindStructural analyzers check the circuit graph itself and run on
	// raw netlists.
	KindStructural Kind = iota
	// KindSemantic analyzers check masking data (GM terms, MATE sets).
	KindSemantic
)

// TermSource yields the gate-masking terms to verify for a cell and
// faulty-pin set. The default is cell.MaskingTerms; tests substitute
// corrupted sources to prove the verifier catches bad terms.
type TermSource func(c *cell.Cell, faulty uint32) []cell.GMTerm

// Analyzer is one registered static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is a one-line description.
	Doc string
	// Kind tells the driver whether this is a structural or semantic pass.
	Kind Kind
	// NeedsMATEs: the analyzer only runs when Options.MATESet is provided.
	NeedsMATEs bool
	// NeedsExact: the analyzer performs exact (BDD-backed) proofs and only
	// runs when Options.Exact is provided — the proofs are orders of
	// magnitude more expensive than the other checks, so they are opt-in.
	NeedsExact bool
	// NeedsFinished: the analyzer uses derived netlist structures (fanout,
	// evaluation order) and is skipped, with an info diagnostic, on
	// unfinished netlists.
	NeedsFinished bool
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass)
}

// Pass carries everything one analyzer invocation may inspect.
type Pass struct {
	NL      *netlist.Netlist
	Facts   *Facts
	MATESet *core.MATESet  // nil unless the caller supplied one
	Exact   *exact.Options // nil unless exact verification was requested
	Terms   TermSource

	analyzer *Analyzer
	sink     func(Diagnostic)
}

// Report emits a finding.
func (p *Pass) Report(sev Severity, object, message string) {
	p.sink(Diagnostic{Analyzer: p.analyzer.Name, Severity: sev, Object: object, Message: message})
}

// Reportf is Report with a formatted message.
func (p *Pass) Reportf(sev Severity, object, format string, args ...any) {
	p.Report(sev, object, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

var registry []*Analyzer

// Register adds an analyzer to the global registry. Registration order is
// execution order; duplicate names panic at init time.
func Register(a *Analyzer) {
	for _, r := range registry {
		if r.Name == a.Name {
			panic("lint: duplicate analyzer " + a.Name)
		}
	}
	registry = append(registry, a)
}

// All returns every registered analyzer in registration order.
func All() []*Analyzer {
	return append([]*Analyzer(nil), registry...)
}

// Structural returns the structural analyzers — the preflight set run by
// the campaign tools on every netlist load.
func Structural() []*Analyzer {
	var out []*Analyzer
	for _, a := range registry {
		if a.Kind == KindStructural {
			out = append(out, a)
		}
	}
	return out
}

// Semantic returns the masking-data analyzers.
func Semantic() []*Analyzer {
	var out []*Analyzer
	for _, a := range registry {
		if a.Kind == KindSemantic {
			out = append(out, a)
		}
	}
	return out
}

// Lookup finds a registered analyzer by name.
func Lookup(name string) (*Analyzer, bool) {
	for _, a := range registry {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// ByNames resolves a list of analyzer names, in registry order.
func ByNames(names []string) ([]*Analyzer, error) {
	want := map[string]bool{}
	for _, n := range names {
		if _, ok := Lookup(n); !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range registry {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

// Options configures one Run.
type Options struct {
	// Analyzers selects which checks to run; nil means All().
	Analyzers []*Analyzer
	// MATESet enables the MATE analyzers against this loaded set.
	MATESet *core.MATESet
	// Exact enables the BDD-backed exact analyzers with these engine
	// options (use &exact.Options{} for the defaults). Nil skips them.
	Exact *exact.Options
	// Terms overrides the gate-masking term source (default
	// cell.MaskingTerms).
	Terms TermSource
}

// Result is the outcome of one Run: the diagnostics in analyzer execution
// order, plus summary accessors.
type Result struct {
	Netlist     string       `json:"netlist"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	Errors      int          `json:"errors"`
	Warnings    int          `json:"warnings"`
}

// Count returns the number of diagnostics at exactly the given severity.
func (r *Result) Count(sev Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// HasErrors reports whether any error-severity finding was produced.
func (r *Result) HasErrors() bool { return r.Errors > 0 }

// Failed reports whether the run should be treated as a failure: errors
// always fail; under strict, warnings fail too.
func (r *Result) Failed(strict bool) bool {
	if r.Errors > 0 {
		return true
	}
	return strict && r.Warnings > 0
}

// Run executes the selected analyzers over the netlist and collects their
// diagnostics. Structural facts are computed once and shared; analyzers
// whose requirements are not met (no MATE set supplied, netlist not
// finished) are skipped, the latter with an info note so the skip is
// visible.
func Run(nl *netlist.Netlist, opts Options) *Result {
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = All()
	}
	terms := opts.Terms
	if terms == nil {
		terms = cell.MaskingTerms
	}
	facts := ComputeFacts(nl)
	res := &Result{Netlist: nl.Name, Diagnostics: []Diagnostic{}}
	report := func(d Diagnostic) {
		res.Diagnostics = append(res.Diagnostics, d)
		switch d.Severity {
		case SeverityError:
			res.Errors++
		case SeverityWarning:
			res.Warnings++
		}
	}
	for _, a := range analyzers {
		if a.NeedsMATEs && opts.MATESet == nil {
			continue
		}
		if a.NeedsExact && opts.Exact == nil {
			continue
		}
		if a.NeedsFinished && !nl.Finished() {
			report(Diagnostic{Analyzer: a.Name, Severity: SeverityInfo,
				Message: "skipped: netlist is not finalised (fix the structural errors first)"})
			continue
		}
		pass := &Pass{NL: nl, Facts: facts, MATESet: opts.MATESet, Exact: opts.Exact, Terms: terms, analyzer: a, sink: report}
		a.Run(pass)
	}
	return res
}
