package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/netlist"
)

// byAnalyzer filters the diagnostics of one analyzer.
func byAnalyzer(res *Result, name string) []Diagnostic {
	var out []Diagnostic
	for _, d := range res.Diagnostics {
		if d.Analyzer == name {
			out = append(out, d)
		}
	}
	return out
}

func wantOne(t *testing.T, res *Result, analyzer string, sev Severity, substr string) Diagnostic {
	t.Helper()
	ds := byAnalyzer(res, analyzer)
	if len(ds) != 1 {
		t.Fatalf("analyzer %s: got %d diagnostics, want 1: %v", analyzer, len(ds), ds)
	}
	d := ds[0]
	if d.Severity != sev {
		t.Errorf("analyzer %s: severity = %s, want %s", analyzer, d.Severity, sev)
	}
	if !strings.Contains(d.Message, substr) {
		t.Errorf("analyzer %s: message %q does not contain %q", analyzer, d.Message, substr)
	}
	return d
}

func runStructural(nl *netlist.Netlist) *Result {
	return Run(nl, Options{Analyzers: Structural()})
}

func TestCleanNetlistHasNoFindings(t *testing.T) {
	b := netlist.NewBuilder("clean")
	a := b.Input("a")
	x := b.Input("x")
	g := b.GateNamed("g", cell.AND2, a, x)
	q := b.FF("ff", g, false, "")
	b.MarkOutput(q)
	res := runStructural(b.MustNetlist())
	if len(res.Diagnostics) != 0 {
		t.Fatalf("clean netlist produced diagnostics: %v", res.Diagnostics)
	}
	if res.Failed(true) {
		t.Error("clean netlist failed strict lint")
	}
}

func TestMultiDriven(t *testing.T) {
	b := netlist.NewBuilder("md")
	a := b.Input("a")
	x := b.Input("x")
	out := b.Wire("clash")
	b.AddGateWithOutput(cell.INV, []netlist.WireID{a}, out)
	b.AddGateWithOutput(cell.INV, []netlist.WireID{x}, out)
	q := b.FF("ff", out, false, "")
	b.MarkOutput(q)

	if _, err := b.Netlist(); err == nil {
		t.Error("Builder.Netlist accepted a multi-driven wire")
	}
	res := runStructural(b.Raw())
	d := wantOne(t, res, "multi-driven", SeverityError, "driven 2 times")
	if !strings.Contains(d.Object, "clash") {
		t.Errorf("object %q does not name the wire", d.Object)
	}
	if !res.Failed(false) {
		t.Error("multi-driven netlist did not fail lint")
	}
}

func TestUndriven(t *testing.T) {
	b := netlist.NewBuilder("ud")
	a := b.Input("a")
	floating := b.Wire("floating")
	g := b.GateNamed("g", cell.AND2, a, floating)
	q := b.FF("ff", g, false, "")
	b.MarkOutput(q)
	b.Wire("dangling") // undriven AND unused

	if _, err := b.Netlist(); err == nil {
		t.Error("Builder.Netlist accepted an undriven gate input")
	}
	res := runStructural(b.Raw())
	ds := byAnalyzer(res, "undriven")
	if len(ds) != 2 {
		t.Fatalf("got %d undriven diagnostics, want 2: %v", len(ds), ds)
	}
	var gotError, gotWarning bool
	for _, d := range ds {
		switch {
		case d.Severity == SeverityError && strings.Contains(d.Object, "floating"):
			gotError = true
			if !strings.Contains(d.Message, "pin 1") {
				t.Errorf("error message %q does not name the consuming pin", d.Message)
			}
		case d.Severity == SeverityWarning && strings.Contains(d.Object, "dangling"):
			gotWarning = true
		}
	}
	if !gotError || !gotWarning {
		t.Errorf("missing expected findings (error=%v warning=%v): %v", gotError, gotWarning, ds)
	}
}

func TestCombCycle(t *testing.T) {
	b := netlist.NewBuilder("cyc")
	a := b.Input("a")
	w1 := b.Wire("w1")
	w2 := b.Wire("w2")
	b.AddGateWithOutput(cell.AND2, []netlist.WireID{a, w2}, w1)
	b.AddGateWithOutput(cell.INV, []netlist.WireID{w1}, w2)
	q := b.FF("ff", w1, false, "")
	b.MarkOutput(q)

	if _, err := b.Netlist(); err == nil {
		t.Error("Builder.Netlist accepted a combinational cycle")
	}
	res := runStructural(b.Raw())
	d := wantOne(t, res, "comb-cycle", SeverityError, "combinational cycle through")
	if !strings.Contains(d.Object, "2 gate(s)") {
		t.Errorf("object %q does not report the SCC size", d.Object)
	}
}

func TestPinCountAndWireRefs(t *testing.T) {
	// The Builder cannot produce these defects, so assemble the netlist
	// directly: one gate with a surplus pin, one reading a nonexistent
	// wire, and an FF with an unconnected D input.
	nl := &netlist.Netlist{
		Name: "pins",
		Wires: []netlist.Wire{
			{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "o1"}, {Name: "o2"}, {Name: "q"},
		},
		Inputs: []netlist.WireID{0, 1, 2},
		Gates: []netlist.Gate{
			{Name: "g_wide", Cell: cell.Lookup(cell.AND2), Inputs: []netlist.WireID{0, 1, 2}, Output: 3},
			{Name: "g_bad", Cell: cell.Lookup(cell.INV), Inputs: []netlist.WireID{99}, Output: 4},
		},
		FFs:     []netlist.FF{{Name: "ff", D: netlist.NoWire, Q: 5}},
		Outputs: []netlist.WireID{3, 4, 5},
	}
	res := runStructural(nl)
	wantOne(t, res, "pin-count", SeverityError, "connects 3 input pins, cell AND2 has 2")
	refs := byAnalyzer(res, "wire-refs")
	if len(refs) != 2 {
		t.Fatalf("got %d wire-refs diagnostics, want 2: %v", len(refs), refs)
	}
	joined := refs[0].Message + " / " + refs[1].Message
	if !strings.Contains(joined, "g_bad pin 0 reads invalid wire 99") ||
		!strings.Contains(joined, "ff ff has an unconnected D input") {
		t.Errorf("wire-refs diagnostics missing expected messages: %v", refs)
	}
}

func TestDupWireNames(t *testing.T) {
	b := netlist.NewBuilder("dup")
	a := b.Input("a")
	b.Wire("x")
	x2 := b.Wire("x") // duplicate qualified name
	b.AddGateWithOutput(cell.INV, []netlist.WireID{a}, x2)
	q := b.FF("ff", x2, false, "")
	b.MarkOutput(q)

	if _, err := b.Netlist(); err == nil {
		t.Error("Builder.Netlist accepted duplicate wire names")
	} else if !strings.Contains(err.Error(), `duplicate wire names: "x"`) {
		t.Errorf("error %q does not name the duplicate", err)
	}
	res := runStructural(b.Raw())
	found := false
	for _, d := range byAnalyzer(res, "dup-wire-names") {
		if d.Severity == SeverityError && strings.Contains(d.Message, "duplicate wire name") {
			found = true
		}
	}
	if !found {
		t.Errorf("no dup-wire-names error reported: %v", res.Diagnostics)
	}
}

func TestDeadLogic(t *testing.T) {
	b := netlist.NewBuilder("dead")
	a := b.Input("a")
	x := b.Input("x")
	live := b.GateNamed("g_live", cell.AND2, a, x)
	q := b.FF("ff", live, false, "")
	b.MarkOutput(q)
	b.GateNamed("g_dead", cell.OR2, a, x) // output feeds nothing
	deadQ := b.FF("ff_dead", x, true, "")
	b.GateNamed("g_dead2", cell.INV, deadQ) // also dead, consumes the dead FF

	res := runStructural(b.MustNetlist())
	ds := byAnalyzer(res, "dead-logic")
	var got []string
	for _, d := range ds {
		if d.Severity != SeverityWarning {
			t.Errorf("dead-logic severity = %s, want warning", d.Severity)
		}
		got = append(got, d.Object)
	}
	joined := strings.Join(got, " ")
	for _, want := range []string{"g_dead", "g_dead2", "ff_dead"} {
		if !strings.Contains(joined, want) {
			t.Errorf("dead-logic did not flag %s: %v", want, ds)
		}
	}
	if strings.Contains(joined, "g_live") || len(ds) != 3 {
		t.Errorf("dead-logic flagged live logic or extras: %v", ds)
	}
	// Error-free but warned: strict fails, non-strict passes.
	if res.Failed(false) || !res.Failed(true) {
		t.Errorf("Failed() = (%v, %v), want (false, true)", res.Failed(false), res.Failed(true))
	}
}

func TestUnfinishedNetlistSkipsNeedsFinished(t *testing.T) {
	b := netlist.NewBuilder("skip")
	a := b.Input("a")
	floating := b.Wire("f")
	g := b.GateNamed("g", cell.AND2, a, floating)
	b.MarkOutput(g)
	set := &core.MATESet{MATEs: []*core.MATE{{
		Literals: []core.Literal{{Wire: a, Value: true}},
		Masks:    []netlist.WireID{a},
	}}}
	res := Run(b.Raw(), Options{Analyzers: []*Analyzer{AnalyzerMateBorder}, MATESet: set})
	d := wantOne(t, res, "mate-border", SeverityInfo, "skipped")
	if d.Severity != SeverityInfo {
		t.Errorf("skip note severity = %s, want info", d.Severity)
	}
}

// ---------------------------------------------------------------------------
// Semantic: gate-masking terms
// ---------------------------------------------------------------------------

func TestGMTermsLibraryIsClean(t *testing.T) {
	b := netlist.NewBuilder("lib")
	b.MarkOutput(b.Input("a"))
	res := Run(b.MustNetlist(), Options{Analyzers: []*Analyzer{AnalyzerGMTerms}})
	if len(res.Diagnostics) != 0 {
		t.Fatalf("built-in cell library failed exhaustive GM verification: %v", res.Diagnostics)
	}
}

// corrupting wraps the real term source, replacing the terms for one
// (cell, faulty) pair.
func corrupting(name string, faulty uint32, terms []cell.GMTerm) TermSource {
	return func(c *cell.Cell, f uint32) []cell.GMTerm {
		if c.Name == name && f == faulty {
			return terms
		}
		return cell.MaskingTerms(c, f)
	}
}

func runGM(src TermSource) *Result {
	b := netlist.NewBuilder("gm")
	b.MarkOutput(b.Input("a"))
	return Run(b.MustNetlist(), Options{Analyzers: []*Analyzer{AnalyzerGMTerms}, Terms: src})
}

func TestGMTermsUnsound(t *testing.T) {
	// AND2, faulty pin A: the true term is B=0. B=1 leaves out = A.
	res := runGM(corrupting("AND2", 0b01, []cell.GMTerm{{Mask: 0b10, Value: 0b10}}))
	found := false
	for _, d := range byAnalyzer(res, "gm-terms") {
		if d.Severity == SeverityError && strings.Contains(d.Message, "unsound GM term") &&
			strings.Contains(d.Object, "cell AND2") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unsound term not detected: %v", res.Diagnostics)
	}
}

func TestGMTermsMalformed(t *testing.T) {
	// Term constraining the faulty pin itself.
	res := runGM(corrupting("AND2", 0b01, []cell.GMTerm{{Mask: 0b01, Value: 0}}))
	found := false
	for _, d := range byAnalyzer(res, "gm-terms") {
		if d.Severity == SeverityError && strings.Contains(d.Message, "malformed GM term") {
			found = true
		}
	}
	if !found {
		t.Fatalf("malformed term not detected: %v", res.Diagnostics)
	}
}

func TestGMTermsNonMinimal(t *testing.T) {
	// MUX2 (out = S ? B : A), faulty A: S=1 masks; the B literal is dead
	// weight.
	res := runGM(corrupting("MUX2", 0b001, []cell.GMTerm{{Mask: 0b110, Value: 0b100}}))
	found := false
	for _, d := range byAnalyzer(res, "gm-terms") {
		if d.Severity == SeverityWarning && strings.Contains(d.Message, "non-minimal GM term") &&
			strings.Contains(d.Message, "pin B is redundant") {
			found = true
		}
	}
	if !found {
		t.Fatalf("non-minimal term not detected: %v", res.Diagnostics)
	}
}

func TestGMTermsIncomplete(t *testing.T) {
	// OR2, faulty A: B=1 masks, but the source claims nothing does.
	res := runGM(corrupting("OR2", 0b01, nil))
	found := false
	for _, d := range byAnalyzer(res, "gm-terms") {
		if d.Severity == SeverityWarning && strings.Contains(d.Message, "incomplete GM terms") &&
			strings.Contains(d.Message, "B=1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("incomplete term set not detected: %v", res.Diagnostics)
	}
}

// ---------------------------------------------------------------------------
// Semantic: MATE sets
// ---------------------------------------------------------------------------

// mateFixture builds a finished netlist with a known cone structure:
//
//	a, bIn, c inputs; g = AND2(a, bIn); ff.D = g; unrelated = INV(c) → out
//
// The fault cone of a is {a, g}; its border is {bIn}. Input c feeds no cone
// gate.
func mateFixture(t *testing.T) (nl *netlist.Netlist, a, bIn, c, g netlist.WireID) {
	t.Helper()
	b := netlist.NewBuilder("mate")
	a = b.Input("a")
	bIn = b.Input("b")
	c = b.Input("c")
	g = b.GateNamed("g", cell.AND2, a, bIn)
	q := b.FF("ff", g, false, "")
	b.MarkOutput(q)
	b.MarkOutput(b.GateNamed("unrelated", cell.INV, c))
	return b.MustNetlist(), a, bIn, c, g
}

func runMates(nl *netlist.Netlist, analyzers []*Analyzer, mates ...*core.MATE) *Result {
	return Run(nl, Options{Analyzers: analyzers, MATESet: &core.MATESet{MATEs: mates}})
}

func TestMateBorder(t *testing.T) {
	nl, a, bIn, c, g := mateFixture(t)
	borderOnly := []*Analyzer{AnalyzerMateBorder}

	// Literal on the cone border: clean.
	ok := &core.MATE{Literals: []core.Literal{{Wire: bIn, Value: false}}, Masks: []netlist.WireID{a}}
	if res := runMates(nl, borderOnly, ok); len(res.Diagnostics) != 0 {
		t.Fatalf("valid border literal flagged: %v", res.Diagnostics)
	}

	// Literal inside the cone: mistrusted during the SEU.
	inside := &core.MATE{Literals: []core.Literal{{Wire: g, Value: false}}, Masks: []netlist.WireID{a}}
	res := runMates(nl, borderOnly, inside)
	wantOne(t, res, "mate-border", SeverityError, "inside the fault cone")

	// Literal on an unrelated wire: not on the border.
	unrelated := &core.MATE{Literals: []core.Literal{{Wire: c, Value: true}}, Masks: []netlist.WireID{a}}
	res = runMates(nl, borderOnly, unrelated)
	wantOne(t, res, "mate-border", SeverityError, "not on the border")

	// Out-of-range mask wire.
	bad := &core.MATE{Literals: []core.Literal{{Wire: bIn, Value: false}}, Masks: []netlist.WireID{9999}}
	res = runMates(nl, borderOnly, bad)
	wantOne(t, res, "mate-border", SeverityError, "masks invalid wire")
}

func TestMateSet(t *testing.T) {
	nl, a, bIn, c, _ := mateFixture(t)
	setOnly := []*Analyzer{AnalyzerMateSet}

	// Contradiction: bIn required 0 and 1 at once.
	contra := &core.MATE{
		Literals: []core.Literal{{Wire: bIn, Value: false}, {Wire: bIn, Value: true}},
		Masks:    []netlist.WireID{a},
	}
	res := runMates(nl, setOnly, contra)
	wantOne(t, res, "mate-set", SeverityWarning, "can never trigger")

	// Duplicate literal sets.
	m1 := &core.MATE{Literals: []core.Literal{{Wire: bIn, Value: false}}, Masks: []netlist.WireID{a}}
	m2 := &core.MATE{Literals: []core.Literal{{Wire: bIn, Value: false}}, Masks: []netlist.WireID{c}}
	res = runMates(nl, setOnly, m1, m2)
	wantOne(t, res, "mate-set", SeverityWarning, "duplicate of MATE #0")

	// Subsumption: m3's literals are a superset of m4's, masks a subset.
	m3 := &core.MATE{
		Literals: []core.Literal{{Wire: bIn, Value: false}, {Wire: c, Value: true}},
		Masks:    []netlist.WireID{a},
	}
	m4 := &core.MATE{Literals: []core.Literal{{Wire: bIn, Value: false}}, Masks: []netlist.WireID{a, c}}
	res = runMates(nl, setOnly, m3, m4)
	d := wantOne(t, res, "mate-set", SeverityWarning, "subsumed by MATE #1")
	if !strings.Contains(d.Object, "MATE #0") {
		t.Errorf("subsumption reported against wrong MATE: %v", d)
	}

	// A set of MATEs with incomparable literal sets is clean.
	m5 := &core.MATE{Literals: []core.Literal{{Wire: c, Value: true}}, Masks: []netlist.WireID{c}}
	res = runMates(nl, setOnly, m1, m5)
	if ds := byAnalyzer(res, "mate-set"); len(ds) != 0 {
		t.Errorf("clean MATE set flagged: %v", ds)
	}
}

// ---------------------------------------------------------------------------
// Whole-pipeline checks
// ---------------------------------------------------------------------------

// TestCoresLintClean is an acceptance gate: the shipped CPU cores must pass
// every analyzer (including the exhaustive GM-term verification) with zero
// findings.
func TestCoresLintClean(t *testing.T) {
	for _, tc := range []struct {
		name string
		nl   *netlist.Netlist
	}{
		{"avr", avr.NewCore().NL},
		{"msp430", msp430.NewCore().NL},
	} {
		res := Run(tc.nl, Options{})
		if len(res.Diagnostics) != 0 {
			max := len(res.Diagnostics)
			if max > 10 {
				max = 10
			}
			t.Errorf("%s core is not lint-clean (%d error(s), %d warning(s)); first findings: %v",
				tc.name, res.Errors, res.Warnings, res.Diagnostics[:max])
		}
	}
}

func TestOutputFormats(t *testing.T) {
	b := netlist.NewBuilder("out")
	a := b.Input("a")
	x := b.Input("x")
	out := b.Wire("clash")
	b.AddGateWithOutput(cell.INV, []netlist.WireID{a}, out)
	b.AddGateWithOutput(cell.INV, []netlist.WireID{x}, out)
	q := b.FF("ff", out, false, "")
	b.MarkOutput(q)
	res := runStructural(b.Raw())

	var text bytes.Buffer
	if err := res.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), `error [multi-driven] wire "clash"`) {
		t.Errorf("text output missing diagnostic line:\n%s", text.String())
	}
	if !strings.Contains(text.String(), `netlist "out": 1 error(s), 0 warning(s)`) {
		t.Errorf("text output missing summary:\n%s", text.String())
	}

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Netlist     string `json:"netlist"`
		Errors      int    `json:"errors"`
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			Severity string `json:"severity"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON output does not parse: %v\n%s", err, buf.String())
	}
	if decoded.Netlist != "out" || decoded.Errors != 1 ||
		len(decoded.Diagnostics) != 1 || decoded.Diagnostics[0].Severity != "error" {
		t.Errorf("unexpected JSON result: %+v", decoded)
	}
}

func TestPreflight(t *testing.T) {
	b := netlist.NewBuilder("pf")
	a := b.Input("a")
	g := b.GateNamed("g", cell.INV, a)
	q := b.FF("ff", g, false, "")
	b.MarkOutput(q)
	var out bytes.Buffer
	if err := Preflight(&out, b.MustNetlist(), true); err != nil {
		t.Fatalf("clean netlist failed preflight: %v", err)
	}

	bad := netlist.NewBuilder("pf_bad")
	ba := bad.Input("a")
	w := bad.Wire("w")
	bad.AddGateWithOutput(cell.INV, []netlist.WireID{ba}, w)
	bad.AddGateWithOutput(cell.INV, []netlist.WireID{ba}, w)
	bq := bad.FF("ff", w, false, "")
	bad.MarkOutput(bq)
	out.Reset()
	err := Preflight(&out, bad.Raw(), false)
	if err == nil {
		t.Fatal("multi-driven netlist passed preflight")
	}
	if !strings.Contains(out.String(), "lint: error [multi-driven]") {
		t.Errorf("preflight output missing finding:\n%s", out.String())
	}
}

func TestByNames(t *testing.T) {
	as, err := ByNames([]string{"comb-cycle", "multi-driven"})
	if err != nil {
		t.Fatal(err)
	}
	// Registry order, not argument order.
	if len(as) != 2 || as[0].Name != "multi-driven" || as[1].Name != "comb-cycle" {
		t.Errorf("ByNames returned %v", as)
	}
	if _, err := ByNames([]string{"no-such"}); err == nil {
		t.Error("ByNames accepted an unknown analyzer")
	}
}
