package verilog

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func buildSmall(t testing.TB) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("small")
	a := b.Input("a")
	c := b.Input("c[0]") // bracketed names must round-trip
	q := b.FFPlaceholder("state.q", true, "regfile")
	n := b.Gate(cell.NAND2, a, q)
	m := b.Gate(cell.MUX2, n, c, b.Const(true))
	b.SetFFD(q, m)
	b.MarkOutput(n)
	return b.MustNetlist()
}

func TestWriteContainsStructure(t *testing.T) {
	nl := buildSmall(t)
	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"module small (", "input \\a ", "NAND2", "MUX2",
		`(* init = 1, group = "regfile" *)`, "DFF", "endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

// equalNetlists compares two netlists structurally by wire name.
func equalNetlists(t *testing.T, a, b *netlist.Netlist) {
	t.Helper()
	if len(a.Gates) != len(b.Gates) || len(a.FFs) != len(b.FFs) ||
		len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("shape differs: %s vs %s", a.Stats(), b.Stats())
	}
	nameOf := func(nl *netlist.Netlist, w netlist.WireID) string { return nl.WireName(w) }
	// index gates of b by output name
	bGates := map[string]*netlist.Gate{}
	for i := range b.Gates {
		bGates[nameOf(b, b.Gates[i].Output)] = &b.Gates[i]
	}
	for i := range a.Gates {
		g := &a.Gates[i]
		h, ok := bGates[nameOf(a, g.Output)]
		if !ok {
			t.Fatalf("gate output %q missing", nameOf(a, g.Output))
		}
		if h.Cell.Kind != g.Cell.Kind {
			t.Fatalf("gate %q kind differs", nameOf(a, g.Output))
		}
		for p := range g.Inputs {
			if nameOf(a, g.Inputs[p]) != nameOf(b, h.Inputs[p]) {
				t.Fatalf("gate %q pin %d differs: %q vs %q", nameOf(a, g.Output), p,
					nameOf(a, g.Inputs[p]), nameOf(b, h.Inputs[p]))
			}
		}
	}
	bFFs := map[string]*netlist.FF{}
	for i := range b.FFs {
		bFFs[nameOf(b, b.FFs[i].Q)] = &b.FFs[i]
	}
	for i := range a.FFs {
		ff := &a.FFs[i]
		g, ok := bFFs[nameOf(a, ff.Q)]
		if !ok {
			t.Fatalf("FF %q missing", ff.Name)
		}
		if nameOf(a, ff.D) != nameOf(b, g.D) || ff.Init != g.Init || ff.Group != g.Group {
			t.Fatalf("FF %q differs", ff.Name)
		}
	}
}

func TestRoundTripSmall(t *testing.T) {
	nl := buildSmall(t)
	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	parsed, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalNetlists(t, nl, parsed)
}

// TestRoundTripCores: both processor netlists survive the Verilog round
// trip structurally AND behaviourally (the parsed netlist simulates the
// fib workload to the same result).
func TestRoundTripCores(t *testing.T) {
	avrCore := avr.NewCore()
	var buf bytes.Buffer
	if err := Write(&buf, avrCore.NL); err != nil {
		t.Fatal(err)
	}
	parsed, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalNetlists(t, avrCore.NL, parsed)

	mspCore := msp430.NewCore()
	buf.Reset()
	if err := Write(&buf, mspCore.NL); err != nil {
		t.Fatal(err)
	}
	parsed2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalNetlists(t, mspCore.NL, parsed2)

	// Behavioural check: drive both the original and the parsed AVR
	// netlist with the same stimulus and compare every wire by name.
	orig := sim.New(avrCore.NL)
	re := sim.New(parsed)
	for cyc := 0; cyc < 50; cyc++ {
		for i, w := range avrCore.NL.Inputs {
			v := (cyc+i)%3 == 0
			orig.SetValue(w, v)
			re.SetValue(parsed.Inputs[i], v)
		}
		orig.EvalComb()
		re.EvalComb()
		for id := 0; id < avrCore.NL.NumWires(); id++ {
			name := avrCore.NL.WireName(netlist.WireID(id))
			pid, ok := parsed.WireByName(name)
			if !ok {
				t.Fatalf("wire %q lost in round trip", name)
			}
			if orig.Value(netlist.WireID(id)) != re.Value(pid) {
				t.Fatalf("cycle %d: wire %q differs", cyc, name)
			}
		}
		orig.CommitFFs()
		re.CommitFFs()
	}
}

func TestReadConstants(t *testing.T) {
	src := `
module consts (\a , \y );
  input \a ;
  output \y ;
  wire \n1 ;
  AND2 g0 (.A(\a ), .B(1'b1), .Y(\n1 ));
  OR2 g1 (.A(\n1 ), .B(1'b0), .Y(\y ));
endmodule
`
	nl, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(nl)
	a, _ := nl.WireByName("a")
	y, _ := nl.WireByName("y")
	for _, v := range []bool{false, true} {
		m.SetValue(a, v)
		m.EvalComb()
		if m.Value(y) != v {
			t.Fatalf("const wiring wrong for a=%v", v)
		}
	}
}

func TestReadPlainIdentifiers(t *testing.T) {
	src := `
// comment line
module plain (a, y);
  input a;
  output y;
  INV g0 (.A(a), .Y(y));
endmodule
`
	nl, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Name != "plain" || len(nl.Gates) != 1 {
		t.Fatalf("parsed %s", nl.Stats())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"unknown cell":  "module m (a); input a; BOGUS g (.A(a), .Y(a)); endmodule",
		"missing Y":     "module m (a, y); input a; output y; wire n; INV g (.A(a)); endmodule",
		"missing pin":   "module m (a, y); input a; output y; AND2 g (.A(a), .Y(y)); endmodule",
		"extra pin":     "module m (a, y); input a; output y; INV g (.A(a), .B(a), .Y(y)); endmodule",
		"bad dff":       "module m (a, y); input a; output y; DFF f (.D(a)); endmodule",
		"dup pin":       "module m (a, y); input a; output y; INV g (.A(a), .A(a), .Y(y)); endmodule",
		"not module":    "wire x;",
		"truncated":     "module m (a); input a;",
		"bad constant":  "module m (a, y); input a; output y; INV g (.A(1'bx), .Y(y)); endmodule",
		"undriven wire": "module m (a, y); input a; output y; wire n; INV g (.A(n), .Y(y)); endmodule",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestAttributeParsing(t *testing.T) {
	src := `
module m (\d , \q );
  input \d ;
  output \q ;
  (* init = 1, group = "regfile" *)
  DFF f (.D(\d ), .Q(\q ));
endmodule
`
	nl, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.FFs) != 1 || !nl.FFs[0].Init || nl.FFs[0].Group != "regfile" {
		t.Fatalf("FF attrs: %+v", nl.FFs[0])
	}
	// A DFF without attributes defaults to init=0, no group.
	src2 := strings.Replace(src, "(* init = 1, group = \"regfile\" *)\n", "", 1)
	nl2, err := Read(strings.NewReader(src2))
	if err != nil {
		t.Fatal(err)
	}
	if nl2.FFs[0].Init || nl2.FFs[0].Group != "" {
		t.Fatalf("default FF attrs: %+v", nl2.FFs[0])
	}
}

func TestReadRawAcceptsIllFormed(t *testing.T) {
	// Two drivers for n1: Read must reject it, ReadRaw must return the
	// netlist unfinished so the lint analyzers can diagnose it.
	src := `module m (a, b, q);
  input a; input b; output q;
  wire n1;
  INV g0 (.A(a), .Y(n1));
  INV g1 (.A(b), .Y(n1));
  DFF f0 (.D(n1), .Q(q));
endmodule`
	if _, err := Read(strings.NewReader(src)); err == nil {
		t.Error("Read accepted a multi-driven netlist")
	}
	nl, err := ReadRaw(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadRaw: %v", err)
	}
	if nl.Finished() {
		t.Error("ReadRaw returned a finished netlist")
	}
	if len(nl.Gates) != 2 || len(nl.FFs) != 1 || len(nl.Inputs) != 2 {
		t.Errorf("raw netlist incomplete: %d gates, %d FFs, %d inputs",
			len(nl.Gates), len(nl.FFs), len(nl.Inputs))
	}
	// Syntax errors still fail.
	if _, err := ReadRaw(strings.NewReader("module broken (")); err == nil {
		t.Error("ReadRaw accepted a syntax error")
	}
}
