package verilog

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSeeds covers the syntactic range of the structural-Verilog subset:
// valid modules, attribute groups, constants, misordered pins, and a few
// malformed inputs that must fail cleanly rather than panic.
var fuzzSeeds = []string{
	`module empty; endmodule`,
	`module m(a, y);
  input a;
  output y;
  wire a, y;
  BUF g0 (.A(a), .Y(y));
endmodule`,
	`module counter(clk, q);
  input clk;
  output q;
  wire q, d;
  INV g0 (.A(q), .Y(d));
  DFF ff0 (.D(d), .Q(q));
endmodule`,
	`module consts(y);
  output y;
  wire y, t0, t1;
  TIE0 c0 (.Y(t0));
  TIE1 c1 (.Y(t1));
  AND2 g0 (.A(t0), .B(t1), .Y(y));
endmodule`,
	`module attrs(a, b, y);
  input a, b;
  output y;
  wire a, b, y;
  (* group = "alu" *)
  XOR2 g0 (.A(a), .B(b), .Y(y));
endmodule`,
	`module pins(a, b, y);
  input a, b;
  output y;
  wire a, b, y;
  NAND2 g0 (.Y(y), .B(b), .A(a));
endmodule`,
	// Ill-formed but syntactically valid: ReadRaw must accept these.
	`module multi(a, y);
  input a;
  output y;
  wire a, y;
  BUF g0 (.A(a), .Y(y));
  INV g1 (.A(a), .Y(y));
endmodule`,
	`module cyclic(y);
  output y;
  wire y, t;
  INV g0 (.A(y), .Y(t));
  INV g1 (.A(t), .Y(y));
endmodule`,
	// Syntax errors: must return an error, never panic.
	`module broken(a; endmodule`,
	`module m(a) input a endmodule`,
	`module`,
	`(* dangling`,
	`module m(y); output y; wire y; NOPE g (.Y(y)); endmodule`,
	"module m(y);\noutput y;\nwire y;\nBUF g0 (.A(1'b0), .Y(y));\nendmodule",
}

// FuzzReadRaw feeds arbitrary bytes through the lenient parser: it must
// either return an error or a netlist, never panic. Inputs that the strict
// Read accepts must additionally survive a Write → Read round trip with the
// same structural shape (wire/gate/FF counts) — the property the matesearch
// -export / -verilog pipeline depends on.
func FuzzReadRaw(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		raw, err := ReadRaw(strings.NewReader(src))
		if err != nil {
			return // parse rejection is fine; panics are the failure mode
		}
		if raw == nil {
			t.Fatal("ReadRaw returned nil netlist without error")
		}
		nl, err := Read(strings.NewReader(src))
		if err != nil {
			return // valid syntax but ill-formed structure: strict Read rejects
		}
		var buf bytes.Buffer
		if err := Write(&buf, nl); err != nil {
			t.Fatalf("Write failed on netlist accepted by Read: %v", err)
		}
		again, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip: Read(Write(nl)) failed: %v\ninput:\n%s\nwritten:\n%s", err, src, buf.String())
		}
		if again.NumWires() != nl.NumWires() || len(again.Gates) != len(nl.Gates) || len(again.FFs) != len(nl.FFs) {
			t.Fatalf("round trip changed shape: wires %d→%d gates %d→%d ffs %d→%d",
				nl.NumWires(), again.NumWires(), len(nl.Gates), len(again.Gates), len(nl.FFs), len(again.FFs))
		}
	})
}
