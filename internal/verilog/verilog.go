// Package verilog writes and reads gate-level netlists as structural
// Verilog restricted to the project's standard-cell library. This is the
// interchange point with real synthesis flows: the paper's tool consumes
// netlists produced by Synopsys Design Compiler, and this package lets the
// MATE search do the same — export our generated cores for inspection in
// standard EDA tooling, or import an externally synthesized netlist
// (mapped to the library of internal/cell) and run the whole pruning flow
// on it.
//
// The supported subset is exactly what the writer emits:
//
//	module <name> (port, ...);
//	  input  \a ;  output \k ;  wire \n1 ;
//	  AND2 g0 (.A(\a ), .B(\n1 ), .Y(\k ));
//	  (* init = 1, group = "regfile" *)
//	  DFF ff0 (.D(\n1 ), .Q(\q ));
//	endmodule
//
// Identifiers are always written in escaped form (backslash ... space), so
// the hierarchical names of internal/netlist ("rf.r3[2]") round-trip
// unchanged. Constant connections may be written as 1'b0 / 1'b1 and are
// mapped to TIE cells on import.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// dffName is the sequential cell name used in the Verilog view.
const dffName = "DFF"

// Write emits the netlist as structural Verilog.
func Write(w io.Writer, nl *netlist.Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "// structural netlist %q: %d cells, %d flip-flops\n", nl.Name, len(nl.Gates), len(nl.FFs))
	fmt.Fprintf(bw, "module %s (", escapeModule(nl.Name))
	first := true
	port := func(wid netlist.WireID) {
		if !first {
			bw.WriteString(", ")
		}
		first = false
		bw.WriteString(escape(nl.WireName(wid)))
	}
	for _, in := range nl.Inputs {
		port(in)
	}
	for _, out := range nl.Outputs {
		port(out)
	}
	bw.WriteString(");\n")

	for _, in := range nl.Inputs {
		fmt.Fprintf(bw, "  input %s;\n", escape(nl.WireName(in)))
	}
	outSet := map[netlist.WireID]bool{}
	for _, out := range nl.Outputs {
		if !outSet[out] {
			fmt.Fprintf(bw, "  output %s;\n", escape(nl.WireName(out)))
		}
		outSet[out] = true
	}
	inSet := map[netlist.WireID]bool{}
	for _, in := range nl.Inputs {
		inSet[in] = true
	}
	for id := netlist.WireID(0); int(id) < nl.NumWires(); id++ {
		if !inSet[id] && !outSet[id] {
			fmt.Fprintf(bw, "  wire %s;\n", escape(nl.WireName(id)))
		}
	}

	for gi := range nl.Gates {
		g := &nl.Gates[gi]
		fmt.Fprintf(bw, "  %s %s (", g.Cell.Name, escape(instName(g.Name, gi)))
		for p, in := range g.Inputs {
			fmt.Fprintf(bw, ".%s(%s), ", g.Cell.Pins[p], escape(nl.WireName(in)))
		}
		fmt.Fprintf(bw, ".Y(%s));\n", escape(nl.WireName(g.Output)))
	}
	for fi := range nl.FFs {
		ff := &nl.FFs[fi]
		init := 0
		if ff.Init {
			init = 1
		}
		fmt.Fprintf(bw, "  (* init = %d, group = %q *)\n", init, ff.Group)
		fmt.Fprintf(bw, "  %s %s (.D(%s), .Q(%s));\n",
			dffName, escape(fmt.Sprintf("ff%d_%s", fi, ff.Name)),
			escape(nl.WireName(ff.D)), escape(nl.WireName(ff.Q)))
	}
	bw.WriteString("endmodule\n")
	return bw.Flush()
}

func instName(name string, gi int) string {
	if name == "" {
		return fmt.Sprintf("g%d", gi)
	}
	return name
}

// escape renders an identifier as a Verilog escaped identifier (always —
// simpler and lossless for hierarchical names).
func escape(s string) string { return "\\" + s + " " }

// escapeModule keeps plain module names readable when they are simple.
func escapeModule(s string) string {
	for _, r := range s {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return escape(s)
		}
	}
	return s
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

// Read parses the structural-Verilog subset documented on the package and
// builds a netlist. Cell types must exist in internal/cell (plus DFF);
// pins may be connected by name in any order.
func Read(r io.Reader) (*netlist.Netlist, error) {
	toks, err := tokenize(r)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseModule()
}

// ReadRaw parses like Read but skips the final structural validation,
// returning the netlist even when it is ill-formed (multi-driven wires,
// combinational cycles, floating gate inputs). Syntax errors still fail.
// cmd/netlistlint loads its input this way: the lint analyzers then produce
// one precise diagnostic per defect where Read would return a single
// opaque error.
func ReadRaw(r io.Reader) (*netlist.Netlist, error) {
	toks, err := tokenize(r)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, raw: true}
	return p.parseModule()
}

type token struct {
	kind tokenKind
	text string
	line int
}

type tokenKind uint8

const (
	tokID tokenKind = iota
	tokSym
	tokConst0
	tokConst1
	tokAttr
)

func tokenize(r io.Reader) ([]token, error) {
	br := bufio.NewReader(r)
	var toks []token
	line := 1
	read := func() (byte, bool) {
		b, err := br.ReadByte()
		if err != nil {
			return 0, false
		}
		if b == '\n' {
			line++
		}
		return b, true
	}
	unread := func() { _ = br.UnreadByte() }

	for {
		b, ok := read()
		if !ok {
			break
		}
		switch {
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			continue
		case b == '/':
			nb, ok2 := read()
			if ok2 && nb == '/' {
				for {
					c, ok3 := read()
					if !ok3 || c == '\n' {
						break
					}
				}
				continue
			}
			return nil, fmt.Errorf("verilog line %d: unexpected '/'", line)
		case b == '(':
			// attribute (* ... *) or plain paren
			nb, ok2 := read()
			if ok2 && nb == '*' {
				// capture attribute text up to *)
				var sb strings.Builder
				prev := byte(0)
				for {
					c, ok3 := read()
					if !ok3 {
						return nil, fmt.Errorf("verilog: unterminated attribute")
					}
					if prev == '*' && c == ')' {
						break
					}
					if prev != 0 {
						sb.WriteByte(prev)
					}
					prev = c
				}
				toks = append(toks, token{tokAttr, sb.String(), line})
				continue
			}
			if ok2 {
				unread()
			}
			toks = append(toks, token{tokSym, "(", line})
		case strings.IndexByte("();,.", b) >= 0:
			toks = append(toks, token{tokSym, string(b), line})
		case b == '\\':
			// escaped identifier: up to whitespace
			var sb strings.Builder
			for {
				c, ok3 := read()
				if !ok3 || c == ' ' || c == '\t' || c == '\n' || c == '\r' {
					break
				}
				sb.WriteByte(c)
			}
			toks = append(toks, token{tokID, sb.String(), line})
		case b == '1':
			// possibly 1'b0 / 1'b1
			rest := make([]byte, 0, 3)
			for len(rest) < 3 {
				c, ok3 := read()
				if !ok3 {
					break
				}
				rest = append(rest, c)
			}
			if len(rest) == 3 && rest[0] == '\'' && rest[1] == 'b' {
				switch rest[2] {
				case '0':
					toks = append(toks, token{tokConst0, "1'b0", line})
					continue
				case '1':
					toks = append(toks, token{tokConst1, "1'b1", line})
					continue
				}
			}
			return nil, fmt.Errorf("verilog line %d: bad constant near '1%s'", line, rest)
		default:
			if !isIdentByte(b) {
				return nil, fmt.Errorf("verilog line %d: unexpected byte %q", line, b)
			}
			var sb strings.Builder
			sb.WriteByte(b)
			for {
				c, ok3 := read()
				if !ok3 {
					break
				}
				if !isIdentByte(c) {
					unread()
					break
				}
				sb.WriteByte(c)
			}
			toks = append(toks, token{tokID, sb.String(), line})
		}
	}
	return toks, nil
}

func isIdentByte(b byte) bool {
	return b == '_' || b == '$' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

type parser struct {
	toks []token
	pos  int

	b     *netlist.Builder
	wires map[string]netlist.WireID
	raw   bool // skip validation in finish (ReadRaw)
	// pending attribute values for the next DFF
	nextInit  bool
	nextGroup string
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, error) {
	t, ok := p.peek()
	if !ok {
		return token{}, fmt.Errorf("verilog: unexpected end of input")
	}
	p.pos++
	return t, nil
}

func (p *parser) expectSym(s string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != tokSym || t.text != s {
		return fmt.Errorf("verilog line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) expectID() (string, error) {
	t, err := p.next()
	if err != nil {
		return "", err
	}
	if t.kind != tokID {
		return "", fmt.Errorf("verilog line %d: expected identifier, got %q", t.line, t.text)
	}
	return t.text, nil
}

// wire returns (creating on demand) the wire for a name.
func (p *parser) wire(name string) netlist.WireID {
	if id, ok := p.wires[name]; ok {
		return id
	}
	id := p.b.Wire(name)
	p.wires[name] = id
	return id
}

func (p *parser) parseModule() (*netlist.Netlist, error) {
	kw, err := p.expectID()
	if err != nil {
		return nil, err
	}
	if kw != "module" {
		return nil, fmt.Errorf("verilog: expected 'module', got %q", kw)
	}
	name, err := p.expectID()
	if err != nil {
		return nil, err
	}
	p.b = netlist.NewBuilder(name)
	p.wires = map[string]netlist.WireID{}

	// skip the port list
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	depth := 1
	for depth > 0 {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.kind == tokSym && t.text == "(" {
			depth++
		}
		if t.kind == tokSym && t.text == ")" {
			depth--
		}
	}
	if err := p.expectSym(";"); err != nil {
		return nil, err
	}

	var inputs, outputs []string
	cellByName := map[string]*cell.Cell{}
	for _, c := range cell.All() {
		cellByName[c.Name] = c
	}

	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.kind == tokAttr {
			p.applyAttr(t.text)
			continue
		}
		if t.kind != tokID {
			return nil, fmt.Errorf("verilog line %d: expected statement, got %q", t.line, t.text)
		}
		switch t.text {
		case "endmodule":
			return p.finish(inputs, outputs)
		case "input", "output", "wire":
			names, err := p.parseNameList()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				p.wire(n)
			}
			if t.text == "input" {
				inputs = append(inputs, names...)
			}
			if t.text == "output" {
				outputs = append(outputs, names...)
			}
		default:
			if t.text == dffName {
				if err := p.parseDFF(); err != nil {
					return nil, err
				}
				continue
			}
			c, ok := cellByName[t.text]
			if !ok {
				return nil, fmt.Errorf("verilog line %d: unknown cell type %q", t.line, t.text)
			}
			if err := p.parseInstance(c); err != nil {
				return nil, err
			}
		}
	}
}

func (p *parser) parseNameList() ([]string, error) {
	var names []string
	for {
		n, err := p.expectID()
		if err != nil {
			return nil, err
		}
		names = append(names, n)
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.kind == tokSym && t.text == ";" {
			return names, nil
		}
		if !(t.kind == tokSym && t.text == ",") {
			return nil, fmt.Errorf("verilog line %d: expected ',' or ';'", t.line)
		}
	}
}

// parseConn parses ".PIN(net)" and returns pin name and net wire.
func (p *parser) parseConn() (string, netlist.WireID, error) {
	if err := p.expectSym("."); err != nil {
		return "", 0, err
	}
	pin, err := p.expectID()
	if err != nil {
		return "", 0, err
	}
	if err := p.expectSym("("); err != nil {
		return "", 0, err
	}
	t, err := p.next()
	if err != nil {
		return "", 0, err
	}
	var wid netlist.WireID
	switch t.kind {
	case tokID:
		wid = p.wire(t.text)
	case tokConst0:
		wid = p.b.Const(false)
	case tokConst1:
		wid = p.b.Const(true)
	default:
		return "", 0, fmt.Errorf("verilog line %d: expected net, got %q", t.line, t.text)
	}
	if err := p.expectSym(")"); err != nil {
		return "", 0, err
	}
	return pin, wid, nil
}

func (p *parser) parseConnList() (map[string]netlist.WireID, error) {
	conns := map[string]netlist.WireID{}
	if _, err := p.expectID(); err != nil { // instance name
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	for {
		pin, wid, err := p.parseConn()
		if err != nil {
			return nil, err
		}
		if _, dup := conns[pin]; dup {
			return nil, fmt.Errorf("verilog: duplicate pin %q", pin)
		}
		conns[pin] = wid
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.kind == tokSym && t.text == ")" {
			break
		}
		if !(t.kind == tokSym && t.text == ",") {
			return nil, fmt.Errorf("verilog line %d: expected ',' or ')'", t.line)
		}
	}
	return conns, p.expectSym(";")
}

func (p *parser) parseInstance(c *cell.Cell) error {
	conns, err := p.parseConnList()
	if err != nil {
		return err
	}
	out, ok := conns["Y"]
	if !ok {
		return fmt.Errorf("verilog: %s instance missing .Y output", c.Name)
	}
	inputs := make([]netlist.WireID, c.NumInputs())
	for pi, pin := range c.Pins {
		wid, ok := conns[pin]
		if !ok {
			return fmt.Errorf("verilog: %s instance missing pin .%s", c.Name, pin)
		}
		inputs[pi] = wid
	}
	if len(conns) != c.NumInputs()+1 {
		var extra []string
		for pin := range conns {
			extra = append(extra, pin)
		}
		sort.Strings(extra)
		return fmt.Errorf("verilog: %s instance has unexpected pins %v", c.Name, extra)
	}
	p.b.AddGateWithOutput(c.Kind, inputs, out)
	return nil
}

func (p *parser) parseDFF() error {
	conns, err := p.parseConnList()
	if err != nil {
		return err
	}
	d, okD := conns["D"]
	q, okQ := conns["Q"]
	if !okD || !okQ || len(conns) != 2 {
		return fmt.Errorf("verilog: DFF must have exactly .D and .Q")
	}
	p.b.AddFFWithQ(d, q, p.nextInit, p.nextGroup)
	p.nextInit, p.nextGroup = false, ""
	return nil
}

// applyAttr extracts init/group from an attribute string like
// `init = 1, group = "regfile"`.
func (p *parser) applyAttr(text string) {
	for _, part := range strings.Split(text, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			continue
		}
		key := strings.TrimSpace(kv[0])
		val := strings.TrimSpace(kv[1])
		switch key {
		case "init":
			p.nextInit = val == "1"
		case "group":
			p.nextGroup = strings.Trim(val, "\"")
		}
	}
}

// finish marks the ports and validates the netlist.
func (p *parser) finish(inputs, outputs []string) (*netlist.Netlist, error) {
	for _, n := range inputs {
		p.b.MarkInput(p.wires[n])
	}
	for _, n := range outputs {
		p.b.MarkOutput(p.wires[n])
	}
	if p.raw {
		return p.b.Raw(), nil
	}
	return p.b.Netlist()
}
