package prune

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// buildTwoRegs creates two write-enable registers with independent enables
// whose Q wires feed only their own hold muxes, so the Q fault of each is
// masked exactly in cycles where its enable is 1.
func buildTwoRegs(t testing.TB) (*netlist.Netlist, []netlist.WireID, []netlist.WireID) {
	t.Helper()
	b := netlist.NewBuilder("tworegs")
	d := b.Input("d")
	en1 := b.Input("en1")
	en2 := b.Input("en2")
	q1 := b.FFPlaceholder("q1", false, "")
	q2 := b.FFPlaceholder("q2", false, "")
	b.SetFFD(q1, b.Gate(cell.MUX2, q1, d, en1))
	b.SetFFD(q2, b.Gate(cell.MUX2, q2, d, en2))
	b.MarkOutput(b.Gate(cell.BUF, d))
	nl := b.MustNetlist()
	return nl, []netlist.WireID{q1, q2}, []netlist.WireID{en1, en2, d}
}

// recordPattern drives en1 on even, en2 on every fourth cycle.
func recordPattern(nl *netlist.Netlist, ins []netlist.WireID, cycles int) *sim.Trace {
	m := sim.New(nl)
	c := 0
	env := sim.EnvFunc(func(m *sim.Machine) {
		m.SetValue(ins[0], c%2 == 0)
		m.SetValue(ins[1], c%4 == 0)
		m.SetValue(ins[2], c%3 == 0)
		c++
	})
	return sim.Record(m, env, cycles)
}

func search(t testing.TB, nl *netlist.Netlist, wires []netlist.WireID) *core.MATESet {
	t.Helper()
	res := core.Search(nl, wires, core.DefaultSearchParams())
	return res.Set
}

func TestEvaluateExactCounts(t *testing.T) {
	nl, qs, ins := buildTwoRegs(t)
	set := search(t, nl, qs)
	tr := recordPattern(nl, ins, 8)
	res := Evaluate(set, tr, qs)

	// en1 high in cycles 0,2,4,6 -> q1 masked 4 cycles.
	// en2 high in cycles 0,4    -> q2 masked 2 cycles.
	if res.TotalPoints != 16 {
		t.Fatalf("total = %d", res.TotalPoints)
	}
	if res.MaskedPoints != 6 {
		t.Fatalf("masked = %d, want 6", res.MaskedPoints)
	}
	if res.FaultWires != 2 || res.Cycles != 8 {
		t.Fatalf("res = %+v", res)
	}
	if res.EffectiveMATEs != 2 {
		t.Fatalf("effective = %d", res.EffectiveMATEs)
	}
	if res.Reduction() < 0.37 || res.Reduction() > 0.38 {
		t.Fatalf("reduction = %v", res.Reduction())
	}
}

func TestEvaluateRestrictedFaultSet(t *testing.T) {
	nl, qs, ins := buildTwoRegs(t)
	set := search(t, nl, qs)
	tr := recordPattern(nl, ins, 8)
	res := Evaluate(set, tr, qs[:1]) // only q1
	if res.TotalPoints != 8 || res.MaskedPoints != 4 {
		t.Fatalf("restricted: %+v", res)
	}
	// Only the q1 MATE is applicable/effective for this fault set.
	if res.EffectiveMATEs != 1 {
		t.Fatalf("effective = %d", res.EffectiveMATEs)
	}
}

func TestEvaluateEmptySet(t *testing.T) {
	nl, qs, ins := buildTwoRegs(t)
	tr := recordPattern(nl, ins, 8)
	res := Evaluate(&core.MATESet{}, tr, qs)
	if res.MaskedPoints != 0 || res.EffectiveMATEs != 0 {
		t.Fatalf("empty set: %+v", res)
	}
	if res.Reduction() != 0 {
		t.Fatal("reduction must be 0")
	}
}

func TestSelectTopN(t *testing.T) {
	nl, qs, ins := buildTwoRegs(t)
	set := search(t, nl, qs)
	tr := recordPattern(nl, ins, 64)

	top1 := SelectTopN(set, tr, qs, 1)
	if top1.Size() != 1 {
		t.Fatalf("top1 size = %d", top1.Size())
	}
	// q1's MATE (en1, hot 32 cycles) must beat q2's (en2, hot 16 cycles).
	m := top1.MATEs[0]
	if len(m.Literals) != 1 || m.Literals[0].Wire != ins[0] {
		t.Fatalf("top1 = %s", m.String(nl))
	}

	// top-N with large N keeps only MATEs that ever trigger.
	topAll := SelectTopN(set, tr, qs, 1000)
	if topAll.Size() > set.Size() {
		t.Fatal("selection grew the set")
	}
	for _, m := range topAll.MATEs {
		res := Evaluate(&core.MATESet{MATEs: []*core.MATE{m}}, tr, qs)
		if res.MaskedPoints == 0 {
			t.Fatal("selected MATE never masks")
		}
	}
}

func TestSelectTopNSubsetMonotone(t *testing.T) {
	// On random circuits: reduction(topN) is non-decreasing in N and never
	// exceeds the complete set's reduction.
	rng := rand.New(rand.NewSource(11))
	b := netlist.NewBuilder("randsel")
	var pool, qs []netlist.WireID
	for i := 0; i < 6; i++ {
		pool = append(pool, b.Input(""))
	}
	for i := 0; i < 8; i++ {
		q := b.FFPlaceholder("", false, "ff")
		pool = append(pool, q)
		qs = append(qs, q)
	}
	kinds := []cell.Kind{cell.AND2, cell.OR2, cell.MUX2, cell.NAND2, cell.NOR2, cell.AOI21}
	for i := 0; i < 50; i++ {
		k := kinds[rng.Intn(len(kinds))]
		c := cell.Lookup(k)
		inp := make([]netlist.WireID, c.NumInputs())
		for p := range inp {
			inp[p] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, b.Gate(k, inp...))
	}
	for _, q := range qs {
		b.SetFFD(q, pool[rng.Intn(len(pool))])
	}
	b.MarkOutput(pool[len(pool)-1])
	nl := b.MustNetlist()

	m := sim.New(nl)
	env := sim.EnvFunc(func(m *sim.Machine) {
		for _, in := range m.NL.Inputs {
			m.SetValue(in, rng.Intn(2) == 0)
		}
	})
	tr := sim.Record(m, env, 128)
	set := search(t, nl, qs)
	full := Evaluate(set, tr, qs).Reduction()

	prev := -1.0
	for _, n := range []int{1, 2, 5, 10, 100} {
		sel := SelectTopN(set, tr, qs, n)
		red := Evaluate(sel, tr, qs).Reduction()
		if red < prev-1e-12 {
			t.Fatalf("reduction decreased at n=%d: %v < %v", n, red, prev)
		}
		if red > full+1e-12 {
			t.Fatalf("subset exceeds full set: %v > %v", red, full)
		}
		prev = red
	}
}

func TestMaskedGrid(t *testing.T) {
	nl, qs, ins := buildTwoRegs(t)
	set := search(t, nl, qs)
	tr := recordPattern(nl, ins, 8)
	grid := MaskedGrid(set, tr, qs)
	if len(grid) != 8 {
		t.Fatalf("grid cycles = %d", len(grid))
	}
	for c := 0; c < 8; c++ {
		if grid[c][0] != (c%2 == 0) {
			t.Errorf("cycle %d q1 masked=%v", c, grid[c][0])
		}
		if grid[c][1] != (c%4 == 0) {
			t.Errorf("cycle %d q2 masked=%v", c, grid[c][1])
		}
	}
}

func TestResultString(t *testing.T) {
	r := &Result{TotalPoints: 100, MaskedPoints: 25, EffectiveMATEs: 3}
	s := r.String()
	if s == "" || r.Reduction() != 0.25 {
		t.Fatalf("String/Reduction: %q %v", s, r.Reduction())
	}
}

func TestEvaluateMatchesGrid(t *testing.T) {
	// MaskedPoints must equal the number of true cells in the grid.
	nl, qs, ins := buildTwoRegs(t)
	set := search(t, nl, qs)
	tr := recordPattern(nl, ins, 32)
	res := Evaluate(set, tr, qs)
	grid := MaskedGrid(set, tr, qs)
	var n int64
	for _, row := range grid {
		for _, v := range row {
			if v {
				n++
			}
		}
	}
	if n != res.MaskedPoints {
		t.Fatalf("grid count %d != evaluate %d", n, res.MaskedPoints)
	}
}
