// Package prune quantifies and exploits MATE-based fault-space pruning on
// recorded execution traces: it replays a wire-level trace, evaluates a
// MATE set per cycle, accounts which (flip-flop, cycle) points of the fault
// space are provably benign, and performs the paper's hit-counter top-N
// MATE selection (Section 4, step 3, and the evaluation of Section 5.3).
package prune

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Result summarises one replay of a MATE set against a trace and a fault
// set. TotalPoints is |fault wires| × cycles; MaskedPoints counts the
// (wire, cycle) pairs detected as benign.
type Result struct {
	FaultWires     int
	Cycles         int
	TotalPoints    int64
	MaskedPoints   int64
	EffectiveMATEs int
	// AvgInputs / StdInputs are computed over effective MATEs only —
	// MATEs that triggered at least once on this trace (paper metric).
	AvgInputs float64
	StdInputs float64
	// Interrupted marks a partial replay: the context passed to
	// EvaluateContext was cancelled before every cycle was processed, so
	// MaskedPoints is a lower bound.
	Interrupted bool
	// PerMATE attributes every masked point to the MATE that fired first
	// (lowest set index among the MATEs triggering on that point's cycle
	// and covering its wire), one entry per MATE of the evaluated set that
	// covers at least one fault wire. The PointsPruned fields sum to
	// MaskedPoints exactly.
	PerMATE []MATEStat
}

// MATEStat is the attribution record of one MATE over one replay — the row
// shape of the paper's per-term effectiveness tables (benefit = points
// pruned, cost = term width).
type MATEStat struct {
	// Index is the MATE's position in the evaluated MATESet.
	Index int
	// Literals is the MATE's input width (its hardware cost).
	Literals int
	// Triggers counts the cycles in which the MATE's conjunction held.
	Triggers int64
	// PointsPruned counts the masked fault-space points credited to this
	// MATE (first-to-fire wins; each point is credited exactly once).
	PointsPruned int64
}

// CostBenefit returns the paper's selection metric: fault-space points
// pruned per term literal. A literal-free (always-true) MATE is costed at
// one literal so the ratio stays finite.
func (s MATEStat) CostBenefit() float64 {
	w := s.Literals
	if w < 1 {
		w = 1
	}
	return float64(s.PointsPruned) / float64(w)
}

// RankedMATEs returns PerMATE sorted by the cost/benefit metric
// (descending; ties broken by points pruned, then by set order) — the live
// equivalent of the paper's hit-counter MATE ranking.
func (r *Result) RankedMATEs() []MATEStat {
	out := append([]MATEStat(nil), r.PerMATE...)
	sort.SliceStable(out, func(a, b int) bool {
		ca, cb := out[a].CostBenefit(), out[b].CostBenefit()
		if ca != cb {
			return ca > cb
		}
		if out[a].PointsPruned != out[b].PointsPruned {
			return out[a].PointsPruned > out[b].PointsPruned
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// Reduction returns the fault-space reduction as a fraction in [0, 1].
func (r *Result) Reduction() float64 {
	if r.TotalPoints == 0 {
		return 0
	}
	return float64(r.MaskedPoints) / float64(r.TotalPoints)
}

// String renders the headline numbers.
func (r *Result) String() string {
	return fmt.Sprintf("masked %d/%d points (%.2f%%), %d effective MATEs",
		r.MaskedPoints, r.TotalPoints, 100*r.Reduction(), r.EffectiveMATEs)
}

// compiledLit is a literal pre-resolved to a packed trace-row word/bit.
type compiledLit struct {
	word int32
	bit  uint64
	want bool
}

// evaluator holds a MATE set compiled against a particular fault set for
// fast per-cycle replay.
type evaluator struct {
	mates []*core.MATE
	orig  []int // index of each compiled MATE in the input set
	lits  [][]compiledLit
	masks [][]int32 // compact fault-wire indices per MATE (only fault wires)
	nf    int       // number of fault wires
}

func compile(set *core.MATESet, faultWires []netlist.WireID) *evaluator {
	idx := map[netlist.WireID]int32{}
	for i, w := range faultWires {
		idx[w] = int32(i)
	}
	ev := &evaluator{nf: len(faultWires)}
	for oi, m := range set.MATEs {
		var masks []int32
		for _, w := range m.Masks {
			if ci, ok := idx[w]; ok {
				masks = append(masks, ci)
			}
		}
		if len(masks) == 0 {
			continue // MATE does not cover any wire of this fault set
		}
		lits := make([]compiledLit, len(m.Literals))
		for i, l := range m.Literals {
			lits[i] = compiledLit{word: int32(l.Wire) / 64, bit: 1 << (uint(l.Wire) % 64), want: l.Value}
		}
		ev.mates = append(ev.mates, m)
		ev.orig = append(ev.orig, oi)
		ev.lits = append(ev.lits, lits)
		ev.masks = append(ev.masks, masks)
	}
	return ev
}

func (ev *evaluator) triggers(row []uint64, mi int) bool {
	for _, l := range ev.lits[mi] {
		if (row[l.word]&l.bit != 0) != l.want {
			return false
		}
	}
	return true
}

// Evaluate replays the trace against the MATE set and returns the
// fault-space accounting for the given fault set. Cycles are processed in
// parallel.
func Evaluate(set *core.MATESet, tr *sim.Trace, faultWires []netlist.WireID) *Result {
	return EvaluateContext(context.Background(), set, tr, faultWires)
}

// EvaluateContext is Evaluate with graceful cancellation: when ctx is
// cancelled, the replay workers stop at their next cycle boundary and the
// partial accounting is returned with Interrupted=true.
func EvaluateContext(ctx context.Context, set *core.MATESet, tr *sim.Trace, faultWires []netlist.WireID) *Result {
	return EvaluateInstrumented(ctx, set, tr, faultWires, nil)
}

// EvaluateInstrumented is EvaluateContext with optional observability: a
// non-nil registry receives prune_cycles_done_total, prune_masked_points_total
// and prune_mate_triggers_total as the replay progresses (plus the static
// prune_cycles / prune_fault_wires / prune_mates gauges), all under a
// "prune/replay" span. A nil registry is free beyond one pointer check per
// worker chunk.
func EvaluateInstrumented(ctx context.Context, set *core.MATESet, tr *sim.Trace, faultWires []netlist.WireID, reg *obs.Registry) *Result {
	sp := reg.StartSpan("prune/replay")
	defer sp.End()
	ev := compile(set, faultWires)
	cycles := tr.NumCycles()
	res := &Result{
		FaultWires:  len(faultWires),
		Cycles:      cycles,
		TotalPoints: int64(len(faultWires)) * int64(cycles),
	}
	var cyclesDoneC, maskedC, trigC *obs.Counter
	if reg != nil {
		reg.Gauge("prune_cycles").Set(int64(cycles))
		reg.Gauge("prune_fault_wires").Set(int64(len(faultWires)))
		reg.Gauge("prune_mates").Set(int64(len(ev.mates)))
		cyclesDoneC = reg.Counter("prune_cycles_done_total")
		maskedC = reg.Counter("prune_masked_points_total")
		trigC = reg.Counter("prune_mate_triggers_total")
	}

	nw := runtime.NumCPU()
	if nw > cycles {
		nw = cycles
	}
	if nw < 1 {
		nw = 1
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	mateTrigs := make([]int64, len(ev.mates))
	matePruned := make([]int64, len(ev.mates))
	chunk := (cycles + nw - 1) / nw
	for wk := 0; wk < nw; wk++ {
		lo, hi := wk*chunk, (wk+1)*chunk
		if hi > cycles {
			hi = cycles
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sp := reg.StartSpan("prune/replay/chunk").Detail("cycles %d-%d", lo, hi-1)
			defer sp.End()
			var masked, cyclesDone, trigs int64
			var flushedCycles, flushedMasked, flushedTrigs int64
			localTrig := make([]int64, len(ev.mates))
			localPruned := make([]int64, len(ev.mates))
			bits := make([]uint64, (ev.nf+63)/64)
			for c := lo; c < hi; c++ {
				if c&63 == 0 && ctx.Err() != nil {
					break
				}
				row := tr.Row(c)
				for i := range bits {
					bits[i] = 0
				}
				// MATEs are evaluated in set order, so the first triggering
				// MATE covering a still-unmasked wire earns the point — the
				// deterministic "fired first" attribution rule.
				for mi := range ev.mates {
					if !ev.triggers(row, mi) {
						continue
					}
					localTrig[mi]++
					trigs++
					for _, ci := range ev.masks[mi] {
						w, b := ci/64, uint64(1)<<(uint(ci)%64)
						if bits[w]&b == 0 {
							bits[w] |= b
							masked++
							localPruned[mi]++
						}
					}
				}
				cyclesDone++
				// Flush live counters every 256 cycles so the progress
				// reporter sees movement without per-cycle atomics.
				if cyclesDone&255 == 0 {
					cyclesDoneC.Add(cyclesDone - flushedCycles)
					maskedC.Add(masked - flushedMasked)
					trigC.Add(trigs - flushedTrigs)
					flushedCycles, flushedMasked, flushedTrigs = cyclesDone, masked, trigs
				}
			}
			cyclesDoneC.Add(cyclesDone - flushedCycles)
			maskedC.Add(masked - flushedMasked)
			trigC.Add(trigs - flushedTrigs)
			mu.Lock()
			res.MaskedPoints += masked
			for i := range localTrig {
				mateTrigs[i] += localTrig[i]
				matePruned[i] += localPruned[i]
			}
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()

	res.PerMATE = make([]MATEStat, len(ev.mates))
	var n int
	var sum float64
	for i := range ev.mates {
		res.PerMATE[i] = MATEStat{
			Index:        ev.orig[i],
			Literals:     len(ev.mates[i].Literals),
			Triggers:     mateTrigs[i],
			PointsPruned: matePruned[i],
		}
		if mateTrigs[i] > 0 {
			n++
			sum += float64(len(ev.mates[i].Literals))
		}
	}
	// Publish the attribution as labeled counters so a /metrics scrape can
	// rank MATEs by cost/benefit without waiting for the final Result.
	if reg != nil {
		for _, st := range res.PerMATE {
			if st.PointsPruned == 0 {
				continue
			}
			reg.Counter("prune_mate_points_pruned_total",
				"mate", strconv.Itoa(st.Index), "width", strconv.Itoa(st.Literals)).Add(st.PointsPruned)
		}
	}
	res.EffectiveMATEs = n
	if n > 0 {
		res.AvgInputs = sum / float64(n)
		var vs float64
		for i := range ev.mates {
			if mateTrigs[i] > 0 {
				d := float64(len(ev.mates[i].Literals)) - res.AvgInputs
				vs += d * d
			}
		}
		res.StdInputs = math.Sqrt(vs / float64(n))
	}
	res.Interrupted = ctx.Err() != nil
	return res
}

// SelectTopN performs the paper's MATE selection: replay a trace and,
// walking the MATEs from the one that statically masks the most faults
// downwards, credit each MATE with every *additional* fault wire it masks
// in each cycle; finally keep the N MATEs with the highest hit counters.
// The input set is expected to be sorted by coverage (Search does this);
// the returned set preserves hit order.
func SelectTopN(set *core.MATESet, tr *sim.Trace, faultWires []netlist.WireID, n int) *core.MATESet {
	ev := compile(set, faultWires)
	cycles := tr.NumCycles()
	hits := make([]int64, len(ev.mates))

	nw := runtime.NumCPU()
	if nw > cycles {
		nw = cycles
	}
	if nw < 1 {
		nw = 1
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	chunk := (cycles + nw - 1) / nw
	for wk := 0; wk < nw; wk++ {
		lo, hi := wk*chunk, (wk+1)*chunk
		if hi > cycles {
			hi = cycles
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			local := make([]int64, len(ev.mates))
			bits := make([]uint64, (ev.nf+63)/64)
			for c := lo; c < hi; c++ {
				row := tr.Row(c)
				for i := range bits {
					bits[i] = 0
				}
				for mi := range ev.mates {
					if !ev.triggers(row, mi) {
						continue
					}
					for _, ci := range ev.masks[mi] {
						w, b := ci/64, uint64(1)<<(uint(ci)%64)
						if bits[w]&b == 0 {
							bits[w] |= b
							local[mi]++
						}
					}
				}
			}
			mu.Lock()
			for i, h := range local {
				hits[i] += h
			}
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()

	order := make([]int, len(ev.mates))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return hits[order[a]] > hits[order[b]] })
	if n > len(order) {
		n = len(order)
	}
	out := &core.MATESet{}
	for _, i := range order[:n] {
		if hits[i] == 0 {
			break // never-triggering MATEs are useless in a top-N set
		}
		out.MATEs = append(out.MATEs, ev.mates[i])
	}
	return out
}

// MaskedGrid replays the trace and returns, per cycle, the set of fault
// wires detected as benign — the data behind Figure 1b's pruned fault-space
// grid.
func MaskedGrid(set *core.MATESet, tr *sim.Trace, faultWires []netlist.WireID) [][]bool {
	ev := compile(set, faultWires)
	grid := make([][]bool, tr.NumCycles())
	for c := range grid {
		row := tr.Row(c)
		g := make([]bool, len(faultWires))
		for mi := range ev.mates {
			if !ev.triggers(row, mi) {
				continue
			}
			for _, ci := range ev.masks[mi] {
				g[ci] = true
			}
		}
		grid[c] = g
	}
	return grid
}
