package prune

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// TestPerMATEAttributionSums: the per-MATE credits must partition the masked
// points exactly — every pruned point is credited to precisely one MATE.
func TestPerMATEAttributionSums(t *testing.T) {
	nl, qs, ins := buildTwoRegs(t)
	set := search(t, nl, qs)
	tr := recordPattern(nl, ins, 64)
	reg := obs.NewRegistry()
	res := EvaluateInstrumented(context.Background(), set, tr, qs, reg)

	if len(res.PerMATE) != set.Size() {
		t.Fatalf("PerMATE has %d rows for a %d-MATE set", len(res.PerMATE), set.Size())
	}
	var sum int64
	for _, st := range res.PerMATE {
		if st.PointsPruned < 0 || st.Triggers < 0 {
			t.Fatalf("negative attribution: %+v", st)
		}
		if st.PointsPruned > 0 && st.Triggers == 0 {
			t.Fatalf("MATE %d pruned %d points without triggering", st.Index, st.PointsPruned)
		}
		if st.Literals != len(set.MATEs[st.Index].Literals) {
			t.Fatalf("MATE %d width %d, set says %d", st.Index, st.Literals, len(set.MATEs[st.Index].Literals))
		}
		sum += st.PointsPruned
	}
	if sum != res.MaskedPoints {
		t.Fatalf("per-MATE credits sum to %d, masked = %d", sum, res.MaskedPoints)
	}

	// EffectiveMATEs must agree with the triggered rows.
	n := 0
	for _, st := range res.PerMATE {
		if st.Triggers > 0 {
			n++
		}
	}
	if n != res.EffectiveMATEs {
		t.Fatalf("EffectiveMATEs = %d, triggered rows = %d", res.EffectiveMATEs, n)
	}

	// The labeled live counters mirror the final attribution.
	var live int64
	for _, st := range res.PerMATE {
		if st.PointsPruned == 0 {
			continue
		}
		c := reg.Counter("prune_mate_points_pruned_total",
			"mate", itoa(st.Index), "width", itoa(st.Literals))
		live += c.Value()
	}
	if live != res.MaskedPoints {
		t.Fatalf("labeled counters sum to %d, masked = %d", live, res.MaskedPoints)
	}
}

// TestRankedMATEs: rows come back sorted by cost/benefit, ties broken by
// points then index, without losing any row.
func TestRankedMATEs(t *testing.T) {
	res := &Result{PerMATE: []MATEStat{
		{Index: 0, Literals: 4, PointsPruned: 4},  // c/b 1.0
		{Index: 1, Literals: 1, PointsPruned: 9},  // c/b 9.0
		{Index: 2, Literals: 2, PointsPruned: 18}, // c/b 9.0, more points
		{Index: 3, Literals: 0, PointsPruned: 2},  // width clamped to 1, c/b 2.0
	}}
	ranked := res.RankedMATEs()
	want := []int{2, 1, 3, 0}
	if len(ranked) != len(want) {
		t.Fatalf("ranked %d rows", len(ranked))
	}
	for i, idx := range want {
		if ranked[i].Index != idx {
			t.Fatalf("rank %d = MATE %d, want %d (%+v)", i, ranked[i].Index, idx, ranked)
		}
	}
	if cb := ranked[2].CostBenefit(); cb != 2.0 {
		t.Fatalf("zero-width cost/benefit = %v, want 2", cb)
	}
	// The input slice must stay untouched.
	if res.PerMATE[0].Index != 0 {
		t.Fatal("RankedMATEs mutated the result")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
