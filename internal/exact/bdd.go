// Package exact upgrades the heuristic MATE search to a provable one. It
// symbolically computes, per fault cone, the *masking condition*: the exact
// predicate over the cone's border wires under which flipping the cone
// source provably does not reach any sink (flip-flop D input or primary
// output) within the clock cycle. On top of that condition it offers three
// services:
//
//   - VerifyMATESet re-proves every heuristic MATE: a MATE is sound iff its
//     literal conjunction implies the masking condition of every wire it
//     claims to mask.
//   - FindExactTerms extracts an irredundant prime-implicant cover of each
//     masking condition (Minato-Morreale ISOP), yielding masking terms the
//     depth/term-bounded path enumeration missed.
//   - Unmaskability certificates: when the masking condition reduces to the
//     canonical ⊥, no assignment of the border wires masks the fault — a
//     proof that no MATE over border wires can exist for that flip-flop.
//
// The engine is a small, zero-dependency BDD package (complement edges,
// node dedup via hash-consing, an ITE computed cache, and a bounded node
// budget with graceful per-cone fallback). Fault cones are tiny — hundreds
// of gates, as OpenSEA and the SAT-based fault-resistance literature also
// exploit — so exact symbolic analysis is cheap in practice.
package exact

import (
	"errors"
	"fmt"
	"math"
)

// Ref is a BDD edge: a node index shifted left by one, with bit 0 as the
// complement mark. The constant ⊤ is the terminal node 0 taken positively;
// ⊥ is its complement.
type Ref uint32

// Canonical constants.
const (
	True  Ref = 0 // terminal, positive edge
	False Ref = 1 // terminal, complemented edge
)

func (r Ref) idx() uint32        { return uint32(r >> 1) }
func (r Ref) complemented() bool { return r&1 == 1 }

// Not returns the complement of a function — free with complement edges.
func (r Ref) Not() Ref { return r ^ 1 }

// IsConst reports whether the edge points at the terminal.
func (r Ref) IsConst() bool { return r.idx() == 0 }

// node is one decision node: branch on Level; Lo is the level=0 child,
// Hi the level=1 child. Canonical form: Hi is never complemented (a node
// whose then-edge would be complemented is stored complemented itself),
// Lo != Hi, and (Level, Lo, Hi) triples are unique. The terminal lives at
// index 0 with Level = terminalLevel.
type node struct {
	Level  int32
	Lo, Hi Ref
}

const terminalLevel = math.MaxInt32

// ErrNodeBudget is returned when an operation would allocate more nodes
// than the BDD's configured budget. Callers fall back gracefully: the cone
// in question is reported as unproven/truncated rather than aborting the
// whole run.
var ErrNodeBudget = errors.New("exact: BDD node budget exceeded")

// errBudget is the panic sentinel thrown inside the recursive operations
// and recovered at the exported API boundary.
type errBudget struct{}

// BDD is one reduced ordered binary decision diagram universe: a node
// arena, the hash-consing unique table, and the ITE computed cache.
// Variables are dense levels 0..NumVars-1 in a fixed order chosen by the
// caller. A BDD is not safe for concurrent use; the exact engine gives
// every cone (and thus every worker) its own universe.
type BDD struct {
	nodes  []node
	unique map[node]Ref
	cache  map[iteKey]Ref
	budget int
}

type iteKey struct{ f, g, h Ref }

// DefaultNodeBudget bounds one cone's BDD universe. Masking conditions of
// the evaluated cores peak far below this; the budget is a safety valve
// against pathological cones, not a tuning knob.
const DefaultNodeBudget = 1 << 21

// NewBDD creates a universe with the given live-node budget (0 means
// DefaultNodeBudget).
func NewBDD(budget int) *BDD {
	if budget <= 0 {
		budget = DefaultNodeBudget
	}
	b := &BDD{
		nodes:  make([]node, 1, 1024),
		unique: make(map[node]Ref, 1024),
		cache:  make(map[iteKey]Ref, 1024),
		budget: budget,
	}
	b.nodes[0] = node{Level: terminalLevel}
	return b
}

// NumNodes returns the number of allocated nodes (the terminal included) —
// the exact_bdd_nodes accounting unit.
func (b *BDD) NumNodes() int { return len(b.nodes) }

// Var returns the function of the single variable at the given level.
func (b *BDD) Var(level int) Ref {
	return b.mk(int32(level), False, True)
}

func (b *BDD) level(r Ref) int32 { return b.nodes[r.idx()].Level }

// cofactors splits f at level lv (which must be <= f's top level).
func (b *BDD) cofactors(f Ref, lv int32) (lo, hi Ref) {
	n := &b.nodes[f.idx()]
	if n.Level != lv {
		return f, f
	}
	lo, hi = n.Lo, n.Hi
	if f.complemented() {
		lo, hi = lo.Not(), hi.Not()
	}
	return lo, hi
}

// mk returns the canonical node (lv, lo, hi), hash-consing and applying the
// complement-edge normal form.
func (b *BDD) mk(lv int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	// Normal form: the then-edge is stored positively.
	flip := false
	if hi.complemented() {
		lo, hi = lo.Not(), hi.Not()
		flip = true
	}
	key := node{Level: lv, Lo: lo, Hi: hi}
	if r, ok := b.unique[key]; ok {
		if flip {
			return r.Not()
		}
		return r
	}
	if len(b.nodes) >= b.budget {
		panic(errBudget{})
	}
	r := Ref(uint32(len(b.nodes)) << 1)
	b.nodes = append(b.nodes, key)
	b.unique[key] = r
	if flip {
		return r.Not()
	}
	return r
}

// ite computes If-Then-Else(f, g, h) = f·g + ¬f·h, the universal connective.
func (b *BDD) ite(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return f.Not()
	}
	// Standard triple normalisation so equivalent calls share cache slots:
	// prefer the smallest top variable in f, and a positive f and g.
	if g == True || h == False {
		// f+h == ite(f,1,h) and f·g == ite(f,g,0): symmetric in f and the
		// other operand — order them by reference for cache hits.
		if g == True && h.idx() < f.idx() {
			f, h = h, f
		}
		if h == False && g.idx() < f.idx() {
			f, g = g, f
		}
	}
	if f.complemented() {
		f, g, h = f.Not(), h, g
	}
	var flip bool
	if g.complemented() {
		g, h, flip = g.Not(), h.Not(), true
	}
	key := iteKey{f, g, h}
	if r, ok := b.cache[key]; ok {
		if flip {
			return r.Not()
		}
		return r
	}
	lv := b.level(f)
	if l := b.level(g); l < lv {
		lv = l
	}
	if l := b.level(h); l < lv {
		lv = l
	}
	f0, f1 := b.cofactors(f, lv)
	g0, g1 := b.cofactors(g, lv)
	h0, h1 := b.cofactors(h, lv)
	r := b.mk(lv, b.ite(f0, g0, h0), b.ite(f1, g1, h1))
	b.cache[key] = r
	if flip {
		return r.Not()
	}
	return r
}

// The exported boolean operations. Each recovers the node-budget sentinel
// and converts it to ErrNodeBudget, so a blown cone degrades gracefully.

// Apply runs op, translating a node-budget overflow into ErrNodeBudget.
func (b *BDD) apply(op func() Ref) (r Ref, err error) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(errBudget); ok {
				err = ErrNodeBudget
				return
			}
			panic(p)
		}
	}()
	return op(), nil
}

// And returns f ∧ g.
func (b *BDD) And(f, g Ref) (Ref, error) {
	return b.apply(func() Ref { return b.ite(f, g, False) })
}

// Or returns f ∨ g.
func (b *BDD) Or(f, g Ref) (Ref, error) {
	return b.apply(func() Ref { return b.ite(f, True, g) })
}

// Xnor returns f ≡ g, the per-sink equivalence of the masking condition.
func (b *BDD) Xnor(f, g Ref) (Ref, error) {
	return b.apply(func() Ref { return b.ite(f, g, g.Not()) })
}

// Ite returns if f then g else h.
func (b *BDD) Ite(f, g, h Ref) (Ref, error) {
	return b.apply(func() Ref { return b.ite(f, g, h) })
}

// Eval evaluates the function under a total assignment of the variables.
func (b *BDD) Eval(f Ref, assign func(level int) bool) bool {
	for !f.IsConst() {
		n := &b.nodes[f.idx()]
		c := f.complemented()
		if assign(int(n.Level)) {
			f = n.Hi
		} else {
			f = n.Lo
		}
		if c {
			f = f.Not()
		}
	}
	return f == True
}

// Restrict cofactors f by a partial assignment: every variable with an
// entry in assign is fixed to that value. Used to check MATE implication —
// lits ⇒ mask iff mask restricted by the literals is ⊤.
func (b *BDD) Restrict(f Ref, assign map[int]bool) (Ref, error) {
	memo := make(map[Ref]Ref)
	var rec func(f Ref) Ref
	rec = func(f Ref) Ref {
		if f.IsConst() {
			return f
		}
		if r, ok := memo[f]; ok {
			return r
		}
		n := &b.nodes[f.idx()]
		lo, hi := n.Lo, n.Hi
		if f.complemented() {
			lo, hi = lo.Not(), hi.Not()
		}
		var r Ref
		if v, ok := assign[int(n.Level)]; ok {
			if v {
				r = rec(hi)
			} else {
				r = rec(lo)
			}
		} else {
			r = b.mk(n.Level, rec(lo), rec(hi))
		}
		memo[f] = r
		return r
	}
	return b.apply(func() Ref { return rec(f) })
}

// String renders an edge for diagnostics.
func (r Ref) String() string {
	switch r {
	case True:
		return "⊤"
	case False:
		return "⊥"
	}
	if r.complemented() {
		return fmt.Sprintf("¬n%d", r.idx())
	}
	return fmt.Sprintf("n%d", r.idx())
}
