package exact

import (
	"math/rand"
	"testing"
)

// cubeAssign converts a cube into a Restrict-style partial assignment.
func cubeAssign(c Cube) map[int]bool {
	m := make(map[int]bool, len(c))
	for _, l := range c {
		m[l.Level] = l.Value
	}
	return m
}

// TestISOPRandom checks the three ISOP guarantees on random functions:
// every cube implies f (soundness), the cubes together cover f exactly
// (completeness), and every cube is prime (dropping any literal breaks the
// implication).
func TestISOPRandom(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := NewBDD(0)
		f := buildBDD(t, b, randExpr(rng, 6, 6))
		cubes, err := ISOP(b, f, 0)
		if err != nil {
			t.Fatal(err)
		}
		cover := False
		for ci, c := range cubes {
			// Soundness: f restricted by the cube is a tautology.
			r, err := b.Restrict(f, cubeAssign(c))
			if err != nil {
				t.Fatal(err)
			}
			if r != True {
				t.Fatalf("seed %d cube %d: does not imply f", seed, ci)
			}
			// Primality: no literal is droppable.
			for drop := range c {
				sub := append(append(Cube{}, c[:drop]...), c[drop+1:]...)
				r, err := b.Restrict(f, cubeAssign(sub))
				if err != nil {
					t.Fatal(err)
				}
				if r == True {
					t.Fatalf("seed %d cube %d: literal %d redundant (not prime)", seed, ci, drop)
				}
			}
			// Levels strictly increasing (sorted cube).
			for i := 1; i < len(c); i++ {
				if c[i].Level <= c[i-1].Level {
					t.Fatalf("seed %d cube %d: unsorted levels", seed, ci)
				}
			}
			// Accumulate the cover.
			cb := True
			for _, l := range c {
				v := b.Var(l.Level)
				if !l.Value {
					v = v.Not()
				}
				if cb, err = b.And(cb, v); err != nil {
					t.Fatal(err)
				}
			}
			if cover, err = b.Or(cover, cb); err != nil {
				t.Fatal(err)
			}
		}
		if cover != f {
			t.Fatalf("seed %d: cover (%d cubes) != f", seed, len(cubes))
		}
	}
}

func TestISOPConstants(t *testing.T) {
	b := NewBDD(0)
	cubes, err := ISOP(b, False, 0)
	if err != nil || len(cubes) != 0 {
		t.Fatalf("ISOP(⊥) = %v, %v; want empty", cubes, err)
	}
	cubes, err = ISOP(b, True, 0)
	if err != nil || len(cubes) != 1 || len(cubes[0]) != 0 {
		t.Fatalf("ISOP(⊤) = %v, %v; want one empty cube", cubes, err)
	}
}

func TestISOPCubeBudget(t *testing.T) {
	// Parity of 6 variables needs 2^5 = 32 disjoint cubes; cap at 4.
	b := NewBDD(0)
	f := b.Var(0)
	var err error
	for v := 1; v < 6; v++ {
		eq, e := b.Xnor(f, b.Var(v))
		if e != nil {
			t.Fatal(e)
		}
		f = eq.Not()
	}
	if _, err = ISOP(b, f, 4); err != ErrCubeBudget {
		t.Fatalf("want ErrCubeBudget, got %v", err)
	}
}
