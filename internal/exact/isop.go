package exact

import "errors"

// CubeLit is one literal of an extracted implicant: the BDD variable at
// Level must carry Value.
type CubeLit struct {
	Level int
	Value bool
}

// Cube is a conjunction of literals, sorted by level. An empty cube is ⊤.
type Cube []CubeLit

// ErrCubeBudget is returned when an ISOP extraction would produce more
// cubes than the configured cap. The affected cone falls back to its
// heuristic terms only (still sound, just less complete).
var ErrCubeBudget = errors.New("exact: ISOP cube budget exceeded")

type errCubes struct{}

// isopState carries one extraction: the universe, the growing cover and the
// cube cap.
type isopState struct {
	b     *BDD
	cubes []Cube
	max   int
}

// ISOP extracts an irredundant sum-of-products cover of f made of prime
// implicants, using the Minato-Morreale procedure over the (L, U) interval
// with L = U = f. Every returned cube implies f (soundness is structural),
// together the cubes cover f exactly, and no cube or literal can be
// dropped. maxCubes caps the cover size (0 = no cap); the node budget of b
// still applies.
func ISOP(b *BDD, f Ref, maxCubes int) ([]Cube, error) {
	st := &isopState{b: b, max: maxCubes}
	var err error
	_, err = func() (r Ref, err error) {
		defer func() {
			if p := recover(); p != nil {
				switch p.(type) {
				case errBudget:
					err = ErrNodeBudget
				case errCubes:
					err = ErrCubeBudget
				default:
					panic(p)
				}
			}
		}()
		return st.isop(f, f, nil), nil
	}()
	if err != nil {
		return nil, err
	}
	return st.cubes, nil
}

// isop returns the BDD of the cover it emitted for the interval [L, U],
// appending the cubes (prefixed by the literals accumulated in path) to
// st.cubes.
func (st *isopState) isop(L, U Ref, path Cube) Ref {
	b := st.b
	if L == False {
		return False
	}
	if U == True {
		st.emit(path)
		return True
	}
	lv := b.level(L)
	if l := b.level(U); l < lv {
		lv = l
	}
	L0, L1 := b.cofactors(L, lv)
	U0, U1 := b.cofactors(U, lv)

	// Minterms of L0 that no cube without ¬x can cover (they are not in
	// U1) must go into cubes carrying ¬x; symmetrically for x.
	Lx0 := b.ite(L0, U1.Not(), False)
	Lx1 := b.ite(L1, U0.Not(), False)
	G0 := st.isop(Lx0, U0, append(path, CubeLit{Level: int(lv), Value: false}))
	G1 := st.isop(Lx1, U1, append(path, CubeLit{Level: int(lv), Value: true}))

	// Whatever remains uncovered may be covered by cubes independent of x.
	rem0 := b.ite(L0, G0.Not(), False)
	rem1 := b.ite(L1, G1.Not(), False)
	Lrem := b.ite(rem0, True, rem1)
	Ud := b.ite(U0, U1, False)
	Gd := st.isop(Lrem, Ud, path)

	return b.ite(b.Var(int(lv)), b.ite(G1, True, Gd), b.ite(G0, True, Gd))
}

func (st *isopState) emit(path Cube) {
	if st.max > 0 && len(st.cubes) >= st.max {
		panic(errCubes{})
	}
	c := make(Cube, len(path))
	copy(c, path)
	// The recursion pushes literals in descending level order already
	// (levels only grow along a path), so the cube is sorted by level.
	st.cubes = append(st.cubes, c)
}
