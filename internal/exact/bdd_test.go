package exact

import (
	"math/rand"
	"testing"
)

// expr is a reference boolean expression evaluated directly, used to check
// the BDD against ground truth.
type expr struct {
	op       byte // 'v' var, '!' not, '&', '|', '=' xnor, '?' ite
	varLevel int
	kids     []*expr
}

func (e *expr) eval(assign []bool) bool {
	switch e.op {
	case 'v':
		return assign[e.varLevel]
	case '!':
		return !e.kids[0].eval(assign)
	case '&':
		return e.kids[0].eval(assign) && e.kids[1].eval(assign)
	case '|':
		return e.kids[0].eval(assign) || e.kids[1].eval(assign)
	case '=':
		return e.kids[0].eval(assign) == e.kids[1].eval(assign)
	case '?':
		if e.kids[0].eval(assign) {
			return e.kids[1].eval(assign)
		}
		return e.kids[2].eval(assign)
	}
	panic("bad op")
}

func randExpr(rng *rand.Rand, nVars, depth int) *expr {
	if depth == 0 || rng.Intn(4) == 0 {
		return &expr{op: 'v', varLevel: rng.Intn(nVars)}
	}
	switch rng.Intn(5) {
	case 0:
		return &expr{op: '!', kids: []*expr{randExpr(rng, nVars, depth-1)}}
	case 1:
		return &expr{op: '&', kids: []*expr{randExpr(rng, nVars, depth-1), randExpr(rng, nVars, depth-1)}}
	case 2:
		return &expr{op: '|', kids: []*expr{randExpr(rng, nVars, depth-1), randExpr(rng, nVars, depth-1)}}
	case 3:
		return &expr{op: '=', kids: []*expr{randExpr(rng, nVars, depth-1), randExpr(rng, nVars, depth-1)}}
	default:
		return &expr{op: '?', kids: []*expr{
			randExpr(rng, nVars, depth-1), randExpr(rng, nVars, depth-1), randExpr(rng, nVars, depth-1)}}
	}
}

func buildBDD(t *testing.T, b *BDD, e *expr) Ref {
	t.Helper()
	var r Ref
	var err error
	switch e.op {
	case 'v':
		return b.Var(e.varLevel)
	case '!':
		return buildBDD(t, b, e.kids[0]).Not()
	case '&':
		r, err = b.And(buildBDD(t, b, e.kids[0]), buildBDD(t, b, e.kids[1]))
	case '|':
		r, err = b.Or(buildBDD(t, b, e.kids[0]), buildBDD(t, b, e.kids[1]))
	case '=':
		r, err = b.Xnor(buildBDD(t, b, e.kids[0]), buildBDD(t, b, e.kids[1]))
	case '?':
		r, err = b.Ite(buildBDD(t, b, e.kids[0]), buildBDD(t, b, e.kids[1]), buildBDD(t, b, e.kids[2]))
	}
	if err != nil {
		t.Fatalf("unexpected budget error: %v", err)
	}
	return r
}

func TestBDDConstants(t *testing.T) {
	if True.Not() != False || False.Not() != True {
		t.Fatal("complement of constants broken")
	}
	if !True.IsConst() || !False.IsConst() {
		t.Fatal("constants must be const")
	}
	b := NewBDD(0)
	if !b.Eval(True, nil) || b.Eval(False, nil) {
		t.Fatal("Eval on constants broken")
	}
}

// TestBDDCanonicity: semantically equal functions built along different
// syntactic routes must be the same Ref (that is the whole point of a
// reduced ordered BDD — equivalence checks are pointer comparisons).
func TestBDDCanonicity(t *testing.T) {
	b := NewBDD(0)
	x, y := b.Var(0), b.Var(1)
	and1, _ := b.And(x, y)
	or1, _ := b.Or(x.Not(), y.Not())
	if and1 != or1.Not() {
		t.Fatalf("De Morgan not canonical: %v vs %v", and1, or1.Not())
	}
	xn1, _ := b.Xnor(x, y)
	xn2, _ := b.Xnor(y, x)
	if xn1 != xn2 {
		t.Fatalf("XNOR not commutative-canonical: %v vs %v", xn1, xn2)
	}
	// ite(x, y, y) == y without allocating.
	ite, _ := b.Ite(x, y, y)
	if ite != y {
		t.Fatal("ite(f,g,g) != g")
	}
}

// TestBDDNormalForm checks the complement-edge invariant on every
// allocated node: then-edges are stored positively and Lo != Hi.
func TestBDDNormalForm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBDD(0)
	for i := 0; i < 50; i++ {
		buildBDD(t, b, randExpr(rng, 6, 5))
	}
	for i, n := range b.nodes {
		if i == 0 {
			continue // terminal
		}
		if n.Hi.complemented() {
			t.Fatalf("node %d: complemented then-edge", i)
		}
		if n.Lo == n.Hi {
			t.Fatalf("node %d: redundant test", i)
		}
		if b.level(n.Lo) <= n.Level || b.level(n.Hi) <= n.Level {
			t.Fatalf("node %d: child level not below", i)
		}
	}
}

// TestBDDAgainstTruthTable cross-checks random formulas against direct
// expression evaluation on every assignment, and canonicity of the result
// (same truth table → same Ref).
func TestBDDAgainstTruthTable(t *testing.T) {
	const nVars = 6
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := NewBDD(0)
		e := randExpr(rng, nVars, 6)
		f := buildBDD(t, b, e)
		byTable := map[uint64]Ref{}
		var table uint64
		for a := 0; a < 1<<nVars; a++ {
			assign := make([]bool, nVars)
			for v := range assign {
				assign[v] = a&(1<<v) != 0
			}
			want := e.eval(assign)
			got := b.Eval(f, func(level int) bool { return assign[level] })
			if got != want {
				t.Fatalf("seed %d assign %06b: BDD=%v want %v", seed, a, got, want)
			}
			if want {
				table |= 1 << a
			}
		}
		if prev, ok := byTable[table]; ok && prev != f {
			t.Fatalf("seed %d: same truth table, different refs", seed)
		}
		byTable[table] = f
	}
}

func TestBDDRestrict(t *testing.T) {
	const nVars = 6
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := NewBDD(0)
		e := randExpr(rng, nVars, 6)
		f := buildBDD(t, b, e)
		fixed := map[int]bool{}
		for v := 0; v < nVars; v++ {
			if rng.Intn(2) == 0 {
				fixed[v] = rng.Intn(2) == 1
			}
		}
		r, err := b.Restrict(f, fixed)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < 1<<nVars; a++ {
			assign := make([]bool, nVars)
			for v := range assign {
				if fv, ok := fixed[v]; ok {
					assign[v] = fv
				} else {
					assign[v] = a&(1<<v) != 0
				}
			}
			want := e.eval(assign)
			got := b.Eval(r, func(level int) bool { return assign[level] })
			if got != want {
				t.Fatalf("seed %d: restrict mismatch at %06b", seed, a)
			}
		}
	}
}

func TestBDDNodeBudget(t *testing.T) {
	b := NewBDD(1) // only the terminal fits
	if _, err := b.apply(func() Ref { return b.Var(0) }); err != ErrNodeBudget {
		t.Fatalf("want ErrNodeBudget, got %v", err)
	}
	// The universe stays usable for constants after a blown operation.
	if !b.Eval(True, nil) {
		t.Fatal("universe unusable after budget error")
	}
}

func TestSatPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		b := NewBDD(0)
		f := buildBDD(t, b, randExpr(rng, 6, 5))
		for _, want := range []bool{false, true} {
			path := satPath(b, f, want)
			if f.IsConst() && (f == True) != want {
				// The opposite constant is unreachable.
				if path != nil {
					t.Fatalf("found a path to %v in constant %v", want, f)
				}
				continue
			}
			// Reachable: the (possibly empty) path must force the value.
			assign := map[int]bool{}
			for _, cl := range path {
				assign[cl.Level] = cl.Value
			}
			// The partial path must force the value regardless of the rest.
			for fill := 0; fill < 2; fill++ {
				got := b.Eval(f, func(level int) bool {
					if v, ok := assign[level]; ok {
						return v
					}
					return fill == 1
				})
				if got != want {
					t.Fatalf("satPath does not force %v (fill=%d)", want, fill)
				}
			}
		}
	}
}
