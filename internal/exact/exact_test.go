package exact

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// andNetlist: ff gated by in0 into a second FF. The masking condition of
// ff is exactly ¬in0 (the AND's other input at 0 absorbs the flip).
func andNetlist(t *testing.T) (*netlist.Netlist, netlist.WireID, netlist.WireID) {
	t.Helper()
	b := netlist.NewBuilder("and-core")
	in0 := b.Input("in0")
	q := b.FFPlaceholder("ff", false, "")
	g := b.Gate(cell.AND2, q, in0)
	b.FF("ff2", g, false, "")
	b.SetFFD(q, in0)
	return b.MustNetlist(), q, in0
}

// xorNetlist: ff feeds an XOR into a second FF — every flip propagates, so
// ff is provably unmaskable.
func xorNetlist(t *testing.T) (*netlist.Netlist, netlist.WireID) {
	t.Helper()
	b := netlist.NewBuilder("xor-core")
	in0 := b.Input("in0")
	q := b.FFPlaceholder("ff", false, "")
	g := b.Gate(cell.XOR2, q, in0)
	b.FF("ff2", g, false, "")
	b.SetFFD(q, in0)
	return b.MustNetlist(), q
}

func TestMaskingConditionAND(t *testing.T) {
	nl, q, in0 := andNetlist(t)
	mc, err := MaskingCondition(nl, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Unmaskable() || mc.Always() {
		t.Fatalf("AND cone should be conditionally maskable, got cond=%v", mc.Cond)
	}
	if len(mc.Border) != 1 || mc.Border[0] != in0 {
		t.Fatalf("border = %v, want [in0]", mc.Border)
	}
	// Condition must be exactly ¬in0.
	want := mc.B.Var(mc.VarOf[in0]).Not()
	if mc.Cond != want {
		t.Fatalf("cond = %v, want ¬in0 = %v", mc.Cond, want)
	}
}

func TestMaskingConditionUnmaskable(t *testing.T) {
	nl, q := xorNetlist(t)
	mc, err := MaskingCondition(nl, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !mc.Unmaskable() {
		t.Fatalf("XOR cone must be unmaskable, cond=%v", mc.Cond)
	}
}

func TestFindExactTermsAndMerge(t *testing.T) {
	nl, q, in0 := andNetlist(t)
	reg := obs.NewRegistry()
	res := FindExactTerms(nl, []netlist.WireID{q}, nil, Options{Obs: reg})
	if res.TermsFound != 1 || len(res.PerWire) != 1 {
		t.Fatalf("TermsFound = %d, want 1", res.TermsFound)
	}
	term := res.PerWire[0].Terms[0]
	if len(term) != 1 || term[0].Wire != in0 || term[0].Value != false {
		t.Fatalf("term = %v, want [in0=0]", term)
	}
	if res.PerWire[0].PrimeCover != 1 {
		t.Fatalf("PrimeCover = %d, want 1", res.PerWire[0].PrimeCover)
	}

	set := &core.MATESet{}
	if created := res.MergeInto(set); created != 1 || set.Size() != 1 {
		t.Fatalf("merge created %d MATEs, set size %d", created, set.Size())
	}
	// Merging again must deduplicate, not duplicate.
	if created := res.MergeInto(set); created != 0 || set.Size() != 1 {
		t.Fatalf("re-merge not idempotent: set size %d", set.Size())
	}
	if got := reg.Counter("exact_terms_found_total").Value(); got != 1 {
		t.Fatalf("exact_terms_found_total = %d, want 1", got)
	}
}

func TestFindExactTermsSkipsImpliedTerms(t *testing.T) {
	nl, q, in0 := andNetlist(t)
	heur := &core.MATESet{MATEs: []*core.MATE{{
		Literals: []core.Literal{{Wire: in0, Value: false}},
		Masks:    []netlist.WireID{q},
	}}}
	res := FindExactTerms(nl, []netlist.WireID{q}, heur, Options{})
	if res.TermsFound != 0 {
		t.Fatalf("heuristic already has the term; TermsFound = %d, want 0", res.TermsFound)
	}
}

func TestFindExactTermsCertificates(t *testing.T) {
	nl, q := xorNetlist(t)
	reg := obs.NewRegistry()
	res := FindExactTerms(nl, []netlist.WireID{q}, nil, Options{Obs: reg})
	if len(res.Certificates) != 1 || res.Certificates[0].Wire != q {
		t.Fatalf("certificates = %v, want one for ff", res.Certificates)
	}
	c := res.Certificates[0]
	if c.ConeGates != 1 || c.BorderWires != 1 || c.BDDNodes < 2 {
		t.Fatalf("certificate stats off: %+v", c)
	}
	if got := reg.Counter("exact_unmaskable_total").Value(); got != 1 {
		t.Fatalf("exact_unmaskable_total = %d, want 1", got)
	}
	set := &core.MATESet{}
	res.MergeInto(set)
	if len(set.Certificates) != 1 {
		t.Fatal("certificate not merged into set")
	}
	if !set.CertifiedUnmaskable()[q] {
		t.Fatal("CertifiedUnmaskable lookup broken")
	}
}

func TestVerifyMATESetSound(t *testing.T) {
	nl, q, in0 := andNetlist(t)
	set := &core.MATESet{MATEs: []*core.MATE{{
		Literals: []core.Literal{{Wire: in0, Value: false}},
		Masks:    []netlist.WireID{q},
	}}}
	res := VerifyMATESet(nl, set, Options{})
	if !res.Sound() || res.PairsChecked != 1 || res.PairsProved != 1 {
		t.Fatalf("sound set rejected: %+v", res)
	}
}

func TestVerifyMATESetViolation(t *testing.T) {
	nl, q, in0 := andNetlist(t)
	reg := obs.NewRegistry()
	set := &core.MATESet{MATEs: []*core.MATE{{
		// Bogus: claims masking when the AND is transparent.
		Literals: []core.Literal{{Wire: in0, Value: true}},
		Masks:    []netlist.WireID{q},
	}}}
	res := VerifyMATESet(nl, set, Options{Obs: reg})
	if res.Sound() || len(res.Violations) != 1 {
		t.Fatalf("unsound set accepted: %+v", res)
	}
	v := res.Violations[0]
	if v.MATE != 0 || v.Wire != q || v.WireName != "ff" {
		t.Fatalf("violation misattributed: %+v", v)
	}
	// The witness must pin in0 to 1 (the literal assignment itself is the
	// full counterexample here).
	if len(v.Witness) != 1 || v.Witness[0].Wire != in0 || !v.Witness[0].Value {
		t.Fatalf("witness = %v, want [in0=1]", v.Witness)
	}
	if got := reg.Counter("exact_violations_total").Value(); got != 1 {
		t.Fatalf("exact_violations_total = %d, want 1", got)
	}
}

func TestVerifyMATESetNonBorderLiteralsIgnored(t *testing.T) {
	// A literal on a wire outside the cone border cannot constrain the
	// masking condition; the implication check must still pass when the
	// border literals alone imply masking.
	nl, q, in0 := andNetlist(t)
	other, ok := nl.WireByName("ff2")
	if !ok {
		t.Fatal("ff2 missing")
	}
	set := &core.MATESet{MATEs: []*core.MATE{{
		Literals: []core.Literal{{Wire: in0, Value: false}, {Wire: other, Value: true}},
		Masks:    []netlist.WireID{q},
	}}}
	res := VerifyMATESet(nl, set, Options{})
	if !res.Sound() {
		t.Fatalf("free non-border literal broke verification: %+v", res)
	}
}

func TestVerifyMATESetBadCertificate(t *testing.T) {
	nl, q, _ := andNetlist(t)
	set := &core.MATESet{Certificates: []core.Certificate{{Wire: q}}}
	res := VerifyMATESet(nl, set, Options{})
	if res.Sound() || len(res.BadCertificates) != 1 || res.BadCertificates[0] != q {
		t.Fatalf("bogus certificate accepted: %+v", res)
	}

	nlx, qx := xorNetlist(t)
	setx := &core.MATESet{Certificates: []core.Certificate{{Wire: qx}}}
	resx := VerifyMATESet(nlx, setx, Options{})
	if !resx.Sound() {
		t.Fatalf("valid certificate rejected: %+v", resx)
	}
}

func TestNodeBudgetFallback(t *testing.T) {
	nl, q, _ := andNetlist(t)
	res := FindExactTerms(nl, []netlist.WireID{q}, nil, Options{NodeBudget: 1})
	if res.Truncated != 1 || !res.PerWire[0].Truncated {
		t.Fatalf("budget fallback missing: %+v", res)
	}
	vres := VerifyMATESet(nl, &core.MATESet{MATEs: []*core.MATE{{
		Literals: []core.Literal{},
		Masks:    []netlist.WireID{q},
	}}}, Options{NodeBudget: 1})
	if len(vres.Unproven) != 1 || vres.Unproven[0] != q {
		t.Fatalf("verify budget fallback missing: %+v", vres)
	}
}

func TestVerifyHeuristicSearchOutput(t *testing.T) {
	// End-to-end: the heuristic search over a random netlist must produce
	// only MATEs the exact engine proves sound.
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed * 13))
		nl := randomGateNetlist(rng)
		sr := core.Search(nl, nl.FFQWires(), core.DefaultSearchParams())
		res := VerifyMATESet(nl, sr.Set, Options{})
		if len(res.Unproven) > 0 {
			t.Fatalf("seed %d: tiny cones blew the budget: %v", seed, res.Unproven)
		}
		if !res.Sound() {
			t.Fatalf("seed %d: heuristic MATE disproved: %+v", seed, res.Violations)
		}
		if res.PairsChecked == 0 {
			t.Fatalf("seed %d: nothing verified", seed)
		}
	}
}
