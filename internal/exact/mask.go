package exact

import (
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/netlist"
)

// MaskCond is the symbolically computed masking condition of one fault
// cone: the exact predicate over the cone's border wires under which a flip
// of the source provably does not change any sink within the clock cycle.
type MaskCond struct {
	Wire netlist.WireID
	Cone *core.Cone
	// B is the BDD universe the condition lives in; Cond the condition.
	B    *BDD
	Cond Ref
	// Border maps BDD variable levels back to wires: Border[level] is the
	// border wire variable `level` stands for. VarOf is the inverse.
	Border []netlist.WireID
	VarOf  map[netlist.WireID]int
}

// Unmaskable reports whether the condition reduced to the canonical ⊥: no
// assignment of the border wires masks the fault. Because the masking
// condition quantifies over ALL border assignments (a superset of the
// reachable ones), this is a proof that no MATE over border wires exists.
func (mc *MaskCond) Unmaskable() bool { return mc.Cond == False }

// Always reports whether the condition is the canonical ⊤ — the fault can
// never reach a sink (a dangling flip-flop), so an always-true MATE is
// sound.
func (mc *MaskCond) Always() bool { return mc.Cond == True }

// Eval evaluates the condition under a concrete border-wire valuation.
func (mc *MaskCond) Eval(value func(netlist.WireID) bool) bool {
	return mc.B.Eval(mc.Cond, func(level int) bool { return value(mc.Border[level]) })
}

// MaskingCondition computes the exact masking condition of the fault cone
// of one wire. Variables are the cone's border wires, ordered by first use
// in the cone's topological gate order (a locality-preserving static order
// that keeps the intermediate BDDs small on circuit-shaped cones).
//
// The condition is built by evaluating every in-cone wire twice — once with
// the source fixed to 0, once to 1 — and conjoining, per sink, the
// equivalence of the two evaluations. The flip direction cancels out of the
// equivalence, so the condition is independent of the flip-flop's actual
// (fault-free) value, exactly like the paper's MATE semantics.
//
// On node-budget overflow the error is ErrNodeBudget and the caller treats
// the cone as unproven (graceful fallback); no partial condition escapes.
func MaskingCondition(nl *netlist.Netlist, wire netlist.WireID, budget int) (*MaskCond, error) {
	cone := core.ComputeCone(nl, wire)
	return maskingConditionOfCone(nl, wire, cone, budget)
}

func maskingConditionOfCone(nl *netlist.Netlist, wire netlist.WireID, cone *core.Cone, budget int) (*MaskCond, error) {
	b := NewBDD(budget)
	mc := &MaskCond{Wire: wire, Cone: cone, B: b, VarOf: map[netlist.WireID]int{}}

	// Border variables in first-use order over the topological gate list.
	for _, gi := range cone.Gates {
		for _, in := range nl.Gates[gi].Inputs {
			if cone.InCone[in] {
				continue
			}
			if _, ok := mc.VarOf[in]; !ok {
				mc.VarOf[in] = len(mc.Border)
				mc.Border = append(mc.Border, in)
			}
		}
	}

	// val0/val1: per in-cone wire, its function of the border wires with
	// the source fixed to 0 resp. 1. Border wires read as their variable in
	// both evaluations.
	val0 := map[netlist.WireID]Ref{wire: False}
	val1 := map[netlist.WireID]Ref{wire: True}
	read := func(vals map[netlist.WireID]Ref, w netlist.WireID) Ref {
		if r, ok := vals[w]; ok {
			return r
		}
		return mc.B.Var(mc.VarOf[w])
	}
	cond, err := b.apply(func() Ref {
		for _, gi := range cone.Gates {
			g := &nl.Gates[gi]
			in0 := make([]Ref, len(g.Inputs))
			in1 := make([]Ref, len(g.Inputs))
			for p, w := range g.Inputs {
				in0[p] = read(val0, w)
				in1[p] = read(val1, w)
			}
			val0[g.Output] = b.cellFn(g.Cell, in0)
			val1[g.Output] = b.cellFn(g.Cell, in1)
		}
		cond := True
		for _, s := range cone.Sinks {
			eq := b.ite(read(val0, s), read(val1, s), read(val1, s).Not())
			cond = b.ite(cond, eq, False)
			if cond == False {
				break // provably unmaskable; no need to conjoin further sinks
			}
		}
		return cond
	})
	if err != nil {
		return nil, err
	}
	mc.Cond = cond
	return mc, nil
}

// cellFn composes a library cell's boolean function over BDD-valued inputs
// by Shannon expansion on the pins: at most 2^n-1 ITE calls for an n-input
// cell, with n ≤ cell.MaxInputs. Panics with the budget sentinel on
// overflow — callers run it inside apply.
func (b *BDD) cellFn(c *cell.Cell, inputs []Ref) Ref {
	n := c.NumInputs()
	var rec func(pin int, vec uint32) Ref
	rec = func(pin int, vec uint32) Ref {
		if pin == n {
			if c.Eval(vec) {
				return True
			}
			return False
		}
		lo := rec(pin+1, vec)
		hi := rec(pin+1, vec|1<<pin)
		return b.ite(inputs[pin], hi, lo)
	}
	return rec(0, 0)
}
