package exact

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// The property-based agreement test: for seeded random netlists (the same
// two generator families as internal/core's property tests), the BDD
// masking condition must agree with the exact duplicated-cone oracle
// (core.Oracle.MaskedExact) on every border assignment — exhaustively when
// the border is small, sampled otherwise — and for both values of the
// faulted flip-flop, which doubles as a check that the condition really is
// independent of the flip direction.

func randomGateNetlist(rng *rand.Rand) *netlist.Netlist {
	kinds := []cell.Kind{
		cell.BUF, cell.INV, cell.AND2, cell.NAND2, cell.OR2, cell.NOR2,
		cell.XOR2, cell.XNOR2, cell.AND3, cell.OR3, cell.MUX2, cell.MAJ3,
		cell.AOI21, cell.OAI21,
	}
	b := netlist.NewBuilder("agree-gates")
	var avail []netlist.WireID
	nIn := 2 + rng.Intn(3)
	for i := 0; i < nIn; i++ {
		avail = append(avail, b.Input(fmt.Sprintf("in%d", i)))
	}
	nFF := 2 + rng.Intn(4)
	qs := make([]netlist.WireID, nFF)
	for i := range qs {
		qs[i] = b.FFPlaceholder(fmt.Sprintf("ff%d", i), rng.Intn(2) == 1, "")
		avail = append(avail, qs[i])
	}
	nGates := 8 + rng.Intn(20)
	for i := 0; i < nGates; i++ {
		k := kinds[rng.Intn(len(kinds))]
		ins := make([]netlist.WireID, cell.Lookup(k).NumInputs())
		for p := range ins {
			ins[p] = avail[rng.Intn(len(avail))]
		}
		avail = append(avail, b.Gate(k, ins...))
	}
	for _, q := range qs {
		b.SetFFD(q, avail[rng.Intn(len(avail))])
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		b.MarkOutput(avail[len(avail)-1-rng.Intn(nGates)])
	}
	return b.MustNetlist()
}

func randomSynthNetlist(rng *rand.Rand) *netlist.Netlist {
	b := netlist.NewBuilder("agree-synth")
	c := synth.New(b)
	width := 2 + rng.Intn(3)
	a := c.InputBus("a", width)
	d := c.InputBus("b", width)
	state := c.RegisterPlaceholder("acc", width, uint64(rng.Intn(1<<width)), "")

	buses := []synth.Bus{a, d, state}
	nOps := 3 + rng.Intn(5)
	for i := 0; i < nOps; i++ {
		x := buses[rng.Intn(len(buses))]
		y := buses[rng.Intn(len(buses))]
		var out synth.Bus
		switch rng.Intn(6) {
		case 0:
			out = c.And(x, y)
		case 1:
			out = c.Or(x, y)
		case 2:
			out = c.Xor(x, y)
		case 3:
			out = c.Not(x)
		case 4:
			out = c.Adder(x, y, c.B.Const(false)).Sum
		case 5:
			out = c.Mux2(c.Equal(x, y), x, y)
		}
		buses = append(buses, out)
	}
	next := buses[len(buses)-1]
	c.ConnectRegisterAlways(state, next)
	c.OutputBus(buses[rng.Intn(len(buses))])
	return b.MustNetlist()
}

// agreeOnWire cross-checks the masking condition of one wire against the
// oracle over border assignments.
func agreeOnWire(t *testing.T, nl *netlist.Netlist, oracle *core.Oracle, w netlist.WireID, rng *rand.Rand) {
	t.Helper()
	mc, err := MaskingCondition(nl, w, 0)
	if err != nil {
		t.Fatalf("wire %s: %v", nl.WireName(w), err)
	}
	nb := len(mc.Border)
	exhaustive := nb <= 12
	trials := 1 << nb
	if !exhaustive {
		trials = 2048
	}
	values := make([]bool, nl.NumWires())
	for trial := 0; trial < trials; trial++ {
		for lv, bw := range mc.Border {
			if exhaustive {
				values[bw] = trial&(1<<lv) != 0
			} else {
				values[bw] = rng.Intn(2) == 1
			}
		}
		for _, srcVal := range []bool{false, true} {
			// Settle the cone under this border assignment so the oracle
			// sees a consistent cycle state.
			values[w] = srcVal
			for _, gi := range mc.Cone.Gates {
				g := &nl.Gates[gi]
				var in uint32
				for p, iw := range g.Inputs {
					if values[iw] {
						in |= 1 << p
					}
				}
				values[g.Output] = g.Cell.Eval(in)
			}
			got := mc.Eval(func(bw netlist.WireID) bool { return values[bw] })
			want := oracle.MaskedExact(mc.Cone, values)
			if got != want {
				t.Fatalf("wire %s, border trial %d, src=%v: BDD says masked=%v, oracle says %v",
					nl.WireName(w), trial, srcVal, got, want)
			}
		}
	}
}

func TestBDDOracleAgreement(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("gates-%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			nl := randomGateNetlist(rng)
			oracle := core.NewOracle(nl)
			for _, q := range nl.FFQWires() {
				agreeOnWire(t, nl, oracle, q, rng)
			}
		})
		t.Run(fmt.Sprintf("synth-%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed + 1000))
			nl := randomSynthNetlist(rng)
			oracle := core.NewOracle(nl)
			for _, q := range nl.FFQWires() {
				agreeOnWire(t, nl, oracle, q, rng)
			}
		})
	}
}

// TestExactTermsSoundOnRandomNetlists drives the full FindExactTerms path
// on random netlists and validates every produced term and certificate
// against the oracle: whenever a term triggers, the oracle must agree the
// wire is masked; certified wires must never be maskable.
func TestExactTermsSoundOnRandomNetlists(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed * 77))
			nl := randomGateNetlist(rng)
			oracle := core.NewOracle(nl)
			wires := nl.FFQWires()
			res := FindExactTerms(nl, wires, nil, Options{Workers: 1})
			certified := map[netlist.WireID]bool{}
			for _, c := range res.Certificates {
				certified[c.Wire] = true
			}
			values := make([]bool, nl.NumWires())
			for i := range res.PerWire {
				we := &res.PerWire[i]
				if we.Truncated {
					t.Fatalf("tiny netlist truncated on wire %s", nl.WireName(we.Wire))
				}
				cone := core.ComputeCone(nl, we.Wire)
				// Random consistent states: set FFs+inputs, settle all gates.
				for trial := 0; trial < 200; trial++ {
					for _, w := range append(append([]netlist.WireID{}, nl.Inputs...), nl.FFQWires()...) {
						values[w] = rng.Intn(2) == 1
					}
					for _, gi := range nl.EvalOrder() {
						g := &nl.Gates[gi]
						var in uint32
						for p, iw := range g.Inputs {
							if values[iw] {
								in |= 1 << p
							}
						}
						values[g.Output] = g.Cell.Eval(in)
					}
					masked := oracle.MaskedExact(cone, values)
					if certified[we.Wire] && masked {
						t.Fatalf("wire %s certified unmaskable but oracle masks it", nl.WireName(we.Wire))
					}
					for ti, term := range we.Terms {
						triggers := true
						for _, l := range term {
							if values[l.Wire] != l.Value {
								triggers = false
								break
							}
						}
						if triggers && !masked {
							t.Fatalf("wire %s term %d triggers but oracle says unmasked", nl.WireName(we.Wire), ti)
						}
					}
				}
			}
		})
	}
}
