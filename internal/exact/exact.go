package exact

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Options configures the exact engine.
type Options struct {
	// NodeBudget bounds each cone's BDD universe (0 = DefaultNodeBudget).
	// A cone that blows the budget degrades gracefully: verification
	// reports it unproven, term extraction keeps the heuristic terms only.
	NodeBudget int
	// MaxTermsPerWire caps the prime-implicant cover extracted per faulty
	// wire (0 = DefaultMaxTermsPerWire). A truncated wire keeps no exact
	// terms (a partial ISOP emission order is not canonical) and is listed
	// in FindResult.Truncated.
	MaxTermsPerWire int
	// MaxTermWidth drops prime implicants with more literals than this
	// (0 = unlimited). Width is the paper's hardware-cost metric; very wide
	// terms trigger rarely and cost many trigger inputs.
	MaxTermWidth int
	// Workers parallelises the per-wire analyses (0 = GOMAXPROCS).
	Workers int
	// Obs, when non-nil, receives exact_bdd_nodes_total,
	// exact_terms_found_total, exact_unmaskable_total and the verification
	// counters as the analysis progresses.
	Obs *obs.Registry
}

// DefaultMaxTermsPerWire bounds the per-wire prime cover; it matches the
// heuristic search's MaxMATEsPerWire default.
const DefaultMaxTermsPerWire = 512

func (o Options) nodeBudget() int {
	if o.NodeBudget <= 0 {
		return DefaultNodeBudget
	}
	return o.NodeBudget
}

func (o Options) maxTerms() int {
	if o.MaxTermsPerWire <= 0 {
		return DefaultMaxTermsPerWire
	}
	return o.MaxTermsPerWire
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// ---------------------------------------------------------------------------
// VerifyMATESet
// ---------------------------------------------------------------------------

// TermViolation is one disproved soundness claim: the MATE's literal
// conjunction does not imply the masking condition of a wire it masks.
// Witness is a border-wire assignment satisfying every literal while the
// flip still escapes the cone — a concrete counterexample.
type TermViolation struct {
	MATE     int
	Wire     netlist.WireID
	WireName string
	Witness  []core.Literal
}

func (v TermViolation) String() string {
	name := v.WireName
	if name == "" {
		name = fmt.Sprintf("wire#%d", v.Wire)
	}
	return fmt.Sprintf("MATE #%d does not imply the masking condition of %s", v.MATE, name)
}

// VerifyResult is the outcome of re-proving a MATE set.
type VerifyResult struct {
	MATEs        int
	PairsChecked int // (MATE, masked wire) implications attempted
	PairsProved  int
	Violations   []TermViolation
	// Unproven lists wires whose masking condition blew the node budget;
	// their pairs are neither proved nor disproved (graceful fallback).
	Unproven []netlist.WireID
	// BadCertificates lists certified-unmaskable wires whose masking
	// condition is NOT ≡ false (an unsound certificate), plus wires both
	// certified and covered by a MATE (mutually contradictory claims).
	BadCertificates []netlist.WireID
	BDDNodes        int64
	Elapsed         time.Duration
}

// Sound reports whether every attempted implication was proved (budget
// fallbacks are not counted against soundness, but are visible).
func (r *VerifyResult) Sound() bool { return len(r.Violations) == 0 && len(r.BadCertificates) == 0 }

// VerifyMATESet independently re-proves every MATE of the set: for each
// (MATE, masked wire) pair, the literal conjunction must imply the exact
// masking condition of the wire's fault cone. Literals on wires outside the
// cone border cannot constrain the condition and are ignored (the
// mate-border lint analyzer flags them separately); the implication check
// is therefore exactly "triggering states ⊆ masked states" over the free
// border semantics the MATE construction promises. Certificates riding in
// the set are re-proved too: a certified wire's condition must be ≡ false
// and no MATE may claim to mask it.
func VerifyMATESet(nl *netlist.Netlist, set *core.MATESet, opts Options) *VerifyResult {
	start := time.Now()
	sp := opts.Obs.StartSpan("exact/verify")
	defer sp.End()
	met := newMetrics(opts.Obs)

	// Group the proof obligations per masked wire: one masking condition
	// serves every MATE covering that wire.
	type obligation struct {
		wire  netlist.WireID
		mates []int
	}
	byWire := map[netlist.WireID]*obligation{}
	var order []netlist.WireID
	for mi, m := range set.MATEs {
		for _, w := range m.Masks {
			ob := byWire[w]
			if ob == nil {
				ob = &obligation{wire: w}
				byWire[w] = ob
				order = append(order, w)
			}
			ob.mates = append(ob.mates, mi)
		}
	}
	certified := set.CertifiedUnmaskable()
	for _, c := range set.Certificates {
		if _, ok := byWire[c.Wire]; !ok {
			order = append(order, c.Wire)
			byWire[c.Wire] = &obligation{wire: c.Wire}
		}
	}

	type wireVerdict struct {
		checked, proved int
		violations      []TermViolation
		unproven        bool
		badCert         bool
		nodes           int64
	}
	verdicts := make([]wireVerdict, len(order))
	runParallel(len(order), opts.workers(), func(i int) {
		w := order[i]
		ob := byWire[w]
		v := &verdicts[i]
		mc, err := MaskingCondition(nl, w, opts.nodeBudget())
		if err != nil {
			v.unproven = true
			return
		}
		v.nodes = int64(mc.B.NumNodes())
		if certified[w] {
			// Certificate obligations: condition ≡ ⊥, and no MATE covers w.
			if !mc.Unmaskable() || len(ob.mates) > 0 {
				v.badCert = true
			}
		}
		for _, mi := range ob.mates {
			v.checked++
			m := set.MATEs[mi]
			assign := map[int]bool{}
			for _, l := range m.Literals {
				if lv, ok := mc.VarOf[l.Wire]; ok {
					assign[lv] = l.Value
				}
			}
			rest, err := mc.B.Restrict(mc.Cond, assign)
			if err != nil {
				v.unproven = true
				continue
			}
			if rest == True {
				v.proved++
				continue
			}
			// Build the counterexample: the literal assignment plus any
			// path of the restricted condition to ⊥.
			witness := append([]core.Literal(nil), m.Literals...)
			for _, cl := range satPath(mc.B, rest, false) {
				witness = append(witness, core.Literal{Wire: mc.Border[cl.Level], Value: cl.Value})
			}
			sort.Slice(witness, func(a, b int) bool { return witness[a].Wire < witness[b].Wire })
			v.violations = append(v.violations, TermViolation{
				MATE: mi, Wire: w, WireName: nl.WireName(w), Witness: witness,
			})
		}
	})

	res := &VerifyResult{MATEs: set.Size()}
	for i := range verdicts {
		v := &verdicts[i]
		res.PairsChecked += v.checked
		res.PairsProved += v.proved
		res.Violations = append(res.Violations, v.violations...)
		res.BDDNodes += v.nodes
		if v.unproven {
			res.Unproven = append(res.Unproven, order[i])
		}
		if v.badCert {
			res.BadCertificates = append(res.BadCertificates, order[i])
		}
	}
	sort.Slice(res.Violations, func(a, b int) bool {
		if res.Violations[a].MATE != res.Violations[b].MATE {
			return res.Violations[a].MATE < res.Violations[b].MATE
		}
		return res.Violations[a].Wire < res.Violations[b].Wire
	})
	sortWires(res.Unproven)
	sortWires(res.BadCertificates)
	res.Elapsed = time.Since(start)
	met.verify(res)
	return res
}

// ---------------------------------------------------------------------------
// FindExactTerms
// ---------------------------------------------------------------------------

// WireExact is the exact analysis of one faulty wire.
type WireExact struct {
	Wire        netlist.WireID
	ConeGates   int
	BorderWires int
	BDDNodes    int
	// Unmaskable: the masking condition is ≡ false (certificate emitted).
	Unmaskable bool
	// Terms is the prime-implicant cover of the masking condition, already
	// filtered against the heuristic set (terms some heuristic MATE
	// implies for this wire are dropped) and the width cap.
	Terms [][]core.Literal
	// PrimeCover is the unfiltered cover size (how many prime implicants
	// the condition has, before heuristic-overlap filtering).
	PrimeCover int
	// Truncated: the node or cube budget was hit; Terms is empty and the
	// wire keeps its heuristic terms only.
	Truncated bool
}

// FindResult aggregates an exact term-finding run.
type FindResult struct {
	PerWire      []WireExact
	Certificates []core.Certificate
	// TermsFound counts the (term, wire) pairs the heuristic set did not
	// already imply — the exact engine's net contribution.
	TermsFound int
	Truncated  int
	BDDNodes   int64
	Elapsed    time.Duration
}

// FindExactTerms computes, for every given faulty wire, the exact masking
// condition and its prime-implicant cover, returning the terms the
// heuristic set (may be nil) does not already imply, plus unmaskability
// certificates for wires whose condition is ≡ false.
func FindExactTerms(nl *netlist.Netlist, wires []netlist.WireID, heuristic *core.MATESet, opts Options) *FindResult {
	start := time.Now()
	sp := opts.Obs.StartSpan("exact/find")
	defer sp.End()
	met := newMetrics(opts.Obs)

	// Heuristic terms per wire, for the implied-term filter.
	heurByWire := map[netlist.WireID][][]core.Literal{}
	if heuristic != nil {
		for _, m := range heuristic.MATEs {
			for _, w := range m.Masks {
				heurByWire[w] = append(heurByWire[w], m.Literals)
			}
		}
	}

	res := &FindResult{PerWire: make([]WireExact, len(wires))}
	runParallel(len(wires), opts.workers(), func(i int) {
		w := wires[i]
		we := &res.PerWire[i]
		we.Wire = w
		mc, err := MaskingCondition(nl, w, opts.nodeBudget())
		if err != nil {
			we.Truncated = true
			return
		}
		we.ConeGates = mc.Cone.NumGates()
		we.BorderWires = len(mc.Border)
		we.BDDNodes = mc.B.NumNodes()
		if mc.Unmaskable() {
			we.Unmaskable = true
			return
		}
		cubes, err := ISOP(mc.B, mc.Cond, opts.maxTerms())
		if err != nil {
			we.Truncated = true
			we.BDDNodes = mc.B.NumNodes()
			return
		}
		we.BDDNodes = mc.B.NumNodes()
		we.PrimeCover = len(cubes)
		for _, cube := range cubes {
			if opts.MaxTermWidth > 0 && len(cube) > opts.MaxTermWidth {
				continue
			}
			lits := make([]core.Literal, len(cube))
			for j, cl := range cube {
				lits[j] = core.Literal{Wire: mc.Border[cl.Level], Value: cl.Value}
			}
			sort.Slice(lits, func(a, b int) bool { return lits[a].Wire < lits[b].Wire })
			if impliedByAny(heurByWire[w], lits) {
				continue
			}
			we.Terms = append(we.Terms, lits)
		}
	})

	for i := range res.PerWire {
		we := &res.PerWire[i]
		res.BDDNodes += int64(we.BDDNodes)
		if we.Truncated {
			res.Truncated++
			continue
		}
		if we.Unmaskable {
			res.Certificates = append(res.Certificates, core.Certificate{
				Wire: we.Wire, ConeGates: we.ConeGates,
				BorderWires: we.BorderWires, BDDNodes: we.BDDNodes,
			})
			continue
		}
		res.TermsFound += len(we.Terms)
	}
	sort.Slice(res.Certificates, func(a, b int) bool { return res.Certificates[a].Wire < res.Certificates[b].Wire })
	res.Elapsed = time.Since(start)
	met.find(res)
	return res
}

// MergeInto merges the exact terms and certificates into the MATE set,
// deduplicating against existing literal sets (masks merge) and re-sorting
// by coverage. It returns the number of genuinely new MATEs created.
func (r *FindResult) MergeInto(set *core.MATESet) int {
	byKey := map[string]*core.MATE{}
	for _, m := range set.MATEs {
		byKey[m.Key()] = m
	}
	created := 0
	for i := range r.PerWire {
		we := &r.PerWire[i]
		for _, lits := range we.Terms {
			m := &core.MATE{Literals: lits}
			key := m.Key()
			if prev, ok := byKey[key]; ok {
				insertMask(prev, we.Wire)
				continue
			}
			m.Masks = []netlist.WireID{we.Wire}
			byKey[key] = m
			set.MATEs = append(set.MATEs, m)
			created++
		}
	}
	// Certificates replace (do not join) any stale certificate list: the
	// exact run is the authority on unmaskability.
	set.Certificates = append([]core.Certificate(nil), r.Certificates...)
	set.SortByCoverage()
	return created
}

// insertMask adds a wire to a MATE's sorted mask list if absent.
func insertMask(m *core.MATE, w netlist.WireID) {
	i := sort.Search(len(m.Masks), func(i int) bool { return m.Masks[i] >= w })
	if i < len(m.Masks) && m.Masks[i] == w {
		return
	}
	m.Masks = append(m.Masks, 0)
	copy(m.Masks[i+1:], m.Masks[i:])
	m.Masks[i] = w
}

// impliedByAny reports whether some existing term's literal set is a subset
// of the candidate's — whenever the candidate triggers, that existing term
// already triggers and masks the wire, so the candidate adds nothing.
// Both sides are sorted by wire.
func impliedByAny(existing [][]core.Literal, cand []core.Literal) bool {
outer:
	for _, ex := range existing {
		if len(ex) > len(cand) {
			continue
		}
		j := 0
		for _, l := range ex {
			for j < len(cand) && cand[j].Wire < l.Wire {
				j++
			}
			if j == len(cand) || cand[j].Wire != l.Wire || cand[j].Value != l.Value {
				continue outer
			}
			j++
		}
		return true
	}
	return false
}

// satPath returns a partial assignment (as cube literals) leading f to the
// requested constant — the witness extractor for counterexamples.
func satPath(b *BDD, f Ref, want bool) Cube {
	var path Cube
	target := False
	if want {
		target = True
	}
	var rec func(f Ref) bool
	rec = func(f Ref) bool {
		if f.IsConst() {
			return f == target
		}
		n := &b.nodes[f.idx()]
		lo, hi := n.Lo, n.Hi
		if f.complemented() {
			lo, hi = lo.Not(), hi.Not()
		}
		path = append(path, CubeLit{Level: int(n.Level), Value: false})
		if rec(lo) {
			return true
		}
		path[len(path)-1].Value = true
		if rec(hi) {
			return true
		}
		path = path[:len(path)-1]
		return false
	}
	if !rec(f) {
		return nil
	}
	return path
}

// runParallel fans f over n items with w workers, preserving index
// determinism (results land in caller-indexed slots).
func runParallel(n, w int, f func(i int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	ch := make(chan int)
	done := make(chan struct{})
	for k := 0; k < w; k++ {
		go func() {
			for i := range ch {
				f(i)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	for k := 0; k < w; k++ {
		<-done
	}
}

func sortWires(ws []netlist.WireID) {
	sort.Slice(ws, func(a, b int) bool { return ws[a] < ws[b] })
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

// metrics holds the exact engine's observability handles; nil-receiver safe
// like the other subsystems.
type metrics struct {
	nodes      *obs.Counter // exact_bdd_nodes_total
	terms      *obs.Counter // exact_terms_found_total
	unmaskable *obs.Counter // exact_unmaskable_total
	proved     *obs.Counter // exact_pairs_proved_total
	violations *obs.Counter // exact_violations_total
	unproven   *obs.Counter // exact_unproven_total
	truncated  *obs.Counter // exact_truncated_total
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	return &metrics{
		nodes:      reg.Counter("exact_bdd_nodes_total"),
		terms:      reg.Counter("exact_terms_found_total"),
		unmaskable: reg.Counter("exact_unmaskable_total"),
		proved:     reg.Counter("exact_pairs_proved_total"),
		violations: reg.Counter("exact_violations_total"),
		unproven:   reg.Counter("exact_unproven_total"),
		truncated:  reg.Counter("exact_truncated_total"),
	}
}

func (m *metrics) verify(r *VerifyResult) {
	if m == nil {
		return
	}
	m.nodes.Add(r.BDDNodes)
	m.proved.Add(int64(r.PairsProved))
	m.violations.Add(int64(len(r.Violations) + len(r.BadCertificates)))
	m.unproven.Add(int64(len(r.Unproven)))
}

func (m *metrics) find(r *FindResult) {
	if m == nil {
		return
	}
	m.nodes.Add(r.BDDNodes)
	m.terms.Add(int64(r.TermsFound))
	m.unmaskable.Add(int64(len(r.Certificates)))
	m.truncated.Add(int64(r.Truncated))
}
