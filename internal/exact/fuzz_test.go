package exact

import (
	"testing"
)

// FuzzBDDEval interprets the fuzz input as a tiny stack program building a
// boolean function over 6 variables, tracking a 64-bit truth table as the
// ground truth alongside the BDD. Every operation must leave BDD and truth
// table in agreement on all 64 assignments, and semantically equal stack
// entries must be the identical Ref (canonicity).
func FuzzBDDEval(f *testing.F) {
	f.Add([]byte{0, 1, 8, 2, 9, 3, 10})               // vars, and, or, xnor chains
	f.Add([]byte{0, 7, 1, 7, 8, 2, 3, 9, 10})         // with negations
	f.Add([]byte{5, 4, 3, 11, 0, 1, 2, 11, 8, 7})     // ite mixes
	f.Add([]byte{0, 1, 2, 3, 4, 5, 8, 8, 8, 8, 8, 7}) // deep and chain
	f.Fuzz(func(t *testing.T, prog []byte) {
		const nVars = 6
		b := NewBDD(1 << 16)
		// Truth tables over 6 vars are uint64 bitmaps indexed by assignment.
		var varTable [nVars]uint64
		for a := 0; a < 64; a++ {
			for v := 0; v < nVars; v++ {
				if a&(1<<v) != 0 {
					varTable[v] |= 1 << a
				}
			}
		}
		type entry struct {
			f     Ref
			table uint64
		}
		stack := []entry{}
		pop := func() entry {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			return e
		}
		for _, op := range prog {
			var err error
			switch {
			case op < nVars:
				stack = append(stack, entry{b.Var(int(op)), varTable[op]})
			case op == 6:
				stack = append(stack, entry{True, ^uint64(0)})
			case op == 7 && len(stack) >= 1:
				e := pop()
				stack = append(stack, entry{e.f.Not(), ^e.table})
			case op == 8 && len(stack) >= 2:
				x, y := pop(), pop()
				var r Ref
				r, err = b.And(x.f, y.f)
				stack = append(stack, entry{r, x.table & y.table})
			case op == 9 && len(stack) >= 2:
				x, y := pop(), pop()
				var r Ref
				r, err = b.Or(x.f, y.f)
				stack = append(stack, entry{r, x.table | y.table})
			case op == 10 && len(stack) >= 2:
				x, y := pop(), pop()
				var r Ref
				r, err = b.Xnor(x.f, y.f)
				stack = append(stack, entry{r, ^(x.table ^ y.table)})
			case op == 11 && len(stack) >= 3:
				c, x, y := pop(), pop(), pop()
				var r Ref
				r, err = b.Ite(c.f, x.f, y.f)
				stack = append(stack, entry{r, c.table&x.table | ^c.table&y.table})
			default:
				continue
			}
			if err != nil {
				t.Skip("node budget hit — not a correctness failure")
			}
		}
		tables := map[uint64]Ref{}
		for si, e := range stack {
			for a := 0; a < 64; a++ {
				a := a
				want := e.table&(1<<a) != 0
				got := b.Eval(e.f, func(level int) bool { return a&(1<<level) != 0 })
				if got != want {
					t.Fatalf("stack %d assign %06b: BDD=%v table=%v", si, a, got, want)
				}
			}
			if prev, ok := tables[e.table]; ok && prev != e.f {
				t.Fatalf("stack %d: equal truth tables, different refs (not canonical)", si)
			}
			tables[e.table] = e.f
		}
	})
}
