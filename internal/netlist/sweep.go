package netlist

import "fmt"

// WireRemap maps wire ids of a pre-transformation netlist to the ids of
// the transformed one; removed wires map to NoWire.
type WireRemap []WireID

// Wire translates one wire id. It panics when the wire was removed — a
// caller holding a reference to a swept wire is a bug, not a condition to
// handle.
func (r WireRemap) Wire(w WireID) WireID {
	nw := r[w]
	if nw == NoWire {
		panic(fmt.Sprintf("netlist: wire %d was removed by the sweep but is still referenced", w))
	}
	return nw
}

// Wires translates a slice of wire ids into a fresh slice.
func (r WireRemap) Wires(ws []WireID) []WireID {
	out := make([]WireID, len(ws))
	for i, w := range ws {
		out[i] = r.Wire(w)
	}
	return out
}

// SweepDead returns a copy of the netlist with every unobservable gate
// removed: a gate is dead when no path leads from its output to any
// flip-flop D input or primary output, so no fault through it can ever
// become architecturally visible. Generated netlists accumulate such gates
// (unused decoder lines, the final carry of an adder) that a synthesis tool
// would strip; sweeping them shrinks the simulator workload and keeps the
// shipped cores clean under internal/lint's dead-logic analyzer.
//
// Only gates and their output wires are removed — flip-flops, ports and
// named signals survive, and a dead gate's output can only feed other dead
// gates (observability is transitively closed), so the removal is
// self-contained. The returned remap translates old wire ids; the new
// netlist is finished and ready to use.
func SweepDead(nl *Netlist) (*Netlist, WireRemap, error) {
	nw := len(nl.Wires)
	valid := func(w WireID) bool { return w >= 0 && int(w) < nw }

	// Backward reachability from the sinks, over raw fields only.
	driverGate := make([]int32, nw)
	for i := range driverGate {
		driverGate[i] = -1
	}
	for gi := range nl.Gates {
		if valid(nl.Gates[gi].Output) {
			driverGate[nl.Gates[gi].Output] = int32(gi)
		}
	}
	observable := make([]bool, nw)
	var stack []WireID
	mark := func(w WireID) {
		if valid(w) && !observable[w] {
			observable[w] = true
			stack = append(stack, w)
		}
	}
	for fi := range nl.FFs {
		mark(nl.FFs[fi].D)
	}
	for _, w := range nl.Outputs {
		mark(w)
	}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if gi := driverGate[w]; gi >= 0 {
			for _, in := range nl.Gates[gi].Inputs {
				mark(in)
			}
		}
	}

	removedWire := make([]bool, nw)
	keepGate := make([]bool, len(nl.Gates))
	removedGates := 0
	for gi := range nl.Gates {
		out := nl.Gates[gi].Output
		keepGate[gi] = valid(out) && observable[out]
		if !keepGate[gi] {
			removedGates++
			if valid(out) {
				removedWire[out] = true
			}
		}
	}
	if removedGates == 0 {
		identity := make(WireRemap, nw)
		for i := range identity {
			identity[i] = WireID(i)
		}
		return nl, identity, nil
	}

	remap := make(WireRemap, nw)
	out := &Netlist{Name: nl.Name}
	for w := 0; w < nw; w++ {
		if removedWire[w] {
			remap[w] = NoWire
			continue
		}
		remap[w] = WireID(len(out.Wires))
		out.Wires = append(out.Wires, nl.Wires[w])
	}
	out.Inputs = remap.Wires(nl.Inputs)
	out.Outputs = remap.Wires(nl.Outputs)
	for gi := range nl.Gates {
		if !keepGate[gi] {
			continue
		}
		g := nl.Gates[gi]
		out.Gates = append(out.Gates, Gate{
			Name:   g.Name,
			Cell:   g.Cell,
			Inputs: remap.Wires(g.Inputs),
			Output: remap.Wire(g.Output),
		})
	}
	for _, ff := range nl.FFs {
		out.FFs = append(out.FFs, FF{
			Name: ff.Name, D: remap.Wire(ff.D), Q: remap.Wire(ff.Q),
			Init: ff.Init, Group: ff.Group,
		})
	}
	if err := out.Finish(); err != nil {
		return nil, nil, fmt.Errorf("netlist: sweep of %s produced an invalid netlist: %w", nl.Name, err)
	}
	return out, remap, nil
}

// MustSweepDead is SweepDead that panics on error; for core generators.
func MustSweepDead(nl *Netlist) (*Netlist, WireRemap) {
	out, remap, err := SweepDead(nl)
	if err != nil {
		panic(err)
	}
	return out, remap
}
