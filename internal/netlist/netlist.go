// Package netlist defines the gate-level intermediate representation used
// throughout the repository: wires, library-cell instances, flip-flops and
// ports, together with the structural analyses (drivers, fanout,
// levelisation) that the simulator and the MATE search build on.
//
// The paper's flow obtains such netlists from Synopsys Design Compiler; we
// construct them programmatically via the Builder and internal/synth.
package netlist

import (
	"fmt"
	"sort"

	"repro/internal/cell"
)

// WireID indexes a wire (a single-bit net) in a Netlist.
type WireID int32

// NoWire is the invalid wire id.
const NoWire WireID = -1

// Wire is one single-bit net. Each wire has exactly one driver: a primary
// input, a gate output, or a flip-flop Q pin.
type Wire struct {
	Name string
}

// Gate is an instance of a combinational library cell.
type Gate struct {
	Name   string
	Cell   *cell.Cell
	Inputs []WireID // pin order matches Cell.Pins
	Output WireID
}

// FF is a D flip-flop. Q is the output wire it drives, D the next-state
// input. Group carries a hierarchical tag ("regfile", "pc", ...) used to
// form fault sets such as the paper's "FF w/o RF".
type FF struct {
	Name  string
	D, Q  WireID
	Init  bool
	Group string
}

// DriverKind describes what drives a wire.
type DriverKind uint8

const (
	DriverNone  DriverKind = iota // undriven (illegal in a finished netlist)
	DriverInput                   // primary input
	DriverGate                    // combinational gate output
	DriverFF                      // flip-flop Q
)

// Driver identifies the unique driver of a wire. Index is the position in
// Netlist.Inputs, Gates or FFs depending on Kind.
type Driver struct {
	Kind  DriverKind
	Index int32
}

// FanoutRef records one sink of a wire: gate `Gate` consumes it at pin
// `Pin`.
type FanoutRef struct {
	Gate int32
	Pin  int8
}

// Netlist is a flattened, synthesized synchronous circuit.
type Netlist struct {
	Name    string
	Wires   []Wire
	Inputs  []WireID
	Outputs []WireID
	Gates   []Gate
	FFs     []FF

	drivers  []Driver
	fanout   [][]FanoutRef
	ffOfD    map[WireID][]int32 // D wire -> FF indices
	levels   []int32            // gate evaluation order (gate indices, topological)
	maxDepth int
	byName   map[string]WireID
	finished bool
}

// NumWires returns the number of wires.
func (n *Netlist) NumWires() int { return len(n.Wires) }

// Finished reports whether Finish has validated the netlist and built the
// derived structures. Raw netlists (Builder.Raw, verilog.ReadRaw) stay
// unfinished until Finish succeeds; analyses that need fanout or the
// evaluation order must check this first.
func (n *Netlist) Finished() bool { return n.finished }

// WireByName looks up a wire id by its full hierarchical name.
func (n *Netlist) WireByName(name string) (WireID, bool) {
	id, ok := n.byName[name]
	return id, ok
}

// WireName returns the name of a wire.
func (n *Netlist) WireName(w WireID) string { return n.Wires[w].Name }

// DriverOf returns the driver of a wire.
func (n *Netlist) DriverOf(w WireID) Driver { return n.drivers[w] }

// Fanout returns the gate sinks of a wire. The returned slice must not be
// modified.
func (n *Netlist) Fanout(w WireID) []FanoutRef { return n.fanout[w] }

// FFsOfD returns the indices of flip-flops whose D input is the given wire.
func (n *Netlist) FFsOfD(w WireID) []int32 { return n.ffOfD[w] }

// EvalOrder returns gate indices in a topological order suitable for
// single-pass combinational evaluation. The returned slice must not be
// modified.
func (n *Netlist) EvalOrder() []int32 { return n.levels }

// LogicDepth returns the maximum combinational depth in gates.
func (n *Netlist) LogicDepth() int { return n.maxDepth }

// IsPrimaryOutput reports whether the wire is listed as a primary output.
func (n *Netlist) IsPrimaryOutput(w WireID) bool {
	for _, o := range n.Outputs {
		if o == w {
			return true
		}
	}
	return false
}

// FFQWires returns the Q wires of all flip-flops, optionally excluding the
// given groups. This is how fault sets (paper: "FF" and "FF w/o RF") are
// formed.
func (n *Netlist) FFQWires(excludeGroups ...string) []WireID {
	skip := map[string]bool{}
	for _, g := range excludeGroups {
		skip[g] = true
	}
	var out []WireID
	for _, ff := range n.FFs {
		if !skip[ff.Group] {
			out = append(out, ff.Q)
		}
	}
	return out
}

// FFByQ returns the flip-flop index driving the given Q wire, or -1.
func (n *Netlist) FFByQ(q WireID) int {
	d := n.drivers[q]
	if d.Kind != DriverFF {
		return -1
	}
	return int(d.Index)
}

// Stats summarises a netlist.
type Stats struct {
	Wires, Gates, FFs, Inputs, Outputs int
	CellCounts                         map[string]int
	LogicDepth                         int
}

// Stats computes summary statistics.
func (n *Netlist) Stats() Stats {
	s := Stats{
		Wires: len(n.Wires), Gates: len(n.Gates), FFs: len(n.FFs),
		Inputs: len(n.Inputs), Outputs: len(n.Outputs),
		CellCounts: map[string]int{},
		LogicDepth: n.maxDepth,
	}
	for _, g := range n.Gates {
		s.CellCounts[g.Cell.Name]++
	}
	return s
}

// String renders a short summary.
func (s Stats) String() string {
	var kinds []string
	for k := range s.CellCounts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := fmt.Sprintf("wires=%d gates=%d ffs=%d in=%d out=%d depth=%d",
		s.Wires, s.Gates, s.FFs, s.Inputs, s.Outputs, s.LogicDepth)
	return out
}

// Finish validates the netlist and computes the derived structures
// (drivers, fanout, levelisation). It must be called once after
// construction; the Builder does so automatically.
func (n *Netlist) Finish() error {
	if n.finished {
		return nil
	}
	nw := len(n.Wires)
	n.drivers = make([]Driver, nw)
	n.fanout = make([][]FanoutRef, nw)
	n.ffOfD = map[WireID][]int32{}
	n.byName = make(map[string]WireID, nw)

	for i, w := range n.Wires {
		if w.Name != "" {
			if prev, dup := n.byName[w.Name]; dup {
				return fmt.Errorf("netlist %s: duplicate wire name %q (wires %d and %d)", n.Name, w.Name, prev, i)
			}
			n.byName[w.Name] = WireID(i)
		}
	}

	setDriver := func(w WireID, d Driver, what string) error {
		if w < 0 || int(w) >= nw {
			return fmt.Errorf("netlist %s: %s drives invalid wire %d", n.Name, what, w)
		}
		if n.drivers[w].Kind != DriverNone {
			return fmt.Errorf("netlist %s: wire %q has multiple drivers (%s)", n.Name, n.Wires[w].Name, what)
		}
		n.drivers[w] = d
		return nil
	}
	for i, w := range n.Inputs {
		if err := setDriver(w, Driver{DriverInput, int32(i)}, "input "+n.Wires[w].Name); err != nil {
			return err
		}
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		if len(g.Inputs) != g.Cell.NumInputs() {
			return fmt.Errorf("netlist %s: gate %s has %d inputs, cell %s wants %d",
				n.Name, g.Name, len(g.Inputs), g.Cell.Name, g.Cell.NumInputs())
		}
		if err := setDriver(g.Output, Driver{DriverGate, int32(i)}, "gate "+g.Name); err != nil {
			return err
		}
	}
	for i := range n.FFs {
		ff := &n.FFs[i]
		if err := setDriver(ff.Q, Driver{DriverFF, int32(i)}, "ff "+ff.Name); err != nil {
			return err
		}
	}
	// All wires driven; record fanout.
	for i := range n.drivers {
		if n.drivers[i].Kind == DriverNone {
			return fmt.Errorf("netlist %s: wire %q is undriven", n.Name, n.Wires[i].Name)
		}
	}
	for gi := range n.Gates {
		for pin, w := range n.Gates[gi].Inputs {
			if w < 0 || int(w) >= nw {
				return fmt.Errorf("netlist %s: gate %s pin %d reads invalid wire", n.Name, n.Gates[gi].Name, pin)
			}
			n.fanout[w] = append(n.fanout[w], FanoutRef{Gate: int32(gi), Pin: int8(pin)})
		}
	}
	for fi := range n.FFs {
		ff := &n.FFs[fi]
		if ff.D < 0 || int(ff.D) >= nw {
			return fmt.Errorf("netlist %s: ff %s has invalid D wire", n.Name, ff.Name)
		}
		n.ffOfD[ff.D] = append(n.ffOfD[ff.D], int32(fi))
	}
	for _, w := range n.Outputs {
		if w < 0 || int(w) >= nw {
			return fmt.Errorf("netlist %s: invalid output wire %d", n.Name, w)
		}
	}

	if err := n.levelize(); err != nil {
		return err
	}
	n.finished = true
	return nil
}

// levelize computes a topological order of the gates (Kahn's algorithm over
// gate→gate dependencies) and the maximum logic depth. A combinational
// cycle is an error.
func (n *Netlist) levelize() error {
	ng := len(n.Gates)
	indeg := make([]int32, ng)
	for gi := range n.Gates {
		for _, w := range n.Gates[gi].Inputs {
			if n.drivers[w].Kind == DriverGate {
				indeg[gi]++
			}
		}
	}
	order := make([]int32, 0, ng)
	depth := make([]int32, ng)
	queue := make([]int32, 0, ng)
	for gi := range indeg {
		if indeg[gi] == 0 {
			queue = append(queue, int32(gi))
			depth[gi] = 1
		}
	}
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		order = append(order, gi)
		out := n.Gates[gi].Output
		for _, fr := range n.fanout[out] {
			if d := depth[gi] + 1; d > depth[fr.Gate] {
				depth[fr.Gate] = d
			}
			indeg[fr.Gate]--
			if indeg[fr.Gate] == 0 {
				queue = append(queue, fr.Gate)
			}
		}
	}
	if len(order) != ng {
		return fmt.Errorf("netlist %s: combinational cycle detected (%d of %d gates ordered)", n.Name, len(order), ng)
	}
	n.levels = order
	md := int32(0)
	for _, d := range depth {
		if d > md {
			md = d
		}
	}
	n.maxDepth = int(md)
	return nil
}
