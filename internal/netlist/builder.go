package netlist

import (
	"fmt"
	"strings"

	"repro/internal/cell"
)

// Builder constructs a Netlist incrementally. It hands out wire ids, keeps
// constant (TIE) drivers deduplicated, and names anonymous wires
// deterministically. Duplicate qualified wire names are recorded as they
// are created and reported by Netlist, so the error points at the offending
// Wire call rather than surfacing later during Finish.
type Builder struct {
	nl     *Netlist
	tie0   *WireID
	tie1   *WireID
	prefix string
	names  map[string]WireID // qualified name -> first wire; shared across scopes
	dups   *[]string         // duplicate-name reports; shared across scopes
}

// NewBuilder creates a builder for a netlist with the given name.
func NewBuilder(name string) *Builder {
	t0, t1 := NoWire, NoWire
	return &Builder{
		nl: &Netlist{Name: name}, tie0: &t0, tie1: &t1,
		names: map[string]WireID{}, dups: new([]string),
	}
}

// Scope returns a child view of the builder that prefixes all names with
// `prefix + "."`. The child shares the underlying netlist.
func (b *Builder) Scope(prefix string) *Builder {
	child := *b
	if b.prefix != "" {
		child.prefix = b.prefix + "." + prefix
	} else {
		child.prefix = prefix
	}
	return &child
}

func (b *Builder) qualify(name string) string {
	if b.prefix == "" {
		return name
	}
	return b.prefix + "." + name
}

// Wire creates a new named wire. An empty name gets an automatic one that
// is unique across the whole netlist (the running wire count). Creating two
// wires with the same qualified name in one netlist is an error, reported
// by Netlist.
func (b *Builder) Wire(name string) WireID {
	if name == "" {
		return b.autoWire()
	}
	return b.addWire(b.qualify(name))
}

// autoWire creates an anonymous wire named by its global index, which is
// unique regardless of builder scope.
func (b *Builder) autoWire() WireID {
	return b.addWire(fmt.Sprintf("_n%d", len(b.nl.Wires)))
}

func (b *Builder) addWire(qualified string) WireID {
	id := WireID(len(b.nl.Wires))
	if prev, dup := b.names[qualified]; dup {
		*b.dups = append(*b.dups, fmt.Sprintf("%q (wires %d and %d)", qualified, prev, id))
	} else {
		b.names[qualified] = id
	}
	b.nl.Wires = append(b.nl.Wires, Wire{Name: qualified})
	return id
}

// Input declares a new primary input wire.
func (b *Builder) Input(name string) WireID {
	w := b.Wire(name)
	b.nl.Inputs = append(b.nl.Inputs, w)
	return w
}

// MarkOutput declares an existing wire as a primary output.
func (b *Builder) MarkOutput(w WireID) { b.nl.Outputs = append(b.nl.Outputs, w) }

// Gate instantiates a library cell driving a fresh wire and returns that
// wire.
func (b *Builder) Gate(kind cell.Kind, inputs ...WireID) WireID {
	c := cell.Lookup(kind)
	if len(inputs) != c.NumInputs() {
		panic(fmt.Sprintf("builder: %s wants %d inputs, got %d", c.Name, c.NumInputs(), len(inputs)))
	}
	out := b.Wire("")
	gi := len(b.nl.Gates)
	b.nl.Gates = append(b.nl.Gates, Gate{
		Name:   fmt.Sprintf("g%d_%s", gi, c.Name),
		Cell:   c,
		Inputs: append([]WireID(nil), inputs...),
		Output: out,
	})
	return out
}

// GateNamed is Gate with an explicit instance and output-wire name.
func (b *Builder) GateNamed(name string, kind cell.Kind, inputs ...WireID) WireID {
	c := cell.Lookup(kind)
	if len(inputs) != c.NumInputs() {
		panic(fmt.Sprintf("builder: %s wants %d inputs, got %d", c.Name, c.NumInputs(), len(inputs)))
	}
	out := b.Wire(name)
	b.nl.Gates = append(b.nl.Gates, Gate{
		Name:   b.qualify(name) + "_" + c.Name,
		Cell:   c,
		Inputs: append([]WireID(nil), inputs...),
		Output: out,
	})
	return out
}

// Const returns a constant wire, deduplicating the TIE cells across all
// scopes of the same netlist.
func (b *Builder) Const(v bool) WireID {
	if v {
		if *b.tie1 == NoWire {
			w := b.autoWire()
			b.nl.Gates = append(b.nl.Gates, Gate{Name: "tie1", Cell: cell.Lookup(cell.TIE1), Output: w})
			*b.tie1 = w
		}
		return *b.tie1
	}
	if *b.tie0 == NoWire {
		w := b.autoWire()
		b.nl.Gates = append(b.nl.Gates, Gate{Name: "tie0", Cell: cell.Lookup(cell.TIE0), Output: w})
		*b.tie0 = w
	}
	return *b.tie0
}

// FF instantiates a flip-flop with the given D input, initial value and
// group tag; it returns the Q wire.
func (b *Builder) FF(name string, d WireID, init bool, group string) WireID {
	q := b.Wire(name)
	b.nl.FFs = append(b.nl.FFs, FF{
		Name:  b.qualify(name),
		D:     d,
		Q:     q,
		Init:  init,
		Group: group,
	})
	return q
}

// FFPlaceholder creates a flip-flop whose D input is wired later via SetFFD.
// This enables feedback (state machines) without two-phase construction
// gymnastics: create Q first, build logic that reads Q, then connect D.
func (b *Builder) FFPlaceholder(name string, init bool, group string) WireID {
	return b.FF(name, NoWire, init, group)
}

// SetFFD connects the D input of the flip-flop that drives q.
func (b *Builder) SetFFD(q, d WireID) {
	for i := range b.nl.FFs {
		if b.nl.FFs[i].Q == q {
			if b.nl.FFs[i].D != NoWire {
				panic("builder: FF D already connected for " + b.nl.FFs[i].Name)
			}
			b.nl.FFs[i].D = d
			return
		}
	}
	panic("builder: no FF with that Q wire")
}

// Netlist finalises and returns the built netlist.
func (b *Builder) Netlist() (*Netlist, error) {
	if len(*b.dups) > 0 {
		return nil, fmt.Errorf("builder: duplicate wire names: %s", strings.Join(*b.dups, "; "))
	}
	for i := range b.nl.FFs {
		if b.nl.FFs[i].D == NoWire {
			return nil, fmt.Errorf("builder: FF %s has unconnected D", b.nl.FFs[i].Name)
		}
	}
	if err := b.nl.Finish(); err != nil {
		return nil, err
	}
	return b.nl, nil
}

// MustNetlist is Netlist that panics on error; for tests and examples.
func (b *Builder) MustNetlist() *Netlist {
	nl, err := b.Netlist()
	if err != nil {
		panic(err)
	}
	return nl
}

// Raw returns the netlist under construction without validation or
// finalisation. The result may be structurally ill-formed (undriven or
// multi-driven wires, combinational cycles, unconnected FF D inputs); it is
// meant for static analysis (internal/lint), which diagnoses such netlists
// instead of rejecting them.
func (b *Builder) Raw() *Netlist { return b.nl }

// MarkInput declares an existing wire as a primary input. Used by netlist
// readers that create wires before knowing their role; Input remains the
// primary API for fresh construction.
func (b *Builder) MarkInput(w WireID) { b.nl.Inputs = append(b.nl.Inputs, w) }

// AddGateWithOutput instantiates a library cell driving an existing wire
// (netlist readers connect by name, so the output wire already exists).
func (b *Builder) AddGateWithOutput(kind cell.Kind, inputs []WireID, out WireID) {
	c := cell.Lookup(kind)
	if len(inputs) != c.NumInputs() {
		panic(fmt.Sprintf("builder: %s wants %d inputs, got %d", c.Name, c.NumInputs(), len(inputs)))
	}
	gi := len(b.nl.Gates)
	b.nl.Gates = append(b.nl.Gates, Gate{
		Name:   fmt.Sprintf("g%d_%s", gi, c.Name),
		Cell:   c,
		Inputs: append([]WireID(nil), inputs...),
		Output: out,
	})
}

// AddFFWithQ creates a flip-flop between two existing wires.
func (b *Builder) AddFFWithQ(d, q WireID, init bool, group string) {
	b.nl.FFs = append(b.nl.FFs, FF{
		Name:  b.nl.Wires[q].Name,
		D:     d,
		Q:     q,
		Init:  init,
		Group: group,
	})
}
