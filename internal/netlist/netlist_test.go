package netlist

import (
	"strings"
	"testing"

	"repro/internal/cell"
)

// buildExample builds the Figure 1a circuit of the paper:
//
//	g = XOR(c, d)   (gate B)
//	j = AND(a, b)   (gate A)
//	i = OR(d, e)    (gate C)  -- note: paper wires; here named explicitly
//	k = AND(g, f)   (gate D)
//	l = OR(g, h)    (gate E)
//
// with primary inputs a..f,h and outputs k,l,i.
func buildExample(t *testing.T) (*Netlist, map[string]WireID) {
	t.Helper()
	b := NewBuilder("fig1a")
	w := map[string]WireID{}
	for _, name := range []string{"a", "b", "c", "d", "e", "h"} {
		w[name] = b.Input(name)
	}
	w["j"] = b.GateNamed("j", cell.AND2, w["a"], w["b"])
	w["f"] = b.GateNamed("f", cell.OR2, w["j"], w["e"])
	w["g"] = b.GateNamed("g", cell.XOR2, w["c"], w["d"])
	w["k"] = b.GateNamed("k", cell.AND2, w["g"], w["f"])
	w["l"] = b.GateNamed("l", cell.OR2, w["g"], w["h"])
	b.MarkOutput(w["k"])
	b.MarkOutput(w["l"])
	nl, err := b.Netlist()
	if err != nil {
		t.Fatalf("Netlist: %v", err)
	}
	return nl, w
}

func TestBuilderAndFinish(t *testing.T) {
	nl, w := buildExample(t)
	if nl.NumWires() != 11 {
		t.Errorf("wires = %d, want 11", nl.NumWires())
	}
	if got := nl.DriverOf(w["a"]).Kind; got != DriverInput {
		t.Errorf("driver of a = %v", got)
	}
	if got := nl.DriverOf(w["k"]).Kind; got != DriverGate {
		t.Errorf("driver of k = %v", got)
	}
	if !nl.IsPrimaryOutput(w["k"]) || nl.IsPrimaryOutput(w["g"]) {
		t.Error("primary output classification wrong")
	}
	// fanout of g: gates k and l
	if got := len(nl.Fanout(w["g"])); got != 2 {
		t.Errorf("fanout(g) = %d, want 2", got)
	}
	if id, ok := nl.WireByName("g"); !ok || id != w["g"] {
		t.Error("WireByName failed")
	}
}

func TestEvalOrderTopological(t *testing.T) {
	nl, _ := buildExample(t)
	seen := map[WireID]bool{}
	for _, in := range nl.Inputs {
		seen[in] = true
	}
	for _, gi := range nl.EvalOrder() {
		g := nl.Gates[gi]
		for _, in := range g.Inputs {
			if !seen[in] && nl.DriverOf(in).Kind == DriverGate {
				t.Fatalf("gate %s evaluated before its input %s", g.Name, nl.WireName(in))
			}
		}
		seen[g.Output] = true
	}
	if len(nl.EvalOrder()) != len(nl.Gates) {
		t.Fatal("eval order does not cover all gates")
	}
	if nl.LogicDepth() < 2 {
		t.Errorf("depth = %d, want >= 2", nl.LogicDepth())
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	b := NewBuilder("cycle")
	a := b.Input("a")
	// x = AND(a, y); y = OR(x, a) — a combinational loop.
	x := b.Wire("x")
	y := b.Wire("y")
	b.nl.Gates = append(b.nl.Gates,
		Gate{Name: "gx", Cell: cell.Lookup(cell.AND2), Inputs: []WireID{a, y}, Output: x},
		Gate{Name: "gy", Cell: cell.Lookup(cell.OR2), Inputs: []WireID{x, a}, Output: y},
	)
	if _, err := b.Netlist(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestMultipleDriversRejected(t *testing.T) {
	b := NewBuilder("dup")
	a := b.Input("a")
	x := b.GateNamed("x", cell.BUF, a)
	b.nl.Gates = append(b.nl.Gates, Gate{Name: "dup", Cell: cell.Lookup(cell.BUF), Inputs: []WireID{a}, Output: x})
	if _, err := b.Netlist(); err == nil || !strings.Contains(err.Error(), "multiple drivers") {
		t.Fatalf("expected multiple-driver error, got %v", err)
	}
}

func TestUndrivenWireRejected(t *testing.T) {
	b := NewBuilder("undriven")
	a := b.Input("a")
	floating := b.Wire("floating")
	b.GateNamed("x", cell.AND2, a, floating)
	if _, err := b.Netlist(); err == nil || !strings.Contains(err.Error(), "undriven") {
		t.Fatalf("expected undriven error, got %v", err)
	}
}

func TestFFConstruction(t *testing.T) {
	b := NewBuilder("ffs")
	d := b.Input("d")
	q := b.FF("q", d, true, "state")
	b.MarkOutput(q)
	// feedback FF via placeholder
	q2 := b.FFPlaceholder("q2", false, "regfile")
	inv := b.Gate(cell.INV, q2)
	b.SetFFD(q2, inv)
	b.MarkOutput(inv)
	nl, err := b.Netlist()
	if err != nil {
		t.Fatalf("Netlist: %v", err)
	}
	if len(nl.FFs) != 2 {
		t.Fatalf("ffs = %d", len(nl.FFs))
	}
	if nl.FFByQ(q) != 0 || nl.FFByQ(q2) != 1 {
		t.Error("FFByQ wrong")
	}
	if nl.FFByQ(d) != -1 {
		t.Error("FFByQ should be -1 for non-Q wire")
	}
	if got := nl.FFsOfD(d); len(got) != 1 || got[0] != 0 {
		t.Errorf("FFsOfD = %v", got)
	}
	all := nl.FFQWires()
	if len(all) != 2 {
		t.Errorf("FFQWires = %v", all)
	}
	noRF := nl.FFQWires("regfile")
	if len(noRF) != 1 || noRF[0] != q {
		t.Errorf("FFQWires w/o regfile = %v", noRF)
	}
}

func TestUnconnectedFFRejected(t *testing.T) {
	b := NewBuilder("bad-ff")
	b.FFPlaceholder("q", false, "")
	if _, err := b.Netlist(); err == nil || !strings.Contains(err.Error(), "unconnected D") {
		t.Fatalf("expected unconnected-D error, got %v", err)
	}
}

func TestConstDedup(t *testing.T) {
	b := NewBuilder("const")
	c1 := b.Const(true)
	c1b := b.Scope("sub").Const(true)
	if c1 != c1b {
		t.Error("TIE1 not deduplicated across scopes")
	}
	c0 := b.Const(false)
	if c0 == c1 {
		t.Error("TIE0 == TIE1")
	}
	out := b.Gate(cell.OR2, c0, c1)
	b.MarkOutput(out)
	if _, err := b.Netlist(); err != nil {
		t.Fatal(err)
	}
}

func TestScopeNaming(t *testing.T) {
	b := NewBuilder("scoped")
	sub := b.Scope("cpu").Scope("alu")
	w := sub.Input("carry")
	nl := func() *Netlist {
		out := sub.Gate(cell.BUF, w)
		b.MarkOutput(out)
		return b.MustNetlist()
	}()
	if name := nl.WireName(w); name != "cpu.alu.carry" {
		t.Errorf("scoped name = %q", name)
	}
}

func TestStats(t *testing.T) {
	nl, _ := buildExample(t)
	s := nl.Stats()
	if s.Gates != 5 || s.Inputs != 6 || s.Outputs != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.CellCounts["AND2"] != 2 || s.CellCounts["XOR2"] != 1 {
		t.Errorf("cell counts = %v", s.CellCounts)
	}
	if !strings.Contains(s.String(), "gates=5") {
		t.Errorf("stats string = %q", s.String())
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	b := NewBuilder("dupname")
	b.Input("x")
	b.Input("x")
	if _, err := b.Netlist(); err == nil || !strings.Contains(err.Error(), "duplicate wire name") {
		t.Fatalf("expected duplicate-name error, got %v", err)
	}
}

func TestDuplicateNameAcrossScopes(t *testing.T) {
	b := NewBuilder("dupscope")
	s1 := b.Scope("cpu")
	s2 := b.Scope("cpu")
	in := s1.Input("x")
	s2.Wire("x") // same qualified name "cpu.x" via a sibling scope view
	b.MarkOutput(in)
	_, err := b.Netlist()
	if err == nil {
		t.Fatal("expected duplicate-name error for same qualified name from two scope views")
	}
	if !strings.Contains(err.Error(), `"cpu.x"`) ||
		!strings.Contains(err.Error(), "wires 0 and 1") {
		t.Errorf("error %q does not locate both wires", err)
	}
}

func TestScopeNestingAndAnonymousWires(t *testing.T) {
	b := NewBuilder("nest")
	outer := b.Scope("cpu")
	inner := outer.Scope("alu")
	w1 := outer.Wire("t")
	w2 := inner.Wire("t") // distinct: cpu.t vs cpu.alu.t
	// Anonymous wires must be unique across all scope views.
	a1 := outer.Wire("")
	a2 := inner.Wire("")
	a3 := b.Wire("")
	nl := b.Raw()
	if got := nl.WireName(w1); got != "cpu.t" {
		t.Errorf("outer wire name = %q", got)
	}
	if got := nl.WireName(w2); got != "cpu.alu.t" {
		t.Errorf("inner wire name = %q", got)
	}
	names := map[string]bool{}
	for _, w := range []WireID{a1, a2, a3} {
		n := nl.WireName(w)
		if names[n] {
			t.Errorf("anonymous wire name %q not unique", n)
		}
		names[n] = true
	}
	// The shared duplicate bookkeeping must see no duplicates here.
	in := b.Input("i")
	g := b.Gate(cell.BUF, in)
	b.MarkOutput(g)
	// w1, w2 and the anonymous wires are undriven; drive them so Finish
	// can succeed and prove the names were accepted.
	b.AddGateWithOutput(cell.BUF, []WireID{in}, w1)
	b.AddGateWithOutput(cell.BUF, []WireID{in}, w2)
	b.AddGateWithOutput(cell.BUF, []WireID{in}, a1)
	b.AddGateWithOutput(cell.BUF, []WireID{in}, a2)
	b.AddGateWithOutput(cell.BUF, []WireID{in}, a3)
	for _, w := range []WireID{w1, w2, a1, a2, a3} {
		b.MarkOutput(w)
	}
	if _, err := b.Netlist(); err != nil {
		t.Fatalf("nested scopes produced an invalid netlist: %v", err)
	}
}

func TestSweepDead(t *testing.T) {
	b := NewBuilder("sweep")
	a := b.Input("a")
	x := b.Input("x")
	live := b.GateNamed("g_live", cell.AND2, a, x)
	q := b.FF("ff", live, false, "")
	b.MarkOutput(q)
	// Dead chain: d1 feeds only d2, d2 feeds nothing.
	d1 := b.GateNamed("g_d1", cell.OR2, a, x)
	b.GateNamed("g_d2", cell.INV, d1)
	nl := b.MustNetlist()

	swept, remap, err := SweepDead(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept.Gates) != 1 || swept.Gates[0].Name != "g_live_AND2" {
		t.Fatalf("swept gates = %v, want only the live gate", swept.Gates)
	}
	if len(swept.Wires) != len(nl.Wires)-2 {
		t.Errorf("swept wires = %d, want %d", len(swept.Wires), len(nl.Wires)-2)
	}
	if !swept.Finished() {
		t.Error("swept netlist is not finished")
	}
	// Live wires keep their names through the remap.
	for _, w := range []WireID{a, x, live, q} {
		if got := swept.WireName(remap.Wire(w)); got != nl.WireName(w) {
			t.Errorf("remap changed wire name: %q -> %q", nl.WireName(w), got)
		}
	}
	// Ports survive.
	if len(swept.Inputs) != len(nl.Inputs) || len(swept.Outputs) != len(nl.Outputs) {
		t.Errorf("ports changed: %d/%d inputs, %d/%d outputs",
			len(swept.Inputs), len(nl.Inputs), len(swept.Outputs), len(nl.Outputs))
	}
	// Accessing a removed wire must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("remap.Wire on a removed wire did not panic")
			}
		}()
		remap.Wire(d1)
	}()
}

func TestSweepDeadIdentityOnCleanNetlist(t *testing.T) {
	// Every fig1a gate reaches a primary output, so nothing is dead.
	nl, w := buildExample(t)
	swept, remap, err := SweepDead(nl)
	if err != nil {
		t.Fatal(err)
	}
	if swept != nl {
		t.Error("sweep of a fully-live netlist did not return the original")
	}
	for name, id := range w {
		if remap.Wire(id) != id {
			t.Errorf("identity remap moved wire %s", name)
		}
	}
}
