package vcd

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func buildToggler(t *testing.T) (*netlist.Netlist, netlist.WireID) {
	t.Helper()
	b := netlist.NewBuilder("top")
	q := b.FFPlaceholder("q", false, "")
	inv := b.GateNamed("qn", cell.INV, q)
	b.SetFFD(q, inv)
	b.MarkOutput(q)
	return b.MustNetlist(), q
}

func TestIDCode(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		c := idCode(i)
		if seen[c] {
			t.Fatalf("idCode(%d) = %q duplicates earlier code", i, c)
		}
		seen[c] = true
		for _, r := range c {
			if r < 33 || r > 126 {
				t.Fatalf("idCode(%d) contains non-printable %q", i, r)
			}
		}
	}
	if idCode(0) != "!" {
		t.Errorf("idCode(0) = %q", idCode(0))
	}
}

func TestWriteProducesHeaderAndChanges(t *testing.T) {
	nl, _ := buildToggler(t)
	m := sim.New(nl)
	tr := sim.Record(m, sim.NopEnv, 4)

	var buf bytes.Buffer
	if err := Write(&buf, nl, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"$timescale", "$scope module top $end", "$var wire 1", "$enddefinitions", "$dumpvars", "#0", "#10"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	nl, _ := buildToggler(t)
	m := sim.New(nl)
	tr := sim.Record(m, sim.NopEnv, 16)

	var buf bytes.Buffer
	if err := Write(&buf, nl, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := Read(&buf, nl)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.NumCycles() != tr.NumCycles() {
		t.Fatalf("cycles: got %d want %d", tr2.NumCycles(), tr.NumCycles())
	}
	for c := 0; c < tr.NumCycles(); c++ {
		for w := 0; w < nl.NumWires(); w++ {
			if tr.Get(c, netlist.WireID(w)) != tr2.Get(c, netlist.WireID(w)) {
				t.Fatalf("cycle %d wire %s differs", c, nl.WireName(netlist.WireID(w)))
			}
		}
	}
}

func TestRoundTripLargerCircuit(t *testing.T) {
	// A small LFSR gives dense, pseudo-random activity on several wires.
	b := netlist.NewBuilder("lfsr")
	var q []netlist.WireID
	for i := 0; i < 8; i++ {
		q = append(q, b.FFPlaceholder("q"+string(rune('a'+i)), i == 0, "lfsr"))
	}
	fb := b.Gate(cell.XOR2, q[7], q[5])
	fb = b.Gate(cell.XOR2, fb, q[4])
	fb = b.Gate(cell.XOR2, fb, q[3])
	b.SetFFD(q[0], fb)
	for i := 1; i < 8; i++ {
		b.SetFFD(q[i], q[i-1])
	}
	b.MarkOutput(q[7])
	nl := b.MustNetlist()

	m := sim.New(nl)
	tr := sim.Record(m, sim.NopEnv, 200)
	var buf bytes.Buffer
	if err := Write(&buf, nl, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := Read(&buf, nl)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.NumCycles() != 200 {
		t.Fatalf("cycles = %d", tr2.NumCycles())
	}
	for c := 0; c < 200; c++ {
		for w := 0; w < nl.NumWires(); w++ {
			if tr.Get(c, netlist.WireID(w)) != tr2.Get(c, netlist.WireID(w)) {
				t.Fatalf("cycle %d wire %d differs", c, w)
			}
		}
	}
}

func TestReadIgnoresUnknownVarsAndVectors(t *testing.T) {
	nl, q := buildToggler(t)
	src := `
$timescale 1ns $end
$scope module top $end
$var wire 1 ! q $end
$var wire 1 " unknown_wire $end
$var wire 8 # bus $end
$upscope $end
$enddefinitions $end
#0
$dumpvars
1!
0"
b10101010 #
$end
#10
0!
#20
`
	// note: 8-bit var would fail strict check; relax by removing it
	src = strings.Replace(src, "$var wire 8 # bus $end\n", "", 1)
	src = strings.Replace(src, "b10101010 #\n", "", 1)
	tr, err := Read(strings.NewReader(src), nl)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumCycles() != 2 {
		t.Fatalf("cycles = %d", tr.NumCycles())
	}
	if !tr.Get(0, q) || tr.Get(1, q) {
		t.Error("values wrong")
	}
}

func TestReadRejectsWideVars(t *testing.T) {
	nl, _ := buildToggler(t)
	src := "$var wire 8 ! q $end $enddefinitions $end #0\n"
	if _, err := Read(strings.NewReader(src), nl); err == nil {
		t.Fatal("expected error for wide variable")
	}
}

func TestReadRejectsChangeBeforeTimestamp(t *testing.T) {
	nl, _ := buildToggler(t)
	src := "$var wire 1 ! q $end $enddefinitions $end\n1!\n#0\n"
	if _, err := Read(strings.NewReader(src), nl); err == nil {
		t.Fatal("expected error for change before timestamp")
	}
}

func TestSanitizeToken(t *testing.T) {
	if got := sanitizeToken("a b\tc"); got != "a_b_c" {
		t.Errorf("sanitizeToken = %q", got)
	}
}
