// Package vcd implements a writer and parser for IEEE 1364 value change
// dump (VCD) files, the trace format the paper records from its netlist
// simulations ("we recorded a VCD trace file for each program/processor
// that describes the values of all wires for every clock cycle"). Traces
// round-trip between sim.Trace and VCD text.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// timescalePerCycle is the VCD time step between clock cycles.
const timescalePerCycle = 10

// idCode converts a wire index into a short printable VCD identifier code
// (base-94 over ASCII 33..126).
func idCode(i int) string {
	var b []byte
	for {
		b = append(b, byte(33+i%94))
		i /= 94
		if i == 0 {
			break
		}
	}
	return string(b)
}

// Write dumps a trace of the given netlist as VCD text. Every wire becomes
// a 1-bit variable named after its netlist name.
func Write(w io.Writer, nl *netlist.Netlist, tr *sim.Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$date\n  repro\n$end\n$version\n  repro vcd writer\n$end\n$timescale\n  1ns\n$end\n")
	fmt.Fprintf(bw, "$scope module %s $end\n", sanitizeToken(nl.Name))
	for i := range nl.Wires {
		fmt.Fprintf(bw, "$var wire 1 %s %s $end\n", idCode(i), sanitizeToken(nl.Wires[i].Name))
	}
	fmt.Fprintf(bw, "$upscope $end\n$enddefinitions $end\n")

	prev := make([]bool, nl.NumWires())
	for cyc := 0; cyc < tr.NumCycles(); cyc++ {
		fmt.Fprintf(bw, "#%d\n", cyc*timescalePerCycle)
		if cyc == 0 {
			fmt.Fprintf(bw, "$dumpvars\n")
		}
		for i := 0; i < nl.NumWires(); i++ {
			v := tr.Get(cyc, netlist.WireID(i))
			if cyc == 0 || v != prev[i] {
				c := byte('0')
				if v {
					c = '1'
				}
				fmt.Fprintf(bw, "%c%s\n", c, idCode(i))
			}
			prev[i] = v
		}
		if cyc == 0 {
			fmt.Fprintf(bw, "$end\n")
		}
	}
	fmt.Fprintf(bw, "#%d\n", tr.NumCycles()*timescalePerCycle)
	return bw.Flush()
}

// sanitizeToken replaces whitespace so names stay single VCD tokens.
func sanitizeToken(s string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}

// Read parses a VCD stream previously produced by Write (or by any tool
// using 1-bit variables and one timestamp per clock edge) into a sim.Trace
// aligned with the given netlist: variables are matched to wires by name;
// unknown variables are ignored, and wires without a matching variable stay
// at 0.
func Read(r io.Reader, nl *netlist.Netlist) (*sim.Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)

	codeToWire := map[string]netlist.WireID{}
	tr := sim.NewTrace(nl.NumWires())
	cur := make([]bool, nl.NumWires())
	inDefs := true
	haveCycle := false

	flush := func() {
		tr.AppendEmpty()
		cyc := tr.NumCycles() - 1
		for w, v := range cur {
			if v {
				tr.Set(cyc, netlist.WireID(w), true)
			}
		}
	}

	for sc.Scan() {
		tok := sc.Text()
		switch {
		case inDefs && tok == "$var":
			// $var <type> <size> <code> <name...> $end
			var fields []string
			for sc.Scan() {
				t := sc.Text()
				if t == "$end" {
					break
				}
				fields = append(fields, t)
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("vcd: malformed $var with %d fields", len(fields))
			}
			size, err := strconv.Atoi(fields[1])
			if err != nil || size != 1 {
				return nil, fmt.Errorf("vcd: only 1-bit variables supported, got %q", fields[1])
			}
			code := fields[2]
			name := strings.Join(fields[3:], " ")
			if w, ok := nl.WireByName(name); ok {
				codeToWire[code] = w
			}
		case inDefs && tok == "$enddefinitions":
			inDefs = false
		case strings.HasPrefix(tok, "$"):
			// skip other directives up to $end (except bare $end markers)
			if tok == "$end" || tok == "$dumpvars" {
				continue
			}
			for sc.Scan() && sc.Text() != "$end" {
			}
		case strings.HasPrefix(tok, "#"):
			if haveCycle {
				flush()
			}
			haveCycle = true
		case len(tok) >= 2 && (tok[0] == '0' || tok[0] == '1' || tok[0] == 'x' || tok[0] == 'z' ||
			tok[0] == 'X' || tok[0] == 'Z'):
			if !haveCycle {
				return nil, fmt.Errorf("vcd: value change %q before first timestamp", tok)
			}
			if w, ok := codeToWire[tok[1:]]; ok {
				cur[w] = tok[0] == '1'
			}
		case strings.HasPrefix(tok, "b") || strings.HasPrefix(tok, "B"):
			// vector change: consume the code token too, then ignore
			sc.Scan()
		default:
			// stray token inside definitions (e.g. header text) — ignore
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Writer emits a trailing timestamp after the last cycle, so the final
	// pending cycle was flushed by it; but tolerate missing trailing stamp.
	_ = haveCycle
	return tr, nil
}
