package avr

import (
	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// Core bundles the synthesized netlist with the port map needed to drive
// it: memory interface buses, the output port and status wires, and the
// architectural register locations for co-simulation.
//
// Like the real AVR, data-memory accesses take two cycles: the execute
// stage latches address, store data and the access kind into dedicated
// memory-interface registers (MAR/SDR), and the access itself happens in
// the following cycle while the pipeline inserts one bubble. The memory
// buses are therefore fully registered, and they are qualified by their
// strobes (the address/data pins idle at zero when no access is pending) —
// both properties of real bus interfaces, and both essential for
// fault-space pruning: an SEU in a memory-interface register is provably
// benign in every cycle without a pending access.
//
// Register-file writes are likewise registered: the execute stage deposits
// result, destination address and write strobe into a write-back buffer
// that commits in the following cycle, with operand bypassing to keep the
// architectural timing. Because the write bus therefore carries only
// registered (clean) data, a register-file SEU is provably benign exactly
// when its flip-flop is being overwritten — the paper's mov/ld masking
// pattern.
type Core struct {
	NL *netlist.Netlist

	// Primary inputs.
	IMemData  synth.Bus // 16-bit instruction word for the current fetch
	DMemRData synth.Bus // 8-bit data-memory read value

	// Primary outputs (all registered, so the memory environment can read
	// them before inputs are final).
	IMemAddr  synth.Bus // 12-bit program counter
	DMemAddr  synth.Bus // 8-bit data-memory address (qualified by access pending)
	DMemWData synth.Bus // 8-bit store data (qualified by write pending)
	DMemWE    netlist.WireID
	Port      synth.Bus // 8-bit output port register
	Halted    netlist.WireID

	// Architectural state (flip-flop Q buses) for co-simulation.
	PC    synth.Bus
	Regs  []synth.Bus
	FlagC netlist.WireID
	FlagZ netlist.WireID
	FlagN netlist.WireID
	FlagV netlist.WireID
}

// FF group tags used by the core; the paper's "FF w/o RF" fault set
// excludes GroupRegFile.
const (
	GroupRegFile = "regfile"
	GroupPC      = "pc"
	GroupIR      = "ir"
	GroupCtrl    = "ctrl"
	GroupSREG    = "sreg"
	GroupPort    = "port"
	GroupMem     = "mem" // memory-interface registers (MAR, SDR, strobes)
	GroupWB      = "wb"  // write-back stage registers (result, address, strobe)
)

// NewCore synthesizes the two-stage AVR-class core into a fresh netlist.
func NewCore() *Core {
	b := netlist.NewBuilder("avr")
	c := synth.New(b)
	core := &Core{}

	// ---- primary inputs -------------------------------------------------
	core.IMemData = c.InputBus("imem_data", 16)
	core.DMemRData = c.InputBus("dmem_rdata", 8)

	// ---- state ----------------------------------------------------------
	pc := c.RegisterPlaceholder("pc", PCBits, 0, GroupPC)
	ir := c.RegisterPlaceholder("ir", 16, 0, GroupIR)
	valid := c.RegisterPlaceholder("valid", 1, 0, GroupCtrl)
	halted := c.RegisterPlaceholder("halted", 1, 0, GroupCtrl)
	flagC := c.RegisterPlaceholder("sreg.c", 1, 0, GroupSREG)
	flagZ := c.RegisterPlaceholder("sreg.z", 1, 0, GroupSREG)
	flagN := c.RegisterPlaceholder("sreg.n", 1, 0, GroupSREG)
	flagV := c.RegisterPlaceholder("sreg.v", 1, 0, GroupSREG)
	port := c.RegisterPlaceholder("port", 8, 0, GroupPort)
	memAddr := c.RegisterPlaceholder("mem.addr", DMemBits, 0, GroupMem)
	memWData := c.RegisterPlaceholder("mem.wdata", 8, 0, GroupMem)
	memRd := c.RegisterPlaceholder("mem.rd", 1, 0, GroupMem)
	memWr := c.RegisterPlaceholder("mem.wr", 1, 0, GroupMem)
	memDst := c.RegisterPlaceholder("mem.dst", 4, 0, GroupMem)
	wbData := c.RegisterPlaceholder("wb.data", 8, 0, GroupWB)
	wbAddr := c.RegisterPlaceholder("wb.addr", 4, 0, GroupWB)
	wbWE := c.RegisterPlaceholder("wb.we", 1, 0, GroupWB)
	rf := c.RegFilePlaceholder(synth.RegFileConfig{
		Name: "rf", Num: NumRegs, Width: 8, Group: GroupRegFile,
	})

	C, Z, N, V := flagC[0], flagZ[0], flagN[0], flagV[0]
	vld, hlt := valid[0], halted[0]

	// ---- decode (EX stage, from the squash-gated IR) ----------------------
	// Pipeline squash is implemented by AND-gating the instruction word
	// with the valid/running qualifier: a squashed slot decodes as the
	// all-zero word, which encodes NOP. Besides being the textbook
	// implementation, the gate is the single choke point through which an
	// IR-bit SEU must pass, so every bubble cycle provably masks it.
	act := b.GateNamed("act", cell.AND2, vld, b.Gate(cell.INV, hlt))
	irq := c.AndBit(ir, act)
	class := synth.Bus{irq[12], irq[13], irq[14], irq[15]}
	sub := synth.Bus{irq[8], irq[9], irq[10], irq[11]}
	f2 := synth.Bus{irq[4], irq[5], irq[6], irq[7]} // rr / pointer register
	f3 := synth.Bus{irq[0], irq[1], irq[2], irq[3]} // misc rd
	imm := synth.Bus(irq[0:8])

	classDec := c.Decoder(class)
	subDec := c.Decoder(sub)
	isMisc := classDec[ClassMisc]
	isADD, isADC := classDec[ClassADD], classDec[ClassADC]
	isSUBc, isSBC := classDec[ClassSUB], classDec[ClassSBC]
	isAND, isOR, isEOR := classDec[ClassAND], classDec[ClassOR], classDec[ClassEOR]
	isMOV, isCP, isCPC := classDec[ClassMOV], classDec[ClassCP], classDec[ClassCPC]
	isLDI, isRJMP, isBcc := classDec[ClassLDI], classDec[ClassRJMP], classDec[ClassBcc]
	isSUBI, isCPI := classDec[ClassSUBI], classDec[ClassCPI]

	miscOp := func(subop int) netlist.WireID {
		return b.Gate(cell.AND2, isMisc, subDec[subop])
	}
	mHALT := miscOp(MiscHALT)
	mLSR := miscOp(MiscLSR)
	mROR := miscOp(MiscROR)
	mINC := miscOp(MiscINC)
	mDEC := miscOp(MiscDEC)
	mOUT := miscOp(MiscOUT)
	mLD := miscOp(MiscLD)
	mST := miscOp(MiscST)

	// ---- register file read (with write-back bypass) ----------------------
	rdAddr := c.Mux2(isMisc, sub, f3) // ALU-format rd sits in bits 11:8
	rawA := rf.Read(c, rdAddr)        // port 1: destination / store data
	rawB := rf.Read(c, f2)            // port 2: source / pointer
	hit1 := b.Gate(cell.AND2, wbWE[0], c.Equal(wbAddr, rdAddr))
	hit2 := b.Gate(cell.AND2, wbWE[0], c.Equal(wbAddr, f2))
	a := c.Mux2(hit1, rawA, wbData)
	bb := c.Mux2(hit2, rawB, wbData)

	// ---- ALU with operand isolation ----------------------------------------
	// The ALU operands are AND-gated with an "ALU in use" qualifier
	// (operand isolation, a standard synthesis transformation): when the
	// instruction in EX does not use the ALU, its inputs are forced to
	// zero. The isolation gates double as MATE choke points — an SEU in a
	// register-file cell or operand path is stopped right at the ALU
	// boundary whenever a non-ALU instruction executes.
	useImm := orTree(c, isLDI, isSUBI, isCPI)
	op2 := c.Mux2(useImm, bb, imm)

	isSubLike := orTree(c, isSUBc, isCP, isSUBI, isCPI)
	isSbcLike := b.Gate(cell.OR2, isSBC, isCPC)
	isSub := b.Gate(cell.OR2, isSubLike, isSbcLike)

	isLogic := orTree(c, isAND, isOR, isEOR)
	isShift := b.Gate(cell.OR2, mLSR, mROR)
	isIncDec := b.Gate(cell.OR2, mINC, mDEC)
	isArithEarly := orTree(c, isADD, isADC, isSUBc, isSBC, isCP, isCPC, isSUBI, isCPI)
	aluEn := b.GateNamed("alu_en", cell.OR2,
		b.Gate(cell.OR2, isArithEarly, isLogic),
		b.Gate(cell.OR2, isShift, isIncDec))
	aIso := c.AndBit(a, aluEn)
	op2Iso := c.AndBit(op2, aluEn)

	b2 := c.Mux2(isSub, op2Iso, c.Not(op2Iso))
	// carry-in: add: isADC&C; sub: 1 for SUB-like, ¬C for SBC-like.
	cinSub := b.Gate(cell.MUX2, b.Const(true), b.Gate(cell.INV, C), isSbcLike)
	cinAdd := b.Gate(cell.AND2, isADC, C)
	cin := b.Gate(cell.MUX2, cinAdd, cinSub, isSub)
	sum := c.Adder(aIso, b2, cin)
	arithC := b.Gate(cell.XOR2, sum.Cout, isSub) // sub: C = borrow = ¬cout
	arithV := b.Gate(cell.AND2,
		b.Gate(cell.XNOR2, aIso[7], b2[7]),
		b.Gate(cell.XOR2, aIso[7], sum.Sum[7]))

	andRes := c.And(aIso, op2Iso)
	orRes := c.Or(aIso, op2Iso)
	xorRes := c.Xor(aIso, op2Iso)
	logicRes := c.Mux2(isOR, c.Mux2(isEOR, andRes, xorRes), orRes)

	shiftIn := b.Gate(cell.AND2, mROR, C)
	shiftRes, shiftC := c.ShiftRight1(aIso, shiftIn)

	incdecB := c.Mux2(mDEC, c.ConstBus(1, 8), c.ConstBus(0xFF, 8))
	incdec := c.Adder(aIso, incdecB, b.Const(false))

	// ---- result mux ---------------------------------------------------------
	result := sum.Sum
	result = c.Mux2(isLogic, result, logicRes)
	result = c.Mux2(isShift, result, shiftRes)
	result = c.Mux2(isIncDec, result, incdec.Sum)
	result = c.Mux2(isMOV, result, bb)
	result = c.Mux2(isLDI, result, imm)

	// ---- memory stage (2-cycle LD/ST, registered interface) ------------------
	stall := b.GateNamed("mem_stall", cell.OR2, mLD, mST)
	memEn := stall // latch the interface registers exactly when issuing
	c.ConnectRegister(memAddr, bb[:DMemBits], memEn)
	c.ConnectRegister(memWData, a, memEn)
	c.ConnectRegister(memDst, f3, memEn)
	c.ConnectRegisterAlways(memRd, synth.Bus{mLD})
	c.ConnectRegisterAlways(memWr, synth.Bus{mST})
	memActive := b.GateNamed("mem_active", cell.OR2, memRd[0], memWr[0])

	// ---- write-back stage ------------------------------------------------------
	// The execute stage registers its result; the register file commits it
	// one cycle later. The LD write-back (memory cycle) shares the write
	// port — the pipeline bubble keeps the two apart.
	writesEX := orTree(c,
		isADD, isADC, isSUBc, isSBC, isAND, isOR, isEOR, isMOV, isLDI, isSUBI,
		mLSR, mROR, mINC, mDEC)
	wEn := b.GateNamed("rf_we", cell.OR2, wbWE[0], memRd[0])
	wAddr := c.Mux2(memRd[0], wbAddr, memDst)
	// Write-port data isolation: the write bus idles at zero unless a
	// write commits this cycle.
	wData := c.AndBit(c.Mux2(memRd[0], wbData, core.DMemRData), wEn)
	rf.ConnectWrite(c, wEn, wAddr, wData)

	// ---- flags -----------------------------------------------------------------
	isArith := isArithEarly
	zBase := b.Gate(cell.INV, c.ReduceOr(result))
	zChained := b.Gate(cell.AND2, zBase, Z)
	zVal := b.Gate(cell.MUX2, zBase, zChained, isSbcLike)
	nVal := result[7]

	cEnInstr := b.Gate(cell.OR2, isArith, isShift)
	cEn := cEnInstr
	cVal := b.Gate(cell.MUX2, arithC, shiftC, isShift)

	znvEnInstr := orTree(c, isArith, isLogic, isShift, isIncDec)
	znvEn := znvEnInstr

	// V value by instruction family.
	vShift := b.Gate(cell.XOR2, nVal, shiftC)
	vInc := c.EqualConst(result, 0x80)
	vDec := c.EqualConst(result, 0x7F)
	vIncDec := b.Gate(cell.MUX2, vInc, vDec, mDEC)
	vVal := arithV
	vVal = b.Gate(cell.MUX2, vVal, b.Const(false), isLogic)
	vVal = b.Gate(cell.MUX2, vVal, vShift, isShift)
	vVal = b.Gate(cell.MUX2, vVal, vIncDec, isIncDec)

	c.ConnectRegister(flagC, synth.Bus{cVal}, cEn)
	c.ConnectRegister(flagZ, synth.Bus{zVal}, znvEn)
	c.ConnectRegister(flagN, synth.Bus{nVal}, znvEn)
	c.ConnectRegister(flagV, synth.Bus{vVal}, znvEn)

	// ---- branches and PC ----------------------------------------------------------
	condMet := orTree(c,
		b.Gate(cell.AND2, subDec[CondEQ], Z),
		b.Gate(cell.AND2, subDec[CondNE], b.Gate(cell.INV, Z)),
		b.Gate(cell.AND2, subDec[CondCS], C),
		b.Gate(cell.AND2, subDec[CondCC], b.Gate(cell.INV, C)),
		b.Gate(cell.AND2, subDec[CondMI], N),
		b.Gate(cell.AND2, subDec[CondPL], b.Gate(cell.INV, N)))
	taken := b.GateNamed("branch_taken", cell.OR2,
		isRJMP, b.Gate(cell.AND2, isBcc, condMet))

	off12 := synth.Bus(irq[0:12])
	off8x := c.SignExtend(synth.Bus(irq[0:8]), PCBits)
	off := c.Mux2(isRJMP, off8x, off12)
	target := c.Adder(pc, off, b.Const(false)).Sum
	pcInc := c.Inc(pc).Sum
	pcNext := c.Mux2(taken, pcInc, target)

	haltedNext := b.GateNamed("halted_next", cell.OR2, hlt, mHALT)
	// run is derived from the *registered* halted flag (not haltedNext), so
	// the pipeline-register enables are clean border wires for IR faults;
	// the core executes one extra (architecturally idle) cycle after HALT.
	run := b.GateNamed("run", cell.INV, hlt)

	c.ConnectRegister(wbData, result, run)
	c.ConnectRegister(wbAddr, rdAddr, run)
	c.ConnectRegister(wbWE, synth.Bus{writesEX}, run)

	pcEn := b.Gate(cell.AND2, run, b.Gate(cell.INV, stall))
	c.ConnectRegister(pc, pcNext, pcEn)
	c.ConnectRegister(ir, core.IMemData, run)
	validNext := b.Gate(cell.AND2,
		b.Gate(cell.INV, taken),
		b.Gate(cell.AND2, run, b.Gate(cell.INV, stall)))
	c.ConnectRegister(valid, synth.Bus{validNext}, run)
	c.ConnectRegisterAlways(halted, synth.Bus{haltedNext})

	// ---- output port ------------------------------------------------------------------
	portEn := mOUT
	c.ConnectRegister(port, a, portEn)

	// ---- primary outputs ----------------------------------------------------------------
	// The data-memory pins are qualified by their strobes: they idle at
	// zero unless an access is pending, as a real bus interface does.
	addrPins := c.AndBit(memAddr, memActive)
	wdataPins := c.AndBit(memWData, memWr[0])
	c.OutputBus(pc)
	c.OutputBus(addrPins)
	c.OutputBus(wdataPins)
	b.MarkOutput(memWr[0])
	c.OutputBus(port)
	b.MarkOutput(hlt)

	// Sweep unobservable gates (unused decode lines, final adder carries)
	// so the shipped netlist is lint-clean and the simulators never
	// evaluate logic no fault can escape from. All port and state wires
	// below are observable by construction, so the remap never drops them.
	swept, remap := netlist.MustSweepDead(b.MustNetlist())
	core.NL = swept
	core.IMemData = synth.Bus(remap.Wires(core.IMemData))
	core.DMemRData = synth.Bus(remap.Wires(core.DMemRData))
	core.IMemAddr = synth.Bus(remap.Wires(pc))
	core.DMemAddr = synth.Bus(remap.Wires(addrPins))
	core.DMemWData = synth.Bus(remap.Wires(wdataPins))
	core.DMemWE = remap.Wire(memWr[0])
	core.Port = synth.Bus(remap.Wires(port))
	core.Halted = remap.Wire(hlt)
	core.PC = synth.Bus(remap.Wires(pc))
	core.Regs = make([]synth.Bus, NumRegs)
	for r := 0; r < NumRegs; r++ {
		core.Regs[r] = synth.Bus(remap.Wires(rf.Regs[r]))
	}
	core.FlagC, core.FlagZ = remap.Wire(C), remap.Wire(Z)
	core.FlagN, core.FlagV = remap.Wire(N), remap.Wire(V)
	return core
}

// orTree ORs an arbitrary number of wires.
func orTree(c *synth.Ctx, ws ...netlist.WireID) netlist.WireID {
	return c.ReduceOr(synth.Bus(ws))
}
