package avr

// ISS is the architectural golden model of the AVR-class core: it executes
// one instruction per step with the exact same visible semantics as the
// gate-level netlist (register file, flags, data memory, output port). The
// netlist is validated against it by co-simulation.
type ISS struct {
	PC     uint16
	Regs   [NumRegs]uint8
	C, Z   bool
	N, V   bool
	Port   uint8
	Halted bool

	IMem []uint16
	DMem [1 << DMemBits]uint8

	// Instructions counts executed (retired) instructions.
	Instructions int
}

// NewISS creates an ISS with the given program loaded at address 0.
func NewISS(prog []uint16) *ISS {
	return &ISS{IMem: prog}
}

// fetch returns the instruction word at pc; beyond the program it reads 0
// (NOP), matching a zero-initialised instruction memory.
func (s *ISS) fetch(pc uint16) uint16 {
	pc &= 1<<PCBits - 1
	if int(pc) < len(s.IMem) {
		return s.IMem[pc]
	}
	return 0
}

// Step executes one instruction. It is a no-op once halted.
func (s *ISS) Step() {
	if s.Halted {
		return
	}
	in := Decode(s.fetch(s.PC))
	next := (s.PC + 1) & (1<<PCBits - 1)
	s.Instructions++

	setZN := func(r uint8) {
		s.Z = r == 0
		s.N = r&0x80 != 0
	}
	add := func(a, b uint8, cin bool) uint8 {
		c := uint16(0)
		if cin {
			c = 1
		}
		sum := uint16(a) + uint16(b) + c
		r := uint8(sum)
		s.C = sum > 0xFF
		s.V = (a^b)&0x80 == 0 && (a^r)&0x80 != 0
		setZN(r)
		return r
	}
	sub := func(a, b uint8, borrow bool, chainZ bool) uint8 {
		c := uint16(0)
		if borrow {
			c = 1
		}
		diff := uint16(a) - uint16(b) - c
		r := uint8(diff)
		s.C = diff > 0xFF // unsigned underflow = borrow out
		s.V = (a^b)&0x80 != 0 && (a^r)&0x80 != 0
		oldZ := s.Z
		setZN(r)
		if chainZ {
			s.Z = s.Z && oldZ
		}
		return r
	}

	switch in.Class {
	case ClassMisc:
		switch in.Sub {
		case MiscNOP:
		case MiscHALT:
			s.Halted = true
			return // PC freezes on HALT
		case MiscLSR:
			v := s.Regs[in.Rd]
			s.C = v&1 != 0
			r := v >> 1
			s.Regs[in.Rd] = r
			setZN(r)
			s.V = s.N != s.C
		case MiscROR:
			v := s.Regs[in.Rd]
			oldC := s.C
			s.C = v&1 != 0
			r := v >> 1
			if oldC {
				r |= 0x80
			}
			s.Regs[in.Rd] = r
			setZN(r)
			s.V = s.N != s.C
		case MiscINC:
			r := s.Regs[in.Rd] + 1
			s.Regs[in.Rd] = r
			setZN(r)
			s.V = r == 0x80
		case MiscDEC:
			r := s.Regs[in.Rd] - 1
			s.Regs[in.Rd] = r
			setZN(r)
			s.V = r == 0x7F
		case MiscOUT:
			s.Port = s.Regs[in.Rd]
		case MiscLD:
			s.Regs[in.Rd] = s.DMem[s.Regs[in.Rr]]
		case MiscST:
			s.DMem[s.Regs[in.Rr]] = s.Regs[in.Rd]
		}
	case ClassADD:
		s.Regs[in.Rd] = add(s.Regs[in.Rd], s.Regs[in.Rr], false)
	case ClassADC:
		s.Regs[in.Rd] = add(s.Regs[in.Rd], s.Regs[in.Rr], s.C)
	case ClassSUB:
		s.Regs[in.Rd] = sub(s.Regs[in.Rd], s.Regs[in.Rr], false, false)
	case ClassSBC:
		s.Regs[in.Rd] = sub(s.Regs[in.Rd], s.Regs[in.Rr], s.C, true)
	case ClassAND:
		r := s.Regs[in.Rd] & s.Regs[in.Rr]
		s.Regs[in.Rd] = r
		setZN(r)
		s.V = false
	case ClassOR:
		r := s.Regs[in.Rd] | s.Regs[in.Rr]
		s.Regs[in.Rd] = r
		setZN(r)
		s.V = false
	case ClassEOR:
		r := s.Regs[in.Rd] ^ s.Regs[in.Rr]
		s.Regs[in.Rd] = r
		setZN(r)
		s.V = false
	case ClassMOV:
		s.Regs[in.Rd] = s.Regs[in.Rr]
	case ClassCP:
		sub(s.Regs[in.Rd], s.Regs[in.Rr], false, false)
	case ClassCPC:
		sub(s.Regs[in.Rd], s.Regs[in.Rr], s.C, true)
	case ClassLDI:
		s.Regs[in.Rd] = in.Imm
	case ClassSUBI:
		s.Regs[in.Rd] = sub(s.Regs[in.Rd], in.Imm, false, false)
	case ClassCPI:
		sub(s.Regs[in.Rd], in.Imm, false, false)
	case ClassRJMP:
		next = uint16(int(next)+in.Off) & (1<<PCBits - 1)
	case ClassBcc:
		taken := false
		switch in.Sub {
		case CondEQ:
			taken = s.Z
		case CondNE:
			taken = !s.Z
		case CondCS:
			taken = s.C
		case CondCC:
			taken = !s.C
		case CondMI:
			taken = s.N
		case CondPL:
			taken = !s.N
		}
		if taken {
			next = uint16(int(next)+in.Off) & (1<<PCBits - 1)
		}
	}
	s.PC = next
}

// Run executes until HALT or maxInstructions, returning the number of
// instructions retired.
func (s *ISS) Run(maxInstructions int) int {
	n := 0
	for !s.Halted && n < maxInstructions {
		s.Step()
		n++
	}
	return n
}
