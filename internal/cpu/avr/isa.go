// Package avr implements an AVR-class 8-bit RISC microcontroller with a
// two-stage (fetch/execute) pipeline as a gate-level netlist, together with
// an assembler and an architectural instruction-set simulator (ISS) used as
// the golden model for co-simulation.
//
// The paper evaluates "an 8-bit RISC AVR/Atmel-compatible microcontroller,
// implementing a two-stage pipeline design". Its exact RTL is not
// available, so this package rebuilds an AVR-class core from scratch: a
// 16×8-bit register file, a 4-flag status register (C, Z, N, V), a 12-bit
// program counter, Harvard program/data memories attached through external
// ports, and an instruction set covering the arithmetic, logic, shift,
// memory, branch and I/O operations the fib()/conv() workloads need. See
// DESIGN.md §5 for how this substitution preserves the paper-relevant
// structure (register file dominating the FF count, write-enable muxes as
// the masking hot spots).
package avr

import "fmt"

// Instruction classes (bits 15:12 of the 16-bit instruction word).
const (
	ClassMisc = 0x0 // subop in bits 11:8, register operands in bits 7:4/3:0
	ClassADD  = 0x1
	ClassADC  = 0x2
	ClassSUB  = 0x3
	ClassSBC  = 0x4
	ClassAND  = 0x5
	ClassOR   = 0x6
	ClassEOR  = 0x7
	ClassMOV  = 0x8
	ClassCP   = 0x9
	ClassCPC  = 0xA
	ClassLDI  = 0xB // rd in 11:8, imm8 in 7:0
	ClassRJMP = 0xC // signed 12-bit offset
	ClassBcc  = 0xD // condition in 11:8, signed 8-bit offset
	ClassSUBI = 0xE // rd in 11:8, imm8 in 7:0
	ClassCPI  = 0xF
)

// Misc subops (bits 11:8 when class == ClassMisc). Register rd lives in
// bits 3:0; the pointer register rs (for LD/ST) in bits 7:4.
const (
	MiscNOP  = 0x0
	MiscHALT = 0x1
	MiscLSR  = 0x2
	MiscROR  = 0x3
	MiscINC  = 0x4
	MiscDEC  = 0x5
	MiscOUT  = 0x6 // port <- rd
	MiscLD   = 0x7 // rd <- dmem[rs]
	MiscST   = 0x8 // dmem[rs] <- rd
)

// Branch conditions (bits 11:8 when class == ClassBcc).
const (
	CondEQ = 0x0 // Z set
	CondNE = 0x1 // Z clear
	CondCS = 0x2 // C set (unsigned lower)
	CondCC = 0x3 // C clear (unsigned same or higher)
	CondMI = 0x4 // N set
	CondPL = 0x5 // N clear
)

// NumRegs is the register-file size (r0..r15).
const NumRegs = 16

// PCBits is the program-counter width; the instruction memory holds up to
// 2^PCBits 16-bit words.
const PCBits = 12

// DMemBits is the data-memory address width (256 bytes).
const DMemBits = 8

// Instr is one decoded instruction word.
type Instr struct {
	Class int
	Sub   int // misc subop or branch condition
	Rd    int
	Rr    int
	Imm   uint8
	Off   int // sign-extended branch/jump offset
}

// Decode splits a raw instruction word into fields. It never fails:
// unknown misc subops behave as NOP in both the ISS and the netlist.
func Decode(w uint16) Instr {
	cl := int(w >> 12)
	in := Instr{Class: cl}
	switch cl {
	case ClassMisc:
		in.Sub = int(w >> 8 & 0xF)
		in.Rr = int(w >> 4 & 0xF)
		in.Rd = int(w & 0xF)
	case ClassRJMP:
		off := int(w & 0x0FFF)
		if off&0x800 != 0 {
			off -= 0x1000
		}
		in.Off = off
	case ClassBcc:
		in.Sub = int(w >> 8 & 0xF)
		off := int(w & 0xFF)
		if off&0x80 != 0 {
			off -= 0x100
		}
		in.Off = off
	case ClassLDI, ClassSUBI, ClassCPI:
		in.Rd = int(w >> 8 & 0xF)
		in.Imm = uint8(w & 0xFF)
	default: // two-register ALU formats
		in.Rd = int(w >> 8 & 0xF)
		in.Rr = int(w >> 4 & 0xF)
	}
	return in
}

// Encode builds the raw instruction word from fields; the inverse of
// Decode for well-formed instructions.
func Encode(in Instr) (uint16, error) {
	checkReg := func(r int) error {
		if r < 0 || r >= NumRegs {
			return fmt.Errorf("avr: register r%d out of range", r)
		}
		return nil
	}
	switch in.Class {
	case ClassMisc:
		if err := checkReg(in.Rd); err != nil {
			return 0, err
		}
		if err := checkReg(in.Rr); err != nil {
			return 0, err
		}
		return uint16(ClassMisc)<<12 | uint16(in.Sub&0xF)<<8 | uint16(in.Rr)<<4 | uint16(in.Rd), nil
	case ClassRJMP:
		if in.Off < -2048 || in.Off > 2047 {
			return 0, fmt.Errorf("avr: rjmp offset %d out of range", in.Off)
		}
		return uint16(ClassRJMP)<<12 | uint16(in.Off)&0x0FFF, nil
	case ClassBcc:
		if in.Off < -128 || in.Off > 127 {
			return 0, fmt.Errorf("avr: branch offset %d out of range", in.Off)
		}
		return uint16(ClassBcc)<<12 | uint16(in.Sub&0xF)<<8 | uint16(in.Off)&0xFF, nil
	case ClassLDI, ClassSUBI, ClassCPI:
		if err := checkReg(in.Rd); err != nil {
			return 0, err
		}
		return uint16(in.Class)<<12 | uint16(in.Rd)<<8 | uint16(in.Imm), nil
	case ClassADD, ClassADC, ClassSUB, ClassSBC, ClassAND, ClassOR, ClassEOR, ClassMOV, ClassCP, ClassCPC:
		if err := checkReg(in.Rd); err != nil {
			return 0, err
		}
		if err := checkReg(in.Rr); err != nil {
			return 0, err
		}
		return uint16(in.Class)<<12 | uint16(in.Rd)<<8 | uint16(in.Rr)<<4, nil
	}
	return 0, fmt.Errorf("avr: unknown class %#x", in.Class)
}
