package avr

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates AVR-class assembly into instruction words. The
// syntax is line oriented:
//
//	; comment
//	label:
//	    ldi  r1, 0x10
//	    add  r1, r2
//	    ld   r3, (r4)
//	    st   (r4), r3
//	    out  r1
//	    breq label
//	    rjmp label
//
// Registers are r0..r15; immediates are Go-style integers (0x.., decimal).
// Branch targets are labels; offsets are PC-relative to the following
// instruction.
func Assemble(src string) ([]uint16, error) {
	type pending struct {
		instr Instr
		label string
		line  int
	}
	labels := map[string]int{}
	var prog []pending

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for {
			if i := strings.IndexByte(line, ':'); i >= 0 {
				label := strings.TrimSpace(line[:i])
				if label == "" || strings.ContainsAny(label, " \t") {
					return nil, fmt.Errorf("avr asm line %d: bad label %q", ln+1, label)
				}
				if _, dup := labels[label]; dup {
					return nil, fmt.Errorf("avr asm line %d: duplicate label %q", ln+1, label)
				}
				labels[label] = len(prog)
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		in, target, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("avr asm line %d: %v", ln+1, err)
		}
		prog = append(prog, pending{instr: in, label: target, line: ln + 1})
	}

	words := make([]uint16, len(prog))
	for pc, p := range prog {
		in := p.instr
		if p.label != "" {
			tgt, ok := labels[p.label]
			if !ok {
				return nil, fmt.Errorf("avr asm line %d: undefined label %q", p.line, p.label)
			}
			in.Off = tgt - (pc + 1)
		}
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("avr asm line %d: %v", p.line, err)
		}
		words[pc] = w
	}
	return words, nil
}

// MustAssemble is Assemble that panics on error; for tests and embedded
// programs.
func MustAssemble(src string) []uint16 {
	w, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return w
}

func parseInstr(line string) (Instr, string, error) {
	fields := strings.Fields(line)
	op := strings.ToLower(fields[0])
	rest := strings.TrimSpace(line[len(fields[0]):])
	args := splitArgs(rest)

	reg := func(s string) (int, error) {
		s = strings.ToLower(strings.TrimSpace(s))
		if !strings.HasPrefix(s, "r") {
			return 0, fmt.Errorf("expected register, got %q", s)
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n >= NumRegs {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return n, nil
	}
	imm := func(s string) (uint8, error) {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
		if err != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		if v < -128 || v > 255 {
			return 0, fmt.Errorf("immediate %d out of range", v)
		}
		return uint8(v), nil
	}
	indirect := func(s string) (int, error) {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
			return 0, fmt.Errorf("expected (rN), got %q", s)
		}
		return reg(s[1 : len(s)-1])
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operand(s), got %d", op, n, len(args))
		}
		return nil
	}

	aluClasses := map[string]int{
		"add": ClassADD, "adc": ClassADC, "sub": ClassSUB, "sbc": ClassSBC,
		"and": ClassAND, "or": ClassOR, "eor": ClassEOR, "mov": ClassMOV,
		"cp": ClassCP, "cpc": ClassCPC,
	}
	immClasses := map[string]int{"ldi": ClassLDI, "subi": ClassSUBI, "cpi": ClassCPI}
	miscUnary := map[string]int{"lsr": MiscLSR, "ror": MiscROR, "inc": MiscINC, "dec": MiscDEC, "out": MiscOUT}
	conds := map[string]int{"breq": CondEQ, "brne": CondNE, "brcs": CondCS, "brlo": CondCS, "brcc": CondCC, "brsh": CondCC, "brmi": CondMI, "brpl": CondPL}

	switch {
	case op == "nop":
		return Instr{Class: ClassMisc, Sub: MiscNOP}, "", need(0)
	case op == "halt":
		return Instr{Class: ClassMisc, Sub: MiscHALT}, "", need(0)
	case aluClasses[op] != 0:
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err := reg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		rr, err := reg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Class: aluClasses[op], Rd: rd, Rr: rr}, "", nil
	case immClasses[op] != 0:
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err := reg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		iv, err := imm(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Class: immClasses[op], Rd: rd, Imm: iv}, "", nil
	case miscUnary[op] != 0:
		if err := need(1); err != nil {
			return Instr{}, "", err
		}
		rd, err := reg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Class: ClassMisc, Sub: miscUnary[op], Rd: rd}, "", nil
	case op == "ld":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err := reg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		rs, err := indirect(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Class: ClassMisc, Sub: MiscLD, Rd: rd, Rr: rs}, "", nil
	case op == "st":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rs, err := indirect(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		rd, err := reg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Class: ClassMisc, Sub: MiscST, Rd: rd, Rr: rs}, "", nil
	case op == "rjmp":
		if err := need(1); err != nil {
			return Instr{}, "", err
		}
		return Instr{Class: ClassRJMP}, strings.TrimSpace(args[0]), nil
	default:
		if cond, ok := conds[op]; ok {
			if err := need(1); err != nil {
				return Instr{}, "", err
			}
			return Instr{Class: ClassBcc, Sub: cond}, strings.TrimSpace(args[0]), nil
		}
	}
	return Instr{}, "", fmt.Errorf("unknown mnemonic %q", op)
}

// splitArgs splits on top-level commas, keeping "(r4)" intact.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
