package avr

import (
	"math/rand"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Class: ClassMisc, Sub: MiscNOP},
		{Class: ClassMisc, Sub: MiscHALT},
		{Class: ClassMisc, Sub: MiscLSR, Rd: 5},
		{Class: ClassMisc, Sub: MiscLD, Rd: 3, Rr: 4},
		{Class: ClassMisc, Sub: MiscST, Rd: 7, Rr: 2},
		{Class: ClassADD, Rd: 1, Rr: 2},
		{Class: ClassCPC, Rd: 15, Rr: 14},
		{Class: ClassLDI, Rd: 9, Imm: 0xAB},
		{Class: ClassSUBI, Rd: 2, Imm: 1},
		{Class: ClassCPI, Rd: 3, Imm: 200},
		{Class: ClassRJMP, Off: -5},
		{Class: ClassRJMP, Off: 2047},
		{Class: ClassBcc, Sub: CondNE, Off: -128},
		{Class: ClassBcc, Sub: CondEQ, Off: 127},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		got := Decode(w)
		if got != in {
			t.Errorf("round trip %+v -> %04x -> %+v", in, w, got)
		}
	}
}

func TestEncodeRanges(t *testing.T) {
	if _, err := Encode(Instr{Class: ClassRJMP, Off: 5000}); err == nil {
		t.Error("rjmp range not checked")
	}
	if _, err := Encode(Instr{Class: ClassBcc, Off: 300}); err == nil {
		t.Error("branch range not checked")
	}
	if _, err := Encode(Instr{Class: ClassADD, Rd: 16}); err == nil {
		t.Error("register range not checked")
	}
}

func TestAssembleBasics(t *testing.T) {
	prog, err := Assemble(`
	; a small loop
	    ldi r1, 5
	loop:
	    dec r1
	    brne loop
	    halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 4 {
		t.Fatalf("len = %d", len(prog))
	}
	in := Decode(prog[2])
	if in.Class != ClassBcc || in.Sub != CondNE || in.Off != -2 {
		t.Fatalf("branch = %+v", in)
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, src := range []string{
		"bogus r1",
		"ldi r20, 1",
		"ldi r1",
		"add r1, 5",
		"rjmp nowhere",
		"ld r1, r2",    // missing parens
		"st r2, (r1)",  // swapped operands
		"x: x: nop",    // duplicate label (same line)
		"ldi r1, 9999", // immediate out of range
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestISSBasicArithmetic(t *testing.T) {
	s := NewISS(MustAssemble(`
	    ldi r1, 200
	    ldi r2, 100
	    add r1, r2   ; 300 -> 44, carry set
	    halt
	`))
	s.Run(100)
	if !s.Halted {
		t.Fatal("not halted")
	}
	if s.Regs[1] != 44 || !s.C {
		t.Fatalf("r1=%d C=%v", s.Regs[1], s.C)
	}
}

func TestISSSubCompareBranch(t *testing.T) {
	s := NewISS(MustAssemble(`
	    ldi r1, 10
	    ldi r2, 10
	    cp r1, r2
	    breq equal
	    ldi r3, 1
	    halt
	equal:
	    ldi r3, 2
	    halt
	`))
	s.Run(100)
	if s.Regs[3] != 2 {
		t.Fatalf("r3 = %d", s.Regs[3])
	}
}

func TestISSMemoryAndPort(t *testing.T) {
	s := NewISS(MustAssemble(`
	    ldi r1, 0x42
	    ldi r2, 16      ; pointer
	    st (r2), r1
	    ldi r3, 0
	    ld r3, (r2)
	    out r3
	    halt
	`))
	s.Run(100)
	if s.DMem[16] != 0x42 || s.Regs[3] != 0x42 || s.Port != 0x42 {
		t.Fatalf("dmem=%x r3=%x port=%x", s.DMem[16], s.Regs[3], s.Port)
	}
}

func TestISS16BitCompareViaCPC(t *testing.T) {
	// 16-bit value in r3:r2 compared against r5:r4 using cp/cpc.
	s := NewISS(MustAssemble(`
	    ldi r2, 0x00
	    ldi r3, 0x01  ; 0x0100
	    ldi r4, 0x00
	    ldi r5, 0x01  ; 0x0100
	    cp r2, r4
	    cpc r3, r5
	    breq eq
	    ldi r6, 0
	    halt
	eq: ldi r6, 1
	    halt
	`))
	s.Run(100)
	if s.Regs[6] != 1 {
		t.Fatal("16-bit compare failed")
	}
}

func TestCoreStats(t *testing.T) {
	core := NewCore()
	st := core.NL.Stats()
	nonRF := 0
	rf := 0
	for _, ff := range core.NL.FFs {
		if ff.Group == GroupRegFile {
			rf++
		} else {
			nonRF++
		}
	}
	if rf != NumRegs*8 {
		t.Errorf("regfile FFs = %d, want %d", rf, NumRegs*8)
	}
	// 2-stage AVR-class: the register file must dominate the FF count
	// (paper: 383 total, 248 in the RF).
	if rf <= nonRF {
		t.Errorf("regfile (%d) should dominate non-RF (%d) FFs", rf, nonRF)
	}
	if st.Gates < 500 {
		t.Errorf("suspiciously small core: %d gates", st.Gates)
	}
	t.Logf("AVR core: %s, rf=%d nonRF=%d", st, rf, nonRF)
}

// runBoth executes a program on both the ISS and the netlist and compares
// the complete architectural state at halt.
func runBoth(t *testing.T, core *Core, src string, maxInstr int) (*ISS, *System) {
	t.Helper()
	prog := MustAssemble(src)
	iss := NewISS(prog)
	iss.Run(maxInstr)
	if !iss.Halted {
		t.Fatal("ISS did not halt")
	}

	sys := NewSystem(core, prog)
	cycles := sys.Run(maxInstr*3 + 10)
	if !sys.Halted() {
		t.Fatalf("netlist did not halt after %d cycles", cycles)
	}
	compareState(t, iss, sys)
	return iss, sys
}

func compareState(t *testing.T, iss *ISS, sys *System) {
	t.Helper()
	for r := 0; r < NumRegs; r++ {
		if got := sys.Reg(r); got != iss.Regs[r] {
			t.Errorf("r%d: netlist %#x, iss %#x", r, got, iss.Regs[r])
		}
	}
	c, z, n, v := sys.Flags()
	if c != iss.C || z != iss.Z || n != iss.N || v != iss.V {
		t.Errorf("flags: netlist C%v Z%v N%v V%v, iss C%v Z%v N%v V%v",
			c, z, n, v, iss.C, iss.Z, iss.N, iss.V)
	}
	if got := sys.PortValue(); got != iss.Port {
		t.Errorf("port: netlist %#x, iss %#x", got, iss.Port)
	}
	// The pipeline PC has advanced two slots past the HALT instruction: one
	// for the fetch overlapping HALT's execute cycle, and one because the
	// halted flag is registered (run = ¬halted freezes the PC one cycle
	// after HALT retires).
	if got := sys.PCValue(); got != iss.PC+2 {
		t.Errorf("pc: netlist %d, iss %d (+2 expected)", got, iss.PC)
	}
	for a := 0; a < 1<<DMemBits; a++ {
		if sys.DMem[a] != iss.DMem[a] {
			t.Errorf("dmem[%d]: netlist %#x, iss %#x", a, sys.DMem[a], iss.DMem[a])
		}
	}
}

func TestCosimArithmetic(t *testing.T) {
	core := NewCore()
	runBoth(t, core, `
	    ldi r1, 200
	    ldi r2, 100
	    add r1, r2
	    adc r3, r1    ; r3 = 0 + 44 + carry
	    sub r2, r3
	    sbc r4, r2
	    and r1, r2
	    or  r5, r1
	    eor r5, r2
	    mov r6, r5
	    inc r6
	    dec r2
	    lsr r1
	    ror r3
	    halt
	`, 100)
}

func TestCosimBranchesAndLoops(t *testing.T) {
	core := NewCore()
	runBoth(t, core, `
	    ldi r1, 10
	    ldi r2, 0
	loop:
	    add r2, r1
	    dec r1
	    brne loop
	    cpi r2, 55
	    brne fail
	    ldi r15, 1
	    rjmp end
	fail:
	    ldi r15, 2
	end:
	    out r2
	    halt
	`, 200)
}

func TestCosimMemory(t *testing.T) {
	core := NewCore()
	runBoth(t, core, `
	    ldi r1, 0
	    ldi r2, 7
	fill:
	    st (r1), r2
	    add r2, r2
	    inc r1
	    cpi r1, 8
	    brne fill
	    ldi r1, 3
	    ld r4, (r1)
	    out r4
	    halt
	`, 300)
}

func TestCosimConditionVariants(t *testing.T) {
	core := NewCore()
	runBoth(t, core, `
	    ldi r1, 5
	    cpi r1, 10
	    brlo lower       ; 5 < 10 unsigned -> taken
	    ldi r2, 0xEE
	lower:
	    ldi r3, 0x80
	    cpi r3, 0
	    brmi isneg       ; N set
	    ldi r4, 0xEE
	isneg:
	    cpi r1, 1
	    brsh sameorhigher
	    ldi r5, 0xEE
	sameorhigher:
	    cpi r1, 0x7F
	    brpl ispos
	    nop
	ispos:
	    halt
	`, 200)
}

// TestCosimRandomPrograms cross-validates the netlist against the ISS on
// randomly generated straight-line programs (no branches, so they always
// terminate deterministically).
func TestCosimRandomPrograms(t *testing.T) {
	core := NewCore()
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 10; trial++ {
		var prog []uint16
		// seed registers
		for r := 0; r < NumRegs; r++ {
			w, _ := Encode(Instr{Class: ClassLDI, Rd: r, Imm: uint8(rng.Intn(256))})
			prog = append(prog, w)
		}
		classes := []int{ClassADD, ClassADC, ClassSUB, ClassSBC, ClassAND,
			ClassOR, ClassEOR, ClassMOV, ClassCP, ClassCPC, ClassSUBI, ClassCPI, ClassLDI}
		miscs := []int{MiscLSR, MiscROR, MiscINC, MiscDEC, MiscOUT, MiscLD, MiscST}
		for i := 0; i < 60; i++ {
			if rng.Intn(4) == 0 {
				w, _ := Encode(Instr{Class: ClassMisc, Sub: miscs[rng.Intn(len(miscs))],
					Rd: rng.Intn(NumRegs), Rr: rng.Intn(NumRegs)})
				prog = append(prog, w)
			} else {
				cl := classes[rng.Intn(len(classes))]
				w, _ := Encode(Instr{Class: cl, Rd: rng.Intn(NumRegs),
					Rr: rng.Intn(NumRegs), Imm: uint8(rng.Intn(256))})
				prog = append(prog, w)
			}
		}
		w, _ := Encode(Instr{Class: ClassMisc, Sub: MiscHALT})
		prog = append(prog, w)

		iss := NewISS(prog)
		iss.Run(1000)
		sys := NewSystem(core, prog)
		sys.M.Reset()
		sys.DMem = [1 << DMemBits]uint8{}
		sys.Run(1000)
		if !iss.Halted || !sys.Halted() {
			t.Fatalf("trial %d: not halted", trial)
		}
		compareState(t, iss, sys)
		if t.Failed() {
			t.Fatalf("trial %d failed", trial)
		}
	}
}

func TestNetlistHaltFreezesState(t *testing.T) {
	core := NewCore()
	sys := NewSystem(core, MustAssemble("ldi r1, 42\nout r1\nhalt"))
	sys.Run(100)
	snap := sys.M.FFState()
	for i := 0; i < 5; i++ {
		sys.Step()
	}
	after := sys.M.FFState()
	for i := range snap {
		if snap[i] != after[i] {
			t.Fatalf("FF %s changed after halt", core.NL.FFs[i].Name)
		}
	}
}
