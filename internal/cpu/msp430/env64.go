package msp430

import (
	"repro/internal/sim"
)

// System64 couples the core with 64 lane-parallel behavioural memories for
// batched fault-injection experiments (see sim.Machine64).
type System64 struct {
	Core *Core
	M    *sim.Machine64
	IMem []uint16
	// DMem is lane-major: DMem[lane][address].
	DMem [64][1 << DMemBits]uint16
}

// NewSystem64 builds the lane-parallel machine with the program loaded.
func NewSystem64(core *Core, prog []uint16) (*System64, error) {
	m, err := sim.NewMachine64(core.NL)
	if err != nil {
		return nil, err
	}
	return &System64{Core: core, M: m, IMem: prog}, nil
}

// Env returns the lane-parallel memory environment.
func (s *System64) Env() sim.Env64 {
	return sim.Env64Func(func(m *sim.Machine64) {
		var instrPlane [16]uint64
		var rdataPlane [16]uint64
		weMask := m.Lanes(s.Core.DMemWE)
		for l := 0; l < 64; l++ {
			pc := m.ReadBusLane(s.Core.IMemAddr, l)
			var instr uint16
			if int(pc) < len(s.IMem) {
				instr = s.IMem[pc]
			}
			for i := 0; i < 16; i++ {
				if instr>>uint(i)&1 == 1 {
					instrPlane[i] |= 1 << uint(l)
				}
			}
			addr := m.ReadBusLane(s.Core.DMemAddr, l)
			rdata := s.DMem[l][addr]
			for i := 0; i < 16; i++ {
				if rdata>>uint(i)&1 == 1 {
					rdataPlane[i] |= 1 << uint(l)
				}
			}
			if weMask>>uint(l)&1 == 1 {
				s.DMem[l][addr] = uint16(m.ReadBusLane(s.Core.DMemWData, l))
			}
		}
		for i, w := range s.Core.IMemData {
			m.SetLanes(w, instrPlane[i])
		}
		for i, w := range s.Core.DMemRData {
			m.SetLanes(w, rdataPlane[i])
		}
	})
}

// Step advances all 64 lanes one clock cycle.
func (s *System64) Step() { s.M.Step(s.Env()) }

// HaltedMask returns the lanes whose core has halted.
func (s *System64) HaltedMask() uint64 { return s.M.Lanes(s.Core.Halted) }

// LoadScalarState broadcasts a scalar checkpoint into every lane.
func (s *System64) LoadScalarState(ffs, inputs []bool, dmem [1 << DMemBits]uint16) {
	s.M.LoadState(ffs)
	s.M.LoadInputs(inputs)
	for l := 0; l < 64; l++ {
		s.DMem[l] = dmem
	}
}

// PortLane reads the output port register of one lane.
func (s *System64) PortLane(l int) uint16 { return uint16(s.M.ReadBusLane(s.Core.Port, l)) }
