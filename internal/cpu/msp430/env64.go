package msp430

import (
	"repro/internal/sim"
)

// System64 couples the core with 64 lane-parallel behavioural memories for
// batched fault-injection experiments (see sim.Machine64).
type System64 struct {
	Core *Core
	M    *sim.Machine64
	IMem []uint16
	// DMem is lane-major: DMem[lane][address].
	DMem [64][1 << DMemBits]uint16
	// WriteDigest chains each lane's data-memory write events, mirroring
	// the scalar System.WriteDigest lane for lane.
	WriteDigest [64]uint64

	envFn sim.Env64 // cached: Step runs every cycle, a per-call closure is pure garbage
}

// NewSystem64 builds the lane-parallel machine with the program loaded.
func NewSystem64(core *Core, prog []uint16) (*System64, error) {
	m, err := sim.NewMachine64(core.NL)
	if err != nil {
		return nil, err
	}
	s := &System64{Core: core, M: m, IMem: prog}
	for l := range s.WriteDigest {
		s.WriteDigest[l] = sim.WriteDigestSeed
	}
	// The environment only ever drives the instruction and read-data buses,
	// so Settle's second pass can be restricted to their downstream cone.
	m.SetEnvWrites(core.IMemData, core.DMemRData)
	s.envFn = sim.Env64Func(s.env)
	return s, nil
}

// Env returns the lane-parallel memory environment.
func (s *System64) Env() sim.Env64 { return s.envFn }

func (s *System64) env(m *sim.Machine64) {
	core := s.Core

	// Instruction fetch. When every lane agrees on the PC (benign lanes
	// track the golden control flow, so this is the common case before the
	// batch diverges) a single fetch is broadcast to all lanes; otherwise
	// the address bus is transposed to lane-major and fetched per lane.
	uniform := true
	for _, w := range core.IMemAddr {
		if p := m.Lanes(w); p != 0 && p != ^uint64(0) {
			uniform = false
			break
		}
	}
	if uniform {
		var pc uint64
		for i, w := range core.IMemAddr {
			pc |= (m.Lanes(w) & 1) << uint(i)
		}
		var instr uint16
		if int(pc) < len(s.IMem) {
			instr = s.IMem[pc]
		}
		for i, w := range core.IMemData {
			m.Broadcast(w, instr>>uint(i)&1 == 1)
		}
	} else {
		var pc, instr [64]uint16
		m.GatherBus(core.IMemAddr, &pc)
		for l := 0; l < 64; l++ {
			if int(pc[l]) < len(s.IMem) {
				instr[l] = s.IMem[pc[l]]
			}
		}
		m.ScatterBus(core.IMemData, &instr)
	}

	// Data memory: the contents are lane-private, so the access itself is
	// always per lane, but the bus crossings are bit-matrix transposes.
	var addr, rdata [64]uint16
	m.GatherBus(core.DMemAddr, &addr)
	weMask := m.Lanes(core.DMemWE)
	if weMask == 0 {
		for l := 0; l < 64; l++ {
			rdata[l] = s.DMem[l][addr[l]]
		}
	} else {
		var wdata [64]uint16
		m.GatherBus(core.DMemWData, &wdata)
		for l := 0; l < 64; l++ {
			a := addr[l]
			rdata[l] = s.DMem[l][a]
			if weMask>>uint(l)&1 == 1 {
				s.DMem[l][a] = wdata[l]
				s.WriteDigest[l] = sim.UpdateWriteDigest(s.WriteDigest[l], uint64(a), uint64(wdata[l]))
			}
		}
	}
	m.ScatterBus(core.DMemRData, &rdata)
}

// Step advances all 64 lanes one clock cycle.
func (s *System64) Step() { s.M.Step(s.envFn) }

// HaltedMask returns the lanes whose core has halted.
func (s *System64) HaltedMask() uint64 { return s.M.Lanes(s.Core.Halted) }

// LoadScalarState broadcasts a scalar checkpoint (flip-flop state, primary
// inputs, data memory, write digest) into every lane.
func (s *System64) LoadScalarState(ffs, inputs []bool, dmem [1 << DMemBits]uint16, digest uint64) {
	s.M.LoadState(ffs)
	s.M.LoadInputs(inputs)
	for l := 0; l < 64; l++ {
		s.DMem[l] = dmem
		s.WriteDigest[l] = digest
	}
}

// PortLane reads the output port register of one lane.
func (s *System64) PortLane(l int) uint16 { return uint16(s.M.ReadBusLane(s.Core.Port, l)) }
