package msp430

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// SystemW couples the core with 64·W lane-parallel behavioural memories
// for batched fault-injection experiments (see sim.MachineW). W=1 is the
// classic 64-lane system; the batched campaign engine runs W=4 (256
// lanes) by default.
type SystemW struct {
	Core *Core
	M    *sim.MachineW
	IMem []uint16
	// DMem is lane-major: DMem[lane][address], lane < 64·W.
	DMem [][1 << DMemBits]uint16
	// WriteDigest chains each lane's data-memory write events, mirroring
	// the scalar System.WriteDigest lane for lane.
	WriteDigest []uint64

	envFn sim.EnvW // cached: Step runs every cycle, a per-call closure is pure garbage

	// Per-call transpose scratch, lane-major. Kept on the system so the
	// per-cycle environment is allocation-free at any width.
	pc, instr, addr, rdata, wdata []uint16
	weMask                        []uint64
}

// NewSystemW builds the lane-parallel machine at width w (64·w lanes) with
// the program loaded.
func NewSystemW(core *Core, prog []uint16, w int) (*SystemW, error) {
	m, err := sim.NewMachineW(core.NL, w)
	if err != nil {
		return nil, err
	}
	lanes := m.NumLanes()
	s := &SystemW{
		Core:        core,
		M:           m,
		IMem:        prog,
		DMem:        make([][1 << DMemBits]uint16, lanes),
		WriteDigest: make([]uint64, lanes),
		pc:          make([]uint16, lanes),
		instr:       make([]uint16, lanes),
		addr:        make([]uint16, lanes),
		rdata:       make([]uint16, lanes),
		wdata:       make([]uint16, lanes),
		weMask:      make([]uint64, w),
	}
	for l := range s.WriteDigest {
		s.WriteDigest[l] = sim.WriteDigestSeed
	}
	// The environment only ever drives the instruction and read-data buses,
	// so Settle's second pass can be restricted to their downstream cone.
	m.SetEnvWrites(core.IMemData, core.DMemRData)
	s.envFn = sim.EnvWFunc(s.env)
	return s, nil
}

// Env returns the lane-parallel memory environment.
func (s *SystemW) Env() sim.EnvW { return s.envFn }

// Lanes returns the total lane count (64·W).
func (s *SystemW) Lanes() int { return len(s.WriteDigest) }

func (s *SystemW) env(m *sim.MachineW) {
	core := s.Core
	// Only the active lanes are simulated: after the campaign engine
	// compacts retired lanes out of a batch, the per-lane memory loops and
	// the bus transposes shrink with the machine.
	w := m.ActiveGroups()
	lanes := m.ActiveLanes()

	// Instruction fetch. When every lane agrees on the PC (benign lanes
	// track the golden control flow, so this is the common case before the
	// batch diverges) a single fetch is broadcast to all lanes; otherwise
	// the address bus is transposed to lane-major and fetched per lane.
	uniform := true
	for _, wire := range core.IMemAddr {
		first := m.LaneWord(wire, 0)
		if first != 0 && first != ^uint64(0) {
			uniform = false
			break
		}
		for g := 1; g < w; g++ {
			if m.LaneWord(wire, g) != first {
				uniform = false
				break
			}
		}
		if !uniform {
			break
		}
	}
	if uniform {
		var pc uint64
		for i, wire := range core.IMemAddr {
			pc |= (m.LaneWord(wire, 0) & 1) << uint(i)
		}
		var instr uint16
		if int(pc) < len(s.IMem) {
			instr = s.IMem[pc]
		}
		for i, wire := range core.IMemData {
			m.Broadcast(wire, instr>>uint(i)&1 == 1)
		}
	} else {
		m.GatherLanes(core.IMemAddr, s.pc)
		// Lanes at different PCs can still fetch the same word — runaway
		// lanes sweeping past the end of IMem all read zero for thousands of
		// cycles — so the 16-wire scatter transpose is skipped whenever the
		// fetched instructions agree.
		same := true
		first := uint16(0)
		if int(s.pc[0]) < len(s.IMem) {
			first = s.IMem[s.pc[0]]
		}
		s.instr[0] = first
		for l := 1; l < lanes; l++ {
			var ins uint16
			if int(s.pc[l]) < len(s.IMem) {
				ins = s.IMem[s.pc[l]]
			}
			s.instr[l] = ins
			same = same && ins == first
		}
		if same {
			for i, wire := range core.IMemData {
				m.Broadcast(wire, first>>uint(i)&1 == 1)
			}
		} else {
			m.ScatterLanes(core.IMemData, s.instr)
		}
	}

	// Data memory: the contents are lane-private, so the access itself is
	// always per lane, but the bus crossings are bit-matrix transposes —
	// skipped, like the fetch above, whenever the bus is uniform (runaway
	// lanes executing the all-zero instruction agree on the address, and
	// their reads mostly return the shared golden memory image).
	uaddr := true
	for _, wire := range core.DMemAddr {
		first := m.LaneWord(wire, 0)
		if first != 0 && first != ^uint64(0) {
			uaddr = false
			break
		}
		for g := 1; g < w; g++ {
			if m.LaneWord(wire, g) != first {
				uaddr = false
				break
			}
		}
		if !uaddr {
			break
		}
	}
	if uaddr {
		var a uint16
		for i, wire := range core.DMemAddr {
			a |= uint16(m.LaneWord(wire, 0)&1) << uint(i)
		}
		for l := 0; l < lanes; l++ {
			s.addr[l] = a
		}
	} else {
		m.GatherLanes(core.DMemAddr, s.addr)
	}
	anyWE := false
	for g := 0; g < w; g++ {
		s.weMask[g] = m.LaneWord(core.DMemWE, g)
		if s.weMask[g] != 0 {
			anyWE = true
		}
	}
	if !anyWE {
		for l := 0; l < lanes; l++ {
			s.rdata[l] = s.DMem[l][s.addr[l]]
		}
	} else {
		m.GatherLanes(core.DMemWData, s.wdata)
		for l := 0; l < lanes; l++ {
			a := s.addr[l]
			s.rdata[l] = s.DMem[l][a]
			if s.weMask[l>>6]>>(uint(l)&63)&1 == 1 {
				s.DMem[l][a] = s.wdata[l]
				s.WriteDigest[l] = sim.UpdateWriteDigest(s.WriteDigest[l], uint64(a), uint64(s.wdata[l]))
			}
		}
	}
	urdata := true
	for l := 1; l < lanes; l++ {
		if s.rdata[l] != s.rdata[0] {
			urdata = false
			break
		}
	}
	if urdata {
		for i, wire := range core.DMemRData {
			m.Broadcast(wire, s.rdata[0]>>uint(i)&1 == 1)
		}
	} else {
		m.ScatterLanes(core.DMemRData, s.rdata)
	}
}

// Step advances all lanes one clock cycle.
func (s *SystemW) Step() { s.M.Step(s.envFn) }

// CompactLanes packs the listed source lanes into lanes 0..len(src)-1,
// keeping the lane-private data memories and write digests aligned with
// the machine's lane permutation. src must be strictly increasing, which
// makes the in-place forward copy safe.
func (s *SystemW) CompactLanes(src []uint16) {
	s.M.CompactLanes(src)
	for i, l := range src {
		if int(l) != i {
			s.DMem[i] = s.DMem[l]
			s.WriteDigest[i] = s.WriteDigest[l]
		}
	}
}

// LaneState is one lane's complete suspended state: the packed wire bits
// of the machine (ExportLane) plus the lane-private memory image and write
// digest. It is target-specific; the campaign engine treats it as opaque.
type LaneState struct {
	Wires  []uint64
	DMem   [1 << DMemBits]uint16
	Digest uint64
}

// ExportLane snapshots one lane for migration to another SystemW of the
// same core and program (see MachineW.ExportLane).
func (s *SystemW) ExportLane(l int) *LaneState {
	st := &LaneState{Wires: make([]uint64, s.M.LaneWireWords()), DMem: s.DMem[l], Digest: s.WriteDigest[l]}
	s.M.ExportLane(l, st.Wires)
	return st
}

// ImportLane restores an ExportLane snapshot into one lane of this system.
func (s *SystemW) ImportLane(l int, st *LaneState) {
	s.M.ImportLane(l, st.Wires)
	s.DMem[l] = st.DMem
	s.WriteDigest[l] = st.Digest
}

// HaltedMaskG returns lane group g's halted lanes.
func (s *SystemW) HaltedMaskG(g int) uint64 { return s.M.LaneWord(s.Core.Halted, g) }

// LoadScalarState broadcasts a scalar checkpoint (flip-flop state, primary
// inputs, data memory, write digest) into every lane.
func (s *SystemW) LoadScalarState(ffs, inputs []bool, dmem [1 << DMemBits]uint16, digest uint64) {
	s.M.LoadState(ffs)
	s.M.LoadInputs(inputs)
	for l := range s.DMem {
		s.DMem[l] = dmem
		s.WriteDigest[l] = digest
	}
}

// PortLane reads the output port register of one lane.
func (s *SystemW) PortLane(l int) uint16 { return uint16(s.M.ReadBusLane(s.Core.Port, l)) }

// NewDelta builds the cone-delta evaluator for this system against a
// golden trace (nil error only when the netlist satisfies the engine's
// env-cone contract; see sim.NewDeltaState).
func (s *SystemW) NewDelta(tr *sim.Trace) (*sim.DeltaState, error) {
	core := s.Core
	d, err := sim.NewDeltaState(s.M, tr, s.envFn,
		core.IMemAddr, core.DMemAddr, []netlist.WireID{core.DMemWE}, core.DMemWData)
	if err != nil {
		return nil, fmt.Errorf("msp430: %w", err)
	}
	return d, nil
}
