package msp430

import (
	"math/rand"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Class: ClassMisc, Sub: MiscNOP},
		{Class: ClassMisc, Sub: MiscHALT},
		{Class: ClassMisc, Sub: MiscOUT, Rd: 5},
		{Class: ClassMOV, Rs: 1, Rd: 2},
		{Class: ClassSUBC, Rs: 13, Rd: 12},
		{Class: ClassMOVI, Rs: 9, Imm: 0xAB},
		{Class: ClassADDI, Rs: 2, Imm: 1},
		{Class: ClassCMPI, Rs: 3, Imm: 200},
		{Class: ClassLD, Rs: 3, Rd: 4},
		{Class: ClassST, Rs: 7, Rd: 2},
		{Class: ClassJcc, Sub: CondNE, Off: -100},
		{Class: ClassJcc, Sub: CondAL, Off: 127},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		if got := Decode(w); got != in {
			t.Errorf("round trip %+v -> %04x -> %+v", in, w, got)
		}
	}
}

func TestAssembleAndErrors(t *testing.T) {
	prog, err := Assemble(`
	    movi r1, 3
	loop:
	    addi r1, -1   ; encodes as +255, wraps mod 2^16? no: imm is 8-bit
	    jne loop
	    halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 4 {
		t.Fatalf("len = %d", len(prog))
	}
	for _, src := range []string{
		"bogus", "mov r1", "movi r99, 1", "ld r1, r2", "st r2, (r1)",
		"jmp nowhere", "out", "movi r1, 9999",
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestISSBasics(t *testing.T) {
	s := NewISS(MustAssemble(`
	    movi r1, 200
	    movi r2, 100
	    add r1, r2      ; r2 = 300
	    sub r1, r2      ; r2 = 100
	    cmp r1, r2      ; flags(100-200): borrow -> C=0, N per result
	    halt
	`))
	s.Run(100)
	if !s.Halted || s.Regs[2] != 100 {
		t.Fatalf("r2=%d halted=%v", s.Regs[2], s.Halted)
	}
	if s.C {
		t.Error("C must be clear (borrow) after cmp 200,100 -> 100-200")
	}
	if !s.N {
		t.Error("N must be set")
	}
}

func TestISSLogicFlagSemantics(t *testing.T) {
	s := NewISS(MustAssemble(`
	    movi r1, 0x0F
	    movi r2, 0xF0
	    and r1, r2   ; r2 = 0 -> Z=1, C=0
	    bis r1, r2   ; r2 = 0x0F, flags unchanged
	    halt
	`))
	s.Run(100)
	if s.Regs[2] != 0x0F {
		t.Fatalf("r2 = %#x", s.Regs[2])
	}
	if !s.Z || s.C {
		t.Error("BIS must not touch flags (Z from AND must survive)")
	}
}

func TestISSMemoryAndJumps(t *testing.T) {
	s := NewISS(MustAssemble(`
	    movi r1, 0x42
	    movi r2, 16
	    st (r2), r1
	    ld r3, (r2)
	    out r3
	    movi r4, 5
	    movi r5, 0
	sum:
	    add r4, r5
	    addi r4, -1
	    jne sum
	    halt
	`))
	s.Run(200)
	if s.DMem[16] != 0x42 || s.Regs[3] != 0x42 || s.Port != 0x42 {
		t.Fatalf("mem path wrong: %x %x %x", s.DMem[16], s.Regs[3], s.Port)
	}
	// sum 5+4+3+2+1 = 15
	if s.Regs[5] != 15 {
		t.Fatalf("r5 = %d", s.Regs[5])
	}
}

func TestISSSignedBranches(t *testing.T) {
	s := NewISS(MustAssemble(`
	    movi r1, 5
	    movi r2, 10
	    cmp r2, r1    ; 5 - 10 < 0 signed
	    jl less
	    movi r3, 0
	    halt
	less:
	    movi r3, 1
	    halt
	`))
	s.Run(100)
	if s.Regs[3] != 1 {
		t.Fatal("jl not taken")
	}
}

func TestCoreStats(t *testing.T) {
	core := NewCore()
	st := core.NL.Stats()
	rfFF, nonRF := 0, 0
	for _, ff := range core.NL.FFs {
		if ff.Group == GroupRegFile {
			rfFF++
		} else {
			nonRF++
		}
	}
	if rfFF != NumRegs*16 {
		t.Errorf("regfile FFs = %d, want %d", rfFF, NumRegs*16)
	}
	// Multi-cycle: much more non-RF state than the AVR core (paper
	// observation: the MSP430 holds more state between cycles).
	if nonRF < 100 {
		t.Errorf("expected substantial inter-cycle state, nonRF = %d", nonRF)
	}
	t.Logf("MSP430 core: %s, rf=%d nonRF=%d", st, rfFF, nonRF)
}

func runBoth(t *testing.T, core *Core, src string, maxInstr int) (*ISS, *System) {
	t.Helper()
	prog := MustAssemble(src)
	iss := NewISS(prog)
	iss.Run(maxInstr)
	if !iss.Halted {
		t.Fatal("ISS did not halt")
	}
	sys := NewSystem(core, prog)
	cycles := sys.Run(maxInstr*6 + 20)
	if !sys.Halted() {
		t.Fatalf("netlist did not halt after %d cycles", cycles)
	}
	compareState(t, iss, sys)
	return iss, sys
}

func compareState(t *testing.T, iss *ISS, sys *System) {
	t.Helper()
	for r := 0; r < NumRegs; r++ {
		if got := sys.Reg(r); got != iss.Regs[r] {
			t.Errorf("r%d: netlist %#x, iss %#x", r, got, iss.Regs[r])
		}
	}
	c, z, n, v := sys.Flags()
	if c != iss.C || z != iss.Z || n != iss.N || v != iss.V {
		t.Errorf("flags: netlist C%v Z%v N%v V%v, iss C%v Z%v N%v V%v",
			c, z, n, v, iss.C, iss.Z, iss.N, iss.V)
	}
	if got := sys.PortValue(); got != iss.Port {
		t.Errorf("port: netlist %#x, iss %#x", got, iss.Port)
	}
	if got := sys.PCValue(); got != iss.PC+1 {
		t.Errorf("pc: netlist %d, iss %d (+1 expected)", got, iss.PC)
	}
	for a := 0; a < 1<<DMemBits; a++ {
		if sys.DMem[a] != iss.DMem[a] {
			t.Errorf("dmem[%d]: netlist %#x, iss %#x", a, sys.DMem[a], iss.DMem[a])
		}
	}
}

func TestCosimArithmetic(t *testing.T) {
	core := NewCore()
	runBoth(t, core, `
	    movi r1, 200
	    movi r2, 100
	    add r1, r2
	    addc r1, r3
	    sub r1, r2
	    subc r1, r4
	    and r2, r4
	    bis r1, r5
	    xor r2, r5
	    mov r5, r6
	    addi r6, 10
	    cmpi r6, 3
	    halt
	`, 100)
}

func TestCosimCarryChain16(t *testing.T) {
	core := NewCore()
	runBoth(t, core, `
	    movi r1, 0xFF
	    movi r2, 0xFF
	    add r1, r2      ; r2 = 0x1FE
	    add r2, r2      ; r2 = 0x3FC
	    add r2, r2
	    add r2, r2
	    add r2, r2      ; keeps doubling toward carry
	    add r2, r2
	    add r2, r2
	    add r2, r2      ; now > 0xFFFF -> carry
	    addc r3, r3     ; captures carry
	    out r3
	    halt
	`, 100)
}

func TestCosimMemoryLoop(t *testing.T) {
	core := NewCore()
	runBoth(t, core, `
	    movi r1, 0     ; pointer
	    movi r2, 1     ; value
	fill:
	    st (r1), r2
	    add r2, r2
	    addi r1, 1
	    cmpi r1, 10
	    jne fill
	    movi r1, 4
	    ld r5, (r1)
	    out r5
	    halt
	`, 300)
}

func TestCosimConditions(t *testing.T) {
	core := NewCore()
	runBoth(t, core, `
	    movi r1, 5
	    cmpi r1, 5
	    jeq a
	    movi r10, 1
	a:  cmpi r1, 6
	    jne bq
	    movi r10, 2
	bq: cmpi r1, 3
	    jc cq        ; 5-3 no borrow -> C=1
	    movi r10, 3
	cq: cmpi r1, 9
	    jnc d        ; 5-9 borrow -> C=0
	    movi r10, 4
	d:  cmpi r1, 9
	    jn e
	    movi r10, 5
	e:  cmpi r1, 9
	    jl f
	    movi r10, 6
	f:  cmpi r1, 2
	    jge g
	    movi r10, 7
	g:  jmp end
	    movi r10, 8
	end:
	    halt
	`, 200)
}

func TestCosimRandomPrograms(t *testing.T) {
	core := NewCore()
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 10; trial++ {
		var prog []uint16
		for r := 0; r < NumRegs; r++ {
			w, _ := Encode(Instr{Class: ClassMOVI, Rs: r, Imm: uint8(rng.Intn(256))})
			prog = append(prog, w)
		}
		classes := []int{ClassMOV, ClassADD, ClassADDC, ClassSUB, ClassSUBC,
			ClassCMP, ClassAND, ClassBIS, ClassXOR, ClassMOVI, ClassADDI,
			ClassCMPI, ClassLD, ClassST}
		for i := 0; i < 60; i++ {
			cl := classes[rng.Intn(len(classes))]
			w, _ := Encode(Instr{Class: cl, Rs: rng.Intn(NumRegs),
				Rd: rng.Intn(NumRegs), Imm: uint8(rng.Intn(256))})
			prog = append(prog, w)
		}
		w, _ := Encode(Instr{Class: ClassMisc, Sub: MiscHALT})
		prog = append(prog, w)

		iss := NewISS(prog)
		iss.Run(2000)
		sys := NewSystem(core, prog)
		sys.M.Reset()
		sys.DMem = [1 << DMemBits]uint16{}
		sys.Run(2000)
		if !iss.Halted || !sys.Halted() {
			t.Fatalf("trial %d: not halted", trial)
		}
		compareState(t, iss, sys)
		if t.Failed() {
			t.Fatalf("trial %d failed", trial)
		}
	}
}

func TestMultiCycleTiming(t *testing.T) {
	// One ALU instruction takes 4 cycles (F, D, E, W), a store 3, a load 5.
	core := NewCore()
	sys := NewSystem(core, MustAssemble(`
	    movi r1, 7
	    halt
	`))
	// movi: F D E W = 4 cycles; halt: F D E = 3 cycles -> halted at cycle 7.
	cycles := sys.Run(100)
	if cycles != 7 {
		t.Errorf("cycles to halt = %d, want 7", cycles)
	}
	if sys.Reg(1) != 7 {
		t.Errorf("r1 = %d", sys.Reg(1))
	}
}

func TestNetlistHaltFreezesState(t *testing.T) {
	core := NewCore()
	sys := NewSystem(core, MustAssemble("movi r1, 42\nout r1\nhalt"))
	sys.Run(200)
	snap := sys.M.FFState()
	for i := 0; i < 8; i++ {
		sys.Step()
	}
	after := sys.M.FFState()
	for i := range snap {
		if snap[i] != after[i] {
			t.Fatalf("FF %s changed after halt", core.NL.FFs[i].Name)
		}
	}
}
