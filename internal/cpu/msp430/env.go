package msp430

import (
	"repro/internal/sim"
)

// System couples the synthesized core with behavioural instruction and
// data memories (16-bit words), serviced through the simulator's
// environment hook.
type System struct {
	Core *Core
	M    *sim.Machine
	IMem []uint16
	DMem [1 << DMemBits]uint16
	// WriteDigest chains every data-memory write event (see sim.
	// UpdateWriteDigest); checkpoint restore must rewind it with DMem.
	WriteDigest uint64

	envFn sim.Env // cached: Step runs every cycle, a per-call closure is pure garbage
}

// NewSystem builds a machine around the core with the program loaded at
// instruction address 0.
func NewSystem(core *Core, prog []uint16) *System {
	s := &System{Core: core, M: sim.New(core.NL), IMem: prog, WriteDigest: sim.WriteDigestSeed}
	s.envFn = sim.EnvFunc(s.env)
	return s
}

// Env returns the memory environment. All address/control outputs of the
// core are registered, so they are valid after the first combinational
// pass.
func (s *System) Env() sim.Env { return s.envFn }

func (s *System) env(m *sim.Machine) {
	pc := m.ReadBus(s.Core.IMemAddr)
	var instr uint16
	if int(pc) < len(s.IMem) {
		instr = s.IMem[pc]
	}
	m.WriteBus(s.Core.IMemData, uint64(instr))

	addr := m.ReadBus(s.Core.DMemAddr)
	m.WriteBus(s.Core.DMemRData, uint64(s.DMem[addr]))
	if m.Value(s.Core.DMemWE) {
		data := m.ReadBus(s.Core.DMemWData)
		s.DMem[addr] = uint16(data)
		s.WriteDigest = sim.UpdateWriteDigest(s.WriteDigest, addr, data)
	}
}

// Step advances one clock cycle.
func (s *System) Step() { s.M.Step(s.envFn) }

// Run advances up to maxCycles cycles, stopping early once halted; returns
// the number of cycles executed.
func (s *System) Run(maxCycles int) int {
	env := s.Env()
	for i := 0; i < maxCycles; i++ {
		if s.M.Value(s.Core.Halted) {
			return i
		}
		s.M.Step(env)
	}
	return maxCycles
}

// Record simulates exactly `cycles` cycles recording a full wire trace.
func (s *System) Record(cycles int) *sim.Trace {
	return sim.Record(s.M, s.Env(), cycles)
}

// Halted reports whether the core has executed HALT.
func (s *System) Halted() bool { return s.M.Value(s.Core.Halted) }

// Reg reads an architectural register from the netlist state.
func (s *System) Reg(r int) uint16 { return uint16(s.M.ReadBus(s.Core.Regs[r])) }

// PCValue reads the program counter.
func (s *System) PCValue() uint16 { return uint16(s.M.ReadBus(s.Core.PC)) }

// PortValue reads the output port register.
func (s *System) PortValue() uint16 { return uint16(s.M.ReadBus(s.Core.Port)) }

// Flags reads (C, Z, N, V).
func (s *System) Flags() (c, z, n, v bool) {
	return s.M.Value(s.Core.FlagC), s.M.Value(s.Core.FlagZ),
		s.M.Value(s.Core.FlagN), s.M.Value(s.Core.FlagV)
}
