package msp430

import (
	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// FSM states. Every instruction passes FETCH and DECODE; loads and stores
// insert MEM; everything but stores reaches EXEC; register writers finish
// in WRITE.
const (
	SFetch  = 0
	SDecode = 1
	SMem    = 2
	SExec   = 3
	SWrite  = 4
)

// FF group tags; the "FF w/o RF" fault set excludes GroupRegFile.
const (
	GroupRegFile = "regfile"
	GroupPC      = "pc"
	GroupIR      = "ir"
	GroupCtrl    = "ctrl"
	GroupSREG    = "sreg"
	GroupPort    = "port"
	GroupOpA     = "opa"
	GroupOpB     = "opb"
	GroupMAR     = "mar"
	GroupMDR     = "mdr"
	GroupResult  = "result"
)

// Core bundles the synthesized netlist with its port map and architectural
// state locations.
type Core struct {
	NL *netlist.Netlist

	IMemData  synth.Bus // in: 16-bit instruction word
	DMemRData synth.Bus // in: 16-bit data word

	IMemAddr  synth.Bus // out: 12-bit PC
	DMemAddr  synth.Bus // out: 8-bit data address (MAR)
	DMemWData synth.Bus // out: 16-bit store data
	DMemWE    netlist.WireID
	Port      synth.Bus // out: 16-bit output port
	Halted    netlist.WireID

	PC    synth.Bus
	State synth.Bus
	Regs  []synth.Bus
	FlagC netlist.WireID
	FlagZ netlist.WireID
	FlagN netlist.WireID
	FlagV netlist.WireID
}

// NewCore synthesizes the multi-cycle MSP430-class core.
func NewCore() *Core {
	b := netlist.NewBuilder("msp430")
	c := synth.New(b)
	core := &Core{}

	core.IMemData = c.InputBus("imem_data", 16)
	core.DMemRData = c.InputBus("dmem_rdata", 16)

	// ---- state ----------------------------------------------------------
	pc := c.RegisterPlaceholder("pc", PCBits, 0, GroupPC)
	ir := c.RegisterPlaceholder("ir", 16, 0, GroupIR)
	state := c.RegisterPlaceholder("state", 3, SFetch, GroupCtrl)
	halted := c.RegisterPlaceholder("halted", 1, 0, GroupCtrl)
	opA := c.RegisterPlaceholder("opa", 16, 0, GroupOpA)
	opB := c.RegisterPlaceholder("opb", 16, 0, GroupOpB)
	mar := c.RegisterPlaceholder("mar", DMemBits, 0, GroupMAR)
	mdr := c.RegisterPlaceholder("mdr", 16, 0, GroupMDR)
	result := c.RegisterPlaceholder("result", 16, 0, GroupResult)
	flagC := c.RegisterPlaceholder("sreg.c", 1, 0, GroupSREG)
	flagZ := c.RegisterPlaceholder("sreg.z", 1, 0, GroupSREG)
	flagN := c.RegisterPlaceholder("sreg.n", 1, 0, GroupSREG)
	flagV := c.RegisterPlaceholder("sreg.v", 1, 0, GroupSREG)
	port := c.RegisterPlaceholder("port", 16, 0, GroupPort)
	rf := c.RegFilePlaceholder(synth.RegFileConfig{
		Name: "rf", Num: NumRegs, Width: 16, Group: GroupRegFile,
	})

	C, Z, N, V := flagC[0], flagZ[0], flagN[0], flagV[0]
	hlt := halted[0]
	run := b.GateNamed("run", cell.INV, hlt)

	// ---- decode ----------------------------------------------------------
	class := synth.Bus{ir[12], ir[13], ir[14], ir[15]}
	f1 := synth.Bus{ir[8], ir[9], ir[10], ir[11]} // rs / imm-dst / LD-dst
	f2 := synth.Bus{ir[4], ir[5], ir[6], ir[7]}   // rd / address reg / OUT reg
	imm := synth.Bus(ir[0:8])

	classDec := c.Decoder(class)
	isMisc := classDec[ClassMisc]
	isMOV, isADD, isADDC := classDec[ClassMOV], classDec[ClassADD], classDec[ClassADDC]
	isSUB, isSUBC, isCMP := classDec[ClassSUB], classDec[ClassSUBC], classDec[ClassCMP]
	isAND, isBIS, isXOR := classDec[ClassAND], classDec[ClassBIS], classDec[ClassXOR]
	isMOVI, isADDI, isCMPI := classDec[ClassMOVI], classDec[ClassADDI], classDec[ClassCMPI]
	isLD, isST, isJcc := classDec[ClassLD], classDec[ClassST], classDec[ClassJcc]

	subDec := c.Decoder(f1) // misc subop / jump condition share bits 11:8
	mHALT := b.Gate(cell.AND2, isMisc, subDec[MiscHALT])
	mOUT := b.Gate(cell.AND2, isMisc, subDec[MiscOUT])

	stateDec := c.Decoder(state)
	stFetch, stDecode := stateDec[SFetch], stateDec[SDecode]
	stMem, stExec, stWrite := stateDec[SMem], stateDec[SExec], stateDec[SWrite]

	isImm := orTree(c, isMOVI, isADDI, isCMPI)

	// ---- register file read (DECODE) --------------------------------------
	r1 := rf.Read(c, f1)
	r2 := rf.Read(c, f2)

	// ADDI sign-extends its immediate (decrements via addi rN, -1);
	// MOVI/CMPI zero-extend.
	immExt := c.Mux2(isADDI, c.ZeroExtend(imm, 16), c.SignExtend(imm, 16))
	opAval := c.Mux2(isImm, r1, immExt)
	opBval := c.Mux2(isImm, r2, r1)

	decEn := b.Gate(cell.AND2, stDecode, run)
	c.ConnectRegister(opA, opAval, decEn)
	c.ConnectRegister(opB, opBval, decEn)
	c.ConnectRegister(mar, r2[:DMemBits], decEn)

	// ---- MEM state ---------------------------------------------------------
	memEn := b.Gate(cell.AND2, stMem, run)
	mdrEn := b.Gate(cell.AND2, memEn, isLD)
	c.ConnectRegister(mdr, core.DMemRData, mdrEn)
	dmemWE := b.GateNamed("dmem_we", cell.AND2, memEn, isST)

	// ---- ALU (EXEC) with operand isolation -----------------------------------
	// The operand registers are AND-gated with the EXEC-state qualifier
	// (operand isolation): outside the execute state the ALU sees zeros.
	// The isolation gates are the MATE choke points that make an SEU in
	// opA/opB provably benign in every cycle in which the register is
	// being (re)loaded while the ALU is idle.
	opAIso := c.AndBit(opA, stExec)
	opBIso := c.AndBit(opB, stExec)
	isAddGroup := orTree(c, isADD, isADDC, isADDI)
	isSubGroup := orTree(c, isSUB, isSUBC, isCMP, isCMPI)
	isSub := isSubGroup
	a2 := c.Mux2(isSub, opAIso, c.Not(opAIso))
	// carry-in: ADD/ADDI 0, ADDC C, SUB/CMP/CMPI 1, SUBC C.
	useC := b.Gate(cell.OR2, isADDC, isSUBC)
	base := isSub // 1 for SUB-like, 0 for ADD-like
	cin := b.Gate(cell.MUX2, base, C, useC)
	sum := c.Adder(opBIso, a2, cin)
	arithC := sum.Cout // MSP430: C = NOT borrow on subtraction = raw carry
	arithV := b.Gate(cell.AND2,
		b.Gate(cell.XNOR2, opBIso[15], a2[15]),
		b.Gate(cell.XOR2, opBIso[15], sum.Sum[15]))

	andRes := c.And(opBIso, opAIso)
	orRes := c.Or(opBIso, opAIso)
	xorRes := c.Xor(opBIso, opAIso)
	logicRes := c.Mux2(isBIS, c.Mux2(isXOR, andRes, xorRes), orRes)
	isLogic := orTree(c, isAND, isBIS, isXOR)

	isMovLike := b.Gate(cell.OR2, isMOV, isMOVI)
	aluOut := sum.Sum
	aluOut = c.Mux2(isLogic, aluOut, logicRes)
	aluOut = c.Mux2(isMovLike, aluOut, opAIso)
	aluOut = c.Mux2(isLD, aluOut, mdr)

	execEn := b.Gate(cell.AND2, stExec, run)
	c.ConnectRegister(result, aluOut, execEn)

	// ---- flags ------------------------------------------------------------------
	isArith := b.Gate(cell.OR2, isAddGroup, isSubGroup)
	setsFlagsLogic := b.Gate(cell.OR2, isAND, isXOR) // BIS keeps flags
	flagsEnInstr := b.Gate(cell.OR2, isArith, setsFlagsLogic)
	flagsEn := b.Gate(cell.AND2, execEn, flagsEnInstr)

	zVal := b.Gate(cell.INV, c.ReduceOr(aluOut))
	nVal := aluOut[15]
	cVal := b.Gate(cell.MUX2, arithC, b.Gate(cell.INV, zVal), setsFlagsLogic)
	vVal := b.Gate(cell.MUX2, arithV, b.Const(false), setsFlagsLogic)

	c.ConnectRegister(flagC, synth.Bus{cVal}, flagsEn)
	c.ConnectRegister(flagZ, synth.Bus{zVal}, flagsEn)
	c.ConnectRegister(flagN, synth.Bus{nVal}, flagsEn)
	c.ConnectRegister(flagV, synth.Bus{vVal}, flagsEn)

	// ---- jumps and PC ---------------------------------------------------------
	nxv := b.Gate(cell.XOR2, N, V)
	condMet := orTree(c,
		subDec[CondAL],
		b.Gate(cell.AND2, subDec[CondEQ], Z),
		b.Gate(cell.AND2, subDec[CondNE], b.Gate(cell.INV, Z)),
		b.Gate(cell.AND2, subDec[CondC], C),
		b.Gate(cell.AND2, subDec[CondNC], b.Gate(cell.INV, C)),
		b.Gate(cell.AND2, subDec[CondN], N),
		b.Gate(cell.AND2, subDec[CondGE], b.Gate(cell.INV, nxv)),
		b.Gate(cell.AND2, subDec[CondL], nxv))
	taken := b.GateNamed("jump_taken", cell.AND2, execEn,
		b.Gate(cell.AND2, isJcc, condMet))

	off := c.SignExtend(imm, PCBits)
	target := c.Adder(pc, off, b.Const(false)).Sum
	pcInc := c.Inc(pc).Sum
	fetchEn := b.Gate(cell.AND2, stFetch, run)
	pcEn := b.Gate(cell.OR2, fetchEn, taken)
	pcD := c.Mux2(taken, pcInc, target)
	c.ConnectRegister(pc, pcD, pcEn)
	c.ConnectRegister(ir, core.IMemData, fetchEn)

	// ---- halting -----------------------------------------------------------------
	haltNow := b.Gate(cell.AND2, execEn, mHALT)
	c.ConnectRegisterAlways(halted, synth.Bus{b.Gate(cell.OR2, hlt, haltNow)})

	// ---- output port ----------------------------------------------------------------
	portEn := b.Gate(cell.AND2, execEn, mOUT)
	c.ConnectRegister(port, opB, portEn)

	// ---- register file write (WRITE) ---------------------------------------------------
	writesRF := orTree(c, isMOV, isADD, isADDC, isSUB, isSUBC, isAND, isBIS,
		isXOR, isMOVI, isADDI, isLD)
	wEn := b.GateNamed("rf_we", cell.AND2, b.Gate(cell.AND2, stWrite, run), writesRF)
	// Destination register: f1 for immediate forms and LD, f2 for the
	// two-register forms — a single mux level so a fault in either field
	// has one choke point into the write-address decoder.
	dstIsF1 := orTree(c, isImm, isLD)
	wAddr := c.Mux2(dstIsF1, f2, f1)
	// Write-port data isolation: the write bus is forced to zero unless a
	// write is committed this cycle, so an SEU in the result register is
	// provably benign in every non-WRITE cycle.
	wDataQ := c.AndBit(result, wEn)
	rf.ConnectWrite(c, wEn, wAddr, wDataQ)

	// ---- FSM transition ------------------------------------------------------------------
	goMem := b.Gate(cell.OR2, isLD, isST)
	// decode -> mem | exec
	afterDecode := c.Mux2(goMem, c.ConstBus(SExec, 3), c.ConstBus(SMem, 3))
	// mem -> fetch (st) | exec (ld)
	afterMem := c.Mux2(isST, c.ConstBus(SExec, 3), c.ConstBus(SFetch, 3))
	// exec -> write | fetch
	afterExec := c.Mux2(writesRF, c.ConstBus(SFetch, 3), c.ConstBus(SWrite, 3))

	stateNext := c.ConstBus(SDecode, 3) // from fetch
	stateNext = c.Mux2(stDecode, stateNext, afterDecode)
	stateNext = c.Mux2(stMem, stateNext, afterMem)
	stateNext = c.Mux2(stExec, stateNext, afterExec)
	stateNext = c.Mux2(stWrite, stateNext, c.ConstBus(SFetch, 3))
	c.ConnectRegister(state, stateNext, run)

	// ---- primary outputs --------------------------------------------------------------------
	// The data-memory pins are qualified by the FSM state: the address bus
	// idles at zero outside the MEM state and the write-data bus outside
	// stores, as a real bus interface does. This matters for pruning: an
	// SEU in MAR or opA is provably benign in cycles without a memory
	// access in flight.
	addrPins := c.AndBit(mar, stMem)
	wdataPins := c.AndBit(opA, dmemWE)
	c.OutputBus(pc)
	c.OutputBus(addrPins)
	c.OutputBus(wdataPins)
	b.MarkOutput(dmemWE)
	c.OutputBus(port)
	b.MarkOutput(hlt)

	// Sweep unobservable gates so the shipped netlist is lint-clean; see
	// the matching comment in the AVR core.
	swept, remap := netlist.MustSweepDead(b.MustNetlist())
	core.NL = swept
	core.IMemData = synth.Bus(remap.Wires(core.IMemData))
	core.DMemRData = synth.Bus(remap.Wires(core.DMemRData))
	core.IMemAddr = synth.Bus(remap.Wires(pc))
	core.DMemAddr = synth.Bus(remap.Wires(addrPins))
	core.DMemWData = synth.Bus(remap.Wires(wdataPins))
	core.DMemWE = remap.Wire(dmemWE)
	core.Port = synth.Bus(remap.Wires(port))
	core.Halted = remap.Wire(hlt)
	core.PC = synth.Bus(remap.Wires(pc))
	core.State = synth.Bus(remap.Wires(state))
	core.Regs = make([]synth.Bus, NumRegs)
	for r := 0; r < NumRegs; r++ {
		core.Regs[r] = synth.Bus(remap.Wires(rf.Regs[r]))
	}
	core.FlagC, core.FlagZ = remap.Wire(C), remap.Wire(Z)
	core.FlagN, core.FlagV = remap.Wire(N), remap.Wire(V)
	return core
}

func orTree(c *synth.Ctx, ws ...netlist.WireID) netlist.WireID {
	return c.ReduceOr(synth.Bus(ws))
}
