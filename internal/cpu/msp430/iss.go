package msp430

// ISS is the architectural golden model of the MSP430-class core.
type ISS struct {
	PC     uint16
	Regs   [NumRegs]uint16
	C, Z   bool
	N, V   bool
	Port   uint16
	Halted bool

	IMem []uint16
	DMem [1 << DMemBits]uint16

	Instructions int
}

// NewISS creates an ISS with the program loaded at address 0.
func NewISS(prog []uint16) *ISS { return &ISS{IMem: prog} }

func (s *ISS) fetch(pc uint16) uint16 {
	pc &= 1<<PCBits - 1
	if int(pc) < len(s.IMem) {
		return s.IMem[pc]
	}
	return 0
}

// Step executes one instruction; no-op when halted.
func (s *ISS) Step() {
	if s.Halted {
		return
	}
	in := Decode(s.fetch(s.PC))
	next := (s.PC + 1) & (1<<PCBits - 1)
	s.Instructions++

	setZN := func(r uint16) {
		s.Z = r == 0
		s.N = r&0x8000 != 0
	}
	// add computes dst + src + cin with MSP430 flag semantics.
	add := func(dst, src uint16, cin bool) uint16 {
		c := uint32(0)
		if cin {
			c = 1
		}
		sum := uint32(dst) + uint32(src) + c
		r := uint16(sum)
		s.C = sum > 0xFFFF
		s.V = (dst^src)&0x8000 == 0 && (dst^r)&0x8000 != 0
		setZN(r)
		return r
	}
	// sub computes dst - src (- borrow) with MSP430 semantics:
	// C = NOT borrow (carry of dst + ^src + 1).
	sub := func(dst, src uint16, cin bool) uint16 {
		c := uint32(0)
		if cin {
			c = 1
		}
		sum := uint32(dst) + uint32(^src) + c
		r := uint16(sum)
		s.C = sum > 0xFFFF
		s.V = (dst^src)&0x8000 != 0 && (dst^r)&0x8000 != 0
		setZN(r)
		return r
	}
	logicFlags := func(r uint16) {
		setZN(r)
		s.C = r != 0 // MSP430: C = NOT Z for AND/XOR
		s.V = false
	}

	switch in.Class {
	case ClassMisc:
		switch in.Sub {
		case MiscNOP:
		case MiscHALT:
			s.Halted = true
			return
		case MiscOUT:
			s.Port = s.Regs[in.Rd]
		}
	case ClassMOV:
		s.Regs[in.Rd] = s.Regs[in.Rs]
	case ClassADD:
		s.Regs[in.Rd] = add(s.Regs[in.Rd], s.Regs[in.Rs], false)
	case ClassADDC:
		s.Regs[in.Rd] = add(s.Regs[in.Rd], s.Regs[in.Rs], s.C)
	case ClassSUB:
		s.Regs[in.Rd] = sub(s.Regs[in.Rd], s.Regs[in.Rs], true)
	case ClassSUBC:
		s.Regs[in.Rd] = sub(s.Regs[in.Rd], s.Regs[in.Rs], s.C)
	case ClassCMP:
		sub(s.Regs[in.Rd], s.Regs[in.Rs], true)
	case ClassAND:
		r := s.Regs[in.Rd] & s.Regs[in.Rs]
		s.Regs[in.Rd] = r
		logicFlags(r)
	case ClassBIS:
		s.Regs[in.Rd] |= s.Regs[in.Rs] // no flags
	case ClassXOR:
		r := s.Regs[in.Rd] ^ s.Regs[in.Rs]
		s.Regs[in.Rd] = r
		logicFlags(r)
	case ClassMOVI:
		s.Regs[in.Rs] = uint16(in.Imm)
	case ClassADDI:
		// ADDI sign-extends its 8-bit immediate so that "addi rN, -1"
		// works as a decrement; MOVI and CMPI zero-extend.
		s.Regs[in.Rs] = add(s.Regs[in.Rs], uint16(int16(int8(in.Imm))), false)
	case ClassCMPI:
		sub(s.Regs[in.Rs], uint16(in.Imm), true)
	case ClassLD:
		s.Regs[in.Rs] = s.DMem[s.Regs[in.Rd]&(1<<DMemBits-1)]
	case ClassST:
		s.DMem[s.Regs[in.Rd]&(1<<DMemBits-1)] = s.Regs[in.Rs]
	case ClassJcc:
		taken := false
		switch in.Sub {
		case CondAL:
			taken = true
		case CondEQ:
			taken = s.Z
		case CondNE:
			taken = !s.Z
		case CondC:
			taken = s.C
		case CondNC:
			taken = !s.C
		case CondN:
			taken = s.N
		case CondGE:
			taken = s.N == s.V
		case CondL:
			taken = s.N != s.V
		}
		if taken {
			next = uint16(int(next)+in.Off) & (1<<PCBits - 1)
		}
	}
	s.PC = next
}

// Run executes until HALT or maxInstructions.
func (s *ISS) Run(maxInstructions int) int {
	n := 0
	for !s.Halted && n < maxInstructions {
		s.Step()
		n++
	}
	return n
}
