package msp430

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates MSP430-class assembly into instruction words.
// Two-operand instructions use MSP430 ordering, source first:
//
//	mov  r1, r2    ; r2 <- r1
//	add  r1, r2    ; r2 <- r2 + r1
//	movi r3, 0x10  ; r3 <- 0x10
//	ld   r4, (r5)  ; r4 <- dmem[r5]
//	st   (r5), r4  ; dmem[r5] <- r4
//	out  r4
//	jne  label
//	jmp  label
//
// Registers are r0..r13; jump targets are labels, PC-relative to the next
// instruction.
func Assemble(src string) ([]uint16, error) {
	type pending struct {
		instr Instr
		label string
		line  int
	}
	labels := map[string]int{}
	var prog []pending

	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for {
			if i := strings.IndexByte(line, ':'); i >= 0 {
				label := strings.TrimSpace(line[:i])
				if label == "" || strings.ContainsAny(label, " \t") {
					return nil, fmt.Errorf("msp430 asm line %d: bad label %q", ln+1, label)
				}
				if _, dup := labels[label]; dup {
					return nil, fmt.Errorf("msp430 asm line %d: duplicate label %q", ln+1, label)
				}
				labels[label] = len(prog)
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		in, target, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("msp430 asm line %d: %v", ln+1, err)
		}
		prog = append(prog, pending{in, target, ln + 1})
	}

	words := make([]uint16, len(prog))
	for pc, p := range prog {
		in := p.instr
		if p.label != "" {
			tgt, ok := labels[p.label]
			if !ok {
				return nil, fmt.Errorf("msp430 asm line %d: undefined label %q", p.line, p.label)
			}
			in.Off = tgt - (pc + 1)
		}
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("msp430 asm line %d: %v", p.line, err)
		}
		words[pc] = w
	}
	return words, nil
}

// MustAssemble panics on assembly errors; for tests and embedded programs.
func MustAssemble(src string) []uint16 {
	w, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return w
}

func parseInstr(line string) (Instr, string, error) {
	fields := strings.Fields(line)
	op := strings.ToLower(fields[0])
	args := strings.Split(strings.TrimSpace(line[len(fields[0]):]), ",")
	if len(args) == 1 && strings.TrimSpace(args[0]) == "" {
		args = nil
	}
	for i := range args {
		args[i] = strings.TrimSpace(args[i])
	}

	reg := func(s string) (int, error) {
		s = strings.ToLower(s)
		if !strings.HasPrefix(s, "r") {
			return 0, fmt.Errorf("expected register, got %q", s)
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n >= NumRegs {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return n, nil
	}
	imm := func(s string) (uint8, error) {
		v, err := strconv.ParseInt(s, 0, 64)
		if err != nil || v < -128 || v > 255 {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return uint8(v), nil
	}
	indirect := func(s string) (int, error) {
		if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
			return 0, fmt.Errorf("expected (rN), got %q", s)
		}
		return reg(s[1 : len(s)-1])
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operand(s), got %d", op, n, len(args))
		}
		return nil
	}

	regReg := map[string]int{
		"mov": ClassMOV, "add": ClassADD, "addc": ClassADDC, "sub": ClassSUB,
		"subc": ClassSUBC, "cmp": ClassCMP, "and": ClassAND, "bis": ClassBIS,
		"xor": ClassXOR,
	}
	immOps := map[string]int{"movi": ClassMOVI, "addi": ClassADDI, "cmpi": ClassCMPI}
	jumps := map[string]int{
		"jmp": CondAL, "jeq": CondEQ, "jz": CondEQ, "jne": CondNE, "jnz": CondNE,
		"jc": CondC, "jnc": CondNC, "jn": CondN, "jge": CondGE, "jl": CondL,
	}

	switch {
	case op == "nop":
		return Instr{Class: ClassMisc, Sub: MiscNOP}, "", need(0)
	case op == "halt":
		return Instr{Class: ClassMisc, Sub: MiscHALT}, "", need(0)
	case op == "out":
		if err := need(1); err != nil {
			return Instr{}, "", err
		}
		rd, err := reg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Class: ClassMisc, Sub: MiscOUT, Rd: rd}, "", nil
	case regReg[op] != 0:
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rs, err := reg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		rd, err := reg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Class: regReg[op], Rs: rs, Rd: rd}, "", nil
	case immOps[op] != 0:
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err := reg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		iv, err := imm(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Class: immOps[op], Rs: rd, Imm: iv}, "", nil
	case op == "ld":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err := reg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		ra, err := indirect(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Class: ClassLD, Rs: rd, Rd: ra}, "", nil
	case op == "st":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		ra, err := indirect(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		rs, err := reg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Class: ClassST, Rs: rs, Rd: ra}, "", nil
	default:
		if cond, ok := jumps[op]; ok {
			if err := need(1); err != nil {
				return Instr{}, "", err
			}
			return Instr{Class: ClassJcc, Sub: cond}, args[0], nil
		}
	}
	return Instr{}, "", fmt.Errorf("unknown mnemonic %q", op)
}
