// Package msp430 implements an MSP430-class 16-bit multi-cycle
// microcontroller as a gate-level netlist, plus an assembler and an
// architectural ISS as the golden model.
//
// The paper's second evaluation target is "a 16-bit multi-cycle
// MSP430-compatible microcontroller" with a 14×16-bit register file.
// This package rebuilds an MSP430-class core from scratch: a 5-state
// fetch/decode/mem/exec/write FSM, 14 general-purpose 16-bit registers,
// and a two-operand instruction set in the MSP430 style (dst ⟵ dst op src,
// C = NOT borrow on subtraction, BIS does not touch flags). The multi-cycle
// microarchitecture holds operands, memory address/data and the ALU result
// in dedicated enable-gated registers between cycles — precisely the state
// the paper found most amenable to intra-cycle MATE masking.
package msp430

import "fmt"

// Instruction classes (bits 15:12).
const (
	ClassMisc = 0x0 // sub in bits 11:8; operand register in bits 7:4
	ClassMOV  = 0x1 // rd <- rs
	ClassADD  = 0x2
	ClassADDC = 0x3
	ClassSUB  = 0x4 // rd <- rd - rs
	ClassSUBC = 0x5 // rd <- rd - rs - 1 + C
	ClassCMP  = 0x6 // flags(rd - rs)
	ClassAND  = 0x7
	ClassBIS  = 0x8 // rd <- rd | rs (no flags, as on the real MSP430)
	ClassXOR  = 0x9
	ClassMOVI = 0xA // rd <- zext(imm8)
	ClassADDI = 0xB // rd <- rd + zext(imm8)
	ClassCMPI = 0xC // flags(rd - zext(imm8))
	ClassLD   = 0xD // rd <- dmem[rs]
	ClassST   = 0xE // dmem[rd] <- rs
	ClassJcc  = 0xF // conditional jump, signed 8-bit offset
)

// Misc subops (bits 11:8 when class == ClassMisc). The operand register of
// OUT sits in bits 7:4.
const (
	MiscNOP  = 0x0
	MiscHALT = 0x1
	MiscOUT  = 0x2 // port <- rd
)

// Jump conditions (bits 11:8 when class == ClassJcc).
const (
	CondAL = 0x0 // always (jmp)
	CondEQ = 0x1 // Z
	CondNE = 0x2 // !Z
	CondC  = 0x3 // C
	CondNC = 0x4 // !C
	CondN  = 0x5 // N
	CondGE = 0x6 // !(N xor V)
	CondL  = 0x7 // N xor V
)

// NumRegs is the register-file size: 14 registers of 16 bits, the
// configuration the paper reports for its MSP430 implementation.
const NumRegs = 14

// PCBits is the program-counter width.
const PCBits = 12

// DMemBits is the data-memory address width; the data memory holds
// 2^DMemBits 16-bit words.
const DMemBits = 8

// Instr is one decoded instruction.
type Instr struct {
	Class int
	Sub   int // misc subop or jump condition
	Rs    int // source register (bits 11:8 for reg-reg, LD dst, imm dst)
	Rd    int // second register field (bits 7:4)
	Imm   uint8
	Off   int
}

// Decode splits a raw instruction word. Register fields are decoded
// unconditionally; users pick the ones their class defines.
func Decode(w uint16) Instr {
	cl := int(w >> 12)
	in := Instr{Class: cl}
	switch cl {
	case ClassMisc:
		in.Sub = int(w >> 8 & 0xF)
		in.Rd = int(w >> 4 & 0xF)
	case ClassJcc:
		in.Sub = int(w >> 8 & 0xF)
		off := int(w & 0xFF)
		if off&0x80 != 0 {
			off -= 0x100
		}
		in.Off = off
	case ClassMOVI, ClassADDI, ClassCMPI:
		in.Rs = int(w >> 8 & 0xF)
		in.Imm = uint8(w & 0xFF)
	default:
		in.Rs = int(w >> 8 & 0xF)
		in.Rd = int(w >> 4 & 0xF)
	}
	return in
}

// Encode builds the raw instruction word.
func Encode(in Instr) (uint16, error) {
	reg := func(r int) error {
		if r < 0 || r >= NumRegs {
			return fmt.Errorf("msp430: register r%d out of range", r)
		}
		return nil
	}
	switch in.Class {
	case ClassMisc:
		if err := reg(in.Rd); err != nil {
			return 0, err
		}
		return uint16(ClassMisc)<<12 | uint16(in.Sub&0xF)<<8 | uint16(in.Rd)<<4, nil
	case ClassJcc:
		if in.Off < -128 || in.Off > 127 {
			return 0, fmt.Errorf("msp430: jump offset %d out of range", in.Off)
		}
		return uint16(ClassJcc)<<12 | uint16(in.Sub&0xF)<<8 | uint16(in.Off)&0xFF, nil
	case ClassMOVI, ClassADDI, ClassCMPI:
		if err := reg(in.Rs); err != nil {
			return 0, err
		}
		return uint16(in.Class)<<12 | uint16(in.Rs)<<8 | uint16(in.Imm), nil
	case ClassMOV, ClassADD, ClassADDC, ClassSUB, ClassSUBC, ClassCMP,
		ClassAND, ClassBIS, ClassXOR, ClassLD, ClassST:
		if err := reg(in.Rs); err != nil {
			return 0, err
		}
		if err := reg(in.Rd); err != nil {
			return 0, err
		}
		return uint16(in.Class)<<12 | uint16(in.Rs)<<8 | uint16(in.Rd)<<4, nil
	}
	return 0, fmt.Errorf("msp430: unknown class %#x", in.Class)
}
