package fleet

import (
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs/tracefile"
	"repro/internal/report"
)

// TestSegmentRecorderCompactsLanes: snapshots renumber whatever lanes the
// worker's primary tracer handed out into a gap-free 0..n-1 range, and the
// event cap converts overflow into a drop count instead of growth.
func TestSegmentRecorderCompactsLanes(t *testing.T) {
	base := time.Unix(1000, 0)
	rec := NewSegmentRecorder(3)
	rec.Complete("batch", "", base, time.Second, 5)
	rec.Complete("batch", "", base.Add(time.Second), time.Second, 2)
	rec.Instant("converged", "", base.Add(2*time.Second))
	rec.Complete("batch", "", base.Add(3*time.Second), time.Second, 5) // over cap

	seg := rec.Snapshot("cafe", 3, "w1")
	if seg.TraceID != "cafe" || seg.Shard != 3 || seg.Worker != "w1" {
		t.Fatalf("segment identity = %+v", seg)
	}
	if len(seg.Events) != 3 || seg.Dropped != 1 {
		t.Fatalf("got %d events, %d dropped; want 3 events, 1 dropped", len(seg.Events), seg.Dropped)
	}
	if lanes := []int32{seg.Events[0].Lane, seg.Events[1].Lane, seg.Events[2].Lane}; lanes[0] != 0 || lanes[1] != 1 || lanes[2] != 2 {
		t.Fatalf("compacted lanes = %v, want [0 1 2] (first-appearance order)", lanes)
	}
	if seg.Events[0].StartUS != base.UnixMicro() || seg.Events[0].DurUS != time.Second.Microseconds() {
		t.Fatalf("event timestamps = %+v", seg.Events[0])
	}
}

// TestSegmentRecorderLaneReuse: the recorder's own allocator (used when it
// is the only tracer) hands back the lowest freed lane.
func TestSegmentRecorderLaneReuse(t *testing.T) {
	rec := NewSegmentRecorder(0)
	if a, b := rec.BeginLane(), rec.BeginLane(); a != 0 || b != 1 {
		t.Fatalf("lanes = %d,%d, want 0,1", a, b)
	}
	rec.EndLane(0)
	if got := rec.BeginLane(); got != 0 {
		t.Fatalf("reused lane = %d, want 0", got)
	}
}

// TestStitchedTraceValidates runs a two-shard campaign through the
// coordinator with a trace writer attached, uploading one well-formed
// segment (with an event deliberately timestamped before its grant, as a
// skewed worker clock would) and one segment carrying a foreign trace ID.
// The stitched file must parse, nest — the skewed event clamped into its
// shard window — and carry only the verified segment's events.
func TestStitchedTraceValidates(t *testing.T) {
	clock := newFakeClock()
	path := filepath.Join(t.TempDir(), "fleet.trace")
	tw, err := tracefile.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(testPoints(100, 5), testGolden, Options{
		Shards:   2,
		LeaseTTL: 10 * time.Second, Heartbeat: 2 * time.Second,
		Dir: t.TempDir(), Now: clock.Now, Trace: tw,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	traceID := c.Spec().TraceID

	// Shard 1: a good segment whose first event starts an hour before the
	// grant (worker clock skew) — the stitcher must clamp it inside.
	g1 := mustLease(t, c, "w1")
	granted := clock.Now()
	clock.Advance(2 * time.Second)
	seg := &TraceSegment{TraceID: traceID, Shard: g1.Shard, Worker: "w1", Events: []SegmentEvent{
		{Name: "campaign/batch", StartUS: granted.Add(-time.Hour).UnixMicro(), DurUS: 100, Lane: 0},
		{Name: "campaign/batch", StartUS: granted.Add(500 * time.Millisecond).UnixMicro(), DurUS: 1e6, Lane: 0},
		{Name: "campaign/converged", StartUS: granted.Add(time.Second).UnixMicro(), Instant: true},
	}}
	segData, err := json.Marshal(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete("w1", g1.Shard, g1.Fence, grantJournal(t, g1), segData); err != nil {
		t.Fatal(err)
	}

	// Shard 2: a segment minted for some other campaign — verified and
	// dropped without rejecting the (valid) journal.
	g2 := mustLease(t, c, "w2")
	clock.Advance(time.Second)
	foreign, err := json.Marshal(&TraceSegment{TraceID: "ffffffffffffffff", Shard: g2.Shard, Worker: "w2", Events: []SegmentEvent{
		{Name: "campaign/batch", StartUS: clock.Now().UnixMicro(), DurUS: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete("w2", g2.Shard, g2.Fence, grantJournal(t, g2), foreign); err != nil {
		t.Fatal(err)
	}

	st := c.Status()
	if !st.Merged {
		t.Fatalf("campaign not merged: %+v", st)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	chk, err := report.CheckTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if chk.TraceID != traceID {
		t.Fatalf("stitched trace id = %q, want %q", chk.TraceID, traceID)
	}
	if chk.Shards != 2 {
		t.Fatalf("stitched shards = %d, want 2", chk.Shards)
	}
	if chk.SegmentEvents != 3 {
		t.Fatalf("segment events = %d, want 3 (foreign segment must be dropped)", chk.SegmentEvents)
	}
	if len(chk.Workers) != 2 || chk.Workers[0] != "w1" || chk.Workers[1] != "w2" {
		t.Fatalf("workers = %v, want [w1 w2]", chk.Workers)
	}
}
