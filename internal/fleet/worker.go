package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
)

// Runner executes shards of the campaign fault list locally. Header must
// return the full-campaign journal identity (the worker proves to itself,
// via Spec.Check, that its local reconstruction matches the coordinator's
// before touching a single shard); RunShard must write a complete shard
// journal for [lo, hi) to path, or return an error (ctx.Err() when the
// shard was cancelled mid-run and the journal is incomplete).
type Runner interface {
	Header() journal.Header
	// FaultModel names the model the fault list was enumerated under, in
	// -fault-model syntax (empty = "seu"); Spec.Check rejects a worker
	// whose model disagrees with the coordinator's.
	FaultModel() string
	// RunShard executes [lo, hi) into the journal at path. obsv (may be
	// nil) is the shard's observability context: runners that support it
	// publish live progress through obsv.SetDone and record their spans
	// into obsv.Recorder() so the worker can heartbeat telemetry and
	// upload a trace segment.
	RunShard(ctx context.Context, lo, hi int, path string, obsv *ShardObs) error
}

// Worker is the fleet client loop: lease a shard, run it under a heartbeat,
// upload the journal with retries, repeat until the coordinator says done.
//
// Failure behavior, by failure mode:
//
//   - coordinator down/restarting: every RPC retries with jittered
//     exponential backoff (transient classification via HTTPError.Temporary);
//   - lease lost (fencing 409 on heartbeat or completion): the shard is
//     abandoned without error — some other worker owns it now — and the
//     loop leases the next one;
//   - SIGINT (via Drain): the current shard is finished and uploaded, then
//     the loop exits cleanly; cancelling the context instead aborts the
//     shard mid-run.
type Worker struct {
	Client *Client
	Runner Runner
	// Dir holds the in-progress shard journals (one file per lease).
	Dir string
	// Backoff is the RPC retry policy (zero value = library defaults).
	Backoff Backoff
	// PollInterval paces lease polling while every shard is leased elsewhere
	// (default: the coordinator's advertised heartbeat interval).
	PollInterval time.Duration
	// Obs receives fleet_worker_* metrics and is sampled for the heartbeat
	// telemetry snapshots (nil disables both).
	Obs *obs.Registry
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...interface{})
	// Events receives the worker's structured event stream (nil disables).
	Events *obs.EventLog

	draining atomic.Bool
}

// Drain requests a graceful exit: the worker finishes (and uploads) the
// shard it is currently running, then leaves the lease loop. Safe to call
// from any goroutine — the SIGINT handler's entry point.
func (w *Worker) Drain() { w.draining.Store(true) }

func (w *Worker) logf(format string, args ...interface{}) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// workerMetrics is the worker-side obs mirror (nil-safe like the rest).
type workerMetrics struct {
	shards, retries, lost *obs.Counter
	busy                  *obs.Gauge
}

func newWorkerMetrics(reg *obs.Registry) *workerMetrics {
	if reg == nil {
		return nil
	}
	return &workerMetrics{
		shards:  reg.Counter("fleet_worker_shards_total"),
		retries: reg.Counter("fleet_worker_upload_retries_total"),
		lost:    reg.Counter("fleet_worker_leases_lost_total"),
		busy:    reg.Gauge("fleet_worker_busy"),
	}
}

func (m *workerMetrics) shardDone() {
	if m != nil {
		m.shards.Inc()
	}
}
func (m *workerMetrics) retry() {
	if m != nil {
		m.retries.Inc()
	}
}
func (m *workerMetrics) leaseLost() {
	if m != nil {
		m.lost.Inc()
	}
}
func (m *workerMetrics) setBusy(b bool) {
	if m != nil {
		v := int64(0)
		if b {
			v = 1
		}
		m.busy.Set(v)
	}
}

// Run executes the lease loop until the campaign is done, the context is
// cancelled, or an unrecoverable local error occurs. Returns nil both on
// campaign completion and on a drained exit.
func (w *Worker) Run(ctx context.Context) error {
	if w.Dir != "" {
		if err := os.MkdirAll(w.Dir, 0o755); err != nil {
			return fmt.Errorf("fleet: creating worker scratch dir: %w", err)
		}
	}
	met := newWorkerMetrics(w.Obs)
	bo := w.Backoff
	userHook := bo.OnRetry
	bo.OnRetry = func(attempt int, err error) {
		met.retry()
		w.logf("fleet: rpc failed (attempt %d, retrying): %v", attempt+1, err)
		if userHook != nil {
			userHook(attempt, err)
		}
	}

	// Fetch the spec (bounded retries: a wrong address must fail, not hang)
	// and refuse to join a fleet whose campaign we cannot reproduce.
	var spec Spec
	err := bo.Retry(ctx, 10, func() error {
		var err error
		spec, err = w.Client.Spec(ctx)
		return err
	})
	if err != nil {
		return fmt.Errorf("fleet: fetching campaign spec: %w", err)
	}
	if err := spec.Check(w.Runner.Header(), w.Runner.FaultModel()); err != nil {
		return err
	}
	heartbeat := time.Duration(spec.HeartbeatMillis) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	sampler := newTelemetrySampler(w.Obs)
	w.Events.Event(obs.LevelInfo, "worker.join",
		fmt.Sprintf("joined fleet (campaign trace %s)", spec.TraceID),
		"worker", w.Client.Worker, "trace_id", spec.TraceID)
	poll := w.PollInterval
	if poll <= 0 {
		poll = heartbeat
	}

	for {
		if w.draining.Load() {
			w.logf("fleet: drained: exiting before taking another lease")
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		// Bounded retries (~1 min at default backoff): a coordinator restart
		// is waited out, a permanently gone coordinator ends the worker with
		// an error instead of an infinite poll.
		var resp LeaseResponse
		err := bo.Retry(ctx, 12, func() error {
			var err error
			resp, err = w.Client.Lease(ctx)
			return err
		})
		if err != nil {
			return fmt.Errorf("fleet: leasing: %w", err)
		}
		switch resp.Status {
		case "done":
			w.logf("fleet: campaign complete: worker exiting")
			return nil
		case "wait":
			if err := sleepContext(ctx, poll); err != nil {
				return err
			}
		case "lease":
			if err := w.runShard(ctx, resp.Grant, heartbeat, bo, met, sampler); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fleet: coordinator sent unknown lease status %q", resp.Status)
		}
	}
}

// runShard executes one granted shard under a heartbeat and uploads the
// result. A lost lease (fenced heartbeat or completion) abandons the shard
// and returns nil — the lease loop moves on.
func (w *Worker) runShard(ctx context.Context, grant LeaseGrant, heartbeat time.Duration, bo Backoff, met *workerMetrics, sampler *telemetrySampler) error {
	met.setBusy(true)
	defer met.setBusy(false)
	w.logf("fleet: running shard %d [%d,%d) under fence %d", grant.Shard, grant.Lo, grant.Hi, grant.Fence)
	w.Events.Event(obs.LevelInfo, "shard.start",
		fmt.Sprintf("running shard %d [%d,%d)", grant.Shard, grant.Lo, grant.Hi),
		"shard", grant.Shard, "fence", grant.Fence, "trace_id", grant.TraceID)
	path := filepath.Join(w.Dir, fmt.Sprintf("shard-%04d-f%06d.journal", grant.Shard, grant.Fence))
	obsv := NewShardObs()

	// Heartbeat until the runner returns; a fencing rejection cancels the
	// shard (running it to completion would only produce an unuploadable
	// journal). Transient heartbeat failures are simply skipped — the lease
	// TTL spans several intervals, so one missed renewal is survivable.
	shardCtx, cancelShard := context.WithCancel(ctx)
	defer cancelShard()
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	var fenced atomic.Bool
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(heartbeat)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				err := w.Client.Heartbeat(hbCtx, grant.Shard, grant.Fence, sampler.sample(obsv.Done()))
				if errors.Is(err, ErrFenced) {
					fenced.Store(true)
					cancelShard()
					return
				}
				if err != nil && hbCtx.Err() == nil {
					w.logf("fleet: heartbeat for shard %d failed (lease TTL absorbs it): %v", grant.Shard, err)
				}
			}
		}
	}()

	runErr := w.Runner.RunShard(shardCtx, grant.Lo, grant.Hi, path, obsv)
	stopHB()
	<-hbDone

	if fenced.Load() {
		met.leaseLost()
		w.logf("fleet: lost lease on shard %d (fence %d superseded): abandoning", grant.Shard, grant.Fence)
		w.Events.Event(obs.LevelWarn, "lease.lost",
			fmt.Sprintf("lost lease on shard %d", grant.Shard),
			"shard", grant.Shard, "fence", grant.Fence)
		os.Remove(path)
		return nil
	}
	if runErr != nil {
		os.Remove(path)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("fleet: running shard %d: %w", grant.Shard, runErr)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("fleet: reading shard %d journal: %w", grant.Shard, err)
	}
	// The shard's trace segment rides along with the completion. Failure
	// to encode it (never expected) degrades the stitched timeline, not
	// the upload.
	var traceData []byte
	if seg := obsv.Recorder().Snapshot(grant.TraceID, grant.Shard, w.Client.Worker); len(seg.Events) > 0 {
		traceData, _ = json.Marshal(seg)
	}
	// Upload with generous transient retries (the journal is finished work;
	// a restarting coordinator is worth waiting out) — permanent rejections
	// (fencing 409, verification 422) stop immediately.
	uploadErr := bo.Retry(ctx, 15, func() error {
		err := w.Client.Complete(ctx, grant.Shard, grant.Fence, data, traceData)
		if err == nil {
			return nil
		}
		var herr *HTTPError
		if errors.Is(err, ErrFenced) || (errors.As(err, &herr) && !herr.Temporary()) {
			return Permanent(err)
		}
		return err
	})
	switch {
	case uploadErr == nil:
		met.shardDone()
		w.logf("fleet: shard %d uploaded (%d bytes)", grant.Shard, len(data))
		w.Events.Event(obs.LevelInfo, "shard.upload",
			fmt.Sprintf("shard %d uploaded", grant.Shard),
			"shard", grant.Shard, "bytes", len(data), "trace_bytes", len(traceData))
		os.Remove(path)
		return nil
	case errors.Is(uploadErr, ErrFenced):
		met.leaseLost()
		w.logf("fleet: shard %d upload fenced off (another worker owns it): abandoning", grant.Shard)
		os.Remove(path)
		return nil
	default:
		return fmt.Errorf("fleet: uploading shard %d: %w", grant.Shard, uploadErr)
	}
}
