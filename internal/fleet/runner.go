package fleet

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/hafi"
	"repro/internal/journal"
	"repro/internal/obs"
)

// ShardObs is the per-shard observability context a Worker hands its
// Runner: a live progress counter (read by the heartbeat telemetry
// sampler while the shard runs) and a bounded trace recorder whose
// snapshot becomes the trace segment uploaded with the shard journal.
// Nil-safe throughout, so a Runner can ignore it entirely.
type ShardObs struct {
	done atomic.Int64
	rec  *SegmentRecorder
}

// NewShardObs returns a fresh per-shard observability context.
func NewShardObs() *ShardObs {
	return &ShardObs{rec: NewSegmentRecorder(0)}
}

// SetDone publishes the shard's classified-point count (monotonic within
// one shard run).
func (o *ShardObs) SetDone(n int) {
	if o != nil {
		o.done.Store(int64(n))
	}
}

// Done reads the live classified-point count.
func (o *ShardObs) Done() int64 {
	if o == nil {
		return 0
	}
	return o.done.Load()
}

// Recorder returns the shard's trace recorder (nil on a nil receiver).
func (o *ShardObs) Recorder() *SegmentRecorder {
	if o == nil {
		return nil
	}
	return o.rec
}

// CampaignRunner is the production Runner: it executes shards of the
// campaign fault list on the batched HAFI engine, reusing one pool of
// 64-lane device instances across every shard the worker leases (the
// RunCampaignBatchedPoolWith path — device construction is paid once per
// process, not once per shard).
type CampaignRunner struct {
	// Ctl is this worker's campaign controller. Not shareable between
	// concurrent workers: each in-process worker needs its own.
	Ctl *hafi.Controller
	// Points is the full campaign fault list (shards slice into it).
	Points []hafi.FaultPoint
	// Runs is the 64-lane device pool, reused across shards. Superseded by
	// RunsW when that is non-nil; kept for callers (and tests) that build
	// classic 64-lane devices.
	Runs []hafi.Run64
	// RunsW is the wide device pool (e.g. 256-lane cone-delta devices),
	// preferred over Runs when non-nil.
	RunsW []hafi.RunW
	// Model is the fault model the fault list was enumerated under, in
	// -fault-model syntax (empty = "seu").
	Model string
	// MATESet enables online pruning (nil = none). Fleet campaigns receive
	// it serialized in the Spec so every worker prunes identically.
	MATESet *core.MATESet
	// DisableEarlyExit turns off the convergence early-exit.
	DisableEarlyExit bool
	// Obs receives the standard campaign metrics (nil disables).
	Obs *obs.Registry
	// Throttle sleeps this long after every classified point — a test
	// lever (campaignworker -throttle) for demonstrating straggler
	// detection against a deliberately slow worker. Zero in production.
	Throttle time.Duration
}

// Header returns the full-campaign journal identity for Spec.Check.
func (r *CampaignRunner) Header() journal.Header {
	return r.Ctl.JournalHeader(r.Points)
}

// FaultModel implements Runner.
func (r *CampaignRunner) FaultModel() string { return r.Model }

// RunShard runs fault-list range [lo, hi) and writes its journal to path.
// The journal carries the shard-slice header (golden signature + slice
// fingerprint) and local indexes 0..hi-lo-1; journal.Merge remaps them to
// global indexes at merge time.
//
// While the shard runs, obsv (optional) receives the live classified
// count via the engine's Progress callback, and the engine's spans are
// teed into obsv's segment recorder — alongside, not instead of, any
// tracer the operator attached with -trace.
func (r *CampaignRunner) RunShard(ctx context.Context, lo, hi int, path string, obsv *ShardObs) error {
	if lo < 0 || hi > len(r.Points) || lo >= hi {
		return fmt.Errorf("fleet: shard range [%d,%d) outside fault list of %d points", lo, hi, len(r.Points))
	}
	pts := r.Points[lo:hi]
	w, err := journal.Create(path, r.Ctl.JournalHeader(pts))
	if err != nil {
		return err
	}
	cfg := hafi.CampaignConfig{
		Points:           pts,
		MATESet:          r.MATESet,
		DisableEarlyExit: r.DisableEarlyExit,
		Context:          ctx,
		Journal:          w,
		Obs:              r.Obs,
	}
	if obsv != nil || r.Throttle > 0 {
		throttle := r.Throttle
		cfg.Progress = func(done int) {
			obsv.SetDone(done)
			if throttle > 0 {
				time.Sleep(throttle)
			}
		}
	}
	if r.Obs != nil && obsv != nil {
		// Tee the engine's spans into the shard's segment recorder for the
		// duration of this run; the operator's own tracer (if any) keeps
		// receiving everything.
		prev := r.Obs.Tracer()
		r.Obs.AttachTracer(obs.TeeTracer(prev, obsv.Recorder()))
		defer r.Obs.AttachTracer(prev)
	}
	var res *hafi.CampaignResult
	var runErr error
	if r.RunsW != nil {
		res, runErr = r.Ctl.RunCampaignBatchedPoolWithW(cfg, r.RunsW)
	} else {
		res, runErr = r.Ctl.RunCampaignBatchedPoolWith(cfg, r.Runs)
	}
	closeErr := w.Close()
	if runErr != nil {
		return runErr
	}
	if closeErr != nil {
		return closeErr
	}
	if res.Interrupted {
		// The journal covers only a prefix; the caller must not upload it.
		if err := ctx.Err(); err != nil {
			return err
		}
		return fmt.Errorf("fleet: shard run interrupted")
	}
	return nil
}
