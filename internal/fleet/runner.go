package fleet

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/hafi"
	"repro/internal/journal"
	"repro/internal/obs"
)

// CampaignRunner is the production Runner: it executes shards of the
// campaign fault list on the batched HAFI engine, reusing one pool of
// 64-lane device instances across every shard the worker leases (the
// RunCampaignBatchedPoolWith path — device construction is paid once per
// process, not once per shard).
type CampaignRunner struct {
	// Ctl is this worker's campaign controller. Not shareable between
	// concurrent workers: each in-process worker needs its own.
	Ctl *hafi.Controller
	// Points is the full campaign fault list (shards slice into it).
	Points []hafi.FaultPoint
	// Runs is the 64-lane device pool, reused across shards.
	Runs []hafi.Run64
	// Model is the fault model the fault list was enumerated under, in
	// -fault-model syntax (empty = "seu").
	Model string
	// MATESet enables online pruning (nil = none). Fleet campaigns receive
	// it serialized in the Spec so every worker prunes identically.
	MATESet *core.MATESet
	// DisableEarlyExit turns off the convergence early-exit.
	DisableEarlyExit bool
	// Obs receives the standard campaign metrics (nil disables).
	Obs *obs.Registry
}

// Header returns the full-campaign journal identity for Spec.Check.
func (r *CampaignRunner) Header() journal.Header {
	return r.Ctl.JournalHeader(r.Points)
}

// FaultModel implements Runner.
func (r *CampaignRunner) FaultModel() string { return r.Model }

// RunShard runs fault-list range [lo, hi) and writes its journal to path.
// The journal carries the shard-slice header (golden signature + slice
// fingerprint) and local indexes 0..hi-lo-1; journal.Merge remaps them to
// global indexes at merge time.
func (r *CampaignRunner) RunShard(ctx context.Context, lo, hi int, path string) error {
	if lo < 0 || hi > len(r.Points) || lo >= hi {
		return fmt.Errorf("fleet: shard range [%d,%d) outside fault list of %d points", lo, hi, len(r.Points))
	}
	pts := r.Points[lo:hi]
	w, err := journal.Create(path, r.Ctl.JournalHeader(pts))
	if err != nil {
		return err
	}
	cfg := hafi.CampaignConfig{
		Points:           pts,
		MATESet:          r.MATESet,
		DisableEarlyExit: r.DisableEarlyExit,
		Context:          ctx,
		Journal:          w,
		Obs:              r.Obs,
	}
	res, runErr := r.Ctl.RunCampaignBatchedPoolWith(cfg, r.Runs)
	closeErr := w.Close()
	if runErr != nil {
		return runErr
	}
	if closeErr != nil {
		return closeErr
	}
	if res.Interrupted {
		// The journal covers only a prefix; the caller must not upload it.
		if err := ctx.Err(); err != nil {
			return err
		}
		return fmt.Errorf("fleet: shard run interrupted")
	}
	return nil
}
