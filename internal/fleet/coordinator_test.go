package fleet

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/hafi"
	"repro/internal/journal"
)

// fakeClock is the injected coordinator clock: expiry tests advance it
// instead of sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testPoints builds a fault list with perCycle points per injection cycle
// (cycle-major, like hafi.SampledFaultList).
func testPoints(n, perCycle int) []hafi.FaultPoint {
	pts := make([]hafi.FaultPoint, n)
	for i := range pts {
		pts[i] = hafi.FaultPoint{FF: i % perCycle, Cycle: 1 + i/perCycle}
	}
	return pts
}

const testGolden = 0xfeedface

func newTestCoordinator(t *testing.T, dir string, clock *fakeClock, points []hafi.FaultPoint, shards int) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(points, testGolden, Options{
		Shards:   shards,
		LeaseTTL: 10 * time.Second, Heartbeat: 2 * time.Second,
		Dir: dir, Now: clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// grantJournal builds a valid shard journal for a grant: right header,
// full local-index coverage.
func grantJournal(t *testing.T, g LeaseGrant) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "shard.journal")
	h := journal.Header{GoldenSignature: testGolden, NumPoints: uint64(g.Hi - g.Lo), FaultListHash: g.ShardHash}
	w, err := journal.Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Hi-g.Lo; i++ {
		if err := w.Append(journal.Record{Index: uint64(i), FF: 1, Cycle: 1, Duration: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func mustLease(t *testing.T, c *Coordinator, worker string) LeaseGrant {
	t.Helper()
	g, status, err := c.Lease(worker)
	if err != nil {
		t.Fatal(err)
	}
	if status != "lease" {
		t.Fatalf("lease status = %q, want a grant", status)
	}
	return g
}

func TestPlanShardsCutsAtCycleBoundaries(t *testing.T) {
	pts := testPoints(100, 7) // 100 points, 7 per cycle: cuts must round up
	shards := PlanShards(pts, 6)
	if len(shards) == 0 {
		t.Fatal("no shards")
	}
	next := 0
	for _, sh := range shards {
		if sh.Lo != next {
			t.Fatalf("shard %d starts at %d, want %d (gap or overlap)", sh.ID, sh.Lo, next)
		}
		if sh.Hi <= sh.Lo {
			t.Fatalf("empty shard %d", sh.ID)
		}
		if sh.Hi < len(pts) && pts[sh.Hi-1].Cycle == pts[sh.Hi].Cycle {
			t.Fatalf("shard %d splits cycle %d", sh.ID, pts[sh.Hi].Cycle)
		}
		if sh.Hash != hafi.FaultListHash(pts[sh.Lo:sh.Hi]) {
			t.Fatalf("shard %d hash mismatch", sh.ID)
		}
		next = sh.Hi
	}
	if next != len(pts) {
		t.Fatalf("shards cover %d of %d points", next, len(pts))
	}
}

func TestLeaseExpiryAndRegrant(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, t.TempDir(), clock, testPoints(40, 4), 2)

	g1 := mustLease(t, c, "w1")
	// Heartbeats keep the lease alive across several TTLs.
	for i := 0; i < 4; i++ {
		clock.Advance(8 * time.Second)
		if err := c.Heartbeat("w1", g1.Shard, g1.Fence, nil); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	// Silence for a full TTL: the shard must be re-leasable to another worker
	// with a higher fence.
	clock.Advance(11 * time.Second)
	g2 := mustLease(t, c, "w2")
	g3 := mustLease(t, c, "w2")
	regrant := g2
	if g3.Shard == g1.Shard {
		regrant = g3
	}
	if regrant.Shard != g1.Shard {
		t.Fatalf("expired shard %d not re-leased (got shards %d, %d)", g1.Shard, g2.Shard, g3.Shard)
	}
	if regrant.Fence <= g1.Fence {
		t.Fatalf("re-grant fence %d not above expired fence %d", regrant.Fence, g1.Fence)
	}
	st := c.Status()
	if st.Counters.LeaseExpiries != 1 || st.Counters.LeaseRegrants != 1 {
		t.Fatalf("counters = %+v, want 1 expiry and 1 regrant", st.Counters)
	}
	// The expired worker's heartbeat and completion are both fenced off.
	if err := c.Heartbeat("w1", g1.Shard, g1.Fence, nil); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale heartbeat: %v, want ErrFenced", err)
	}
	if err := c.Complete("w1", g1.Shard, g1.Fence, grantJournal(t, g1), nil); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie completion: %v, want ErrFenced", err)
	}
	if st := c.Status(); st.Counters.CompletionsStale != 1 || st.Done != 0 {
		t.Fatalf("status after zombie upload = %+v, want it rejected", st)
	}
}

func TestCompleteIdempotentAndExpiredButUnregrantedAccepted(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, t.TempDir(), clock, testPoints(40, 4), 2)
	g := mustLease(t, c, "w1")
	data := grantJournal(t, g)

	// Lease silently expired, but nobody re-leased the shard: the upload is
	// valid finished work and must be accepted.
	clock.Advance(11 * time.Second)
	if err := c.Complete("w1", g.Shard, g.Fence, data, nil); err != nil {
		t.Fatalf("expired-but-unregranted completion rejected: %v", err)
	}
	// Retrying the accepted upload (lost HTTP response) is idempotent.
	if err := c.Complete("w1", g.Shard, g.Fence, data, nil); err != nil {
		t.Fatalf("idempotent re-upload rejected: %v", err)
	}
	if st := c.Status(); st.Done != 1 || st.Counters.Completions != 1 {
		t.Fatalf("status = %+v, want exactly one completion", st)
	}
}

func TestCompleteRejectsBadJournals(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, t.TempDir(), clock, testPoints(40, 4), 2)
	g := mustLease(t, c, "w1")

	var inv *InvalidJournalError
	// Garbage bytes.
	if err := c.Complete("w1", g.Shard, g.Fence, []byte("not a journal"), nil); !errors.As(err, &inv) {
		t.Fatalf("garbage upload: %v, want InvalidJournalError", err)
	}
	// The shard went back to pending; lease it again (fresh fence).
	g2 := mustLease(t, c, "w1")
	if g2.Shard != g.Shard || g2.Fence <= g.Fence {
		t.Fatalf("rejected shard not re-leased: %+v after %+v", g2, g)
	}
	// Incomplete coverage: one record short.
	short := LeaseGrant{Shard: g2.Shard, Lo: g2.Lo, Hi: g2.Hi - 1, Fence: g2.Fence, ShardHash: g2.ShardHash}
	err := c.Complete("w1", g2.Shard, g2.Fence, grantJournal(t, short), nil)
	if !errors.As(err, &inv) || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("short upload: %v, want a header mismatch rejection", err)
	}
	if st := c.Status(); st.Counters.CompletionsInvalid != 2 || st.Done != 0 {
		t.Fatalf("status = %+v, want 2 invalid completions and none accepted", st)
	}
}

// driveToMerge completes every shard through the lease protocol.
func driveToMerge(t *testing.T, c *Coordinator) {
	t.Helper()
	for {
		g, status, err := c.Lease("driver")
		if err != nil {
			t.Fatal(err)
		}
		if status == "done" {
			return
		}
		if status != "lease" {
			t.Fatalf("unexpected lease status %q", status)
		}
		if err := c.Complete("driver", g.Shard, g.Fence, grantJournal(t, g), nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMergeOnCompletion(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	pts := testPoints(60, 5)
	c := newTestCoordinator(t, dir, clock, pts, 3)
	driveToMerge(t, c)

	select {
	case <-c.MergedCh():
	default:
		t.Fatal("merged channel not closed after final completion")
	}
	rec, err := journal.Recover(c.Output())
	if err != nil {
		t.Fatal(err)
	}
	want := journal.Header{GoldenSignature: testGolden, NumPoints: uint64(len(pts)), FaultListHash: hafi.FaultListHash(pts)}
	if rec.Header != want {
		t.Fatalf("merged header = %+v, want %+v", rec.Header, want)
	}
	if len(rec.ByIndex) != len(pts) || rec.Torn || rec.Corrupt {
		t.Fatalf("merged journal covers %d/%d points (torn=%v corrupt=%v)", len(rec.ByIndex), len(pts), rec.Torn, rec.Corrupt)
	}
	if st := c.Status(); !st.Merged || st.Counters.Merges != 1 {
		t.Fatalf("status = %+v, want merged once", st)
	}
}

func TestCoordinatorRestartResumes(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	pts := testPoints(60, 5)

	// First life: one shard completed, one leased and still in flight.
	c1, err := NewCoordinator(pts, testGolden, Options{
		Shards: 3, LeaseTTL: 10 * time.Second, Heartbeat: 2 * time.Second,
		Dir: dir, Now: clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	gDone := mustLease(t, c1, "w1")
	if err := c1.Complete("w1", gDone.Shard, gDone.Fence, grantJournal(t, gDone), nil); err != nil {
		t.Fatal(err)
	}
	gLive := mustLease(t, c1, "w2")
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart in the same dir. Completed work survives; the in-flight lease
	// is honored with a fresh TTL under its original fence.
	clock.Advance(9 * time.Second) // would have been near expiry pre-restart
	c2 := newTestCoordinator(t, dir, clock, pts, 3)
	st := c2.Status()
	if st.Done != 1 || st.Leased != 1 || st.Pending != 1 {
		t.Fatalf("restarted status = %+v, want 1 done / 1 leased / 1 pending", st)
	}
	if err := c2.Heartbeat("w2", gLive.Shard, gLive.Fence, nil); err != nil {
		t.Fatalf("live worker's heartbeat rejected after restart: %v", err)
	}
	if err := c2.Complete("w2", gLive.Shard, gLive.Fence, grantJournal(t, gLive), nil); err != nil {
		t.Fatalf("live worker's completion rejected after restart: %v", err)
	}
	// New fences must rise above everything granted in the first life.
	gNext := mustLease(t, c2, "w3")
	if gNext.Fence <= gLive.Fence {
		t.Fatalf("post-restart fence %d not above pre-restart fence %d", gNext.Fence, gLive.Fence)
	}
	if err := c2.Complete("w3", gNext.Shard, gNext.Fence, grantJournal(t, gNext), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c2.MergedCh():
	default:
		t.Fatal("campaign not merged after restart finished the remaining shards")
	}

	// Third life: the merged verdict is re-verified, not re-done.
	c2.Close()
	c3 := newTestCoordinator(t, dir, clock, pts, 3)
	if st := c3.Status(); !st.Merged || st.Counters.Merges != 0 {
		t.Fatalf("third-life status = %+v, want merged without a re-merge", st)
	}
	if _, status, err := c3.Lease("w4"); err != nil || status != "done" {
		t.Fatalf("lease after merge = %q, %v; want done", status, err)
	}
}

func TestCoordinatorRestartRejectsForeignState(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	newTestCoordinator(t, dir, clock, testPoints(60, 5), 3).Close()

	// Same dir, different campaign (another stride): refuse, loudly.
	_, err := NewCoordinator(testPoints(30, 5), testGolden, Options{
		Shards: 3, LeaseTTL: 10 * time.Second, Heartbeat: 2 * time.Second,
		Dir: dir, Now: clock.Now,
	})
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("foreign state dir accepted: %v", err)
	}
}

func TestCoordinatorRestartReverifiesSpooledShards(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	pts := testPoints(60, 5)
	c1, err := NewCoordinator(pts, testGolden, Options{
		Shards: 3, LeaseTTL: 10 * time.Second, Heartbeat: 2 * time.Second,
		Dir: dir, Now: clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := mustLease(t, c1, "w1")
	if err := c1.Complete("w1", g.Shard, g.Fence, grantJournal(t, g), nil); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// Corrupt the spooled shard journal behind the coordinator's back.
	spool := filepath.Join(dir, "shard-0000.journal")
	if err := os.WriteFile(spool, []byte("rotted"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := newTestCoordinator(t, dir, clock, pts, 3)
	if st := c2.Status(); st.Done != 0 {
		t.Fatalf("restart trusted a rotten spool file: %+v", st)
	}
	// The shard is schedulable again.
	g2 := mustLease(t, c2, "w2")
	if g2.Shard != g.Shard {
		t.Fatalf("rotten shard %d not first in line, got %d", g.Shard, g2.Shard)
	}
}

func TestCoordinatorOptionValidation(t *testing.T) {
	pts := testPoints(10, 2)
	if _, err := NewCoordinator(nil, 1, Options{Dir: t.TempDir()}); err == nil {
		t.Error("empty fault list accepted")
	}
	if _, err := NewCoordinator(pts, 1, Options{}); err == nil {
		t.Error("missing dir accepted")
	}
	_, err := NewCoordinator(pts, 1, Options{Dir: t.TempDir(), LeaseTTL: time.Second, Heartbeat: time.Second})
	if err == nil || !strings.Contains(err.Error(), "heartbeat") {
		t.Errorf("heartbeat >= TTL accepted: %v", err)
	}
}
