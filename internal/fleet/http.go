package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/obs"
)

// The coordinator API is five JSON-over-HTTP endpoints plus the live
// status surface:
//
//	POST /v1/lease      {worker}                → {status, grant?}
//	POST /v1/heartbeat  {worker, shard, fence, telemetry?}  → {} | 409
//	POST /v1/complete   {worker, shard, fence, journal, trace?} → {} | 409 | 422
//	GET  /v1/spec                               → Spec
//	GET  /v1/status                             → Status
//	GET  /status                                → Status (operator alias)
//	GET  /dashboard                             → live HTML dashboard
//
// 409 Conflict is the fencing rejection (the lease moved on — permanent
// from the caller's point of view); 422 Unprocessable Entity rejects a
// journal that failed verification (also permanent). Everything else
// non-2xx is treated as transient by the worker's retry policy.

// LeaseRequest asks for the next pending shard.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse carries the lease verdict: Status "lease" (Grant valid),
// "wait" (nothing pending right now, poll again) or "done" (campaign
// merged or merging; the worker may exit).
type LeaseResponse struct {
	Status string     `json:"status"`
	Grant  LeaseGrant `json:"grant"`
}

// HeartbeatRequest renews a lease. Telemetry piggybacks the worker's
// cumulative campaign counters on the renewal (nil = bare renewal from
// an old worker; the lease logic is unchanged either way).
type HeartbeatRequest struct {
	Worker    string     `json:"worker"`
	Shard     int        `json:"shard"`
	Fence     uint64     `json:"fence"`
	Telemetry *Telemetry `json:"telemetry,omitempty"`
}

// CompleteRequest uploads a finished shard journal (Journal is the raw
// journal file; encoding/json transports it base64-encoded) plus the
// shard's optional trace segment (a JSON-encoded TraceSegment).
type CompleteRequest struct {
	Worker  string `json:"worker"`
	Shard   int    `json:"shard"`
	Fence   uint64 `json:"fence"`
	Journal []byte `json:"journal"`
	Trace   []byte `json:"trace,omitempty"`
}

// HTTPError is a non-2xx coordinator reply as seen by the client.
type HTTPError struct {
	Code int
	Msg  string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("fleet: coordinator replied %d: %s", e.Code, e.Msg)
}

// Temporary reports whether retrying the same request can succeed: fencing
// rejections (409) and journal-verification rejections (422) are final,
// everything else (a restarting coordinator's 5xx, a half-up listener) is
// worth retrying.
func (e *HTTPError) Temporary() bool {
	return e.Code != http.StatusConflict && e.Code != http.StatusUnprocessableEntity
}

// NewHandler serves the coordinator API. When reg is non-nil, the obs
// registry is additionally exposed on /metrics, so one listener carries
// both the lease traffic and the fleet_* counters.
func NewHandler(c *Coordinator, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/spec", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Spec())
	})
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc("/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		grant, status, err := c.Lease(req.Worker)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, LeaseResponse{Status: status, Grant: grant})
	})
	mux.HandleFunc("/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := c.Heartbeat(req.Worker, req.Shard, req.Fence, req.Telemetry); err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := c.Complete(req.Worker, req.Shard, req.Fence, req.Journal, req.Trace); err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	// Operator-facing status surface: /status is the same snapshot as
	// /v1/status under the address humans guess first, and /dashboard is a
	// zero-dependency HTML view polling it.
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc("/dashboard", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashboardHTML))
	})
	if reg != nil {
		mux.Handle("/metrics", obs.MetricsHandler(reg))
	}
	return mux
}

// errStatus maps coordinator rejections onto their wire status.
func errStatus(err error) int {
	var inv *InvalidJournalError
	switch {
	case errors.Is(err, ErrFenced):
		return http.StatusConflict
	case errors.As(err, &inv):
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}

func readJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return false
	}
	// 64 MiB bounds the largest plausible shard journal upload; anything
	// bigger is a broken or hostile client, not a campaign.
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Client is a worker's view of the coordinator API.
type Client struct {
	// BaseURL is the coordinator root, e.g. "http://127.0.0.1:9200".
	BaseURL string
	// Worker identifies this worker in lease and completion requests.
	Worker string
	// HTTPClient overrides http.DefaultClient (tests inject a
	// httptest.Server client here).
	HTTPClient *http.Client
}

func (cl *Client) httpClient() *http.Client {
	if cl.HTTPClient != nil {
		return cl.HTTPClient
	}
	return http.DefaultClient
}

// post round-trips one JSON request. A non-2xx reply decodes the error
// body and returns an *HTTPError (wrapping ErrFenced for 409, so callers
// can errors.Is their way to the fencing verdict).
func (cl *Client) post(ctx context.Context, path string, req, resp interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	return cl.do(hreq, resp)
}

func (cl *Client) get(ctx context.Context, path string, resp interface{}) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.BaseURL+path, nil)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	return cl.do(hreq, resp)
}

func (cl *Client) do(hreq *http.Request, resp interface{}) error {
	hresp, err := cl.httpClient().Do(hreq)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	if hresp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(data, &e)
		if e.Error == "" {
			e.Error = hresp.Status
		}
		herr := &HTTPError{Code: hresp.StatusCode, Msg: e.Error}
		if hresp.StatusCode == http.StatusConflict {
			return fmt.Errorf("%w (%s)", ErrFenced, e.Error)
		}
		return herr
	}
	if resp == nil {
		return nil
	}
	if err := json.Unmarshal(data, resp); err != nil {
		return fmt.Errorf("fleet: decoding %s reply: %w", hreq.URL.Path, err)
	}
	return nil
}

// Spec fetches the campaign definition.
func (cl *Client) Spec(ctx context.Context) (Spec, error) {
	var s Spec
	err := cl.get(ctx, "/v1/spec", &s)
	return s, err
}

// Status fetches the coordinator snapshot.
func (cl *Client) Status(ctx context.Context) (Status, error) {
	var s Status
	err := cl.get(ctx, "/v1/status", &s)
	return s, err
}

// Lease asks for the next shard.
func (cl *Client) Lease(ctx context.Context) (LeaseResponse, error) {
	var resp LeaseResponse
	err := cl.post(ctx, "/v1/lease", LeaseRequest{Worker: cl.Worker}, &resp)
	return resp, err
}

// Heartbeat renews a lease, piggybacking the worker's telemetry snapshot
// (nil = bare renewal); errors.Is(err, ErrFenced) means the lease is
// lost and the shard must be abandoned.
func (cl *Client) Heartbeat(ctx context.Context, shard int, fence uint64, tel *Telemetry) error {
	return cl.post(ctx, "/v1/heartbeat", HeartbeatRequest{Worker: cl.Worker, Shard: shard, Fence: fence, Telemetry: tel}, nil)
}

// Complete uploads a finished shard journal plus its optional trace
// segment.
func (cl *Client) Complete(ctx context.Context, shard int, fence uint64, journal, trace []byte) error {
	return cl.post(ctx, "/v1/complete", CompleteRequest{Worker: cl.Worker, Shard: shard, Fence: fence, Journal: journal, Trace: trace}, nil)
}
