package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/hafi"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/obs/tracefile"
)

// ShardState is the lease state machine of one shard:
//
//	Pending ──grant──▶ Leased ──verified upload──▶ Done
//	   ▲                  │
//	   └── TTL expired ───┘
//
// Every grant carries a fresh fencing token (a globally monotonic
// counter); a completion or heartbeat quoting any older token is rejected,
// which is what makes a crashed-and-re-leased shard safe against its
// original worker waking up late.
type ShardState int

const (
	ShardPending ShardState = iota
	ShardLeased
	ShardDone
)

func (s ShardState) String() string {
	switch s {
	case ShardPending:
		return "pending"
	case ShardLeased:
		return "leased"
	case ShardDone:
		return "done"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ErrFenced rejects a heartbeat or completion carrying a stale fencing
// token: the shard's lease has been granted to someone else since.
var ErrFenced = errors.New("fleet: stale fence (lease reassigned)")

// InvalidJournalError rejects a completion whose uploaded journal failed
// verification against the shard's expected fingerprints or coverage.
type InvalidJournalError struct{ Reason error }

func (e *InvalidJournalError) Error() string {
	return fmt.Sprintf("fleet: shard journal rejected: %v", e.Reason)
}
func (e *InvalidJournalError) Unwrap() error { return e.Reason }

// Options parameterises a coordinator.
type Options struct {
	// Shards is the target shard count (the planner may produce fewer on
	// small fault lists; see PlanShards).
	Shards int
	// LeaseTTL is how long a lease lives without a heartbeat (default 10s).
	LeaseTTL time.Duration
	// Heartbeat is the renewal interval advertised to workers (default
	// LeaseTTL/4; must stay below LeaseTTL or every lease would expire
	// between renewals).
	Heartbeat time.Duration
	// Dir is the coordinator's durable directory: the state log and the
	// spooled per-shard journals live here.
	Dir string
	// Output is the merged campaign journal path (default
	// Dir/campaign.journal).
	Output string
	// Spec describes the campaign to workers; NewCoordinator fills in the
	// fingerprint and lease fields.
	Spec Spec
	// Obs receives fleet metrics (nil disables instrumentation).
	Obs *obs.Registry
	// Now is the clock (nil = time.Now; injectable for expiry tests).
	Now func() time.Time
	// Logf receives operator progress lines (nil = silent).
	Logf func(format string, args ...interface{})
	// Events receives the structured operational event stream (nil
	// disables; nil-safe like every obs handle).
	Events *obs.EventLog
	// Trace, when set, receives the stitched campaign timeline at merge
	// time: the campaign root span, one process group per shard, and every
	// worker-uploaded trace segment nested inside its shard span.
	Trace *tracefile.Writer
	// StragglerFraction flags a worker as a straggler when its throughput
	// falls below this fraction of the active-fleet median (default 0.35;
	// must be in (0,1)).
	StragglerFraction float64
}

// Counters are the coordinator's lifetime event counts, exposed in
// /v1/status (and mirrored to the obs registry as fleet_* counters).
type Counters struct {
	LeasesGranted      int64 `json:"leases_granted"`
	LeaseExpiries      int64 `json:"lease_expiries"`
	LeaseRegrants      int64 `json:"lease_regrants"`
	Heartbeats         int64 `json:"heartbeats"`
	HeartbeatsStale    int64 `json:"heartbeats_stale"`
	Completions        int64 `json:"completions"`
	CompletionsStale   int64 `json:"completions_stale"`
	CompletionsInvalid int64 `json:"completions_invalid"`
	Merges             int64 `json:"merges"`
}

// shardSlot is one shard plus its lease state.
type shardSlot struct {
	Shard
	state       ShardState
	worker      string
	fence       uint64
	deadline    time.Time
	grants      int
	file        string // spool file name once done
	traceFile   string // spooled trace segment, if the worker sent one
	grantedAt   time.Time
	completedAt time.Time
	leaseDone   int64 // live points-done inside the current lease
}

// Progress is the fleet-wide campaign progress view, folded from
// heartbeat telemetry plus the lease table.
type Progress struct {
	PointsTotal int64 `json:"points_total"`
	// PointsDone counts points in accepted shards plus live heartbeat
	// progress inside leased shards; it may briefly regress when a lease
	// expires and its in-flight progress is discarded.
	PointsDone int64 `json:"points_done"`
	// Rate is the summed EWMA throughput of the active workers (points/s).
	Rate float64 `json:"rate"`
	// ETASeconds estimates time to campaign completion; -1 until the
	// first heartbeat telemetry establishes a throughput.
	ETASeconds    float64          `json:"eta_seconds"`
	Injections    int64            `json:"injections"`
	Pruned        int64            `json:"pruned"`
	Converged     int64            `json:"converged"`
	CyclesSaved   int64            `json:"cycles_saved"`
	LaneOccupancy float64          `json:"lane_occupancy"`
	Outcomes      map[string]int64 `json:"outcomes,omitempty"`
}

// ShardStatus is one row of the live shard map in /status.
type ShardStatus struct {
	ID         int    `json:"id"`
	Lo         int    `json:"lo"`
	Hi         int    `json:"hi"`
	State      string `json:"state"`
	Worker     string `json:"worker,omitempty"`
	Done       int64  `json:"done"`
	Grants     int    `json:"grants"`
	DeadlineMS int64  `json:"lease_deadline_unix_ms,omitempty"`
}

// Status is the coordinator snapshot served on /v1/status and /status.
type Status struct {
	Shards    int            `json:"shards"`
	Pending   int            `json:"pending"`
	Leased    int            `json:"leased"`
	Done      int            `json:"done"`
	Merged    bool           `json:"merged"`
	Output    string         `json:"output"`
	TraceID   string         `json:"trace_id"`
	Counters  Counters       `json:"counters"`
	Progress  Progress       `json:"progress"`
	Workers   []WorkerStatus `json:"workers,omitempty"`
	ShardMap  []ShardStatus  `json:"shard_map,omitempty"`
	Anomalies []Anomaly      `json:"anomalies,omitempty"`
}

// Coordinator owns a campaign's shard plan and lease table. All methods
// are safe for concurrent use by the HTTP handlers.
type Coordinator struct {
	opts   Options
	spec   Spec
	header journal.Header

	mu       sync.Mutex
	shards   []*shardSlot
	fence    uint64
	done     int
	merged   bool
	mergedCh chan struct{}
	log      *stateLog
	counters Counters
	met      *fleetMetrics
	agg      *aggregator
	traceID  string
	started  time.Time
}

// NewCoordinator plans the fault space, replays any durable state found in
// opts.Dir (a restarted coordinator resumes exactly where it crashed:
// completed shards stay completed, leased shards get a fresh TTL so live
// workers keep them by heartbeating, and expired ones re-lease), and
// merges immediately if the replayed state says every shard is already
// done.
func NewCoordinator(points []hafi.FaultPoint, goldenSignature uint64, opts Options) (*Coordinator, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("fleet: empty fault list")
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = opts.LeaseTTL / 4
	}
	if opts.Heartbeat >= opts.LeaseTTL {
		return nil, fmt.Errorf("fleet: heartbeat interval %v must be below the lease TTL %v", opts.Heartbeat, opts.LeaseTTL)
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("fleet: coordinator needs a durable directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	if opts.Output == "" {
		opts.Output = filepath.Join(opts.Dir, "campaign.journal")
	}

	c := &Coordinator{
		opts:     opts,
		header:   journal.Header{GoldenSignature: goldenSignature, NumPoints: uint64(len(points)), FaultListHash: hafi.FaultListHash(points)},
		mergedCh: make(chan struct{}),
		met:      newFleetMetrics(opts.Obs),
		agg:      newAggregator(opts),
	}
	// The campaign trace ID derives deterministically from the campaign
	// identity, so a restarted coordinator keeps stitching segments into
	// the same logical trace its workers were minted into.
	c.traceID = fmt.Sprintf("%016x", c.header.GoldenSignature^c.header.FaultListHash^(c.header.NumPoints*0x9e3779b97f4a7c15))
	c.spec = opts.Spec
	c.spec.GoldenSignature = c.header.GoldenSignature
	c.spec.NumPoints = c.header.NumPoints
	c.spec.FaultListHash = c.header.FaultListHash
	c.spec.LeaseTTLMillis = opts.LeaseTTL.Milliseconds()
	c.spec.HeartbeatMillis = opts.Heartbeat.Milliseconds()
	c.spec.TraceID = c.traceID

	for _, sh := range PlanShards(points, opts.Shards) {
		c.shards = append(c.shards, &shardSlot{Shard: sh})
	}
	c.started = c.now()
	c.met.setShards(len(c.shards))
	c.met.setPointsTotal(int64(c.header.NumPoints))

	if err := c.restore(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Coordinator) now() time.Time {
	if c.opts.Now != nil {
		return c.opts.Now()
	}
	return time.Now()
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

func (c *Coordinator) statePath() string { return filepath.Join(c.opts.Dir, "state.log") }
func (c *Coordinator) spoolPath(name string) string {
	return filepath.Join(c.opts.Dir, name)
}

// restore replays the durable state log and re-verifies everything it
// claims: a "complete" event only stands if the spooled journal still
// verifies, and a "merged" event only stands if the merged output still
// recovers completely — so a crash between any two steps re-runs exactly
// the missing step and nothing else.
func (c *Coordinator) restore() error {
	events, err := replayStateLog(c.statePath())
	if err != nil {
		return err
	}
	if len(events) == 0 {
		if st, err := os.Stat(c.statePath()); err == nil && st.Size() > 0 {
			return fmt.Errorf("fleet: state log %s is unreadable (no intact events)", c.statePath())
		}
	}
	now := c.now()
	mergedClaimed := false
	if len(events) > 0 {
		plan := events[0]
		if plan.Ev != evPlan {
			return fmt.Errorf("fleet: state log %s does not start with a plan event", c.statePath())
		}
		if plan.Golden != c.header.GoldenSignature || plan.Points != c.header.NumPoints ||
			plan.Hash != c.header.FaultListHash || plan.Shards != len(c.shards) {
			return fmt.Errorf("fleet: state dir %s belongs to a different campaign or shard plan (log: golden=%016x points=%d hash=%016x shards=%d; want golden=%016x points=%d hash=%016x shards=%d)",
				c.opts.Dir, plan.Golden, plan.Points, plan.Hash, plan.Shards,
				c.header.GoldenSignature, c.header.NumPoints, c.header.FaultListHash, len(c.shards))
		}
		for _, ev := range events[1:] {
			switch ev.Ev {
			case evGrant:
				if ev.Shard < 0 || ev.Shard >= len(c.shards) {
					continue
				}
				sh := c.shards[ev.Shard]
				if ev.Fence > c.fence {
					c.fence = ev.Fence
				}
				if sh.state == ShardDone {
					continue
				}
				sh.state = ShardLeased
				sh.worker = ev.Worker
				sh.fence = ev.Fence
				sh.grants++
			case evComplete:
				if ev.Shard < 0 || ev.Shard >= len(c.shards) {
					continue
				}
				sh := c.shards[ev.Shard]
				if err := c.verifyShardFile(sh, c.spoolPath(ev.File)); err != nil {
					c.logf("fleet: restart: shard %d spool %s no longer verifies (%v); shard re-runs", ev.Shard, ev.File, err)
					sh.state = ShardPending
					continue
				}
				sh.state = ShardDone
				sh.file = ev.File
				if name := fmt.Sprintf("shard-%04d.trace", sh.ID); fileExists(c.spoolPath(name)) {
					sh.traceFile = name
				}
			case evMerged:
				mergedClaimed = true
			}
		}
	}
	for _, sh := range c.shards {
		if sh.state == ShardDone {
			c.done++
		} else if sh.state == ShardLeased {
			// Fresh grace period: a live worker keeps its shard by simply
			// heartbeating against the restarted coordinator.
			sh.deadline = now.Add(c.opts.LeaseTTL)
		}
	}
	c.met.setDone(c.done)
	c.met.setPointsDone(c.pointsDoneLocked())

	c.log, err = openStateLog(c.statePath())
	if err != nil {
		return err
	}
	if len(events) == 0 {
		err := c.log.append(stateEvent{
			Ev: evPlan, Golden: c.header.GoldenSignature, Points: c.header.NumPoints,
			Hash: c.header.FaultListHash, Shards: len(c.shards),
		})
		if err != nil {
			return err
		}
	}

	if mergedClaimed {
		if err := c.verifyMergedOutput(); err == nil {
			c.setMergedLocked()
		} else {
			c.logf("fleet: restart: merged journal no longer verifies (%v); re-merging", err)
		}
	}
	if !c.merged && c.done == len(c.shards) {
		if err := c.mergeLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the state log. It does not touch shard state on disk.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log == nil {
		return nil
	}
	err := c.log.close()
	c.log = nil
	return err
}

// Spec returns the campaign definition advertised to workers.
func (c *Coordinator) Spec() Spec { return c.spec }

// Header returns the campaign journal identity.
func (c *Coordinator) Header() journal.Header { return c.header }

// Output returns the merged campaign journal path.
func (c *Coordinator) Output() string { return c.opts.Output }

// MergedCh is closed once the campaign journal has been merged.
func (c *Coordinator) MergedCh() <-chan struct{} { return c.mergedCh }

// sweepLocked expires overdue leases (mu held).
func (c *Coordinator) sweepLocked(now time.Time) {
	for _, sh := range c.shards {
		if sh.state == ShardLeased && now.After(sh.deadline) {
			sh.state = ShardPending
			sh.leaseDone = 0
			c.counters.LeaseExpiries++
			c.met.leaseExpired()
			c.agg.workerDone(sh.worker)
			c.logf("fleet: lease of shard %d expired (worker %s, fence %d): re-leasing", sh.ID, sh.worker, sh.fence)
			c.opts.Events.Event(obs.LevelWarn, "lease.expire",
				fmt.Sprintf("lease of shard %d expired", sh.ID),
				"shard", sh.ID, "worker", sh.worker, "fence", sh.fence)
		}
	}
}

// LeaseGrant is a successful lease: the shard range plus the fencing token
// every subsequent heartbeat and the final completion must quote.
type LeaseGrant struct {
	Shard     int    `json:"shard"`
	Lo        int    `json:"lo"`
	Hi        int    `json:"hi"`
	Fence     uint64 `json:"fence"`
	ShardHash uint64 `json:"shard_hash"`
	// TraceID is the campaign trace the worker should stamp on the trace
	// segment it uploads with the finished shard.
	TraceID string `json:"trace_id,omitempty"`
}

// Lease hands the next pending shard to worker. The second return is
// "lease" (grant valid), "wait" (everything is leased or done — poll again
// after a backoff) or "done" (campaign complete; the worker may exit).
func (c *Coordinator) Lease(worker string) (LeaseGrant, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.sweepLocked(now)
	c.tryMergeLocked()
	if c.done == len(c.shards) {
		return LeaseGrant{}, "done", nil
	}
	for _, sh := range c.shards {
		if sh.state != ShardPending {
			continue
		}
		c.fence++
		sh.state = ShardLeased
		sh.worker = worker
		sh.fence = c.fence
		sh.deadline = now.Add(c.opts.LeaseTTL)
		sh.grants++
		sh.grantedAt = now
		sh.leaseDone = 0
		err := c.log.append(stateEvent{Ev: evGrant, Shard: sh.ID, Fence: sh.fence, Worker: worker})
		if err != nil {
			sh.state = ShardPending // the fence stays burned; harmless
			return LeaseGrant{}, "", err
		}
		c.counters.LeasesGranted++
		c.met.leaseGranted()
		if sh.grants > 1 {
			c.counters.LeaseRegrants++
			c.met.leaseRegranted()
		}
		c.logf("fleet: shard %d [%d,%d) leased to %s (fence %d, grant #%d)", sh.ID, sh.Lo, sh.Hi, worker, sh.fence, sh.grants)
		c.opts.Events.Event(obs.LevelInfo, "lease.grant",
			fmt.Sprintf("shard %d [%d,%d) leased to %s", sh.ID, sh.Lo, sh.Hi, worker),
			"shard", sh.ID, "worker", worker, "fence", sh.fence, "grant", sh.grants, "trace_id", c.traceID)
		return LeaseGrant{Shard: sh.ID, Lo: sh.Lo, Hi: sh.Hi, Fence: sh.fence, ShardHash: sh.Hash, TraceID: c.traceID}, "lease", nil
	}
	return LeaseGrant{}, "wait", nil
}

// Heartbeat renews the lease identified by (shard, fence) and folds the
// heartbeat's telemetry snapshot (nil is a bare renewal) into the fleet
// aggregate. A stale fence returns ErrFenced: the caller has lost the
// shard and must abandon it — its telemetry is discarded with it.
func (c *Coordinator) Heartbeat(worker string, shard int, fence uint64, tel *Telemetry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.sweepLocked(now)
	if shard < 0 || shard >= len(c.shards) {
		return fmt.Errorf("fleet: no such shard %d", shard)
	}
	sh := c.shards[shard]
	if sh.state != ShardLeased || sh.fence != fence {
		c.counters.HeartbeatsStale++
		c.met.heartbeatStale()
		return ErrFenced
	}
	sh.deadline = now.Add(c.opts.LeaseTTL)
	sh.worker = worker
	c.counters.Heartbeats++
	c.met.heartbeat()
	c.agg.fold(worker, shard, tel, now)
	if tel != nil {
		sh.leaseDone = tel.ShardDone
	}
	c.agg.detect(now, c.shards, c.opts.LeaseTTL)
	c.met.setPointsDone(c.pointsDoneLocked())
	return nil
}

// Complete accepts a finished shard's journal. The fence must be the
// shard's latest grant — a zombie worker whose lease expired and was
// re-granted is turned away with ErrFenced, so no shard is ever counted
// twice. The journal is verified (header fingerprints, corruption,
// complete point coverage) before the shard is marked done; a verification
// failure returns an *InvalidJournalError and re-opens the shard.
// Re-uploading an already-accepted shard under the same fence is
// idempotent (the worker may retry a completion whose response was lost).
//
// trace is the shard's optional trace segment (JSON-encoded TraceSegment);
// it is spooled best-effort next to the journal and stitched into the
// campaign timeline at merge time. A bad segment never rejects a good
// journal.
func (c *Coordinator) Complete(worker string, shard int, fence uint64, data, trace []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.sweepLocked(now)
	if shard < 0 || shard >= len(c.shards) {
		return fmt.Errorf("fleet: no such shard %d", shard)
	}
	sh := c.shards[shard]
	if sh.state == ShardDone {
		if sh.fence == fence {
			return nil // idempotent retry of the accepted upload
		}
		c.counters.CompletionsStale++
		c.met.completionStale()
		return ErrFenced
	}
	if sh.fence != fence {
		c.counters.CompletionsStale++
		c.met.completionStale()
		return ErrFenced
	}
	// The fence is current: accept even if the lease just expired but the
	// shard has not been re-granted — the work is valid and re-running it
	// would be waste.
	name := fmt.Sprintf("shard-%04d.journal", sh.ID)
	if err := c.spoolShard(sh, name, data); err != nil {
		sh.state = ShardPending // let someone else (or a fixed worker) retry
		c.counters.CompletionsInvalid++
		c.met.completionInvalid()
		c.logf("fleet: shard %d upload from %s rejected: %v", sh.ID, worker, err)
		c.opts.Events.Event(obs.LevelWarn, "shard.reject",
			fmt.Sprintf("shard %d upload from %s rejected: %v", sh.ID, worker, err),
			"shard", sh.ID, "worker", worker)
		return err
	}
	if err := c.log.append(stateEvent{Ev: evComplete, Shard: sh.ID, Fence: fence, File: name}); err != nil {
		return err
	}
	sh.state = ShardDone
	sh.file = name
	sh.completedAt = now
	sh.leaseDone = int64(sh.Hi - sh.Lo)
	c.spoolTrace(sh, trace)
	c.agg.workerDone(worker)
	c.done++
	c.counters.Completions++
	c.met.completion()
	c.met.setDone(c.done)
	c.met.setPointsDone(c.pointsDoneLocked())
	c.logf("fleet: shard %d completed by %s (%d/%d shards done)", sh.ID, worker, c.done, len(c.shards))
	c.opts.Events.Event(obs.LevelInfo, "shard.complete",
		fmt.Sprintf("shard %d completed by %s", sh.ID, worker),
		"shard", sh.ID, "worker", worker, "done", c.done, "shards", len(c.shards))
	c.tryMergeLocked()
	return nil
}

// spoolTrace saves a worker's uploaded trace segment next to the shard
// journal, best-effort: trace loss degrades the stitched timeline, never
// the campaign. Segments minted for a different trace ID (e.g. by a
// worker pointed at the wrong coordinator) are dropped.
func (c *Coordinator) spoolTrace(sh *shardSlot, trace []byte) {
	if len(trace) == 0 {
		return
	}
	var seg TraceSegment
	if err := json.Unmarshal(trace, &seg); err != nil {
		c.logf("fleet: shard %d trace segment unparseable: %v", sh.ID, err)
		return
	}
	if seg.TraceID != c.traceID {
		c.logf("fleet: shard %d trace segment carries foreign trace id %s (want %s): dropped", sh.ID, seg.TraceID, c.traceID)
		return
	}
	name := fmt.Sprintf("shard-%04d.trace", sh.ID)
	if err := os.WriteFile(c.spoolPath(name)+".tmp", trace, 0o644); err != nil {
		c.logf("fleet: shard %d trace spool: %v", sh.ID, err)
		return
	}
	if err := os.Rename(c.spoolPath(name)+".tmp", c.spoolPath(name)); err != nil {
		c.logf("fleet: shard %d trace spool: %v", sh.ID, err)
		return
	}
	sh.traceFile = name
}

// pointsDoneLocked is the fleet-wide classified-point count: full credit
// for accepted shards plus live heartbeat progress inside leased ones.
func (c *Coordinator) pointsDoneLocked() int64 {
	var done int64
	for _, sh := range c.shards {
		switch sh.state {
		case ShardDone:
			done += int64(sh.Hi - sh.Lo)
		case ShardLeased:
			done += sh.leaseDone
		}
	}
	return done
}

// spoolShard writes an uploaded journal next to the state log and verifies
// it. The write goes through a temp file + rename so a crash never leaves
// a half-written spool file behind a "complete" state event; verification
// runs on the temp file so an invalid upload never occupies the spool name.
func (c *Coordinator) spoolShard(sh *shardSlot, name string, data []byte) error {
	tmp, err := os.CreateTemp(c.opts.Dir, name+".up-*")
	if err != nil {
		return fmt.Errorf("fleet: spool: %w", err)
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: spool: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: spool: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fleet: spool: %w", err)
	}
	if err := c.verifyShardFile(sh, tmpPath); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, c.spoolPath(name)); err != nil {
		return fmt.Errorf("fleet: spool: %w", err)
	}
	return nil
}

// verifyShardFile checks a spooled shard journal against the shard's
// expected identity and coverage.
func (c *Coordinator) verifyShardFile(sh *shardSlot, path string) error {
	rec, err := journal.Recover(path)
	if err != nil {
		return &InvalidJournalError{Reason: err}
	}
	if !rec.HasHeader {
		return &InvalidJournalError{Reason: fmt.Errorf("no intact campaign header")}
	}
	want := sh.Header(c.header.GoldenSignature)
	switch {
	case rec.Header.GoldenSignature != want.GoldenSignature:
		return &InvalidJournalError{Reason: fmt.Errorf("golden signature mismatch (journal %016x, want %016x)", rec.Header.GoldenSignature, want.GoldenSignature)}
	case rec.Header.NumPoints != want.NumPoints:
		return &InvalidJournalError{Reason: fmt.Errorf("fault-list size mismatch (journal %d, want %d)", rec.Header.NumPoints, want.NumPoints)}
	case rec.Header.FaultListHash != want.FaultListHash:
		return &InvalidJournalError{Reason: fmt.Errorf("fault-list hash mismatch (journal %016x, want %016x)", rec.Header.FaultListHash, want.FaultListHash)}
	}
	if rec.Corrupt {
		return &InvalidJournalError{Reason: fmt.Errorf("journal contains corrupt records")}
	}
	if got, want := len(rec.ByIndex), sh.Hi-sh.Lo; got != want {
		return &InvalidJournalError{Reason: fmt.Errorf("incomplete shard: %d of %d points classified", got, want)}
	}
	return nil
}

// tryMergeLocked merges once every shard is done; a failed merge is logged
// and retried on the next call (every lease/status poll), never silently
// dropped.
func (c *Coordinator) tryMergeLocked() {
	if c.merged || c.done != len(c.shards) {
		return
	}
	if err := c.mergeLocked(); err != nil {
		c.logf("fleet: merge failed (will retry): %v", err)
	}
}

// mergeLocked merges every spooled shard journal into the campaign journal
// (atomically, via journal.Merge's temp-and-rename) and records the fact.
func (c *Coordinator) mergeLocked() error {
	shards := make([]journal.MergeShard, 0, len(c.shards))
	for _, sh := range c.shards {
		rec, err := journal.Recover(c.spoolPath(sh.file))
		if err != nil {
			return fmt.Errorf("fleet: merge: shard %d: %w", sh.ID, err)
		}
		shards = append(shards, journal.MergeShard{
			Rec:  rec,
			Base: uint64(sh.Lo),
			Want: sh.Header(c.header.GoldenSignature),
		})
	}
	stats, err := journal.Merge(c.opts.Output, c.header, shards)
	if err != nil {
		return err
	}
	if uint64(stats.Records) != c.header.NumPoints {
		// Unreachable when every shard verified complete; guard anyway so a
		// lossy merge can never masquerade as a finished campaign.
		return fmt.Errorf("fleet: merge covered %d of %d points", stats.Records, c.header.NumPoints)
	}
	if err := c.log.append(stateEvent{Ev: evMerged, File: filepath.Base(c.opts.Output)}); err != nil {
		return err
	}
	c.counters.Merges++
	c.met.merge()
	c.logf("fleet: merged %d shards (%d records, %d attribution hits) into %s", stats.Shards, stats.Records, stats.MATEHits, c.opts.Output)
	c.opts.Events.Event(obs.LevelInfo, "merge.done",
		fmt.Sprintf("merged %d shards (%d records) into %s", stats.Shards, stats.Records, c.opts.Output),
		"shards", stats.Shards, "records", stats.Records, "output", c.opts.Output, "trace_id", c.traceID)
	c.stitchTraceLocked()
	c.setMergedLocked()
	return nil
}

// stitchTraceLocked assembles the cross-process campaign timeline on the
// coordinator's trace writer: a campaign root span (pid 1), one process
// group per shard labelled with the worker that finished it, a
// coordinator-side shard span covering grant→complete on the group's tid
// 0, and every event of the shard's uploaded segment nested inside that
// window on tid lane+1.
func (c *Coordinator) stitchTraceLocked() {
	tw := c.opts.Trace
	if tw == nil {
		return
	}
	now := c.now()
	tw.ProcessName(1, "campaignd")
	tw.CompleteOn(1, 0, "campaign", "trace "+c.traceID, c.started, now.Sub(c.started))
	for _, sh := range c.shards {
		pid := shardPID(sh.ID)
		granted, completed := sh.grantedAt, sh.completedAt
		// A coordinator restarted after shards completed has no grant
		// timestamps; degrade to the campaign window rather than drop rows.
		if granted.IsZero() {
			granted = c.started
		}
		if completed.IsZero() {
			completed = now
		}
		tw.ProcessName(pid, fmt.Sprintf("shard %02d · %s", sh.ID, sh.worker))
		tw.ThreadName(pid, 0, "lease")
		tw.CompleteOn(pid, 0, "shard", fmt.Sprintf("[%d,%d) worker %s grants %d", sh.Lo, sh.Hi, sh.worker, sh.grants),
			granted, completed.Sub(granted))
		if sh.traceFile == "" {
			continue
		}
		data, err := os.ReadFile(c.spoolPath(sh.traceFile))
		if err != nil {
			c.logf("fleet: stitch: shard %d: %v", sh.ID, err)
			continue
		}
		var seg TraceSegment
		if err := json.Unmarshal(data, &seg); err != nil {
			c.logf("fleet: stitch: shard %d: %v", sh.ID, err)
			continue
		}
		for lane := int32(0); lane < segmentLanes(&seg); lane++ {
			tw.ThreadName(pid, lane+1, fmt.Sprintf("lane %d", lane))
		}
		stitchSegment(tw, &seg, granted, completed)
	}
}

// segmentLanes counts the distinct (compacted) lanes in a segment.
func segmentLanes(seg *TraceSegment) int32 {
	var max int32 = -1
	for _, ev := range seg.Events {
		if ev.Lane > max {
			max = ev.Lane
		}
	}
	return max + 1
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// verifyMergedOutput re-validates the merged campaign journal after a
// restart: right header, no corruption, complete coverage.
func (c *Coordinator) verifyMergedOutput() error {
	rec, err := journal.Recover(c.opts.Output)
	if err != nil {
		return err
	}
	if !rec.HasHeader || rec.Header != c.header {
		return fmt.Errorf("merged journal header mismatch")
	}
	if rec.Corrupt || rec.Torn {
		return fmt.Errorf("merged journal damaged")
	}
	if uint64(len(rec.ByIndex)) != c.header.NumPoints {
		return fmt.Errorf("merged journal covers %d of %d points", len(rec.ByIndex), c.header.NumPoints)
	}
	return nil
}

func (c *Coordinator) setMergedLocked() {
	if !c.merged {
		c.merged = true
		close(c.mergedCh)
	}
}

// Status snapshots the lease table, counters, folded fleet telemetry,
// the per-worker and per-shard views, and the active anomalies.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.sweepLocked(now)
	c.tryMergeLocked()
	c.agg.detect(now, c.shards, c.opts.LeaseTTL)
	st := Status{
		Shards:   len(c.shards),
		Merged:   c.merged,
		Output:   c.opts.Output,
		TraceID:  c.traceID,
		Counters: c.counters,
		Progress: c.progressLocked(now),
		Workers:  c.agg.workerStatuses(),
	}
	for _, sh := range c.shards {
		switch sh.state {
		case ShardPending:
			st.Pending++
		case ShardLeased:
			st.Leased++
		case ShardDone:
			st.Done++
		}
		row := ShardStatus{
			ID: sh.ID, Lo: sh.Lo, Hi: sh.Hi,
			State: sh.state.String(), Done: sh.leaseDone, Grants: sh.grants,
		}
		if sh.state != ShardPending {
			row.Worker = sh.worker
		}
		if sh.state == ShardDone {
			row.Done = int64(sh.Hi - sh.Lo)
		}
		if sh.state == ShardLeased {
			row.DeadlineMS = sh.deadline.UnixMilli()
		}
		st.ShardMap = append(st.ShardMap, row)
	}
	st.Anomalies = c.agg.anomalyList()
	return st
}

// progressLocked folds the lease table and aggregated telemetry into the
// fleet progress view (mu held).
func (c *Coordinator) progressLocked(now time.Time) Progress {
	p := Progress{
		PointsTotal:   int64(c.header.NumPoints),
		PointsDone:    c.pointsDoneLocked(),
		Rate:          c.agg.fleetRate(now),
		ETASeconds:    -1,
		Injections:    c.agg.totals.Injections,
		Pruned:        c.agg.totals.Pruned,
		Converged:     c.agg.totals.Converged,
		CyclesSaved:   c.agg.totals.CyclesSaved,
		LaneOccupancy: c.agg.laneOccupancy(),
	}
	if len(c.agg.outcomes) > 0 {
		p.Outcomes = make(map[string]int64, len(c.agg.outcomes))
		for k, v := range c.agg.outcomes {
			p.Outcomes[k] = v
		}
	}
	if remaining := p.PointsTotal - p.PointsDone; remaining <= 0 {
		p.ETASeconds = 0
	} else if p.Rate > 0 {
		p.ETASeconds = float64(remaining) / p.Rate
	}
	c.met.setPointsDone(p.PointsDone)
	return p
}

// fleetMetrics mirrors the coordinator counters into an obs registry
// (nil-safe throughout, like every obs integration in this codebase).
type fleetMetrics struct {
	granted, expired, regranted   *obs.Counter
	heartbeats, heartbeatsStale   *obs.Counter
	completions, completionsStale *obs.Counter
	completionsInvalid, merges    *obs.Counter
	shards, shardsDone            *obs.Gauge
	pointsTotal, pointsDone       *obs.Gauge
}

func newFleetMetrics(reg *obs.Registry) *fleetMetrics {
	if reg == nil {
		return nil
	}
	return &fleetMetrics{
		granted:            reg.Counter("fleet_leases_granted_total"),
		expired:            reg.Counter("fleet_lease_expiries_total"),
		regranted:          reg.Counter("fleet_lease_regrants_total"),
		heartbeats:         reg.Counter("fleet_heartbeats_total"),
		heartbeatsStale:    reg.Counter("fleet_heartbeats_stale_total"),
		completions:        reg.Counter("fleet_completions_total"),
		completionsStale:   reg.Counter("fleet_completions_stale_total"),
		completionsInvalid: reg.Counter("fleet_completions_invalid_total"),
		merges:             reg.Counter("fleet_merges_total"),
		shards:             reg.Gauge("fleet_shards"),
		shardsDone:         reg.Gauge("fleet_shards_done"),
		pointsTotal:        reg.Gauge("fleet_points_total"),
		pointsDone:         reg.Gauge("fleet_points_done"),
	}
}

func (m *fleetMetrics) setPointsTotal(n int64) {
	if m != nil {
		m.pointsTotal.Set(n)
	}
}
func (m *fleetMetrics) setPointsDone(n int64) {
	if m != nil {
		m.pointsDone.Set(n)
	}
}

func (m *fleetMetrics) setShards(n int) {
	if m != nil {
		m.shards.Set(int64(n))
	}
}
func (m *fleetMetrics) setDone(n int) {
	if m != nil {
		m.shardsDone.Set(int64(n))
	}
}
func (m *fleetMetrics) leaseGranted() {
	if m != nil {
		m.granted.Inc()
	}
}
func (m *fleetMetrics) leaseExpired() {
	if m != nil {
		m.expired.Inc()
	}
}
func (m *fleetMetrics) leaseRegranted() {
	if m != nil {
		m.regranted.Inc()
	}
}
func (m *fleetMetrics) heartbeat() {
	if m != nil {
		m.heartbeats.Inc()
	}
}
func (m *fleetMetrics) heartbeatStale() {
	if m != nil {
		m.heartbeatsStale.Inc()
	}
}
func (m *fleetMetrics) completion() {
	if m != nil {
		m.completions.Inc()
	}
}
func (m *fleetMetrics) completionStale() {
	if m != nil {
		m.completionsStale.Inc()
	}
}
func (m *fleetMetrics) completionInvalid() {
	if m != nil {
		m.completionsInvalid.Inc()
	}
}
func (m *fleetMetrics) merge() {
	if m != nil {
		m.merges.Inc()
	}
}
