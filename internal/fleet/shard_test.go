package fleet

import (
	"strings"
	"testing"

	"repro/internal/journal"
)

// TestSpecCheckFaultModel: a worker whose local fault model differs from
// the coordinator's spec must be rejected by name — before the fault-list
// fingerprint comparison turns the mismatch into an opaque hash error —
// and spelling variants of the same model must not be rejected.
func TestSpecCheckFaultModel(t *testing.T) {
	spec := Spec{GoldenSignature: 1, NumPoints: 2, FaultListHash: 3}
	okHeader := journal.Header{GoldenSignature: 1, NumPoints: 2, FaultListHash: 3}

	cases := []struct {
		name        string
		specModel   string
		localModel  string
		local       journal.Header
		ok          bool
		errContains string
	}{
		{"both default seu", "", "", okHeader, true, ""},
		{"empty equals explicit seu", "", "seu", okHeader, true, ""},
		{"explicit seu equals empty", "seu", "", okHeader, true, ""},
		{"canonical mbu variants", "mbu", "mbu:2", okHeader, true, ""},
		{"canonical intermittent variants", "intermittent", "intermittent:2,8", okHeader, true, ""},
		{"same verbatim", "stuck1:3", "stuck1:3", okHeader, true, ""},
		{"model mismatch", "mbu:2", "seu", okHeader, false, "fault-model mismatch"},
		{"span mismatch", "mbu:2", "mbu:3", okHeader, false, "fault-model mismatch"},
		{"stuck level mismatch", "stuck0", "stuck1", okHeader, false, "fault-model mismatch"},
		// When both the model and the fingerprints disagree, the model is
		// named first — that is the actionable error.
		{"model named before hash", "set", "seu",
			journal.Header{GoldenSignature: 1, NumPoints: 9, FaultListHash: 9}, false, "fault-model mismatch"},
		{"hash mismatch same model", "seu", "seu",
			journal.Header{GoldenSignature: 1, NumPoints: 2, FaultListHash: 9}, false, "fault-list hash"},
	}
	for _, tc := range cases {
		s := spec
		s.FaultModel = tc.specModel
		err := s.Check(tc.local, tc.localModel)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: mismatch accepted", tc.name)
			} else if !strings.Contains(err.Error(), tc.errContains) {
				t.Errorf("%s: error %q does not name %q", tc.name, err, tc.errContains)
			}
		}
	}
}

// TestCampaignRunnerFaultModel: the runner advertises its model to the
// join handshake.
func TestCampaignRunnerFaultModel(t *testing.T) {
	r := &CampaignRunner{}
	if got := r.FaultModel(); got != "" {
		t.Errorf("zero runner model = %q, want empty (seu)", got)
	}
	r.Model = "mbu:2"
	if got := r.FaultModel(); got != "mbu:2" {
		t.Errorf("model = %q", got)
	}
}
