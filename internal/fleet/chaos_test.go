package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpu/avr"
	"repro/internal/hafi"
	"repro/internal/journal"
	"repro/internal/report"
)

// chaosProgram is a short self-checking AVR workload (compute, store,
// emit checksum, halt) — big enough for a few hundred injection points,
// small enough to run a whole fleet campaign in seconds.
const chaosProgram = `
    ldi r1, 5
    ldi r2, 0
loop:
    add r2, r1
    dec r1
    brne loop
    ldi r3, 16
    st (r3), r2
    out r2
    halt
`

// crashRunner wraps a Runner and simulates a worker crash: at the start of
// its n-th shard it cancels the worker's context, so the shard dies
// mid-run with an incomplete journal and the lease is left to expire.
type crashRunner struct {
	Runner
	cancel  context.CancelFunc
	crashAt int32
	n       int32
}

func (r *crashRunner) RunShard(ctx context.Context, lo, hi int, path string, obsv *ShardObs) error {
	if atomic.AddInt32(&r.n, 1) >= r.crashAt {
		r.cancel()
	}
	return r.Runner.RunShard(ctx, lo, hi, path, obsv)
}

// TestFleetChaos is the end-to-end fault-tolerance proof: a campaign runs
// under every failure mode the fleet is built for — a worker that crashes
// mid-shard, a zombie whose lease is handed over and whose late upload
// must be fenced off, and a coordinator that is killed and restarted from
// its durable directory — and the merged journal must still be
// point-for-point identical to an uninterrupted single-process run.
func TestFleetChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test runs a full fleet campaign")
	}

	// --- campaign definition (shared by reference and fleet) -------------
	prog := avr.MustAssemble(chaosProgram)
	newRun := func() hafi.Run { return hafi.NewAVRRun(avr.NewCore(), prog) }
	golden, err := hafi.RecordGolden(newRun(), 10000)
	if err != nil {
		t.Fatal(err)
	}
	nl := avr.NewCore().NL
	points := hafi.SampledFaultList(nl, golden.HaltCycle, 2)
	if len(points) < 100 {
		t.Fatalf("fault list too small for a meaningful fleet test: %d points", len(points))
	}
	set := core.Search(nl, nl.FFQWires(), core.DefaultSearchParams()).Set

	mkRunner := func() *CampaignRunner {
		run64, err := hafi.NewAVRRun64(avr.NewCore(), prog)
		if err != nil {
			t.Fatal(err)
		}
		return &CampaignRunner{
			Ctl:     hafi.NewControllerPool(newRun, golden),
			Points:  points,
			Runs:    []hafi.Run64{run64},
			MATESet: set,
		}
	}

	// --- reference: uninterrupted single-process campaign ----------------
	refPath := filepath.Join(t.TempDir(), "reference.journal")
	refCtl := hafi.NewControllerPool(newRun, golden)
	jw, err := journal.Create(refPath, refCtl.JournalHeader(points))
	if err != nil {
		t.Fatal(err)
	}
	refRun64, err := hafi.NewAVRRun64(avr.NewCore(), prog)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := refCtl.RunCampaignBatched(hafi.CampaignConfig{
		Points: points, MATESet: set, Journal: jw,
	}, refRun64)
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if refRes.Skipped == 0 {
		t.Fatal("reference campaign pruned nothing; the merge would not exercise attribution records")
	}

	// --- coordinator, first life -----------------------------------------
	dir := t.TempDir()
	opts := Options{
		Shards: 6, LeaseTTL: 1500 * time.Millisecond, Heartbeat: 300 * time.Millisecond,
		Dir: dir, Spec: Spec{CPU: "avr", Prog: "chaos", Stride: 2},
		Logf: t.Logf,
	}
	coord1, err := NewCoordinator(points, golden.Signature, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(NewHandler(coord1, nil))

	mkWorker := func(name, base string, r Runner) *Worker {
		return &Worker{
			Client:  &Client{BaseURL: base, Worker: name},
			Runner:  r,
			Dir:     t.TempDir(),
			Backoff: Backoff{Base: 20 * time.Millisecond, Max: 300 * time.Millisecond},
			// Fast polling keeps the test snappy while shards are re-leasing.
			PollInterval: 50 * time.Millisecond,
			Logf:         t.Logf,
		}
	}

	// Zombie: takes a lease on the first life and goes silent. Its shard
	// will expire, re-lease, and be finished by an honest worker; its own
	// (wrong!) journal arrives long after the campaign moved on.
	ctx := context.Background()
	zombie := &Client{BaseURL: ts1.URL, Worker: "zombie"}
	zresp, err := zombie.Lease(ctx)
	if err != nil || zresp.Status != "lease" {
		t.Fatalf("zombie lease: %+v, %v", zresp, err)
	}

	// Worker 1: finishes one shard honestly, then crashes at the start of
	// its second. Its crashed shard's lease is left dangling.
	w1ctx, w1cancel := context.WithCancel(ctx)
	defer w1cancel()
	w1 := mkWorker("w1", ts1.URL, &crashRunner{Runner: mkRunner(), cancel: w1cancel, crashAt: 2})
	if err := w1.Run(w1ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("crashed worker returned %v, want context.Canceled", err)
	}
	if st := coord1.Status(); st.Done < 1 {
		t.Fatalf("worker 1 crashed before completing anything: %+v", st)
	}

	// --- coordinator killed and restarted from its directory -------------
	ts1.Close()
	if err := coord1.Close(); err != nil {
		t.Fatal(err)
	}
	coord2, err := NewCoordinator(points, golden.Signature, opts)
	if err != nil {
		t.Fatalf("coordinator restart: %v", err)
	}
	defer coord2.Close()
	st := coord2.Status()
	if st.Done < 1 {
		t.Fatalf("completed shard lost across coordinator restart: %+v", st)
	}
	if st.Leased < 2 {
		// Zombie's shard and w1's crashed shard were replayed as leased
		// (fresh TTL) — they must expire before honest workers can take over.
		t.Fatalf("replayed lease table wrong: %+v, want >= 2 leased", st)
	}
	ts2 := httptest.NewServer(NewHandler(coord2, nil))
	defer ts2.Close()

	// --- honest workers finish the campaign ------------------------------
	var wg sync.WaitGroup
	werrs := make([]error, 2)
	for i := range werrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			werrs[i] = mkWorker(fmt.Sprintf("w%d", i+2), ts2.URL, mkRunner()).Run(ctx)
		}(i)
	}
	select {
	case <-coord2.MergedCh():
	case <-time.After(5 * time.Minute):
		t.Fatalf("campaign did not merge in time: %+v", coord2.Status())
	}
	wg.Wait()
	for i, err := range werrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i+2, err)
		}
	}

	// --- zombie wakes up: its stale-fence upload must bounce -------------
	zerr := zombie2(ts2.URL).Complete(ctx, zresp.Grant.Shard, zresp.Grant.Fence, grantJournal(t, zresp.Grant), nil)
	if !errors.Is(zerr, ErrFenced) {
		t.Fatalf("zombie upload after re-lease and completion: %v, want ErrFenced", zerr)
	}

	st = coord2.Status()
	if !st.Merged || st.Done != st.Shards {
		t.Fatalf("campaign not fully merged: %+v", st)
	}
	if st.Counters.LeaseExpiries < 2 {
		t.Fatalf("expected the zombie's and the crashed worker's leases to expire: %+v", st.Counters)
	}
	if st.Counters.LeaseRegrants < 2 {
		t.Fatalf("expected both orphaned shards to be re-leased: %+v", st.Counters)
	}
	if st.Counters.CompletionsStale != 1 {
		t.Fatalf("fencing counter = %d, want exactly the zombie's rejected upload", st.Counters.CompletionsStale)
	}

	// --- the merged journal is the single-process journal, point for point
	merged, err := journal.Recover(coord2.Output())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Torn || merged.Corrupt {
		t.Fatalf("merged journal damaged: torn=%v corrupt=%v", merged.Torn, merged.Corrupt)
	}
	// Zero lost points (full coverage) and zero duplicated points (exactly
	// one experiment frame per fault-list index).
	if len(merged.ByIndex) != len(points) {
		t.Fatalf("merged journal covers %d of %d points", len(merged.ByIndex), len(points))
	}
	if len(merged.Records) != len(points) {
		t.Fatalf("merged journal has %d experiment frames for %d points (duplicates?)", len(merged.Records), len(points))
	}

	refCampaign, err := report.Load(refPath, "")
	if err != nil {
		t.Fatal(err)
	}
	mergedCampaign, err := report.Load(coord2.Output(), "")
	if err != nil {
		t.Fatal(err)
	}
	d, err := report.Diff(refCampaign, mergedCampaign)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions() != 0 || d.Agree != len(points) {
		t.Fatalf("merged campaign diverges from the single-process reference: %+v", d)
	}
	// Attribution records survived the merge bit for bit.
	for idx, hit := range refCampaign.Rec.HitByIndex {
		got, ok := mergedCampaign.Rec.HitByIndex[idx]
		if !ok || got != hit {
			t.Fatalf("point %d attribution lost or changed in merge: ref %+v, merged %+v (present=%v)", idx, hit, got, ok)
		}
	}
	if len(mergedCampaign.Rec.HitByIndex) != len(refCampaign.Rec.HitByIndex) {
		t.Fatalf("merged journal has %d attribution records, reference %d",
			len(mergedCampaign.Rec.HitByIndex), len(refCampaign.Rec.HitByIndex))
	}
}

// zombie2 rebinds the zombie identity to the restarted coordinator's URL
// (the original server is gone; the fence is what must do the rejecting).
func zombie2(base string) *Client {
	return &Client{BaseURL: base, Worker: "zombie"}
}
