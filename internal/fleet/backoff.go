package fleet

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Backoff is a jittered exponential retry policy: delay(n) = Base ×
// Factor^n, capped at Max, then spread uniformly over [d×(1−Jitter),
// d×(1+Jitter)] so a fleet of workers retrying against a restarting
// coordinator does not stampede it in lockstep.
//
// The zero value is usable and selects the defaults below. Rand and Sleep
// are injectable for deterministic tests; production code leaves them nil.
type Backoff struct {
	// Base is the pre-jitter first delay (default 100ms).
	Base time.Duration
	// Max caps the pre-jitter delay (default 10s).
	Max time.Duration
	// Factor is the exponential growth rate (default 2).
	Factor float64
	// Jitter spreads each delay uniformly over ±Jitter×delay (default 0.2;
	// 0 < Jitter <= 1 to stay meaningful, negative disables jitter).
	Jitter float64
	// Rand returns a uniform sample in [0, 1); nil uses math/rand.
	Rand func() float64
	// Sleep waits for d or until ctx is cancelled, returning ctx.Err() in
	// the latter case; nil uses a timer-backed default.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when non-nil, observes every retried failure (attempt is
	// 0-based) — the hook the fleet worker uses to count upload retries.
	OnRetry func(attempt int, err error)
}

func (b Backoff) base() time.Duration {
	if b.Base <= 0 {
		return 100 * time.Millisecond
	}
	return b.Base
}

func (b Backoff) max() time.Duration {
	if b.Max <= 0 {
		return 10 * time.Second
	}
	return b.Max
}

func (b Backoff) factor() float64 {
	if b.Factor <= 1 {
		return 2
	}
	return b.Factor
}

func (b Backoff) jitter() float64 {
	switch {
	case b.Jitter < 0:
		return 0
	case b.Jitter == 0:
		return 0.2
	case b.Jitter > 1:
		return 1
	}
	return b.Jitter
}

// Delay returns the pre-jitter delay of the given 0-based attempt:
// exponential growth from Base, capped at Max.
func (b Backoff) Delay(attempt int) time.Duration {
	d := float64(b.base())
	max := float64(b.max())
	for i := 0; i < attempt; i++ {
		d *= b.factor()
		if d >= max {
			return time.Duration(max)
		}
	}
	if d > max {
		d = max
	}
	return time.Duration(d)
}

// JitteredDelay is Delay spread over [d×(1−Jitter), d×(1+Jitter)].
func (b Backoff) JitteredDelay(attempt int) time.Duration {
	d := float64(b.Delay(attempt))
	j := b.jitter()
	if j == 0 {
		return time.Duration(d)
	}
	r := rand.Float64
	if b.Rand != nil {
		r = b.Rand
	}
	lo := d * (1 - j)
	return time.Duration(lo + r()*(d*(1+j)-lo))
}

// Wait sleeps for the given attempt's jittered delay, aborting early (with
// ctx.Err()) when the context is cancelled mid-sleep.
func (b Backoff) Wait(ctx context.Context, attempt int) error {
	sleep := b.Sleep
	if sleep == nil {
		sleep = sleepContext
	}
	return sleep(ctx, b.JitteredDelay(attempt))
}

// Retry runs f until it returns nil, a Permanent error, the context is
// cancelled (including mid-sleep), or attempts calls have failed
// (attempts <= 0 retries without limit). The last error is returned,
// wrapped together with ctx.Err() when cancellation cut the retry short.
func (b Backoff) Retry(ctx context.Context, attempts int, f func() error) error {
	for attempt := 0; ; attempt++ {
		err := f()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if attempts > 0 && attempt+1 >= attempts {
			return err
		}
		if b.OnRetry != nil {
			b.OnRetry(attempt, err)
		}
		if werr := b.Wait(ctx, attempt); werr != nil {
			return errors.Join(werr, err)
		}
	}
}

// permanentError marks an error Retry must not retry.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps an error so Backoff.Retry returns it immediately instead
// of retrying — the marker for application-level rejections (a fencing 409)
// as opposed to transient transport failures.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// sleepContext is the production Sleep: a timer that aborts on cancellation.
func sleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
