package fleet

import (
	"repro/internal/hafi"
	"repro/internal/obs"
)

// Telemetry is the compact telemetry snapshot a worker attaches to every
// heartbeat: cumulative worker-lifetime campaign counters plus the live
// progress of the currently leased shard. Cumulative (rather than
// per-interval) counters make folding idempotent under lost or reordered
// heartbeats — the coordinator differences consecutive snapshots per
// worker and folds only the delta, so a dropped heartbeat costs latency,
// never accuracy.
type Telemetry struct {
	// ShardDone counts points classified in the currently leased shard
	// (resets with each lease; the engine's Progress callback feeds it).
	ShardDone int64 `json:"shard_done"`
	// Done..Batches are worker-lifetime cumulative campaign counters.
	Done        int64 `json:"done"`
	Injections  int64 `json:"injections"`
	Pruned      int64 `json:"pruned"`
	Converged   int64 `json:"converged"`
	CyclesSaved int64 `json:"cycles_saved"`
	Batches     int64 `json:"batches"`
	// LaneSum is the cumulative sum of per-batch lane occupancy (the
	// campaign_batch_lanes histogram sum); LaneSum/(64·Batches) is the
	// worker's mean lane occupancy.
	LaneSum float64 `json:"lane_sum"`
	// Outcomes is the cumulative executed-outcome histogram, keyed by
	// outcome name (benign, sdc, hang, harness-error).
	Outcomes map[string]int64 `json:"outcomes,omitempty"`
}

// sub returns the per-field difference cur - prev with every count
// clamped at zero: a worker that restarted under the same name resets
// its counters, and folding a negative delta would corrupt the fleet
// totals, so the post-restart snapshot simply becomes the new baseline.
func (t *Telemetry) sub(prev *Telemetry) Telemetry {
	d := Telemetry{
		Done:        clampDelta(t.Done, prev.Done),
		Injections:  clampDelta(t.Injections, prev.Injections),
		Pruned:      clampDelta(t.Pruned, prev.Pruned),
		Converged:   clampDelta(t.Converged, prev.Converged),
		CyclesSaved: clampDelta(t.CyclesSaved, prev.CyclesSaved),
		Batches:     clampDelta(t.Batches, prev.Batches),
	}
	if d.LaneSum = t.LaneSum - prev.LaneSum; d.LaneSum < 0 {
		d.LaneSum = 0
	}
	if len(t.Outcomes) > 0 {
		d.Outcomes = make(map[string]int64, len(t.Outcomes))
		for k, v := range t.Outcomes {
			d.Outcomes[k] = clampDelta(v, prev.Outcomes[k])
		}
	}
	return d
}

func clampDelta(cur, prev int64) int64 {
	if d := cur - prev; d > 0 {
		return d
	}
	return 0
}

// telemetrySampler reads the worker-lifetime campaign counters out of the
// worker's obs registry (the same campaign_* handles the engines update),
// so heartbeat telemetry needs no extra hot-path instrumentation at all.
// Nil when the worker runs without a registry — sampling then reports
// only the shard progress counter.
type telemetrySampler struct {
	done, executed, pruned     *obs.Counter
	converged, cycles, batches *obs.Counter
	lanes                      *obs.Histogram
	outcomes                   map[string]*obs.Counter
}

func newTelemetrySampler(reg *obs.Registry) *telemetrySampler {
	if reg == nil {
		return nil
	}
	s := &telemetrySampler{
		done:      reg.Counter("campaign_points_done_total"),
		executed:  reg.Counter("campaign_injections_total"),
		pruned:    reg.Counter("campaign_pruned_total"),
		converged: reg.Counter("campaign_converged_total"),
		cycles:    reg.Counter("campaign_cycles_saved_total"),
		batches:   reg.Counter("campaign_batches_total"),
		lanes:     reg.Histogram("campaign_batch_lanes", nil),
		outcomes:  map[string]*obs.Counter{},
	}
	for o := hafi.OutcomeBenign; o <= hafi.OutcomeHarnessError; o++ {
		s.outcomes[o.String()] = reg.Counter("campaign_outcomes_total", "outcome", o.String())
	}
	return s
}

// sample snapshots the registry counters plus the live shard progress.
// Safe on a nil receiver (returns a shard-progress-only snapshot).
func (s *telemetrySampler) sample(shardDone int64) *Telemetry {
	t := &Telemetry{ShardDone: shardDone}
	if s == nil {
		return t
	}
	t.Done = s.done.Value()
	t.Injections = s.executed.Value()
	t.Pruned = s.pruned.Value()
	t.Converged = s.converged.Value()
	t.CyclesSaved = s.cycles.Value()
	t.Batches = s.batches.Value()
	t.LaneSum = s.lanes.Sum()
	t.Outcomes = make(map[string]int64, len(s.outcomes))
	for name, c := range s.outcomes {
		t.Outcomes[name] = c.Value()
	}
	return t
}
