package fleet

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cpu/avr"
	"repro/internal/hafi"
	"repro/internal/journal"
	"repro/internal/report"
)

// TestFleetModelCampaign is the happy-path fleet drill, run under a
// non-SEU fault model: one worker leases and executes every shard of an
// MBU campaign (reusing its device pool across shards), the coordinator
// merges the v3 shard journals, and the merged journal must be
// point-for-point identical to a single-process run. Unlike the chaos
// test this stays fast enough for -short, so the whole
// lease/run/upload/merge loop is exercised on every CI coverage pass.
// It also pins the model handshake: the worker advertises "mbu" against
// the coordinator's "mbu:2" (same model, canonical comparison), and a
// worker whose fault list was enumerated under SEU is refused by name.
func TestFleetModelCampaign(t *testing.T) {
	prog := avr.MustAssemble(chaosProgram)
	newRun := func() hafi.Run { return hafi.NewAVRRun(avr.NewCore(), prog) }
	golden, err := hafi.RecordGolden(newRun(), 10000)
	if err != nil {
		t.Fatal(err)
	}
	nl := avr.NewCore().NL
	points := hafi.ModelFaultList(nl, golden.HaltCycle, 8,
		hafi.ModelSpec{Model: hafi.ModelMBU, Span: 2})
	if len(points) < 64 {
		t.Fatalf("fault list too small for a fleet test: %d points", len(points))
	}

	mkRunner := func(model string) *CampaignRunner {
		run64, err := hafi.NewAVRRun64(avr.NewCore(), prog)
		if err != nil {
			t.Fatal(err)
		}
		return &CampaignRunner{
			Ctl:    hafi.NewControllerPool(newRun, golden),
			Points: points,
			Runs:   []hafi.Run64{run64},
			Model:  model,
		}
	}

	// Reference: uninterrupted single-process batched campaign.
	refPath := filepath.Join(t.TempDir(), "reference.journal")
	refCtl := hafi.NewControllerPool(newRun, golden)
	jw, err := journal.Create(refPath, refCtl.JournalHeader(points))
	if err != nil {
		t.Fatal(err)
	}
	refRun64, err := hafi.NewAVRRun64(avr.NewCore(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refCtl.RunCampaignBatched(hafi.CampaignConfig{
		Points: points, Journal: jw,
	}, refRun64); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	coord, err := NewCoordinator(points, golden.Signature, Options{
		Shards: 3, LeaseTTL: 5 * time.Second,
		Dir:  t.TempDir(),
		Spec: Spec{CPU: "avr", Prog: "chaos", Stride: 8, FaultModel: "mbu:2"},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ts := httptest.NewServer(NewHandler(coord, nil))
	defer ts.Close()

	ctx := context.Background()

	// A worker whose fault list was enumerated under a different model is
	// refused by name before it runs a single experiment — even though its
	// points (and hence the fault-list hash) would actually match.
	wrong := &Worker{
		Client: &Client{BaseURL: ts.URL, Worker: "wrong-model"},
		Runner: mkRunner("seu"),
		Dir:    t.TempDir(),
		Logf:   t.Logf,
	}
	if err := wrong.Run(ctx); err == nil || !strings.Contains(err.Error(), "fault-model mismatch") {
		t.Fatalf("seu worker joined an mbu:2 fleet: %v", err)
	}

	// The honest worker advertises "mbu" — canonically equal to the
	// coordinator's "mbu:2" — and finishes all shards on one device pool.
	w := &Worker{
		Client:       &Client{BaseURL: ts.URL, Worker: "w1"},
		Runner:       mkRunner("mbu"),
		Dir:          t.TempDir(),
		Backoff:      Backoff{Base: 20 * time.Millisecond, Max: 300 * time.Millisecond},
		PollInterval: 50 * time.Millisecond,
		Logf:         t.Logf,
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	select {
	case <-coord.MergedCh():
	case <-time.After(2 * time.Minute):
		t.Fatalf("campaign did not merge in time: %+v", coord.Status())
	}
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}
	st := coord.Status()
	if !st.Merged || st.Done != st.Shards {
		t.Fatalf("campaign not fully merged: %+v", st)
	}

	// The merged journal covers every point, carries the MBU record shape,
	// and matches the single-process reference point for point.
	merged, err := journal.Recover(coord.Output())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Torn || merged.Corrupt {
		t.Fatalf("merged journal damaged: torn=%v corrupt=%v", merged.Torn, merged.Corrupt)
	}
	if len(merged.ByIndex) != len(points) || len(merged.Records) != len(points) {
		t.Fatalf("merged journal covers %d/%d records for %d points",
			len(merged.ByIndex), len(merged.Records), len(points))
	}
	for _, rec := range merged.Records {
		if rec.Model != 1 || rec.Span != 2 || rec.Pruned {
			t.Fatalf("merged MBU record has wrong shape: %+v", rec)
		}
	}
	refCampaign, err := report.Load(refPath, "")
	if err != nil {
		t.Fatal(err)
	}
	mergedCampaign, err := report.Load(coord.Output(), "")
	if err != nil {
		t.Fatal(err)
	}
	d, err := report.Diff(refCampaign, mergedCampaign)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions() != 0 || d.Agree != len(points) {
		t.Fatalf("merged campaign diverges from single-process reference: %+v", d)
	}
}
