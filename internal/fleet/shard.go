// Package fleet is the fault-tolerant distribution layer of the campaign
// pipeline: a coordinator splits a campaign's fault space into shards
// (FF-range × cycle-window slices of the fault list), leases them over
// HTTP/JSON to worker processes under TTL leases with fencing tokens, and
// merges the per-shard journals back into one campaign journal — with
// recovery from worker crashes (lease expiry → re-lease), worker hangs
// (heartbeat timeout), duplicate completions (stale fences rejected) and
// coordinator restarts (lease table and shard status journaled to disk and
// replayed on startup). The merged journal recovers point-for-point
// identical to an uninterrupted single-process run; the journal header
// fingerprints introduced in PR 2 (golden signature + fault-list FNV) are
// what make every merge step verifiable.
package fleet

import (
	"fmt"

	"repro/internal/hafi"
	"repro/internal/journal"
)

// Shard is one leasable unit of a campaign fault space: the contiguous
// fault-list range [Lo, Hi), annotated with the FF range and cycle window
// it covers and fingerprinted so the shard journal a worker uploads can be
// verified independently of trust in the worker. For the canonical
// cycle-major fault lists (hafi.SampledFaultList) the planner cuts only at
// cycle boundaries, so every shard is a full FF-range × cycle-window block.
type Shard struct {
	ID int `json:"id"`
	// Lo and Hi bound the shard's slice of the campaign fault list.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// CycleLo/CycleHi and FFLo/FFHi describe the covered fault-space block
	// (inclusive; informational — the identity is the [Lo, Hi) range).
	CycleLo int `json:"cycle_lo"`
	CycleHi int `json:"cycle_hi"`
	FFLo    int `json:"ff_lo"`
	FFHi    int `json:"ff_hi"`
	// Hash is the FNV fingerprint of the shard's fault-point slice — the
	// FaultListHash a valid shard journal must carry in its header.
	Hash uint64 `json:"hash"`
}

// Points returns the shard's slice of the campaign fault list.
func (s Shard) Points(points []hafi.FaultPoint) []hafi.FaultPoint {
	return points[s.Lo:s.Hi]
}

// Header returns the journal header a worker's shard journal must carry:
// the campaign's golden signature over the shard's own fault-list slice.
func (s Shard) Header(golden uint64) journal.Header {
	return journal.Header{
		GoldenSignature: golden,
		NumPoints:       uint64(s.Hi - s.Lo),
		FaultListHash:   s.Hash,
	}
}

// PlanShards splits a fault list into at most n shards of near-equal size.
// Cuts land on cycle boundaries (all points of one injection cycle stay in
// one shard), so on the canonical cycle-major fault lists each shard is an
// FF-range × cycle-window block; a fault list with fewer distinct cycles
// than n yields fewer, larger shards. n < 1 plans a single shard.
func PlanShards(points []hafi.FaultPoint, n int) []Shard {
	if len(points) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	target := (len(points) + n - 1) / n
	var out []Shard
	for lo := 0; lo < len(points); {
		hi := lo + target
		if hi >= len(points) {
			hi = len(points)
		} else {
			// Extend to the end of hi-1's injection cycle so a cycle is
			// never split across shards.
			for hi < len(points) && points[hi].Cycle == points[hi-1].Cycle {
				hi++
			}
		}
		sh := Shard{
			ID: len(out), Lo: lo, Hi: hi,
			CycleLo: points[lo].Cycle, CycleHi: points[lo].Cycle,
			FFLo: points[lo].FF, FFHi: points[lo].FF,
			Hash: hafi.FaultListHash(points[lo:hi]),
		}
		for _, p := range points[lo:hi] {
			if p.Cycle < sh.CycleLo {
				sh.CycleLo = p.Cycle
			}
			if p.Cycle > sh.CycleHi {
				sh.CycleHi = p.Cycle
			}
			if p.FF < sh.FFLo {
				sh.FFLo = p.FF
			}
			if p.FF > sh.FFHi {
				sh.FFHi = p.FF
			}
		}
		out = append(out, sh)
		lo = hi
	}
	return out
}

// Spec is the campaign definition the coordinator advertises to workers:
// everything a worker needs to reconstruct the exact same golden run,
// fault list and MATE set, plus the fingerprints it must reproduce before
// it is allowed to run a single experiment. A worker whose reconstruction
// disagrees (a different binary, netlist revision or workload) refuses to
// join the fleet instead of contributing unmergeable journals.
type Spec struct {
	CPU    string `json:"cpu"`
	Prog   string `json:"prog"`
	Stride int    `json:"stride"`
	// FaultModel is the campaign fault model in -fault-model syntax
	// (hafi.ParseModelSpec); empty means "seu". Every worker must
	// reconstruct the fault list under the same model — the fault-list
	// hash would catch a mismatch too, but naming the model turns an
	// opaque fingerprint error into an actionable one.
	FaultModel string `json:"fault_model,omitempty"`
	// NoRF excludes the register file from the fault list.
	NoRF bool `json:"norf,omitempty"`
	// MATESet is the campaign MATE set in the core mateio text format
	// (empty = pruning disabled). Shipping the serialized set — rather than
	// having every worker re-run the search — guarantees all shards prune
	// against identical terms.
	MATESet string `json:"mate_set,omitempty"`
	// DisableEarlyExit turns off the convergence early-exit fleet-wide.
	DisableEarlyExit bool `json:"no_early_exit,omitempty"`
	// GoldenSignature, NumPoints and FaultListHash fingerprint the campaign
	// the coordinator planned; a worker must reproduce all three.
	GoldenSignature uint64 `json:"golden_signature"`
	NumPoints       uint64 `json:"num_points"`
	FaultListHash   uint64 `json:"fault_list_hash"`
	// LeaseTTLMillis and HeartbeatMillis advertise the lease discipline.
	LeaseTTLMillis  int64 `json:"lease_ttl_ms"`
	HeartbeatMillis int64 `json:"heartbeat_ms"`
	// TraceID identifies the campaign's distributed trace; every shard
	// trace segment a worker uploads must be minted under it.
	TraceID string `json:"trace_id,omitempty"`
}

// Header returns the campaign journal header the spec fingerprints.
func (s Spec) Header() journal.Header {
	return journal.Header{
		GoldenSignature: s.GoldenSignature,
		NumPoints:       s.NumPoints,
		FaultListHash:   s.FaultListHash,
	}
}

// canonicalModel normalises a fault-model string for comparison: empty
// means "seu", and parseable specs compare in their canonical rendering
// (so "mbu" and "mbu:2" are the same model).
func canonicalModel(s string) string {
	if s == "" {
		s = "seu"
	}
	if spec, err := hafi.ParseModelSpec(s); err == nil {
		return spec.String()
	}
	return s
}

// Check verifies a worker's local reconstruction against the coordinator's
// fingerprints, naming the first mismatched field. localModel is the fault
// model the worker enumerated its fault list under; a model mismatch is
// rejected by name, before the fingerprint comparison would flag it as an
// opaque hash difference.
func (s Spec) Check(local journal.Header, localModel string) error {
	want := s.Header()
	switch {
	case canonicalModel(localModel) != canonicalModel(s.FaultModel):
		return fmt.Errorf("fleet: fault-model mismatch: local campaign uses %q, coordinator %q",
			canonicalModel(localModel), canonicalModel(s.FaultModel))
	case local.GoldenSignature != want.GoldenSignature:
		return fmt.Errorf("fleet: golden signature mismatch: local run %016x, coordinator %016x (different binary or workload?)",
			local.GoldenSignature, want.GoldenSignature)
	case local.NumPoints != want.NumPoints:
		return fmt.Errorf("fleet: fault-list size mismatch: local %d points, coordinator %d", local.NumPoints, want.NumPoints)
	case local.FaultListHash != want.FaultListHash:
		return fmt.Errorf("fleet: fault-list hash mismatch: local %016x, coordinator %016x", local.FaultListHash, want.FaultListHash)
	}
	return nil
}
