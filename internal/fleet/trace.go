package fleet

import (
	"sync"
	"time"

	"repro/internal/obs/tracefile"
)

// SegmentEventCap bounds the events one shard's trace segment may carry.
// The batched engine emits a handful of spans per batch window, so 4096
// events cover shards far larger than the planner cuts; beyond the cap
// the recorder counts drops instead of growing (the upload stays ~100
// bytes/event ≤ ~500 KB, well under the coordinator's body limit).
const SegmentEventCap = 4096

// SegmentEvent is one span (or instant marker) captured inside a shard
// run, with absolute wall-clock timestamps so the coordinator can place
// it on the stitched campaign timeline regardless of when the worker
// process started.
type SegmentEvent struct {
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	StartUS int64  `json:"start_us"` // µs since Unix epoch (worker clock)
	DurUS   int64  `json:"dur_us"`
	Lane    int32  `json:"lane"`
	Instant bool   `json:"instant,omitempty"`
}

// TraceSegment is the bounded trace a worker uploads alongside a shard
// journal: every engine span recorded during that shard's run, stamped
// with the campaign trace ID so the coordinator can verify it stitches
// into the right timeline.
type TraceSegment struct {
	TraceID string         `json:"trace_id"`
	Shard   int            `json:"shard"`
	Worker  string         `json:"worker"`
	Events  []SegmentEvent `json:"events"`
	Dropped int64          `json:"dropped,omitempty"`
}

// SegmentRecorder is a bounded in-memory obs.Tracer. The worker tees it
// next to any operator-attached tracer for the duration of one shard run
// (obs.TeeTracer), then snapshots the recording into the TraceSegment it
// uploads with the shard journal. All methods are safe for concurrent
// use; a nil recorder is the disabled state.
type SegmentRecorder struct {
	mu      sync.Mutex
	events  []SegmentEvent
	max     int
	dropped int64

	// Own lane allocator for when the recorder is the only tracer (no
	// operator -trace file); when teed, the primary's lanes arrive via
	// Complete and these are unused.
	lanes    []bool
	freeHint int32
}

// NewSegmentRecorder returns a recorder bounded at max events (<=0 uses
// SegmentEventCap).
func NewSegmentRecorder(max int) *SegmentRecorder {
	if max <= 0 {
		max = SegmentEventCap
	}
	return &SegmentRecorder{max: max}
}

// BeginLane implements obs.Tracer.
func (r *SegmentRecorder) BeginLane() int32 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := int(r.freeHint); i < len(r.lanes); i++ {
		if !r.lanes[i] {
			r.lanes[i] = true
			r.freeHint = int32(i) + 1
			return int32(i)
		}
	}
	r.lanes = append(r.lanes, true)
	lane := int32(len(r.lanes) - 1)
	r.freeHint = lane + 1
	return lane
}

// EndLane implements obs.Tracer.
func (r *SegmentRecorder) EndLane(lane int32) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if int(lane) < len(r.lanes) {
		r.lanes[lane] = false
		if lane < r.freeHint {
			r.freeHint = lane
		}
	}
	r.mu.Unlock()
}

// Complete implements obs.Tracer.
func (r *SegmentRecorder) Complete(name, detail string, start time.Time, dur time.Duration, lane int32) {
	r.add(SegmentEvent{
		Name:    name,
		Detail:  detail,
		StartUS: start.UnixMicro(),
		DurUS:   dur.Microseconds(),
		Lane:    lane,
	})
}

// Instant implements obs.Tracer.
func (r *SegmentRecorder) Instant(name, detail string, at time.Time) {
	r.add(SegmentEvent{Name: name, Detail: detail, StartUS: at.UnixMicro(), Instant: true})
}

func (r *SegmentRecorder) add(ev SegmentEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.events) >= r.max {
		r.dropped++
	} else {
		r.events = append(r.events, ev)
	}
	r.mu.Unlock()
}

// Snapshot freezes the recording into an uploadable segment. Lane numbers
// are compacted to 0..n-1 in order of first appearance so the stitched
// timeline has no gaps regardless of which lanes the worker's own trace
// writer happened to hand out.
func (r *SegmentRecorder) Snapshot(traceID string, shard int, worker string) *TraceSegment {
	seg := &TraceSegment{TraceID: traceID, Shard: shard, Worker: worker}
	if r == nil {
		return seg
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seg.Dropped = r.dropped
	seg.Events = make([]SegmentEvent, len(r.events))
	copy(seg.Events, r.events)
	compact := map[int32]int32{}
	for i := range seg.Events {
		lane := seg.Events[i].Lane
		mapped, ok := compact[lane]
		if !ok {
			mapped = int32(len(compact))
			compact[lane] = mapped
		}
		seg.Events[i].Lane = mapped
	}
	return seg
}

// shardPID maps a shard to its stitched-trace process group. The
// coordinator itself is pid 1; each shard gets its own process row group
// so Perfetto renders one collapsible row block per shard.
func shardPID(shard int) int32 { return int32(100 + shard) }

// stitchSegment writes one shard's trace segment into the coordinator's
// timeline under the shard's process group. Worker events land on
// tid = lane+1 (tid 0 holds the coordinator-side shard span), and every
// timestamp is clamped into the coordinator-observed [grant, complete]
// window: worker clocks may be skewed against the coordinator's, and
// clamping guarantees the stitched spans nest inside their shard span,
// which in turn nests inside the campaign root.
func stitchSegment(tw *tracefile.Writer, seg *TraceSegment, granted, completed time.Time) {
	if tw == nil || seg == nil {
		return
	}
	winLo, winHi := granted.UnixMicro(), completed.UnixMicro()
	pid := shardPID(seg.Shard)
	for _, ev := range seg.Events {
		lo := clampInt64(ev.StartUS, winLo, winHi)
		hi := clampInt64(ev.StartUS+ev.DurUS, lo, winHi)
		at := time.UnixMicro(lo)
		if ev.Instant {
			tw.InstantOn(pid, ev.Lane+1, ev.Name, ev.Detail, at)
			continue
		}
		tw.CompleteOn(pid, ev.Lane+1, ev.Name, ev.Detail, at, time.Duration(hi-lo)*time.Microsecond)
	}
}

func clampInt64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
