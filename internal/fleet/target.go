package fleet

import (
	"fmt"

	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/hafi"
	"repro/internal/netlist"
	"repro/internal/progs"
)

// Target bundles everything the coordinator and worker binaries need to
// instantiate one (cpu, workload) pair: the netlist, the register-file
// group names (for -norf fault lists), and run factories for the golden
// reference and the lane-parallel campaign engine. Centralised here so the
// two fleet binaries and cmd/campaign cannot drift apart on what
// "avr"/"fib" mean.
type Target struct {
	NL *netlist.Netlist
	// RFGroups are the register-file FF groups, excluded when NoRF is set.
	RFGroups []string
	NewRun   func() hafi.Run
	NewRun64 func() (hafi.Run64, error)
	// NewRunW builds a wide device with the given lane count (a positive
	// multiple of 64); fleet workers default to hafi.DefaultCampaignLanes.
	NewRunW func(lanes int) (hafi.RunW, error)
}

// NewTarget resolves a cpu ("avr", "msp430") and workload ("fib", "conv",
// "sort") pair.
func NewTarget(cpuName, progName string) (*Target, error) {
	switch cpuName {
	case "avr":
		var p []uint16
		switch progName {
		case "fib":
			p = progs.AVRFib()
		case "conv":
			p = progs.AVRConv()
		case "sort":
			p = progs.AVRSort()
		default:
			return nil, fmt.Errorf("fleet: unknown workload %q (want fib, conv or sort)", progName)
		}
		return &Target{
			NL:       avr.NewCore().NL,
			RFGroups: []string{avr.GroupRegFile},
			NewRun:   func() hafi.Run { return hafi.NewAVRRun(avr.NewCore(), p) },
			NewRun64: func() (hafi.Run64, error) { return hafi.NewAVRRun64(avr.NewCore(), p) },
			NewRunW:  func(lanes int) (hafi.RunW, error) { return hafi.NewAVRRunW(avr.NewCore(), p, lanes) },
		}, nil
	case "msp430":
		var p []uint16
		switch progName {
		case "fib":
			p = progs.MSP430Fib()
		case "conv":
			p = progs.MSP430Conv()
		case "sort":
			p = progs.MSP430Sort()
		default:
			return nil, fmt.Errorf("fleet: unknown workload %q (want fib, conv or sort)", progName)
		}
		return &Target{
			NL:       msp430.NewCore().NL,
			RFGroups: []string{msp430.GroupRegFile},
			NewRun:   func() hafi.Run { return hafi.NewMSP430Run(msp430.NewCore(), p) },
			NewRun64: func() (hafi.Run64, error) { return hafi.NewMSP430Run64(msp430.NewCore(), p) },
			NewRunW:  func(lanes int) (hafi.RunW, error) { return hafi.NewMSP430RunW(msp430.NewCore(), p, lanes) },
		}, nil
	}
	return nil, fmt.Errorf("fleet: unknown cpu %q (want avr or msp430)", cpuName)
}
