package fleet

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTelemetryDeltaClamped: a worker restart resets its cumulative
// counters, so a snapshot below the previous one must fold as a zero
// delta, never a negative one.
func TestTelemetryDeltaClamped(t *testing.T) {
	prev := &Telemetry{Done: 100, Injections: 500, Outcomes: map[string]int64{"sdc": 9}}
	next := &Telemetry{Done: 10, Injections: 600, Outcomes: map[string]int64{"sdc": 2}}
	d := next.sub(prev)
	if d.Done != 0 {
		t.Fatalf("regressed Done delta = %d, want clamped to 0", d.Done)
	}
	if d.Injections != 100 {
		t.Fatalf("Injections delta = %d, want 100", d.Injections)
	}
	if d.Outcomes["sdc"] != 0 {
		t.Fatalf("regressed outcome delta = %d, want clamped to 0", d.Outcomes["sdc"])
	}
}

// heartbeatTel is a convenience cumulative snapshot.
func heartbeatTel(done int64) *Telemetry {
	return &Telemetry{ShardDone: done, Done: done, Injections: done * 3, Batches: done / 2, LaneSum: float64(done)}
}

// TestProgressFromHeartbeatTelemetry: before any telemetry the ETA is
// unknown (-1); once heartbeats carry cumulative snapshots the progress
// view folds live shard progress into points_done and converges the ETA
// to remaining/rate.
func TestProgressFromHeartbeatTelemetry(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, t.TempDir(), clock, testPoints(100, 5), 2)

	p := c.Status().Progress
	if p.PointsTotal != 100 || p.PointsDone != 0 {
		t.Fatalf("fresh progress = %d/%d, want 0/100", p.PointsDone, p.PointsTotal)
	}
	if p.ETASeconds != -1 {
		t.Fatalf("fresh ETA = %v, want -1 (unknown)", p.ETASeconds)
	}

	g := mustLease(t, c, "w1")
	// Two heartbeats one second apart, 10 points in between: rate 10/s.
	clock.Advance(time.Second)
	if err := c.Heartbeat("w1", g.Shard, g.Fence, heartbeatTel(10)); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	if err := c.Heartbeat("w1", g.Shard, g.Fence, heartbeatTel(20)); err != nil {
		t.Fatal(err)
	}

	st := c.Status()
	p = st.Progress
	if p.PointsDone != 20 {
		t.Fatalf("points done = %d, want 20 (live lease progress)", p.PointsDone)
	}
	if p.Rate != 10 {
		t.Fatalf("rate = %v, want 10 points/s", p.Rate)
	}
	if want := float64(100-20) / 10; p.ETASeconds != want {
		t.Fatalf("ETA = %v, want %v", p.ETASeconds, want)
	}
	// The first snapshot is the delta baseline (folding it whole would
	// double-count a worker rejoining a restarted coordinator), so totals
	// cover the second interval only: 60 cumulative - 30 baseline.
	if p.Injections != 30 {
		t.Fatalf("injections = %d, want 30", p.Injections)
	}
	if len(st.Workers) != 1 || st.Workers[0].Worker != "w1" || st.Workers[0].Shard != g.Shard {
		t.Fatalf("workers = %+v", st.Workers)
	}
	if len(st.ShardMap) != 2 {
		t.Fatalf("shard map has %d rows, want 2", len(st.ShardMap))
	}

	// Completing the shard moves its points from lease-progress to done
	// and detaches the worker from the shard in the status view.
	if err := c.Complete("w1", g.Shard, g.Fence, grantJournal(t, g), nil); err != nil {
		t.Fatal(err)
	}
	st = c.Status()
	if got := st.Progress.PointsDone; got != int64(g.Hi-g.Lo) {
		t.Fatalf("points done after completion = %d, want %d", got, g.Hi-g.Lo)
	}
	if st.Workers[0].Shard != -1 {
		t.Fatalf("worker still pinned to shard %d after completion", st.Workers[0].Shard)
	}
}

// anomalyEvents counts JSONL event-log lines matching the given event name.
func anomalyEvents(buf *bytes.Buffer, event string) int {
	n := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, `"event":"`+event+`"`) {
			n++
		}
	}
	return n
}

// newAnomalyCoordinator builds a coordinator with an event log attached so
// the tests can assert fire-once/clear-once behavior.
func newAnomalyCoordinator(t *testing.T, clock *fakeClock, shards int, buf *bytes.Buffer) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(testPoints(1000, 5), testGolden, Options{
		Shards:   shards,
		LeaseTTL: 10 * time.Second, Heartbeat: 2 * time.Second,
		Dir: t.TempDir(), Now: clock.Now,
		Events: obs.NewEventLog(buf, "test", obs.LevelInfo),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestStragglerFiresOnceAndClears: a worker running far below the fleet
// median raises exactly one straggler anomaly however often status is
// polled, and the anomaly clears (once) when the worker recovers.
func TestStragglerFiresOnceAndClears(t *testing.T) {
	clock := newFakeClock()
	var events bytes.Buffer
	c := newAnomalyCoordinator(t, clock, 4, &events)

	gFast := mustLease(t, c, "fast")
	gSlow := mustLease(t, c, "slow")
	// Establish rates: fast does 20 points/s, slow 1 point/s. The median of
	// two is their mean (10.5); the 0.35 default threshold is ~3.7.
	fast, slow := int64(0), int64(0)
	hb := func() {
		clock.Advance(time.Second)
		fast += 20
		slow++
		if err := c.Heartbeat("fast", gFast.Shard, gFast.Fence, heartbeatTel(fast)); err != nil {
			t.Fatal(err)
		}
		if err := c.Heartbeat("slow", gSlow.Shard, gSlow.Fence, heartbeatTel(slow)); err != nil {
			t.Fatal(err)
		}
	}
	hb()
	hb()

	st := c.Status()
	if len(st.Anomalies) != 1 || st.Anomalies[0].Type != AnomalyStraggler || st.Anomalies[0].Subject != "slow" {
		t.Fatalf("anomalies = %+v, want one straggler on %q", st.Anomalies, "slow")
	}
	for _, w := range st.Workers {
		if (w.Worker == "slow") != w.Straggler {
			t.Fatalf("worker %s straggler flag = %v", w.Worker, w.Straggler)
		}
	}
	// Fire-once: more heartbeats and more status polls while the condition
	// holds must not emit a second raise event.
	hb()
	c.Status()
	c.Status()
	if n := anomalyEvents(&events, "anomaly.straggler"); n != 1 {
		t.Fatalf("straggler raised %d times, want exactly 1\n%s", n, events.String())
	}

	// Recovery: the slow worker speeds up to fleet rate; the EWMA catches
	// up within a few heartbeats and the anomaly clears exactly once.
	for i := 0; i < 6; i++ {
		clock.Advance(time.Second)
		fast += 20
		slow += 20
		if err := c.Heartbeat("fast", gFast.Shard, gFast.Fence, heartbeatTel(fast)); err != nil {
			t.Fatal(err)
		}
		if err := c.Heartbeat("slow", gSlow.Shard, gSlow.Fence, heartbeatTel(slow)); err != nil {
			t.Fatal(err)
		}
	}
	st = c.Status()
	if len(st.Anomalies) != 0 {
		t.Fatalf("anomalies after recovery = %+v, want none", st.Anomalies)
	}
	c.Status()
	if n := anomalyEvents(&events, "anomaly.clear"); n != 1 {
		t.Fatalf("anomaly cleared %d times, want exactly 1\n%s", n, events.String())
	}
}

// TestLeaseDriftAnomaly: a lease whose heartbeats stop mid-run drifts
// toward expiry; the anomaly fires once below 25%% remaining TTL and
// clears when a heartbeat renews the lease.
func TestLeaseDriftAnomaly(t *testing.T) {
	clock := newFakeClock()
	var events bytes.Buffer
	c := newAnomalyCoordinator(t, clock, 2, &events)

	g := mustLease(t, c, "w1")
	// 8s into a 10s TTL: 2s remaining < 2.5s threshold.
	clock.Advance(8 * time.Second)
	st := c.Status()
	if len(st.Anomalies) != 1 || st.Anomalies[0].Type != AnomalyLeaseDrift {
		t.Fatalf("anomalies = %+v, want one lease-drift", st.Anomalies)
	}
	if want := fmt.Sprintf("shard %d", g.Shard); st.Anomalies[0].Subject != want {
		t.Fatalf("drift subject = %q, want %q", st.Anomalies[0].Subject, want)
	}
	c.Status() // still drifting: must not raise again
	if n := anomalyEvents(&events, "anomaly.lease-drift"); n != 1 {
		t.Fatalf("lease-drift raised %d times, want exactly 1\n%s", n, events.String())
	}

	// A heartbeat renews the full TTL: the anomaly clears.
	if err := c.Heartbeat("w1", g.Shard, g.Fence, nil); err != nil {
		t.Fatal(err)
	}
	if st := c.Status(); len(st.Anomalies) != 0 {
		t.Fatalf("anomalies after renewal = %+v, want none", st.Anomalies)
	}
	if n := anomalyEvents(&events, "anomaly.clear"); n != 1 {
		t.Fatalf("anomaly cleared %d times, want exactly 1\n%s", n, events.String())
	}
}

// TestLeaseDriftClearsOnExpiry: if the lease actually expires (shard back
// to pending), the drift anomaly must clear rather than stick to a lease
// that no longer exists.
func TestLeaseDriftClearsOnExpiry(t *testing.T) {
	clock := newFakeClock()
	var events bytes.Buffer
	c := newAnomalyCoordinator(t, clock, 2, &events)

	mustLease(t, c, "w1")
	clock.Advance(8 * time.Second)
	if st := c.Status(); len(st.Anomalies) != 1 {
		t.Fatalf("anomalies = %+v, want the drifting lease", st.Anomalies)
	}
	clock.Advance(3 * time.Second) // past the 10s TTL: sweep expires the lease
	if st := c.Status(); len(st.Anomalies) != 0 {
		t.Fatalf("anomalies after expiry = %+v, want none", st.Anomalies)
	}
}

// TestAggregatorConcurrentHeartbeats hammers the coordinator with
// concurrent telemetry-bearing heartbeats, status polls and metric
// scrapes. Run under -race this is the aggregator's data-race proof.
func TestAggregatorConcurrentHeartbeats(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := NewCoordinator(testPoints(800, 5), testGolden, Options{
		Shards:   8,
		LeaseTTL: 10 * time.Second, Heartbeat: 2 * time.Second,
		Dir: t.TempDir(), Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers, beats = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", i)
			g, status, err := c.Lease(name)
			if err != nil || status != "lease" {
				t.Errorf("%s: lease status %q err %v", name, status, err)
				return
			}
			for done := int64(1); done <= beats; done++ {
				if err := c.Heartbeat(name, g.Shard, g.Fence, heartbeatTel(done)); err != nil {
					t.Errorf("%s: heartbeat: %v", name, err)
					return
				}
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				st := c.Status()
				if st.Progress.PointsDone < 0 || st.Progress.PointsDone > 800 {
					t.Errorf("points done %d out of range", st.Progress.PointsDone)
				}
				var sink bytes.Buffer
				if err := obs.WritePrometheus(&sink, reg); err != nil {
					t.Errorf("scrape: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	st := c.Status()
	if got := st.Progress.PointsDone; got != workers*beats {
		t.Fatalf("points done = %d, want %d (8 workers × 50 beats)", got, workers*beats)
	}
	if len(st.Workers) != workers {
		t.Fatalf("worker view has %d rows, want %d", len(st.Workers), workers)
	}
}
