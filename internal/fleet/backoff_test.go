package fleet

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second,
		2 * time.Second, 2 * time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	// A huge attempt count must not overflow into nonsense.
	if got := b.Delay(10_000); got != 2*time.Second {
		t.Errorf("Delay(10000) = %v, want the cap", got)
	}
}

func TestBackoffJitterBounded(t *testing.T) {
	// With Rand pinned to the extremes, the jittered delay must land exactly
	// on the bounds [d(1-J), d(1+J)] — and never outside for anything between.
	base := 1 * time.Second
	for _, tc := range []struct {
		rand float64
		want time.Duration
	}{
		{0, 800 * time.Millisecond},
		{0.5, 1 * time.Second},
		{0.999999, time.Duration(0.8*float64(time.Second) + 0.999999*0.4*float64(time.Second))},
	} {
		b := Backoff{Base: base, Jitter: 0.2, Rand: func() float64 { return tc.rand }}
		got := b.JitteredDelay(0)
		if d := got - tc.want; d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("JitteredDelay(rand=%v) = %v, want %v", tc.rand, got, tc.want)
		}
		lo, hi := 800*time.Millisecond, 1200*time.Millisecond
		if got < lo || got > hi {
			t.Errorf("JitteredDelay(rand=%v) = %v outside [%v, %v]", tc.rand, got, lo, hi)
		}
	}
	// Jitter < 0 disables: exact delay.
	b := Backoff{Base: base, Jitter: -1, Rand: func() float64 { t.Fatal("rand consulted with jitter disabled"); return 0 }}
	if got := b.JitteredDelay(0); got != base {
		t.Errorf("jitter-disabled delay = %v, want %v", got, base)
	}
}

func TestBackoffRetryDeterministic(t *testing.T) {
	// Injected Rand and Sleep make the whole retry schedule observable
	// without a single real timer.
	var slept []time.Duration
	b := Backoff{
		Base: 10 * time.Millisecond, Factor: 2, Jitter: 0.5,
		Rand:  func() float64 { return 0.5 }, // midpoint: jitter is identity
		Sleep: func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil },
	}
	calls := 0
	err := b.Retry(context.Background(), 4, func() error { calls++; return fmt.Errorf("nope %d", calls) })
	if err == nil || err.Error() != "nope 4" {
		t.Fatalf("err = %v, want the last failure", err)
	}
	if calls != 4 {
		t.Fatalf("f called %d times, want 4", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

func TestBackoffRetrySucceedsAndStops(t *testing.T) {
	calls := 0
	var retried []int
	b := Backoff{
		Sleep:   func(context.Context, time.Duration) error { return nil },
		OnRetry: func(attempt int, err error) { retried = append(retried, attempt) },
	}
	err := b.Retry(context.Background(), 0, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on call 3", err, calls)
	}
	if len(retried) != 2 || retried[0] != 0 || retried[1] != 1 {
		t.Fatalf("OnRetry saw %v, want [0 1]", retried)
	}
}

func TestBackoffPermanentStopsImmediately(t *testing.T) {
	calls := 0
	sentinel := errors.New("fenced")
	b := Backoff{Sleep: func(context.Context, time.Duration) error {
		t.Fatal("slept after a permanent error")
		return nil
	}}
	err := b.Retry(context.Background(), 0, func() error { calls++; return Permanent(sentinel) })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the unwrapped sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("f called %d times after Permanent, want 1", calls)
	}
}

func TestBackoffCancellationAbortsMidSleep(t *testing.T) {
	// Real timer path: a retry sleeping for minutes must return promptly
	// when the context dies, reporting both the cancellation and the error
	// that was being retried.
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	b := Backoff{Base: time.Hour, Jitter: -1}
	start := time.Now()
	failure := errors.New("still down")
	err := b.Retry(ctx, 0, func() error { return failure })
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry took %v to notice cancellation", elapsed)
	}
	if !errors.Is(err, context.Canceled) || !errors.Is(err, failure) {
		t.Fatalf("err = %v, want both context.Canceled and the retried error", err)
	}
}
