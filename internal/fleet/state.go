package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// The coordinator's durable state is an append-only JSON-lines event log
// (state.log in the coordinator directory), replayed on startup. Every
// line is one complete JSON object; a torn final line (crash mid-append)
// is tolerated and dropped, mirroring the campaign journal's torn-tail
// contract. Lease *extensions* are deliberately not journaled: after a
// restart every replayed lease is granted a fresh TTL, so a live worker
// keeps its shard by simply heartbeating again, while a dead one expires.
const (
	evPlan     = "plan"     // campaign identity + shard plan fingerprint
	evGrant    = "grant"    // lease granted (shard, fence, worker)
	evComplete = "complete" // shard journal verified and spooled
	evMerged   = "merged"   // campaign journal merged
)

// stateEvent is one line of the coordinator state log.
type stateEvent struct {
	Ev     string `json:"ev"`
	Shard  int    `json:"shard,omitempty"`
	Fence  uint64 `json:"fence,omitempty"`
	Worker string `json:"worker,omitempty"`
	// File is the spool file of a completed shard's journal.
	File string `json:"file,omitempty"`
	// Campaign identity (plan event only).
	Golden uint64 `json:"golden,omitempty"`
	Points uint64 `json:"points,omitempty"`
	Hash   uint64 `json:"hash,omitempty"`
	Shards int    `json:"shards,omitempty"`
}

// stateLog appends coordinator events durably. Append is mutex-guarded so
// concurrent HTTP handlers never interleave partial lines.
type stateLog struct {
	mu sync.Mutex
	f  *os.File
}

// replayStateLog reads the event log at path (no error if absent) and
// returns the intact event prefix. A line that fails to parse — the torn
// tail of a crashed append — ends the replay; everything before it stands.
func replayStateLog(path string) ([]stateEvent, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: state log: %w", err)
	}
	defer f.Close()
	var events []stateEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev stateEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			break // torn tail: keep the intact prefix
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: state log: %w", err)
	}
	return events, nil
}

// openStateLog opens (creating if needed) the event log for appending.
func openStateLog(path string) (*stateLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: state log: %w", err)
	}
	return &stateLog{f: f}, nil
}

// append durably logs one event (write + fsync: a granted lease or a
// completed shard must survive a coordinator crash, or a restart could
// hand out conflicting fences).
func (l *stateLog) append(ev stateEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("fleet: state log: %w", err)
	}
	data = append(data, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(data); err != nil {
		return fmt.Errorf("fleet: state log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("fleet: state log: %w", err)
	}
	return nil
}

func (l *stateLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
