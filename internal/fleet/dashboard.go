package fleet

// dashboardHTML is the live campaign dashboard served on /dashboard: a
// single self-contained page (no external assets, frameworks or fonts —
// it must render on an air-gapped lab network) that polls /status every
// two seconds and draws the shard map, per-worker throughput table, the
// fleet progress bar with ETA, and the anomaly feed.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>campaignd dashboard</title>
<style>
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
         margin: 1.5em auto; max-width: 70em; padding: 0 1em;
         background: #101418; color: #d8dee6; }
  h1 { font-size: 16px; } h2 { font-size: 13px; margin: 1.4em 0 .4em; color: #9ab; }
  small, .dim { color: #7a8694; }
  #bar { height: 14px; background: #222a33; border-radius: 3px; overflow: hidden; }
  #bar div { height: 100%; background: #3fa96b; width: 0; transition: width .5s; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: 2px 10px 2px 0; border-bottom: 1px solid #222a33; }
  th { color: #7a8694; font-weight: normal; }
  #shards { display: flex; flex-wrap: wrap; gap: 3px; }
  #shards span { width: 22px; height: 22px; border-radius: 3px; display: inline-flex;
                 align-items: center; justify-content: center; font-size: 9px;
                 background: #222a33; color: #7a8694; }
  #shards .leased { background: #2b5d8a; color: #cfe3f5; }
  #shards .done   { background: #2f7d4f; color: #d9f2e3; }
  .warn { color: #e2b340; } .bad { color: #e25d4f; }
  #err { color: #e25d4f; }
</style>
</head>
<body>
<h1>campaignd <small id="trace"></small></h1>
<div id="bar"><div></div></div>
<p><span id="points"></span> · <span id="rate"></span> · ETA <span id="eta"></span>
   · lanes <span id="lanes"></span> <span id="err"></span></p>
<h2>shards</h2>
<div id="shards"></div>
<h2>workers</h2>
<table id="workers"><thead>
<tr><th>worker</th><th>shard</th><th>done</th><th>points/s</th><th>last seen</th><th></th></tr>
</thead><tbody></tbody></table>
<h2>anomalies</h2>
<table id="anomalies"><thead>
<tr><th>since</th><th>type</th><th>subject</th><th>detail</th></tr>
</thead><tbody></tbody></table>
<script>
function fmtETA(s) {
  if (s < 0) return "--:--";
  s = Math.round(s);
  var m = Math.floor(s / 60), sec = s % 60;
  return (m < 10 ? "0" : "") + m + ":" + (sec < 10 ? "0" : "") + sec;
}
function esc(s) {
  var d = document.createElement("span"); d.textContent = String(s); return d.innerHTML;
}
async function tick() {
  try {
    var r = await fetch("/status"), st = await r.json();
    document.getElementById("err").textContent = "";
    document.getElementById("trace").textContent = "trace " + st.trace_id +
      (st.merged ? " · merged" : "");
    var p = st.progress, frac = p.points_total ? p.points_done / p.points_total : 0;
    document.querySelector("#bar div").style.width = (100 * frac).toFixed(1) + "%";
    document.getElementById("points").textContent =
      p.points_done + "/" + p.points_total + " points (" + (100 * frac).toFixed(1) + "%)";
    document.getElementById("rate").textContent = p.rate.toFixed(1) + " points/s";
    document.getElementById("eta").textContent = fmtETA(p.eta_seconds);
    document.getElementById("lanes").textContent = (100 * p.lane_occupancy).toFixed(0) + "%";
    var sh = document.getElementById("shards"); sh.innerHTML = "";
    (st.shard_map || []).forEach(function (s) {
      var el = document.createElement("span");
      el.className = s.state; el.textContent = s.id;
      el.title = "shard " + s.id + " [" + s.lo + "," + s.hi + ") " + s.state +
        (s.worker ? " · " + s.worker : "") + " · " + s.done + " done";
      sh.appendChild(el);
    });
    var wb = document.querySelector("#workers tbody"); wb.innerHTML = "";
    (st.workers || []).forEach(function (w) {
      var age = ((Date.now() - w.last_seen_unix_ms) / 1000).toFixed(1) + "s ago";
      wb.insertAdjacentHTML("beforeend", "<tr><td>" + esc(w.worker) + "</td><td>" +
        (w.shard >= 0 ? w.shard : "·") + "</td><td>" + w.done + "</td><td>" +
        w.rate.toFixed(1) + "</td><td class=dim>" + esc(age) + "</td><td class=warn>" +
        (w.straggler ? "straggler" : "") + "</td></tr>");
    });
    var ab = document.querySelector("#anomalies tbody"); ab.innerHTML = "";
    (st.anomalies || []).forEach(function (a) {
      ab.insertAdjacentHTML("beforeend", "<tr><td class=dim>" +
        esc(new Date(a.since_unix_ms).toLocaleTimeString()) + "</td><td class=" +
        (a.type === "straggler" ? "warn" : "bad") + ">" + esc(a.type) + "</td><td>" +
        esc(a.subject) + "</td><td>" + esc(a.msg) + "</td></tr>");
    });
  } catch (e) {
    document.getElementById("err").textContent = "status fetch failed: " + e;
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
