package fleet

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// Anomaly types surfaced in Status.Anomalies and on the event log.
const (
	// AnomalyStraggler flags a worker whose throughput has fallen below a
	// configurable fraction of the fleet median.
	AnomalyStraggler = "straggler"
	// AnomalyLeaseDrift flags a leased shard whose remaining TTL has
	// drifted below a quarter of the lease TTL — its worker's heartbeats
	// are late and the lease is trending toward expiry.
	AnomalyLeaseDrift = "lease-drift"
)

// Anomaly is one active fleet anomaly. Anomalies fire exactly once per
// incident (a raise event when detected, a clear event on recovery) and
// stay listed in /status while active.
type Anomaly struct {
	Type    string `json:"type"`
	Subject string `json:"subject"` // worker name or "shard N"
	Msg     string `json:"msg"`
	SinceMS int64  `json:"since_unix_ms"`
}

// WorkerStatus is the live per-worker view in /status.
type WorkerStatus struct {
	Worker     string  `json:"worker"`
	Shard      int     `json:"shard"` // -1 when not currently leasing
	Done       int64   `json:"done"`  // lifetime classified points
	Rate       float64 `json:"rate"`  // points/s (EWMA over heartbeats)
	LastSeenMS int64   `json:"last_seen_unix_ms"`
	Straggler  bool    `json:"straggler,omitempty"`
}

// aggregator folds per-worker heartbeat telemetry into fleet-wide
// totals, maintains per-worker EWMA throughput, and runs the anomaly
// detectors. It holds no lock of its own: every method runs under the
// coordinator's mu, which already serialises heartbeats, completions and
// status snapshots.
type aggregator struct {
	stragglerFraction float64
	driftFraction     float64
	activeWindow      time.Duration

	workers   map[string]*workerAgg
	totals    Telemetry // fleet-lifetime folded deltas
	outcomes  map[string]int64
	anomalies map[string]*Anomaly

	events *obs.EventLog
	met    *aggMetrics
}

// workerAgg is one worker's folding state.
type workerAgg struct {
	last     Telemetry // previous cumulative sample (delta baseline)
	sampled  bool
	lastSeen time.Time
	rate     float64 // EWMA points/s
	haveRate bool
	shard    int // currently heartbeating shard (-1 after completion)
	done     int64
}

// ewmaAlpha weights the newest heartbeat's instantaneous rate. 0.4 makes
// the rate settle within ~4 heartbeats yet ride out single slow batches.
const ewmaAlpha = 0.4

func newAggregator(opts Options) *aggregator {
	frac := opts.StragglerFraction
	if frac <= 0 || frac >= 1 {
		frac = 0.35
	}
	return &aggregator{
		stragglerFraction: frac,
		driftFraction:     0.25,
		activeWindow:      3 * opts.Heartbeat,
		workers:           map[string]*workerAgg{},
		outcomes:          map[string]int64{},
		anomalies:         map[string]*Anomaly{},
		events:            opts.Events,
		met:               newAggMetrics(opts.Obs),
	}
}

// fold absorbs one heartbeat's telemetry snapshot: the delta against the
// worker's previous snapshot is added to the fleet totals (and mirrored
// to labeled registry counters), and the worker's EWMA throughput is
// advanced from the points-done delta over the inter-heartbeat interval.
func (a *aggregator) fold(worker string, shard int, tel *Telemetry, now time.Time) {
	if tel == nil {
		tel = &Telemetry{}
	}
	wa := a.workers[worker]
	if wa == nil {
		wa = &workerAgg{shard: -1}
		a.workers[worker] = wa
	}
	if wa.sampled {
		d := tel.sub(&wa.last)
		a.totals.Done += d.Done
		a.totals.Injections += d.Injections
		a.totals.Pruned += d.Pruned
		a.totals.Converged += d.Converged
		a.totals.CyclesSaved += d.CyclesSaved
		a.totals.Batches += d.Batches
		a.totals.LaneSum += d.LaneSum
		for k, v := range d.Outcomes {
			a.outcomes[k] += v
		}
		a.met.fold(worker, d)
		if dt := now.Sub(wa.lastSeen).Seconds(); dt > 0 {
			inst := float64(d.Done) / dt
			if wa.haveRate {
				wa.rate = ewmaAlpha*inst + (1-ewmaAlpha)*wa.rate
			} else {
				wa.rate = inst
				wa.haveRate = true
			}
		}
	}
	wa.last = *tel
	wa.sampled = true
	wa.lastSeen = now
	wa.shard = shard
	wa.done = tel.Done
}

// workerDone notes that worker finished (or lost) its shard, so the
// status view stops pinning it to a stale shard id.
func (a *aggregator) workerDone(worker string) {
	if wa := a.workers[worker]; wa != nil {
		wa.shard = -1
	}
}

// active returns the workers heard from within the activity window.
func (a *aggregator) active(now time.Time) []*workerAgg {
	var out []*workerAgg
	for _, wa := range a.workers {
		if wa.haveRate && now.Sub(wa.lastSeen) <= a.activeWindow {
			out = append(out, wa)
		}
	}
	return out
}

// fleetRate is the summed EWMA throughput of the active workers.
func (a *aggregator) fleetRate(now time.Time) float64 {
	var sum float64
	for _, wa := range a.active(now) {
		sum += wa.rate
	}
	return sum
}

// detect runs the anomaly detectors against the current lease table.
// Each anomaly fires exactly once when its condition first holds and
// clears exactly once when it stops holding.
func (a *aggregator) detect(now time.Time, shards []*shardSlot, ttl time.Duration) {
	// Straggler: a worker's EWMA rate below stragglerFraction of the
	// median rate across active workers. Needs at least two active
	// workers — with one there is no fleet to lag behind.
	active := a.active(now)
	if len(active) >= 2 {
		rates := make([]float64, len(active))
		for i, wa := range active {
			rates[i] = wa.rate
		}
		sort.Float64s(rates)
		median := rates[len(rates)/2]
		if len(rates)%2 == 0 {
			median = (rates[len(rates)/2-1] + rates[len(rates)/2]) / 2
		}
		if median > 0 {
			threshold := a.stragglerFraction * median
			for name, wa := range a.workers {
				key := AnomalyStraggler + "/" + name
				isActive := wa.haveRate && now.Sub(wa.lastSeen) <= a.activeWindow
				if isActive && wa.rate < threshold {
					a.raise(key, AnomalyStraggler, name, now,
						"throughput %.1f points/s below %.0f%% of fleet median %.1f",
						wa.rate, a.stragglerFraction*100, median)
				} else {
					a.clear(key, now)
				}
			}
		}
	} else {
		for name := range a.workers {
			a.clear(AnomalyStraggler+"/"+name, now)
		}
	}

	// Lease drift: a leased shard whose remaining TTL is below
	// driftFraction of the full TTL. Healthy heartbeats renew the full
	// TTL every TTL/4, so remaining time only sinks this low when
	// several consecutive heartbeats went missing.
	for _, sh := range shards {
		key := fmt.Sprintf("%s/shard-%d", AnomalyLeaseDrift, sh.ID)
		remaining := sh.deadline.Sub(now)
		if sh.state == ShardLeased && remaining < time.Duration(a.driftFraction*float64(ttl)) {
			a.raise(key, AnomalyLeaseDrift, fmt.Sprintf("shard %d", sh.ID), now,
				"lease held by %s has %v of %v TTL left", sh.worker, remaining.Round(time.Millisecond), ttl)
		} else {
			a.clear(key, now)
		}
	}
}

func (a *aggregator) raise(key, typ, subject string, now time.Time, format string, args ...interface{}) {
	if _, ok := a.anomalies[key]; ok {
		return // already firing: one event per incident
	}
	an := &Anomaly{Type: typ, Subject: subject, Msg: fmt.Sprintf(format, args...), SinceMS: now.UnixMilli()}
	a.anomalies[key] = an
	a.met.anomalyRaised(typ, len(a.anomalies))
	a.events.Event(obs.LevelWarn, "anomaly."+typ, an.Msg, "subject", subject)
}

func (a *aggregator) clear(key string, now time.Time) {
	an, ok := a.anomalies[key]
	if !ok {
		return
	}
	delete(a.anomalies, key)
	a.met.anomalyCleared(len(a.anomalies))
	a.events.Event(obs.LevelInfo, "anomaly.clear", fmt.Sprintf("%s on %s recovered", an.Type, an.Subject),
		"type", an.Type, "subject", an.Subject,
		"after", (time.Duration(now.UnixMilli()-an.SinceMS) * time.Millisecond).String())
}

// anomalyList snapshots the active anomalies, oldest first.
func (a *aggregator) anomalyList() []Anomaly {
	out := make([]Anomaly, 0, len(a.anomalies))
	for _, an := range a.anomalies {
		out = append(out, *an)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SinceMS != out[j].SinceMS {
			return out[i].SinceMS < out[j].SinceMS
		}
		return out[i].Subject < out[j].Subject
	})
	return out
}

// isStraggler reports whether worker currently has an active straggler
// anomaly.
func (a *aggregator) isStraggler(worker string) bool {
	_, ok := a.anomalies[AnomalyStraggler+"/"+worker]
	return ok
}

// workerStatuses snapshots the per-worker view, sorted by name.
func (a *aggregator) workerStatuses() []WorkerStatus {
	out := make([]WorkerStatus, 0, len(a.workers))
	for name, wa := range a.workers {
		out = append(out, WorkerStatus{
			Worker:     name,
			Shard:      wa.shard,
			Done:       wa.done,
			Rate:       wa.rate,
			LastSeenMS: wa.lastSeen.UnixMilli(),
			Straggler:  a.isStraggler(name),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// laneOccupancy is the fleet-mean fraction of the 64 batch lanes kept
// busy, from the folded lane-occupancy histogram sums.
func (a *aggregator) laneOccupancy() float64 {
	if a.totals.Batches == 0 {
		return 0
	}
	return a.totals.LaneSum / (64 * float64(a.totals.Batches))
}

// aggMetrics mirrors folded telemetry into the obs registry (nil-safe).
type aggMetrics struct {
	reg                *obs.Registry
	injections         *obs.Counter // fleet_injections_total
	pruned             *obs.Counter // fleet_pruned_total
	converged          *obs.Counter // fleet_converged_total
	cyclesSaved        *obs.Counter // fleet_cycles_saved_total
	anomaliesRaised    *obs.Counter // fleet_anomalies_total{type}
	anomaliesActive    *obs.Gauge   // fleet_anomalies
	workerDone         map[string]*obs.Counter
	anomalyTypeCounter map[string]*obs.Counter
}

func newAggMetrics(reg *obs.Registry) *aggMetrics {
	if reg == nil {
		return nil
	}
	return &aggMetrics{
		reg:                reg,
		injections:         reg.Counter("fleet_injections_total"),
		pruned:             reg.Counter("fleet_pruned_total"),
		converged:          reg.Counter("fleet_converged_total"),
		cyclesSaved:        reg.Counter("fleet_cycles_saved_total"),
		anomaliesActive:    reg.Gauge("fleet_anomalies"),
		workerDone:         map[string]*obs.Counter{},
		anomalyTypeCounter: map[string]*obs.Counter{},
	}
}

func (m *aggMetrics) fold(worker string, d Telemetry) {
	if m == nil {
		return
	}
	m.injections.Add(d.Injections)
	m.pruned.Add(d.Pruned)
	m.converged.Add(d.Converged)
	m.cyclesSaved.Add(d.CyclesSaved)
	c, ok := m.workerDone[worker]
	if !ok {
		c = m.reg.Counter("fleet_worker_points_total", "worker", worker)
		m.workerDone[worker] = c
	}
	c.Add(d.Done)
}

func (m *aggMetrics) anomalyRaised(typ string, active int) {
	if m == nil {
		return
	}
	c, ok := m.anomalyTypeCounter[typ]
	if !ok {
		c = m.reg.Counter("fleet_anomalies_total", "type", typ)
		m.anomalyTypeCounter[typ] = c
	}
	c.Inc()
	m.anomaliesActive.Set(int64(active))
}

func (m *aggMetrics) anomalyCleared(active int) {
	if m == nil {
		return
	}
	m.anomaliesActive.Set(int64(active))
}
