// Package isafi implements ISA-level fault injection on the architectural
// golden models (the ISS of each core) — the "other side" of the paper's
// cross-layer story. The introduction frames the open question of which
// injection level is "best": ISA-level campaigns (Relyzer, GOOFI-2, FAIL*)
// reach full fault-space coverage cheaply but are further from the
// physics; flip-flop-level HAFI is closer to the hardware but needs
// pruning (the MATEs of this paper). Section 6.3 envisions "the
// combination of HAFI on flipflop level with software-based FI taking over
// at ISA level as the ideal combination".
//
// This package provides that ISA-level half: the fault space is
// (architectural bits × retired instructions); an experiment flips one
// register/flag/PC bit at one instruction boundary and runs the program to
// completion, classifying benign / silent data corruption / hang exactly
// like the gate-level campaign, so the two levels can be compared on the
// same workload (see the cross-layer tests and EXPERIMENTS.md).
package isafi

import (
	"fmt"

	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/hafi"
)

// Target abstracts an architectural machine for ISA-level injection.
type Target interface {
	// Reset returns the machine to its initial state.
	Reset()
	// Step retires one instruction.
	Step()
	// Halted reports whether the workload finished.
	Halted() bool
	// NumBits is the size of the architectural fault space per boundary
	// (register-file, status and PC bits).
	NumBits() int
	// Flip inverts one architectural bit.
	Flip(bit int)
	// BitName names an architectural bit (for reports).
	BitName(bit int) string
	// Signature condenses the externally visible result.
	Signature() uint64
}

// Outcome classification (shared semantics with the gate-level campaign).
type Outcome = hafi.Outcome

// FaultPoint identifies one ISA-level injection: flip Bit after Instr
// retired instructions.
type FaultPoint struct {
	Bit   int
	Instr int
}

// Result aggregates an ISA-level campaign.
type Result struct {
	Total        int
	ByOutcome    map[Outcome]int
	Instructions int // golden run length
	Bits         int
}

// EffectiveFraction returns the share of experiments that were not benign.
func (r *Result) EffectiveFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	eff := r.Total - r.ByOutcome[hafi.OutcomeBenign]
	return float64(eff) / float64(r.Total)
}

// Campaign runs the given fault list. Each experiment replays the workload
// from reset (the ISS retires millions of instructions per second, so
// checkpoints are unnecessary), flips the bit at the boundary, and runs to
// completion or timeout.
func Campaign(t Target, points []FaultPoint, maxInstructions int) (*Result, error) {
	// Golden run.
	t.Reset()
	golden, instrs, err := runToHalt(t, maxInstructions)
	if err != nil {
		return nil, err
	}
	res := &Result{ByOutcome: map[Outcome]int{}, Instructions: instrs, Bits: t.NumBits()}
	timeout := 2 * instrs

	for _, p := range points {
		if p.Instr >= instrs {
			return nil, fmt.Errorf("isafi: injection boundary %d beyond golden run (%d)", p.Instr, instrs)
		}
		if p.Bit < 0 || p.Bit >= t.NumBits() {
			return nil, fmt.Errorf("isafi: bit %d out of range", p.Bit)
		}
		t.Reset()
		for i := 0; i < p.Instr; i++ {
			t.Step()
		}
		t.Flip(p.Bit)
		steps := p.Instr
		for !t.Halted() && steps < timeout {
			t.Step()
			steps++
		}
		res.Total++
		switch {
		case !t.Halted():
			res.ByOutcome[hafi.OutcomeHang]++
		case t.Signature() == golden:
			res.ByOutcome[hafi.OutcomeBenign]++
		default:
			res.ByOutcome[hafi.OutcomeSDC]++
		}
	}
	return res, nil
}

func runToHalt(t Target, maxInstructions int) (sig uint64, instrs int, err error) {
	for instrs = 0; instrs < maxInstructions; instrs++ {
		if t.Halted() {
			return t.Signature(), instrs, nil
		}
		t.Step()
	}
	return 0, 0, fmt.Errorf("isafi: golden run did not halt within %d instructions", maxInstructions)
}

// FullFaultList enumerates every (bit, boundary) point with the given
// instruction stride.
func FullFaultList(t Target, goldenInstrs, stride int) []FaultPoint {
	var out []FaultPoint
	for instr := 0; instr < goldenInstrs; instr += stride {
		for bit := 0; bit < t.NumBits(); bit++ {
			out = append(out, FaultPoint{Bit: bit, Instr: instr})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// AVR target
// ---------------------------------------------------------------------------

// avrTarget injects into the 16 registers (8 bit), the four SREG flags and
// the 12-bit PC of the AVR-class ISS.
type avrTarget struct {
	prog []uint16
	iss  *avr.ISS
}

// NewAVRTarget builds an ISA-level target for the AVR-class core.
func NewAVRTarget(prog []uint16) Target {
	return &avrTarget{prog: prog, iss: avr.NewISS(prog)}
}

func (t *avrTarget) Reset()       { t.iss = avr.NewISS(t.prog) }
func (t *avrTarget) Step()        { t.iss.Step() }
func (t *avrTarget) Halted() bool { return t.iss.Halted }
func (t *avrTarget) NumBits() int { return avr.NumRegs*8 + 4 + avr.PCBits }

func (t *avrTarget) Flip(bit int) {
	switch {
	case bit < avr.NumRegs*8:
		t.iss.Regs[bit/8] ^= 1 << uint(bit%8)
	case bit < avr.NumRegs*8+4:
		switch bit - avr.NumRegs*8 {
		case 0:
			t.iss.C = !t.iss.C
		case 1:
			t.iss.Z = !t.iss.Z
		case 2:
			t.iss.N = !t.iss.N
		case 3:
			t.iss.V = !t.iss.V
		}
	default:
		t.iss.PC ^= 1 << uint(bit-avr.NumRegs*8-4)
		t.iss.PC &= 1<<avr.PCBits - 1
	}
}

func (t *avrTarget) BitName(bit int) string {
	switch {
	case bit < avr.NumRegs*8:
		return fmt.Sprintf("r%d[%d]", bit/8, bit%8)
	case bit < avr.NumRegs*8+4:
		return [4]string{"C", "Z", "N", "V"}[bit-avr.NumRegs*8]
	default:
		return fmt.Sprintf("pc[%d]", bit-avr.NumRegs*8-4)
	}
}

func (t *avrTarget) Signature() uint64 {
	return hafi.SignatureHash([]byte{t.iss.Port}, t.iss.DMem[:])
}

// ---------------------------------------------------------------------------
// MSP430 target
// ---------------------------------------------------------------------------

// msp430Target injects into the 14 registers (16 bit), the four flags and
// the 12-bit PC of the MSP430-class ISS.
type msp430Target struct {
	prog []uint16
	iss  *msp430.ISS
}

// NewMSP430Target builds an ISA-level target for the MSP430-class core.
func NewMSP430Target(prog []uint16) Target {
	return &msp430Target{prog: prog, iss: msp430.NewISS(prog)}
}

func (t *msp430Target) Reset()       { t.iss = msp430.NewISS(t.prog) }
func (t *msp430Target) Step()        { t.iss.Step() }
func (t *msp430Target) Halted() bool { return t.iss.Halted }
func (t *msp430Target) NumBits() int { return msp430.NumRegs*16 + 4 + msp430.PCBits }

func (t *msp430Target) Flip(bit int) {
	switch {
	case bit < msp430.NumRegs*16:
		t.iss.Regs[bit/16] ^= 1 << uint(bit%16)
	case bit < msp430.NumRegs*16+4:
		switch bit - msp430.NumRegs*16 {
		case 0:
			t.iss.C = !t.iss.C
		case 1:
			t.iss.Z = !t.iss.Z
		case 2:
			t.iss.N = !t.iss.N
		case 3:
			t.iss.V = !t.iss.V
		}
	default:
		t.iss.PC ^= 1 << uint(bit-msp430.NumRegs*16-4)
		t.iss.PC &= 1<<msp430.PCBits - 1
	}
}

func (t *msp430Target) BitName(bit int) string {
	switch {
	case bit < msp430.NumRegs*16:
		return fmt.Sprintf("r%d[%d]", bit/16, bit%16)
	case bit < msp430.NumRegs*16+4:
		return [4]string{"C", "Z", "N", "V"}[bit-msp430.NumRegs*16]
	default:
		return fmt.Sprintf("pc[%d]", bit-msp430.NumRegs*16-4)
	}
}

func (t *msp430Target) Signature() uint64 {
	port := t.iss.Port
	bytes := make([]byte, 2+2*len(t.iss.DMem))
	bytes[0], bytes[1] = byte(port), byte(port>>8)
	for i, w := range t.iss.DMem {
		bytes[2+2*i], bytes[2+2*i+1] = byte(w), byte(w>>8)
	}
	return hafi.SignatureHash(bytes)
}
