package isafi

import (
	"testing"

	"repro/internal/cpu/avr"
	"repro/internal/hafi"
	"repro/internal/progs"
)

const smallAVR = `
    ldi r1, 7
    ldi r2, 0
loop:
    add r2, r1
    dec r1
    brne loop
    ldi r3, 16
    st (r3), r2
    out r2
    halt
`

func TestAVRTargetBasics(t *testing.T) {
	tg := NewAVRTarget(avr.MustAssemble(smallAVR))
	if tg.NumBits() != 16*8+4+12 {
		t.Fatalf("bits = %d", tg.NumBits())
	}
	if tg.BitName(0) != "r0[0]" || tg.BitName(128) != "C" || tg.BitName(132) != "pc[0]" {
		t.Fatalf("bit names: %s %s %s", tg.BitName(0), tg.BitName(128), tg.BitName(132))
	}
	// flips are involutive
	sigBefore := tg.Signature()
	tg.Flip(5)
	tg.Flip(5)
	if tg.Signature() != sigBefore {
		t.Fatal("double flip changed state")
	}
}

func TestCampaignClassifiesOutcomes(t *testing.T) {
	tg := NewAVRTarget(avr.MustAssemble(smallAVR))
	_, instrs, err := runToHalt(tg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	points := FullFaultList(tg, instrs, 3)
	res, err := Campaign(tg, points, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != len(points) {
		t.Fatalf("total = %d", res.Total)
	}
	if res.ByOutcome[hafi.OutcomeBenign] == 0 {
		t.Error("expected benign outcomes (unused registers)")
	}
	if res.ByOutcome[hafi.OutcomeSDC] == 0 {
		t.Error("expected SDC outcomes (live register bits)")
	}
	sum := 0
	for _, n := range res.ByOutcome {
		sum += n
	}
	if sum != res.Total {
		t.Fatalf("outcome sum %d != total %d", sum, res.Total)
	}
	t.Logf("ISA campaign: %d points, outcomes %v, effective %.1f%%",
		res.Total, res.ByOutcome, 100*res.EffectiveFraction())
}

func TestCampaignDeterministic(t *testing.T) {
	tg := NewAVRTarget(avr.MustAssemble(smallAVR))
	_, instrs, _ := runToHalt(tg, 1<<20)
	points := FullFaultList(tg, instrs, 7)
	a, err := Campaign(tg, points, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Campaign(tg, points, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for o, n := range a.ByOutcome {
		if b.ByOutcome[o] != n {
			t.Fatalf("outcome %s differs: %d vs %d", o, n, b.ByOutcome[o])
		}
	}
}

func TestCampaignBounds(t *testing.T) {
	tg := NewAVRTarget(avr.MustAssemble(smallAVR))
	_, instrs, _ := runToHalt(tg, 1<<20)
	if _, err := Campaign(tg, []FaultPoint{{Bit: 0, Instr: instrs + 1}}, 1<<20); err == nil {
		t.Error("expected boundary error")
	}
	if _, err := Campaign(tg, []FaultPoint{{Bit: -1, Instr: 0}}, 1<<20); err == nil {
		t.Error("expected bit-range error")
	}
	if _, err := Campaign(NewAVRTarget(avr.MustAssemble("loop: rjmp loop")), nil, 100); err == nil {
		t.Error("expected non-halting error")
	}
}

func TestMSP430Target(t *testing.T) {
	tg := NewMSP430Target(progs.MSP430Fib())
	if tg.NumBits() != 14*16+4+12 {
		t.Fatalf("bits = %d", tg.NumBits())
	}
	_, instrs, err := runToHalt(tg, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	// sparse campaign
	points := FullFaultList(tg, instrs, instrs/4+1)
	res, err := Campaign(tg, points, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if res.ByOutcome[hafi.OutcomeBenign] == 0 || res.ByOutcome[hafi.OutcomeSDC] == 0 {
		t.Errorf("outcome spread: %v", res.ByOutcome)
	}
	t.Logf("msp430 ISA campaign: %d points, outcomes %v", res.Total, res.ByOutcome)
}

// TestCrossLayerComparison runs the same workload at both layers and
// reports the effectiveness per level — the paper's framing experiment
// (ISA-level injection reaches different susceptibility than
// flip-flop-level injection, which is why the two compose).
func TestCrossLayerComparison(t *testing.T) {
	prog := avr.MustAssemble(smallAVR)

	// ISA level.
	tg := NewAVRTarget(prog)
	_, instrs, err := runToHalt(tg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	isaRes, err := Campaign(tg, FullFaultList(tg, instrs, 2), 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	// Flip-flop level (gate-level HAFI campaign on the same program).
	c := avr.NewCore()
	run := hafi.NewAVRRun(c, prog)
	golden, err := hafi.RecordGolden(run, 100000)
	if err != nil {
		t.Fatal(err)
	}
	ctl := hafi.NewController(run, golden)
	ffRes, err := ctl.RunCampaign(hafi.CampaignConfig{
		Points: hafi.SampledFaultList(c.NL, golden.HaltCycle, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	ffTotal := ffRes.Total
	ffEffective := float64(ffRes.ByOutcome[hafi.OutcomeSDC]+ffRes.ByOutcome[hafi.OutcomeHang]) / float64(ffTotal)

	t.Logf("cross-layer effectiveness on the same workload:")
	t.Logf("  ISA level (regs+flags+PC × instructions): %.1f%% of %d experiments effective",
		100*isaRes.EffectiveFraction(), isaRes.Total)
	t.Logf("  FF level  (flip-flops × cycles):          %.1f%% of %d experiments effective",
		100*ffEffective, ffTotal)
	// Both levels must find effective faults; the FF level sees additional
	// microarchitectural state (pipeline registers, memory interface), so
	// the distributions differ — that they differ at all is the paper's
	// point, not a specific ordering.
	if isaRes.EffectiveFraction() == 0 || ffEffective == 0 {
		t.Error("both layers must observe effective faults")
	}
}
