// Package collapse implements classical structural fault collapsing for
// stuck-at faults — the static pruning technique the paper contrasts MATEs
// with in its related-work section ("fault collapsing is a technique to
// statically analyze a netlist for possible faults that are equivalent in
// their error behavior ... the combination of MATEs and fault collapsing
// could be profitable when all wires are subject to injection").
//
// Two faults are *equivalent* when every test detecting one detects the
// other; fault f *dominates* g when every test for g also detects f.
// This package derives both relations structurally, per gate, from the
// cell truth tables:
//
//   - Equivalence: if forcing input pin p of a gate to value c forces the
//     output to a constant value f (p is "controlling" with value c), then
//     the faults (pin-wire stuck-at-c) and (output stuck-at-f) are
//     equivalent — e.g. any AND input s-a-0 ≡ output s-a-0, a NAND input
//     s-a-0 ≡ output s-a-1, and an inverter's faults map one-to-one.
//   - Dominance: the complementary output fault (output stuck-at-¬f)
//     dominates the pin fault (pin stuck-at-¬c) for single-output
//     controlling gates, so dominance collapsing may drop it from the
//     target list when the gate's output has no other fanout
//     observability requirement. We report dominance pairs but keep the
//     equivalence classes as the collapsed fault list (the safe choice).
//
// Unlike MATEs, fault collapsing ignores the circuit's state: it shrinks
// the *static* fault list, while MATEs prune *dynamically* per cycle. The
// two compose: a campaign over all wires first collapses the stuck-at
// list, then applies MATEs to the surviving (wire, cycle) points.
package collapse

import (
	"fmt"

	"repro/internal/netlist"
)

// Fault is a single stuck-at fault: Wire stuck at Value.
type Fault struct {
	Wire  netlist.WireID
	Value bool
}

// id maps a fault to a dense index (wire*2 + value).
func (f Fault) id() int {
	v := 0
	if f.Value {
		v = 1
	}
	return int(f.Wire)*2 + v
}

func faultFromID(id int) Fault {
	return Fault{Wire: netlist.WireID(id / 2), Value: id%2 == 1}
}

// Result of a collapsing run.
type Result struct {
	nl *netlist.Netlist
	// parent is the union-find forest over fault ids.
	parent []int
	// Dominances lists (dominating, dominated) pairs found structurally.
	Dominances [][2]Fault
	// TotalFaults is 2 × wires; Classes the number of equivalence classes.
	TotalFaults int
	Classes     int
}

// Collapse computes the structural equivalence classes of all stuck-at
// faults in the netlist.
func Collapse(nl *netlist.Netlist) *Result {
	r := &Result{nl: nl, TotalFaults: nl.NumWires() * 2}
	r.parent = make([]int, r.TotalFaults)
	for i := range r.parent {
		r.parent[i] = i
	}

	for gi := range nl.Gates {
		g := &nl.Gates[gi]
		c := g.Cell
		n := c.NumInputs()
		for p := 0; p < n; p++ {
			// Faults live on wires, not gate pins, so the classical pin
			// rules only transfer when the input wire is fanout-free (it
			// feeds exactly this gate and no FF/output): a stem fault of a
			// fanout wire also disturbs the sibling branches and is not
			// equivalent to any single gate's output fault.
			in := g.Inputs[p]
			if len(nl.Fanout(in)) != 1 || len(nl.FFsOfD(in)) > 0 || nl.IsPrimaryOutput(in) {
				continue
			}
			for _, val := range []bool{false, true} {
				forced, constant := forcedOutput(c.TruthTable(), n, p, val)
				if !constant {
					continue
				}
				// wire stuck-at-val ≡ output stuck-at-forced
				r.union(Fault{in, val}.id(), Fault{g.Output, forced}.id())
				// output stuck-at-!forced dominates wire stuck-at-!val
				r.Dominances = append(r.Dominances, [2]Fault{
					{g.Output, !forced},
					{in, !val},
				})
			}
		}
	}

	seen := map[int]bool{}
	for i := 0; i < r.TotalFaults; i++ {
		seen[r.find(i)] = true
	}
	r.Classes = len(seen)
	return r
}

// forcedOutput reports whether fixing pin p to val forces the gate output
// to a constant, and which constant.
func forcedOutput(tt uint32, n, p int, val bool) (forced, constant bool) {
	first := true
	var out bool
	for v := uint32(0); v < 1<<n; v++ {
		bit := v>>uint(p)&1 == 1
		if bit != val {
			continue
		}
		o := tt>>v&1 == 1
		if first {
			out, first = o, false
		} else if o != out {
			return false, false
		}
	}
	if first {
		return false, false // no inputs (TIE cells)
	}
	return out, true
}

func (r *Result) find(i int) int {
	for r.parent[i] != i {
		r.parent[i] = r.parent[r.parent[i]]
		i = r.parent[i]
	}
	return i
}

func (r *Result) union(a, b int) {
	ra, rb := r.find(a), r.find(b)
	if ra != rb {
		r.parent[ra] = rb
	}
}

// Equivalent reports whether two faults are structurally equivalent.
func (r *Result) Equivalent(a, b Fault) bool {
	return r.find(a.id()) == r.find(b.id())
}

// Representatives returns one fault per equivalence class, in wire order —
// the collapsed fault list a test-pattern campaign would target.
func (r *Result) Representatives() []Fault {
	repOf := map[int]int{}
	for i := 0; i < r.TotalFaults; i++ {
		root := r.find(i)
		if cur, ok := repOf[root]; !ok || i < cur {
			repOf[root] = i
		}
	}
	out := make([]Fault, 0, len(repOf))
	for i := 0; i < r.TotalFaults; i++ {
		if repOf[r.find(i)] == i {
			out = append(out, faultFromID(i))
		}
	}
	return out
}

// ClassOf returns every fault in the same equivalence class as f.
func (r *Result) ClassOf(f Fault) []Fault {
	root := r.find(f.id())
	var out []Fault
	for i := 0; i < r.TotalFaults; i++ {
		if r.find(i) == root {
			out = append(out, faultFromID(i))
		}
	}
	return out
}

// Ratio returns collapsed classes / total faults.
func (r *Result) Ratio() float64 {
	if r.TotalFaults == 0 {
		return 0
	}
	return float64(r.Classes) / float64(r.TotalFaults)
}

// String summarises the collapse.
func (r *Result) String() string {
	return fmt.Sprintf("%d stuck-at faults -> %d classes (%.1f%%), %d dominance pairs",
		r.TotalFaults, r.Classes, 100*r.Ratio(), len(r.Dominances))
}
