package collapse

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/cpu/avr"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// TestInverterChain: in a chain of inverters every fault collapses into
// one of two classes (the classic textbook example).
func TestInverterChain(t *testing.T) {
	b := netlist.NewBuilder("invchain")
	w := b.Input("a")
	for i := 0; i < 6; i++ {
		w = b.Gate(cell.INV, w)
	}
	b.MarkOutput(w)
	nl := b.MustNetlist()

	r := Collapse(nl)
	if r.TotalFaults != nl.NumWires()*2 {
		t.Fatalf("total = %d", r.TotalFaults)
	}
	if r.Classes != 2 {
		t.Fatalf("classes = %d, want 2", r.Classes)
	}
	reps := r.Representatives()
	if len(reps) != 2 {
		t.Fatalf("representatives = %d", len(reps))
	}
	// a stuck-at-0 must be equivalent to output stuck-at-0 (even chain).
	a, _ := nl.WireByName("a")
	if !r.Equivalent(Fault{a, false}, Fault{nl.Outputs[0], false}) {
		t.Error("a s-a-0 must collapse with the output fault (even inverter count)")
	}
	if r.Equivalent(Fault{a, false}, Fault{a, true}) {
		t.Error("opposite polarities must stay distinct")
	}
}

// TestAndGateRules: AND2 input s-a-0 ≡ output s-a-0; input s-a-1 is NOT
// equivalent to anything (only dominated by output s-a-1).
func TestAndGateRules(t *testing.T) {
	b := netlist.NewBuilder("and")
	a := b.Input("a")
	c := b.Input("c")
	y := b.GateNamed("y", cell.AND2, a, c)
	b.MarkOutput(y)
	nl := b.MustNetlist()
	r := Collapse(nl)

	if !r.Equivalent(Fault{a, false}, Fault{y, false}) || !r.Equivalent(Fault{c, false}, Fault{y, false}) {
		t.Error("AND input s-a-0 must be equivalent to output s-a-0")
	}
	if r.Equivalent(Fault{a, true}, Fault{y, true}) {
		t.Error("AND input s-a-1 must not be equivalent to output s-a-1")
	}
	// 2*3 wires = 6 faults; class {a0,c0,y0} + {a1} + {c1} + {y1} = 4.
	if r.Classes != 4 {
		t.Errorf("classes = %d, want 4", r.Classes)
	}
	// dominance: y s-a-1 dominates a s-a-1 and c s-a-1.
	found := 0
	for _, d := range r.Dominances {
		if d[0] == (Fault{y, true}) && (d[1] == Fault{a, true} || d[1] == Fault{c, true}) {
			found++
		}
	}
	if found != 2 {
		t.Errorf("dominance pairs found = %d, want 2", found)
	}
}

func TestNandPolarity(t *testing.T) {
	b := netlist.NewBuilder("nand")
	a := b.Input("a")
	c := b.Input("c")
	y := b.GateNamed("y", cell.NAND2, a, c)
	b.MarkOutput(y)
	nl := b.MustNetlist()
	r := Collapse(nl)
	if !r.Equivalent(Fault{a, false}, Fault{y, true}) {
		t.Error("NAND input s-a-0 ≡ output s-a-1")
	}
}

func TestXorCollapsesNothing(t *testing.T) {
	b := netlist.NewBuilder("xor")
	a := b.Input("a")
	c := b.Input("c")
	y := b.GateNamed("y", cell.XOR2, a, c)
	b.MarkOutput(y)
	nl := b.MustNetlist()
	r := Collapse(nl)
	if r.Classes != r.TotalFaults {
		t.Errorf("XOR must not collapse: %d of %d classes", r.Classes, r.TotalFaults)
	}
	if len(r.Dominances) != 0 {
		t.Errorf("XOR has no dominances, got %d", len(r.Dominances))
	}
}

// TestEquivalenceIsSemantic: property test — structurally equivalent
// faults must be truly indistinguishable: for every input vector, the
// faulty circuits' primary outputs agree.
func TestEquivalenceIsSemantic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		nl := randomComb(rng)
		r := Collapse(nl)
		m := sim.New(nl)
		reps := r.Representatives()
		// pick a handful of classes with > 1 member
		checked := 0
		for _, rep := range reps {
			class := r.ClassOf(rep)
			if len(class) < 2 || checked > 4 {
				continue
			}
			checked++
			for v := 0; v < 32; v++ {
				for i, in := range nl.Inputs {
					m.SetValue(in, (v>>uint(i%5))&1 == 1)
				}
				outA := evalWithStuckAt(m, nl, class[0])
				outB := evalWithStuckAt(m, nl, class[1])
				for i := range outA {
					if outA[i] != outB[i] {
						t.Fatalf("trial %d: equivalent faults %v and %v distinguishable",
							trial, class[0], class[1])
					}
				}
			}
		}
	}
}

// evalWithStuckAt evaluates the combinational circuit with one wire forced.
func evalWithStuckAt(m *sim.Machine, nl *netlist.Netlist, f Fault) []bool {
	m.EvalCombForced(f.Wire, f.Value)
	out := make([]bool, len(nl.Outputs))
	for i, w := range nl.Outputs {
		out[i] = m.Value(w)
	}
	return out
}

func TestCollapseOnAVRCore(t *testing.T) {
	c := avr.NewCore()
	r := Collapse(c.NL)
	if r.Classes >= r.TotalFaults {
		t.Fatal("no collapsing on a real core?")
	}
	// Our wire-level fault model only transfers the classical pin rules
	// across fanout-free connections, and the decode-heavy cores share
	// most control wires, so the collapse is milder than the textbook
	// 40-60 %: expect a measurable but single-digit-to-low-teens shrink.
	if r.Ratio() < 0.5 || r.Ratio() >= 1.0 {
		t.Errorf("suspicious collapse ratio %.2f", r.Ratio())
	}
	if len(r.Dominances) == 0 {
		t.Error("expected dominance pairs on a real core")
	}
	t.Logf("AVR: %s", r)
}

// randomComb builds a random combinational circuit.
func randomComb(rng *rand.Rand) *netlist.Netlist {
	b := netlist.NewBuilder("randcomb")
	var pool []netlist.WireID
	for i := 0; i < 5; i++ {
		pool = append(pool, b.Input(""))
	}
	kinds := []cell.Kind{cell.INV, cell.BUF, cell.AND2, cell.NAND2, cell.OR2,
		cell.NOR2, cell.AND3, cell.NOR3, cell.AOI21, cell.OAI21}
	for i := 0; i < 25; i++ {
		k := kinds[rng.Intn(len(kinds))]
		c := cell.Lookup(k)
		ins := make([]netlist.WireID, c.NumInputs())
		for p := range ins {
			ins[p] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, b.Gate(k, ins...))
	}
	for i := 0; i < 3; i++ {
		b.MarkOutput(pool[len(pool)-1-i])
	}
	return b.MustNetlist()
}
