package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrace(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fleet.trace")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodTrace = `{"displayTimeUnit":"ms","traceEvents":[
{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"campaignd"}},
{"name":"campaign","ph":"X","ts":0,"pid":1,"tid":0,"dur":1000,"args":{"detail":"trace cafe0123"}},
{"name":"process_name","ph":"M","ts":0,"pid":100,"tid":0,"args":{"name":"shard 00 · w1"}},
{"name":"shard","ph":"X","ts":100,"pid":100,"tid":0,"dur":500},
{"name":"campaign/batch","ph":"X","ts":150,"pid":100,"tid":1,"dur":100},
{"name":"campaign/converged","ph":"i","ts":300,"pid":100,"tid":1,"s":"g"},
{"name":"process_name","ph":"M","ts":0,"pid":101,"tid":0,"args":{"name":"shard 01 · w2"}},
{"name":"shard","ph":"X","ts":600,"pid":101,"tid":0,"dur":300}
]}`

func TestCheckTraceAcceptsNestedTimeline(t *testing.T) {
	chk, err := CheckTrace(writeTrace(t, goodTrace))
	if err != nil {
		t.Fatal(err)
	}
	if chk.TraceID != "cafe0123" {
		t.Fatalf("trace id = %q, want cafe0123", chk.TraceID)
	}
	if chk.Shards != 2 || chk.SegmentEvents != 2 || chk.Events != 8 {
		t.Fatalf("summary = %+v", chk)
	}
	if len(chk.Workers) != 2 || chk.Workers[0] != "w1" || chk.Workers[1] != "w2" {
		t.Fatalf("workers = %v", chk.Workers)
	}
}

func TestCheckTraceRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"not-json", `{"traceEvents":[`, "not valid trace JSON"},
		{"empty", `{"traceEvents":[]}`, "no trace events"},
		{"no-root", `{"traceEvents":[{"name":"shard","ph":"X","ts":0,"pid":100,"tid":0,"dur":10}]}`,
			"no campaign root"},
		{"shard-escapes-root", `{"traceEvents":[
			{"name":"campaign","ph":"X","ts":100,"pid":1,"tid":0,"dur":100},
			{"name":"shard","ph":"X","ts":0,"pid":100,"tid":0,"dur":50}]}`,
			"escapes the campaign root"},
		{"event-escapes-shard", `{"traceEvents":[
			{"name":"campaign","ph":"X","ts":0,"pid":1,"tid":0,"dur":1000},
			{"name":"shard","ph":"X","ts":100,"pid":100,"tid":0,"dur":100},
			{"name":"campaign/batch","ph":"X","ts":150,"pid":100,"tid":1,"dur":500}]}`,
			"escapes its shard span"},
		{"orphan-event", `{"traceEvents":[
			{"name":"campaign","ph":"X","ts":0,"pid":1,"tid":0,"dur":1000},
			{"name":"shard","ph":"X","ts":100,"pid":100,"tid":0,"dur":100},
			{"name":"campaign/batch","ph":"X","ts":150,"pid":102,"tid":1,"dur":10}]}`,
			"no shard span"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := CheckTrace(writeTrace(t, tc.body))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestStatsLatencyAndWorkerRendering(t *testing.T) {
	statsPath := filepath.Join(t.TempDir(), "run.stats")
	stats := `{
	  "uptime_seconds": 3.0,
	  "counters": {
	    "fleet_leases_granted_total": 4,
	    "fleet_worker_points_total{worker=w1}": 300,
	    "fleet_worker_points_total{worker=w2}": 100
	  },
	  "histograms": {
	    "campaign_experiment_seconds": {"count": 400, "sum": 2.0, "p50": 0.004, "p95": 0.009, "p99": 0.02},
	    "campaign_batch_seconds": {"count": 7, "sum": 1.4, "p50": 0.2, "p95": 0.3, "p99": 0.31}
	  }
	}`
	if err := os.WriteFile(statsPath, []byte(stats), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(buildJournal(t, testHeader, basePoints()), statsPath)
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	if err := BuildDocument(c, 0).WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{
		"experiment p50=4.00ms p95=9.00ms p99=20.00ms (400 samples)",
		"batch      p50=200.00ms p95=300.00ms p99=310.00ms (7 samples)",
		"2 contributed points",
		"w1", "300 points (75.0%)",
		"w2", "100 points (25.0%)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats rendering missing %q:\n%s", want, out)
		}
	}

	byWorker := c.Stats.LabeledCounters("fleet_worker_points_total", "worker")
	if len(byWorker) != 2 || byWorker["w1"] != 300 || byWorker["w2"] != 100 {
		t.Fatalf("LabeledCounters = %v", byWorker)
	}

	// A pre-wide-engine dump carries no simulation telemetry: the line must
	// be absent entirely, not rendered with zeros.
	if strings.Contains(out, "simulation:") {
		t.Fatalf("simulation line rendered without wide-engine stats:\n%s", out)
	}
}

// TestStatsWideEngineRendering: the lane-width gauge and the cone-delta
// work counters render on one line, and each piece degrades independently
// when absent from the dump.
func TestStatsWideEngineRendering(t *testing.T) {
	statsPath := filepath.Join(t.TempDir(), "wide.stats")
	stats := `{
	  "uptime_seconds": 2.0,
	  "counters": {
	    "sim_delta_gates_skipped_total": 123456,
	    "sim_frontier_fallback_total": 7
	  },
	  "gauges": {
	    "campaign_lanes": 256
	  }
	}`
	if err := os.WriteFile(statsPath, []byte(stats), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(buildJournal(t, testHeader, basePoints()), statsPath)
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	if err := BuildDocument(c, 0).WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	want := "simulation: 256 lanes, 123456 gate evaluations skipped by cone-delta, 7 dense-dispatch fallbacks"
	if !strings.Contains(out, want) {
		t.Fatalf("wide-engine stats rendering missing %q:\n%s", want, out)
	}

	// Counters without the gauge (a 64-lane run on a wide-aware binary
	// whose lanes gauge was never set): still rendered, no lanes column.
	noLanes := filepath.Join(t.TempDir(), "nolanes.stats")
	if err := os.WriteFile(noLanes, []byte(`{
	  "uptime_seconds": 1.0,
	  "counters": {"sim_delta_gates_skipped_total": 9}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(buildJournal(t, testHeader, basePoints()), noLanes)
	if err != nil {
		t.Fatal(err)
	}
	text.Reset()
	if err := BuildDocument(c2, 0).WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if out := text.String(); !strings.Contains(out, "simulation: 9 gate evaluations skipped by cone-delta") ||
		strings.Contains(out, "lanes") {
		t.Fatalf("gauge-less stats rendering wrong:\n%s", out)
	}
}
