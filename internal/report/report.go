// Package report analyzes recovered campaign journals: per-campaign outcome
// summaries, per-MATE effectiveness tables (the paper's cost/benefit metric
// recomputed from attribution records), FF × cycle-window outcome heatmaps,
// and a point-for-point diff of two campaigns that flags coverage and
// classification regressions. It powers cmd/campaignreport and works from
// the journal alone — no netlist, trace or MATE-set file required — with an
// optional -stats-json dump for runtime enrichment.
package report

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/journal"
)

// outcomeNames mirrors the hafi outcome codes journal records carry
// (benign=0, sdc=1, hang=2, harness-error=3).
var outcomeNames = [...]string{"benign", "sdc", "hang", "harness-error"}

// OutcomeName returns the symbolic name of a journal outcome code.
func OutcomeName(code uint8) string {
	if int(code) < len(outcomeNames) {
		return outcomeNames[code]
	}
	return fmt.Sprintf("outcome(%d)", code)
}

// modelNames mirrors the hafi fault-model codes v3 journal records carry
// (seu=0, mbu=1, set=2, intermittent=3, stuck-at=4). The report works from
// the journal alone, so the table is duplicated here rather than imported
// from the engine.
var modelNames = [...]string{"seu", "mbu", "set", "intermittent", "stuck-at"}

// ModelName returns the symbolic name of a journal fault-model code.
func ModelName(code uint8) string {
	if int(code) < len(modelNames) {
		return modelNames[code]
	}
	return fmt.Sprintf("model(%d)", code)
}

// Verdict classifies one journal record for comparison purposes: "benign"
// for pruned or executed-benign points (so pruning a point a fresh run
// executed is not a classification change), "skipped-wrong" for validated
// pruned points that failed validation, and the outcome name otherwise.
func Verdict(rec journal.Record) string {
	if rec.Pruned {
		if rec.SkippedWrong {
			return "skipped-wrong"
		}
		return "benign"
	}
	return OutcomeName(rec.Outcome)
}

// Stats is the parsed shape of an obs -stats-json dump (see obs.WriteJSON).
type Stats struct {
	UptimeSeconds float64              `json:"uptime_seconds"`
	Counters      map[string]int64     `json:"counters"`
	Gauges        map[string]int64     `json:"gauges"`
	Histograms    map[string]Histogram `json:"histograms"`
	Spans         map[string]struct {
		Runs    int64   `json:"runs"`
		Seconds float64 `json:"seconds"`
	} `json:"spans"`
}

// Histogram is the parsed shape of one obs histogram in a -stats-json dump:
// total count/sum plus the bucket-interpolated p50/p95/p99 estimates the
// exporter computed at dump time.
type Histogram struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// LabeledCounters collects the counters of one labeled metric family:
// keys like `name{label=value}` are returned as value → count, sorted
// iteration left to the caller. An unlabeled counter named exactly name is
// ignored — it is the family total, not a member.
func (s *Stats) LabeledCounters(name, label string) map[string]int64 {
	if s == nil {
		return nil
	}
	prefix := name + "{" + label + "="
	var out map[string]int64
	for key, v := range s.Counters {
		if !strings.HasPrefix(key, prefix) || !strings.HasSuffix(key, "}") {
			continue
		}
		if out == nil {
			out = make(map[string]int64)
		}
		out[strings.TrimSuffix(strings.TrimPrefix(key, prefix), "}")] = v
	}
	return out
}

// Campaign is one recovered campaign journal, optionally enriched with the
// run's -stats-json dump.
type Campaign struct {
	Path  string
	Rec   *journal.Recovered
	Stats *Stats
}

// Load recovers the journal at journalPath; statsPath, when non-empty,
// additionally loads the run's -stats-json dump.
func Load(journalPath, statsPath string) (*Campaign, error) {
	rec, err := journal.Recover(journalPath)
	if err != nil {
		return nil, err
	}
	if !rec.HasHeader {
		return nil, fmt.Errorf("report: %s has no intact campaign header", journalPath)
	}
	c := &Campaign{Path: journalPath, Rec: rec}
	if statsPath != "" {
		data, err := os.ReadFile(statsPath)
		if err != nil {
			return nil, fmt.Errorf("report: %w", err)
		}
		c.Stats = &Stats{}
		if err := json.Unmarshal(data, c.Stats); err != nil {
			return nil, fmt.Errorf("report: %s: %w", statsPath, err)
		}
	}
	return c, nil
}

// Summary condenses one campaign journal.
type Summary struct {
	// Points is the fault-list length the campaign was launched over.
	Points uint64 `json:"points"`
	// Classified counts distinct points with an intact experiment record.
	Classified int `json:"classified"`
	Pruned     int `json:"pruned"`
	Executed   int `json:"executed"`
	// Outcomes indexes executed points by outcome code.
	Outcomes [4]int `json:"outcomes"`
	// SkippedWrong counts validated pruned points that were NOT benign.
	SkippedWrong int `json:"skipped_wrong"`
	// AttributedPruned counts pruned points carrying a MATE attribution hit
	// (equals Pruned for v2 journals; lower for pre-attribution journals).
	AttributedPruned int `json:"attributed_pruned"`
	// Torn/Corrupt/DroppedBytes echo the journal tail diagnosis.
	Torn         bool  `json:"torn"`
	Corrupt      bool  `json:"corrupt"`
	DroppedBytes int64 `json:"dropped_bytes"`
	// Models breaks classification down per fault model, keyed by model
	// name. Nil for pure-SEU campaigns (every v1/v2-era journal), so
	// reports over legacy journals render unchanged.
	Models map[string]ModelSummary `json:"models,omitempty"`
}

// ModelSummary is the per-fault-model slice of a campaign summary.
type ModelSummary struct {
	Classified int `json:"classified"`
	Pruned     int `json:"pruned"`
	Executed   int `json:"executed"`
	// Outcomes indexes the model's executed points by outcome code.
	Outcomes [4]int `json:"outcomes"`
}

// Coverage returns the classified share of the fault list (0..1).
func (s Summary) Coverage() float64 {
	if s.Points == 0 {
		return 0
	}
	return float64(s.Classified) / float64(s.Points)
}

// PrunedFraction returns the pruned share of the classified points.
func (s Summary) PrunedFraction() float64 {
	if s.Classified == 0 {
		return 0
	}
	return float64(s.Pruned) / float64(s.Classified)
}

// Summary walks the per-index record map (so a point classified twice by a
// resume counts once, with its final verdict).
func (c *Campaign) Summary() Summary {
	s := Summary{
		Points:       c.Rec.Header.NumPoints,
		Torn:         c.Rec.Torn,
		Corrupt:      c.Rec.Corrupt,
		DroppedBytes: c.Rec.DroppedBytes,
	}
	perModel := map[uint8]*ModelSummary{}
	for idx, rec := range c.Rec.ByIndex {
		s.Classified++
		m, ok := perModel[rec.Model]
		if !ok {
			m = &ModelSummary{}
			perModel[rec.Model] = m
		}
		m.Classified++
		if rec.Pruned {
			s.Pruned++
			m.Pruned++
			if rec.SkippedWrong {
				s.SkippedWrong++
			}
			if _, ok := c.Rec.HitByIndex[idx]; ok {
				s.AttributedPruned++
			}
			continue
		}
		s.Executed++
		m.Executed++
		if int(rec.Outcome) < len(s.Outcomes) {
			s.Outcomes[rec.Outcome]++
			m.Outcomes[rec.Outcome]++
		}
	}
	// A pure-SEU campaign (the only kind pre-v3 journals can describe)
	// reports no per-model breakdown: the totals already tell the story.
	if _, seuOnly := perModel[0]; !(seuOnly && len(perModel) == 1) && len(perModel) > 0 {
		s.Models = make(map[string]ModelSummary, len(perModel))
		for code, m := range perModel {
			s.Models[ModelName(code)] = *m
		}
	}
	return s
}

// MATERow is one MATE's effectiveness: how many points its attribution
// records credit it with, against its term width.
type MATERow struct {
	MATE   int   `json:"mate"`
	Width  int   `json:"width"`
	Points int64 `json:"points"`
}

// CostBenefit is the paper's selection metric: points pruned per term
// literal. A width of zero (the always-true MATE of a dangling flip-flop)
// counts as one literal so the ratio stays finite.
func (r MATERow) CostBenefit() float64 {
	w := r.Width
	if w < 1 {
		w = 1
	}
	return float64(r.Points) / float64(w)
}

// MATETable aggregates the attribution hits of pruned points into per-MATE
// rows, ranked by cost/benefit (ties: more points, then lower index). Only
// hits whose point's final record is pruned count — an orphan hit from a
// crash, superseded by a re-executed record, is excluded — so the Points
// column sums exactly to Summary().AttributedPruned.
func (c *Campaign) MATETable() []MATERow {
	agg := map[int]*MATERow{}
	for idx, hit := range c.Rec.HitByIndex {
		rec, ok := c.Rec.ByIndex[idx]
		if !ok || !rec.Pruned {
			continue
		}
		row, ok := agg[int(hit.MATE)]
		if !ok {
			row = &MATERow{MATE: int(hit.MATE), Width: int(hit.Width)}
			agg[int(hit.MATE)] = row
		}
		row.Points++
	}
	out := make([]MATERow, 0, len(agg))
	for _, row := range agg {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := out[i].CostBenefit(), out[j].CostBenefit()
		if ci != cj {
			return ci > cj
		}
		if out[i].Points != out[j].Points {
			return out[i].Points > out[j].Points
		}
		return out[i].MATE < out[j].MATE
	})
	return out
}
